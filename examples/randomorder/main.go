// Random order: enumerate join answers in a provably uniform random
// permutation with logarithmic delay — the sampling-without-replacement
// application of direct access recalled in the paper's introduction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rankedaccess"
	"rankedaccess/internal/enum"
	"rankedaccess/internal/order"
	"rankedaccess/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	q, in := workload.TwoPath(rng, 50_000, 5_000, 0.3)

	count, err := rankedaccess.Count(q, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q.String())
	fmt.Println("join size:", count)

	// A uniform sample of 10 answers, without replacement, without
	// materializing the join: every prefix of the permutation is an
	// exact uniform sample.
	fmt.Println("\n10 uniform answers (no replacement):")
	taken := 0
	err = enum.RandomOrder(q, in, rng, func(a order.Answer) bool {
		fmt.Printf("  %v\n", rankedaccess.AnswerTuple(q, a))
		taken++
		return taken < 10
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ranked enumeration by SUM with logarithmic delay — tractable for
	// every free-connex CQ even though direct access by SUM is not.
	w := rankedaccess.IdentitySum(q.Head...)
	e, err := rankedaccess.NewSumEnumerator(q, in, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 answers by x+y+z:")
	for i := 0; i < 5; i++ {
		a, weight, ok := e.Next()
		if !ok {
			break
		}
		fmt.Printf("  %v  (weight %v)\n", rankedaccess.AnswerTuple(q, a), weight)
	}
}
