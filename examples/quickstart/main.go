// Quickstart: build a ranked direct-access structure for a conjunctive
// query and jump straight to arbitrary positions of the sorted answer
// list — without materializing it.
package main

import (
	"fmt"
	"log"

	"rankedaccess"
)

func main() {
	// The running example of the paper (Figure 2): a two-step join.
	q := rankedaccess.MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")

	in := rankedaccess.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)

	// Ask for the answers sorted by x, then y, then z.
	l, err := rankedaccess.ParseLex(q, "x, y, z")
	if err != nil {
		log.Fatal(err)
	}

	// First: is this (query, order) pair even tractable? The library
	// implements the paper's dichotomy, so you get a definite answer.
	verdict := rankedaccess.Classify(rankedaccess.DirectAccessLex, q, l, nil)
	fmt.Println("classification:", verdict)

	// Build the structure: O(n log n) preprocessing.
	da, err := rankedaccess.NewDirectAccess(q, in, l, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("total answers:", da.Total())

	// O(log n) per access, any index, in order.
	for k := int64(0); k < da.Total(); k++ {
		a, err := da.Access(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  #%d  %v\n", k+1, rankedaccess.AnswerTuple(q, a))
	}

	// The median answer, directly.
	median, _ := da.Access(da.Total() / 2)
	fmt.Println("median:", rankedaccess.AnswerTuple(q, median))

	// Inverted access: where does a given answer sit in the order?
	k, err := da.Inverted(median)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("median sits at index:", k)

	// An order the paper proves intractable is rejected with the
	// certificate from the hardness proof.
	bad, _ := rankedaccess.ParseLex(q, "x, z, y")
	if _, err := rankedaccess.NewDirectAccess(q, in, bad, nil); err != nil {
		fmt.Println("⟨x,z,y⟩ rejected:", err)
	}
}
