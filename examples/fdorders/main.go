// FD orders: how unary functional dependencies move the tractability
// frontier (§8 of the paper). Every worked example of Section 8, live.
package main

import (
	"fmt"
	"log"

	"rankedaccess"
)

func main() {
	// Example 8.3: Q(x, z) :- R(x, y), S(y, z) is not free-connex, so
	// neither direct access nor selection is possible under ANY order...
	q := rankedaccess.MustParseQuery("Q(x, z) :- R(x, y), S(y, z)")
	l, _ := rankedaccess.ParseLex(q, "x, z")
	fmt.Println("without FDs:", rankedaccess.Classify(rankedaccess.DirectAccessLex, q, l, nil))

	// ...but if S satisfies y → z, the FD-extension Q⁺(x,z) :- R(x,y,z),
	// S(y,z) is free-connex with one atom covering the head: everything
	// becomes tractable.
	fds, err := rankedaccess.ParseFDs(q, "S: y -> z")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("with S: y→z: ", rankedaccess.Classify(rankedaccess.DirectAccessLex, q, l, fds))

	in := rankedaccess.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 2, 5)
	in.AddRow("R", 2, 7)
	in.AddRow("R", 3, 9) // dangling: y=9 never reports
	in.AddRow("S", 5, 30)
	in.AddRow("S", 7, 10)

	da, err := rankedaccess.NewDirectAccess(q, in, l, fds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answers in ⟨x, z⟩ order:")
	for k := int64(0); k < da.Total(); k++ {
		a, _ := da.Access(k)
		fmt.Printf("  #%d %v\n", k+1, rankedaccess.AnswerTuple(q, a))
	}

	// Example 8.14 (via Example 1.1's FD bullets): the trio order
	// ⟨x, z, y⟩ on the full 2-path is rescued by R: x → y, because the
	// reordered extension sorts by ⟨x, y, z⟩ — provably the same order on
	// databases satisfying the FD.
	q2 := rankedaccess.MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	trio, _ := rankedaccess.ParseLex(q2, "x, z, y")
	fmt.Println("\ntrio order, no FDs:   ", rankedaccess.Classify(rankedaccess.DirectAccessLex, q2, trio, nil))
	fds2, _ := rankedaccess.ParseFDs(q2, "R: x -> y")
	fmt.Println("trio order + R: x→y:  ", rankedaccess.Classify(rankedaccess.DirectAccessLex, q2, trio, fds2))

	// Example 8.19: the FD S: v2 → v3 promotes v3 into the order right
	// after v2 — and the reordered order has a trio, so this one stays
	// intractable. The library reports the certificate.
	q3 := rankedaccess.MustParseQuery("Q(v1, v2) :- R(v1, v3), S(v3, v2)")
	l3, _ := rankedaccess.ParseLex(q3, "v1, v2")
	fds3, _ := rankedaccess.ParseFDs(q3, "S: v2 -> v3")
	v := rankedaccess.Classify(rankedaccess.DirectAccessLex, q3, l3, fds3)
	fmt.Println("\nExample 8.19:", v)
	fmt.Println("  trio on the reordered extension:", v.Trio)
	// Selection, in contrast, becomes tractable.
	fmt.Println("  selection:", rankedaccess.Classify(rankedaccess.SelectionLex, q3, l3, fds3))
}
