// Client SDK walkthrough: boot the HTTP service in-process, then use
// package client exactly as a remote consumer would — register a
// prepared query once, probe it by name, and stream a ranked window
// through a cursor without ever materializing the answer set.
//
// Run it with:
//
//	go run ./examples/client
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"

	"rankedaccess/client"
	"rankedaccess/internal/database"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/serve"
)

func main() {
	ctx := context.Background()

	// An in-process server stands in for a remote cmd/serve deployment.
	base := startServer()

	// Dial validates the target and pings it.
	c, err := client.Dial(ctx, base, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Load some data over the wire (cmd/serve can also preload TSVs).
	rng := rand.New(rand.NewSource(1))
	var r, s [][]client.Value
	for i := 0; i < 5000; i++ {
		r = append(r, []client.Value{rng.Int63n(100), rng.Int63n(100)})
		s = append(s, []client.Value{rng.Int63n(100), rng.Int63n(100)})
	}
	if _, err := c.Load(ctx, "R", r); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Load(ctx, "S", s); err != nil {
		log.Fatal(err)
	}

	// Register once: the server parses, classifies, and preprocesses
	// the spec now — every later probe references the name only.
	p, err := c.Register(ctx, "by_xy", client.Spec{
		Query: "Q(x, y, z) :- R(x, y), S(y, z)",
		Order: "x, y desc, z",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %q: %d answers, mode=%s tractable=%v\n",
		p.Name, p.Info.Total, p.Info.Mode, p.Info.Tractable)

	// Point probes by global rank, batched in one request.
	answers, err := p.Access(ctx, 0, p.Info.Total/2, p.Info.Total-1)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range answers {
		fmt.Printf("  answer[%d] = %v\n", a.K, a.Tuple)
	}

	// Stream a ranked window through a cursor: rows arrive as NDJSON
	// and are handed over one at a time, straight off the structure's
	// O(log n) probes.
	cur, err := p.Cursor(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close(ctx)
	shown := 0
	rows, err := cur.Stream(ctx, 10000, func(row []client.Value) error {
		if shown < 3 {
			fmt.Printf("  streamed %v\n", row)
			shown++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d rows (cursor done=%v)\n", rows, cur.Done())

	// The registry hit counter proves the probes skipped re-parsing.
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: prepared=%d registry_hits=%d\n", st.Prepared, st.RegistryHits)
}

// startServer mounts the serving stack on a loopback listener.
func startServer() string {
	e := engine.New(database.NewInstance(), engine.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, serve.NewHandler(e)); err != nil {
			log.Print(err)
		}
	}()
	return "http://" + ln.Addr().String()
}
