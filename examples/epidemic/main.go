// Epidemic: the paper's introduction scenario. Join resident visit data
// with per-city case reports and run quantile queries over the ranked
// join results — for orders the paper classifies as tractable — plus the
// functional-dependency twist that rescues an intractable order.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rankedaccess"
	"rankedaccess/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(2020))

	// Visits(person, age, city) ⋈ Cases(city, date, cases).
	q, in := workload.Epidemic(rng, 50_000, 20_000, 5_000, 200, 1000)
	fmt.Println("query:", q.String())
	fmt.Println("database size:", in.Size(), "tuples")

	// The introduction's first wish — order by case count, then age — is
	// provably intractable (disruptive trio: cases and age meet later at
	// city).
	badOrder, _ := rankedaccess.ParseLex(q, "cases desc, age")
	fmt.Println("\n(cases, age):", rankedaccess.Classify(rankedaccess.DirectAccessLex, q, badOrder, nil))

	// The fix the paper suggests: put the join attribute in between.
	goodOrder, err := rankedaccess.ParseLex(q, "cases desc, city, age")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("(cases, city, age):", rankedaccess.Classify(rankedaccess.DirectAccessLex, q, goodOrder, nil))

	da, err := rankedaccess.NewDirectAccess(q, in, goodOrder, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\njoin size:", da.Total(), "answers (never materialized)")

	// Quantiles of the ranked join, each in O(log n).
	for _, p := range []int64{0, 25, 50, 75, 99} {
		k := da.Total() * p / 100
		if k >= da.Total() {
			k = da.Total() - 1
		}
		a, err := da.Access(k)
		if err != nil {
			log.Fatal(err)
		}
		t := rankedaccess.AnswerTuple(q, a)
		fmt.Printf("  p%-3d  person=%-6d age=%-4d city=%-5d date=%d cases=%d\n",
			p, t[0], t[1], t[2], t[3], t[4])
	}

	// The FD twist (§1, §8): if every city files exactly one report,
	// Cases satisfies city → date, cases — and the previously intractable
	// order (cases, age, ...) becomes tractable on the FD-extension.
	qU, inU := workload.EpidemicUniqueCity(rng, 50_000, 5_000, 200, 1000)
	fds, err := rankedaccess.ParseFDs(qU, "Cases: city -> date, cases")
	if err != nil {
		log.Fatal(err)
	}
	orderFD, _ := rankedaccess.ParseLex(qU, "cases desc, age")
	fmt.Println("\nwith FD Cases: city → date, cases:")
	fmt.Println("(cases, age):", rankedaccess.Classify(rankedaccess.DirectAccessLex, qU, orderFD, fds))

	daFD, err := rankedaccess.NewDirectAccess(qU, inU, orderFD, fds)
	if err != nil {
		log.Fatal(err)
	}
	if daFD.Total() > 0 {
		top, _ := daFD.Access(0)
		t := rankedaccess.AnswerTuple(qU, top)
		fmt.Printf("hottest city visit: person=%d age=%d city=%d date=%d cases=%d (of %d answers)\n",
			t[0], t[1], t[2], t[3], t[4], daFD.Total())
	}
}
