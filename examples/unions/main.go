// Unions: ranked direct access to a union of conjunctive queries —
// duplicates collapsed — via one structure per intersection and
// inclusion–exclusion ranks (the UCQ generalization of Carmeli et al.
// recalled in the paper's introduction).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rankedaccess"
)

func main() {
	// Two ways to be a "contact": shared office room or shared gym slot.
	// The join variable stays in the head (free-connex members); `via`
	// names the room or the slot.
	q1 := rankedaccess.MustParseQuery("Office(p, via, q) :- Desk(p, via), Meets(via, q)")
	q2 := rankedaccess.MustParseQuery("Gym(p, via, q) :- Slot(p, via), SlotOf(via, q)")

	rng := rand.New(rand.NewSource(5))
	in := rankedaccess.NewInstance()
	for i := 0; i < 20_000; i++ {
		in.AddRow("Desk", rng.Int63n(3000), rng.Int63n(300))
		in.AddRow("Meets", rng.Int63n(300), rng.Int63n(3000))
		in.AddRow("Slot", rng.Int63n(3000), rng.Int63n(500))
		in.AddRow("SlotOf", rng.Int63n(500), rng.Int63n(3000))
	}

	l, err := rankedaccess.ParseLex(q1, "p, via, q")
	if err != nil {
		log.Fatal(err)
	}
	u, err := rankedaccess.NewUnionAccess([]*rankedaccess.Query{q1, q2}, in, l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distinct union answers:", u.Total())

	// Jump around the deduplicated union.
	for _, k := range []int64{0, u.Total() / 2, u.Total() - 1} {
		t, err := u.Access(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%d] p=%d via=%d q=%d\n", k, t[0], t[1], t[2])
	}

	// Membership + position in one call.
	t, _ := u.Access(42)
	k, err := u.Inverted(t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer %v sits at index %d\n", t, k)
}
