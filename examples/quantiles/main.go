// Quantiles: the selection problem. Compute medians and percentiles of
// ranked join results in a single (quasi)linear pass — including for
// orders where building a full direct-access structure is provably
// impossible.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rankedaccess"
	"rankedaccess/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// --- Selection by LEX on an order with a disruptive trio ---
	q, in := workload.TwoPath(rng, 100_000, 10_000, 0.4)
	l, _ := rankedaccess.ParseLex(q, "x, z, y") // trio: DA impossible
	fmt.Println("query:", q.String())
	fmt.Println("order ⟨x,z,y⟩ direct access:",
		rankedaccess.Classify(rankedaccess.DirectAccessLex, q, l, nil))
	fmt.Println("order ⟨x,z,y⟩ selection:    ",
		rankedaccess.Classify(rankedaccess.SelectionLex, q, l, nil))

	count, err := rankedaccess.Count(q, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("join size:", count)
	for _, p := range []int64{25, 50, 75} {
		a, err := rankedaccess.Select(q, in, l, count*p/100, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p%d answer: %v\n", p, rankedaccess.AnswerTuple(q, a))
	}

	// --- Selection by SUM: the X + Y problem ---
	qp, inp, wp := workload.Product(rng, 2_000) // 4,000,000 pair sums
	fmt.Println("\nX + Y with |X| = |Y| = 2000 (4M sums, never materialized):")
	n2 := int64(2_000) * 2_000
	for _, p := range []int64{1, 50, 99} {
		a, err := rankedaccess.SelectBySum(qp, inp, wp, n2*p/100, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p%-2d sum = %v\n", p, wp.AnswerWeight(qp, a))
	}

	// --- Selection by SUM on a join (fmh = 2) ---
	w := rankedaccess.IdentitySum(q.Head...)
	fmt.Println("\n2-path by SUM (DA impossible, selection ⟨1, n log n⟩):")
	med, err := rankedaccess.SelectBySum(q, in, w, count/2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  median weight = %v at answer %v\n",
		w.AnswerWeight(q, med), rankedaccess.AnswerTuple(q, med))

	// The full 3-path keeps its last variable and crosses the fmh ≤ 2
	// frontier: the library refuses, citing the certificate.
	q3 := rankedaccess.MustParseQuery("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)")
	fmt.Println("\nfull 3-path by SUM:",
		rankedaccess.Classify(rankedaccess.SelectionSum, q3, rankedaccess.LexOrder{}, nil))
}
