// Command benchgate is CI's benchmark regression gate: it parses Go
// benchmark output (the same format benchstat consumes), compares a PR
// run against a baseline run, and fails when a benchmark got more than
// -threshold slower or allocates more per op at all. It also emits a
// machine-readable JSON summary of the new run for artifact archival.
//
//	go test -bench ... -count 6 -benchmem | tee new.txt
//	git worktree / checkout base && go test -bench ... | tee old.txt
//	benchgate -old old.txt -new new.txt -json BENCH_$SHA.json -sha $SHA
//
// Medians across -count repetitions are compared, which keeps single
// noisy iterations from tripping the gate; benchmarks whose baseline
// median is under -min-ns are skipped for the time check (micro-noise)
// but still gated on allocations. Benchmarks present on only one side
// are reported and ignored.
//
// Cross-benchmark invariants within one run are gated with -ratio
// (repeatable): "-ratio BenchmarkWarmStart/BenchmarkColdBuild<=0.1"
// fails unless the first benchmark's median time is at most the given
// fraction of the second's. Unlike the baseline comparison, ratios are
// checked on every run (pushes included), since both sides come from
// the same machine and the same invocation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s]+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

type sample struct {
	nsPerOp     float64
	bPerOp      float64
	allocsPerOp float64
	hasAllocs   bool
}

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	HasAllocs   bool    `json:"has_allocs"`
	Samples     int     `json:"samples"`
}

func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		s := sample{}
		s.nsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			s.bPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			s.allocsPerOp, _ = strconv.ParseFloat(m[5], 64)
			s.hasAllocs = true
		}
		out[m[1]] = append(out[m[1]], s)
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func summarize(samples map[string][]sample) map[string]result {
	out := make(map[string]result, len(samples))
	for name, ss := range samples {
		var ns, bs, allocs []float64
		hasAllocs := false
		for _, s := range ss {
			ns = append(ns, s.nsPerOp)
			bs = append(bs, s.bPerOp)
			allocs = append(allocs, s.allocsPerOp)
			hasAllocs = hasAllocs || s.hasAllocs
		}
		out[name] = result{
			Name:    name,
			NsPerOp: median(ns), BPerOp: median(bs), AllocsPerOp: median(allocs),
			HasAllocs: hasAllocs,
			Samples:   len(ss),
		}
	}
	return out
}

// ratio is one cross-benchmark bound: Num's median must be at most
// Factor times Denom's.
type ratio struct {
	Num, Denom string
	Factor     float64
}

// parseRatio parses "BenchA/BenchB<=0.1".
func parseRatio(s string) (ratio, error) {
	var r ratio
	names, factor, ok := strings.Cut(s, "<=")
	if ok {
		r.Num, r.Denom, ok = strings.Cut(names, "/")
	}
	if ok {
		var err error
		r.Factor, err = strconv.ParseFloat(factor, 64)
		ok = err == nil && r.Factor > 0 && r.Num != "" && r.Denom != ""
	}
	if !ok {
		return r, fmt.Errorf("benchgate: bad -ratio %q (want \"BenchA/BenchB<=0.1\")", s)
	}
	return r, nil
}

// checkRatios gates every ratio against one run's medians; a missing
// benchmark fails the gate (a bound that silently stopped being checked
// is worse than a red build).
func checkRatios(results map[string]result, ratios []ratio) bool {
	failed := false
	for _, r := range ratios {
		num, okN := results[r.Num]
		denom, okD := results[r.Denom]
		if !okN || !okD {
			fmt.Printf("RATIO MISSING      %s/%s: benchmark absent from the run\n", r.Num, r.Denom)
			failed = true
			continue
		}
		got := num.NsPerOp / denom.NsPerOp
		status := "ratio ok"
		if got > r.Factor {
			status = "RATIO EXCEEDED"
			failed = true
		}
		fmt.Printf("%-18s %s/%s = %.3f (bound %.3f): %12.0f vs %12.0f ns/op\n",
			status, r.Num, r.Denom, got, r.Factor, num.NsPerOp, denom.NsPerOp)
	}
	return failed
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func sortedNames(m map[string]result) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline benchmark output (empty: emit JSON only, no gate)")
		newPath   = flag.String("new", "", "PR benchmark output (required)")
		jsonPath  = flag.String("json", "", "write a JSON summary of the new run here")
		sha       = flag.String("sha", "", "commit SHA recorded in the JSON summary")
		threshold = flag.Float64("threshold", 1.20, "fail when new median time exceeds old by this factor")
		minNs     = flag.Float64("min-ns", 100, "skip the time check for baselines faster than this (ns)")
		ratiosRaw multiFlag
	)
	flag.Var(&ratiosRaw, "ratio", "cross-benchmark bound \"BenchA/BenchB<=0.1\" checked within the new run (repeatable)")
	flag.Parse()
	ratios := make([]ratio, len(ratiosRaw))
	for i, s := range ratiosRaw {
		r, err := parseRatio(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ratios[i] = r
	}
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	newSamples, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	newResults := summarize(newSamples)

	if *jsonPath != "" {
		doc := struct {
			SHA        string   `json:"sha,omitempty"`
			GOOS       string   `json:"goos"`
			GOARCH     string   `json:"goarch"`
			Benchmarks []result `json:"benchmarks"`
		}{SHA: *sha, GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
		for _, name := range sortedNames(newResults) {
			doc.Benchmarks = append(doc.Benchmarks, newResults[name])
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: writing %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
	}

	ratioFailed := checkRatios(newResults, ratios)

	if *oldPath == "" {
		if ratioFailed {
			fmt.Println("benchgate: FAIL (ratio bound exceeded)")
			os.Exit(1)
		}
		fmt.Printf("benchgate: recorded %d benchmarks (no baseline, comparison gate skipped)\n", len(newResults))
		return
	}
	oldSamples, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	oldResults := summarize(oldSamples)

	failed := false
	for _, name := range sortedNames(newResults) {
		nr := newResults[name]
		or, ok := oldResults[name]
		if !ok {
			fmt.Printf("NEW   %-60s %12.0f ns/op (no baseline)\n", name, nr.NsPerOp)
			continue
		}
		status := "ok"
		if or.NsPerOp >= *minNs && nr.NsPerOp > or.NsPerOp**threshold {
			status = "TIME REGRESSION"
			failed = true
		}
		if or.HasAllocs && nr.HasAllocs && nr.AllocsPerOp > or.AllocsPerOp {
			if status == "ok" {
				status = "ALLOC REGRESSION"
			} else {
				status += " + ALLOC REGRESSION"
			}
			failed = true
		}
		fmt.Printf("%-18s %-60s %12.0f -> %12.0f ns/op  %6.0f -> %6.0f allocs/op\n",
			status, name, or.NsPerOp, nr.NsPerOp, or.AllocsPerOp, nr.AllocsPerOp)
	}
	for _, name := range sortedNames(oldResults) {
		if _, ok := newResults[name]; !ok {
			fmt.Printf("GONE  %s\n", name)
		}
	}
	if failed || ratioFailed {
		fmt.Printf("benchgate: FAIL (time threshold %.0f%%, any alloc/op increase, ratio bounds)\n", (*threshold-1)*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (%d benchmarks compared)\n", len(newResults))
}
