package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleOld = `goos: linux
goarch: amd64
pkg: rankedaccess
BenchmarkAccess_Layered/n=65536-8         	     100	      1000 ns/op	       0 B/op	       0 allocs/op
BenchmarkAccess_Layered/n=65536-8         	     100	      1100 ns/op	       0 B/op	       0 allocs/op
BenchmarkAccess_Layered/n=65536-8         	     100	       900 ns/op	       0 B/op	       0 allocs/op
BenchmarkBuild-8                          	       1	   5000000 ns/op
ok  	rankedaccess	1.0s
`

const sampleNew = `BenchmarkAccess_Layered/n=65536-8         	     100	      1150 ns/op	       0 B/op	       1 allocs/op
BenchmarkBuild-8                          	       1	   5500000 ns/op
BenchmarkFresh-8                          	      10	       100 ns/op
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseAndSummarize(t *testing.T) {
	samples, err := parseFile(write(t, "old.txt", sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	res := summarize(samples)
	acc, ok := res["BenchmarkAccess_Layered/n=65536"]
	if !ok {
		t.Fatalf("missing benchmark (GOMAXPROCS suffix not stripped?): %v", sortedNames(res))
	}
	if acc.Samples != 3 || acc.NsPerOp != 1000 {
		t.Fatalf("median over samples = %+v, want 3 samples, 1000 ns/op", acc)
	}
	if !acc.HasAllocs {
		t.Fatal("allocs column not parsed")
	}
	build := res["BenchmarkBuild"]
	if build.NsPerOp != 5000000 || build.HasAllocs {
		t.Fatalf("build = %+v", build)
	}
}

func TestParseRatio(t *testing.T) {
	r, err := parseRatio("BenchmarkWarmStart/BenchmarkColdBuild<=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Num != "BenchmarkWarmStart" || r.Denom != "BenchmarkColdBuild" || r.Factor != 0.1 {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"", "A/B", "A<=0.1", "A/B<=x", "A/B<=0", "/B<=0.1", "A/<=0.1"} {
		if _, err := parseRatio(bad); err == nil {
			t.Fatalf("parseRatio accepted %q", bad)
		}
	}
}

func TestCheckRatios(t *testing.T) {
	results := map[string]result{
		"BenchmarkWarmStart": {NsPerOp: 2e6},
		"BenchmarkColdBuild": {NsPerOp: 70e6},
	}
	ok := ratio{Num: "BenchmarkWarmStart", Denom: "BenchmarkColdBuild", Factor: 0.1}
	if checkRatios(results, []ratio{ok}) {
		t.Fatal("a 35x speedup failed the 10x bound")
	}
	tight := ok
	tight.Factor = 0.01
	if !checkRatios(results, []ratio{tight}) {
		t.Fatal("a violated bound passed")
	}
	missing := ratio{Num: "BenchmarkGone", Denom: "BenchmarkColdBuild", Factor: 0.1}
	if !checkRatios(results, []ratio{missing}) {
		t.Fatal("a missing benchmark passed the ratio gate")
	}
}

func TestRegressionDetection(t *testing.T) {
	oldRes := summarize(mustParse(t, write(t, "old.txt", sampleOld)))
	newRes := summarize(mustParse(t, write(t, "new.txt", sampleNew)))

	// Time: 1000 -> 1150 is within 20%; 5000000 -> 5500000 is within
	// 20% too. Allocs: 0 -> 1 must be flagged.
	acc := newRes["BenchmarkAccess_Layered/n=65536"]
	old := oldRes["BenchmarkAccess_Layered/n=65536"]
	if acc.NsPerOp > old.NsPerOp*1.20 {
		t.Fatal("test premise broken: time should be within threshold")
	}
	if !(acc.AllocsPerOp > old.AllocsPerOp) {
		t.Fatal("alloc regression not visible in medians")
	}
	if _, ok := oldRes["BenchmarkFresh"]; ok {
		t.Fatal("BenchmarkFresh should only exist in the new run")
	}
}

func mustParse(t *testing.T, path string) map[string][]sample {
	t.Helper()
	s, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
