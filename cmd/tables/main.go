// Command tables regenerates the paper's figures and tables from the
// implementation and prints them to stdout.
//
// Usage:
//
//	tables [-fig1] [-fig2] [-ex11] [-fig4] [-fig8] [-fds] [-all]
//
// With no flags, -all is assumed.
package main

import (
	"flag"
	"fmt"
	"os"

	"rankedaccess/internal/tables"
)

func main() {
	var (
		fig1 = flag.Bool("fig1", false, "Figure 1: classification overview")
		fig2 = flag.Bool("fig2", false, "Figure 2: example orderings")
		ex11 = flag.Bool("ex11", false, "Example 1.1: bullet classification")
		fig4 = flag.Bool("fig4", false, "Figure 4: preprocessing annotations")
		fig8 = flag.Bool("fig8", false, "Figure 8: direct access by SUM")
		fds  = flag.Bool("fds", false, "Section 8: FD examples")
		all  = flag.Bool("all", false, "everything")
	)
	flag.Parse()
	if !(*fig1 || *fig2 || *ex11 || *fig4 || *fig8 || *fds) {
		*all = true
	}
	sep := func() { fmt.Println() }
	if *all || *fig1 {
		fmt.Print(tables.Fig1())
		sep()
	}
	if *all || *fig2 {
		fmt.Print(tables.Fig2())
		sep()
	}
	if *all || *ex11 {
		fmt.Print(tables.Example11())
		sep()
	}
	if *all || *fig4 {
		out, err := tables.Fig4()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		sep()
	}
	if *all || *fig8 {
		fmt.Print(tables.Fig8())
		sep()
	}
	if *all || *fds {
		fmt.Print(tables.FDExamples())
	}
}
