// Command serve runs the ranked direct-access engine as an HTTP/JSON
// service: load an instance (from TSV files at startup and/or POST
// /load at runtime), then answer /access, /select, /classify, and
// /count requests. Access structures are cached across requests, so a
// repeated (query, order) pair skips its O(n log n) preprocessing.
//
// Usage:
//
//	serve -addr :8080 -data /tmp/data -cache 128 -workers 0
//
// Every <data>/<Name>.tsv file (as written by cmd/gen) is loaded as
// relation <Name>. With -workers 1 preprocessing runs serially; 0 uses
// all cores.
//
// Example session:
//
//	curl -s localhost:8080/access -d '{
//	  "query": "Q(x, y, z) :- R(x, y), S(y, z)",
//	  "order": "x, y desc, z",
//	  "ks": [0, 1000, 123456]
//	}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"rankedaccess/internal/database"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/par"
	"rankedaccess/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataDir = flag.String("data", "", "directory of <Relation>.tsv files to preload")
		cache   = flag.Int("cache", engine.DefaultCacheSize, "max cached access structures")
		workers = flag.Int("workers", 0, "preprocessing worker bound (0 = all cores)")
	)
	flag.Parse()
	par.SetLimit(*workers)

	in := database.NewInstance()
	if *dataDir != "" {
		if err := loadDir(in, *dataDir); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}
	e := engine.New(in, engine.Options{CacheSize: *cache})

	log.Printf("serve: %d tuples loaded, listening on %s", in.Size(), *addr)
	if err := http.ListenAndServe(*addr, serve.NewHandler(e)); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

// loadDir loads every *.tsv file in dir as the relation named by its
// base name.
func loadDir(in *database.Instance, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	loaded := 0
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".tsv") {
			continue
		}
		name := strings.TrimSuffix(ent.Name(), ".tsv")
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			return err
		}
		err = in.ReadRelation(name, f)
		f.Close()
		if err != nil {
			return err
		}
		loaded++
	}
	if loaded == 0 {
		return fmt.Errorf("no .tsv files in %s", dir)
	}
	return nil
}
