// Command serve runs the ranked direct-access engine as an HTTP/JSON
// service: load an instance (from TSV files at startup and/or POST
// /load at runtime), then serve the /v1 prepared-query API (register a
// query once, probe and stream it by name — see internal/serve) plus
// the legacy one-shot endpoints. Access structures are cached across
// requests, so a repeated (query, order) pair skips its O(n log n)
// preprocessing.
//
// Usage:
//
//	serve -addr :8080 -data /tmp/data -cache 128 -workers 0 \
//	      -snapshot-dir /var/lib/ra -checkpoint-every 5m \
//	      -request-timeout 2s -rate-limit 100 -max-concurrent 64
//
// Every <data>/<Name>.tsv file (as written by cmd/gen) is loaded as
// relation <Name>. With -workers 1 preprocessing runs serially; 0 uses
// all cores. SIGINT/SIGTERM drain in-flight requests before exiting.
//
// The overload controls (-request-timeout, -rate-limit/-rate-burst,
// -max-concurrent/-max-queue, -stream-write-timeout, -max-body) are all
// off or at permissive defaults unless set; shed requests answer
// 429/503 with Retry-After, and /healthz (liveness) plus /readyz
// (readiness: WAL healthy, rebuild backlog below the hard limit,
// snapshot directory writable) report the serving state.
//
// Observability: GET /metrics serves every engine and serving counter
// in the Prometheus text format (scrape it, or point cmd/dash at the
// server); -log-requests emits one JSON log record per request to
// stderr, with request ids that thread through to engine build and
// rebuild events; -ops-addr starts a second, private listener carrying
// /debug/pprof plus /metrics and the health probes — keep it on
// loopback or an internal interface, never the public address.
//
// Distributed tracing (-trace-rate): every request runs under a
// request-scoped span that propagates HTTP → coordinator → RPC →
// shard via W3C traceparent headers and the RARC v2 wire field, so one
// trace id stitches a scatter-gather across every node that served it.
// Traces are kept when head-sampled at -trace-rate, on any error, or
// when slower than -trace-slow, and served from an in-memory ring at
// GET /debug/traces on the ops listener (list, ?sort=dur, ?id=<trace>
// waterfall). Histogram exemplars link /metrics latency buckets to
// stored trace ids. -trace-export-url additionally POSTs finished
// traces as OTLP/JSON to a collector.
//
// With -snapshot-dir the server warm-starts from the newest snapshot in
// the directory (instance, built structures, and prepared-query
// registry restored in milliseconds, structures mapped zero-copy; -data
// is ignored on a warm start) and exposes the /v1/snapshots endpoints.
// -checkpoint-every additionally checkpoints in the background whenever
// the instance changed; a final checkpoint runs during graceful
// shutdown, after in-flight requests and any in-flight background
// checkpoint have drained, so a clean restart loses nothing.
//
// Distributed serving (-role): the default role "single" serves its
// own instance. "-role=shard -rpc-addr :9101" additionally answers the
// internal/rpc shard protocol on the given address, serving the shard
// subsets coordinators ask it to build (the HTTP API stays up — that
// is how a shard node is loaded with data). "-role=coordinator
// -cluster cluster.json" owns no data at all: every prepared query is
// planned locally and scatter-gathered over the cluster's shard nodes,
// byte-identical to single-node answers; /readyz reflects probed node
// health, and /metrics carries per-peer RPC series. See README
// "Distributed serving" for the cluster config format.
//
// Example session:
//
//	curl -s localhost:8080/v1/queries -d '{
//	  "name": "by_xyz",
//	  "query": "Q(x, y, z) :- R(x, y), S(y, z)",
//	  "order": "x, y desc, z"
//	}'
//	curl -s localhost:8080/v1/queries/by_xyz/access -d '{"ks": [0, 1000]}'
//	curl -s -X POST localhost:8080/v1/snapshots
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rankedaccess/internal/cluster"
	"rankedaccess/internal/database"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/metrics"
	"rankedaccess/internal/par"
	"rankedaccess/internal/rpc"
	"rankedaccess/internal/serve"
	"rankedaccess/internal/snapshot"
	"rankedaccess/internal/trace"
)

// drainTimeout bounds graceful shutdown: in-flight requests (including
// long NDJSON streams) get this long to finish after SIGINT/SIGTERM
// before the listener is torn down hard.
const drainTimeout = 15 * time.Second

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataDir = flag.String("data", "", "directory of <Relation>.tsv files to preload")
		cache   = flag.Int("cache", engine.DefaultCacheSize, "max cached access structures")
		workers = flag.Int("workers", 0, "preprocessing worker bound (0 = all cores)")
		snapDir = flag.String("snapshot-dir", "", "snapshot directory: warm-start from the newest snapshot and enable /v1/snapshots")
		ckEvery = flag.Duration("checkpoint-every", 0, "background checkpoint interval (0 disables; requires -snapshot-dir)")

		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline, queue wait included; exceeded requests get 503 + Retry-After (0 disables)")
		rateLimit   = flag.Float64("rate-limit", 0, "per-client requests/sec token-bucket rate; over-budget clients get 429 + Retry-After (0 disables)")
		rateBurst   = flag.Int("rate-burst", 0, "per-client burst on top of -rate-limit (min 1)")
		maxConc     = flag.Int("max-concurrent", 0, "max requests running at once; excess waits up to -max-queue then sheds 503 (0 disables)")
		maxQueue    = flag.Int("max-queue", -1, "max requests waiting for a slot (-1 = -max-concurrent)")
		streamWrite = flag.Duration("stream-write-timeout", 0, "per-chunk NDJSON write deadline so stalled readers cannot pin an epoch (0 = 30s, negative disables)")
		maxBody     = flag.Int64("max-body", 0, "request body cap in bytes, 413 beyond it (0 = 256 MiB)")

		opsAddr = flag.String("ops-addr", "", "operator listener (pprof + /metrics + health probes + /debug/traces) on a separate, private address; off when empty")

		traceRate   = flag.Float64("trace-rate", -1, "head-sampling rate in [0,1]; errors and the slow tail are always kept; negative disables tracing entirely")
		traceSlow   = flag.Duration("trace-slow", 0, "always keep traces slower than this (0 = 250ms)")
		traceBuffer = flag.Int("trace-buffer", 0, "in-memory trace ring capacity served at /debug/traces (0 = 1024)")
		traceExport = flag.String("trace-export-url", "", "POST finished traces as OTLP/JSON to this collector URL (off when empty)")
		logRequests = flag.Bool("log-requests", false, "emit one JSON log record per request to stderr (request ids propagate into engine events)")
		logMaxPS    = flag.Int("log-max-per-sec", 0, "request-log records kept per second before sampling kicks in (0 = 500, negative disables sampling)")

		role        = flag.String("role", "single", "serving role: single, shard (also answer the shard RPC protocol on -rpc-addr), or coordinator (own no data; scatter-gather over -cluster)")
		clusterPath = flag.String("cluster", "", "cluster config JSON (required for -role=coordinator)")
		rpcAddr     = flag.String("rpc-addr", "", "shard RPC listen address (required for -role=shard)")
	)
	flag.Parse()
	par.SetLimit(*workers)
	if *ckEvery > 0 && *snapDir == "" {
		log.Fatal("serve: -checkpoint-every requires -snapshot-dir")
	}
	switch *role {
	case "single":
		if *rpcAddr != "" {
			log.Fatal("serve: -rpc-addr requires -role=shard")
		}
		if *clusterPath != "" {
			log.Fatal("serve: -cluster requires -role=coordinator")
		}
	case "shard":
		if *rpcAddr == "" {
			log.Fatal("serve: -role=shard requires -rpc-addr")
		}
	case "coordinator":
		if *clusterPath == "" {
			log.Fatal("serve: -role=coordinator requires -cluster")
		}
		if *dataDir != "" || *snapDir != "" {
			log.Fatal("serve: a coordinator owns no data; -data and -snapshot-dir are for shard or single roles")
		}
	default:
		log.Fatalf("serve: unknown -role %q (single, shard, coordinator)", *role)
	}

	// One structured logger feeds both layers: the serve middleware's
	// per-request records and the engine's build/rebuild/WAL events,
	// joined by the request ids the middleware propagates via context.
	var appLog *slog.Logger
	if *logRequests {
		appLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	// One tracer serves the whole process: the HTTP middleware roots
	// (or adopts) request spans, the coordinator's scatter-gather and
	// RPC clients continue them over the wire, and a shard role's RPC
	// server + node continue traces arriving from coordinators.
	var tracer *trace.Tracer
	if *traceRate >= 0 {
		if *traceRate > 1 {
			log.Fatal("serve: -trace-rate must be in [0, 1]")
		}
		topts := trace.Options{Rate: *traceRate, Slow: *traceSlow, Buffer: *traceBuffer}
		if *traceExport != "" {
			topts.Export = trace.NewExporter(*traceExport, "rankedaccess-"+*role)
		}
		tracer = trace.New(topts)
		log.Printf("serve: tracing on (rate %g, slow %s); explorer at /debug/traces on the ops listener", *traceRate, *traceSlow)
		if *opsAddr == "" {
			log.Printf("serve: warning: tracing without -ops-addr keeps traces but exposes no /debug/traces listener")
		}
	} else if *traceExport != "" {
		log.Fatal("serve: -trace-export-url requires -trace-rate >= 0")
	}

	var e *engine.Engine
	var coord *cluster.Coordinator
	warm := false
	if *snapDir != "" {
		// First boot against a fresh directory: the WAL is created inside
		// it immediately, so the directory itself must exist up front.
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			log.Fatalf("serve: snapshot dir: %v", err)
		}
		snapshot.CleanTmp(*snapDir) // sweep temp files a crashed checkpoint stranded
		var err error
		e, warm, err = engine.Open(*snapDir, engine.Options{CacheSize: *cache, Logger: appLog})
		if err != nil {
			log.Fatalf("serve: warm start: %v", err)
		}
		if warm {
			st := e.Stats()
			log.Printf("serve: warm start from %s: %d tuples, %d structures mapped, version %d",
				*snapDir, st.Tuples, st.WarmStructures, st.Version)
		}
	} else {
		eopts := engine.Options{CacheSize: *cache, Logger: appLog}
		if *role == "coordinator" {
			cfg, err := cluster.Load(*clusterPath)
			if err != nil {
				log.Fatalf("serve: %v", err)
			}
			coord = cluster.NewCoordinator(cfg, rpc.Options{})
			coord.SetTracer(tracer)
			eopts.Remote = coord
			log.Printf("serve: coordinator over %d shards across %d nodes", cfg.Shards, len(cfg.Nodes))
		}
		e = engine.New(database.NewInstance(), eopts)
	}
	switch {
	case *dataDir != "" && warm:
		log.Printf("serve: warm start restored the instance; ignoring -data %s", *dataDir)
	case *dataDir != "":
		loaded := 0
		var err error
		e.Mutate(func(in *database.Instance) {
			loaded, err = loadDir(in, *dataDir)
		})
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		log.Printf("serve: loaded %d relations from %s", loaded, *dataDir)
	}

	// Role plumbing into the shared HTTP surface: a shard node's RPC
	// server counters and a coordinator's per-peer client metrics land
	// on the same /metrics endpoint, and a coordinator's readiness
	// follows its probed view of the cluster.
	var rsrv *rpc.Server
	var extraMetrics func(*metrics.Registry)
	var readyCheck func() []string
	switch *role {
	case "shard":
		node := cluster.NewNode(e)
		node.SetTracer(tracer)
		rsrv = rpc.NewServer(node)
		rsrv.SetTracer(tracer)
		extraMetrics = rsrv.Instrument
	case "coordinator":
		extraMetrics = coord.RegisterMetrics
		readyCheck = coord.ReadyReasons
	}

	api := serve.NewHandlerWith(e, serve.Config{
		SnapshotDir:        *snapDir,
		RequestTimeout:     *reqTimeout,
		MaxBodyBytes:       *maxBody,
		RatePerSec:         *rateLimit,
		RateBurst:          *rateBurst,
		MaxConcurrent:      *maxConc,
		MaxQueue:           *maxQueue,
		StreamWriteTimeout: *streamWrite,
		RequestLog:         appLog,
		LogMaxPerSec:       *logMaxPS,
		ReadyCheck:         readyCheck,
		ExtraMetrics:       extraMetrics,
		Tracer:             tracer,
	})

	if rsrv != nil {
		lis, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			log.Fatalf("serve: rpc listen: %v", err)
		}
		go func() {
			log.Printf("serve: shard RPC listener on %s", lis.Addr())
			if err := rsrv.Serve(lis); err != nil {
				log.Printf("serve: rpc: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: api,
		// Bound slow-header clients (slowloris) and idle keep-alive
		// connections; no overall write timeout, since NDJSON cursor
		// streams are legitimately long-lived.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// The ops listener carries pprof (plus /metrics and the health
	// probes) on its own, private address — it never shares the public
	// port, so no client can reach a profile endpoint. It serves until
	// the process exits; profiles during drain are exactly when an
	// operator wants them.
	if *opsAddr != "" {
		ops := &http.Server{
			Addr:              *opsAddr,
			Handler:           serve.NewOpsHandler(api),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("serve: ops listener (pprof, metrics) on %s", *opsAddr)
			if err := ops.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("serve: ops listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background checkpointer. lastCk tracks the last version durably on
	// disk (the warm-start version counts), so ticks and the final
	// shutdown checkpoint skip when nothing changed.
	var lastCk atomic.Uint64
	lastCk.Store(^uint64(0))
	if warm {
		lastCk.Store(e.Version())
	}
	checkpoint := func(why string) {
		if e.Version() == lastCk.Load() {
			return
		}
		info, err := e.Checkpoint(*snapDir)
		if err != nil {
			log.Printf("serve: %s checkpoint: %v", why, err)
			return
		}
		lastCk.Store(info.Version)
		log.Printf("serve: %s checkpoint %s: %d bytes, %d structures (version %d)",
			why, info.Name, info.Bytes, info.Structures, info.Version)
	}
	ckCtx, ckStop := context.WithCancel(context.Background())
	var ckWG sync.WaitGroup
	if *ckEvery > 0 {
		ckWG.Add(1)
		go func() {
			defer ckWG.Done()
			t := time.NewTicker(*ckEvery)
			defer t.Stop()
			for {
				select {
				case <-ckCtx.Done():
					return
				case <-t.C:
					checkpoint("background")
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("serve: %d tuples loaded, listening on %s", e.Stats().Tuples, *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		log.Printf("serve: signal received, draining in-flight requests (up to %s)", drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("serve: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
		// Requests are drained; flush durability before exiting. The
		// ticker goroutine is stopped first and awaited, so an in-flight
		// background checkpoint completes (its temp-file write/rename is
		// atomic and self-cleaning) rather than being torn mid-write,
		// and the final checkpoint below cannot race it.
		ckStop()
		ckWG.Wait()
		if *snapDir != "" {
			checkpoint("shutdown")
		}
		// Stop answering shard RPCs only after HTTP drained: in-flight
		// coordinator scatters against this node get to finish.
		if rsrv != nil {
			_ = rsrv.Close()
		}
		if coord != nil {
			coord.Close()
		}
		if tracer != nil {
			tracer.Close()
		}
		log.Printf("serve: drained, bye")
	}
}

// loadDir loads every *.tsv file in dir as the relation named by its
// base name, returning how many relations were loaded.
func loadDir(in *database.Instance, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".tsv") {
			continue
		}
		name := strings.TrimSuffix(ent.Name(), ".tsv")
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			return loaded, err
		}
		err = in.ReadRelation(name, f)
		f.Close()
		if err != nil {
			return loaded, err
		}
		loaded++
	}
	if loaded == 0 {
		return 0, fmt.Errorf("no .tsv files in %s", dir)
	}
	return loaded, nil
}
