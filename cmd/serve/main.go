// Command serve runs the ranked direct-access engine as an HTTP/JSON
// service: load an instance (from TSV files at startup and/or POST
// /load at runtime), then serve the /v1 prepared-query API (register a
// query once, probe and stream it by name — see internal/serve) plus
// the legacy one-shot endpoints. Access structures are cached across
// requests, so a repeated (query, order) pair skips its O(n log n)
// preprocessing.
//
// Usage:
//
//	serve -addr :8080 -data /tmp/data -cache 128 -workers 0
//
// Every <data>/<Name>.tsv file (as written by cmd/gen) is loaded as
// relation <Name>. With -workers 1 preprocessing runs serially; 0 uses
// all cores. SIGINT/SIGTERM drain in-flight requests before exiting.
//
// Example session:
//
//	curl -s localhost:8080/v1/queries -d '{
//	  "name": "by_xyz",
//	  "query": "Q(x, y, z) :- R(x, y), S(y, z)",
//	  "order": "x, y desc, z"
//	}'
//	curl -s localhost:8080/v1/queries/by_xyz/access -d '{"ks": [0, 1000]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rankedaccess/internal/database"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/par"
	"rankedaccess/internal/serve"
)

// drainTimeout bounds graceful shutdown: in-flight requests (including
// long NDJSON streams) get this long to finish after SIGINT/SIGTERM
// before the listener is torn down hard.
const drainTimeout = 15 * time.Second

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataDir = flag.String("data", "", "directory of <Relation>.tsv files to preload")
		cache   = flag.Int("cache", engine.DefaultCacheSize, "max cached access structures")
		workers = flag.Int("workers", 0, "preprocessing worker bound (0 = all cores)")
	)
	flag.Parse()
	par.SetLimit(*workers)

	in := database.NewInstance()
	if *dataDir != "" {
		if err := loadDir(in, *dataDir); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}
	e := engine.New(in, engine.Options{CacheSize: *cache})

	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewHandler(e),
		// Bound slow-header clients (slowloris) and idle keep-alive
		// connections; no overall write timeout, since NDJSON cursor
		// streams are legitimately long-lived.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serve: %d tuples loaded, listening on %s", in.Size(), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		log.Printf("serve: signal received, draining in-flight requests (up to %s)", drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("serve: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
		log.Printf("serve: drained, bye")
	}
}

// loadDir loads every *.tsv file in dir as the relation named by its
// base name.
func loadDir(in *database.Instance, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	loaded := 0
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".tsv") {
			continue
		}
		name := strings.TrimSuffix(ent.Name(), ".tsv")
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			return err
		}
		err = in.ReadRelation(name, f)
		f.Close()
		if err != nil {
			return err
		}
		loaded++
	}
	if loaded == 0 {
		return fmt.Errorf("no .tsv files in %s", dir)
	}
	return nil
}
