// Command rabench runs the reproduction harness: one parameter sweep per
// paper claim (theorem / figure), printing measured preprocessing,
// access, selection, and baseline times so the claimed complexity shapes
// can be verified (see EXPERIMENTS.md for recorded runs).
//
// Usage:
//
//	rabench                     # all experiments at default scales
//	rabench -exp thm33 -scale 3 # one experiment, larger sweep
//
// Profiling hot-path regressions without editing code:
//
//	rabench -exp thm33 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// Sharded serving benchmarks (per-shard build plus merged access and
// range timings, in Go benchmark format so CI's benchstat gate and
// cmd/benchgate can diff runs):
//
//	rabench -shards 1,2,4,8 > new.txt
//	go run ./cmd/benchgate -old old.txt -new new.txt
//
// Distributed serving benchmarks (coordinator-path access and range
// quantiles against live shard nodes, next to the in-process sharded
// baseline over the same instance — see remote.go):
//
//	rabench -remote 127.0.0.1:9101,127.0.0.1:9102 -remote-shards 4
//
// Tracing overhead benchmark (per-request serving cost with and without
// an active tracer, for CI's traced/untraced ratio gate — see
// tracing.go):
//
//	rabench -tracing > tracing.txt
//	go run ./cmd/benchgate -new tracing.txt \
//	  -ratio 'BenchmarkTracedAccess/BenchmarkUntracedAccess<=1.05'
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"rankedaccess/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "thm33 | thm41 | thm51 | thm61 | thm73 | fig8 | enum | fd | epidemic | all")
		scale      = flag.Int("scale", 2, "sweep scale 1..4 (each step quadruples the largest n)")
		seed       = flag.Int64("seed", 42, "random seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the experiments) to this file")
		shards     = flag.String("shards", "", "benchmark sharded execution at these shard counts (e.g. 1,2,4,8) instead of the experiments")
		mixed      = flag.Bool("mixed", false, "benchmark read latency under concurrent writes (MVCC write path) instead of the experiments")
		tracing    = flag.Bool("tracing", false, "benchmark per-request tracing overhead (traced vs untraced) instead of the experiments")
		remote     = flag.String("remote", "", "benchmark the coordinator path against these shard-node addrs (comma-separated) instead of the experiments")
		remoteP    = flag.Int("remote-shards", 4, "cluster-wide shard count for -remote")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rabench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rabench: writing heap profile: %v\n", err)
			}
		}()
	}

	if *shards != "" {
		if err := runShardBench(os.Stdout, *shards, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}
	if *remote != "" {
		if err := runRemoteBench(os.Stdout, *remote, *remoteP, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}
	if *mixed {
		if err := runMixedBench(os.Stdout, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tracing {
		if err := runTracingBench(os.Stdout, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	sweep := func(base int) []int {
		out := []int{base}
		for i := 1; i < 3+*scale; i++ {
			base *= 2
			out = append(out, base)
		}
		return out
	}
	big := sweep(4096)
	small := sweep(512) // experiments whose baseline is super-linear
	quad := sweep(128)  // experiments whose baseline materializes n² answers

	run := func(name string, tb func() experiments.Table) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Println(tb().Render())
	}
	run("thm33", func() experiments.Table { return experiments.Theorem33(big, 1000, *seed) })
	run("thm41", func() experiments.Table { return experiments.Theorem41(big, 1000, *seed) })
	run("thm51", func() experiments.Table { return experiments.Theorem51(big, 1000, *seed) })
	run("thm61", func() experiments.Table { return experiments.Theorem61(big, *seed) })
	run("thm73", func() experiments.Table { return experiments.Theorem73(small, *seed) })
	run("fig8", func() experiments.Table { return experiments.Fig8Hardness(quad, *seed) })
	run("enum", func() experiments.Table { return experiments.RankedEnumContrast(small, 100, *seed) })
	run("fd", func() experiments.Table { return experiments.FDRescue(big, 1000, *seed) })
	run("epidemic", func() experiments.Table { return experiments.Epidemic(big, *seed) })
	run("decompose", func() experiments.Table { return experiments.TriangleDecomposition(small, *seed) })
	run("union", func() experiments.Table { return experiments.UnionAccess(small, *seed) })

	switch *exp {
	case "all", "thm33", "thm41", "thm51", "thm61", "thm73", "fig8", "enum", "fd", "epidemic",
		"decompose", "union":
	default:
		fmt.Fprintf(os.Stderr, "rabench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
