package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"rankedaccess/internal/cluster"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/rpc"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

// runRemoteBench benchmarks the coordinator path against live shard
// nodes and prints Access/Range latency quantiles next to an
// in-process sharded baseline over the same generated instance — the
// delta between the two IS the network: scatter rounds, framing, and
// merge traffic, with the ranked-structure work held constant.
//
// The nodes must already hold the instance this benchmark generates
// (same -scale and -seed; load it with the SDK or cmd/serve's -data) —
// the benchmark refuses to compare quantiles across different data and
// says so when the totals disagree.
//
//	rabench -remote 127.0.0.1:9101,127.0.0.1:9102 -remote-shards 4 > new.txt
func runRemoteBench(w io.Writer, addrs string, p, scale int, seed int64) error {
	var nodes []cluster.NodeConfig
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			nodes = append(nodes, cluster.NodeConfig{Addr: a})
		}
	}
	if len(nodes) == 0 {
		return fmt.Errorf("rabench: -remote needs a comma-separated node list, e.g. 127.0.0.1:9101,127.0.0.1:9102")
	}
	raw, err := json.Marshal(cluster.Config{Shards: p, Nodes: nodes})
	if err != nil {
		return err
	}
	cfg, err := cluster.Parse(raw)
	if err != nil {
		return fmt.Errorf("rabench: %w", err)
	}
	coord := cluster.NewCoordinator(cfg, rpc.Options{})
	defer coord.Close()
	ce := engine.New(nil, engine.Options{Remote: coord})

	n := 8192 << scale
	rng := rand.New(rand.NewSource(seed))
	q, in := workload.TwoPath(rng, n, n/4, 0.4)
	qtext := q.String()
	local := engine.New(in, engine.Options{})

	spec := engine.Spec{Query: qtext, Shards: p}
	lh, err := local.Prepare(spec)
	if err != nil {
		return fmt.Errorf("rabench: local prepare: %w", err)
	}
	start := time.Now()
	rh, err := ce.Prepare(spec)
	if err != nil {
		return fmt.Errorf("rabench: remote prepare (are the nodes up and loaded?): %w", err)
	}
	remotePrep := time.Since(start)
	if rh.Total() != lh.Total() {
		return fmt.Errorf("rabench: remote total %d != local total %d — load the generated instance (same -scale/-seed) to every node first",
			rh.Total(), lh.Total())
	}
	total := lh.Total()

	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: rankedaccess/cmd/rabench\n")
	fmt.Fprintf(w, "# remote: %d nodes, %d shards, n=%d, |Q(I)|=%d\n", len(nodes), p, n, total)
	fmt.Fprintf(w, "BenchmarkRemotePrepare/n=%d/shards=%d \t%8d\t%12d ns/op\n", n, p, 1, remotePrep.Nanoseconds())

	const probes = 2000
	ks := make([]int64, probes)
	for i := range ks {
		ks[i] = rng.Int63n(total)
	}
	emit := func(name string, lat []time.Duration, ops int) {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		for _, qt := range []struct {
			label string
			q     float64
		}{{"p50", 0.50}, {"p99", 0.99}} {
			idx := int(qt.q * float64(len(lat)-1))
			fmt.Fprintf(w, "Benchmark%s/n=%d/shards=%d/q=%s \t%8d\t%12d ns/op\n",
				name, n, p, qt.label, ops, lat[idx].Nanoseconds())
		}
	}
	accessLat := func(h *engine.Handle) ([]time.Duration, error) {
		lat := make([]time.Duration, 0, probes)
		var dst []values.Value
		for _, k := range ks {
			t0 := time.Now()
			dst, err = h.AppendTuple(dst[:0], k)
			if err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(t0))
		}
		return lat, nil
	}

	rlat, err := accessLat(rh)
	if err != nil {
		return fmt.Errorf("rabench: remote access: %w", err)
	}
	emit("RemoteAccess", rlat, 1)
	llat, err := accessLat(lh)
	if err != nil {
		return fmt.Errorf("rabench: local access: %w", err)
	}
	emit("LocalShardAccess", llat, 1)

	// Ranges: fixed-width windows at random offsets, so the quantiles
	// price the P-way merge (and, remotely, one FetchRange per shard)
	// rather than window-size variance.
	window := int64(512)
	if window > total {
		window = total
	}
	const rangeProbes = 200
	k0s := make([]int64, rangeProbes)
	for i := range k0s {
		k0s[i] = rng.Int63n(total - window + 1)
	}
	rangeLat := func(h *engine.Handle) ([]time.Duration, error) {
		lat := make([]time.Duration, 0, rangeProbes)
		var dst []values.Value
		for _, k0 := range k0s {
			t0 := time.Now()
			dst, err = h.AccessRange(dst[:0], k0, k0+window)
			if err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(t0))
		}
		return lat, nil
	}
	rrl, err := rangeLat(rh)
	if err != nil {
		return fmt.Errorf("rabench: remote range: %w", err)
	}
	emit("RemoteRange", rrl, int(window))
	lrl, err := rangeLat(lh)
	if err != nil {
		return fmt.Errorf("rabench: local range: %w", err)
	}
	emit("LocalShardRange", lrl, int(window))
	return nil
}
