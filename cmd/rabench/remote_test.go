package main

import (
	"math/rand"
	"net"
	"strings"
	"testing"

	"rankedaccess/internal/cluster"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/rpc"
	"rankedaccess/internal/workload"
)

// TestRemoteBenchEndToEnd drives rabench -remote against two
// in-process shard nodes loaded with the benchmark's own instance, and
// checks the report carries both the remote and the baseline series.
func TestRemoteBenchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a cluster and probes it thousands of times")
	}
	const seed, scale = 42, 0
	var addrs []string
	for i := 0; i < 2; i++ {
		_, in := workload.TwoPath(rand.New(rand.NewSource(seed)), 8192<<scale, (8192<<scale)/4, 0.4)
		e := engine.New(in, engine.Options{})
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(cluster.NewNode(e))
		go func() { _ = srv.Serve(lis) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, lis.Addr().String())
	}

	var out strings.Builder
	if err := runRemoteBench(&out, strings.Join(addrs, ","), 4, scale, seed); err != nil {
		t.Fatalf("runRemoteBench: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"BenchmarkRemotePrepare", "BenchmarkRemoteAccess", "BenchmarkLocalShardAccess",
		"BenchmarkRemoteRange", "BenchmarkLocalShardRange", "q=p50", "q=p99",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %s:\n%s", want, report)
		}
	}

	// A mismatched instance must refuse to compare, not report garbage.
	_, other := workload.TwoPath(rand.New(rand.NewSource(99)), 1024, 256, 0.4)
	oe := engine.New(other, engine.Options{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(cluster.NewNode(oe))
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { _ = srv.Close() })
	var junk strings.Builder
	err = runRemoteBench(&junk, lis.Addr().String(), 4, scale, seed)
	if err == nil || !strings.Contains(err.Error(), "total") {
		t.Fatalf("mismatched instance: err = %v", err)
	}
}
