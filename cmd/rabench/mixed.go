package main

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

// runMixedBench benchmarks the MVCC write path: random single-probe
// reads against a prepared query, first on a quiescent engine (clean),
// then with a concurrent writer streaming paced insert/delete batches
// through the write path (dirty, answered from delta-overlay epochs).
// Output is Go benchmark format plus mean/p99 read latencies, so CI's
// gate can bound the dirty/clean ratio:
//
//	rabench -mixed > mixed.txt
//	go run ./cmd/benchgate -new mixed.txt \
//	  -ratio 'BenchmarkMixedReadDirty/BenchmarkMixedReadClean<=1.2'
//
// Two deliberate choices keep the gate meaningful:
//
//   - Benchmark names are slash-free: benchgate -ratio splits its
//     expression on "/", and results are keyed by full name, so a
//     "/n=..." suffix would never match the ratio's operands.
//
//   - The ns/op value on the benchmark line is the MEDIAN probe
//     latency, not the mean. The gate bounds steady-state read cost
//     while the delta is non-empty; the handful of probes that pay an
//     epoch catch-up (republish or overlay extension) are tail events,
//     reported separately as p99/mean comment lines.
//
// The writer is paced (small batch, then sleep) rather than a tight
// loop: an unthrottled writer is a saturation test of the mutation
// lock, not a serving workload — on a single-CPU host it degenerates
// into scheduler-quantum convoys where reads and writes alternate in
// 10ms bursts and the delta blows past the hard rebuild cap before the
// first probe lands.
func runMixedBench(w io.Writer, scale int, seed int64) error {
	n := 8192 << scale
	rng := rand.New(rand.NewSource(seed))
	q, in := workload.TwoPath(rng, n, n/4, 0.4)
	qtext := q.String()
	eng := engine.New(in, engine.Options{})
	pq, err := eng.Register("mixed", engine.Spec{Query: qtext, Order: "x, y, z"})
	if err != nil {
		return fmt.Errorf("rabench: mixed: %w", err)
	}
	if _, err := pq.Acquire(); err != nil {
		return fmt.Errorf("rabench: mixed: %w", err)
	}

	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: rankedaccess/cmd/rabench\n")
	fmt.Fprintf(w, "# mixed workload: n=%d per relation, probes against %q order %q\n", n, qtext, "x, y, z")

	const probes = 20000
	clean, err := mixedReadPass(pq, rng, probes)
	if err != nil {
		return err
	}
	report(w, "BenchmarkMixedReadClean", clean)

	// Writer goroutine: small insert/delete batches through the write
	// path, one every writeEvery, for the whole read pass. Domain values
	// stay inside the workload's range so writes actually join into
	// answer changes, keeping the delta overlay non-empty while the
	// reads run.
	const writeEvery = 200 * time.Microsecond
	var stop atomic.Bool
	var writes atomic.Int64
	var werr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(seed + 1))
		dom := int64(n / 4)
		for !stop.Load() {
			batch := [][]values.Value{
				{wrng.Int63n(dom), wrng.Int63n(dom)},
				{wrng.Int63n(dom), wrng.Int63n(dom)},
			}
			if werr = eng.AddRows("R", batch); werr != nil {
				return
			}
			if wrng.Intn(4) == 0 {
				if werr = eng.DeleteRows("R", batch[:1]); werr != nil {
					return
				}
			}
			writes.Add(1)
			time.Sleep(writeEvery)
		}
	}()
	// Don't start reading until the writer is demonstrably running, so
	// the dirty pass really measures reads against a moving version.
	for writes.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
		if werr != nil {
			break
		}
	}
	dirty, err := mixedReadPass(pq, rng, probes)
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return err
	}
	if werr != nil {
		return fmt.Errorf("rabench: mixed writer: %w", werr)
	}
	report(w, "BenchmarkMixedReadDirty", dirty)

	// Amortized cost of one write batch through ApplyBatch (WAL append +
	// instance apply + version publish), measured quiescent.
	const writeOps = 2000
	wrng := rand.New(rand.NewSource(seed + 2))
	dom := int64(n / 4)
	start := time.Now()
	for i := 0; i < writeOps; i++ {
		if err := eng.AddRows("R", [][]values.Value{{wrng.Int63n(dom), wrng.Int63n(dom)}}); err != nil {
			return err
		}
	}
	per := time.Since(start).Nanoseconds() / writeOps
	fmt.Fprintf(w, "BenchmarkMixedWriteApply \t%8d\t%12d ns/op\n", writeOps, per)

	st := eng.Stats()
	fmt.Fprintf(w, "# concurrent write batches during dirty pass: %d\n", writes.Load())
	fmt.Fprintf(w, "# wal_batches=%d delta_skips=%d delta_epochs=%d delta_rebuilds=%d bg_rebuilds=%d hits=%d misses=%d reprepares=%d\n",
		st.WALBatches, st.DeltaSkips, st.DeltaEpochs, st.DeltaRebuilds, st.BGRebuilds, st.Hits, st.Misses, st.Reprepares)
	eng.Quiesce()
	return nil
}

// mixedReadPass runs count random-rank probes through a fresh
// per-probe-epoch acquire (the serving path) and returns the sorted
// per-probe latencies.
func mixedReadPass(pq *engine.PreparedQuery, rng *rand.Rand, count int) ([]int64, error) {
	lat := make([]int64, 0, count)
	var dst []values.Value
	for i := 0; i < count; i++ {
		t0 := time.Now()
		h, err := pq.Acquire()
		if err != nil {
			return nil, err
		}
		total := h.Total()
		if total == 0 {
			return nil, fmt.Errorf("rabench: mixed: empty join")
		}
		dst, err = h.AppendTuple(dst[:0], rng.Int63n(total))
		if err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat, nil
}

// report prints one read pass as a benchmark line (median ns/op, what
// benchgate's ratio gate compares — steady-state probe cost) plus
// mean/p99 comment lines for the catch-up tail.
func report(w io.Writer, name string, lat []int64) {
	var sum int64
	for _, v := range lat {
		sum += v
	}
	n := int64(len(lat))
	fmt.Fprintf(w, "%s \t%8d\t%12d ns/op\n", name, n, lat[n/2])
	fmt.Fprintf(w, "# %s mean=%dns p99=%dns\n", name, sum/n, lat[n*99/100])
}
