package main

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

// runShardBench benchmarks sharded ranked access at the given shard
// counts on one generated two-path instance, printing per-shard build
// and merged access/range timings in Go benchmark format — the same
// format CI's benchstat-based regression gate consumes, so a run can be
// diffed against a stored baseline with benchstat or cmd/benchgate:
//
//	rabench -shards 1,2,4,8 > new.txt
//	go run ./cmd/benchgate -old old.txt -new new.txt
func runShardBench(w io.Writer, spec string, scale int, seed int64) error {
	counts, err := parseShardCounts(spec)
	if err != nil {
		return err
	}
	n := 8192 << scale
	rng := rand.New(rand.NewSource(seed))
	q, in := workload.TwoPath(rng, n, n/4, 0.4)
	qtext := q.String()
	eng := engine.New(in, engine.Options{})

	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: rankedaccess/cmd/rabench\n")

	const probes = 5000
	for _, p := range counts {
		s := engine.Spec{Query: qtext, Order: "", Shards: p}
		start := time.Now()
		h, err := eng.Prepare(s)
		if err != nil {
			return fmt.Errorf("rabench: shards=%d: %w", p, err)
		}
		build := time.Since(start)
		switch {
		case p >= 2 && h.Plan.Shards == 0:
			fmt.Fprintf(w, "# shards=%d fell back to a single structure: %s\n", p, h.Plan.ShardNote)
		case p >= 2 && h.Plan.Shards != p:
			fmt.Fprintf(w, "# shards=%d clamped: measured on %d shards\n", p, h.Plan.Shards)
		}
		fmt.Fprintf(w, "BenchmarkShardPrepare/n=%d/shards=%d \t%8d\t%12d ns/op\n", n, p, 1, build.Nanoseconds())
		for i, ns := range h.ShardBuildNanos() {
			fmt.Fprintf(w, "BenchmarkShardPartBuild/n=%d/shards=%d/part=%d \t%8d\t%12d ns/op\n", n, p, i, 1, ns)
		}

		total := h.Total()
		if total == 0 {
			return fmt.Errorf("rabench: empty join at n=%d", n)
		}
		ks := make([]int64, probes)
		for i := range ks {
			ks[i] = rng.Int63n(total)
		}
		var dst []values.Value
		start = time.Now()
		for _, k := range ks {
			dst, err = h.AppendTuple(dst[:0], k)
			if err != nil {
				return err
			}
		}
		access := time.Since(start)
		fmt.Fprintf(w, "BenchmarkShardAccess/n=%d/shards=%d \t%8d\t%12d ns/op\n",
			n, p, probes, access.Nanoseconds()/probes)

		window := total
		if window > 1<<14 {
			window = 1 << 14
		}
		start = time.Now()
		dst, err = h.AccessRange(dst[:0], total-window, total)
		if err != nil {
			return err
		}
		_ = dst
		rng64 := time.Since(start)
		fmt.Fprintf(w, "BenchmarkShardRange/n=%d/shards=%d \t%8d\t%12d ns/op\n",
			n, p, window, rng64.Nanoseconds()/window)
	}
	return nil
}

func parseShardCounts(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		p, err := strconv.Atoi(f)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("rabench: bad shard count %q", f)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rabench: -shards needs a comma-separated list, e.g. 1,2,4,8")
	}
	return out, nil
}
