package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/trace"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

// runTracingBench benchmarks the cost of the tracing layer on the
// serving read path: requests with no tracer (the disabled
// configuration — context plumbing only) against requests under a
// tracer at a production-ish head-sampling rate, spans started and
// ended exactly where the serve middleware does it — once per request,
// not per probe. Each simulated request is one epoch acquire plus a
// small probe batch, mirroring a /v1 access body with a handful of ks.
// Output is Go benchmark format so CI bounds the overhead as a ratio:
//
//	rabench -tracing > tracing.txt
//	go run ./cmd/benchgate -new tracing.txt \
//	  -ratio 'BenchmarkTracedAccess/BenchmarkUntracedAccess<=1.05'
//
// Names are slash-free and the ns/op value is the MEDIAN request
// latency, for the same reasons as the mixed benchmark (see mixed.go).
// The two modes run INTERLEAVED in small alternating chunks rather
// than as two sequential passes: on a shared CI host the clock drifts
// several percent over a pass, which would swamp a 5% gate; alternating
// chunks expose both modes to the same drift.
func runTracingBench(w io.Writer, scale int, seed int64) error {
	n := 8192 << scale
	rng := rand.New(rand.NewSource(seed))
	q, in := workload.TwoPath(rng, n, n/4, 0.4)
	qtext := q.String()
	eng := engine.New(in, engine.Options{})
	pq, err := eng.Register("traced", engine.Spec{Query: qtext, Order: "x, y, z"})
	if err != nil {
		return fmt.Errorf("rabench: tracing: %w", err)
	}
	if _, err := pq.Acquire(); err != nil {
		return fmt.Errorf("rabench: tracing: %w", err)
	}

	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: rankedaccess/cmd/rabench\n")
	fmt.Fprintf(w, "# tracing overhead: n=%d per relation, %d probes per request, interleaved chunks of %d\n",
		n, probesPerRequest, chunkRequests)

	// Rate 0.01 with a high slow threshold: nearly every trace is
	// started, recorded, and discarded at root End — the worst case for
	// steady-state overhead, since kept traces are the rare path.
	tracer := trace.New(trace.Options{Rate: 0.01, Slow: time.Second, Buffer: 256})

	// Identical probe sequences per mode: same seed, separate streams.
	rngU := rand.New(rand.NewSource(seed + 1))
	rngT := rand.New(rand.NewSource(seed + 1))

	// Warm caches and the first epoch acquire outside the measurement.
	if _, err := tracingChunk(pq, nil, rand.New(rand.NewSource(seed+2))); err != nil {
		return err
	}

	const requests = 20000
	untraced := make([]int64, 0, requests)
	traced := make([]int64, 0, requests)
	for len(untraced) < requests {
		u, err := tracingChunk(pq, nil, rngU)
		if err != nil {
			return err
		}
		untraced = append(untraced, u...)
		tr, err := tracingChunk(pq, tracer, rngT)
		if err != nil {
			return err
		}
		traced = append(traced, tr...)
	}
	sort.Slice(untraced, func(i, j int) bool { return untraced[i] < untraced[j] })
	sort.Slice(traced, func(i, j int) bool { return traced[i] < traced[j] })
	report(w, "BenchmarkUntracedAccess", untraced)
	report(w, "BenchmarkTracedAccess", traced)

	started, kept := tracer.Stats()
	fmt.Fprintf(w, "# traces started=%d kept=%d\n", started, kept)
	eng.Quiesce()
	return nil
}

const (
	// probesPerRequest sizes the simulated request: the middleware
	// opens ONE span per HTTP request however many ks the body carries,
	// so the span cost amortizes exactly as it does in production.
	probesPerRequest = 16
	// chunkRequests is the interleaving grain — small enough that
	// traced and untraced chunks see the same machine conditions.
	chunkRequests = 100
)

// tracingChunk runs chunkRequests simulated requests — span (when
// tracer is non-nil), epoch acquire, probe batch, span end — and
// returns the per-request latencies, unsorted.
func tracingChunk(pq *engine.PreparedQuery, tracer *trace.Tracer, rng *rand.Rand) ([]int64, error) {
	lat := make([]int64, 0, chunkRequests)
	var dst []values.Value
	bg := context.Background()
	for i := 0; i < chunkRequests; i++ {
		t0 := time.Now()
		ctx, sp := tracer.Start(bg, "bench.access", trace.KindServer)
		h, err := pq.Acquire()
		if err != nil {
			return nil, err
		}
		total := h.Total()
		if total == 0 {
			return nil, fmt.Errorf("rabench: tracing: empty join")
		}
		for j := 0; j < probesPerRequest; j++ {
			dst, err = h.AppendTupleCtx(ctx, dst[:0], rng.Int63n(total))
			if err != nil {
				return nil, err
			}
		}
		sp.End()
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	return lat, nil
}
