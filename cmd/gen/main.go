// Command gen generates synthetic workload relations as tab-separated
// files, one per relation, for use with external tooling or manual
// inspection.
//
// Usage:
//
//	gen -workload twopath -n 100000 -dom 1000 -skew 0.5 -out /tmp/data
//	gen -workload epidemic -n 100000 -out /tmp/data
//	gen -workload kpath -k 4 -n 50000 -out /tmp/data
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/workload"
)

func main() {
	var (
		kind = flag.String("workload", "twopath", "twopath | kpath | epidemic | star | product")
		n    = flag.Int("n", 10000, "tuples per relation")
		dom  = flag.Int("dom", 0, "domain size (default n/10)")
		k    = flag.Int("k", 3, "path length / star arms")
		skew = flag.Float64("skew", 0, "Zipf skew on join attributes")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if *dom == 0 {
		*dom = max(*n/10, 2)
	}
	rng := rand.New(rand.NewSource(*seed))

	var q *cq.Query
	var in *database.Instance
	switch *kind {
	case "twopath":
		q, in = workload.TwoPath(rng, *n, *dom, *skew)
	case "kpath":
		q, in = workload.KPath(rng, *k, *n, *dom, *skew)
	case "epidemic":
		q, in = workload.Epidemic(rng, *n, *n/2, max(*n/20, 2), max(*n/100, 2), 1000)
	case "star":
		q, in = workload.Star(rng, *k, *n, *dom)
	case "product":
		q, in, _ = workload.Product(rng, *n)
	default:
		fmt.Fprintf(os.Stderr, "gen: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range in.Names() {
		path := filepath.Join(*out, name+".tsv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := in.WriteRelation(name, f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d tuples)\n", path, in.Relation(name).Len())
	}
	fmt.Printf("query: %s\n", q.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gen:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
