// Command query loads relations from TSV files (as written by cmd/gen),
// builds a direct-access structure for a query and order, and answers
// index probes from the command line — or, with -remote, sends the same
// probes to a running cmd/serve instance through the v1 prepared-query
// API via the client SDK.
//
// Usage:
//
//	query -q "Q(x, y, z) :- R(x, y), S(y, z)" -order "x, y, z" \
//	      -data /tmp/data -k 0 -k 100 -k 12345 [-fallback]
//	query -q ... -order ... -remote http://localhost:8080 -k 0 -k 100
//	query -q ... -order ... -data /tmp/data -stream 10000 > rows.tsv
//
// Relation R is loaded from <data>/R.tsv (local mode; remote mode
// expects the server to hold the data). With -fallback, intractable
// orders are served by materialize+sort instead of failing.
//
// With -stream N the first N answers are written to stdout as
// tab-separated rows, one per line, and all diagnostics go to stderr —
// so local and remote streams of the same query diff clean. Locally the
// stream runs through the facade engine's prepared-query cursor;
// remotely it is an NDJSON cursor stream over HTTP. CI's http-smoke job
// diffs exactly these two outputs.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"rankedaccess"
	"rankedaccess/client"
)

type multi []string

func (m *multi) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multi) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var (
		qSrc     = flag.String("q", "", "conjunctive query")
		lSrc     = flag.String("order", "", "lexicographic order")
		dataDir  = flag.String("data", ".", "directory with <Relation>.tsv files")
		fallback = flag.Bool("fallback", false, "materialize+sort when the order is intractable")
		count    = flag.Bool("count", false, "print the answer count and exit")
		remote   = flag.String("remote", "", "base URL of a running serve instance; probe it via the v1 API")
		name     = flag.String("name", "cli", "prepared-query name to register (remote mode)")
		stream   = flag.Int("stream", 0, "stream the first N answers as TSV rows on stdout")
		ks       multi
		fdsRaw   multi
	)
	flag.Var(&ks, "k", "0-based index to access (repeatable)")
	flag.Var(&fdsRaw, "fd", "unary FD \"R: x -> y\" (repeatable)")
	flag.Parse()
	if *qSrc == "" {
		fmt.Fprintln(os.Stderr, "query: -q is required")
		os.Exit(2)
	}
	if *remote != "" {
		runRemote(*remote, *name, *qSrc, *lSrc, fdsRaw, ks, *count, *stream)
		return
	}
	runLocal(*qSrc, *lSrc, *dataDir, fdsRaw, ks, *fallback, *count, *stream)
}

func runLocal(qSrc, lSrc, dataDir string, fdsRaw, ks multi, fallback, count bool, stream int) {
	q, err := rankedaccess.ParseQuery(qSrc)
	check(err)
	l, err := rankedaccess.ParseLex(q, lSrc)
	check(err)
	fds, err := rankedaccess.ParseFDs(q, fdsRaw...)
	check(err)

	in := rankedaccess.NewInstance()
	for _, atom := range q.Atoms {
		if in.Relation(atom.Rel) != nil {
			continue
		}
		path := filepath.Join(dataDir, atom.Rel+".tsv")
		f, err := os.Open(path)
		check(err)
		check(in.ReadRelation(atom.Rel, f))
		check(f.Close())
	}
	fmt.Fprintf(os.Stderr, "loaded %d tuples\n", in.Size())

	if stream > 0 {
		// Stream through the facade engine's prepared-query cursor —
		// the same planning (tractable structure or materialized
		// fallback) the server applies remotely.
		e := rankedaccess.NewEngine(in, rankedaccess.EngineOptions{})
		pq, err := e.Register("cli", rankedaccess.EngineSpec{Query: qSrc, Order: lSrc, FDs: fdsRaw})
		check(err)
		cur, err := pq.Cursor()
		check(err)
		fmt.Fprintf(os.Stderr, "answers: %d\n", cur.Total())
		w := bufio.NewWriter(os.Stdout)
		for row, err := range cur.All(0, int64(stream)) {
			check(err)
			writeRow(w, row)
		}
		check(w.Flush())
		return
	}

	var acc rankedaccess.Accessor
	if fallback {
		a, tractable, err := rankedaccess.NewDirectAccessAny(q, in, l, fds)
		check(err)
		if !tractable {
			fmt.Fprintln(os.Stderr, "note: order is intractable; served by materialize+sort")
		}
		acc = a
	} else {
		a, err := rankedaccess.NewDirectAccess(q, in, l, fds)
		check(err)
		acc = a
	}
	fmt.Printf("answers: %d\n", acc.Total())
	if count {
		return
	}
	if len(ks) == 0 {
		ks = multi{"0"}
	}
	for _, kStr := range ks {
		k := parseK(kStr)
		a, err := acc.Access(k)
		if err != nil {
			fmt.Printf("  [%d] %v\n", k, err)
			continue
		}
		fmt.Printf("  [%d] %v\n", k, rankedaccess.AnswerTuple(q, a))
	}
}

// streamBatch is the remote cursor page size: large enough to amortize
// HTTP round trips, small enough to start printing immediately.
const streamBatch = 8192

func runRemote(base, name, qSrc, lSrc string, fdsRaw, ks multi, count bool, stream int) {
	ctx := context.Background()
	c, err := client.Dial(ctx, base, nil)
	check(err)
	p, err := c.Register(ctx, name, client.Spec{Query: qSrc, Order: lSrc, FDs: fdsRaw})
	check(err)
	fmt.Fprintf(os.Stderr, "registered %q (%s) at %s\n", name, p.Info.Mode, base)

	if stream > 0 {
		fmt.Fprintf(os.Stderr, "answers: %d\n", p.Info.Total)
		cur, err := p.Cursor(ctx, 0)
		check(err)
		w := bufio.NewWriter(os.Stdout)
		remaining := int64(stream)
		if t := cur.Total(); remaining > t {
			remaining = t
		}
		for remaining > 0 && !cur.Done() {
			n := streamBatch
			if int64(n) > remaining {
				n = int(remaining)
			}
			got, err := cur.Stream(ctx, n, func(row []client.Value) error {
				writeRow(w, row)
				return nil
			})
			check(err)
			if got == 0 {
				break
			}
			remaining -= int64(got)
		}
		check(w.Flush())
		check(cur.Close(ctx))
		return
	}

	fmt.Printf("answers: %d\n", p.Info.Total)
	if count {
		return
	}
	if len(ks) == 0 {
		ks = multi{"0"}
	}
	idx := make([]int64, len(ks))
	for i, kStr := range ks {
		idx[i] = parseK(kStr)
	}
	answers, err := p.Access(ctx, idx...)
	check(err)
	for _, a := range answers {
		if a.Err != "" {
			fmt.Printf("  [%d] %s\n", a.K, a.Err)
			continue
		}
		fmt.Printf("  [%d] %v\n", a.K, a.Tuple)
	}
}

// writeRow prints one answer as tab-separated values — identical
// bytes from the local cursor and the remote NDJSON stream.
func writeRow(w *bufio.Writer, row []int64) {
	for j, v := range row {
		if j > 0 {
			w.WriteByte('\t')
		}
		w.WriteString(strconv.FormatInt(v, 10))
	}
	w.WriteByte('\n')
}

func parseK(s string) int64 {
	k, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		check(fmt.Errorf("bad index %q", s))
	}
	return k
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		os.Exit(1)
	}
}
