// Command query loads relations from TSV files (as written by cmd/gen),
// builds a direct-access structure for a query and order, and answers
// index probes from the command line.
//
// Usage:
//
//	query -q "Q(x, y, z) :- R(x, y), S(y, z)" -order "x, y, z" \
//	      -data /tmp/data -k 0 -k 100 -k 12345 [-fallback]
//
// Relation R is loaded from <data>/R.tsv. With -fallback, intractable
// orders are served by materialize+sort instead of failing.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rankedaccess"
)

type multi []string

func (m *multi) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multi) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var (
		qSrc     = flag.String("q", "", "conjunctive query")
		lSrc     = flag.String("order", "", "lexicographic order")
		dataDir  = flag.String("data", ".", "directory with <Relation>.tsv files")
		fallback = flag.Bool("fallback", false, "materialize+sort when the order is intractable")
		count    = flag.Bool("count", false, "print the answer count and exit")
		ks       multi
		fdsRaw   multi
	)
	flag.Var(&ks, "k", "0-based index to access (repeatable)")
	flag.Var(&fdsRaw, "fd", "unary FD \"R: x -> y\" (repeatable)")
	flag.Parse()
	if *qSrc == "" {
		fmt.Fprintln(os.Stderr, "query: -q is required")
		os.Exit(2)
	}
	q, err := rankedaccess.ParseQuery(*qSrc)
	check(err)
	l, err := rankedaccess.ParseLex(q, *lSrc)
	check(err)
	fds, err := rankedaccess.ParseFDs(q, fdsRaw...)
	check(err)

	in := rankedaccess.NewInstance()
	for _, atom := range q.Atoms {
		if in.Relation(atom.Rel) != nil {
			continue
		}
		path := filepath.Join(*dataDir, atom.Rel+".tsv")
		f, err := os.Open(path)
		check(err)
		check(in.ReadRelation(atom.Rel, f))
		check(f.Close())
	}
	fmt.Printf("loaded %d tuples\n", in.Size())

	var acc rankedaccess.Accessor
	if *fallback {
		a, tractable, err := rankedaccess.NewDirectAccessAny(q, in, l, fds)
		check(err)
		if !tractable {
			fmt.Println("note: order is intractable; served by materialize+sort")
		}
		acc = a
	} else {
		a, err := rankedaccess.NewDirectAccess(q, in, l, fds)
		check(err)
		acc = a
	}
	fmt.Printf("answers: %d\n", acc.Total())
	if *count {
		return
	}
	if len(ks) == 0 {
		ks = multi{"0"}
	}
	for _, ks := range ks {
		var k int64
		if _, err := fmt.Sscanf(ks, "%d", &k); err != nil {
			check(fmt.Errorf("bad index %q", ks))
		}
		a, err := acc.Access(k)
		if err != nil {
			fmt.Printf("  [%d] %v\n", k, err)
			continue
		}
		fmt.Printf("  [%d] %v\n", k, rankedaccess.AnswerTuple(q, a))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		os.Exit(1)
	}
}
