package main

import (
	"strings"
	"testing"
	"time"

	"rankedaccess/internal/metrics"
)

// snapAt fabricates a scrape with the given request totals per status
// class at the given offset from t0.
func snapAt(t *testing.T, t0 time.Time, offset time.Duration, ok, errs float64) *snap {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("ra_http_requests_total", "t", "endpoint", "a", "code", "2xx").Add(uint64(ok))
	reg.Counter("ra_http_requests_total", "t", "endpoint", "a", "code", "5xx").Add(uint64(errs))
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := metrics.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return &snap{at: t0.Add(offset), samples: samples}
}

func TestBurnRateWindows(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	h := &history{slo: 0.999, threshold: 1}

	// 1000 requests in the first 2s, none failing; then 1000 more with
	// a 1% error rate — burn 10x against a 0.1% budget.
	s0 := snapAt(t, t0, 0, 1000, 0)
	s1 := snapAt(t, t0, 2*time.Second, 1990, 10)
	h.push(s0)
	h.push(s1)

	rate, covered, ok := h.burn(s1, fastWindow)
	if !ok {
		t.Fatal("burn not computable with two snaps")
	}
	if covered != 2*time.Second {
		t.Fatalf("covered = %v, want 2s", covered)
	}
	// 10 errors over 1000 requests = 1% error share; budget 0.1% → 10x.
	if rate < 9.99 || rate > 10.01 {
		t.Fatalf("burn = %v, want 10", rate)
	}

	// No errors → zero burn; no traffic → not computable.
	if rate, _, ok := h.burn(s0, fastWindow); ok || rate != 0 {
		t.Fatalf("burn with no earlier snap = %v, %v", rate, ok)
	}
	idle := &history{slo: 0.999, threshold: 1}
	i0 := snapAt(t, t0, 0, 500, 5)
	i1 := snapAt(t, t0, 2*time.Second, 500, 5)
	idle.push(i0)
	idle.push(i1)
	if _, _, ok := idle.burn(i1, fastWindow); ok {
		t.Fatal("burn computable over a window with zero traffic")
	}

	s2 := snapAt(t, t0, 4*time.Second, 1990, 10)
	h.push(s2)

	// The slow window anchors at the oldest retained snapshot and
	// reports partial coverage honestly.
	s3 := snapAt(t, t0, 50*time.Minute, 5000, 10)
	h.push(s3)
	rate, covered, ok = h.burn(s3, slowWindow)
	if !ok || covered != 50*time.Minute {
		t.Fatalf("slow burn = (%v, %v, %v), want 50m coverage", rate, covered, ok)
	}
	// 10 errors over 4010 requests against a 0.1% budget ≈ 2.49x.
	if rate < 2.4 || rate > 2.6 {
		t.Fatalf("slow burn = %v, want ≈2.49", rate)
	}

	// After a gap longer than the retention, everything before the gap
	// is pruned: burn is honestly "unknown" until the next scrape.
	s4 := snapAt(t, t0, 3*slowWindow, 6000, 10)
	h.push(s4)
	if _, _, ok := h.burn(s4, slowWindow); ok {
		t.Fatal("burn computable across a pruned gap")
	}
}

func TestBurnLineAlert(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	h := &history{slo: 0.999, threshold: 1}
	h.push(snapAt(t, t0, 0, 100, 0))
	cur := snapAt(t, t0, 2*time.Second, 150, 50)
	h.push(cur)
	line := burnLine(h, cur)
	if !strings.Contains(line, "ALERT") {
		t.Fatalf("massive burn did not alert: %q", line)
	}
	h2 := &history{slo: 0.999, threshold: 1}
	h2.push(snapAt(t, t0, 0, 100, 0))
	clean := snapAt(t, t0, 2*time.Second, 200, 0)
	h2.push(clean)
	if line := burnLine(h2, clean); strings.Contains(line, "ALERT") {
		t.Fatalf("clean traffic alerted: %q", line)
	}
}
