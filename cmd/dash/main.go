// Command dash is a terminal (and HTML) dashboard for a running serve
// instance, built on nothing but the server's own observability
// surface: it polls GET /metrics (Prometheus text) and GET /readyz and
// renders the serving picture — QPS, latency quantiles, shed and
// coalesce rates, epoch churn, WAL health — from counter deltas
// between polls.
//
// Usage:
//
//	dash -addr http://localhost:8080            # live terminal view
//	dash -addr http://localhost:8080 -once      # one snapshot, then exit (CI-friendly)
//	dash -addr http://localhost:8080 -html dash.html  # also write an HTML snapshot each poll
//
// Rates and quantiles are computed over the polling interval (lifetime
// totals on the first poll and under -once), so the view tracks what
// the server is doing now, not since boot. The latency quantiles are
// interpolated from the ra_http_request_duration_seconds histogram the
// same way Prometheus's histogram_quantile does.
package main

import (
	"flag"
	"fmt"
	"html"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"rankedaccess/internal/metrics"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the serve instance")
		interval = flag.Duration("interval", 2*time.Second, "polling interval")
		once     = flag.Bool("once", false, "print one snapshot and exit (exit 1 when the scrape fails)")
		htmlOut  = flag.String("html", "", "also write an HTML snapshot to this file each poll")
	)
	flag.Parse()
	base := strings.TrimRight(*addr, "/")
	hc := &http.Client{Timeout: 10 * time.Second}

	prev, err := scrape(hc, base)
	if err != nil {
		log.Fatalf("dash: %v", err)
	}
	if *once {
		render(os.Stdout, base, nil, prev)
		if *htmlOut != "" {
			writeHTML(*htmlOut, base, nil, prev)
		}
		return
	}
	for {
		time.Sleep(*interval)
		cur, err := scrape(hc, base)
		if err != nil {
			fmt.Printf("dash: scrape failed: %v\n", err)
			continue
		}
		fmt.Print("\033[H\033[2J") // clear terminal between polls
		render(os.Stdout, base, prev, cur)
		if *htmlOut != "" {
			writeHTML(*htmlOut, base, prev, cur)
		}
		prev = cur
	}
}

// snap is one poll: the parsed scrape plus the readiness probe.
type snap struct {
	at      time.Time
	samples []metrics.Sample
	ready   bool
	readyAt string // the probe's body or error, for display when not ready
}

func scrape(hc *http.Client, base string) (*snap, error) {
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	samples, err := metrics.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse /metrics: %w", err)
	}
	s := &snap{at: time.Now(), samples: samples}
	if r, err := hc.Get(base + "/readyz"); err != nil {
		s.readyAt = err.Error()
	} else {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<12))
		r.Body.Close()
		s.ready = r.StatusCode == http.StatusOK
		s.readyAt = strings.TrimSpace(string(body))
	}
	return s, nil
}

// sum adds every sample of a family across label sets.
func (s *snap) sum(name string) float64 {
	var t float64
	for _, sm := range s.samples {
		if sm.Name == name {
			t += sm.Value
		}
	}
	return t
}

// view is the digest both renderers draw: every rate is per second
// over the window between the two snaps (lifetime when prev is nil).
type view struct {
	window   time.Duration
	lifetime bool

	qps, p50, p95, p99    float64
	inFlight              float64
	shed429PS, shed503PS  float64
	coalescePct           float64 // hit share of coalescer traffic, 0-100
	deprecatedPS          float64
	epochsPS, rebuildsPS  float64
	bgRebuilds            float64
	walBatches, walErrors float64
	version, tuples       float64
	degraded              bool
	ready                 bool
	readyDetail           string
}

func digest(prev, cur *snap) view {
	v := view{lifetime: prev == nil, ready: cur.ready, readyDetail: cur.readyAt}
	d := func(name string) float64 {
		if prev == nil {
			return cur.sum(name)
		}
		return cur.sum(name) - prev.sum(name)
	}
	window := time.Second
	if prev != nil {
		window = cur.at.Sub(prev.at)
	}
	v.window = window
	secs := window.Seconds()
	if secs <= 0 {
		secs = 1
	}
	v.qps = d("ra_http_requests_total") / secs
	if v.lifetime {
		v.qps = 0 // lifetime QPS over unknown uptime is a lie; show totals instead
	}
	v.p50 = quantile(prev, cur, 0.50)
	v.p95 = quantile(prev, cur, 0.95)
	v.p99 = quantile(prev, cur, 0.99)
	v.inFlight = cur.sum("ra_http_in_flight")
	v.shed429PS = d("ra_serve_shed_rate_limited_total") / secs
	v.shed503PS = d("ra_serve_shed_overload_total") / secs
	hits, misses := d("ra_serve_coalesce_hits_total"), d("ra_serve_coalesce_misses_total")
	if hits+misses > 0 {
		v.coalescePct = 100 * hits / (hits + misses)
	}
	v.deprecatedPS = d("ra_http_deprecated_requests_sum") / secs
	v.epochsPS = d("ra_engine_delta_epochs_total") / secs
	v.rebuildsPS = (d("ra_engine_delta_rebuilds_total") + d("ra_engine_bg_rebuilds_total")) / secs
	v.bgRebuilds = cur.sum("ra_engine_bg_rebuilding")
	v.walBatches = cur.sum("ra_engine_wal_batches_total")
	v.walErrors = cur.sum("ra_engine_wal_errors_total")
	v.version = cur.sum("ra_engine_instance_version")
	v.tuples = cur.sum("ra_engine_tuples")
	v.degraded = cur.sum("ra_engine_degraded") > 0
	return v
}

// quantile interpolates a latency quantile from the request-duration
// histogram, buckets summed across endpoints and differenced across
// the window (histogram_quantile semantics: linear within a bucket).
func quantile(prev, cur *snap, q float64) float64 {
	type bucket struct {
		le    float64
		count float64
	}
	byLE := map[float64]float64{}
	add := func(s *snap, sign float64) {
		for _, sm := range s.samples {
			if sm.Name != "ra_http_request_duration_seconds_bucket" {
				continue
			}
			le, err := parseLE(sm.Label("le"))
			if err != nil {
				continue
			}
			byLE[le] += sign * sm.Value
		}
	}
	add(cur, 1)
	if prev != nil {
		add(prev, -1)
	}
	buckets := make([]bucket, 0, len(byLE))
	for le, c := range byLE {
		buckets = append(buckets, bucket{le, c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].count
	if total <= 0 {
		return 0
	}
	rank := q * total
	lower, lowerCount := 0.0, 0.0
	for _, b := range buckets {
		if b.count >= rank {
			if math.IsInf(b.le, 1) {
				return lower // no upper bound to interpolate toward
			}
			if b.count == lowerCount {
				return b.le
			}
			return lower + (b.le-lower)*(rank-lowerCount)/(b.count-lowerCount)
		}
		lower, lowerCount = b.le, b.count
	}
	return buckets[len(buckets)-1].le
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func render(w io.Writer, base string, prev, cur *snap) {
	v := digest(prev, cur)
	scope := fmt.Sprintf("last %s", v.window.Round(time.Millisecond))
	if v.lifetime {
		scope = "since boot"
	}
	fmt.Fprintf(w, "ra dash — %s  (%s)\n", base, scope)
	ready := "ready: ok"
	if !v.ready {
		ready = "ready: NOT READY — " + v.readyDetail
	}
	fmt.Fprintln(w, ready)
	if v.lifetime {
		fmt.Fprintf(w, "requests  total %.0f   p50 %s  p95 %s  p99 %s   in-flight %.0f\n",
			cur.sum("ra_http_requests_total"), ms(v.p50), ms(v.p95), ms(v.p99), v.inFlight)
	} else {
		fmt.Fprintf(w, "requests  %.1f/s   p50 %s  p95 %s  p99 %s   in-flight %.0f\n",
			v.qps, ms(v.p50), ms(v.p95), ms(v.p99), v.inFlight)
	}
	fmt.Fprintf(w, "shed      %.1f/s rate-limited, %.1f/s overload   coalesce hit %.0f%%   deprecated %.1f/s\n",
		v.shed429PS, v.shed503PS, v.coalescePct, v.deprecatedPS)
	fmt.Fprintf(w, "epochs    %.1f/s overlay, %.1f/s rebuilt   bg rebuilding %.0f\n",
		v.epochsPS, v.rebuildsPS, v.bgRebuilds)
	wal := "healthy"
	if v.walErrors > 0 {
		wal = fmt.Sprintf("%.0f ERRORS", v.walErrors)
	}
	degraded := "no"
	if v.degraded {
		degraded = "YES"
	}
	fmt.Fprintf(w, "engine    version %.0f   tuples %.0f   wal %.0f batches (%s)   degraded: %s\n",
		v.version, v.tuples, v.walBatches, wal, degraded)
}

func ms(seconds float64) string {
	if seconds <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fms", seconds*1e3)
}

// writeHTML renders the same digest as a standalone page (meta-refresh
// keeps a browser tab live while dash keeps rewriting the file).
func writeHTML(path, base string, prev, cur *snap) {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<meta http-equiv=\"refresh\" content=\"2\">\n")
	b.WriteString("<title>ra dash</title>\n")
	b.WriteString("<style>body{font:14px monospace;background:#111;color:#ddd;padding:2em}" +
		"pre{font:inherit}.bad{color:#f66}</style></head><body>\n<pre>")
	var text strings.Builder
	render(&text, base, prev, cur)
	b.WriteString(html.EscapeString(text.String()))
	b.WriteString("</pre>\n</body></html>\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Printf("dash: write %s: %v", path, err)
	}
}
