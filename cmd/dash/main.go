// Command dash is a terminal (and HTML) dashboard for a running serve
// instance, built on nothing but the server's own observability
// surface: it polls GET /metrics (Prometheus text) and GET /readyz and
// renders the serving picture — QPS, latency quantiles, shed and
// coalesce rates, epoch churn, WAL health — from counter deltas
// between polls.
//
// Usage:
//
//	dash -addr http://localhost:8080            # live terminal view
//	dash -addr http://localhost:8080 -once      # one snapshot, then exit (CI-friendly)
//	dash -addr http://localhost:8080 -html dash.html  # also write an HTML snapshot each poll
//	dash -addr http://localhost:8080 -traces http://localhost:6060  # slowest-traces panel from the ops listener
//
// With -traces pointing at the server's ops listener, dash polls
// GET /debug/traces too and renders the slowest stored traces (id,
// root span, duration, keep reason) under the metrics. Under -once the
// panel doubles as a tracing health gate: when the window saw traffic
// but the store holds no traces at all, dash exits non-zero — a server
// whose sampler keeps nothing (mis-set rate, slow threshold above
// every request) has silently lost its debugging surface.
//
// Rates and quantiles are computed over the polling interval (lifetime
// totals on the first poll and under -once), so the view tracks what
// the server is doing now, not since boot. The latency quantiles are
// interpolated from the ra_http_request_duration_seconds histogram the
// same way Prometheus's histogram_quantile does.
//
// Availability SLO: dash tracks a multi-window error-budget burn rate
// from the 5xx share of ra_http_requests_total. Burn = (5xx fraction) /
// (1 - SLO), so burn 1.0 spends the budget exactly at the SLO boundary.
// Two windows — 5m (fast) and 1h (slow) — follow the standard
// multi-window alerting shape: the fast window catches new breakage
// quickly, the slow window keeps one bad poll from paging. The ALERT
// marker fires only when BOTH burn past -burn. Under -once, dash takes
// a second scrape one -interval later and exits non-zero when that
// sample's burn crosses the threshold (CI gate: "did this deploy start
// burning the budget?").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"rankedaccess/internal/metrics"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the serve instance")
		interval = flag.Duration("interval", 2*time.Second, "polling interval")
		once     = flag.Bool("once", false, "two scrapes one interval apart, then exit (non-zero on scrape failure or fast-window burn)")
		htmlOut  = flag.String("html", "", "also write an HTML snapshot to this file each poll")
		slo      = flag.Float64("slo", 0.999, "availability SLO target (success fraction)")
		burnMax  = flag.Float64("burn", 1.0, "error-budget burn-rate threshold for the ALERT marker and -once exit")
		tracesAt = flag.String("traces", "", "ops-listener base URL for the slowest-traces panel (GET /debug/traces); off when empty")
	)
	flag.Parse()
	base := strings.TrimRight(*addr, "/")
	hc := &http.Client{Timeout: 10 * time.Second}
	hist := &history{slo: *slo, threshold: *burnMax}

	prev, err := scrape(hc, base)
	if err != nil {
		log.Fatalf("dash: %v", err)
	}
	hist.push(prev)
	if *once {
		// A second scrape one interval later gives -once a real window:
		// lifetime totals cannot say whether the budget is burning NOW.
		time.Sleep(*interval)
		cur, err := scrape(hc, base)
		if err != nil {
			log.Fatalf("dash: %v", err)
		}
		hist.push(cur)
		render(os.Stdout, base, prev, cur, hist)
		tr := scrapeTraces(hc, *tracesAt)
		renderTraces(os.Stdout, *tracesAt, tr)
		if *htmlOut != "" {
			writeHTML(*htmlOut, base, prev, cur, hist)
		}
		if fast, _, ok := hist.burn(cur, fastWindow); ok && fast >= *burnMax {
			fmt.Fprintf(os.Stderr, "dash: fast-window burn %.2f >= %.2f: error budget burning\n", fast, *burnMax)
			os.Exit(1)
		}
		if *tracesAt != "" {
			served := cur.sum("ra_http_requests_total") - prev.sum("ra_http_requests_total")
			if err := traceGate(tr, served); err != nil {
				fmt.Fprintf(os.Stderr, "dash: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	for {
		time.Sleep(*interval)
		cur, err := scrape(hc, base)
		if err != nil {
			fmt.Printf("dash: scrape failed: %v\n", err)
			continue
		}
		hist.push(cur)
		fmt.Print("\033[H\033[2J") // clear terminal between polls
		render(os.Stdout, base, prev, cur, hist)
		if *tracesAt != "" {
			renderTraces(os.Stdout, *tracesAt, scrapeTraces(hc, *tracesAt))
		}
		if *htmlOut != "" {
			writeHTML(*htmlOut, base, prev, cur, hist)
		}
		prev = cur
	}
}

// SLO burn-rate windows: the fast one catches fresh breakage, the slow
// one confirms it is sustained.
const (
	fastWindow = 5 * time.Minute
	slowWindow = time.Hour
)

// history is the ring of past scrapes the burn-rate windows are
// computed from. Snapshots older than the slow window (plus slack for
// the boundary sample) are dropped.
type history struct {
	slo       float64
	threshold float64
	snaps     []*snap
}

func (h *history) push(s *snap) {
	h.snaps = append(h.snaps, s)
	cutoff := s.at.Add(-slowWindow - time.Minute)
	i := 0
	for i < len(h.snaps)-1 && h.snaps[i].at.Before(cutoff) {
		i++
	}
	h.snaps = h.snaps[i:]
}

// burn computes the error-budget burn rate over the trailing window:
// the 5xx share of requests in the window divided by the budget
// (1-SLO). covered reports how much of the window the history actually
// spans — early in a run the "1h" burn is really a burn over whatever
// has been observed so far. ok is false when there is no earlier
// snapshot or no traffic to judge.
func (h *history) burn(cur *snap, window time.Duration) (rate float64, covered time.Duration, ok bool) {
	// Oldest snapshot still inside the window; it anchors the delta.
	var anchor *snap
	cutoff := cur.at.Add(-window)
	for _, s := range h.snaps {
		if s == cur {
			continue
		}
		if !s.at.Before(cutoff) {
			anchor = s
			break
		}
		anchor = s // keep the newest pre-window snap as fallback anchor
	}
	if anchor == nil || !anchor.at.Before(cur.at) {
		return 0, 0, false
	}
	covered = cur.at.Sub(anchor.at)
	if covered > window {
		covered = window
	}
	reqs := cur.sum("ra_http_requests_total") - anchor.sum("ra_http_requests_total")
	errs := cur.errors5xx() - anchor.errors5xx()
	if reqs <= 0 {
		return 0, covered, false
	}
	budget := 1 - h.slo
	if budget <= 0 {
		budget = 1e-9 // a 100% SLO has no budget; any error burns "infinitely"
	}
	return (errs / reqs) / budget, covered, true
}

// snap is one poll: the parsed scrape plus the readiness probe.
type snap struct {
	at      time.Time
	samples []metrics.Sample
	ready   bool
	readyAt string // the probe's body or error, for display when not ready
}

func scrape(hc *http.Client, base string) (*snap, error) {
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	samples, err := metrics.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse /metrics: %w", err)
	}
	s := &snap{at: time.Now(), samples: samples}
	if r, err := hc.Get(base + "/readyz"); err != nil {
		s.readyAt = err.Error()
	} else {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<12))
		r.Body.Close()
		s.ready = r.StatusCode == http.StatusOK
		s.readyAt = strings.TrimSpace(string(body))
	}
	return s, nil
}

// sum adds every sample of a family across label sets.
func (s *snap) sum(name string) float64 {
	var t float64
	for _, sm := range s.samples {
		if sm.Name == name {
			t += sm.Value
		}
	}
	return t
}

// errors5xx sums the 5xx status class of the request counter across
// endpoints (the code label is a class, never a raw status — see
// internal/serve's metrics cardinality policy).
func (s *snap) errors5xx() float64 {
	var t float64
	for _, sm := range s.samples {
		if sm.Name == "ra_http_requests_total" && sm.Label("code") == "5xx" {
			t += sm.Value
		}
	}
	return t
}

// view is the digest both renderers draw: every rate is per second
// over the window between the two snaps (lifetime when prev is nil).
type view struct {
	window   time.Duration
	lifetime bool

	qps, p50, p95, p99    float64
	inFlight              float64
	shed429PS, shed503PS  float64
	coalescePct           float64 // hit share of coalescer traffic, 0-100
	deprecatedPS          float64
	epochsPS, rebuildsPS  float64
	bgRebuilds            float64
	walBatches, walErrors float64
	version, tuples       float64
	degraded              bool
	ready                 bool
	readyDetail           string
}

func digest(prev, cur *snap) view {
	v := view{lifetime: prev == nil, ready: cur.ready, readyDetail: cur.readyAt}
	d := func(name string) float64 {
		if prev == nil {
			return cur.sum(name)
		}
		return cur.sum(name) - prev.sum(name)
	}
	window := time.Second
	if prev != nil {
		window = cur.at.Sub(prev.at)
	}
	v.window = window
	secs := window.Seconds()
	if secs <= 0 {
		secs = 1
	}
	v.qps = d("ra_http_requests_total") / secs
	if v.lifetime {
		v.qps = 0 // lifetime QPS over unknown uptime is a lie; show totals instead
	}
	v.p50 = quantile(prev, cur, 0.50)
	v.p95 = quantile(prev, cur, 0.95)
	v.p99 = quantile(prev, cur, 0.99)
	v.inFlight = cur.sum("ra_http_in_flight")
	v.shed429PS = d("ra_serve_shed_rate_limited_total") / secs
	v.shed503PS = d("ra_serve_shed_overload_total") / secs
	hits, misses := d("ra_serve_coalesce_hits_total"), d("ra_serve_coalesce_misses_total")
	if hits+misses > 0 {
		v.coalescePct = 100 * hits / (hits + misses)
	}
	v.deprecatedPS = d("ra_http_deprecated_requests_sum") / secs
	v.epochsPS = d("ra_engine_delta_epochs_total") / secs
	v.rebuildsPS = (d("ra_engine_delta_rebuilds_total") + d("ra_engine_bg_rebuilds_total")) / secs
	v.bgRebuilds = cur.sum("ra_engine_bg_rebuilding")
	v.walBatches = cur.sum("ra_engine_wal_batches_total")
	v.walErrors = cur.sum("ra_engine_wal_errors_total")
	v.version = cur.sum("ra_engine_instance_version")
	v.tuples = cur.sum("ra_engine_tuples")
	v.degraded = cur.sum("ra_engine_degraded") > 0
	return v
}

// quantile interpolates a latency quantile from the request-duration
// histogram, buckets summed across endpoints and differenced across
// the window (histogram_quantile semantics: linear within a bucket).
func quantile(prev, cur *snap, q float64) float64 {
	type bucket struct {
		le    float64
		count float64
	}
	byLE := map[float64]float64{}
	add := func(s *snap, sign float64) {
		for _, sm := range s.samples {
			if sm.Name != "ra_http_request_duration_seconds_bucket" {
				continue
			}
			le, err := parseLE(sm.Label("le"))
			if err != nil {
				continue
			}
			byLE[le] += sign * sm.Value
		}
	}
	add(cur, 1)
	if prev != nil {
		add(prev, -1)
	}
	buckets := make([]bucket, 0, len(byLE))
	for le, c := range byLE {
		buckets = append(buckets, bucket{le, c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].count
	if total <= 0 {
		return 0
	}
	rank := q * total
	lower, lowerCount := 0.0, 0.0
	for _, b := range buckets {
		if b.count >= rank {
			if math.IsInf(b.le, 1) {
				return lower // no upper bound to interpolate toward
			}
			if b.count == lowerCount {
				return b.le
			}
			return lower + (b.le-lower)*(rank-lowerCount)/(b.count-lowerCount)
		}
		lower, lowerCount = b.le, b.count
	}
	return buckets[len(buckets)-1].le
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func render(w io.Writer, base string, prev, cur *snap, hist *history) {
	v := digest(prev, cur)
	scope := fmt.Sprintf("last %s", v.window.Round(time.Millisecond))
	if v.lifetime {
		scope = "since boot"
	}
	fmt.Fprintf(w, "ra dash — %s  (%s)\n", base, scope)
	ready := "ready: ok"
	if !v.ready {
		ready = "ready: NOT READY — " + v.readyDetail
	}
	fmt.Fprintln(w, ready)
	if v.lifetime {
		fmt.Fprintf(w, "requests  total %.0f   p50 %s  p95 %s  p99 %s   in-flight %.0f\n",
			cur.sum("ra_http_requests_total"), ms(v.p50), ms(v.p95), ms(v.p99), v.inFlight)
	} else {
		fmt.Fprintf(w, "requests  %.1f/s   p50 %s  p95 %s  p99 %s   in-flight %.0f\n",
			v.qps, ms(v.p50), ms(v.p95), ms(v.p99), v.inFlight)
	}
	fmt.Fprintf(w, "shed      %.1f/s rate-limited, %.1f/s overload   coalesce hit %.0f%%   deprecated %.1f/s\n",
		v.shed429PS, v.shed503PS, v.coalescePct, v.deprecatedPS)
	fmt.Fprintf(w, "epochs    %.1f/s overlay, %.1f/s rebuilt   bg rebuilding %.0f\n",
		v.epochsPS, v.rebuildsPS, v.bgRebuilds)
	wal := "healthy"
	if v.walErrors > 0 {
		wal = fmt.Sprintf("%.0f ERRORS", v.walErrors)
	}
	degraded := "no"
	if v.degraded {
		degraded = "YES"
	}
	fmt.Fprintf(w, "engine    version %.0f   tuples %.0f   wal %.0f batches (%s)   degraded: %s\n",
		v.version, v.tuples, v.walBatches, wal, degraded)
	if hist != nil {
		fmt.Fprintln(w, burnLine(hist, cur))
	}
}

// burnLine renders the multi-window SLO picture: both burn rates with
// their actual coverage, and the ALERT marker when both windows burn
// past the threshold.
func burnLine(hist *history, cur *snap) string {
	var b strings.Builder
	fmt.Fprintf(&b, "slo       %.3g%% target   burn", hist.slo*100)
	fast, slow := 0.0, 0.0
	fastOK, slowOK := false, false
	for _, wdw := range []struct {
		name string
		d    time.Duration
	}{{"5m", fastWindow}, {"1h", slowWindow}} {
		rate, covered, ok := hist.burn(cur, wdw.d)
		if !ok {
			fmt.Fprintf(&b, "   %s -", wdw.name)
			continue
		}
		fmt.Fprintf(&b, "   %s %.2f (over %s)", wdw.name, rate, covered.Round(time.Second))
		if wdw.d == fastWindow {
			fast, fastOK = rate, true
		} else {
			slow, slowOK = rate, true
		}
	}
	if fastOK && slowOK && fast >= hist.threshold && slow >= hist.threshold {
		fmt.Fprintf(&b, "   ALERT: budget burning in both windows")
	}
	return b.String()
}

// traceList mirrors the /debug/traces list response (see
// internal/trace/explorer.go).
type traceList struct {
	Traces []traceEntry `json:"traces"`
	Err    error        `json:"-"` // scrape failure, kept for display
}

type traceEntry struct {
	ID         string `json:"id"`
	Root       string `json:"root"`
	DurationUS int64  `json:"duration_us"`
	Spans      int    `json:"spans"`
	Reason     string `json:"reason"`
	Error      string `json:"error,omitempty"`
}

// scrapeTraces fetches the slowest stored traces from the ops
// listener; a nil return means the panel is off.
func scrapeTraces(hc *http.Client, opsBase string) *traceList {
	if opsBase == "" {
		return nil
	}
	url := strings.TrimRight(opsBase, "/") + "/debug/traces?sort=dur&limit=5"
	resp, err := hc.Get(url)
	if err != nil {
		return &traceList{Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &traceList{Err: fmt.Errorf("GET /debug/traces: %s", resp.Status)}
	}
	var tl traceList
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&tl); err != nil {
		return &traceList{Err: fmt.Errorf("decode /debug/traces: %w", err)}
	}
	return &tl
}

// renderTraces draws the slowest-traces panel.
func renderTraces(w io.Writer, opsBase string, tl *traceList) {
	if tl == nil {
		return
	}
	if tl.Err != nil {
		fmt.Fprintf(w, "traces    unavailable: %v\n", tl.Err)
		return
	}
	if len(tl.Traces) == 0 {
		fmt.Fprintln(w, "traces    none stored")
		return
	}
	fmt.Fprintln(w, "slowest traces:")
	for _, t := range tl.Traces {
		line := fmt.Sprintf("  %s  %-24s %8s  %d spans  [%s]",
			t.ID, t.Root, ms(float64(t.DurationUS)/1e6), t.Spans, t.Reason)
		if t.Error != "" {
			line += "  ERR " + t.Error
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "  waterfall: GET %s/debug/traces?id=<id>\n", strings.TrimRight(opsBase, "/"))
}

// traceGate is the -once tracing health check: traffic in the window
// with an empty trace store means the sampler kept nothing — tracing
// is silently broken (or configured to keep nothing), which CI should
// catch before an operator needs a trace that was never stored.
func traceGate(tl *traceList, served float64) error {
	if tl == nil {
		return nil
	}
	if tl.Err != nil {
		return fmt.Errorf("trace explorer unreachable: %w", tl.Err)
	}
	if served > 0 && len(tl.Traces) == 0 {
		return fmt.Errorf("tracing gate: %.0f requests served this window but no traces stored (sampler kept nothing)", served)
	}
	return nil
}

func ms(seconds float64) string {
	if seconds <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fms", seconds*1e3)
}

// writeHTML renders the same digest as a standalone page (meta-refresh
// keeps a browser tab live while dash keeps rewriting the file).
func writeHTML(path, base string, prev, cur *snap, hist *history) {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<meta http-equiv=\"refresh\" content=\"2\">\n")
	b.WriteString("<title>ra dash</title>\n")
	b.WriteString("<style>body{font:14px monospace;background:#111;color:#ddd;padding:2em}" +
		"pre{font:inherit}.bad{color:#f66}</style></head><body>\n<pre>")
	var text strings.Builder
	render(&text, base, prev, cur, hist)
	b.WriteString(html.EscapeString(text.String()))
	b.WriteString("</pre>\n</body></html>\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Printf("dash: write %s: %v", path, err)
	}
}
