// Command classify runs the paper's dichotomies on a query given on the
// command line and prints the verdict for all four problems (direct
// access / selection × LEX / SUM), with hardness certificates.
//
// Usage:
//
//	classify -q "Q(x, y, z) :- R(x, y), S(y, z)" [-order "x, z, y"] [-fd "R: x -> y"]...
//
// Multiple -fd flags may be given.
package main

import (
	"flag"
	"fmt"
	"os"

	"rankedaccess"
)

type fdFlags []string

func (f *fdFlags) String() string     { return fmt.Sprint([]string(*f)) }
func (f *fdFlags) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var (
		qSrc  = flag.String("q", "", "conjunctive query, e.g. \"Q(x, z) :- R(x, y), S(y, z)\"")
		lSrc  = flag.String("order", "", "lexicographic order, e.g. \"x, z desc\" (empty = no order constraint)")
		fdSrc fdFlags
	)
	flag.Var(&fdSrc, "fd", "unary functional dependency \"R: x -> y\" (repeatable)")
	flag.Parse()
	if *qSrc == "" {
		fmt.Fprintln(os.Stderr, "classify: -q is required")
		flag.Usage()
		os.Exit(2)
	}
	q, err := rankedaccess.ParseQuery(*qSrc)
	if err != nil {
		fatal(err)
	}
	l, err := rankedaccess.ParseLex(q, *lSrc)
	if err != nil {
		fatal(err)
	}
	fds, err := rankedaccess.ParseFDs(q, fdSrc...)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("query: %s\n", q.String())
	if *lSrc != "" {
		fmt.Printf("order: ⟨%s⟩\n", l.Render(q))
	}
	if len(fds) > 0 {
		fmt.Printf("FDs:   %s\n", fds.Render(q))
	}
	fmt.Println()
	rows := []struct {
		name string
		p    rankedaccess.Problem
	}{
		{"direct access by LEX", rankedaccess.DirectAccessLex},
		{"selection by LEX    ", rankedaccess.SelectionLex},
		{"direct access by SUM", rankedaccess.DirectAccessSum},
		{"selection by SUM    ", rankedaccess.SelectionSum},
	}
	for _, r := range rows {
		v := rankedaccess.Classify(r.p, q, l, fds)
		fmt.Printf("%s  %s\n", r.name, v.String())
		if len(v.Trio) == 3 {
			fmt.Printf("%21s disruptive trio: (%s, %s, %s)\n", "", v.Trio[0], v.Trio[1], v.Trio[2])
		}
		if len(v.SPath) > 0 {
			fmt.Printf("%21s path certificate: %v\n", "", v.SPath)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classify:", err)
	os.Exit(1)
}
