// Command snapshot inspects and verifies snapshot files written by the
// engine's durability layer (engine.Checkpoint / cmd/serve
// -snapshot-dir).
//
// Usage:
//
//	snapshot -file /var/lib/ra/snapshot-...-v7.rka   inspect one file
//	snapshot -file ... -json                          machine-readable dump
//	snapshot -dir /var/lib/ra                         list a directory
//
// Opening a file verifies it end to end: magic, format version, every
// section checksum, and the meta document's internal consistency — the
// same validation a warm start performs — so a zero exit status means
// the file restores cleanly on this host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rankedaccess/internal/snapshot"
)

func main() {
	var (
		file     = flag.String("file", "", "snapshot file to inspect and verify")
		dir      = flag.String("dir", "", "snapshot directory to list")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON")
		sections = flag.Bool("sections", false, "also dump the per-section layout")
	)
	flag.Parse()
	switch {
	case *file != "":
		inspect(*file, *asJSON, *sections)
	case *dir != "":
		list(*dir, *asJSON)
	default:
		fmt.Fprintln(os.Stderr, "snapshot: one of -file or -dir is required")
		os.Exit(2)
	}
}

func list(dir string, asJSON bool) {
	infos, err := snapshot.List(dir)
	check(err)
	if asJSON {
		emit(infos)
		return
	}
	if len(infos) == 0 {
		fmt.Println("no snapshots")
		return
	}
	for _, info := range infos {
		fmt.Printf("%s  %10d bytes  version %-6d  %s\n",
			info.Name, info.Bytes, info.EngineVersion,
			time.Unix(0, info.CreatedUnixNano).UTC().Format(time.RFC3339))
	}
}

// report is the JSON shape of one inspected file.
type report struct {
	File     string                 `json:"file"`
	Meta     snapshot.Meta          `json:"meta"`
	Sections []snapshot.SectionInfo `json:"sections,omitempty"`
}

func inspect(path string, asJSON, withSections bool) {
	m, err := snapshot.Open(path)
	check(err)
	defer m.Close()
	f := m.File()
	if asJSON {
		r := report{File: path, Meta: f.Meta}
		if withSections {
			r.Sections = f.SectionInfos()
		}
		emit(r)
		return
	}
	meta := f.Meta
	fmt.Printf("%s: ok (format v%d, %d sections, all checksums verified)\n",
		path, snapshot.FormatVersion, f.Sections())
	fmt.Printf("  engine version %d, created %s\n", meta.EngineVersion,
		time.Unix(0, meta.CreatedUnixNano).UTC().Format(time.RFC3339))
	fmt.Printf("  instance: %d tuples in %d relations", meta.Tuples, len(meta.Relations))
	if meta.Dict != nil {
		fmt.Printf(", dictionary of %d names", meta.Dict.Count)
	}
	fmt.Println()
	for _, rm := range meta.Relations {
		fmt.Printf("    %-16s arity %d  %8d rows\n", rm.Name, rm.Arity, rm.Rows)
	}
	fmt.Printf("  structures: %d\n", len(meta.Structures))
	for _, sm := range meta.Structures {
		extra := ""
		switch sm.Kind {
		case snapshot.KindLayeredLex:
			extra = fmt.Sprintf("%d layers", len(sm.Layers))
		default:
			extra = fmt.Sprintf("%d rows", sm.Rows)
		}
		fmt.Printf("    %-13s total %-9d %-12s %s\n", sm.Kind, sm.Total, extra, sm.Spec.Query)
	}
	fmt.Printf("  registrations: %d\n", len(meta.Registrations))
	for _, rm := range meta.Registrations {
		fmt.Printf("    %-16s %s\n", rm.Name, rm.Spec.Query)
	}
	if withSections {
		for i, si := range f.SectionInfos() {
			fmt.Printf("  section %3d  %-5s %10d bytes\n", i, si.Kind, si.Bytes)
		}
	}
}

func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	check(enc.Encode(v))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshot:", err)
		os.Exit(1)
	}
}
