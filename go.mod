module rankedaccess

go 1.24
