module rankedaccess

go 1.23
