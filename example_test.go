package rankedaccess_test

import (
	"fmt"

	"rankedaccess"
)

// The paper's running example: direct access to the join of R and S
// sorted by ⟨x, y, z⟩.
func Example() {
	q := rankedaccess.MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	in := rankedaccess.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)

	l, _ := rankedaccess.ParseLex(q, "x, y, z")
	da, _ := rankedaccess.NewDirectAccess(q, in, l, nil)
	for k := int64(0); k < da.Total(); k++ {
		a, _ := da.Access(k)
		fmt.Println(rankedaccess.AnswerTuple(q, a))
	}
	// Output:
	// [1 2 5]
	// [1 5 3]
	// [1 5 4]
	// [1 5 6]
	// [6 2 5]
}

// Classification explains itself: the order ⟨x, z, y⟩ hides the join
// variable behind both sides, which the paper captures as a disruptive
// trio.
func ExampleClassify() {
	q := rankedaccess.MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	l, _ := rankedaccess.ParseLex(q, "x, z, y")
	v := rankedaccess.Classify(rankedaccess.DirectAccessLex, q, l, nil)
	fmt.Println(v.Tractable, v.Trio)
	// Output: false [x z y]
}

// Selection works even for orders where direct access is impossible.
func ExampleSelect() {
	q := rankedaccess.MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	in := rankedaccess.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)

	l, _ := rankedaccess.ParseLex(q, "x, z, y") // disruptive trio: no DA
	median, _ := rankedaccess.Select(q, in, l, 2, nil)
	fmt.Println(rankedaccess.AnswerTuple(q, median))
	// Output: [1 2 5]
}

// A unary functional dependency can move a query to the tractable side
// (Example 8.3 of the paper).
func ExampleParseFDs() {
	q := rankedaccess.MustParseQuery("Q(x, z) :- R(x, y), S(y, z)")
	l, _ := rankedaccess.ParseLex(q, "x, z")
	fds, _ := rankedaccess.ParseFDs(q, "S: y -> z")
	fmt.Println(rankedaccess.Classify(rankedaccess.DirectAccessLex, q, l, nil).Tractable)
	fmt.Println(rankedaccess.Classify(rankedaccess.DirectAccessLex, q, l, fds).Tractable)
	// Output:
	// false
	// true
}

// SelectBySum finds quantiles of the weight distribution without
// materializing the (possibly quadratic) answer set.
func ExampleSelectBySum() {
	q := rankedaccess.MustParseQuery("Q(x, y) :- R(x), S(y)")
	in := rankedaccess.NewInstance()
	for _, v := range []int64{1, 2, 3} {
		in.AddRow("R", v)
		in.AddRow("S", v*10)
	}
	w := rankedaccess.IdentitySum(q.Head...)
	// 9 sums: 11,12,13,21,22,23,31,32,33 — the median is 22.
	a, _ := rankedaccess.SelectBySum(q, in, w, 4, nil)
	fmt.Println(w.AnswerWeight(q, a))
	// Output: 22
}
