// Package client is the Go SDK for the ranked direct-access service's
// v1 prepared-query API (cmd/serve). It depends only on the standard
// library (plus the dependency-free internal/trace context package),
// so importing it does not pull in the engine.
//
// When the calling context carries a trace span (internal/trace), every
// request sends a W3C traceparent header, so a traced caller's requests
// join its trace on the server side.
//
// The shape mirrors prepared statements: Dial a server, Register a
// spec once under a name, then probe the returned Prepared by name —
// Access for index batches, Range for contiguous windows, Cursor for
// stateful paging and NDJSON streaming:
//
//	c, err := client.Dial(ctx, "http://localhost:8080", nil)
//	p, err := c.Register(ctx, "by_xy", client.Spec{
//		Query: "Q(x, y, z) :- R(x, y), S(y, z)",
//		Order: "x, y desc",
//	})
//	rows, err := p.Range(ctx, 0, 100)
//	cur, err := p.Cursor(ctx, 0)
//	n, err := cur.Stream(ctx, 10000, func(row []client.Value) error {
//		...; return nil // row aliases a reused buffer
//	})
//
// Errors carry the server's {"error": ...} envelope as *APIError and
// satisfy errors.Is against the package sentinels (ErrNotPrepared,
// ErrOutOfRange, ErrIntractable, ErrCursorInvalidated), which map the
// v1 API's stable status codes (404/416/422/410) back to the same
// conditions the in-process facade reports.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"rankedaccess/internal/trace"
)

// Value is a dictionary-encoded domain value, as served by the engine.
type Value = int64

// Sentinel errors mirroring the facade's serving errors; *APIError
// values returned by every method satisfy errors.Is against them.
var (
	// ErrNotPrepared: no prepared query or cursor with that name/id
	// (HTTP 404).
	ErrNotPrepared = errors.New("client: not prepared")
	// ErrOutOfRange: a rank or range outside [0, |Q(I)|) (HTTP 416).
	ErrOutOfRange = errors.New("client: out of range")
	// ErrIntractable: the spec is on the intractable side of the
	// dichotomy and was registered strict (HTTP 422).
	ErrIntractable = errors.New("client: intractable")
	// ErrCursorInvalidated: the server instance mutated under the
	// cursor (HTTP 410).
	ErrCursorInvalidated = errors.New("client: cursor invalidated by instance mutation")
)

// APIError is a non-2xx response's decoded {"error": ...} envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// Is maps the v1 API's stable status codes to the package sentinels.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrNotPrepared:
		return e.Status == http.StatusNotFound
	case ErrOutOfRange:
		return e.Status == http.StatusRequestedRangeNotSatisfiable
	case ErrIntractable:
		return e.Status == http.StatusUnprocessableEntity
	case ErrCursorInvalidated:
		return e.Status == http.StatusGone
	}
	return false
}

// Spec is the textual ranked-access request registered under a name;
// it mirrors the server's engine.Spec.
type Spec struct {
	// Query is the conjunctive query text, e.g. "Q(x, z) :- R(x, y), S(y, z)".
	Query string `json:"query"`
	// Order is a lexicographic order such as "x, z desc" (ignored when
	// SumBy is set).
	Order string `json:"order,omitempty"`
	// SumBy ranks by the sum of the named variables' values.
	SumBy []string `json:"sum_by,omitempty"`
	// FDs are unary functional dependencies "R: x -> y".
	FDs []string `json:"fds,omitempty"`
	// Shards ≥ 2 requests hash-partitioned scatter-gather execution.
	Shards int `json:"shards,omitempty"`
	// ShardBy optionally names the partition variable.
	ShardBy string `json:"shard_by,omitempty"`
}

// Options configures Dial.
type Options struct {
	// HTTPClient overrides the transport; http.DefaultClient when nil.
	HTTPClient *http.Client

	// RequestTimeout bounds one non-streaming request end to end,
	// retries and backoff sleeps included. 0 means
	// DefaultRequestTimeout; negative disables the deadline. Streaming
	// calls (Cursor.Stream) are exempt — cancel them via ctx.
	RequestTimeout time.Duration

	// MaxRetries is how many times a request the server shed with
	// 429/503 (or a GET that failed in transport) is retried with
	// capped exponential backoff and jitter, honoring the server's
	// Retry-After. 0 means DefaultMaxRetries; negative disables
	// retries.
	MaxRetries int

	// RetryBaseDelay and RetryMaxDelay shape the backoff; zero values
	// mean DefaultRetryBaseDelay and DefaultRetryMaxDelay.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
}

// Client talks to one server. It is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retry   retryPolicy
}

// Dial validates the base URL (e.g. "http://localhost:8080") and pings
// the server's /v1/stats endpoint to fail fast on an unreachable or
// foreign service. Pass a nil opts for defaults.
func Dial(ctx context.Context, base string, opts *Options) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", base, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http(s)", base)
	}
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      http.DefaultClient,
		timeout: DefaultRequestTimeout,
		retry:   resolvePolicy(opts),
	}
	if opts != nil {
		if opts.HTTPClient != nil {
			c.hc = opts.HTTPClient
		}
		if opts.RequestTimeout != 0 {
			c.timeout = opts.RequestTimeout
			if c.timeout < 0 {
				c.timeout = 0
			}
		}
	}
	if _, err := c.Stats(ctx); err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", base, err)
	}
	return c, nil
}

// do sends one JSON request and decodes a 2xx body into out (skipped
// when out is nil); non-2xx responses come back as *APIError.
//
// Requests the server sheds with 429/503 are retried with backoff (the
// server rejects those before processing, so writes are safe to
// resend); transport errors are retried for GETs only, where a
// duplicate cannot change state. Non-streaming requests run under the
// client's RequestTimeout; streaming requests (accept != "") are bound
// only by the caller's ctx.
func (c *Client) do(ctx context.Context, method, path string, in, out any, accept string) (*http.Response, error) {
	var raw []byte
	if in != nil {
		var err error
		raw, err = json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("client: encode request: %w", err)
		}
	}
	if accept == "" && c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(raw)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return nil, err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		if sc, ok := trace.SpanContextOf(ctx); ok {
			req.Header.Set("traceparent", sc.Traceparent())
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			// The request may have reached the server; only a GET is
			// safe to replay blind.
			if method == http.MethodGet && attempt < c.retry.max && ctx.Err() == nil {
				if sleepCtx(ctx, c.retry.delay(attempt, nil)) == nil {
					continue
				}
			}
			return nil, err
		}
		if shouldRetryStatus(resp.StatusCode) && attempt < c.retry.max {
			d := c.retry.delay(attempt, resp)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if sleepCtx(ctx, d) == nil {
				continue
			}
			return nil, ctx.Err()
		}
		if resp.StatusCode/100 != 2 {
			defer resp.Body.Close()
			return nil, decodeAPIError(resp)
		}
		if accept != "" {
			// Streaming caller consumes and closes the body itself.
			return resp, nil
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return nil, fmt.Errorf("client: decode response: %w", err)
			}
		}
		return resp, nil
	}
}

// decodeAPIError turns a non-2xx response into an *APIError, falling
// back to the raw body when it is not the structured envelope.
func decodeAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var envelope struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if err := json.Unmarshal(raw, &envelope); err == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}

// Stats mirrors GET /v1/stats — the full typed counter surface the
// server exports, field for field. A schema test on the server side
// keeps the two in lockstep.
type Stats struct {
	// Structure-cache and registry counters.
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	Version      uint64 `json:"version"`
	Tuples       int    `json:"tuples"`
	Prepared     int    `json:"prepared"`
	RegistryHits uint64 `json:"registry_hits"`
	Reprepares   uint64 `json:"reprepares"`
	OpenCursors  int    `json:"open_cursors"`
	// Snapshot counters: checkpoints written, restores applied, and
	// structures the last warm start rehydrated from a mapped snapshot.
	Checkpoints    uint64 `json:"snapshot_checkpoints"`
	Restores       uint64 `json:"snapshot_restores"`
	WarmStructures uint64 `json:"warm_structures"`
	// Write-path counters: mutation batches applied, and how stale
	// structures caught up — republished unchanged, advanced by delta
	// overlay, or forced to rebuild — plus background re-preprocesses
	// that swapped in.
	WALBatches    uint64 `json:"wal_batches"`
	DeltaSkips    uint64 `json:"delta_skips"`
	DeltaEpochs   uint64 `json:"delta_epochs"`
	DeltaRebuilds uint64 `json:"delta_rebuilds"`
	BGRebuilds    uint64 `json:"bg_rebuilds"`
	// WALErrors counts absorbed durable-WAL append failures; nonzero
	// means the disk under the server's WAL is unhealthy.
	WALErrors uint64 `json:"wal_errors"`
	// Overload counters: requests shed by the rate limiter (429) and
	// the concurrency gate (503), current gate occupancy and queue
	// depth, coalescer traffic, reads served from a stale epoch while
	// degraded, and writes refused while degraded.
	Shed429        uint64 `json:"shed_rate_limited"`
	Shed503        uint64 `json:"shed_overload"`
	InFlight       int    `json:"in_flight"`
	QueueDepth     int    `json:"queue_depth"`
	CoalesceHits   uint64 `json:"coalesce_hits"`
	CoalesceMisses uint64 `json:"coalesce_misses"`
	DegradedReads  uint64 `json:"degraded_reads"`
	WriteSheds     uint64 `json:"write_sheds"`
	// Degraded is true while the engine sheds writes to catch up.
	Degraded bool `json:"degraded"`
	// DeprecatedRequests counts requests answered through deprecated
	// legacy routes (the unversioned shims over /v1).
	DeprecatedRequests uint64 `json:"deprecated_requests"`
}

// Stats fetches the server's counters via GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	_, err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st, "")
	return st, err
}

// Load appends rows to the named relation via POST /v1/instance/load
// and returns the count loaded.
func (c *Client) Load(ctx context.Context, relation string, rows [][]Value) (int, error) {
	in := struct {
		Relation string    `json:"relation"`
		Rows     [][]Value `json:"rows"`
	}{relation, rows}
	var out struct {
		Loaded int `json:"loaded"`
	}
	_, err := c.do(ctx, http.MethodPost, "/v1/instance/load", in, &out, "")
	return out.Loaded, err
}

// Write is one relation's rows in a batch mutation: rows to insert and
// rows to delete. Deletes of absent rows are idempotent no-ops.
type Write struct {
	Relation string    `json:"relation"`
	Insert   [][]Value `json:"insert,omitempty"`
	Delete   [][]Value `json:"delete,omitempty"`
}

// WriteResult reports the outcome of one batch mutation.
type WriteResult struct {
	// Version is the engine version the batch published.
	Version uint64 `json:"version"`
	// Inserted and Deleted count rows requested in the batch.
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
}

// Write applies a batch of relational mutations atomically via POST
// /v1/write: the whole group is durably logged and published as one
// new version. Prepared queries over untouched relations keep serving
// without rebuilding; queries over written relations absorb the batch
// as a delta overlay when possible.
func (c *Client) Write(ctx context.Context, writes ...Write) (WriteResult, error) {
	in := struct {
		Writes []Write `json:"writes"`
	}{writes}
	var out WriteResult
	_, err := c.do(ctx, http.MethodPost, "/v1/write", in, &out, "")
	return out, err
}

// QueryInfo describes one server-side registration.
type QueryInfo struct {
	Name      string   `json:"name"`
	Gen       uint64   `json:"gen"`
	Query     string   `json:"query"`
	Order     string   `json:"order,omitempty"`
	SumBy     []string `json:"sum_by,omitempty"`
	FDs       []string `json:"fds,omitempty"`
	Mode      string   `json:"mode"`
	Tractable bool     `json:"tractable"`
	Verdict   string   `json:"verdict,omitempty"`
	Total     int64    `json:"total"`
	Version   uint64   `json:"version"`
	Shards    int      `json:"shards,omitempty"`
	ShardBy   string   `json:"shard_by,omitempty"`
	ShardNote string   `json:"shard_note,omitempty"`
}

// Prepared is a client-side handle to a named server registration.
type Prepared struct {
	c *Client
	// Name is the registered name all probes reference.
	Name string
	// Info is the registration snapshot from the last Register/Refresh.
	Info QueryInfo
}

// registerRequest mirrors the server's POST /v1/queries body.
type registerRequest struct {
	Name string `json:"name"`
	Spec
	Strict bool `json:"strict,omitempty"`
}

// Register registers the spec under name via POST /v1/queries. The
// server parses and builds it once; later probes reference the name
// only. Re-registering a name replaces its spec.
func (c *Client) Register(ctx context.Context, name string, s Spec) (*Prepared, error) {
	return c.register(ctx, name, s, false)
}

// RegisterStrict is Register that fails with ErrIntractable when the
// spec lands on the intractable side of the paper's dichotomy instead
// of silently materializing.
func (c *Client) RegisterStrict(ctx context.Context, name string, s Spec) (*Prepared, error) {
	return c.register(ctx, name, s, true)
}

func (c *Client) register(ctx context.Context, name string, s Spec, strict bool) (*Prepared, error) {
	p := &Prepared{c: c, Name: name}
	_, err := c.do(ctx, http.MethodPost, "/v1/queries", registerRequest{Name: name, Spec: s, Strict: strict}, &p.Info, "")
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Queries lists the server's registrations via GET /v1/queries.
func (c *Client) Queries(ctx context.Context) ([]QueryInfo, error) {
	var out struct {
		Queries []QueryInfo `json:"queries"`
	}
	_, err := c.do(ctx, http.MethodGet, "/v1/queries", nil, &out, "")
	return out.Queries, err
}

// Prepared returns a handle to an existing registration, fetching its
// current info; it fails with ErrNotPrepared when the name is unknown.
func (c *Client) Prepared(ctx context.Context, name string) (*Prepared, error) {
	p := &Prepared{c: c, Name: name}
	if err := p.Refresh(ctx); err != nil {
		return nil, err
	}
	return p, nil
}

// Evict removes a registration via DELETE /v1/queries/{name}.
func (c *Client) Evict(ctx context.Context, name string) error {
	_, err := c.do(ctx, http.MethodDelete, "/v1/queries/"+url.PathEscape(name), nil, nil, "")
	return err
}

// Refresh re-fetches the registration info (total, mode, version).
func (p *Prepared) Refresh(ctx context.Context) error {
	_, err := p.c.do(ctx, http.MethodGet, p.path(""), nil, &p.Info, "")
	return err
}

func (p *Prepared) path(suffix string) string {
	return "/v1/queries/" + url.PathEscape(p.Name) + suffix
}

// Answer is one probed index: the head tuple, or the server's
// per-index error string (e.g. "out of bound").
type Answer struct {
	K     int64   `json:"k"`
	Tuple []Value `json:"tuple,omitempty"`
	Err   string  `json:"error,omitempty"`
}

// Access probes a batch of global ranks by name. Per-index failures
// land in the returned answers without failing the batch.
func (p *Prepared) Access(ctx context.Context, ks ...int64) ([]Answer, error) {
	in := struct {
		Ks []int64 `json:"ks"`
	}{ks}
	var out struct {
		Answers []Answer `json:"answers"`
	}
	_, err := p.c.do(ctx, http.MethodPost, p.path("/access"), in, &out, "")
	return out.Answers, err
}

// Range fetches the head tuples of global ranks k0 ≤ k < k1 in one
// batched request.
func (p *Prepared) Range(ctx context.Context, k0, k1 int64) ([][]Value, error) {
	in := struct {
		K0 int64 `json:"k0"`
		K1 int64 `json:"k1"`
	}{k0, k1}
	var out struct {
		Tuples [][]Value `json:"tuples"`
	}
	_, err := p.c.do(ctx, http.MethodPost, p.path("/range"), in, &out, "")
	return out.Tuples, err
}

// Select answers the one-shot selection problem for rank k (no
// structure is built or cached server-side).
func (p *Prepared) Select(ctx context.Context, k int64) ([]Value, error) {
	in := struct {
		K int64 `json:"k"`
	}{k}
	var out struct {
		Tuple []Value `json:"tuple"`
	}
	_, err := p.c.do(ctx, http.MethodPost, p.path("/select"), in, &out, "")
	return out.Tuple, err
}

// Count returns |Q(I)| for the registered query.
func (p *Prepared) Count(ctx context.Context) (int64, error) {
	var out struct {
		Count int64 `json:"count"`
	}
	_, err := p.c.do(ctx, http.MethodPost, p.path("/count"), struct{}{}, &out, "")
	return out.Count, err
}

// Classification is the verdict of one of the paper's dichotomies.
type Classification struct {
	Tractable bool     `json:"tractable"`
	Bound     string   `json:"bound"`
	Verdict   string   `json:"verdict"`
	Trio      []string `json:"trio,omitempty"`
}

// Classify runs the named dichotomy problem ("direct-access-lex",
// "selection-lex", "direct-access-sum", "selection-sum"; empty means
// direct-access-lex) on the registered spec.
func (p *Prepared) Classify(ctx context.Context, problem string) (Classification, error) {
	in := struct {
		Problem string `json:"problem,omitempty"`
	}{problem}
	var out Classification
	_, err := p.c.do(ctx, http.MethodPost, p.path("/classify"), in, &out, "")
	return out, err
}
