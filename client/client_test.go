package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/serve"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

const twoPath = "Q(x, y, z) :- R(x, y), S(y, z)"

// testServer boots a real serve handler over a generated instance and
// dials it.
func testServer(t *testing.T, n int, seed int64) (*Client, *engine.Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	_, in := workload.TwoPath(rng, n, n/8, 0.3)
	e := engine.New(in, engine.Options{})
	srv := httptest.NewServer(serve.NewHandler(e))
	t.Cleanup(srv.Close)
	c, err := Dial(context.Background(), srv.URL, &Options{HTTPClient: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	return c, e
}

func TestDialRejectsBadTargets(t *testing.T) {
	ctx := context.Background()
	if _, err := Dial(ctx, "ftp://example.com", nil); err == nil {
		t.Fatal("ftp scheme accepted")
	}
	if _, err := Dial(ctx, "http://127.0.0.1:1", nil); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestRegisterAndProbe(t *testing.T) {
	ctx := context.Background()
	c, e := testServer(t, 400, 1)

	p, err := c.Register(ctx, "by_xyz", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Info.Total == 0 || !p.Info.Tractable {
		t.Fatalf("info = %+v", p.Info)
	}

	// Cross-check a few probes against the engine.
	h, err := e.Prepare(engine.Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := p.Access(ctx, 0, p.Info.Total/2, p.Info.Total-1, p.Info.Total+9)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []int64{0, p.Info.Total / 2, p.Info.Total - 1} {
		a, err := h.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(answers[i].Tuple) != fmt.Sprint(h.HeadTuple(a)) {
			t.Fatalf("k=%d: %v, want %v", k, answers[i].Tuple, h.HeadTuple(a))
		}
	}
	if answers[3].Err == "" {
		t.Fatal("out-of-bound probe reported no error")
	}

	rows, err := p.Range(ctx, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("range returned %d rows", len(rows))
	}
	sel, err := p.Select(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sel) != fmt.Sprint(rows[0]) {
		t.Fatalf("select(3) = %v, range row 0 = %v", sel, rows[0])
	}
	n, err := p.Count(ctx)
	if err != nil || n != p.Info.Total {
		t.Fatalf("count = (%d, %v), want %d", n, err, p.Info.Total)
	}
	cls, err := p.Classify(ctx, "")
	if err != nil || !cls.Tractable {
		t.Fatalf("classify = (%+v, %v)", cls, err)
	}

	qs, err := c.Queries(ctx)
	if err != nil || len(qs) != 1 || qs[0].Name != "by_xyz" {
		t.Fatalf("queries = (%+v, %v)", qs, err)
	}
	p2, err := c.Prepared(ctx, "by_xyz")
	if err != nil || p2.Info.Total != p.Info.Total {
		t.Fatalf("Prepared = (%+v, %v)", p2, err)
	}
	if err := c.Evict(ctx, "by_xyz"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepared(ctx, "by_xyz"); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("after evict: %v, want ErrNotPrepared", err)
	}
}

func TestTypedErrors(t *testing.T) {
	ctx := context.Background()
	c, e := testServer(t, 200, 2)

	if _, err := c.Prepared(ctx, "ghost"); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("unknown name: %v, want ErrNotPrepared", err)
	}
	if _, err := c.RegisterStrict(ctx, "hard", Spec{Query: twoPath, Order: "x, z, y"}); !errors.Is(err, ErrIntractable) {
		t.Fatalf("strict intractable: %v, want ErrIntractable", err)
	}

	p, err := c.Register(ctx, "q", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Range(ctx, 0, p.Info.Total+5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("oob range: %v, want ErrOutOfRange", err)
	}
	if _, err := p.Cursor(ctx, p.Info.Total+1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("oob cursor: %v, want ErrOutOfRange", err)
	}

	// Cursors are pinned to their epoch: a server-side mutation does not
	// invalidate an open cursor, which keeps serving its snapshot.
	cur, err := p.Cursor(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("R", [][]values.Value{{12345, 12345}}); err != nil {
		t.Fatal(err)
	}
	if batch, err := cur.Next(ctx, 5); err != nil || len(batch) != 5 {
		t.Fatalf("cursor across mutation = (%d rows, %v), want 5 rows", len(batch), err)
	}

	var apiErr *APIError
	_, err = p.Range(ctx, 0, p.Info.Total+5)
	if !errors.As(err, &apiErr) || apiErr.Status != 416 || apiErr.Message == "" {
		t.Fatalf("range error not a populated *APIError: %#v", err)
	}
}

func TestCursorNextAndStreamAgree(t *testing.T) {
	ctx := context.Background()
	c, _ := testServer(t, 400, 3)
	p, err := c.Register(ctx, "s", Spec{Query: twoPath, Order: "x, y desc, z"})
	if err != nil {
		t.Fatal(err)
	}
	total := p.Info.Total
	if total < 40 {
		t.Fatalf("instance too small: %d", total)
	}

	// Drain via JSON paging.
	curA, err := p.Cursor(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	var paged [][]Value
	for !curA.Done() {
		batch, err := curA.Next(ctx, 17)
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, batch...)
	}

	// Drain via NDJSON streaming, in two windows.
	curB, err := p.Cursor(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	var streamed [][]Value
	for !curB.Done() {
		n, err := curB.Stream(ctx, int(total/2+1), func(row []Value) error {
			streamed = append(streamed, append([]Value(nil), row...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}

	if int64(len(paged)) != total || fmt.Sprint(paged) != fmt.Sprint(streamed) {
		t.Fatalf("paged %d rows, streamed %d rows, equal=%v",
			len(paged), len(streamed), fmt.Sprint(paged) == fmt.Sprint(streamed))
	}
	if !curB.Done() || curB.Pos() != total {
		t.Fatalf("stream cursor state = (done=%v, pos=%d), want (true, %d)", curB.Done(), curB.Pos(), total)
	}
	if err := curA.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := curA.Next(ctx, 1); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("closed cursor: %v, want ErrNotPrepared", err)
	}
}

func TestLoadThenRegister(t *testing.T) {
	ctx := context.Background()
	c, _ := testServer(t, 50, 4)
	loaded, err := c.Load(ctx, "T", [][]Value{{1, 2}, {3, 4}})
	if err != nil || loaded != 2 {
		t.Fatalf("load = (%d, %v)", loaded, err)
	}
	p, err := c.Register(ctx, "t", Spec{Query: "Q(a, b) :- T(a, b)", Order: "a, b"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Info.Total != 2 {
		t.Fatalf("total = %d, want 2", p.Info.Total)
	}
	rows, err := p.Range(ctx, 0, 2)
	if err != nil || fmt.Sprint(rows) != "[[1 2] [3 4]]" {
		t.Fatalf("rows = (%v, %v)", rows, err)
	}
}

func TestParseRow(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
		ok   bool
	}{
		{"[1,2,3]", "[1 2 3]", true},
		{"[-7]", "[-7]", true},
		{"[ 1 , 2 ]", "[1 2]", true},
		{"[]", "[]", true},
		{"1,2", "", false},
		{"[1,2", "", false},
		{"[1,,2]", "", false},
		{`["x"]`, "", false},
	} {
		got, err := parseRow(nil, []byte(tc.in))
		if tc.ok != (err == nil) {
			t.Errorf("parseRow(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && fmt.Sprint(got) != tc.want {
			t.Errorf("parseRow(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
