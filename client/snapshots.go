package client

import (
	"context"
	"net/http"
	"net/url"
)

// SnapshotInfo describes one server-side snapshot: the response of
// POST /v1/snapshots (creation counters filled) and the entries of
// GET /v1/snapshots (file-level fields filled).
type SnapshotInfo struct {
	// Name identifies the snapshot file; pass it to Restore.
	Name string `json:"name"`
	// Bytes is the snapshot file size.
	Bytes int64 `json:"bytes"`
	// Version is the instance version the snapshot captured.
	Version uint64 `json:"version,omitempty"`
	// EngineVersion mirrors Version in directory listings.
	EngineVersion uint64 `json:"engine_version,omitempty"`
	// CreatedUnixNano is the checkpoint wall time (listings only).
	CreatedUnixNano int64 `json:"created_unix_nano,omitempty"`
	// Structures counts persisted access structures; Skipped counts
	// structures that will rebuild on demand after a warm start
	// (creation only).
	Structures int `json:"structures,omitempty"`
	Skipped    int `json:"skipped,omitempty"`
	// Registrations counts persisted prepared-query registrations
	// (creation only).
	Registrations int `json:"registrations,omitempty"`
}

// RestoreInfo is the result of restoring a snapshot into the live
// server.
type RestoreInfo struct {
	Name          string `json:"name"`
	Version       uint64 `json:"version"`
	Tuples        int    `json:"tuples"`
	Structures    int    `json:"structures"`
	Registrations int    `json:"registrations"`
}

// Snapshot checkpoints the server's current state (instance, built
// structures, prepared-query registry) into its snapshot directory via
// POST /v1/snapshots. The server must run with -snapshot-dir.
func (c *Client) Snapshot(ctx context.Context) (SnapshotInfo, error) {
	var out SnapshotInfo
	_, err := c.do(ctx, http.MethodPost, "/v1/snapshots", nil, &out, "")
	return out, err
}

// Snapshots lists the server's snapshots, newest first, via
// GET /v1/snapshots.
func (c *Client) Snapshots(ctx context.Context) ([]SnapshotInfo, error) {
	var out struct {
		Snapshots []SnapshotInfo `json:"snapshots"`
	}
	_, err := c.do(ctx, http.MethodGet, "/v1/snapshots", nil, &out, "")
	return out.Snapshots, err
}

// Restore replaces the server's live state with the named snapshot via
// POST /v1/snapshots/{name}/restore. Prepared handles and cursors
// opened before the restore are invalidated, exactly as by any other
// mutation.
func (c *Client) Restore(ctx context.Context, name string) (RestoreInfo, error) {
	var out RestoreInfo
	_, err := c.do(ctx, http.MethodPost, "/v1/snapshots/"+url.PathEscape(name)+"/restore", nil, &out, "")
	return out, err
}
