package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedServer answers /v1/stats (so Dial succeeds) and sheds the first
// fail requests to every other path with the given status before
// letting them through.
func shedServer(t *testing.T, fail int64, status int, retryAfter string) (*Client, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stats" {
			w.Write([]byte("{}\n"))
			return
		}
		if attempts.Add(1) <= fail {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"shed"}`))
			return
		}
		w.Write([]byte(`{"version":7,"inserted":1,"deleted":0}`))
	}))
	t.Cleanup(srv.Close)
	c, err := Dial(context.Background(), srv.URL, &Options{
		HTTPClient:     srv.Client(),
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, &attempts
}

func TestShedWriteRetriedUntilSuccess(t *testing.T) {
	// 429 and 503 both mean "not processed": the SDK may resend even a
	// write and must succeed once the server stops shedding.
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		c, attempts := shedServer(t, 2, status, "")
		res, err := c.Write(context.Background(), Write{Relation: "R", Insert: [][]Value{{1, 2}}})
		if err != nil {
			t.Fatalf("status %d: write after retries: %v", status, err)
		}
		if res.Version != 7 || res.Inserted != 1 {
			t.Fatalf("status %d: result = %+v", status, res)
		}
		if got := attempts.Load(); got != 3 {
			t.Fatalf("status %d: %d attempts, want 3", status, got)
		}
	}
}

func TestRetriesExhaustedSurfaceTheShed(t *testing.T) {
	c, attempts := shedServer(t, 1<<30, http.StatusServiceUnavailable, "1")
	_, err := c.Write(context.Background(), Write{Relation: "R", Insert: [][]Value{{1, 2}}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries: err = %v, want 503 APIError", err)
	}
	// Default policy: 1 initial attempt + DefaultMaxRetries retries.
	if got := attempts.Load(); got != int64(DefaultMaxRetries)+1 {
		t.Fatalf("%d attempts, want %d", got, DefaultMaxRetries+1)
	}
}

func TestNegativeMaxRetriesDisables(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stats" {
			w.Write([]byte("{}\n"))
			return
		}
		attempts.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	c, err := Dial(context.Background(), srv.URL, &Options{HTTPClient: srv.Client(), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(context.Background(), Write{Relation: "R", Insert: [][]Value{{1, 2}}}); err == nil {
		t.Fatal("shed write succeeded")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("%d attempts with retries disabled, want 1", got)
	}
}

func TestRequestTimeoutBoundsSlowServer(t *testing.T) {
	var pinged atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if pinged.CompareAndSwap(false, true) {
			w.Write([]byte("{}\n")) // Dial's ping
			return
		}
		select { // hang until the client gives up
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(srv.Close)
	c, err := Dial(context.Background(), srv.URL, &Options{
		HTTPClient:     srv.Client(),
		RequestTimeout: 50 * time.Millisecond,
		MaxRetries:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Stats(context.Background())
	if err == nil {
		t.Fatal("slow request returned")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow request: err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestRetryDelayHonorsRetryAfterUpToCap(t *testing.T) {
	p := retryPolicy{max: 3, base: 10 * time.Millisecond, cap: 2 * time.Second}
	mkResp := func(ra string) *http.Response {
		h := http.Header{}
		if ra != "" {
			h.Set("Retry-After", ra)
		}
		return &http.Response{Header: h}
	}
	if d := p.delay(0, mkResp("1")); d != time.Second {
		t.Fatalf("Retry-After 1 → %v, want 1s", d)
	}
	if d := p.delay(0, mkResp("30")); d != p.cap {
		t.Fatalf("Retry-After 30 → %v, want capped at %v", d, p.cap)
	}
	// Absent or junk headers fall back to jittered backoff in [d/2, d].
	for i, ra := range []string{"", "soon", "-2"} {
		d := p.delay(2, mkResp(ra))
		want := p.base << 2
		if d < want/2 || d > want {
			t.Fatalf("case %d: backoff %v outside [%v, %v]", i, d, want/2, want)
		}
	}
	// Deep attempts stay capped.
	if d := p.delay(40, nil); d < p.cap/2 || d > p.cap {
		t.Fatalf("deep attempt backoff %v outside [%v, %v]", d, p.cap/2, p.cap)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := map[string]time.Duration{
		"": 0, "abc": 0, "-1": 0, "0": 0,
		"1": time.Second, "30": 30 * time.Second,
	}
	for in, want := range cases {
		if got := parseRetryAfter(in); got != want {
			t.Fatalf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}
