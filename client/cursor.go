package client

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
)

// Cursor is a server-side scan position: created once, advanced by
// Next (JSON batches) or Stream (NDJSON row streaming). It is not safe
// for concurrent use — open one cursor per consumer; the server keeps
// the underlying prepared structure shared.
type Cursor struct {
	p *Prepared
	// ID is the opaque server token.
	ID string

	total int64
	pos   int64
	width int
	done  bool
}

// Cursor opens a server-side cursor at global rank start.
func (p *Prepared) Cursor(ctx context.Context, start int64) (*Cursor, error) {
	in := struct {
		Start int64 `json:"start,omitempty"`
	}{start}
	var out struct {
		Cursor string `json:"cursor"`
		Total  int64  `json:"total"`
		Pos    int64  `json:"pos"`
		Width  int    `json:"width"`
	}
	if _, err := p.c.do(ctx, http.MethodPost, p.path("/cursor"), in, &out, ""); err != nil {
		return nil, err
	}
	return &Cursor{
		p: p, ID: out.Cursor, total: out.Total, pos: out.Pos, width: out.Width,
		done: out.Pos >= out.Total,
	}, nil
}

// Total returns |Q(I)| of the snapshot the cursor scans.
func (c *Cursor) Total() int64 { return c.total }

// Pos returns the global rank the next batch starts at.
func (c *Cursor) Pos() int64 { return c.pos }

// Width returns the number of head columns per row.
func (c *Cursor) Width() int { return c.width }

// Done reports whether the scan is exhausted.
func (c *Cursor) Done() bool { return c.done }

func (c *Cursor) nextPath(n int) string {
	return "/v1/cursors/" + c.ID + "/next?n=" + strconv.Itoa(n)
}

// Next fetches up to n rows as one JSON batch and advances the cursor.
// It returns an empty slice when the scan is exhausted.
func (c *Cursor) Next(ctx context.Context, n int) ([][]Value, error) {
	var out struct {
		Pos    int64     `json:"pos"`
		Done   bool      `json:"done"`
		Tuples [][]Value `json:"tuples"`
	}
	if _, err := c.p.c.do(ctx, http.MethodGet, c.nextPath(n), nil, &out, ""); err != nil {
		return nil, err
	}
	c.pos, c.done = out.Pos, out.Done
	return out.Tuples, nil
}

// Stream fetches up to n rows as an NDJSON stream (Accept:
// application/x-ndjson), invoking fn once per row as it arrives and
// returning the number of rows consumed. The row slice is reused
// between invocations — copy it to retain it. A non-nil error from fn
// aborts the consumption and is returned verbatim.
//
// The server commits the cursor position to the window end before the
// first byte (X-Cursor-Pos); Stream mirrors that position as soon as
// the headers arrive, so Pos/Done stay in sync with the server even
// when fn aborts or the connection drops mid-stream — a retry simply
// streams the next window.
func (c *Cursor) Stream(ctx context.Context, n int, fn func(row []Value) error) (int, error) {
	resp, err := c.p.c.do(ctx, http.MethodGet, c.nextPath(n), nil, nil, "application/x-ndjson")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	endPos, err := strconv.ParseInt(resp.Header.Get("X-Cursor-Pos"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("client: stream response missing X-Cursor-Pos: %w", err)
	}
	want := int(endPos - c.pos)
	c.pos = endPos
	c.done = resp.Header.Get("X-Cursor-Done") == "true"
	row := make([]Value, 0, c.width)
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		row, err = parseRow(row[:0], line)
		if err != nil {
			return rows, err
		}
		if err := fn(row); err != nil {
			return rows, err
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return rows, fmt.Errorf("client: stream read: %w", err)
	}
	if rows != want {
		// The connection dropped or the server hit an internal error
		// mid-stream; surface the short read rather than silently
		// under-delivering (the cursor position is still consistent).
		return rows, fmt.Errorf("client: stream truncated: got %d of %d rows", rows, want)
	}
	return rows, nil
}

// parseRow decodes one NDJSON line "[v1,v2,...]" of integer values
// into dst without an encoding/json round-trip per row.
func parseRow(dst []Value, line []byte) ([]Value, error) {
	i, n := 0, len(line)
	skipSpace := func() {
		for i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
	}
	skipSpace()
	if i >= n || line[i] != '[' {
		return dst, fmt.Errorf("client: bad stream row %q", line)
	}
	i++
	skipSpace()
	if i < n && line[i] == ']' {
		return dst, nil // zero-width row
	}
	for {
		start := i
		if i < n && (line[i] == '-' || line[i] == '+') {
			i++
		}
		for i < n && line[i] >= '0' && line[i] <= '9' {
			i++
		}
		v, err := strconv.ParseInt(string(line[start:i]), 10, 64)
		if err != nil {
			return dst, fmt.Errorf("client: bad stream row %q: %w", line, err)
		}
		dst = append(dst, v)
		skipSpace()
		if i >= n {
			return dst, fmt.Errorf("client: unterminated stream row %q", line)
		}
		switch line[i] {
		case ',':
			i++
			skipSpace()
		case ']':
			return dst, nil
		default:
			return dst, fmt.Errorf("client: bad stream row %q", line)
		}
	}
}

// Close releases the server-side cursor.
func (c *Cursor) Close(ctx context.Context) error {
	_, err := c.p.c.do(ctx, http.MethodDelete, "/v1/cursors/"+c.ID, nil, nil, "")
	return err
}
