package client

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/serve"
	"rankedaccess/internal/workload"
)

// snapshotServer is testServer with the snapshot endpoints enabled.
func snapshotServer(t *testing.T) (*Client, *engine.Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	_, in := workload.TwoPath(rng, 256, 32, 0.3)
	e := engine.New(in, engine.Options{})
	srv := httptest.NewServer(serve.NewHandlerWith(e, serve.Config{SnapshotDir: t.TempDir()}))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { e.Close() })
	c, err := Dial(context.Background(), srv.URL, &Options{HTTPClient: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	return c, e
}

func TestSnapshotCreateListRestore(t *testing.T) {
	ctx := context.Background()
	c, _ := snapshotServer(t)
	p, err := c.Register(ctx, "snap", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Range(ctx, 0, 32)
	if err != nil {
		t.Fatal(err)
	}

	created, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if created.Name == "" || created.Structures == 0 || created.Registrations != 1 {
		t.Fatalf("snapshot response %+v", created)
	}
	list, err := c.Snapshots(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != created.Name || list[0].Bytes != created.Bytes {
		t.Fatalf("list %+v, want the created snapshot", list)
	}

	// Drift the instance, then restore the checkpointed state.
	if _, err := c.Load(ctx, "R", [][]Value{{1 << 40, 1}}); err != nil {
		t.Fatal(err)
	}
	restored, err := c.Restore(ctx, created.Name)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Version <= created.Version || restored.Registrations != 1 {
		t.Fatalf("restore response %+v after version %d", restored, created.Version)
	}
	after, err := p.Range(ctx, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatal("restored answers differ from the checkpointed ones")
	}
}

func TestRestoreUnknownSnapshotIsTypedError(t *testing.T) {
	ctx := context.Background()
	c, _ := snapshotServer(t)
	if _, err := c.Restore(ctx, "snapshot-00000000000000000001-v1.rka"); err == nil {
		t.Fatal("restore of a missing snapshot succeeded")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.Status != 404 {
		t.Fatalf("error %v, want a 404 *APIError", err)
	}
}

func TestSnapshotAgainstDisabledServerFails(t *testing.T) {
	ctx := context.Background()
	c, _ := testServer(t, 64, 5)
	if _, err := c.Snapshot(ctx); err == nil {
		t.Fatal("snapshot succeeded against a server without a snapshot dir")
	}
}
