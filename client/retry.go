// retry.go is the SDK's overload-handling policy: per-request
// deadlines, and capped exponential backoff with jitter for requests
// the server shed (429/503) or that failed in transport before any
// state could change. The server signals "not processed" with those
// two statuses — its admission control rejects before the handler
// runs — so retrying them is safe even for writes; transport errors
// are retried only for GETs, where a duplicate is harmless.
package client

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Default timing of the retry policy; override any of these via
// Options at Dial time.
const (
	// DefaultRequestTimeout bounds one non-streaming request end to
	// end, backoff sleeps included. Streaming calls (Cursor.Stream) are
	// exempt — a healthy stream may legitimately outlive any fixed
	// per-request budget.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultMaxRetries is how many times a shed request is retried
	// (attempts = retries + 1).
	DefaultMaxRetries = 2
	// DefaultRetryBaseDelay seeds the exponential backoff.
	DefaultRetryBaseDelay = 100 * time.Millisecond
	// DefaultRetryMaxDelay caps one backoff sleep, a server-sent
	// Retry-After included.
	DefaultRetryMaxDelay = 2 * time.Second
)

// retryPolicy is the resolved retry configuration of one Client.
type retryPolicy struct {
	max  int           // retries after the first attempt; 0 disables
	base time.Duration // first backoff step
	cap  time.Duration // ceiling for any one sleep
}

// resolvePolicy applies defaults: zero fields mean the package
// defaults, negative MaxRetries disables retries entirely.
func resolvePolicy(opts *Options) retryPolicy {
	p := retryPolicy{max: DefaultMaxRetries, base: DefaultRetryBaseDelay, cap: DefaultRetryMaxDelay}
	if opts == nil {
		return p
	}
	if opts.MaxRetries != 0 {
		p.max = opts.MaxRetries
		if p.max < 0 {
			p.max = 0
		}
	}
	if opts.RetryBaseDelay > 0 {
		p.base = opts.RetryBaseDelay
	}
	if opts.RetryMaxDelay > 0 {
		p.cap = opts.RetryMaxDelay
	}
	return p
}

// shouldRetryStatus reports whether a response status means the server
// shed the request without processing it.
func shouldRetryStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// delay picks the sleep before retry number attempt (0-based),
// honoring a server-sent Retry-After up to the policy cap; without one
// it backs off exponentially with jitter in [d/2, d) so a burst of
// shed clients does not reconverge on the same instant.
func (p retryPolicy) delay(attempt int, resp *http.Response) time.Duration {
	if resp != nil {
		if ra := parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
			if ra > p.cap {
				ra = p.cap
			}
			return ra
		}
	}
	d := p.base << attempt
	if d > p.cap || d <= 0 {
		d = p.cap
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// parseRetryAfter reads the delay-seconds form of Retry-After
// (the form this server emits); 0 when absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
