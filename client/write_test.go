package client

import (
	"context"
	"testing"
)

func TestWriteBatchRoundTrip(t *testing.T) {
	ctx := context.Background()
	c, e := testServer(t, 128, 11)
	p, err := c.Register(ctx, "w", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	total := p.Info.Total

	res, err := c.Write(ctx,
		Write{Relation: "R", Insert: [][]Value{{80001, 70009}}},
		Write{Relation: "S", Insert: [][]Value{{70009, 1}, {70009, 2}, {70009, 3}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != e.Version() || res.Inserted != 4 || res.Deleted != 0 {
		t.Fatalf("write result = %+v (engine version %d)", res, e.Version())
	}

	// The new R row joins the three new S rows.
	n, err := p.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != total+3 {
		t.Fatalf("count after write = %d, want %d", n, total+3)
	}

	// Deleting the joined R row removes those answers again.
	res, err = c.Write(ctx, Write{Relation: "R", Delete: [][]Value{{80001, 70009}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("delete result = %+v", res)
	}
	if n, err := p.Count(ctx); err != nil || n != total {
		t.Fatalf("count after delete = (%d, %v), want %d", n, err, total)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.WALBatches != 2 || st.DeltaEpochs < 1 {
		t.Fatalf("stats = %+v, want 2 WAL batches and a delta epoch", st)
	}
}
