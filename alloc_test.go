// Allocation-regression suite for the hot paths the tuple-index rework
// targets: steady-state ranked access must not allocate at all, and the
// batched paths must amortize their bookkeeping across the window. Run
// the benchmarks with -benchmem and compare against the reference
// numbers in README.md ("Performance architecture").
package rankedaccess

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/order"
	"rankedaccess/internal/trace"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

func buildTwoPathLex(tb testing.TB, n int) *access.Lex {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	q, in := workload.TwoPath(rng, n, n/8, 0.3)
	l, err := order.ParseLex(q, "x, y, z")
	if err != nil {
		tb.Fatal(err)
	}
	la, err := access.BuildLex(q, in, l)
	if err != nil {
		tb.Fatal(err)
	}
	if la.Total() == 0 {
		tb.Fatal("empty join")
	}
	return la
}

// TestSteadyStateAccessZeroAllocs is the acceptance guard for the
// allocation-free access path: probing a built structure through a
// reused buffer must perform exactly zero allocations per access.
func TestSteadyStateAccessZeroAllocs(t *testing.T) {
	la := buildTwoPathLex(t, 1<<13)
	buf := la.NewBuf()
	total := la.Total()
	k := int64(0)
	step := total/97 + 1
	if n := testing.AllocsPerRun(500, func() {
		if _, err := la.AccessInto(buf, k); err != nil {
			t.Fatal(err)
		}
		k = (k + step) % total
	}); n != 0 {
		t.Fatalf("steady-state AccessInto allocates %v times per access, want 0", n)
	}
}

// TestAppendRangeAmortizedAllocs checks the batched path: a whole range
// through a pre-grown destination buffer must not allocate per answer.
func TestAppendRangeAmortizedAllocs(t *testing.T) {
	la := buildTwoPathLex(t, 1<<13)
	total := la.Total()
	width := int64(3) // head is (x, y, z)
	win := int64(64)
	if win > total {
		win = total
	}
	dst := make([]values.Value, 0, win*width)
	k := int64(0)
	// The pooled probe buffer may be re-created if a GC empties the
	// pool mid-measurement, so allow strictly-sub-per-answer noise
	// rather than demanding exact zero.
	perRun := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = la.AppendRange(dst[:0], k, k+win)
		if err != nil {
			t.Fatal(err)
		}
		k = (k + win) % (total - win + 1)
	})
	if perRun >= float64(win)/4 {
		t.Fatalf("AppendRange allocates %v times per %d-answer window", perRun, win)
	}
}

// TestTracingDisabledZeroAllocs is the acceptance guard for the
// tracing integration: with tracing disabled (nil *trace.Tracer — the
// default configuration), the context-threaded serving probe path must
// allocate exactly as much as before tracing existed, i.e. zero. This
// pins both halves of the contract: Tracer.Start/Span.End on a nil
// tracer are free, and the ctx plumbing through the engine's *Ctx
// variants adds no hidden boxing.
func TestTracingDisabledZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, in := workload.TwoPath(rng, 1<<13, 1<<10, 0.3)
	e := engine.New(in, engine.Options{})
	pq, err := e.Register("guard", engine.Spec{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	total := h.Total()
	if total == 0 {
		t.Fatal("empty join")
	}
	var tracer *trace.Tracer
	dst := make([]values.Value, 0, 8)
	bg := context.Background()
	k := int64(0)
	step := total/89 + 1
	if n := testing.AllocsPerRun(500, func() {
		ctx, sp := tracer.Start(bg, "bench.access", trace.KindServer)
		h, err := pq.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		dst, err = h.AppendTupleCtx(ctx, dst[:0], k)
		if err != nil {
			t.Fatal(err)
		}
		sp.End()
		k = (k + step) % total
	}); n != 0 {
		t.Fatalf("tracing-disabled probe path allocates %v times per request, want 0", n)
	}
}

// --- Benchmarks: single access, buffered access, batched access ---

func BenchmarkAccess_Fresh(b *testing.B) {
	la := buildTwoPathLex(b, 1<<14)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := la.Access(rng.Int63n(la.Total())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccess_Buffered(b *testing.B) {
	la := buildTwoPathLex(b, 1<<14)
	rng := rand.New(rand.NewSource(2))
	buf := la.NewBuf()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := la.AccessInto(buf, rng.Int63n(la.Total())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccess_AppendTuple(b *testing.B) {
	la := buildTwoPathLex(b, 1<<14)
	rng := rand.New(rand.NewSource(2))
	dst := make([]values.Value, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = la.AppendTuple(dst[:0], rng.Int63n(la.Total()))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessRange_Batched measures per-answer cost of contiguous
// windows against the per-call cost of BenchmarkAccess_Buffered.
func BenchmarkAccessRange_Batched(b *testing.B) {
	for _, win := range []int64{16, 256} {
		b.Run(fmt.Sprintf("window=%d", win), func(b *testing.B) {
			la := buildTwoPathLex(b, 1<<14)
			total := la.Total()
			if win > total {
				b.Skip("window wider than answer set")
			}
			dst := make([]values.Value, 0, win*3)
			k := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = la.AppendRange(dst[:0], k, k+win)
				if err != nil {
					b.Fatal(err)
				}
				k = (k + win) % (total - win + 1)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(win), "ns/answer")
		})
	}
}

// BenchmarkEngineAccessRange exercises the whole serving path: cache
// hit, pooled probe buffer, flat result buffer.
func BenchmarkEngineAccessRange(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	_, in := workload.TwoPath(rng, 1<<14, 1<<11, 0.3)
	e := engine.New(in, engine.Options{})
	spec := engine.Spec{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "x, y, z"}
	h, err := e.Prepare(spec)
	if err != nil {
		b.Fatal(err)
	}
	total := h.Total()
	const win = 64
	dst := make([]values.Value, 0, win*3)
	k := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, dst, err = e.AccessRange(spec, dst[:0], k, k+win)
		if err != nil {
			b.Fatal(err)
		}
		k = (k + win) % (total - win + 1)
	}
}
