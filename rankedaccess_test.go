package rankedaccess

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"rankedaccess/internal/enum"
	"rankedaccess/internal/order"
)

func exampleDB() *Instance {
	in := NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)
	return in
}

func TestFacadeDirectAccess(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	l, err := ParseLex(q, "x, y, z")
	if err != nil {
		t.Fatal(err)
	}
	da, err := NewDirectAccess(q, exampleDB(), l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if da.Total() != 5 {
		t.Fatalf("total = %d", da.Total())
	}
	a, err := da.Access(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := AnswerTuple(q, a); !reflect.DeepEqual(got, []Value{1, 5, 4}) {
		t.Fatalf("answer #3 = %v", got)
	}
	if k, err := da.Inverted(a); err != nil || k != 2 {
		t.Fatalf("inverted = %d, %v", k, err)
	}
}

func TestFacadeClassify(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	l, _ := ParseLex(q, "x, z, y")
	if v := Classify(DirectAccessLex, q, l, nil); v.Tractable {
		t.Fatal("trio order must be intractable")
	}
	if v := Classify(SelectionLex, q, l, nil); !v.Tractable {
		t.Fatal("selection must be tractable")
	}
	if v := Classify(DirectAccessSum, q, LexOrder{}, nil); v.Tractable {
		t.Fatal("2-path DA by SUM must be intractable")
	}
	if v := Classify(SelectionSum, q, LexOrder{}, nil); !v.Tractable {
		t.Fatal("2-path selection by SUM must be tractable")
	}
	fds, err := ParseFDs(q, "R: x -> y")
	if err != nil {
		t.Fatal(err)
	}
	if v := Classify(DirectAccessLex, q, l, fds); !v.Tractable {
		t.Fatal("FD must rescue the trio order")
	}
}

func TestFacadeSelect(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	l, _ := ParseLex(q, "x, z, y")
	a, err := Select(q, exampleDB(), l, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2(c): first answer under ⟨x,z,y⟩ is (x=1, z=3, y=5).
	if got := AnswerTuple(q, a); !reflect.DeepEqual(got, []Value{1, 5, 3}) {
		t.Fatalf("selected = %v", got)
	}
	if _, err := Select(q, exampleDB(), l, 5, nil); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("out of bound expected")
	}
}

func TestFacadeSelectBySum(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	w := IdentitySum(q.Head...)
	// Median (index 2) of weights {8, 9, 10, 12, 13} is 10.
	a, err := SelectBySum(q, exampleDB(), w, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.AnswerWeight(q, a); got != 10 {
		t.Fatalf("median weight = %v", got)
	}
}

func TestFacadeCount(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	n, err := Count(q, exampleDB())
	if err != nil || n != 5 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestFacadeSumEnumerator(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	e, err := NewSumEnumerator(q, exampleDB(), IdentitySum(q.Head...))
	if err != nil {
		t.Fatal(err)
	}
	_, weights := e.Drain(-1)
	if !reflect.DeepEqual(weights, []float64{8, 9, 10, 12, 13}) {
		t.Fatalf("weights = %v", weights)
	}
}

func TestFacadeTableSumAndSumAccess(t *testing.T) {
	q := MustParseQuery("Q(x, y) :- R(x, y), S(y, z)")
	x, _ := q.VarByName("x")
	w := TableSum(map[VarID]map[Value]float64{x: {1: 100, 6: -1}})
	sa, err := NewDirectAccessSum(q, exampleDB(), w, nil)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sa.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	if first[x] != 6 {
		t.Fatalf("lightest answer should have x=6, got %d", first[x])
	}
}

func TestFacadeRandomOrder(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	n := 0
	err := enum.RandomOrder(q, exampleDB(), rand.New(rand.NewSource(1)), func(a order.Answer) bool {
		n++
		return true
	})
	if err != nil || n != 5 {
		t.Fatalf("random order enumerated %d, %v", n, err)
	}
}
