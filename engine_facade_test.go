package rankedaccess

import "testing"

// The facade Engine is the internal engine re-exported; this exercises
// the wiring end to end: plan, cache, probe, mutate, re-plan.
func TestFacadeEngine(t *testing.T) {
	in := NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 2, 5)
	e := NewEngine(in, EngineOptions{})

	spec := EngineSpec{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "x, y, z"}
	h, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 2 {
		t.Fatalf("total = %d, want 2", h.Total())
	}
	a, err := h.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	if tup := h.HeadTuple(a); tup[0] != 1 || tup[1] != 2 || tup[2] != 5 {
		t.Fatalf("first answer = %v, want [1 2 5]", tup)
	}
	h2, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatal("facade engine did not cache")
	}
	if err := e.AddRows("S", [][]Value{{5, 9}}); err != nil {
		t.Fatal(err)
	}
	h3, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h3.Total() != 3 {
		t.Fatalf("total after mutation = %d, want 3", h3.Total())
	}
}

// TestFacadeEngineSharded: sharded specs flow through the facade and
// return the same answers as unsharded execution.
func TestFacadeEngineSharded(t *testing.T) {
	in := NewInstance()
	for i := int64(0); i < 64; i++ {
		in.AddRow("R", i%13, i%7)
		in.AddRow("S", i%7, i%11)
	}
	e := NewEngine(in, EngineOptions{})
	base := EngineSpec{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "y desc, x, z"}
	single, err := e.Prepare(base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 4
	h, err := e.Prepare(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if h.Plan.Shards != 4 {
		t.Fatalf("plan = %+v, want 4 shards", h.Plan)
	}
	if h.Total() != single.Total() {
		t.Fatalf("totals differ: %d vs %d", h.Total(), single.Total())
	}
	var want, got []Value
	for k := int64(0); k < h.Total(); k++ {
		want, _ = single.AppendTuple(want[:0], k)
		got, err = h.AppendTuple(got[:0], k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("k=%d: %v vs %v", k, got, want)
			}
		}
	}
}
