package rankedaccess

import (
	"errors"
	"testing"
)

func TestNewDirectAccessAnyTractable(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	l, _ := ParseLex(q, "x, y, z")
	acc, tractable, err := NewDirectAccessAny(q, exampleDB(), l, nil)
	if err != nil || !tractable {
		t.Fatalf("tractable path: %v %v", tractable, err)
	}
	if acc.Total() != 5 {
		t.Fatalf("total = %d", acc.Total())
	}
}

func TestNewDirectAccessAnyFallback(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	l, _ := ParseLex(q, "x, z, y") // disruptive trio
	acc, tractable, err := NewDirectAccessAny(q, exampleDB(), l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tractable {
		t.Fatal("trio order must take the fallback path")
	}
	if acc.Total() != 5 {
		t.Fatalf("fallback total = %d", acc.Total())
	}
	// Figure 2(c) first answer: (x=1, z=3, y=5).
	a, err := acc.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	if tuple := AnswerTuple(q, a); tuple[0] != 1 || tuple[1] != 5 || tuple[2] != 3 {
		t.Fatalf("fallback first answer = %v", tuple)
	}
	if _, err := acc.Access(99); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("out of bound expected")
	}
}

func TestNewDirectAccessAnyDataError(t *testing.T) {
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	l, _ := ParseLex(q, "x, y, z")
	in := NewInstance()
	in.AddRow("R", 1, 2, 3) // wrong arity
	in.AddRow("S", 1, 2)
	if _, _, err := NewDirectAccessAny(q, in, l, nil); err == nil {
		t.Fatal("arity mismatch must surface as an error, not a fallback")
	}
}

func TestFacadeFDVariants(t *testing.T) {
	q := MustParseQuery("Q(x, z) :- R(x, y), S(y, z)")
	fds, err := ParseFDs(q, "S: y -> z")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 2, 7)
	in.AddRow("S", 5, 30)
	in.AddRow("S", 7, 10)
	l, _ := ParseLex(q, "x, z")

	da, err := NewDirectAccess(q, in, l, fds)
	if err != nil {
		t.Fatal(err)
	}
	if da.Total() != 2 {
		t.Fatalf("total = %d", da.Total())
	}
	w := IdentitySum(q.Head...)
	sa, err := NewDirectAccessSum(q, in, w, fds)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Total() != 2 {
		t.Fatalf("sum total = %d", sa.Total())
	}
	if a, err := Select(q, in, l, 0, fds); err != nil || a == nil {
		t.Fatalf("FD select: %v", err)
	}
	if a, err := SelectBySum(q, in, w, 1, fds); err != nil || a == nil {
		t.Fatalf("FD sum select: %v", err)
	}
}

func TestParseFDsError(t *testing.T) {
	q := MustParseQuery("Q(x, z) :- R(x, y), S(y, z)")
	if _, err := ParseFDs(q, "T: a -> b"); err == nil {
		t.Fatal("bad FD must error")
	}
}

func TestCountNonFreeConnex(t *testing.T) {
	q := MustParseQuery("Q(x, z) :- R(x, y), S(y, z)")
	if _, err := Count(q, exampleDB()); err == nil {
		t.Fatal("count of non-free-connex query must error (linear-time counting is impossible)")
	}
}
