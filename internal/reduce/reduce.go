// Package reduce implements the query/instance transformations the
// paper's algorithms are built on:
//
//   - the folklore reduction of a free-connex CQ with projections to a
//     full acyclic CQ over a linear-time-computable instance
//     (Proposition 2.3), realized as a free-restricted GYO elimination;
//   - the Yannakakis full semijoin reduction over a join tree;
//   - the maximal-contraction transformer of Lemma 7.7 (absorbed atoms
//     and absorbed variables) with answer reconstruction, used by SUM
//     selection.
package reduce

import (
	"errors"
	"fmt"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/hypergraph"
	"rankedaccess/internal/par"
	"rankedaccess/internal/values"
)

// ErrNotFreeConnex reports that the free-restricted elimination got stuck:
// the query is not free-connex (or cyclic), so Proposition 2.3 does not
// apply.
var ErrNotFreeConnex = errors.New("reduce: query is not free-connex")

// Node is one relation of a reduced full CQ: a set of variables (column
// order in Vars) with its materialized relation.
type Node struct {
	Vars []cq.VarID
	Rel  *database.Relation
}

// VarSet returns the node's variables as a bitset.
func (n *Node) VarSet() hypergraph.VSet {
	var s hypergraph.VSet
	for _, v := range n.Vars {
		s |= hypergraph.Bit(int(v))
	}
	return s
}

// Col returns the column position of v in the node, or -1.
func (n *Node) Col(v cq.VarID) int {
	for i, u := range n.Vars {
		if u == v {
			return i
		}
	}
	return -1
}

// Full is a full acyclic CQ over materialized node relations, sharing
// variable ids with the query it was derived from.
type Full struct {
	// Origin is the query the reduction started from.
	Origin *cq.Query
	// Nodes are the atoms of the full CQ. Their variable union is exactly
	// free(Origin), and the node hypergraph is acyclic.
	Nodes []*Node
}

// Hypergraph returns the node hypergraph.
func (f *Full) Hypergraph() hypergraph.Hypergraph {
	edges := make([]hypergraph.VSet, len(f.Nodes))
	for i, n := range f.Nodes {
		edges[i] = n.VarSet()
	}
	return hypergraph.New(edges)
}

// FreeVars returns the free variables (= all variables of the full CQ).
func (f *Full) FreeVars() []cq.VarID { return f.Origin.Head }

// atomNode materializes the relation of one atom, collapsing repeated
// variable positions (R(x, x) filters equal columns and keeps one).
func atomNode(q *cq.Query, atomIdx int, in *database.Instance) (*Node, error) {
	atom := q.Atoms[atomIdx]
	rel := in.Relation(atom.Rel)
	if rel == nil {
		return nil, fmt.Errorf("reduce: instance lacks relation %s", atom.Rel)
	}
	if rel.Arity() != len(atom.Vars) {
		return nil, fmt.Errorf("reduce: relation %s has arity %d, atom wants %d",
			atom.Rel, rel.Arity(), len(atom.Vars))
	}
	// First-occurrence column per variable; filter rows where repeated
	// positions disagree.
	firstCol := map[cq.VarID]int{}
	var vars []cq.VarID
	var cols []int
	repeated := false
	for pos, v := range atom.Vars {
		if _, ok := firstCol[v]; ok {
			repeated = true
			continue
		}
		firstCol[v] = pos
		vars = append(vars, v)
		cols = append(cols, pos)
	}
	work := rel
	if repeated {
		work = rel.Filter(func(t []values.Value) bool {
			for pos, v := range atom.Vars {
				if t[firstCol[v]] != t[pos] {
					return false
				}
			}
			return true
		})
	}
	return &Node{Vars: vars, Rel: work.Project(cols).Dedup()}, nil
}

// FreeReduce reduces (q, in) to an equivalent full acyclic CQ over
// free(q) (Proposition 2.3). It repeatedly (a) absorbs a node whose
// variables are contained in another node's by semijoin-filtering the
// absorber, and (b) projects away an existential variable occurring in
// exactly one node. The reduction succeeds exactly when q is free-connex;
// otherwise ErrNotFreeConnex is returned.
//
// The answers of the result (the join of its nodes projected on nothing —
// it is full) are exactly q(in), as VarID-indexed assignments.
func FreeReduce(q *cq.Query, in *database.Instance) (*Full, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	free := hypergraph.VSet(q.Free())
	// Per-atom materialization (project, dedup, repeated-position filter)
	// is independent across atoms; fan it out over bounded workers.
	nodes := make([]*Node, len(q.Atoms))
	if err := par.DoErr(len(q.Atoms), func(i int) error {
		n, err := atomNode(q, i, in)
		if err != nil {
			return err
		}
		nodes[i] = n
		return nil
	}); err != nil {
		return nil, err
	}

	for changed := true; changed; {
		changed = false
		// (a) absorb contained nodes.
		for i := 0; i < len(nodes); i++ {
			for j := 0; j < len(nodes); j++ {
				if i == j {
					continue
				}
				vi, vj := nodes[i].VarSet(), nodes[j].VarSet()
				if !hypergraph.Subset(vi, vj) {
					continue
				}
				// Filter j by i on i's variables, then drop i.
				iCols := make([]int, len(nodes[i].Vars))
				jCols := make([]int, len(nodes[i].Vars))
				for k, v := range nodes[i].Vars {
					iCols[k] = k
					jCols[k] = nodes[j].Col(v)
				}
				nodes[j].Rel = nodes[j].Rel.Semijoin(jCols, nodes[i].Rel, iCols)
				nodes = append(nodes[:i], nodes[i+1:]...)
				changed = true
				i--
				break
			}
		}
		// (b) project away isolated existential variables.
		count := map[cq.VarID]int{}
		where := map[cq.VarID]int{}
		for idx, n := range nodes {
			for _, v := range n.Vars {
				count[v]++
				where[v] = idx
			}
		}
		for v, c := range count {
			if c != 1 || free&hypergraph.Bit(int(v)) != 0 {
				continue
			}
			n := nodes[where[v]]
			keepCols := make([]int, 0, len(n.Vars)-1)
			keepVars := make([]cq.VarID, 0, len(n.Vars)-1)
			for col, u := range n.Vars {
				if u != v {
					keepCols = append(keepCols, col)
					keepVars = append(keepVars, u)
				}
			}
			n.Rel = n.Rel.Project(keepCols).Dedup()
			n.Vars = keepVars
			changed = true
		}
	}

	full := &Full{Origin: q, Nodes: nodes}
	// Success criteria: only free variables remain and the remainder is
	// acyclic (together: q is free-connex).
	remaining := full.Hypergraph()
	if remaining.Vertices()&^free != 0 {
		return nil, ErrNotFreeConnex
	}
	if !remaining.Acyclic() {
		return nil, ErrNotFreeConnex
	}
	// Not every free variable necessarily survives in a node when the
	// head repeats... it must: free variables are never projected away
	// and absorbing preserves the union. Guard anyway.
	if remaining.Vertices() != free {
		return nil, fmt.Errorf("reduce: internal: lost free variables")
	}
	return full, nil
}

// AsQueryInstance renders the full CQ as an ordinary (query, instance)
// pair with synthetic relation names, for use by generic evaluators.
func (f *Full) AsQueryInstance() (*cq.Query, *database.Instance) {
	q := f.Origin.Clone()
	q.Atoms = nil
	in := database.NewInstance()
	for i, n := range f.Nodes {
		name := fmt.Sprintf("node_%d", i)
		names := make([]string, len(n.Vars))
		for k, v := range n.Vars {
			names[k] = q.VarName(v)
		}
		q.AddAtom(name, names...)
		in.SetRelation(name, n.Rel)
	}
	return q, in
}

// Tree is a rooted join tree over the nodes of a Full query.
type Tree struct {
	Full     *Full
	Parent   []int   // parent node index, -1 for root
	Children [][]int // child lists
	Root     int
}

// BuildTree computes a join tree of the full CQ's nodes via GYO. The
// caller may re-root it with Reroot.
func BuildTree(f *Full) (*Tree, error) {
	jt, ok := f.Hypergraph().GYO()
	if !ok {
		return nil, fmt.Errorf("reduce: node hypergraph is cyclic")
	}
	t := &Tree{Full: f, Parent: jt.Parent, Children: jt.Children(), Root: jt.Root()}
	return t, nil
}

// Reroot re-parents the tree at the given node.
func (t *Tree) Reroot(newRoot int) {
	if newRoot == t.Root {
		return
	}
	// Reverse parent pointers along the path from newRoot to the old root.
	path := []int{newRoot}
	for p := t.Parent[newRoot]; p != -1; p = t.Parent[p] {
		path = append(path, p)
	}
	for i := len(path) - 1; i > 0; i-- {
		t.Parent[path[i]] = path[i-1]
	}
	t.Parent[newRoot] = -1
	t.Root = newRoot
	t.Children = make([][]int, len(t.Parent))
	for i, p := range t.Parent {
		if p >= 0 {
			t.Children[p] = append(t.Children[p], i)
		}
	}
}

// SharedCols returns the aligned column lists of the variables shared
// between nodes a and b.
func SharedCols(a, b *Node) (aCols, bCols []int) {
	for i, v := range a.Vars {
		if j := b.Col(v); j >= 0 {
			aCols = append(aCols, i)
			bCols = append(bCols, j)
		}
	}
	return
}

// Yannakakis performs the full semijoin reduction over the tree: a
// bottom-up pass (parent filtered by each child) followed by a top-down
// pass (child filtered by parent). Afterwards every tuple of every node
// participates in at least one answer.
func (t *Tree) Yannakakis() {
	nodes := t.Full.Nodes
	// Bottom-up: process children before parents (post-order).
	var post []int
	var walk func(int)
	walk = func(u int) {
		for _, c := range t.Children[u] {
			walk(c)
		}
		post = append(post, u)
	}
	walk(t.Root)
	for _, u := range post {
		for _, c := range t.Children[u] {
			uCols, cCols := SharedCols(nodes[u], nodes[c])
			nodes[u].Rel = nodes[u].Rel.Semijoin(uCols, nodes[c].Rel, cCols)
		}
	}
	// Top-down: pre-order, child filtered by parent.
	for i := len(post) - 1; i >= 0; i-- {
		u := post[i]
		for _, c := range t.Children[u] {
			cCols, uCols := SharedCols(nodes[c], nodes[u])
			nodes[c].Rel = nodes[c].Rel.Semijoin(cCols, nodes[u].Rel, uCols)
		}
	}
}
