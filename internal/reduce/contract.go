package reduce

import (
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// Contraction is the result of maximally contracting a full CQ
// (Definition 7.5, executed on data per Lemma 7.7): absorbed atoms are
// folded into their absorbers by semijoin, and absorbed variables are
// packed into their absorbing variable's values. Unpack inverts the value
// packing on an answer.
type Contraction struct {
	// Full is the contracted full CQ. len(Full.Nodes) == mh of the input.
	Full *Full
	// Weights give per-variable weight functions for the contracted query
	// (packed variables carry the sum of their constituents' weights).
	Weights order.Sum

	packs []packStep
}

type packStep struct {
	u, v   cq.VarID // v was absorbed into u
	packer *values.Packer
}

// Contract maximally contracts f under the SUM order w. The returned
// Contraction's nodes join to the same answers as f's (after Unpack).
func Contract(f *Full, w order.Sum) *Contraction {
	// Work on copies.
	nodes := make([]*Node, len(f.Nodes))
	for i, n := range f.Nodes {
		nodes[i] = &Node{Vars: append([]cq.VarID(nil), n.Vars...), Rel: n.Rel.Clone()}
	}
	c := &Contraction{Weights: order.NewSum()}
	for v, fn := range w.W {
		c.Weights.W[v] = fn
	}
	// Base for packed codes: above any value in the data.
	var maxVal values.Value
	for _, n := range nodes {
		for i := 0; i < n.Rel.Len(); i++ {
			for _, x := range n.Rel.Tuple(i) {
				if x > maxVal {
					maxVal = x
				}
			}
		}
	}
	nextBase := maxVal + 1

	for changed := true; changed; {
		changed = false
		// Absorbed atoms: e ⊆ f' (same as FreeReduce's absorb).
		for i := 0; i < len(nodes); i++ {
			for j := 0; j < len(nodes); j++ {
				if i == j {
					continue
				}
				if !subsetVars(nodes[i], nodes[j]) {
					continue
				}
				iCols := make([]int, len(nodes[i].Vars))
				jCols := make([]int, len(nodes[i].Vars))
				for k, v := range nodes[i].Vars {
					iCols[k] = k
					jCols[k] = nodes[j].Col(v)
				}
				nodes[j].Rel = nodes[j].Rel.Semijoin(jCols, nodes[i].Rel, iCols)
				nodes = append(nodes[:i], nodes[i+1:]...)
				changed = true
				i--
				break
			}
		}
		// Absorbed variables: u, v occurring in exactly the same nodes
		// (all variables of a full CQ are free, so the freeness side
		// condition of the definition is moot).
		if u, v, ok := findAbsorbedVarPair(nodes); ok {
			packer := values.NewPacker(nextBase)
			for _, n := range nodes {
				uCol, vCol := n.Col(u), n.Col(v)
				if uCol < 0 {
					continue
				}
				packColumn(n, uCol, vCol, packer)
			}
			wu := c.Weights.W[u]
			wv := c.Weights.W[v]
			p := packer
			c.Weights.W[u] = func(x values.Value) float64 {
				a, b, ok := p.Unpack(x)
				if !ok {
					return 0
				}
				total := 0.0
				if wu != nil {
					total += wu(a)
				}
				if wv != nil {
					total += wv(b)
				}
				return total
			}
			delete(c.Weights.W, v)
			c.packs = append(c.packs, packStep{u: u, v: v, packer: packer})
			nextBase += values.Value(packer.Len()) + 1_000_000
			changed = true
		}
	}
	// Contracted head: variables still present.
	head := make([]cq.VarID, 0)
	seen := map[cq.VarID]bool{}
	for _, n := range nodes {
		for _, v := range n.Vars {
			if !seen[v] {
				seen[v] = true
				head = append(head, v)
			}
		}
	}
	q := f.Origin.Clone()
	q.Atoms = nil
	for i, n := range nodes {
		names := make([]string, len(n.Vars))
		for k, v := range n.Vars {
			names[k] = q.VarName(v)
		}
		q.AddAtom(contractRelName(i), names...)
	}
	q.Head = head
	c.Full = &Full{Origin: q, Nodes: nodes}
	return c
}

func contractRelName(i int) string { return "contracted_" + string(rune('A'+i)) }

func subsetVars(a, b *Node) bool {
	for _, v := range a.Vars {
		if b.Col(v) < 0 {
			return false
		}
	}
	return true
}

// findAbsorbedVarPair returns (u, v) such that u and v occur in exactly
// the same nodes; v will be absorbed into u.
func findAbsorbedVarPair(nodes []*Node) (u, v cq.VarID, ok bool) {
	occ := map[cq.VarID]uint64{}
	for idx, n := range nodes {
		for _, x := range n.Vars {
			occ[x] |= 1 << uint(idx)
		}
	}
	vars := make([]cq.VarID, 0, len(occ))
	for x := range occ {
		vars = append(vars, x)
	}
	for i := 0; i < len(vars); i++ {
		for j := 0; j < len(vars); j++ {
			if i == j {
				continue
			}
			if occ[vars[i]] == occ[vars[j]] && vars[i] < vars[j] {
				return vars[i], vars[j], true
			}
		}
	}
	return 0, 0, false
}

// packColumn replaces column uCol's value by pack(u, v) and removes
// column vCol.
func packColumn(n *Node, uCol, vCol int, p *values.Packer) {
	if vCol < 0 {
		panic("reduce: absorbed variable missing from a shared node")
	}
	arity := len(n.Vars)
	keep := make([]int, 0, arity-1)
	for c := 0; c < arity; c++ {
		if c != vCol {
			keep = append(keep, c)
		}
	}
	// Build the packed relation.
	packed := database.NewRelation(arity - 1)
	rowBuf := make([]values.Value, arity-1)
	for i := 0; i < n.Rel.Len(); i++ {
		row := n.Rel.Tuple(i)
		for k, c := range keep {
			if c == uCol {
				rowBuf[k] = p.Pack(row[uCol], row[vCol])
			} else {
				rowBuf[k] = row[c]
			}
		}
		packed.Append(rowBuf...)
	}
	newVars := make([]cq.VarID, 0, arity-1)
	for _, c := range keep {
		newVars = append(newVars, n.Vars[c])
	}
	n.Vars = newVars
	n.Rel = packed.Dedup()
}

// Unpack maps an answer of the contracted query back to an answer of the
// original full query (VarID-indexed), undoing value packing in reverse
// order.
func (c *Contraction) Unpack(a order.Answer) order.Answer {
	out := append(order.Answer(nil), a...)
	for i := len(c.packs) - 1; i >= 0; i-- {
		st := c.packs[i]
		if av, bv, ok := st.packer.Unpack(out[st.u]); ok {
			out[st.u] = av
			out[st.v] = bv
		}
	}
	return out
}
