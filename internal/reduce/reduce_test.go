package reduce

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

func fig2() *database.Instance {
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)
	return in
}

// canonical renders answers (projected to head) as a sorted string list.
func canonical(q *cq.Query, answers []order.Answer) []string {
	out := make([]string, 0, len(answers))
	for _, a := range answers {
		s := ""
		for _, v := range q.Head {
			s += string(rune('0'))
			s += "|"
			s += itoa(a[v])
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func itoa(v values.Value) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func answersEqual(t *testing.T, q *cq.Query, got, want []order.Answer) {
	t.Helper()
	g, w := canonical(q, got), canonical(q, want)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("answer sets differ:\n got %v\nwant %v", g, w)
	}
}

func TestFreeReduceFullQueryIsIdentityLike(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	full, err := FreeReduce(q, fig2())
	if err != nil {
		t.Fatal(err)
	}
	q2, in2 := full.AsQueryInstance()
	answersEqual(t, q, baseline.AllAnswers(q2, in2), baseline.AllAnswers(q, fig2()))
}

func TestFreeReduceProjection(t *testing.T) {
	// Q(x, y) :- R(x, y), S(y, z): free-connex; z projected away.
	q := cq.MustParse("Q(x, y) :- R(x, y), S(y, z)")
	full, err := FreeReduce(q, fig2())
	if err != nil {
		t.Fatal(err)
	}
	// The reduction must not mention z.
	z, _ := q.VarByName("z")
	for _, n := range full.Nodes {
		if n.Col(z) >= 0 {
			t.Fatal("existential variable survived the reduction")
		}
	}
	q2, in2 := full.AsQueryInstance()
	answersEqual(t, q, baseline.AllAnswers(q2, in2), baseline.AllAnswers(q, fig2()))
}

func TestFreeReduceNonFreeConnex(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	if _, err := FreeReduce(q, fig2()); !errors.Is(err, ErrNotFreeConnex) {
		t.Fatalf("expected ErrNotFreeConnex, got %v", err)
	}
}

func TestFreeReduceCyclic(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("S", 2, 3)
	in.AddRow("T", 3, 1)
	if _, err := FreeReduce(q, in); !errors.Is(err, ErrNotFreeConnex) {
		t.Fatalf("expected ErrNotFreeConnex for cyclic query, got %v", err)
	}
}

func TestFreeReduceBoolean(t *testing.T) {
	q := cq.MustParse("Q() :- R(x, y), S(y, z)")
	full, err := FreeReduce(q, fig2())
	if err != nil {
		t.Fatal(err)
	}
	q2, in2 := full.AsQueryInstance()
	if got := baseline.Count(q2, in2); got != 1 {
		t.Fatalf("Boolean true query must have 1 answer, got %d", got)
	}
	// Empty S: no answers.
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.SetRelation("S", database.NewRelation(2))
	full2, err := FreeReduce(q, in)
	if err != nil {
		t.Fatal(err)
	}
	q3, in3 := full2.AsQueryInstance()
	if got := baseline.Count(q3, in3); got != 0 {
		t.Fatalf("Boolean false query must have 0 answers, got %d", got)
	}
}

func TestFreeReduceRepeatedVariable(t *testing.T) {
	q := cq.MustParse("Q(x, y) :- R(x, x, y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 1, 7)
	in.AddRow("R", 1, 2, 8)
	full, err := FreeReduce(q, in)
	if err != nil {
		t.Fatal(err)
	}
	q2, in2 := full.AsQueryInstance()
	answersEqual(t, q, baseline.AllAnswers(q2, in2), baseline.AllAnswers(q, in))
}

func TestFreeReduceSelfJoin(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), R(y, z)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("R", 2, 3)
	in.AddRow("R", 2, 4)
	full, err := FreeReduce(q, in)
	if err != nil {
		t.Fatal(err)
	}
	q2, in2 := full.AsQueryInstance()
	answersEqual(t, q, baseline.AllAnswers(q2, in2), baseline.AllAnswers(q, in))
}

// Property test: on random free-connex queries and small random
// instances, the reduction preserves the answer set exactly.
func TestFreeReducePreservesAnswersRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	catalog := []string{
		"Q(x, y, z) :- R(x, y), S(y, z)",
		"Q(x, y) :- R(x, y), S(y, z)",
		"Q(y) :- R(x, y), S(y, z)",
		"Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)",
		"Q(x, y, z) :- R(x, y), S(y, z), T(z, u)",
		"Q(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)",
		"Q(v1, v2, v3, v4, v5) :- R1(v1, v3), R2(v3, v4), R3(v2, v5)",
		"Q(v1, v2, v3, v4, v5) :- R1(v1, v2, v4), R2(v2, v3, v5)",
		"Q(x, y) :- R(x), S(y)",
		"Q(a, b) :- R(a, b), S(b), T(b, c), U(c, d)",
	}
	for _, src := range catalog {
		q := cq.MustParse(src)
		for trial := 0; trial < 30; trial++ {
			in := database.NewInstance()
			for _, a := range q.Atoms {
				if in.Relation(a.Rel) != nil {
					continue
				}
				rows := rng.Intn(8)
				for r := 0; r < rows; r++ {
					row := make([]values.Value, len(a.Vars))
					for c := range row {
						row[c] = values.Value(rng.Intn(4))
					}
					in.AddRow(a.Rel, row...)
				}
				if in.Relation(a.Rel) == nil {
					in.SetRelation(a.Rel, database.NewRelation(len(a.Vars)))
				}
			}
			full, err := FreeReduce(q, in)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			q2, in2 := full.AsQueryInstance()
			answersEqual(t, q, baseline.AllAnswers(q2, in2), baseline.AllAnswers(q, in))
		}
	}
}

func TestYannakakisRemovesDangling(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	in := fig2()
	in.AddRow("R", 9, 99) // dangling
	in.AddRow("S", 77, 7) // dangling
	full, err := FreeReduce(q, in)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(full)
	if err != nil {
		t.Fatal(err)
	}
	tree.Yannakakis()
	for _, n := range full.Nodes {
		for i := 0; i < n.Rel.Len(); i++ {
			tu := n.Rel.Tuple(i)
			if tu[0] == 9 || tu[0] == 77 {
				t.Fatalf("dangling tuple survived: %v", tu)
			}
		}
	}
	q2, in2 := full.AsQueryInstance()
	answersEqual(t, q, baseline.AllAnswers(q2, in2), baseline.AllAnswers(q, in))
}

func TestReroot(t *testing.T) {
	q := cq.MustParse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("S", 2, 3)
	in.AddRow("T", 3, 4)
	full, err := FreeReduce(q, in)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(full)
	if err != nil {
		t.Fatal(err)
	}
	for newRoot := range full.Nodes {
		tree.Reroot(newRoot)
		if tree.Root != newRoot {
			t.Fatalf("root = %d, want %d", tree.Root, newRoot)
		}
		roots := 0
		for i, p := range tree.Parent {
			if p == -1 {
				roots++
			} else if p == i {
				t.Fatal("self-parent")
			}
		}
		if roots != 1 {
			t.Fatalf("%d roots after reroot", roots)
		}
		// Still a connected tree: every node reaches the root.
		for i := range tree.Parent {
			seen := map[int]bool{}
			for u := i; u != tree.Root; u = tree.Parent[u] {
				if seen[u] {
					t.Fatal("cycle in rerooted tree")
				}
				seen[u] = true
			}
		}
	}
}

// Contraction of Example 7.6: Q(x,y,z) :- R(x,u,y), S(y), T(y,z), U(x,u,y)
// contracts to two atoms (mh = 2), with u absorbed into x.
func TestExample76Contraction(t *testing.T) {
	q := cq.MustParse("Q(x, u, y, z) :- R(x, u, y), S(y), T(y, z), U(x, u, y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 10, 2)
	in.AddRow("R", 3, 30, 2)
	in.AddRow("S", 2)
	in.AddRow("T", 2, 7)
	in.AddRow("T", 2, 8)
	in.AddRow("U", 1, 10, 2)
	in.AddRow("U", 3, 30, 2)
	full, err := FreeReduce(q, in)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := q.VarByName("x")
	u, _ := q.VarByName("u")
	y, _ := q.VarByName("y")
	z, _ := q.VarByName("z")
	w := order.IdentitySum(x, u, y, z)
	c := Contract(full, w)
	if got := len(c.Full.Nodes); got != 2 {
		t.Fatalf("contracted to %d atoms, want 2", got)
	}
	// Answers of the contraction, unpacked, must equal the original's.
	q2, in2 := c.Full.AsQueryInstance()
	raw := baseline.AllAnswers(q2, in2)
	unpacked := make([]order.Answer, len(raw))
	for i, a := range raw {
		unpacked[i] = c.Unpack(a)
	}
	answersEqual(t, q, unpacked, baseline.AllAnswers(q, in))
	// Weights must be preserved: packed (x,u) carries w_x + w_u.
	for _, a := range raw {
		up := c.Unpack(a)
		wPacked := 0.0
		for _, v := range c.Full.Origin.Head {
			wPacked += c.Weights.VarWeight(v, a[v])
		}
		if want := w.AnswerWeight(q, up); wPacked != want {
			t.Fatalf("packed weight %v, want %v", wPacked, want)
		}
	}
}

func TestContractSingleAtom(t *testing.T) {
	// Everything absorbed into one atom: mh = 1.
	q := cq.MustParse("Q(x, y) :- R(x, y), S(x), T(y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("R", 3, 4)
	in.AddRow("S", 1)
	in.AddRow("T", 2)
	in.AddRow("T", 4)
	full, err := FreeReduce(q, in)
	if err != nil {
		t.Fatal(err)
	}
	c := Contract(full, order.NewSum())
	if len(c.Full.Nodes) != 1 {
		t.Fatalf("contracted to %d atoms, want 1", len(c.Full.Nodes))
	}
	q2, in2 := c.Full.AsQueryInstance()
	raw := baseline.AllAnswers(q2, in2)
	unpacked := make([]order.Answer, len(raw))
	for i, a := range raw {
		unpacked[i] = c.Unpack(a)
	}
	answersEqual(t, q, unpacked, baseline.AllAnswers(q, in))
}
