// Package baseline provides a naive conjunctive-query evaluator: full
// materialization of the answer set by backtracking join, plus sorting.
//
// It serves two purposes: (1) as the correctness oracle for every
// algorithm in this repository (property tests compare against it on
// small instances), and (2) as the materialize-then-sort baseline the
// benchmarks compare direct access against — for intractable (query,
// order) pairs it is essentially the best one can do, and its cost scales
// with |Q(I)| rather than with n.
package baseline

import (
	"sort"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/tupleidx"
	"rankedaccess/internal/values"
)

// AllAnswers materializes Q(I): the set of assignments to the free
// variables (VarID-indexed, deduplicated). Works for any CQ, cyclic or
// not, with self-joins and repeated variables.
func AllAnswers(q *cq.Query, in *database.Instance) []order.Answer {
	nv := q.NumVars()
	assignment := make([]values.Value, nv)
	assigned := make([]bool, nv)

	// Order atoms so that each one (after the first) shares variables
	// with previously joined atoms when possible: cheap heuristic that
	// keeps the backtracking join from degenerating into a blind product.
	atomOrder := planAtomOrder(q)

	seen := tupleidx.New(len(q.Head), 0)
	headBuf := make([]values.Value, len(q.Head))
	var answers []order.Answer

	var rec func(step int)
	rec = func(step int) {
		if step == len(atomOrder) {
			for i, v := range q.Head {
				headBuf[i] = assignment[v]
			}
			if _, added := seen.Insert(headBuf); !added {
				return
			}
			ans := make(order.Answer, nv)
			for _, v := range q.Head {
				ans[v] = assignment[v]
			}
			answers = append(answers, ans)
			return
		}
		atom := q.Atoms[atomOrder[step]]
		rel := in.Relation(atom.Rel)
		if rel == nil {
			return
		}
		n := rel.Len()
	tuples:
		for i := 0; i < n; i++ {
			t := rel.Tuple(i)
			var newly []cq.VarID
			for pos, v := range atom.Vars {
				val := values.Value(0)
				if rel.Arity() > 0 {
					val = t[pos]
				}
				if assigned[v] {
					if assignment[v] != val {
						for _, u := range newly {
							assigned[u] = false
						}
						continue tuples
					}
				} else {
					assigned[v] = true
					assignment[v] = val
					newly = append(newly, v)
				}
			}
			rec(step + 1)
			for _, u := range newly {
				assigned[u] = false
			}
		}
	}
	rec(0)
	return answers
}

func planAtomOrder(q *cq.Query) []int {
	n := len(q.Atoms)
	used := make([]bool, n)
	var orderOut []int
	var bound uint64
	for len(orderOut) < n {
		best := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if best == -1 || (q.AtomVars(i)&bound != 0 && q.AtomVars(best)&bound == 0) {
				best = i
			}
		}
		used[best] = true
		orderOut = append(orderOut, best)
		bound |= q.AtomVars(best)
	}
	return orderOut
}

// Count returns |Q(I)|.
func Count(q *cq.Query, in *database.Instance) int {
	return len(AllAnswers(q, in))
}

// SortedByLex materializes Q(I) sorted by the given lexicographic order;
// components missing from the order are tie-broken by ascending head
// order so the result is deterministic.
func SortedByLex(q *cq.Query, in *database.Instance, l order.Lex) []order.Answer {
	answers := AllAnswers(q, in)
	sort.Slice(answers, func(i, j int) bool {
		if c := l.Compare(answers[i], answers[j]); c != 0 {
			return c < 0
		}
		return headLess(q, answers[i], answers[j])
	})
	return answers
}

// SortedBySum materializes Q(I) sorted by total weight, ties broken by
// ascending head order.
func SortedBySum(q *cq.Query, in *database.Instance, w order.Sum) []order.Answer {
	answers := AllAnswers(q, in)
	weights := make([]float64, len(answers))
	for i, a := range answers {
		weights[i] = w.AnswerWeight(q, a)
	}
	idx := make([]int, len(answers))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if weights[idx[i]] != weights[idx[j]] {
			return weights[idx[i]] < weights[idx[j]]
		}
		return headLess(q, answers[idx[i]], answers[idx[j]])
	})
	out := make([]order.Answer, len(answers))
	for i, k := range idx {
		out[i] = answers[k]
	}
	return out
}

func headLess(q *cq.Query, a, b order.Answer) bool {
	for _, v := range q.Head {
		if a[v] != b[v] {
			return a[v] < b[v]
		}
	}
	return false
}
