package baseline

import (
	"reflect"
	"testing"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// fig2 builds the example database of Figure 2(a).
func fig2() *database.Instance {
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)
	return in
}

func proj(q *cq.Query, a order.Answer) []values.Value {
	out := make([]values.Value, len(q.Head))
	for i, v := range q.Head {
		out[i] = a[v]
	}
	return out
}

func TestFig2AllAnswers(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	got := AllAnswers(q, fig2())
	if len(got) != 5 {
		t.Fatalf("|Q(I)| = %d, want 5", len(got))
	}
}

// Figure 2(b): LEX ⟨x,y,z⟩ ordering of the example answers.
func TestFig2LexXYZ(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	l, _ := order.ParseLex(q, "x, y, z")
	got := SortedByLex(q, fig2(), l)
	want := [][]values.Value{
		{1, 2, 5}, {1, 5, 3}, {1, 5, 4}, {1, 5, 6}, {6, 2, 5},
	}
	for i, a := range got {
		if !reflect.DeepEqual(proj(q, a), want[i]) {
			t.Fatalf("answer #%d = %v, want %v", i+1, proj(q, a), want[i])
		}
	}
}

// Figure 2(c): LEX ⟨x,z,y⟩ ordering.
func TestFig2LexXZY(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	l, _ := order.ParseLex(q, "x, z, y")
	got := SortedByLex(q, fig2(), l)
	// The paper lists (x, z, y) triples; translate to (x, y, z).
	want := [][]values.Value{
		{1, 5, 3}, {1, 5, 4}, {1, 2, 5}, {1, 5, 6}, {6, 2, 5},
	}
	for i, a := range got {
		if !reflect.DeepEqual(proj(q, a), want[i]) {
			t.Fatalf("answer #%d = %v, want %v", i+1, proj(q, a), want[i])
		}
	}
}

// Figure 2(d): SUM ordering with identity weights. (The arXiv text
// extraction of the figure is garbled — it lists (1,2,6), which is not an
// answer of the Figure 2(a) database; the correct sums of the five
// answers are 8, 9, 10, 12, 13.)
func TestFig2Sum(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	z, _ := q.VarByName("z")
	w := order.IdentitySum(x, y, z)
	got := SortedBySum(q, fig2(), w)
	wantWeights := []float64{8, 9, 10, 12, 13}
	for i, a := range got {
		if got := w.AnswerWeight(q, a); got != wantWeights[i] {
			t.Fatalf("weight #%d = %v, want %v", i+1, got, wantWeights[i])
		}
	}
	if !reflect.DeepEqual(proj(q, got[0]), []values.Value{1, 2, 5}) {
		t.Fatalf("first answer = %v", proj(q, got[0]))
	}
	if !reflect.DeepEqual(proj(q, got[4]), []values.Value{6, 2, 5}) {
		t.Fatalf("last answer = %v", proj(q, got[4]))
	}
}

func TestProjectionDedup(t *testing.T) {
	q := cq.MustParse("Q(x) :- R(x, y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	got := AllAnswers(q, in)
	if len(got) != 2 {
		t.Fatalf("projection must deduplicate: %d answers", len(got))
	}
}

func TestBooleanQuery(t *testing.T) {
	q := cq.MustParse("Q() :- R(x, y), S(y, x)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("S", 3, 4)
	if got := Count(q, in); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	in.AddRow("S", 2, 1)
	if got := Count(q, in); got != 1 {
		t.Fatalf("count = %d, want 1 (Boolean queries have at most one answer)", got)
	}
}

func TestSelfJoin(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), R(y, z)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("R", 2, 3)
	got := AllAnswers(q, in)
	if len(got) != 1 {
		t.Fatalf("self-join answers = %d, want 1 (1-2-3)", len(got))
	}
}

func TestRepeatedVariable(t *testing.T) {
	q := cq.MustParse("Q(x) :- R(x, x)")
	in := database.NewInstance()
	in.AddRow("R", 1, 1)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 3, 3)
	if got := Count(q, in); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestCyclicTriangleJoin(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("S", 2, 3)
	in.AddRow("T", 3, 1)
	in.AddRow("T", 3, 9)
	if got := Count(q, in); got != 1 {
		t.Fatalf("triangle count = %d, want 1", got)
	}
}

func TestMissingRelationYieldsNoAnswers(t *testing.T) {
	q := cq.MustParse("Q(x, y) :- R(x, y), S(y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	if got := Count(q, in); got != 0 {
		t.Fatalf("count = %d, want 0 for missing relation", got)
	}
}

func TestCartesianProduct(t *testing.T) {
	q := cq.MustParse("Q(x, y) :- R(x), S(y)")
	in := database.NewInstance()
	in.AddRow("R", 1)
	in.AddRow("R", 2)
	in.AddRow("S", 10)
	in.AddRow("S", 20)
	in.AddRow("S", 30)
	if got := Count(q, in); got != 6 {
		t.Fatalf("product count = %d, want 6", got)
	}
}
