package fd

import (
	"fmt"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/values"
)

// Extension is the FD-extension (Q⁺, Δ⁺) of a query with FDs
// (Definition 8.2), plus the replay log needed to build the extended
// database instance of the exact reduction (Lemma 8.5).
type Extension struct {
	// Query is Q⁺. It shares variable ids with the original query.
	Query *cq.Query
	// FDs is Δ⁺.
	FDs Set
	// NewFree lists variables that became free in Q⁺ but were existential
	// in Q (extension step 2), in the order they were promoted.
	NewFree []cq.VarID
	// PromoSrc records, aligned with NewFree, the FD whose source variable
	// determines each promoted variable.
	PromoSrc []FD
	// steps records atom-widening operations (extension step 1) in order.
	steps []extendStep
}

type extendStep struct {
	atom   int      // index into Query.Atoms
	x, y   cq.VarID // FD x → y used to widen the atom
	srcRel string   // original relation holding the (x, y) mapping
}

// Extend computes the FD-extension of q under the unary FDs fds
// (Definition 8.2): while some FD R: x → y applies to an atom S that
// contains x but not y, widen S with y and add S: x → y; while some FD
// has a free source and an existential target, promote the target to the
// head.
func Extend(q *cq.Query, fds Set) *Extension {
	ext := &Extension{Query: q.Clone(), FDs: append(Set(nil), fds...)}
	qp := ext.Query
	for changed := true; changed; {
		changed = false
		// Step 1: widen atoms.
		for _, f := range ext.FDs {
			for i := range qp.Atoms {
				av := qp.AtomVars(i)
				if av&(1<<uint(f.From)) != 0 && av&(1<<uint(f.To)) == 0 {
					qp.Atoms[i].Vars = append(qp.Atoms[i].Vars, f.To)
					ext.steps = append(ext.steps, extendStep{atom: i, x: f.From, y: f.To, srcRel: f.SrcRel})
					nf := FD{Rel: qp.Atoms[i].Rel, From: f.From, To: f.To, SrcRel: f.SrcRel}
					if !ext.FDs.contains(nf) {
						ext.FDs = append(ext.FDs, nf)
					}
					changed = true
				}
			}
		}
		// Step 2: promote implied existential variables to the head.
		free := qp.Free()
		for _, f := range ext.FDs {
			if free&(1<<uint(f.From)) != 0 && free&(1<<uint(f.To)) == 0 {
				qp.Head = append(qp.Head, f.To)
				ext.NewFree = append(ext.NewFree, f.To)
				ext.PromoSrc = append(ext.PromoSrc, f)
				free |= 1 << uint(f.To)
				changed = true
			}
		}
	}
	return ext
}

// ExtendInstance builds the instance I⁺ for Q⁺ from an instance I of the
// original query, replaying the atom-widening steps: each new column y of
// an atom is filled by looking up y from x in the original source
// relation of the FD. Tuples whose x value has no image are dropped
// (they cannot participate in any answer because the source relation
// joins on x). The FDs must hold on I; use Set.Check first.
func (e *Extension) ExtendInstance(q *cq.Query, in *database.Instance) (*database.Instance, error) {
	if !q.IsSelfJoinFree() {
		return nil, fmt.Errorf("fd: instance extension requires a self-join-free query (copy relations to fresh symbols first)")
	}
	out := database.NewInstance()
	out.Dict = in.Dict
	// Copy relations mentioned by the query (widened atoms of the same
	// relation symbol replay cumulatively below).
	for i := range e.Query.Atoms {
		rel := e.Query.Atoms[i].Rel
		if out.Relation(rel) == nil {
			src := in.Relation(rel)
			if src == nil {
				return nil, fmt.Errorf("fd: instance lacks relation %s", rel)
			}
			out.SetRelation(rel, src.Clone())
		}
	}
	for _, st := range e.steps {
		atom := e.Query.Atoms[st.atom]
		src := in.Relation(st.srcRel)
		if src == nil {
			return nil, fmt.Errorf("fd: instance lacks source relation %s", st.srcRel)
		}
		srcAtom := atomByRel(q, st.srcRel)
		if srcAtom == nil {
			return nil, fmt.Errorf("fd: query lacks source atom %s", st.srcRel)
		}
		xCol, yCol := colOf(srcAtom, st.x), colOf(srcAtom, st.y)
		if xCol < 0 || yCol < 0 {
			return nil, fmt.Errorf("fd: source %s lacks %s or %s", st.srcRel,
				q.VarName(st.x), q.VarName(st.y))
		}
		mapping := make(map[values.Value]values.Value, src.Len())
		for i := 0; i < src.Len(); i++ {
			t := src.Tuple(i)
			if prev, ok := mapping[t[xCol]]; ok && prev != t[yCol] {
				return nil, fmt.Errorf("fd: %s violates %s -> %s", st.srcRel,
					q.VarName(st.x), q.VarName(st.y))
			}
			mapping[t[xCol]] = t[yCol]
		}
		// Widen the target relation: it currently has one column per
		// variable position of the atom *before* this step. The step's y
		// was appended at position len(vars at the time); since we replay
		// steps in order, that is always the current arity.
		target := out.Relation(atom.Rel)
		// The x column position inside the (current) target relation is
		// the first occurrence of x in the atom's variable list.
		xPos := -1
		for pos, v := range atom.Vars {
			if v == st.x && pos < target.Arity() {
				xPos = pos
				break
			}
		}
		if xPos < 0 {
			return nil, fmt.Errorf("fd: internal: x column not found replaying step")
		}
		widened := database.NewRelation(target.Arity() + 1)
		rowBuf := make([]values.Value, target.Arity()+1)
		for i := 0; i < target.Len(); i++ {
			t := target.Tuple(i)
			y, ok := mapping[t[xPos]]
			if !ok {
				continue // dangling on x; cannot join with the source
			}
			copy(rowBuf, t)
			rowBuf[target.Arity()] = y
			widened.Append(rowBuf...)
		}
		out.SetRelation(atom.Rel, widened)
	}
	return out, nil
}

// AnswerExtender returns a function mapping an answer of Q (assignments
// to q's free variables, VarID-indexed) to the corresponding answer of
// Q⁺ by filling in the promoted variables from the FD source relations of
// the original instance. The bool result is false when some promoted
// value cannot be resolved, i.e. the tuple is not an answer of Q.
func (e *Extension) AnswerExtender(q *cq.Query, in *database.Instance) (func([]values.Value) ([]values.Value, bool), error) {
	type promo struct {
		from, to cq.VarID
		mapping  map[values.Value]values.Value
	}
	promos := make([]promo, 0, len(e.NewFree))
	for i, y := range e.NewFree {
		f := e.PromoSrc[i]
		src := in.Relation(f.SrcRel)
		srcAtom := atomByRel(q, f.SrcRel)
		if src == nil || srcAtom == nil {
			return nil, fmt.Errorf("fd: missing source relation %s", f.SrcRel)
		}
		xCol, yCol := colOf(srcAtom, f.From), colOf(srcAtom, f.To)
		if xCol < 0 || yCol < 0 {
			return nil, fmt.Errorf("fd: source %s lacks the FD columns", f.SrcRel)
		}
		m := make(map[values.Value]values.Value, src.Len())
		for t := 0; t < src.Len(); t++ {
			row := src.Tuple(t)
			m[row[xCol]] = row[yCol]
		}
		promos = append(promos, promo{from: f.From, to: y, mapping: m})
	}
	return func(a []values.Value) ([]values.Value, bool) {
		out := append([]values.Value(nil), a...)
		ok := true
		for _, p := range promos {
			v, found := p.mapping[out[p.from]]
			if !found {
				ok = false
				continue
			}
			out[p.to] = v
		}
		return out, ok
	}, nil
}

// ProjectAnswer maps an answer of Q⁺ back to an answer of Q (the
// bijection of the exact reduction): answers are VarID-indexed, so the
// projection just zeroes slots that are not free in Q.
func ProjectAnswer(q *cq.Query, a []values.Value) []values.Value {
	out := make([]values.Value, len(a))
	for _, v := range q.Head {
		out[v] = a[v]
	}
	return out
}
