package fd

import (
	"reflect"
	"testing"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
)

func TestParseFD(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	fds := MustParse(q, "S: y -> z")
	if len(fds) != 1 {
		t.Fatalf("parsed %d FDs", len(fds))
	}
	y, _ := q.VarByName("y")
	z, _ := q.VarByName("z")
	if fds[0].From != y || fds[0].To != z || fds[0].Rel != "S" {
		t.Fatalf("fd = %+v", fds[0])
	}
	if got := fds.Render(q); got != "S: y -> z" {
		t.Fatalf("render = %q", got)
	}
}

func TestParseFDMultiTarget(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y, z)")
	fds := MustParse(q, "R: x -> y, z")
	if len(fds) != 2 {
		t.Fatalf("parsed %d FDs", len(fds))
	}
}

func TestParseFDErrors(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	for _, bad := range []string{
		"T: x -> y",   // unknown relation
		"R: z -> x",   // z not in R
		"R: x -> z",   // z not in R
		"R: x y -> x", // non-unary left side
		"R: x -> ",    // no target
		"R x -> y",    // missing colon
		"R: x = y",    // missing arrow
	} {
		if _, err := Parse(q, bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestCheckFD(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	fds := MustParse(q, "S: y -> z")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 2, 4)
	if err := fds.Check(q, in); err != nil {
		t.Fatalf("fds should hold: %v", err)
	}
	in.AddRow("S", 5, 9) // violates y -> z at y=5
	if err := fds.Check(q, in); err == nil {
		t.Fatal("violation not detected")
	}
}

// Example 8.3: Q2P(x, z) :- R(x, y), S(y, z) with S: y → z extends to
// Q⁺(x, z) :- R(x, y, z), S(y, z) with the additional FD R: y → z.
func TestExample83Extension(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	ext := Extend(q, MustParse(q, "S: y -> z"))
	qp := ext.Query
	if got := qp.String(); got != "Q(x, z) :- R(x, y, z), S(y, z)" {
		t.Fatalf("Q+ = %q", got)
	}
	// The derived FD R: y → z must be present.
	y, _ := q.VarByName("y")
	z, _ := q.VarByName("z")
	found := false
	for _, f := range ext.FDs {
		if f.Rel == "R" && f.From == y && f.To == z {
			found = true
		}
	}
	if !found {
		t.Fatalf("derived FD missing: %s", ext.FDs.Render(qp))
	}
	if len(ext.NewFree) != 0 {
		t.Fatalf("no new free variables expected, got %v", ext.NewFree)
	}
}

// Example 8.3, triangle variant: Q△(x,y,z) :- R(x,y), S(y,z), T(z,x)
// with S: y → z extends R to R(x,y,z), making Q⁺ acyclic with an atom
// containing all variables.
func TestExample83Triangle(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	ext := Extend(q, MustParse(q, "S: y -> z"))
	if got := ext.Query.String(); got != "Q(x, y, z) :- R(x, y, z), S(y, z), T(z, x)" {
		t.Fatalf("Q+ = %q", got)
	}
}

// Example 8.19: Q(v1, v2) :- R(v1, v3), S(v3, v2) with S: v2 → v3.
// v3 becomes free (step 2 applies: v2 is free and implies v3 after R is
// widened... in fact v2 → v3 directly), and R is widened with v2.
func TestExample819Extension(t *testing.T) {
	q := cq.MustParse("Q(v1, v2) :- R(v1, v3), S(v3, v2)")
	ext := Extend(q, MustParse(q, "S: v2 -> v3"))
	qp := ext.Query
	v3, _ := q.VarByName("v3")
	if qp.Free()&(1<<uint(v3)) == 0 {
		t.Fatalf("v3 must be free in Q+: %s", qp.String())
	}
	if len(ext.NewFree) != 1 || ext.NewFree[0] != v3 {
		t.Fatalf("NewFree = %v", ext.NewFree)
	}
}

// Example 8.14: Q(v1..v4) :- R(v1,v3), S(v3,v2), T(v2,v4) with R: v1 → v3
// and L = ⟨v1,v2,v3,v4⟩ reorders to L⁺ = ⟨v1,v3,v2,v4⟩.
func TestExample814Reordering(t *testing.T) {
	q := cq.MustParse("Q(v1, v2, v3, v4) :- R(v1, v3), S(v3, v2), T(v2, v4)")
	ext := Extend(q, MustParse(q, "R: v1 -> v3"))
	l, err := order.ParseLex(q, "v1, v2, v3, v4")
	if err != nil {
		t.Fatal(err)
	}
	lp := ext.ReorderLex(l)
	got := make([]string, len(lp.Entries))
	for i, e := range lp.Entries {
		got[i] = q.VarName(e.Var)
	}
	if !reflect.DeepEqual(got, []string{"v1", "v3", "v2", "v4"}) {
		t.Fatalf("L+ = %v", got)
	}
}

// Reordering with an implied variable not present in L: it must be
// inserted right after its source.
func TestReorderingInsertsImplied(t *testing.T) {
	q := cq.MustParse("Q(v1, v2) :- R(v1, v3), S(v3, v2)")
	ext := Extend(q, MustParse(q, "S: v2 -> v3"))
	l, err := order.ParseLex(q, "v1, v2")
	if err != nil {
		t.Fatal(err)
	}
	lp := ext.ReorderLex(l)
	got := make([]string, len(lp.Entries))
	for i, e := range lp.Entries {
		got[i] = q.VarName(e.Var)
	}
	if !reflect.DeepEqual(got, []string{"v1", "v2", "v3"}) {
		t.Fatalf("L+ = %v", got)
	}
}

func TestImpliedByTransitive(t *testing.T) {
	q := cq.MustParse("Q(a, b, c) :- R(a, b), S(b, c)")
	fds := append(MustParse(q, "R: a -> b"), MustParse(q, "S: b -> c")...)
	a, _ := q.VarByName("a")
	c, _ := q.VarByName("c")
	implied := fds.ImpliedBy(q.NumVars())
	if implied[a]&(1<<uint(c)) == 0 {
		t.Fatal("a must transitively imply c")
	}
	if implied[c] != 0 {
		t.Fatal("c implies nothing")
	}
}

// Instance extension for Example 8.3: answers of Q⁺ over I⁺ must match
// answers of Q over I (checked structurally here; full join equivalence
// is covered by integration tests elsewhere).
func TestExtendInstance(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	fds := MustParse(q, "S: y -> z")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 2, 5)
	in.AddRow("R", 3, 7) // dangling: y=7 has no S tuple
	in.AddRow("S", 5, 30)
	ext := Extend(q, fds)
	ip, err := ext.ExtendInstance(q, in)
	if err != nil {
		t.Fatal(err)
	}
	rp := ip.Relation("R")
	if rp.Arity() != 3 {
		t.Fatalf("R+ arity = %d", rp.Arity())
	}
	if rp.Len() != 2 {
		t.Fatalf("dangling R tuple must drop, len = %d", rp.Len())
	}
	for i := 0; i < rp.Len(); i++ {
		if tpl := rp.Tuple(i); tpl[1] != 5 || tpl[2] != 30 {
			t.Fatalf("widened tuple = %v", tpl)
		}
	}
	if ip.Relation("S").Len() != 1 {
		t.Fatal("S must be unchanged")
	}
}

func TestExtendInstanceViolation(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	fds := MustParse(q, "S: y -> z")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("S", 5, 30)
	in.AddRow("S", 5, 31)
	ext := Extend(q, fds)
	if _, err := ext.ExtendInstance(q, in); err == nil {
		t.Fatal("violating instance must be rejected")
	}
}

func TestExtendInstanceSelfJoinRejected(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), R(y, z)")
	fds := Set{}
	ext := Extend(q, fds)
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	if _, err := ext.ExtendInstance(q, in); err == nil {
		t.Fatal("self-join must be rejected by instance extension")
	}
}

func TestProjectAnswer(t *testing.T) {
	q := cq.MustParse("Q(v1, v2) :- R(v1, v3), S(v3, v2)")
	v1, _ := q.VarByName("v1")
	v2, _ := q.VarByName("v2")
	v3, _ := q.VarByName("v3")
	a := make([]int64, q.NumVars())
	a[v1], a[v2], a[v3] = 10, 20, 30
	p := ProjectAnswer(q, a)
	if p[v1] != 10 || p[v2] != 20 || p[v3] != 0 {
		t.Fatalf("projected = %v", p)
	}
}
