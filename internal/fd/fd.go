// Package fd implements unary functional dependencies and the paper's §8
// machinery: FD-extensions of queries (Definition 8.2), the FD-reordered
// lexicographic order (Definition 8.13), and the corresponding instance
// transformation (the weight/lex-preserving exact reduction of
// Lemma 8.5 / Theorem 8.8).
package fd

import (
	"fmt"
	"strings"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/values"
)

// FD is a unary functional dependency R: From → To, expressed over query
// variables (§8 "Concepts and Notation"). SrcRel names the original
// relation whose data witnesses the dependency; for FDs derived during
// the extension it keeps pointing at the original source so instance
// extension can read the mapping from un-extended data.
type FD struct {
	Rel    string
	From   cq.VarID
	To     cq.VarID
	SrcRel string
}

// Set is a list of unary FDs.
type Set []FD

// Parse parses one FD in the form "R: x -> y" (multiple targets
// "R: x -> y, z" expand to multiple FDs). Variables must exist in q and
// occur in the atom named R.
func Parse(q *cq.Query, s string) (Set, error) {
	colon := strings.Index(s, ":")
	arrow := strings.Index(s, "->")
	if colon < 0 || arrow < colon {
		return nil, fmt.Errorf("fd: want \"R: x -> y\", got %q", s)
	}
	rel := strings.TrimSpace(s[:colon])
	lhs := strings.TrimSpace(s[colon+1 : arrow])
	rhs := strings.TrimSpace(s[arrow+2:])
	if strings.ContainsAny(lhs, ", \t") {
		return nil, fmt.Errorf("fd: only unary FDs are supported, got left side %q", lhs)
	}
	var atomVars uint64
	found := false
	for i, a := range q.Atoms {
		if a.Rel == rel {
			atomVars |= q.AtomVars(i)
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("fd: no atom with relation %s", rel)
	}
	from, ok := q.VarByName(lhs)
	if !ok || atomVars&(1<<uint(from)) == 0 {
		return nil, fmt.Errorf("fd: variable %q does not occur in %s", lhs, rel)
	}
	var out Set
	for _, tgt := range strings.FieldsFunc(rhs, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		to, ok := q.VarByName(tgt)
		if !ok || atomVars&(1<<uint(to)) == 0 {
			return nil, fmt.Errorf("fd: variable %q does not occur in %s", tgt, rel)
		}
		out = append(out, FD{Rel: rel, From: from, To: to, SrcRel: rel})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fd: no target variables in %q", s)
	}
	return out, nil
}

// MustParse is Parse that panics on error.
func MustParse(q *cq.Query, s string) Set {
	fds, err := Parse(q, s)
	if err != nil {
		panic(err)
	}
	return fds
}

// Render formats the set using q's variable names.
func (s Set) Render(q *cq.Query) string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = fmt.Sprintf("%s: %s -> %s", f.Rel, q.VarName(f.From), q.VarName(f.To))
	}
	return strings.Join(parts, "; ")
}

// contains reports whether the set already holds an FD with the same
// relation, source and target (SrcRel ignored).
func (s Set) contains(f FD) bool {
	for _, g := range s {
		if g.Rel == f.Rel && g.From == f.From && g.To == f.To {
			return true
		}
	}
	return false
}

// ImpliedBy returns, for each variable, the set of variables transitively
// implied by it (excluding itself), at the variable level: x implies y if
// some FD has From=x, To=y. Returned as bitsets indexed by variable id.
func (s Set) ImpliedBy(numVars int) []uint64 {
	direct := make([]uint64, numVars)
	for _, f := range s {
		if f.From != f.To {
			direct[f.From] |= 1 << uint(f.To)
		}
	}
	// Transitive closure (tiny graphs; cubic is fine).
	closed := append([]uint64(nil), direct...)
	for changed := true; changed; {
		changed = false
		for v := 0; v < numVars; v++ {
			next := closed[v]
			for rest := closed[v]; rest != 0; {
				u := trailing(rest)
				rest &^= 1 << uint(u)
				next |= closed[u]
			}
			next &^= 1 << uint(v)
			if next != closed[v] {
				closed[v] = next
				changed = true
			}
		}
	}
	return closed
}

func trailing(s uint64) int {
	for i := 0; i < 64; i++ {
		if s&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// Check verifies that instance in satisfies every FD of s over query q.
func (s Set) Check(q *cq.Query, in *database.Instance) error {
	for _, f := range s {
		atom := atomByRel(q, f.Rel)
		if atom == nil {
			return fmt.Errorf("fd: relation %s not in query", f.Rel)
		}
		rel := in.Relation(f.Rel)
		if rel == nil {
			continue // empty relation vacuously satisfies
		}
		fromCol, toCol := colOf(atom, f.From), colOf(atom, f.To)
		if fromCol < 0 || toCol < 0 {
			return fmt.Errorf("fd: %s does not mention both variables of %s -> %s",
				f.Rel, q.VarName(f.From), q.VarName(f.To))
		}
		seen := make(map[values.Value]values.Value, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			t := rel.Tuple(i)
			if prev, ok := seen[t[fromCol]]; ok {
				if prev != t[toCol] {
					return fmt.Errorf("fd: %s violates %s -> %s at %s=%d",
						f.Rel, q.VarName(f.From), q.VarName(f.To), q.VarName(f.From), t[fromCol])
				}
			} else {
				seen[t[fromCol]] = t[toCol]
			}
		}
	}
	return nil
}

func atomByRel(q *cq.Query, rel string) *cq.Atom {
	for i := range q.Atoms {
		if q.Atoms[i].Rel == rel {
			return &q.Atoms[i]
		}
	}
	return nil
}

// colOf returns the first column position of v in the atom, or -1.
func colOf(a *cq.Atom, v cq.VarID) int {
	for i, u := range a.Vars {
		if u == v {
			return i
		}
	}
	return -1
}
