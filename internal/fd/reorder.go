package fd

import (
	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
)

// ReorderLex computes the FD-reordered lexicographic order L⁺ of
// Definition 8.13 for the extension: scanning L left to right, after each
// variable insert all variables it transitively implies (that are free in
// Q⁺), consecutively. Variables already later in L are pulled forward
// (keeping their relative order and direction); variables not in L are
// inserted with ascending direction in variable-id order. By Lemma 8.16,
// ordering Q⁺(I⁺) by L⁺ coincides with ordering by L.
func (e *Extension) ReorderLex(l order.Lex) order.Lex {
	implied := e.FDs.ImpliedBy(e.Query.NumVars())
	free := e.Query.Free()

	entries := append([]order.LexEntry(nil), l.Entries...)
	inOrder := make(map[cq.VarID]bool, len(entries))
	for _, en := range entries {
		inOrder[en.Var] = true
	}

	for i := 0; i < len(entries); i++ {
		v := entries[i].Var
		want := implied[v] & free
		if want == 0 {
			continue
		}
		// Collect implied entries: those already present keep their
		// relative order and direction; missing ones are appended asc in
		// id order.
		var pulled []order.LexEntry
		rest := make([]order.LexEntry, 0, len(entries))
		rest = append(rest, entries[:i+1]...)
		for _, en := range entries[i+1:] {
			if want&(1<<uint(en.Var)) != 0 {
				pulled = append(pulled, en)
				want &^= 1 << uint(en.Var)
			} else {
				rest = append(rest, en)
			}
		}
		for u := 0; u < e.Query.NumVars(); u++ {
			if want&(1<<uint(u)) != 0 && !inOrder[cq.VarID(u)] {
				pulled = append(pulled, order.LexEntry{Var: cq.VarID(u)})
				inOrder[cq.VarID(u)] = true
			}
		}
		// Splice: prefix (incl. v), pulled, remainder.
		out := make([]order.LexEntry, 0, len(rest)+len(pulled))
		out = append(out, rest[:i+1]...)
		out = append(out, pulled...)
		out = append(out, rest[i+1:]...)
		entries = out
	}
	return order.Lex{Entries: entries}
}
