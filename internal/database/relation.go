// Package database provides relations and database instances.
//
// Tuples are stored flat (one []int64 backing array per relation, arity
// stride) so scans are cache-friendly and per-tuple allocation is avoided.
// All values are dictionary-encoded (see internal/values).
package database

import (
	"fmt"
	"sort"

	"rankedaccess/internal/tupleidx"
	"rankedaccess/internal/values"
)

// Relation is a bag of fixed-arity tuples of dictionary-encoded values.
type Relation struct {
	arity int
	data  []values.Value
}

// NewRelation returns an empty relation of the given arity. Arity 0 is
// allowed (a nullary relation holds zero or more empty tuples and acts as
// a Boolean).
func NewRelation(arity int) *Relation {
	if arity < 0 {
		panic("database: negative arity")
	}
	return &Relation{arity: arity}
}

// FromFlat builds a relation over an existing flat tuple array (stride
// arity; one sentinel value per tuple for arity 0). The slice is owned
// by the relation from here on.
func FromFlat(arity int, data []values.Value) (*Relation, error) {
	if arity < 0 {
		return nil, fmt.Errorf("database: negative arity %d", arity)
	}
	if arity > 0 && len(data)%arity != 0 {
		return nil, fmt.Errorf("database: %d values do not tile arity %d", len(data), arity)
	}
	return &Relation{arity: arity, data: data}, nil
}

// FromRows builds a relation from row slices (all must share one length).
func FromRows(rows [][]values.Value) *Relation {
	if len(rows) == 0 {
		panic("database: FromRows needs at least one row to infer arity; use NewRelation")
	}
	r := NewRelation(len(rows[0]))
	for _, row := range rows {
		r.Append(row...)
	}
	return r
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if r.arity == 0 {
		return len(r.data) // nullary: we store one sentinel value per tuple
	}
	return len(r.data) / r.arity
}

// Append adds one tuple.
func (r *Relation) Append(tuple ...values.Value) {
	if len(tuple) != r.arity {
		panic(fmt.Sprintf("database: append arity %d to relation of arity %d", len(tuple), r.arity))
	}
	if r.arity == 0 {
		r.data = append(r.data, 0)
		return
	}
	r.data = append(r.data, tuple...)
}

// RemoveAll deletes every occurrence of tuple from the bag, returning
// the number removed. Tuple order is not preserved (relations are bags;
// every consumer sorts or indexes independently): survivors are swapped
// into the holes, so the scan is O(n) regardless of match count.
func (r *Relation) RemoveAll(tuple []values.Value) int {
	if len(tuple) != r.arity {
		panic(fmt.Sprintf("database: remove arity %d from relation of arity %d", len(tuple), r.arity))
	}
	if r.arity == 0 {
		n := len(r.data)
		r.data = r.data[:0]
		return n
	}
	removed := 0
	n := r.Len()
	for i := 0; i < n; {
		match := true
		for j, v := range tuple {
			if r.data[i*r.arity+j] != v {
				match = false
				break
			}
		}
		if !match {
			i++
			continue
		}
		last := n - 1
		copy(r.data[i*r.arity:(i+1)*r.arity], r.data[last*r.arity:(last+1)*r.arity])
		r.data = r.data[:last*r.arity]
		n = last
		removed++
	}
	return removed
}

// Tuple returns a read-only view of tuple i (do not mutate or retain
// across appends).
func (r *Relation) Tuple(i int) []values.Value {
	if r.arity == 0 {
		return nil
	}
	return r.data[i*r.arity : (i+1)*r.arity : (i+1)*r.arity]
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	return &Relation{arity: r.arity, data: append([]values.Value(nil), r.data...)}
}

// Project returns a new relation with the given columns, in order.
// Duplicates are kept; use Dedup afterwards for set semantics.
func (r *Relation) Project(cols []int) *Relation {
	out := NewRelation(len(cols))
	n := r.Len()
	if len(cols) == 0 {
		out.data = make([]values.Value, n)
		return out
	}
	out.data = make([]values.Value, 0, n*len(cols))
	for i := 0; i < n; i++ {
		t := r.Tuple(i)
		for _, c := range cols {
			out.data = append(out.data, t[c])
		}
	}
	return out
}

// Dedup removes duplicate tuples; the distinct tuples appear in
// first-occurrence order.
func (r *Relation) Dedup() *Relation {
	out := NewRelation(r.arity)
	if r.arity == 0 {
		if r.Len() > 0 {
			out.data = []values.Value{0}
		}
		return out
	}
	n := r.Len()
	idx := tupleidx.New(r.arity, n)
	for i := 0; i < n; i++ {
		idx.Insert(r.Tuple(i))
	}
	// The index's flat key storage is exactly the deduplicated relation.
	out.data = idx.FlatKeys()
	return out
}

// Filter returns the tuples satisfying pred.
func (r *Relation) Filter(pred func(t []values.Value) bool) *Relation {
	out := NewRelation(r.arity)
	n := r.Len()
	for i := 0; i < n; i++ {
		t := r.Tuple(i)
		if pred(t) {
			if r.arity == 0 {
				out.data = append(out.data, 0)
			} else {
				out.data = append(out.data, t...)
			}
		}
	}
	return out
}

// SortBy sorts tuples in place with the given comparator over tuples.
func (r *Relation) SortBy(less func(a, b []values.Value) bool) {
	if r.arity == 0 {
		return
	}
	n := r.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return less(r.Tuple(idx[i]), r.Tuple(idx[j]))
	})
	sorted := make([]values.Value, 0, len(r.data))
	for _, i := range idx {
		sorted = append(sorted, r.Tuple(i)...)
	}
	r.data = sorted
}

// SortLex sorts tuples in place by columnwise ascending value order,
// operating directly on the flat storage (no per-tuple allocation;
// equal tuples are interchangeable, so stability is moot).
func (r *Relation) SortLex() {
	if r.arity == 0 {
		return
	}
	tupleidx.SortLexFlat(r.data, r.arity)
}

// Data returns the flat tuple storage (stride Arity). It is a mutable
// view for internal consumers that sort or scan in place; external code
// should treat it as read-only.
func (r *Relation) Data() []values.Value { return r.data }

// Semijoin keeps the tuples of r whose projection onto cols appears in
// the projection of s onto sCols. cols and sCols must have equal length.
func (r *Relation) Semijoin(cols []int, s *Relation, sCols []int) *Relation {
	if len(cols) != len(sCols) {
		panic("database: semijoin column count mismatch")
	}
	if len(cols) == 0 {
		// Degenerate: keep all of r iff s is non-empty.
		if s.Len() > 0 {
			return r.Clone()
		}
		return NewRelation(r.arity)
	}
	set := tupleidx.New(len(sCols), s.Len())
	sn := s.Len()
	for i := 0; i < sn; i++ {
		set.InsertCols(s.Tuple(i), sCols)
	}
	return r.Filter(func(t []values.Value) bool {
		_, ok := set.LookupCols(t, cols)
		return ok
	})
}

// Rows materializes all tuples (for tests and small outputs).
func (r *Relation) Rows() [][]values.Value {
	n := r.Len()
	out := make([][]values.Value, n)
	for i := 0; i < n; i++ {
		out[i] = append([]values.Value(nil), r.Tuple(i)...)
	}
	return out
}

// encodeValue appends a fixed-width big-endian encoding of v to key.
func encodeValue(key []byte, v values.Value) []byte {
	u := uint64(v)
	return append(key,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// EncodeKey returns a hashable key for the given columns of tuple t.
// Retained for callers that need a string-embeddable key; hot paths use
// tupleidx instead.
func EncodeKey(buf []byte, t []values.Value, cols []int) []byte {
	buf = buf[:0]
	for _, c := range cols {
		buf = encodeValue(buf, t[c])
	}
	return buf
}
