package database

import (
	"fmt"
	"math/rand"
	"testing"

	"rankedaccess/internal/values"
)

// Allocation-regression benchmarks for the flat-storage hot paths. Run
// with -benchmem: Dedup and Semijoin should stay at a handful of
// allocations per call (the output arrays), not one per tuple.

func randRelation(n, arity int, dom int64, seed int64) *Relation {
	rng := rand.New(rand.NewSource(seed))
	r := NewRelation(arity)
	row := make([]values.Value, arity)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Int63n(dom)
		}
		r.Append(row...)
	}
	return r
}

func BenchmarkDedup(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := randRelation(n, 2, int64(n/4), 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r.Dedup().Len() == 0 {
					b.Fatal("empty dedup")
				}
			}
		})
	}
}

func BenchmarkProject(b *testing.B) {
	r := randRelation(1<<16, 4, 1<<20, 2)
	cols := []int{2, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Project(cols).Len() != r.Len() {
			b.Fatal("bad projection")
		}
	}
}

func BenchmarkSemijoin(b *testing.B) {
	r := randRelation(1<<16, 2, 1<<10, 3)
	s := randRelation(1<<14, 2, 1<<10, 4)
	cols := []int{0, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Semijoin(cols, s, cols)
	}
}

func BenchmarkSortLex(b *testing.B) {
	r := randRelation(1<<16, 3, 1<<18, 5)
	work := NewRelation(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.data = append(work.data[:0], r.data...)
		work.SortLex()
	}
}
