package database

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"rankedaccess/internal/values"
)

func rel(rows ...[]values.Value) *Relation { return FromRows(rows) }

func row(vs ...values.Value) []values.Value { return vs }

func TestAppendTupleLen(t *testing.T) {
	r := NewRelation(2)
	r.Append(1, 5)
	r.Append(1, 2)
	if r.Len() != 2 || r.Arity() != 2 {
		t.Fatalf("len=%d arity=%d", r.Len(), r.Arity())
	}
	if !reflect.DeepEqual(r.Tuple(1), row(1, 2)) {
		t.Fatalf("tuple = %v", r.Tuple(1))
	}
}

func TestAppendWrongArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRelation(2).Append(1)
}

func TestNullaryRelation(t *testing.T) {
	r := NewRelation(0)
	if r.Len() != 0 {
		t.Fatal("empty nullary")
	}
	r.Append()
	r.Append()
	if r.Len() != 2 {
		t.Fatalf("nullary len = %d", r.Len())
	}
	d := r.Dedup()
	if d.Len() != 1 {
		t.Fatalf("dedup nullary len = %d", d.Len())
	}
}

func TestProjectDedup(t *testing.T) {
	r := rel(row(1, 5), row(1, 2), row(6, 2))
	p := r.Project([]int{0}).Dedup()
	got := p.Rows()
	sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
	if !reflect.DeepEqual(got, [][]values.Value{row(1), row(6)}) {
		t.Fatalf("project+dedup = %v", got)
	}
}

func TestProjectReorder(t *testing.T) {
	r := rel(row(1, 2, 3))
	p := r.Project([]int{2, 0})
	if !reflect.DeepEqual(p.Tuple(0), row(3, 1)) {
		t.Fatalf("reorder projection = %v", p.Tuple(0))
	}
}

func TestFilter(t *testing.T) {
	r := rel(row(1, 5), row(1, 2), row(6, 2))
	f := r.Filter(func(t []values.Value) bool { return t[1] == 2 })
	if f.Len() != 2 {
		t.Fatalf("filter len = %d", f.Len())
	}
}

func TestSortLex(t *testing.T) {
	r := rel(row(6, 2), row(1, 5), row(1, 2))
	r.SortLex()
	want := [][]values.Value{row(1, 2), row(1, 5), row(6, 2)}
	if !reflect.DeepEqual(r.Rows(), want) {
		t.Fatalf("sorted = %v", r.Rows())
	}
}

func TestSortByStable(t *testing.T) {
	r := rel(row(2, 0), row(1, 1), row(2, 2), row(1, 3))
	r.SortBy(func(a, b []values.Value) bool { return a[0] < b[0] })
	want := [][]values.Value{row(1, 1), row(1, 3), row(2, 0), row(2, 2)}
	if !reflect.DeepEqual(r.Rows(), want) {
		t.Fatalf("stable sort = %v", r.Rows())
	}
}

func TestSemijoin(t *testing.T) {
	// Fig. 2a: R(x,y) = {(1,5),(1,2),(6,2)}, S(y,z) = {(5,3),(5,4),(5,6),(2,5)}.
	// Semijoin R on y with S keeps all of R; semijoin S with R keeps all of S.
	R := rel(row(1, 5), row(1, 2), row(6, 2))
	S := rel(row(5, 3), row(5, 4), row(5, 6), row(2, 5))
	if got := R.Semijoin([]int{1}, S, []int{0}); got.Len() != 3 {
		t.Fatalf("R⋉S len = %d", got.Len())
	}
	// Add a dangling R tuple.
	R2 := rel(row(1, 5), row(1, 2), row(6, 2), row(9, 9))
	got := R2.Semijoin([]int{1}, S, []int{0})
	if got.Len() != 3 {
		t.Fatalf("dangling tuple not removed: %v", got.Rows())
	}
}

func TestSemijoinEmptyKey(t *testing.T) {
	R := rel(row(1), row(2))
	S := NewRelation(3)
	if got := R.Semijoin(nil, S, nil); got.Len() != 0 {
		t.Fatal("semijoin with empty right side must empty the left")
	}
	S.Append(7, 8, 9)
	if got := R.Semijoin(nil, S, nil); got.Len() != 2 {
		t.Fatal("semijoin with non-empty right side keeps all")
	}
}

func TestCloneIsolation(t *testing.T) {
	r := rel(row(1, 2))
	c := r.Clone()
	c.Append(3, 4)
	if r.Len() != 1 {
		t.Fatal("clone mutated original")
	}
}

func TestInstanceBasics(t *testing.T) {
	in := NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("S", 5, 3)
	if in.Size() != 3 {
		t.Fatalf("size = %d", in.Size())
	}
	if !reflect.DeepEqual(in.Names(), []string{"R", "S"}) {
		t.Fatalf("names = %v", in.Names())
	}
	c := in.Clone()
	c.AddRow("R", 9, 9)
	if in.Relation("R").Len() != 2 {
		t.Fatal("clone mutated original instance")
	}
}

func TestInstanceNamedRows(t *testing.T) {
	in := NewInstance()
	in.Dict = values.SortedDict([]string{"anna", "boston", "salem"})
	in.AddNamedRow("V", "anna", "boston")
	va, _ := in.Dict.Lookup("anna")
	vb, _ := in.Dict.Lookup("boston")
	if !reflect.DeepEqual(in.Relation("V").Tuple(0), row(va, vb)) {
		t.Fatal("named row mismatch")
	}
}

func TestReadWriteRelation(t *testing.T) {
	in := NewInstance()
	src := "# comment\n1\t5\n1 2\n\n6 2\n"
	if err := in.ReadRelation("R", strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if in.Relation("R").Len() != 3 {
		t.Fatalf("read %d rows", in.Relation("R").Len())
	}
	var sb strings.Builder
	if err := in.WriteRelation("R", &sb); err != nil {
		t.Fatal(err)
	}
	in2 := NewInstance()
	if err := in2.ReadRelation("R", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in2.Relation("R").Rows(), in.Relation("R").Rows()) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadRelationErrors(t *testing.T) {
	in := NewInstance()
	if err := in.ReadRelation("R", strings.NewReader("1 2\n3\n")); err == nil {
		t.Fatal("ragged arity must error")
	}
	if err := in.ReadRelation("R", strings.NewReader("1 x\n")); err == nil {
		t.Fatal("non-integer must error")
	}
	if err := in.WriteRelation("missing", &strings.Builder{}); err == nil {
		t.Fatal("missing relation must error")
	}
}

func TestEncodeKeyDistinguishes(t *testing.T) {
	// Regression guard: naive byte concatenation of varints would collide;
	// the fixed-width encoding must distinguish (1, 256) from (256, 1).
	a := EncodeKey(nil, row(1, 256), []int{0, 1})
	b := EncodeKey(nil, row(256, 1), []int{0, 1})
	if string(a) == string(b) {
		t.Fatal("key collision")
	}
	c := EncodeKey(nil, row(-1, 0), []int{0, 1})
	d := EncodeKey(nil, row(0, -1), []int{0, 1})
	if string(c) == string(d) {
		t.Fatal("negative key collision")
	}
}
