package database

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"rankedaccess/internal/values"
)

// Instance is a database instance: a relation per symbol plus an optional
// value dictionary for string domains.
type Instance struct {
	rels map[string]*Relation
	// Dict translates string constants to codes. May be nil for purely
	// numeric instances, where the code *is* the number and the numeric
	// order is the domain order.
	Dict *values.Dict
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{rels: make(map[string]*Relation)}
}

// SetRelation installs (or replaces) the relation for a symbol.
func (in *Instance) SetRelation(name string, r *Relation) { in.rels[name] = r }

// Relation returns the relation for a symbol, or nil.
func (in *Instance) Relation(name string) *Relation { return in.rels[name] }

// Names returns the relation symbols in sorted order.
func (in *Instance) Names() []string {
	out := make([]string, 0, len(in.rels))
	for n := range in.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns n: the total number of tuples across relations.
func (in *Instance) Size() int {
	n := 0
	for _, r := range in.rels {
		n += r.Len()
	}
	return n
}

// Clone deep-copies the instance (the dictionary is shared: it is
// append-only).
func (in *Instance) Clone() *Instance {
	out := NewInstance()
	out.Dict = in.Dict
	for n, r := range in.rels {
		out.rels[n] = r.Clone()
	}
	return out
}

// AddRow appends a numeric row to the named relation, creating the
// relation on first use.
func (in *Instance) AddRow(name string, row ...values.Value) {
	r := in.rels[name]
	if r == nil {
		r = NewRelation(len(row))
		in.rels[name] = r
	}
	r.Append(row...)
}

// DeleteRow removes every occurrence of the row from the named
// relation, returning the number removed (0 when the relation does not
// exist or the arity disagrees).
func (in *Instance) DeleteRow(name string, row ...values.Value) int {
	r := in.rels[name]
	if r == nil || r.Arity() != len(row) {
		return 0
	}
	return r.RemoveAll(row)
}

// AddNamedRow appends a row of string constants, interning them in the
// instance dictionary (created on first use). Note that Intern assigns
// codes in first-seen order; callers that need the domain order to match
// the lexicographic string order should pre-build the dictionary with
// values.SortedDict and assign it to Dict before loading.
func (in *Instance) AddNamedRow(name string, row ...string) {
	if in.Dict == nil {
		in.Dict = values.NewDict()
	}
	vals := make([]values.Value, len(row))
	for i, s := range row {
		vals[i] = in.Dict.Intern(s)
	}
	in.AddRow(name, vals...)
}

// ReadRelation parses whitespace-separated rows of integers from rd into
// the named relation. Lines starting with '#' and blank lines are
// skipped. All rows must have the same arity.
func (in *Instance) ReadRelation(name string, rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	arity := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if arity == -1 {
			arity = len(fields)
		} else if len(fields) != arity {
			return fmt.Errorf("database: relation %s: row arity %d, expected %d", name, len(fields), arity)
		}
		row := make([]values.Value, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return fmt.Errorf("database: relation %s: %w", name, err)
			}
			row[i] = v
		}
		in.AddRow(name, row...)
	}
	return sc.Err()
}

// WriteRelation writes the named relation as whitespace-separated rows.
func (in *Instance) WriteRelation(name string, w io.Writer) error {
	r := in.rels[name]
	if r == nil {
		return fmt.Errorf("database: no relation %s", name)
	}
	bw := bufio.NewWriter(w)
	n := r.Len()
	for i := 0; i < n; i++ {
		t := r.Tuple(i)
		for j, v := range t {
			if j > 0 {
				if _, err := bw.WriteString("\t"); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatInt(v, 10)); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
