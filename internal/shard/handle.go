package shard

import (
	"context"
	"fmt"
	"sync"

	"rankedaccess/internal/access"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// part is one shard's direct-access structure. access may return an
// answer aliasing the given probe buffer (layered structures) or the
// part's immutable storage (SUM / materialized); either way the result
// is valid until the next access with the same buffer. The error
// returns exist for parts served over the network (see NewRemote);
// in-process parts never fail a rank.
// The context parameter exists for the network path (deadlines, trace
// propagation); in-process parts ignore it, so it costs nothing there.
type part interface {
	total() int64
	rank(ctx context.Context, a order.Answer) (int64, bool, error)
	access(ctx context.Context, k int64, b *access.LexBuf) (order.Answer, error)
	newBuf() *access.LexBuf
}

// chunkedPart marks parts whose per-answer access pays a network round
// trip: AppendRange prefetches windows of their local answers through
// fetchRange instead of probing one answer at a time.
type chunkedPart interface {
	fetchRange(ctx context.Context, k0, k1 int64) ([]order.Answer, error)
}

type lexPart struct{ la *access.Lex }

func (p lexPart) total() int64           { return p.la.Total() }
func (p lexPart) newBuf() *access.LexBuf { return p.la.NewBuf() }
func (p lexPart) rank(_ context.Context, a order.Answer) (int64, bool, error) {
	r, ex := p.la.Rank(a)
	return r, ex, nil
}
func (p lexPart) access(_ context.Context, k int64, b *access.LexBuf) (order.Answer, error) {
	return p.la.AccessInto(b, k)
}

type sumPart struct{ s *access.Sum }

func (p sumPart) total() int64           { return p.s.Total() }
func (p sumPart) newBuf() *access.LexBuf { return nil }
func (p sumPart) rank(_ context.Context, a order.Answer) (int64, bool, error) {
	r, ex := p.s.Rank(a)
	return r, ex, nil
}
func (p sumPart) access(_ context.Context, k int64, _ *access.LexBuf) (order.Answer, error) {
	return p.s.Access(k)
}

type matLexPart struct {
	m *access.Materialized
	l order.Lex
}

func (p matLexPart) total() int64           { return p.m.Total() }
func (p matLexPart) newBuf() *access.LexBuf { return nil }
func (p matLexPart) rank(_ context.Context, a order.Answer) (int64, bool, error) {
	r, ex := p.m.RankLex(a, p.l)
	return r, ex, nil
}
func (p matLexPart) access(_ context.Context, k int64, _ *access.LexBuf) (order.Answer, error) {
	return p.m.Access(k)
}

type matSumPart struct {
	m *access.Materialized
	w order.Sum
}

func (p matSumPart) total() int64           { return p.m.Total() }
func (p matSumPart) newBuf() *access.LexBuf { return nil }
func (p matSumPart) rank(_ context.Context, a order.Answer) (int64, bool, error) {
	r, ex := p.m.RankSum(a, p.w)
	return r, ex, nil
}
func (p matSumPart) access(_ context.Context, k int64, _ *access.LexBuf) (order.Answer, error) {
	return p.m.Access(k)
}

// Handle merges P per-shard structures sharing one total answer order
// into a single logical accessor. It is immutable after construction
// and safe for any number of concurrent goroutines: per-probe scratch
// comes from an internal pool, so steady-state accesses allocate
// nothing beyond what the caller's destination slice needs.
type Handle struct {
	// Query is the query the parts were built for (the FD-extension
	// when the caller extended before sharding).
	Query *cq.Query
	// Part records how the instance was split.
	Part Partitioning
	// Completed is the realized total lex order of layered parts (zero
	// for SUM and materialized-SUM groups).
	Completed order.Lex
	// BuildNanos records each part's build wall time, for rabench and
	// scaling diagnostics. Read-only.
	BuildNanos []int64

	parts  []part
	totals []int64
	total  int64
	cmp    func(a, b order.Answer) int

	// ranker, when non-nil, prices an answer on every shard in one
	// call (the network path batches the per-node rank RPCs and runs
	// nodes in parallel); nil falls back to per-part rank calls.
	ranker BatchRanker

	probes sync.Pool
}

// probe is the per-call scratch of one merge operation.
type probe struct {
	bufs  []*access.LexBuf
	lo    []int64
	hi    []int64
	ranks []int64
	cur   []order.Answer
	idx   []int64
	// pend/pi buffer prefetched windows of chunked (remote) parts
	// during AppendRange merges.
	pend [][]order.Answer
	pi   []int
}

func newHandle(q *cq.Query, pt Partitioning, parts []part, cmp func(a, b order.Answer) int) *Handle {
	h := &Handle{Query: q, Part: pt, parts: parts, cmp: cmp, totals: make([]int64, len(parts))}
	for i, p := range parts {
		h.totals[i] = p.total()
		h.total += h.totals[i]
	}
	h.probes.New = func() any {
		pr := &probe{
			bufs:  make([]*access.LexBuf, len(parts)),
			lo:    make([]int64, len(parts)),
			hi:    make([]int64, len(parts)),
			ranks: make([]int64, len(parts)),
			cur:   make([]order.Answer, len(parts)),
			idx:   make([]int64, len(parts)),
			pend:  make([][]order.Answer, len(parts)),
			pi:    make([]int, len(parts)),
		}
		for i, p := range parts {
			pr.bufs[i] = p.newBuf()
		}
		return pr
	}
	return h
}

// Total returns |Q(I)| (the sum of the per-shard answer counts).
func (h *Handle) Total() int64 { return h.total }

// Shards returns the shard count.
func (h *Handle) Shards() int { return len(h.parts) }

// PartTotals returns a copy of the per-shard answer counts.
func (h *Handle) PartTotals() []int64 {
	return append([]int64(nil), h.totals...)
}

func (h *Handle) getProbe() *probe  { return h.probes.Get().(*probe) }
func (h *Handle) putProbe(p *probe) { h.probes.Put(p) }

// locate finds the global k-th answer by binary-searching the global
// rank against per-shard answer counts. It keeps, per shard, the local
// index window that could still hold the k-th answer; each step probes
// the median candidate of the widest window, prices it on every shard
// (Rank = answers strictly below, O(log n) each), and either returns it
// (global rank k) or discards half of the widest window plus everything
// every other shard has priced on the wrong side. On return pr.ranks
// holds each shard's count of answers strictly below the result — the
// owner's entry is the result's local index — which AppendRange uses as
// its per-shard merge cursors. The returned answer may alias the
// owner's probe buffer in pr.
func (h *Handle) locate(ctx context.Context, pr *probe, k int64) (order.Answer, error) {
	if k < 0 || k >= h.total {
		return nil, access.ErrOutOfBound
	}
	lo, hi := pr.lo, pr.hi
	for i := range h.parts {
		lo[i], hi[i] = 0, h.totals[i]
	}
	// Each iteration halves some window; 64 bits per part bounds the
	// total number of halvings.
	maxIter := 64*len(h.parts) + 2
	for iter := 0; iter < maxIter; iter++ {
		s, width := -1, int64(0)
		for j := range h.parts {
			if w := hi[j] - lo[j]; w > width {
				s, width = j, w
			}
		}
		if s < 0 {
			break
		}
		m := lo[s] + width/2
		x, err := h.parts[s].access(ctx, m, pr.bufs[s])
		if err != nil {
			return nil, fmt.Errorf("shard: internal: part %d access(%d): %w", s, m, err)
		}
		if h.ranker != nil {
			// One scatter round: every node prices x on all its shards
			// in a single RPC, nodes run in parallel.
			if _, err := h.ranker.RankAll(ctx, x, pr.ranks); err != nil {
				return nil, err
			}
		} else {
			for j := range h.parts {
				if j == s {
					continue
				}
				rj, _, err := h.parts[j].rank(ctx, x)
				if err != nil {
					return nil, err
				}
				pr.ranks[j] = rj
			}
		}
		// The owner's rank of its own m-th answer is m by definition;
		// pinning it also shields the batched path from owner drift.
		pr.ranks[s] = m
		var r int64
		for j := range h.parts {
			r += pr.ranks[j]
		}
		switch {
		case r == k:
			return x, nil
		case r > k:
			// The k-th answer precedes x: its local index in any shard
			// is below that shard's count of answers preceding x.
			for j := range h.parts {
				if pr.ranks[j] < hi[j] {
					hi[j] = pr.ranks[j]
				}
			}
		default:
			// The k-th answer follows x: at least ranks[j] local
			// answers precede it everywhere, and x itself is excluded
			// in its own shard.
			for j := range h.parts {
				if pr.ranks[j] > lo[j] {
					lo[j] = pr.ranks[j]
				}
			}
			if m+1 > lo[s] {
				lo[s] = m + 1
			}
		}
	}
	return nil, fmt.Errorf("shard: internal: rank search did not converge for k=%d", k)
}

// Access returns the global k-th answer in the shared order. The answer
// is freshly allocated; use AppendTuple for the allocation-free path.
func (h *Handle) Access(k int64) (order.Answer, error) {
	return h.AccessCtx(context.Background(), k)
}

// AccessCtx is Access with a caller context threaded through remote
// parts (deadline and trace propagation); in-process parts ignore it.
func (h *Handle) AccessCtx(ctx context.Context, k int64) (order.Answer, error) {
	pr := h.getProbe()
	x, err := h.locate(ctx, pr, k)
	if err != nil {
		h.putProbe(pr)
		return nil, err
	}
	out := append(order.Answer(nil), x...)
	h.putProbe(pr)
	return out, nil
}

// AppendTuple appends the projection of the global k-th answer onto the
// given head variables to dst and returns the extended slice,
// allocating only when dst lacks capacity.
func (h *Handle) AppendTuple(dst []values.Value, head []cq.VarID, k int64) ([]values.Value, error) {
	return h.AppendTupleCtx(context.Background(), dst, head, k)
}

// AppendTupleCtx is AppendTuple with a caller context threaded through
// remote parts.
func (h *Handle) AppendTupleCtx(ctx context.Context, dst []values.Value, head []cq.VarID, k int64) ([]values.Value, error) {
	pr := h.getProbe()
	x, err := h.locate(ctx, pr, k)
	if err != nil {
		h.putProbe(pr)
		return dst, err
	}
	for _, v := range head {
		dst = append(dst, x[v])
	}
	h.putProbe(pr)
	return dst, nil
}

// Rank returns the number of answers strictly preceding the tuple in
// the global order (the sum of per-shard ranks) and whether the tuple
// is an answer of some shard. The error is always nil for in-process
// parts; remote parts surface transport failures through it.
func (h *Handle) Rank(a order.Answer) (int64, bool, error) {
	return h.RankCtx(context.Background(), a)
}

// RankCtx is Rank with a caller context threaded through remote parts.
func (h *Handle) RankCtx(ctx context.Context, a order.Answer) (int64, bool, error) {
	if h.ranker != nil {
		pr := h.getProbe()
		defer h.putProbe(pr)
		exact, err := h.ranker.RankAll(ctx, a, pr.ranks)
		if err != nil {
			return 0, false, err
		}
		var k int64
		for _, r := range pr.ranks {
			k += r
		}
		return k, exact, nil
	}
	var k int64
	exact := false
	for _, p := range h.parts {
		r, ex, err := p.rank(ctx, a)
		if err != nil {
			return 0, false, err
		}
		k += r
		exact = exact || ex
	}
	return k, exact, nil
}

// Inverted returns the global index of an answer, or ErrNotAnAnswer.
func (h *Handle) Inverted(a order.Answer) (int64, error) {
	k, ok, err := h.Rank(a)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, access.ErrNotAnAnswer
	}
	return k, nil
}

// AppendRange appends the head projections of the global answers
// k0 ≤ k < k1 to dst: one rank search finds each shard's starting
// cursor, then a P-way merge emits the window in order, costing one
// local O(log n) access per emitted answer plus a P-wide comparison.
func (h *Handle) AppendRange(dst []values.Value, head []cq.VarID, k0, k1 int64) ([]values.Value, error) {
	return h.AppendRangeCtx(context.Background(), dst, head, k0, k1)
}

// AppendRangeCtx is AppendRange with a caller context threaded through
// remote parts.
func (h *Handle) AppendRangeCtx(ctx context.Context, dst []values.Value, head []cq.VarID, k0, k1 int64) ([]values.Value, error) {
	if k0 >= k1 {
		return dst, nil
	}
	if k0 < 0 || k1 > h.total {
		return dst, access.ErrOutOfBound
	}
	pr := h.getProbe()
	defer h.putProbe(pr)
	if k0 == 0 {
		for j := range h.parts {
			pr.idx[j] = 0
		}
	} else {
		if _, err := h.locate(ctx, pr, k0); err != nil {
			return dst, err
		}
		copy(pr.idx, pr.ranks)
	}
	for j := range h.parts {
		pr.cur[j] = nil
		pr.pend[j] = pr.pend[j][:0]
		pr.pi[j] = 0
		if err := h.fillCursor(ctx, pr, j, k1-k0); err != nil {
			return dst, err
		}
	}
	for n := k1 - k0; n > 0; n-- {
		best := -1
		for j := range h.parts {
			if pr.cur[j] == nil {
				continue
			}
			if best < 0 || h.cmp(pr.cur[j], pr.cur[best]) < 0 {
				best = j
			}
		}
		if best < 0 {
			return dst, fmt.Errorf("shard: internal: merge ran dry with %d answers pending", n)
		}
		for _, v := range head {
			dst = append(dst, pr.cur[best][v])
		}
		pr.idx[best]++
		pr.pi[best]++
		pr.cur[best] = nil
		if err := h.fillCursor(ctx, pr, best, n-1); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// rangeChunk caps one prefetched window of a chunked (remote) part,
// matching the engine's cursor batch so an NDJSON stream chunk costs
// O(P) range RPCs instead of one RPC per emitted row.
const rangeChunk = 256

// fillCursor makes pr.cur[j] hold part j's next answer (nil when the
// part is exhausted). Chunked parts are served from a prefetched
// window, refilled with a size scaled to the remaining merge demand —
// each shard contributes roughly remaining/P of the window, so that
// estimate (plus slack) usually makes one fetch per shard suffice.
func (h *Handle) fillCursor(ctx context.Context, pr *probe, j int, remaining int64) error {
	if pr.idx[j] >= h.totals[j] {
		pr.cur[j] = nil
		return nil
	}
	cp, chunked := h.parts[j].(chunkedPart)
	if !chunked {
		x, err := h.parts[j].access(ctx, pr.idx[j], pr.bufs[j])
		if err != nil {
			return fmt.Errorf("shard: internal: part %d access(%d): %w", j, pr.idx[j], err)
		}
		pr.cur[j] = x
		return nil
	}
	if pr.pi[j] >= len(pr.pend[j]) {
		want := remaining/int64(len(h.parts)) + 16
		if want > remaining {
			want = remaining
		}
		if want > rangeChunk {
			want = rangeChunk
		}
		if want < 1 {
			want = 1
		}
		hi := pr.idx[j] + want
		if hi > h.totals[j] {
			hi = h.totals[j]
		}
		rows, err := cp.fetchRange(ctx, pr.idx[j], hi)
		if err != nil {
			return fmt.Errorf("shard: part %d range [%d, %d): %w", j, pr.idx[j], hi, err)
		}
		if int64(len(rows)) != hi-pr.idx[j] {
			return fmt.Errorf("shard: part %d range [%d, %d) returned %d answers", j, pr.idx[j], hi, len(rows))
		}
		pr.pend[j], pr.pi[j] = rows, 0
	}
	pr.cur[j] = pr.pend[j][pr.pi[j]]
	return nil
}
