package shard

import (
	"errors"
	"math/rand"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
)

// TestEmptyShardEdgeCases pins the network-path edge case: with few
// tuples and many shards, some shards receive ZERO tuples for the
// partitioned relation. Those shards must still build and answer
// Count=0 / Access→ErrOutOfBound, never error — a cluster node owning
// an empty slice of the hash space is a normal configuration, not a
// fault.
func TestEmptyShardEdgeCases(t *testing.T) {
	q, err := cq.Parse("Q(x, y, z) :- R(x, y), S(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	in := database.NewInstance()
	// One join chain: exactly one answer, so at most one of the 16
	// shards is non-empty.
	in.AddRow("R", 1, 2)
	in.AddRow("S", 2, 3)
	pt, err := Choose(q, "", 16)
	if err != nil {
		t.Fatal(err)
	}

	l, err := order.ParseLex(q, "x, y, z")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildLex(q, in, l, pt)
	if err != nil {
		t.Fatalf("BuildLex with empty shards: %v", err)
	}
	if sh.Total() != 1 {
		t.Fatalf("Total = %d, want 1", sh.Total())
	}
	empties := 0
	for _, n := range sh.PartTotals() {
		if n == 0 {
			empties++
		}
	}
	if empties != 15 {
		t.Fatalf("%d empty shards, want 15", empties)
	}
	a, err := sh.Access(0)
	if err != nil || a[q.Head[0]] != 1 || a[q.Head[1]] != 2 || a[q.Head[2]] != 3 {
		t.Fatalf("Access(0) = %v, %v", a, err)
	}
	if _, err := sh.Access(1); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatalf("Access(1) = %v, want ErrOutOfBound", err)
	}
	if n, err := Count(q, in, pt); err != nil || n != 1 {
		t.Fatalf("Count = %d, %v, want 1", n, err)
	}

	// Materialized fallback over the same mostly-empty split.
	if sh := mustBuildMatLex(t, q, in, l, pt); sh.Total() != 1 {
		t.Fatalf("BuildMaterializedLex with empty shards: total %d", sh.Total())
	}

	// The SUM structure (tractable for a single atom) with one tuple
	// and 16 shards: 15 empty SUM parts must build and merge.
	qs, err := cq.Parse("Q(x, y) :- R(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	ins := database.NewInstance()
	ins.AddRow("R", 5, 7)
	pts, err := Choose(qs, "", 16)
	if err != nil {
		t.Fatal(err)
	}
	w := order.IdentitySum(qs.Head...)
	shs, err := BuildSum(qs, ins, w, pts)
	if err != nil || shs.Total() != 1 {
		t.Fatalf("BuildSum with empty shards: err %v", err)
	}
	if _, err := shs.Access(1); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatalf("SUM Access(1) = %v, want ErrOutOfBound", err)
	}

	// The fully empty instance: every shard is empty, the structure
	// still builds and answers the empty answer set.
	emptyIn := database.NewInstance()
	emptyIn.SetRelation("R", database.NewRelation(2))
	emptyIn.SetRelation("S", database.NewRelation(2))
	sh, err = BuildLex(q, emptyIn, l, pt)
	if err != nil {
		t.Fatalf("BuildLex over empty instance: %v", err)
	}
	if sh.Total() != 0 {
		t.Fatalf("empty instance Total = %d", sh.Total())
	}
	if _, err := sh.Access(0); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatalf("empty instance Access(0) = %v, want ErrOutOfBound", err)
	}
	if n, err := Count(q, emptyIn, pt); err != nil || n != 0 {
		t.Fatalf("empty instance Count = %d, %v", n, err)
	}
}

func mustBuildMatLex(t *testing.T, q *cq.Query, in *database.Instance, l order.Lex, pt Partitioning) *Handle {
	t.Helper()
	sh, err := BuildMaterializedLex(q, in, l, pt)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// TestSplitP1Degenerate pins that P=1 "sharding" is exactly the
// unsharded structure: the split shares every relation by reference
// (zero copying) and the single-part handle answers identically to the
// plain structure.
func TestSplitP1Degenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, in := pathQuery(t, rng, 300, 40)
	pt, err := Choose(q, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	outs := Split(q, in, pt)
	if len(outs) != 1 {
		t.Fatalf("Split P=1 returned %d instances", len(outs))
	}
	for _, rel := range []string{"R", "S"} {
		if outs[0].Relation(rel) != in.Relation(rel) {
			t.Fatalf("P=1 split copied relation %s instead of sharing it", rel)
		}
	}

	l, err := order.ParseLex(q, "x, y desc, z")
	if err != nil {
		t.Fatal(err)
	}
	single, err := access.BuildLex(q, in, l)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildLex(q, in, l, pt)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Total() != single.Total() {
		t.Fatalf("P=1 total %d, single %d", sh.Total(), single.Total())
	}
	for k := int64(0); k < sh.Total(); k++ {
		want, err := single.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range q.Head {
			if want[v] != got[v] {
				t.Fatalf("k=%d: sharded %v, single %v", k, got, want)
			}
		}
	}
}

// TestOwnedBuild pins the node-side builders: building a subset of the
// shards yields the same per-shard totals, answers, and ranks the full
// in-process sharded handle computes for those shards.
func TestOwnedBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q, in := pathQuery(t, rng, 400, 30)
	pt, err := Choose(q, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := order.ParseLex(q, "x, y, z")
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildLex(q, in, l, pt)
	if err != nil {
		t.Fatal(err)
	}
	owned := []int{1, 3}
	o, err := BuildOwnedLex(q, in, l, pt, owned)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Shards(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("owned shards = %v", got)
	}
	if !sameLex(o.Completed(), full.Completed) {
		t.Fatalf("owned completed %v, full %v", o.Completed().Entries, full.Completed.Entries)
	}
	totals := full.PartTotals()
	for _, s := range owned {
		n, err := o.Total(s)
		if err != nil {
			t.Fatal(err)
		}
		if n != totals[s] {
			t.Fatalf("shard %d total %d, want %d", s, n, totals[s])
		}
		for k := int64(0); k < n; k += 7 {
			a, err := o.Access(s, k)
			if err != nil {
				t.Fatal(err)
			}
			r, exact, err := o.Rank(s, a)
			if err != nil || !exact || r != k {
				t.Fatalf("shard %d Rank(Access(%d)) = (%d, %v, %v)", s, k, r, exact, err)
			}
		}
		rows, err := o.Range(s, 0, min64(n, 10))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(rows)) != min64(n, 10) {
			t.Fatalf("shard %d Range len %d", s, len(rows))
		}
	}
	if _, err := o.Total(0); err == nil {
		t.Fatal("probing a non-owned shard must error")
	}
	if _, err := o.Access(2, 0); err == nil {
		t.Fatal("accessing a non-owned shard must error")
	}
	if _, err := BuildOwnedLex(q, in, l, pt, []int{9}); err == nil {
		t.Fatal("owned shard outside [0, P) must error")
	}

	// CountOwned over a partition of the shards sums to the global count.
	nAll, err := Count(q, in, pt)
	if err != nil {
		t.Fatal(err)
	}
	n13, err := CountOwned(q, in, pt, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	n02, err := CountOwned(q, in, pt, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if n13+n02 != nAll {
		t.Fatalf("CountOwned partition: %d + %d != %d", n13, n02, nAll)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
