package shard

import (
	"context"

	"rankedaccess/internal/access"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
)

// RemotePart is one shard's structure served by another process: the
// same total/rank/access surface as a local part plus a windowed range
// fetch so merges amortize the per-call round trip. Implementations
// must be safe for concurrent use and must return answers that do not
// alias shared mutable state.
type RemotePart interface {
	Total() int64
	Rank(ctx context.Context, a order.Answer) (int64, bool, error)
	Access(ctx context.Context, k int64) (order.Answer, error)
	FetchRange(ctx context.Context, k0, k1 int64) ([]order.Answer, error)
}

// BatchRanker prices an answer on every shard of the partitioning in
// one scatter round, filling ranks (length P, indexed by shard) and
// reporting whether any shard holds the answer exactly. The network
// implementation issues one RPC per node — each node ranks all its
// owned shards locally — and runs the nodes in parallel, so a locate
// iteration costs one access round trip plus one parallel rank round
// trip regardless of P.
type BatchRanker interface {
	RankAll(ctx context.Context, a order.Answer, ranks []int64) (exact bool, err error)
}

// remotePart adapts a RemotePart to the internal part interface; it
// also implements chunkedPart so AppendRange prefetches windows.
type remotePart struct{ rp RemotePart }

func (p remotePart) total() int64           { return p.rp.Total() }
func (p remotePart) newBuf() *access.LexBuf { return nil }
func (p remotePart) rank(ctx context.Context, a order.Answer) (int64, bool, error) {
	return p.rp.Rank(ctx, a)
}
func (p remotePart) access(ctx context.Context, k int64, _ *access.LexBuf) (order.Answer, error) {
	return p.rp.Access(ctx, k)
}
func (p remotePart) fetchRange(ctx context.Context, k0, k1 int64) ([]order.Answer, error) {
	return p.rp.FetchRange(ctx, k0, k1)
}

// NewRemote assembles a Handle over network-served parts: the same
// rank-merge machinery as the in-process sharded path (so distributed
// answers are byte-identical by construction), with per-answer probes
// going over parts[i] and whole-front rank pricing going through the
// batch ranker when one is given. cmp must realize the same total
// order every node's structures sort by; completed is the realized
// lex order of layered builds (zero for SUM orders).
func NewRemote(q *cq.Query, pt Partitioning, parts []RemotePart, cmp func(a, b order.Answer) int, ranker BatchRanker, completed order.Lex) *Handle {
	ps := make([]part, len(parts))
	for i, rp := range parts {
		ps[i] = remotePart{rp: rp}
	}
	h := newHandle(q, pt, ps, cmp)
	h.ranker = ranker
	h.Completed = completed
	return h
}
