package shard

import (
	"context"
	"fmt"
	"sort"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/par"
	"rankedaccess/internal/selection"
)

// Owned holds the per-shard structures a single cluster node builds
// for the shard indices it owns — the node-side half of the
// distributed handle whose coordinator-side half is NewRemote. All
// probes address shards by their global index; asking for a shard the
// node does not own is an error, never a silent wrong answer.
type Owned struct {
	// Query is the parsed query the parts serve.
	Query *cq.Query
	// Part is the cluster-wide partitioning (P is the global shard
	// count, not the owned count).
	Part Partitioning
	// BuildNanos records each owned shard's build wall time, keyed by
	// global shard index.
	BuildNanos map[int]int64

	completed order.Lex
	parts     map[int]part
}

// Completed returns the realized total lex order of layered builds
// (zero for SUM and materialized-SUM).
func (o *Owned) Completed() order.Lex { return o.completed }

// Shards returns the owned shard indices in ascending order.
func (o *Owned) Shards() []int {
	out := make([]int, 0, len(o.parts))
	for s := range o.parts {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func (o *Owned) part(shard int) (part, error) {
	p, ok := o.parts[shard]
	if !ok {
		return nil, fmt.Errorf("shard: shard %d is not owned by this node", shard)
	}
	return p, nil
}

// Total returns one owned shard's answer count.
func (o *Owned) Total(shard int) (int64, error) {
	p, err := o.part(shard)
	if err != nil {
		return 0, err
	}
	return p.total(), nil
}

// Rank returns one owned shard's count of answers strictly below a.
func (o *Owned) Rank(shard int, a order.Answer) (int64, bool, error) {
	p, err := o.part(shard)
	if err != nil {
		return 0, false, err
	}
	return p.rank(context.Background(), a)
}

// RankAll prices a on the given owned shards, filling ranks (aligned
// with shards) and reporting whether any of them holds a exactly.
func (o *Owned) RankAll(a order.Answer, shards []int, ranks []int64) (bool, error) {
	if len(ranks) != len(shards) {
		return false, fmt.Errorf("shard: %d rank slots for %d shards", len(ranks), len(shards))
	}
	exact := false
	for i, s := range shards {
		r, ex, err := o.Rank(s, a)
		if err != nil {
			return false, err
		}
		ranks[i] = r
		exact = exact || ex
	}
	return exact, nil
}

// Access returns one owned shard's k-th local answer. The answer is
// freshly allocated (wire-safe — it aliases no probe buffer).
func (o *Owned) Access(shard int, k int64) (order.Answer, error) {
	p, err := o.part(shard)
	if err != nil {
		return nil, err
	}
	a, err := p.access(context.Background(), k, p.newBuf())
	if err != nil {
		return nil, err
	}
	return append(order.Answer(nil), a...), nil
}

// maxOwnedRange caps one Range call, bounding the response frame a
// single request can demand from a node.
const maxOwnedRange = 4096

// Range returns one owned shard's local answers k0 ≤ k < k1, each
// freshly allocated off one backing array.
func (o *Owned) Range(shard int, k0, k1 int64) ([]order.Answer, error) {
	p, err := o.part(shard)
	if err != nil {
		return nil, err
	}
	if k0 < 0 || k1 < k0 || k1 > p.total() {
		return nil, access.ErrOutOfBound
	}
	n := k1 - k0
	if n > maxOwnedRange {
		return nil, fmt.Errorf("shard: range of %d answers exceeds the per-call cap %d", n, maxOwnedRange)
	}
	buf := p.newBuf()
	width := o.Query.NumVars()
	flat := make([]int64, 0, int(n)*width)
	out := make([]order.Answer, 0, n)
	for k := k0; k < k1; k++ {
		a, err := p.access(context.Background(), k, buf)
		if err != nil {
			return nil, err
		}
		start := len(flat)
		flat = append(flat, a...)
		out = append(out, flat[start:len(flat):len(flat)])
	}
	return out, nil
}

// ownedSet deduplicates and validates the owned shard indices.
func ownedSet(pt Partitioning, owned []int) ([]int, error) {
	if len(owned) == 0 {
		return nil, fmt.Errorf("shard: no owned shards requested")
	}
	set := make(map[int]bool, len(owned))
	for _, s := range owned {
		if s < 0 || s >= pt.P {
			return nil, fmt.Errorf("shard: owned shard %d outside [0, %d)", s, pt.P)
		}
		set[s] = true
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out, nil
}

// buildOwned splits the owned shards and builds one part per shard in
// parallel via the given per-shard builder.
func buildOwned(q *cq.Query, in *database.Instance, pt Partitioning, owned []int,
	build func(*database.Instance) (part, order.Lex, error)) (*Owned, error) {
	shards, err := ownedSet(pt, owned)
	if err != nil {
		return nil, err
	}
	ins := SplitOwned(q, in, pt, shards)
	parts := make([]part, len(shards))
	lexes := make([]order.Lex, len(shards))
	nanos := make([]int64, len(shards))
	err = par.DoErr(len(shards), func(i int) error {
		start := time.Now()
		p, l, err := build(ins[shards[i]])
		if err != nil {
			return err
		}
		parts[i], lexes[i] = p, l
		nanos[i] = time.Since(start).Nanoseconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(shards); i++ {
		if !sameLex(lexes[0], lexes[i]) {
			return nil, fmt.Errorf("shard: internal: owned shard %d realized order %v, shard %d realized %v",
				shards[i], lexes[i].Entries, shards[0], lexes[0].Entries)
		}
	}
	o := &Owned{
		Query:      q,
		Part:       pt,
		completed:  lexes[0],
		parts:      make(map[int]part, len(shards)),
		BuildNanos: make(map[int]int64, len(shards)),
	}
	for i, s := range shards {
		o.parts[s] = parts[i]
		o.BuildNanos[s] = nanos[i]
	}
	return o, nil
}

// BuildOwnedLex builds the owned shards' layered lexicographic
// structures. Like BuildLex, all shards must realize the same
// completed order; the coordinator additionally verifies it ACROSS
// nodes from the Prepare responses.
func BuildOwnedLex(q *cq.Query, in *database.Instance, l order.Lex, pt Partitioning, owned []int) (*Owned, error) {
	return buildOwned(q, in, pt, owned, func(si *database.Instance) (part, order.Lex, error) {
		la, err := access.BuildLex(q, si, l)
		if err != nil {
			return nil, order.Lex{}, err
		}
		return lexPart{la: la}, la.Completed, nil
	})
}

// BuildOwnedSum builds the owned shards' SUM structures.
func BuildOwnedSum(q *cq.Query, in *database.Instance, w order.Sum, pt Partitioning, owned []int) (*Owned, error) {
	return buildOwned(q, in, pt, owned, func(si *database.Instance) (part, order.Lex, error) {
		s, err := access.BuildSum(q, si, w)
		if err != nil {
			return nil, order.Lex{}, err
		}
		return sumPart{s: s}, order.Lex{}, nil
	})
}

// BuildOwnedMaterializedLex builds the owned shards' materialize-and-
// sort fallbacks under a lex order.
func BuildOwnedMaterializedLex(q *cq.Query, in *database.Instance, l order.Lex, pt Partitioning, owned []int) (*Owned, error) {
	return buildOwned(q, in, pt, owned, func(si *database.Instance) (part, order.Lex, error) {
		return matLexPart{m: access.BuildMaterializedLex(q, si, l), l: l}, order.Lex{}, nil
	})
}

// BuildOwnedMaterializedSum is BuildOwnedMaterializedLex for SUM.
func BuildOwnedMaterializedSum(q *cq.Query, in *database.Instance, w order.Sum, pt Partitioning, owned []int) (*Owned, error) {
	return buildOwned(q, in, pt, owned, func(si *database.Instance) (part, order.Lex, error) {
		return matSumPart{m: access.BuildMaterializedSum(q, si, w), w: w}, order.Lex{}, nil
	})
}

// CountOwned counts the owned shards' answers (their sum — the node's
// contribution to the global count) without building any structure.
func CountOwned(q *cq.Query, in *database.Instance, pt Partitioning, owned []int) (int64, error) {
	shards, err := ownedSet(pt, owned)
	if err != nil {
		return 0, err
	}
	ins := SplitOwned(q, in, pt, shards)
	counts := make([]int64, len(shards))
	err = par.DoErr(len(shards), func(i int) error {
		n, err := selection.CountAnswers(q, ins[shards[i]])
		counts[i] = n
		return err
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	return total, nil
}
