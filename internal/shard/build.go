package shard

import (
	"fmt"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/par"
	"rankedaccess/internal/selection"
)

// BuildLex splits the instance per pt and builds one layered
// lexicographic structure per shard in parallel. All shards complete
// the requested order over the same query structure, so they realize
// the same total order; that is verified defensively and a mismatch is
// an error. FD specs must be extended globally by the caller first
// (extend once, shard the extension): per-shard FD plumbing would
// price foreign candidates against incomplete local FD tables.
func BuildLex(q *cq.Query, in *database.Instance, l order.Lex, pt Partitioning) (*Handle, error) {
	ins := Split(q, in, pt)
	las := make([]*access.Lex, pt.P)
	nanos := make([]int64, pt.P)
	err := par.DoErr(pt.P, func(i int) error {
		start := time.Now()
		la, err := access.BuildLex(q, ins[i], l)
		if err != nil {
			return err
		}
		las[i], nanos[i] = la, time.Since(start).Nanoseconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	completed := las[0].Completed
	for i := 1; i < pt.P; i++ {
		if !sameLex(completed, las[i].Completed) {
			return nil, fmt.Errorf("shard: internal: shard %d realized order %v, shard 0 realized %v",
				i, las[i].Completed.Entries, completed.Entries)
		}
	}
	parts := make([]part, pt.P)
	for i, la := range las {
		parts[i] = lexPart{la: la}
	}
	h := newHandle(q, pt, parts, completed.Compare)
	h.Completed = completed
	h.BuildNanos = nanos
	return h, nil
}

func sameLex(a, b order.Lex) bool {
	if len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

// BuildSum is BuildLex for the ⟨n log n, 1⟩ SUM structures: per-shard
// answer arrays sorted by (weight, head), merged under the same
// comparator. FD specs must be extended globally by the caller first.
func BuildSum(q *cq.Query, in *database.Instance, w order.Sum, pt Partitioning) (*Handle, error) {
	ins := Split(q, in, pt)
	sums := make([]*access.Sum, pt.P)
	nanos := make([]int64, pt.P)
	err := par.DoErr(pt.P, func(i int) error {
		start := time.Now()
		s, err := access.BuildSum(q, ins[i], w)
		if err != nil {
			return err
		}
		sums[i], nanos[i] = s, time.Since(start).Nanoseconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	parts := make([]part, pt.P)
	for i, s := range sums {
		parts[i] = sumPart{s: s}
	}
	h := newHandle(q, pt, parts, func(a, b order.Answer) int {
		return access.CompareSumTotal(q, w, a, b)
	})
	h.BuildNanos = nanos
	return h, nil
}

// BuildMaterializedLex shards the materialize-and-sort fallback: each
// shard materializes only its own slice of the (possibly intractable)
// answer space, so the Θ(|Q(I)|) cost is split P ways across cores.
func BuildMaterializedLex(q *cq.Query, in *database.Instance, l order.Lex, pt Partitioning) (*Handle, error) {
	ins := Split(q, in, pt)
	mats := make([]*access.Materialized, pt.P)
	nanos := make([]int64, pt.P)
	par.Do(pt.P, func(i int) {
		start := time.Now()
		mats[i] = access.BuildMaterializedLex(q, ins[i], l)
		nanos[i] = time.Since(start).Nanoseconds()
	})
	parts := make([]part, pt.P)
	for i, m := range mats {
		parts[i] = matLexPart{m: m, l: l}
	}
	h := newHandle(q, pt, parts, func(a, b order.Answer) int {
		return access.CompareLexTotal(q, l, a, b)
	})
	h.BuildNanos = nanos
	return h, nil
}

// BuildMaterializedSum is BuildMaterializedLex for SUM orders.
func BuildMaterializedSum(q *cq.Query, in *database.Instance, w order.Sum, pt Partitioning) (*Handle, error) {
	ins := Split(q, in, pt)
	mats := make([]*access.Materialized, pt.P)
	nanos := make([]int64, pt.P)
	par.Do(pt.P, func(i int) {
		start := time.Now()
		mats[i] = access.BuildMaterializedSum(q, ins[i], w)
		nanos[i] = time.Since(start).Nanoseconds()
	})
	parts := make([]part, pt.P)
	for i, m := range mats {
		parts[i] = matSumPart{m: m, w: w}
	}
	h := newHandle(q, pt, parts, func(a, b order.Answer) int {
		return access.CompareSumTotal(q, w, a, b)
	})
	h.BuildNanos = nanos
	return h, nil
}

// Count answers |Q(I)| by splitting the instance and counting every
// shard in parallel; shard answer sets partition Q(I), so the counts
// sum. The per-shard counting is the same linear free-connex counting
// the single-shard path uses.
func Count(q *cq.Query, in *database.Instance, pt Partitioning) (int64, error) {
	ins := Split(q, in, pt)
	counts := make([]int64, pt.P)
	err := par.DoErr(pt.P, func(i int) error {
		n, err := selection.CountAnswers(q, ins[i])
		counts[i] = n
		return err
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	return total, nil
}
