// Package shard turns the single-structure reproduction into a
// horizontally partitioned engine: a database instance is hash-split
// into P shards on one free variable of the query, per-shard direct
// access structures are built in parallel, and global ranked access is
// answered by merging per-shard answer counts — no shard ever
// materializes more than its own slice of the answer space.
//
// Partitioning scheme. A partition variable v (free in the query) is
// fixed; every relation whose atom contains v is split by the hash of
// the tuple's v-column, and every other relation is replicated to all
// shards by reference (relations are immutable during builds, so
// replication is free). Each answer a therefore lives in exactly the
// shard ShardOf(a[v], P): atoms containing v force all of a's witnesses
// into that shard, and no other shard can assemble them. Self-joins are
// rejected — one relation serving two atoms could need to be both split
// and replicated — which matches the paper's self-join-free scope.
//
// Global rank merge. Shard answer sets partition Q(I), and every shard
// orders its local answers by the same total order, so the global rank
// of an answer x is the sum over shards of "answers strictly below x"
// — exactly what each structure's Rank query returns in O(log n).
// Access(k) binary-searches the global rank against these per-shard
// counts (see Handle.locate), finding the global k-th answer in
// O(P log n) rank probes per halving step with no materialization.
package shard

import (
	"fmt"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/par"
	"rankedaccess/internal/values"
)

// MaxShards bounds the shard count: merge scratch is O(P) per probe and
// the gain of splitting past the core count is negative.
const MaxShards = 64

// UnshardableError reports that a query cannot be partitioned (rather
// than that a request was malformed): callers are expected to fall back
// to a single structure and surface the reason as a note.
type UnshardableError struct{ Reason string }

func (e *UnshardableError) Error() string { return "shard: " + e.Reason }

// Partitioning fixes how an instance is split: the shard count and the
// partition variable. Together with the query it determines the shard
// of every answer, so it is part of a cached accessor's identity.
type Partitioning struct {
	// P is the shard count (≥ 1).
	P int
	// Var is the partition variable (free in the query).
	Var cq.VarID
	// VarName is Var's name in the query, for keys and diagnostics.
	VarName string
}

// ShardOf maps a partition-variable value to its shard: a splitmix64
// finalizer over the value, reduced mod p. Exported so tests and tools
// can predict tuple placement.
func ShardOf(v values.Value, p int) int {
	x := uint64(v)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(p))
}

// Choose picks the partitioning for a query: the named free variable
// when by is non-empty, otherwise the free variable contained in the
// most atoms (splitting more relations and replicating fewer), ties to
// the smallest variable id so the choice is deterministic.
//
// A *UnshardableError means the query itself cannot be partitioned
// (Boolean, or with self-joins); any other error is a bad request (an
// explicit by that is not a free variable, or a bad shard count).
func Choose(q *cq.Query, by string, p int) (Partitioning, error) {
	if p < 1 || p > MaxShards {
		return Partitioning{}, fmt.Errorf("shard: shard count %d outside [1, %d]", p, MaxShards)
	}
	if q.IsBoolean() {
		return Partitioning{}, &UnshardableError{Reason: "boolean query has no free variable to partition on"}
	}
	if !q.IsSelfJoinFree() {
		return Partitioning{}, &UnshardableError{Reason: "query has self-joins; one relation cannot be both split and replicated"}
	}
	if by != "" {
		if err := ValidateBy(q, by); err != nil {
			return Partitioning{}, err
		}
		id, _ := q.VarByName(by)
		return Partitioning{P: p, Var: id, VarName: by}, nil
	}
	best, bestCount := cq.VarID(-1), -1
	for _, v := range q.Head {
		count := 0
		for i := range q.Atoms {
			if atomHasVar(&q.Atoms[i], v) {
				count++
			}
		}
		if count > bestCount || (count == bestCount && v < best) {
			best, bestCount = v, count
		}
	}
	if best < 0 {
		return Partitioning{}, &UnshardableError{Reason: "no free variable to partition on"}
	}
	return Partitioning{P: p, Var: best, VarName: q.VarName(best)}, nil
}

// ValidateBy checks that an explicit partition variable names a free
// variable of the query — the single definition of that requirement,
// shared by Choose and by callers that pre-validate requests before
// attempting (and possibly falling back from) a sharded build.
func ValidateBy(q *cq.Query, by string) error {
	id, ok := q.VarByName(by)
	if !ok || !isFree(q, id) {
		return fmt.Errorf("shard: partition variable %q is not a free variable of the query", by)
	}
	return nil
}

func isFree(q *cq.Query, v cq.VarID) bool {
	for _, h := range q.Head {
		if h == v {
			return true
		}
	}
	return false
}

func atomHasVar(at *cq.Atom, v cq.VarID) bool {
	for _, u := range at.Vars {
		if u == v {
			return true
		}
	}
	return false
}

// Split partitions the relations the query references into pt.P shard
// instances: relations whose atom contains the partition variable are
// hash-split on that column, the rest are shared by reference (the
// caller must not mutate them while shard structures are live). The
// value dictionary is shared. Relations absent from the instance stay
// absent from every shard. Per-relation splitting fans out over the
// bounded worker pool.
func Split(q *cq.Query, in *database.Instance, pt Partitioning) []*database.Instance {
	tasks := splitTasks(q, pt)
	if pt.P == 1 {
		// Degenerate partitioning: every tuple hashes to shard 0, so the
		// single shard IS the original instance. Share each relation by
		// reference instead of copying — the resulting structure is then
		// exactly the unsharded one, built over the same storage.
		out := database.NewInstance()
		out.Dict = in.Dict
		for _, t := range tasks {
			if r := in.Relation(t.name); r != nil {
				out.SetRelation(t.name, r)
			}
		}
		return []*database.Instance{out}
	}
	outs := make([]*database.Instance, pt.P)
	for i := range outs {
		outs[i] = database.NewInstance()
		outs[i].Dict = in.Dict
	}

	split := make([][]*database.Relation, len(tasks))
	par.Do(len(tasks), func(ti int) {
		t := tasks[ti]
		r := in.Relation(t.name)
		if r == nil {
			return
		}
		rels := make([]*database.Relation, pt.P)
		if t.col < 0 {
			for i := range rels {
				rels[i] = r
			}
			split[ti] = rels
			return
		}
		for i := range rels {
			rels[i] = database.NewRelation(r.Arity())
		}
		n := r.Len()
		for i := 0; i < n; i++ {
			tu := r.Tuple(i)
			rels[ShardOf(tu[t.col], pt.P)].Append(tu...)
		}
		split[ti] = rels
	})
	for ti, t := range tasks {
		if split[ti] == nil {
			continue
		}
		for i := range outs {
			outs[i].SetRelation(t.name, split[ti][i])
		}
	}
	return outs
}

// splitTask is one relation's splitting assignment: the column holding
// the partition variable, or -1 to replicate by reference.
type splitTask struct {
	name string
	col  int
}

// splitTasks derives the per-relation splitting plan from the query.
func splitTasks(q *cq.Query, pt Partitioning) []splitTask {
	var tasks []splitTask
	seen := make(map[string]bool, len(q.Atoms))
	for i := range q.Atoms {
		at := &q.Atoms[i]
		if seen[at.Rel] {
			continue // identical duplicate atom (Choose rejected true self-joins)
		}
		seen[at.Rel] = true
		col := -1
		for c, u := range at.Vars {
			if u == pt.Var {
				col = c
				break
			}
		}
		tasks = append(tasks, splitTask{name: at.Rel, col: col})
	}
	return tasks
}

// SplitOwned is Split restricted to a subset of the shards: only the
// owned shard instances are materialized, so a node in a P-way cluster
// holding one shard pays 1/P of the split memory, not all of it.
// Tuples hashing to non-owned shards are simply skipped; replicated
// relations are still shared by reference. The result maps shard index
// to instance for exactly the requested owned indices (deduplicated).
func SplitOwned(q *cq.Query, in *database.Instance, pt Partitioning, owned []int) map[int]*database.Instance {
	ownSet := make(map[int]bool, len(owned))
	for _, s := range owned {
		ownSet[s] = true
	}
	outs := make(map[int]*database.Instance, len(ownSet))
	for s := range ownSet {
		outs[s] = database.NewInstance()
		outs[s].Dict = in.Dict
	}
	tasks := splitTasks(q, pt)
	type result struct{ rels map[int]*database.Relation }
	split := make([]result, len(tasks))
	par.Do(len(tasks), func(ti int) {
		t := tasks[ti]
		r := in.Relation(t.name)
		if r == nil {
			return
		}
		rels := make(map[int]*database.Relation, len(ownSet))
		if t.col < 0 {
			for s := range ownSet {
				rels[s] = r
			}
			split[ti] = result{rels: rels}
			return
		}
		for s := range ownSet {
			rels[s] = database.NewRelation(r.Arity())
		}
		n := r.Len()
		for i := 0; i < n; i++ {
			tu := r.Tuple(i)
			if dst, ok := rels[ShardOf(tu[t.col], pt.P)]; ok {
				dst.Append(tu...)
			}
		}
		split[ti] = result{rels: rels}
	})
	for ti, t := range tasks {
		if split[ti].rels == nil {
			continue
		}
		for s, rel := range split[ti].rels {
			outs[s].SetRelation(t.name, rel)
		}
	}
	return outs
}
