package shard

import (
	"errors"
	"math/rand"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/selection"
	"rankedaccess/internal/values"
)

// pathQuery returns Q(x, y, z) :- R(x, y), S(y, z) with a random
// instance of n tuples per relation over a domain of size dom.
func pathQuery(t *testing.T, rng *rand.Rand, n, dom int) (*cq.Query, *database.Instance) {
	t.Helper()
	q, err := cq.Parse("Q(x, y, z) :- R(x, y), S(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	in := database.NewInstance()
	for i := 0; i < n; i++ {
		in.AddRow("R", values.Value(rng.Intn(dom)), values.Value(rng.Intn(dom)))
		in.AddRow("S", values.Value(rng.Intn(dom)), values.Value(rng.Intn(dom)))
	}
	in.SetRelation("R", in.Relation("R").Dedup())
	in.SetRelation("S", in.Relation("S").Dedup())
	return q, in
}

func TestChoose(t *testing.T) {
	q, err := cq.Parse("Q(x, y, z) :- R(x, y), S(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Choose(q, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.VarName != "y" || pt.P != 4 {
		t.Fatalf("auto choice = %+v, want y (in both atoms) with P=4", pt)
	}
	if pt, err = Choose(q, "x", 2); err != nil || pt.VarName != "x" {
		t.Fatalf("explicit choice = %+v, %v", pt, err)
	}
	if _, err = Choose(q, "nope", 2); err == nil {
		t.Fatal("unknown explicit variable must be an error")
	}
	var ue *UnshardableError
	if errors.As(err, &ue) {
		t.Fatal("bad explicit variable must not be UnshardableError (it is a caller bug)")
	}

	proj, err := cq.Parse("Q(x) :- R(x, y), S(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err = Choose(proj, "y", 2); err == nil {
		t.Fatal("existential partition variable must be an error")
	}

	boolean, err := cq.Parse("Q() :- R(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err = Choose(boolean, "", 2); !errors.As(err, &ue) {
		t.Fatalf("boolean query: got %v, want UnshardableError", err)
	}

	selfjoin, err := cq.Parse("Q(x, y, z) :- R(x, y), R(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err = Choose(selfjoin, "", 2); !errors.As(err, &ue) {
		t.Fatalf("self-join: got %v, want UnshardableError", err)
	}
}

func TestSplitPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, in := pathQuery(t, rng, 300, 40)
	pt, err := Choose(q, "x", 3) // x is only in R: R split, S replicated
	if err != nil {
		t.Fatal(err)
	}
	ins := Split(q, in, pt)
	if len(ins) != 3 {
		t.Fatalf("got %d shard instances, want 3", len(ins))
	}
	totalR := 0
	for i, si := range ins {
		r := si.Relation("R")
		for j := 0; j < r.Len(); j++ {
			if got := ShardOf(r.Tuple(j)[0], 3); got != i {
				t.Fatalf("tuple %v in shard %d, hash says %d", r.Tuple(j), i, got)
			}
		}
		totalR += r.Len()
		if si.Relation("S") != in.Relation("S") {
			t.Fatal("relation without the partition variable must be shared by reference")
		}
	}
	if totalR != in.Relation("R").Len() {
		t.Fatalf("split lost tuples: %d != %d", totalR, in.Relation("R").Len())
	}
}

// expectAnswersEqual compares the full global answer sequences of a
// reference accessor and a sharded handle, plus rank/inverted and
// out-of-bound behavior.
func checkLexEquivalence(t *testing.T, q *cq.Query, single *access.Lex, sh *Handle) {
	t.Helper()
	if single.Total() != sh.Total() {
		t.Fatalf("total: single %d, sharded %d", single.Total(), sh.Total())
	}
	total := single.Total()
	var dst []values.Value
	for k := int64(0); k < total; k++ {
		want, err := single.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.Access(k)
		if err != nil {
			t.Fatalf("sharded Access(%d): %v", k, err)
		}
		for _, v := range q.Head {
			if want[v] != got[v] {
				t.Fatalf("k=%d: single %v, sharded %v", k, want, got)
			}
		}
		dst, err = sh.AppendTuple(dst[:0], q.Head, k)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range q.Head {
			if dst[i] != want[v] {
				t.Fatalf("k=%d AppendTuple mismatch: %v vs %v", k, dst, want)
			}
		}
		inv, err := sh.Inverted(want)
		if err != nil || inv != k {
			t.Fatalf("Inverted(answer %d) = %d, %v", k, inv, err)
		}
	}
	// Whole-range merge must equal per-k access.
	dst, err := sh.AppendRange(nil, q.Head, 0, total)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(dst)) != total*int64(len(q.Head)) {
		t.Fatalf("range length %d, want %d", len(dst), total*int64(len(q.Head)))
	}
	for k := int64(0); k < total; k++ {
		want, _ := single.Access(k)
		for i, v := range q.Head {
			if dst[k*int64(len(q.Head))+int64(i)] != want[v] {
				t.Fatalf("range k=%d col %d mismatch", k, i)
			}
		}
	}
	// Out-of-bound and empty windows.
	if _, err := sh.Access(total); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatalf("Access(total) = %v, want ErrOutOfBound", err)
	}
	if _, err := sh.Access(-1); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatalf("Access(-1) = %v, want ErrOutOfBound", err)
	}
	if out, err := sh.AppendRange(nil, q.Head, 5, 5); err != nil || len(out) != 0 {
		t.Fatalf("empty range: %v, %v", out, err)
	}
	if _, err := sh.AppendRange(nil, q.Head, 0, total+1); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatalf("over-wide range = %v, want ErrOutOfBound", err)
	}
}

func TestShardedLexMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{30, 400} {
		q, in := pathQuery(t, rng, n, 25)
		l, err := order.ParseLex(q, "y desc, x")
		if err != nil {
			t.Fatal(err)
		}
		single, err := access.BuildLex(q, in, l)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 3, 8} {
			pt, err := Choose(q, "", p)
			if err != nil {
				t.Fatal(err)
			}
			sh, err := BuildLex(q, in, l, pt)
			if err != nil {
				t.Fatalf("P=%d: %v", p, err)
			}
			checkLexEquivalence(t, q, single, sh)
			// Rank of non-answers agrees with the single structure.
			for i := 0; i < 50; i++ {
				a := make(order.Answer, q.NumVars())
				for _, v := range q.Head {
					a[v] = values.Value(rng.Intn(30))
				}
				wantK, wantEx := single.Rank(a)
				gotK, gotEx, rerr := sh.Rank(a)
				if rerr != nil {
					t.Fatalf("P=%d Rank(%v): %v", p, a, rerr)
				}
				if wantK != gotK || wantEx != gotEx {
					t.Fatalf("P=%d Rank(%v): single (%d,%v), sharded (%d,%v)",
						p, a, wantK, wantEx, gotK, gotEx)
				}
			}
		}
	}
}

func TestEmptyShards(t *testing.T) {
	// Two distinct partition values and eight shards: most shards hold
	// nothing and the merge must still be exact.
	q, err := cq.Parse("Q(x, y, z) :- R(x, y), S(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	in := database.NewInstance()
	for i := 0; i < 6; i++ {
		in.AddRow("R", values.Value(i%3), values.Value(i%2))
		in.AddRow("S", values.Value(i%2), values.Value(i))
	}
	l, err := order.ParseLex(q, "")
	if err != nil {
		t.Fatal(err)
	}
	single, err := access.BuildLex(q, in, l)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Choose(q, "y", 8)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildLex(q, in, l, pt)
	if err != nil {
		t.Fatal(err)
	}
	checkLexEquivalence(t, q, single, sh)
}

func TestShardedSumMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q, err := cq.Parse("Q(x, y) :- R(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	in := database.NewInstance()
	for i := 0; i < 500; i++ {
		in.AddRow("R", values.Value(rng.Intn(40)), values.Value(rng.Intn(40)))
	}
	in.SetRelation("R", in.Relation("R").Dedup())
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	w := order.IdentitySum(x, y)
	single, err := access.BuildSum(q, in, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 8} {
		pt, err := Choose(q, "", p)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := BuildSum(q, in, w, pt)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if single.Total() != sh.Total() {
			t.Fatalf("total: %d vs %d", single.Total(), sh.Total())
		}
		for k := int64(0); k < single.Total(); k++ {
			want, _ := single.Access(k)
			got, err := sh.Access(k)
			if err != nil {
				t.Fatalf("P=%d Access(%d): %v", p, k, err)
			}
			if want[x] != got[x] || want[y] != got[y] {
				t.Fatalf("P=%d k=%d: %v vs %v", p, k, want, got)
			}
		}
		if _, err := sh.Access(single.Total()); !errors.Is(err, access.ErrOutOfBound) {
			t.Fatalf("Access(total) = %v", err)
		}
	}
}

func TestShardedMaterializedMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q, in := pathQuery(t, rng, 150, 20)
	l, err := order.ParseLex(q, "z desc")
	if err != nil {
		t.Fatal(err)
	}
	single := access.BuildMaterializedLex(q, in, l)
	for _, p := range []int{2, 5} {
		pt, err := Choose(q, "", p)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := BuildMaterializedLex(q, in, l, pt)
		if err != nil {
			t.Fatal(err)
		}
		if single.Total() != sh.Total() {
			t.Fatalf("total: %d vs %d", single.Total(), sh.Total())
		}
		for k := int64(0); k < single.Total(); k++ {
			want, _ := single.Access(k)
			got, err := sh.Access(k)
			if err != nil {
				t.Fatalf("P=%d Access(%d): %v", p, k, err)
			}
			for _, v := range q.Head {
				if want[v] != got[v] {
					t.Fatalf("P=%d k=%d: %v vs %v", p, k, want, got)
				}
			}
		}
	}
}

func TestShardedMaterializedSumMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q, in := pathQuery(t, rng, 150, 20)
	x, _ := q.VarByName("x")
	z, _ := q.VarByName("z")
	w := order.IdentitySum(x, z)
	single := access.BuildMaterializedSum(q, in, w)
	for _, p := range []int{2, 5} {
		pt, err := Choose(q, "", p)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := BuildMaterializedSum(q, in, w, pt)
		if err != nil {
			t.Fatal(err)
		}
		if single.Total() != sh.Total() {
			t.Fatalf("total: %d vs %d", single.Total(), sh.Total())
		}
		for k := int64(0); k < single.Total(); k++ {
			want, _ := single.Access(k)
			got, err := sh.Access(k)
			if err != nil {
				t.Fatalf("P=%d Access(%d): %v", p, k, err)
			}
			for _, v := range q.Head {
				if want[v] != got[v] {
					t.Fatalf("P=%d k=%d: %v vs %v", p, k, got, want)
				}
			}
			inv, ok, rerr := sh.Rank(want)
			if rerr != nil || !ok || inv != k {
				t.Fatalf("P=%d Rank(answer %d) = (%d, %v)", p, k, inv, ok)
			}
		}
		// A full range merge exercises the (weight, head) comparator.
		flat, err := sh.AppendRange(nil, q.Head, 0, sh.Total())
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < single.Total(); k++ {
			want, _ := single.Access(k)
			for i, v := range q.Head {
				if flat[k*int64(len(q.Head))+int64(i)] != want[v] {
					t.Fatalf("P=%d range k=%d col %d mismatch", p, k, i)
				}
			}
		}
	}
}

func TestShardedCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q, in := pathQuery(t, rng, 400, 30)
	want, err := selection.CountAnswers(q, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 8} {
		pt, err := Choose(q, "", p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Count(q, in, pt)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got != want {
			t.Fatalf("P=%d count = %d, want %d", p, got, want)
		}
	}
}
