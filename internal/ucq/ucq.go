// Package ucq extends ranked direct access from CQs to unions of
// conjunctive queries (UCQs) sharing a head — the application of
// direct-access structures that Carmeli et al. [15] pioneered and the
// paper's introduction recalls ("the order of the answers can be useful
// for generalizing direct-access algorithms from CQs to UCQs").
//
// The union's answer set is ⋃ᵢ Qᵢ(I) with duplicates collapsed. The
// structure keeps one lexicographic direct-access structure per
// *intersection* of the union's CQs (the conjunction of their bodies,
// which is again a CQ), all sorted by one shared completed order; the
// rank of a tuple in the deduplicated union is then an
// inclusion–exclusion sum of the per-intersection ranks, and access
// works by binary-searching each member CQ for the answer whose union
// rank is the requested index.
//
// Complexity: preprocessing builds 2^m − 1 structures (m = number of
// CQs, a constant), so O(2^m · n log n); one access costs
// O(2^m · m · log² n). The construction applies when every intersection
// CQ is on the tractable side of Theorem 4.1 for a single shared
// completion of the requested order; otherwise construction fails with
// the certificate of the offending intersection.
package ucq

import (
	"errors"
	"fmt"

	"rankedaccess/internal/access"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/hypergraph"
	"rankedaccess/internal/order"
	"rankedaccess/internal/par"
	"rankedaccess/internal/values"
)

// HeadTuple is an answer of the union, in head order.
type HeadTuple = []values.Value

// Union is a ranked direct-access structure over a union of CQs.
type Union struct {
	// Queries are the member CQs (all with the same head variable names,
	// in the same order).
	Queries []*cq.Query
	// HeadNames is the shared head.
	HeadNames []string
	// Completed is the shared full order over head positions realized by
	// every underlying structure.
	Completed []order.LexEntry // Var field holds the head *position*

	subs  []*subStructure // one per non-empty subset of queries
	total int64
}

type subStructure struct {
	mask    uint32 // subset of member queries
	sign    int64  // +1 for odd |S|, -1 for even
	q       *cq.Query
	la      *access.Lex
	headIDs []cq.VarID // id of each head position in q
}

// BuildUnion constructs the union structure for the given CQs over in,
// ordered by the (possibly partial) lexicographic order given as head
// variable names with optional directions (same syntax as order.ParseLex,
// resolved against the first query).
func BuildUnion(queries []*cq.Query, in *database.Instance, l order.Lex) (*Union, error) {
	if len(queries) == 0 {
		return nil, errors.New("ucq: empty union")
	}
	if len(queries) > 16 {
		return nil, errors.New("ucq: more than 16 member queries")
	}
	headNames := make([]string, len(queries[0].Head))
	for i, v := range queries[0].Head {
		headNames[i] = queries[0].VarName(v)
	}
	for _, q := range queries[1:] {
		if len(q.Head) != len(headNames) {
			return nil, fmt.Errorf("ucq: %s has a different head arity", q.Name)
		}
		for i, v := range q.Head {
			if q.VarName(v) != headNames[i] {
				return nil, fmt.Errorf("ucq: %s head differs at position %d (%s vs %s)",
					q.Name, i, q.VarName(v), headNames[i])
			}
		}
	}
	// Translate the requested order (over queries[0] ids) to head
	// positions.
	pos := map[string]int{}
	for i, n := range headNames {
		pos[n] = i
	}
	prefix := make([]order.LexEntry, len(l.Entries))
	for i, e := range l.Entries {
		p, ok := pos[queries[0].VarName(e.Var)]
		if !ok {
			return nil, fmt.Errorf("ucq: order variable %s is not a head variable", queries[0].VarName(e.Var))
		}
		prefix[i] = order.LexEntry{Var: cq.VarID(p), Dir: e.Dir}
	}

	u := &Union{Queries: queries, HeadNames: headNames}

	// Build all intersection CQs.
	var intersections []*cq.Query
	var masks []uint32
	for mask := uint32(1); mask < 1<<uint(len(queries)); mask++ {
		qi, err := intersect(queries, headNames, mask)
		if err != nil {
			return nil, err
		}
		intersections = append(intersections, qi)
		masks = append(masks, mask)
	}

	// One shared completion over head positions, trio-free for every
	// intersection simultaneously.
	completed, ok := completeShared(intersections, headNames, prefix)
	if !ok {
		return nil, fmt.Errorf("ucq: no shared trio-free completion of the order exists for all intersections")
	}
	u.Completed = completed

	// The 2^m − 1 per-intersection structures are independent of each
	// other: build them concurrently over bounded workers and assemble
	// sequentially afterwards so subs stay in deterministic mask order.
	subs := make([]*subStructure, len(intersections))
	if err := par.DoErr(len(intersections), func(i int) error {
		qi := intersections[i]
		// Per-intersection order: completed positions mapped to qi's ids.
		entries := make([]order.LexEntry, len(completed))
		headIDs := make([]cq.VarID, len(headNames))
		for p, name := range headNames {
			id, ok := qi.VarByName(name)
			if !ok {
				return fmt.Errorf("ucq: internal: head variable %s missing from intersection", name)
			}
			headIDs[p] = id
		}
		for j, e := range completed {
			entries[j] = order.LexEntry{Var: headIDs[int(e.Var)], Dir: e.Dir}
		}
		la, err := access.BuildLex(qi, in, order.Lex{Entries: entries})
		if err != nil {
			return fmt.Errorf("ucq: intersection %b: %w", masks[i], err)
		}
		sign := int64(1)
		if popcount(masks[i])%2 == 0 {
			sign = -1
		}
		subs[i] = &subStructure{
			mask: masks[i], sign: sign, q: qi, la: la, headIDs: headIDs,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, s := range subs {
		u.subs = append(u.subs, s)
		u.total += s.sign * s.la.Total()
	}
	if u.total < 0 {
		return nil, errors.New("ucq: internal: negative union count")
	}
	return u, nil
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// intersect builds the conjunction of the bodies of the selected CQs:
// head variables are shared by name; existential variables are renamed
// apart per member.
func intersect(queries []*cq.Query, headNames []string, mask uint32) (*cq.Query, error) {
	q := cq.NewQuery("U")
	isHead := map[string]bool{}
	for _, n := range headNames {
		isHead[n] = true
	}
	for i, member := range queries {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		for _, atom := range member.Atoms {
			names := make([]string, len(atom.Vars))
			for j, v := range atom.Vars {
				n := member.VarName(v)
				if isHead[n] {
					names[j] = n
				} else {
					names[j] = fmt.Sprintf("q%d·%s", i, n)
				}
			}
			q.AddAtom(atom.Rel, names...)
		}
	}
	q.SetHead(headNames...)
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("ucq: intersection: %w", err)
	}
	return q, nil
}

// completeShared finds one total order over head positions, starting with
// the given prefix, that avoids disruptive trios in every intersection
// simultaneously (memoized search over prefix sets, as in Lemma 4.4's
// per-vertex criterion, conjoined across hypergraphs).
func completeShared(intersections []*cq.Query, headNames []string, prefix []order.LexEntry) ([]order.LexEntry, bool) {
	h := len(headNames)
	// Per intersection: neighbor sets over head positions.
	nbs := make([][]uint64, len(intersections))
	for qi, q := range intersections {
		adj := hypergraph.New(q.EdgeSets()).Neighbors()
		idOf := make([]cq.VarID, h)
		for p, name := range headNames {
			id, _ := q.VarByName(name)
			idOf[p] = id
		}
		nb := make([]uint64, h)
		for p := 0; p < h; p++ {
			for p2 := 0; p2 < h; p2++ {
				if p2 != p && hypergraph.Has(adj[idOf[p]], int(idOf[p2])) {
					nb[p] |= 1 << uint(p2)
				}
			}
		}
		nbs[qi] = nb
	}
	ok := func(p int, before uint64) bool {
		for _, nb := range nbs {
			prev := nb[p] & before
			for rest := prev; rest != 0; {
				a := trailing(rest)
				rest &^= 1 << uint(a)
				if rest&^nb[a] != 0 {
					return false
				}
			}
		}
		return true
	}
	var placed uint64
	out := append([]order.LexEntry(nil), prefix...)
	for _, e := range prefix {
		if !ok(int(e.Var), placed) {
			return nil, false
		}
		placed |= 1 << uint(e.Var)
	}
	all := uint64(1)<<uint(h) - 1
	dead := map[uint64]bool{}
	var rec func(cur uint64) bool
	rec = func(cur uint64) bool {
		if cur == all {
			return true
		}
		if dead[cur] {
			return false
		}
		for p := 0; p < h; p++ {
			if cur&(1<<uint(p)) != 0 || !ok(p, cur) {
				continue
			}
			out = append(out, order.LexEntry{Var: cq.VarID(p)})
			if rec(cur | 1<<uint(p)) {
				return true
			}
			out = out[:len(out)-1]
		}
		dead[cur] = true
		return false
	}
	if !rec(placed) {
		return nil, false
	}
	return out, true
}

func trailing(s uint64) int {
	for i := 0; i < 64; i++ {
		if s&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// Total returns the number of distinct union answers.
func (u *Union) Total() int64 { return u.total }

// rankOf returns the number of distinct union answers strictly before
// the head tuple, and whether the tuple is a union answer.
func (u *Union) rankOf(t HeadTuple) (int64, bool) {
	var rank int64
	member := false
	for _, s := range u.subs {
		a := make(order.Answer, s.q.NumVars())
		for p, id := range s.headIDs {
			a[id] = t[p]
		}
		r, exact := s.la.Rank(a)
		rank += s.sign * r
		if exact && popcount(s.mask) == 1 {
			member = true
		}
	}
	return rank, member
}

// Rank returns the number of union answers strictly preceding the head
// tuple, and whether the tuple is itself a union answer.
func (u *Union) Rank(t HeadTuple) (int64, bool) { return u.rankOf(t) }

// Inverted returns the index of a union answer, or ErrNotAnAnswer.
func (u *Union) Inverted(t HeadTuple) (int64, error) {
	k, member := u.rankOf(t)
	if !member {
		return 0, access.ErrNotAnAnswer
	}
	return k, nil
}

// Access returns the k-th distinct union answer (0-based) in the shared
// completed order, as a head tuple.
func (u *Union) Access(k int64) (HeadTuple, error) {
	if k < 0 || k >= u.total {
		return nil, access.ErrOutOfBound
	}
	// The k-th union answer lives in at least one member CQ; in that
	// member's own sorted answer list, union ranks are non-decreasing,
	// so binary search finds the position whose union rank is exactly k.
	for _, s := range u.subs {
		if popcount(s.mask) != 1 {
			continue
		}
		n := s.la.Total()
		if n == 0 {
			continue
		}
		lo, hi := int64(0), n-1
		for lo < hi {
			mid := lo + (hi-lo)/2
			a, err := s.la.Access(mid)
			if err != nil {
				return nil, err
			}
			r, _ := u.rankOf(u.toHead(s, a))
			if r >= k {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		a, err := s.la.Access(lo)
		if err != nil {
			return nil, err
		}
		t := u.toHead(s, a)
		if r, _ := u.rankOf(t); r == k {
			return t, nil
		}
	}
	return nil, fmt.Errorf("ucq: internal: index %d not found in any member", k)
}

func (u *Union) toHead(s *subStructure, a order.Answer) HeadTuple {
	t := make(HeadTuple, len(s.headIDs))
	for p, id := range s.headIDs {
		t[p] = a[id]
	}
	return t
}

// CompareHead compares two head tuples under the union's completed order.
func (u *Union) CompareHead(a, b HeadTuple) int {
	for _, e := range u.Completed {
		p := int(e.Var)
		if c := e.CompareValues(a[p], b[p]); c != 0 {
			return c
		}
	}
	return 0
}
