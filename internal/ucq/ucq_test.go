package ucq

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// unionOracle materializes the deduplicated union sorted by the union's
// completed order.
func unionOracle(u *Union, in *database.Instance) []HeadTuple {
	seen := map[string]HeadTuple{}
	for _, q := range u.Queries {
		for _, a := range baseline.AllAnswers(q, in) {
			t := make(HeadTuple, len(q.Head))
			key := ""
			for i, v := range q.Head {
				t[i] = a[v]
				key += "," + string(rune(a[v]+500))
			}
			seen[key] = t
		}
	}
	out := make([]HeadTuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return u.CompareHead(out[i], out[j]) < 0 })
	return out
}

func lexOf(t *testing.T, q *cq.Query, s string) order.Lex {
	t.Helper()
	l, err := order.ParseLex(q, s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestUnionBasic(t *testing.T) {
	// Q1(x, y) :- R(x, y)   and   Q2(x, y) :- S(x, y): a plain set union.
	q1 := cq.MustParse("Q1(x, y) :- R(x, y)")
	q2 := cq.MustParse("Q2(x, y) :- S(x, y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 1)
	in.AddRow("R", 2, 2)
	in.AddRow("S", 2, 2) // duplicate with R's second tuple
	in.AddRow("S", 3, 3)
	u, err := BuildUnion([]*cq.Query{q1, q2}, in, lexOf(t, q1, "x, y"))
	if err != nil {
		t.Fatal(err)
	}
	if u.Total() != 3 {
		t.Fatalf("union total = %d, want 3 (duplicate collapsed)", u.Total())
	}
	want := []HeadTuple{{1, 1}, {2, 2}, {3, 3}}
	for k, w := range want {
		got, err := u.Access(int64(k))
		if err != nil {
			t.Fatalf("Access(%d): %v", k, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("Access(%d) = %v, want %v", k, got, w)
		}
		if inv, err := u.Inverted(got); err != nil || inv != int64(k) {
			t.Fatalf("Inverted(%v) = %d, %v", got, inv, err)
		}
	}
	if _, err := u.Access(3); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatal("out of bound expected")
	}
	if _, err := u.Inverted(HeadTuple{9, 9}); !errors.Is(err, access.ErrNotAnAnswer) {
		t.Fatal("not-an-answer expected")
	}
}

func TestUnionJoinMembers(t *testing.T) {
	// Two join queries over different relations with overlapping answers.
	q1 := cq.MustParse("Q1(x, y) :- R(x, z), S(z, y)")
	q2 := cq.MustParse("Q2(x, y) :- T(x, y), W(y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 10)
	in.AddRow("R", 2, 20)
	in.AddRow("S", 10, 5)
	in.AddRow("S", 20, 6)
	in.AddRow("T", 1, 5) // duplicates Q1's (1, 5)
	in.AddRow("T", 4, 6)
	in.AddRow("W", 5)
	in.AddRow("W", 6)
	// Q1 answers: (1,5), (2,6). Q2 answers: (1,5), (4,6). Union: 3.
	// Q1 must be free-connex: Q1(x,y) :- R(x,z), S(z,y)... the 2-path
	// with endpoints free is NOT free-connex — pick a connex variant.
	_ = q1
	q1 = cq.MustParse("Q1(x, y) :- R(x, y), S(y, w)")
	in2 := database.NewInstance()
	in2.AddRow("R", 1, 5)
	in2.AddRow("R", 2, 6)
	in2.AddRow("S", 5, 0)
	in2.AddRow("S", 6, 0)
	in2.AddRow("T", 1, 5)
	in2.AddRow("T", 4, 6)
	in2.AddRow("W", 5)
	in2.AddRow("W", 6)
	u, err := BuildUnion([]*cq.Query{q1, q2}, in2, lexOf(t, q1, "x, y"))
	if err != nil {
		t.Fatal(err)
	}
	oracle := unionOracle(u, in2)
	if u.Total() != int64(len(oracle)) {
		t.Fatalf("total = %d, oracle %d", u.Total(), len(oracle))
	}
	for k := int64(0); k < u.Total(); k++ {
		got, err := u.Access(k)
		if err != nil {
			t.Fatalf("Access(%d): %v", k, err)
		}
		if !reflect.DeepEqual(got, oracle[k]) {
			t.Fatalf("Access(%d) = %v, oracle %v", k, got, oracle[k])
		}
	}
}

func TestUnionHeadMismatch(t *testing.T) {
	q1 := cq.MustParse("Q1(x, y) :- R(x, y)")
	q2 := cq.MustParse("Q2(y, x) :- S(x, y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 1)
	in.AddRow("S", 1, 1)
	if _, err := BuildUnion([]*cq.Query{q1, q2}, in, lexOf(t, q1, "x, y")); err == nil {
		t.Fatal("mismatched heads must be rejected")
	}
	q3 := cq.MustParse("Q3(x) :- S(x, y)")
	if _, err := BuildUnion([]*cq.Query{q1, q3}, in, lexOf(t, q1, "x")); err == nil {
		t.Fatal("mismatched head arity must be rejected")
	}
}

func TestUnionIntractableIntersection(t *testing.T) {
	// Each member is tractable, but their intersection is the triangle:
	// Q1 joins R,S; Q2 joins T closing the cycle... simpler: a member
	// that is itself not free-connex must fail.
	q1 := cq.MustParse("Q1(x, z) :- R(x, y), S(y, z)")
	q2 := cq.MustParse("Q2(x, z) :- T(x, z)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("S", 2, 3)
	in.AddRow("T", 1, 3)
	if _, err := BuildUnion([]*cq.Query{q1, q2}, in, lexOf(t, q1, "x, z")); err == nil {
		t.Fatal("non-free-connex member must be rejected")
	}
}

func TestUnionEmptyMembers(t *testing.T) {
	q1 := cq.MustParse("Q1(x, y) :- R(x, y)")
	q2 := cq.MustParse("Q2(x, y) :- S(x, y)")
	in := database.NewInstance()
	in.SetRelation("R", database.NewRelation(2))
	in.SetRelation("S", database.NewRelation(2))
	u, err := BuildUnion([]*cq.Query{q1, q2}, in, lexOf(t, q1, "x, y"))
	if err != nil {
		t.Fatal(err)
	}
	if u.Total() != 0 {
		t.Fatalf("empty union total = %d", u.Total())
	}
	if _, err := u.Access(0); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatal("out of bound expected")
	}
}

// Property test: random instances for a fixed catalog of unions; full
// agreement with the dedup-sort oracle, plus Inverted and Rank.
func TestUnionRandomAgainstOracle(t *testing.T) {
	catalogs := [][]string{
		{"Q1(x, y) :- R(x, y)", "Q2(x, y) :- S(x, y)"},
		{"Q1(x, y) :- R(x, y)", "Q2(x, y) :- S(x, y)", "Q3(x, y) :- T(y, x)"},
		{"Q1(x, y) :- R(x, y), W(y)", "Q2(x, y) :- S(x, w), S2(w, x, y)"},
		{"Q1(a, b) :- R(a, b), S(b, c)", "Q2(a, b) :- T(a), U(b)"},
	}
	rng := rand.New(rand.NewSource(71))
	for _, srcs := range catalogs {
		queries := make([]*cq.Query, len(srcs))
		for i, s := range srcs {
			queries[i] = cq.MustParse(s)
		}
		for trial := 0; trial < 20; trial++ {
			in := database.NewInstance()
			for _, q := range queries {
				for _, a := range q.Atoms {
					if in.Relation(a.Rel) != nil {
						continue
					}
					in.SetRelation(a.Rel, database.NewRelation(len(a.Vars)))
					rows := rng.Intn(7)
					for r := 0; r < rows; r++ {
						row := make([]values.Value, len(a.Vars))
						for c := range row {
							row[c] = values.Value(rng.Intn(4))
						}
						in.AddRow(a.Rel, row...)
					}
				}
			}
			u, err := BuildUnion(queries, in, lexOf(t, queries[0], ""))
			if err != nil {
				t.Fatalf("%v: %v", srcs, err)
			}
			oracle := unionOracle(u, in)
			if u.Total() != int64(len(oracle)) {
				t.Fatalf("%v trial %d: total %d, oracle %d", srcs, trial, u.Total(), len(oracle))
			}
			for k := int64(0); k < u.Total(); k++ {
				got, err := u.Access(k)
				if err != nil {
					t.Fatalf("%v: Access(%d): %v", srcs, k, err)
				}
				if !reflect.DeepEqual(got, oracle[k]) {
					t.Fatalf("%v trial %d: Access(%d) = %v, oracle %v", srcs, trial, k, got, oracle[k])
				}
				if inv, err := u.Inverted(got); err != nil || inv != k {
					t.Fatalf("%v: Inverted(Access(%d)) = %d, %v", srcs, k, inv, err)
				}
			}
			// Rank probes on random tuples.
			for probe := 0; probe < 10; probe++ {
				tup := make(HeadTuple, len(u.HeadNames))
				for i := range tup {
					tup[i] = values.Value(rng.Intn(4))
				}
				wantRank := 0
				wantMember := false
				for _, o := range oracle {
					if u.CompareHead(o, tup) < 0 {
						wantRank++
					}
					if reflect.DeepEqual(o, tup) {
						wantMember = true
					}
				}
				gotRank, gotMember := u.Rank(tup)
				if gotRank != int64(wantRank) || gotMember != wantMember {
					t.Fatalf("%v: Rank(%v) = (%d, %v), oracle (%d, %v)",
						srcs, tup, gotRank, gotMember, wantRank, wantMember)
				}
			}
		}
	}
}

func TestUnionDescDirections(t *testing.T) {
	q1 := cq.MustParse("Q1(x, y) :- R(x, y)")
	q2 := cq.MustParse("Q2(x, y) :- S(x, y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 1)
	in.AddRow("R", 2, 5)
	in.AddRow("S", 2, 5)
	in.AddRow("S", 3, 0)
	u, err := BuildUnion([]*cq.Query{q1, q2}, in, lexOf(t, q1, "x desc, y"))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := u.Access(0)
	if first[0] != 3 {
		t.Fatalf("descending first = %v", first)
	}
	oracle := unionOracle(u, in)
	for k := int64(0); k < u.Total(); k++ {
		got, _ := u.Access(k)
		if !reflect.DeepEqual(got, oracle[k]) {
			t.Fatalf("Access(%d) = %v, oracle %v", k, got, oracle[k])
		}
	}
}
