package snapshot

import (
	"strconv"
	"unsafe"
)

// hostLittle reports the host byte order. Column payloads are written
// in native order and flagged, so same-endian readers reconstruct
// slices zero-copy and foreign-endian readers are rejected cleanly.
func hostLittle() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// The casts below reinterpret backing arrays without copying. They are
// legal because both sides have the same size and the wider side's
// alignment is guaranteed: slice backing arrays of 8-byte elements are
// 8-aligned by the allocator, and file payloads start 8-aligned by the
// format (page-aligned mapping or []int64-backed read buffer, plus
// 8-multiple headers and padding).

func i64Bytes(xs []int64) []byte {
	if len(xs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), len(xs)*8)
}

func i32Bytes(xs []int32) []byte {
	if len(xs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), len(xs)*4)
}

func f64Bytes(xs []float64) []byte {
	if len(xs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), len(xs)*8)
}

func bytesI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func bytesI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func bytesF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// i64AsInt views an []int64 column as []int — zero-copy on 64-bit
// platforms, an element-wise copy elsewhere.
func i64AsInt(xs []int64) []int {
	if len(xs) == 0 {
		return nil
	}
	if strconv.IntSize == 64 {
		return unsafe.Slice((*int)(unsafe.Pointer(&xs[0])), len(xs))
	}
	out := make([]int, len(xs))
	for i, v := range xs {
		out[i] = int(v)
	}
	return out
}

// intAsI64 is the write-side inverse of i64AsInt.
func intAsI64(xs []int) []int64 {
	if len(xs) == 0 {
		return nil
	}
	if strconv.IntSize == 64 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&xs[0])), len(xs))
	}
	out := make([]int64, len(xs))
	for i, v := range xs {
		out[i] = int64(v)
	}
	return out
}
