// Package snapshot implements the durable on-disk format for engine
// state: the database instance plus the built access structures
// (layered-lex layers, SUM orders, materialized orders), so a process
// restart pays a file map instead of re-running the paper's O(n log n)
// preprocessing.
//
// # Format
//
// A snapshot is one file:
//
//	[0:8)   magic "RKASNAP1"
//	[8:12)  u32 format version (currently 1)
//	[12:16) u32 flags (bit 0: column payloads are little-endian)
//	[16:24) u64 section count
//	then section count sections, each:
//	  [0:4)  u32 kind
//	  [4:8)  u32 CRC-32 (Castagnoli) of the payload
//	  [8:16) u64 payload length in bytes
//	  payload, zero-padded to the next 8-byte boundary
//
// The file header and the section headers are always little-endian;
// only the column payloads use the writer's native byte order, recorded
// in the flags, so a reader on a same-endian host can reconstruct every
// []int64 / []int32 / []float64 column zero-copy by pointing a slice at
// the mapped file. All payloads start 8-byte-aligned (the headers are
// multiples of 8 and every payload is padded), which is what makes the
// casts legal.
//
// The last section is the single kindMeta section: a JSON document (see
// Meta) naming the relations, structures, and prepared-query
// registrations and tying them to the column sections by index. Bulk
// data never lives in the JSON; the JSON only describes shape.
//
// Decoding is strict — unknown kinds, CRC mismatches, non-zero padding,
// truncated sections, and trailing bytes are all errors — so re-encoding
// a successfully decoded file reproduces it byte-for-byte (the property
// FuzzSnapshotRoundTrip enforces).
//
// # Versioning
//
// FormatVersion is bumped on any incompatible layout change; readers
// reject other versions outright rather than guessing (see
// CONTRIBUTING.md for the bump policy). The Meta JSON may gain fields
// without a bump: decoders ignore unknown keys and the raw meta bytes
// are preserved verbatim on re-encode.
package snapshot

// FormatVersion is the on-disk format version this package reads and
// writes. See the package comment and CONTRIBUTING.md for the bump
// policy.
const FormatVersion = 1

// Section kinds. Columns are raw element arrays; kindMeta is the JSON
// table of contents and must be the last section, exactly once.
const (
	kindI64   = 1 // []int64 (also carries []int columns)
	kindI32   = 2 // []int32
	kindF64   = 3 // []float64, raw IEEE-754 bits
	kindBytes = 4 // opaque bytes (the dictionary string blob)
	kindMeta  = 5 // JSON Meta document
)

// flagLittleEndian marks column payloads written on a little-endian
// host.
const flagLittleEndian = 1

const (
	fileHeaderLen = 24
	secHeaderLen  = 16
)

var magic = [8]byte{'R', 'K', 'A', 'S', 'N', 'A', 'P', '1'}

// Structure kinds, matching the engine's plan modes.
const (
	KindLayeredLex   = "layered-lex"
	KindSum          = "sum"
	KindMaterialized = "materialized"
)

// NoCol marks an absent optional column reference (the zero value of an
// int is a valid section index, so absence needs a sentinel).
const NoCol = -1

// Meta is the JSON table of contents of a snapshot. Integer fields
// named *Col reference column sections by index.
type Meta struct {
	// EngineVersion is the instance version the snapshot captured.
	EngineVersion uint64 `json:"engine_version"`
	// CreatedUnixNano is the checkpoint wall time.
	CreatedUnixNano int64 `json:"created_unix_nano"`
	// Tuples is the instance size n across relations.
	Tuples int `json:"tuples"`

	Dict          *DictMeta          `json:"dict,omitempty"`
	Relations     []RelationMeta     `json:"relations,omitempty"`
	Structures    []StructureMeta    `json:"structures,omitempty"`
	Registrations []RegistrationMeta `json:"registrations,omitempty"`
}

// DictMeta locates the value dictionary: Count length-prefixed strings
// in the Blob section, in code order.
type DictMeta struct {
	Count int `json:"count"`
	Blob  int `json:"blob"`
}

// RelationMeta describes one relation: Rows tuples of the given arity,
// stored flat (stride Arity; one sentinel per tuple when Arity is 0) in
// the Col section.
type RelationMeta struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
	Rows  int    `json:"rows"`
	Col   int    `json:"col"`
}

// SpecMeta is the engine spec a structure or registration was built
// from, as plain data (mirrors engine.Spec).
type SpecMeta struct {
	Query   string   `json:"query"`
	Order   string   `json:"order,omitempty"`
	SumBy   []string `json:"sum_by,omitempty"`
	FDs     []string `json:"fds,omitempty"`
	Shards  int      `json:"shards,omitempty"`
	ShardBy string   `json:"shard_by,omitempty"`
}

// OrderEntryMeta is one component of a realized lexicographic order.
type OrderEntryMeta struct {
	Var  int  `json:"var"`
	Desc bool `json:"desc,omitempty"`
}

// LayerMeta describes one layer of a layered-lex structure. The
// children and child key-gather plans are not stored: they are
// recomputed from Parent and KeyVars at load.
type LayerMeta struct {
	Var     int   `json:"var"`
	Desc    bool  `json:"desc,omitempty"`
	Parent  int   `json:"parent"`
	KeyVars []int `json:"key_vars,omitempty"`
	Buckets int   `json:"buckets"`

	ValsCol         int `json:"vals_col"`
	WeightsCol      int `json:"weights_col"`
	StartsCol       int `json:"starts_col"`
	BucketStartCol  int `json:"bucket_start_col"`
	BucketEndCol    int `json:"bucket_end_col"`
	BucketWeightCol int `json:"bucket_weight_col"`
	BucketKeysCol   int `json:"bucket_keys_col"`
	BucketTableCol  int `json:"bucket_table_col"`
}

// StructureMeta describes one built access structure keyed by its spec.
type StructureMeta struct {
	Spec      SpecMeta `json:"spec"`
	Kind      string   `json:"kind"`
	Tractable bool     `json:"tractable,omitempty"`
	Total     int64    `json:"total"`
	NumVars   int      `json:"num_vars"`

	// Layered-lex fields.
	Boolean   bool             `json:"boolean,omitempty"`
	BoolTrue  bool             `json:"bool_true,omitempty"`
	Completed []OrderEntryMeta `json:"completed,omitempty"`
	Layers    []LayerMeta      `json:"layers,omitempty"`

	// SUM / materialized fields: Rows answers of NumVars values each,
	// flat in AnswersCol, with per-answer weights in WeightsCol
	// (NoCol for lex materializations).
	Rows       int  `json:"rows,omitempty"`
	AnswersCol int  `json:"answers_col,omitempty"`
	WeightsCol int  `json:"weights_col,omitempty"`
	MatIsLex   bool `json:"mat_is_lex,omitempty"`
}

// RegistrationMeta is one prepared-query registration: the name and the
// spec to rehydrate it from (handles are rebuilt lazily on first use,
// hitting the preloaded structure cache).
type RegistrationMeta struct {
	Name string   `json:"name"`
	Spec SpecMeta `json:"spec"`
}
