package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rankedaccess/internal/faultfs"
)

// Ext is the snapshot file extension.
const Ext = ".rka"

// tmpPrefix marks in-progress checkpoint files; a crash can strand
// them, and CleanTmp sweeps them at boot.
const tmpPrefix = ".tmp-snapshot-"

// FileName returns the canonical snapshot file name for a checkpoint.
// The zero-padded wall time makes lexicographic order chronological, so
// the latest snapshot is the greatest name.
func FileName(engineVersion uint64, createdUnixNano int64) string {
	return fmt.Sprintf("snapshot-%020d-v%d%s", createdUnixNano, engineVersion, Ext)
}

// ValidName reports whether name looks like a snapshot file name this
// package wrote — in particular it is a bare base name, safe to join
// under the snapshot directory.
func ValidName(name string) bool {
	_, _, ok := parseName(name)
	return ok
}

// parseName extracts the version and creation time a FileName encodes:
// "snapshot-<20-digit nanos>-v<version>.rka".
func parseName(name string) (engineVersion uint64, createdUnixNano int64, ok bool) {
	if name != filepath.Base(name) {
		return 0, 0, false
	}
	rest, found := strings.CutPrefix(name, "snapshot-")
	if !found {
		return 0, 0, false
	}
	rest, found = strings.CutSuffix(rest, Ext)
	if !found || len(rest) < 22 || rest[20] != '-' || rest[21] != 'v' {
		return 0, 0, false
	}
	nano, err := strconv.ParseInt(rest[:20], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	version, err := strconv.ParseUint(rest[22:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return version, nano, true
}

// Info describes one snapshot file in a directory listing, from the
// name and file size alone (no decode).
type Info struct {
	Name            string `json:"name"`
	Bytes           int64  `json:"bytes"`
	EngineVersion   uint64 `json:"engine_version"`
	CreatedUnixNano int64  `json:"created_unix_nano"`
}

// List returns the snapshots in dir, newest first. A missing directory
// lists empty.
func List(dir string) ([]Info, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Info
	for _, ent := range entries {
		version, nano, ok := parseName(ent.Name())
		if ent.IsDir() || !ok {
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			continue
		}
		out = append(out, Info{
			Name: ent.Name(), Bytes: fi.Size(),
			EngineVersion: version, CreatedUnixNano: nano,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name > out[j].Name })
	return out, nil
}

// Latest returns the newest snapshot file name in dir, if any.
func Latest(dir string) (name string, ok bool, err error) {
	infos, err := List(dir)
	if err != nil || len(infos) == 0 {
		return "", false, err
	}
	return infos[0].Name, true, nil
}

// CleanTmp removes stranded in-progress checkpoint files (from a
// crashed writer). Call it only when no other process checkpoints into
// dir.
func CleanTmp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasPrefix(ent.Name(), tmpPrefix) {
			_ = os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
}

// WriteFile atomically persists a built snapshot into dir: the bytes go
// to a temporary file which is fsynced and renamed to its canonical
// name, so a reader (or a crash) never observes a partial snapshot; on
// any error the temporary file is removed.
func WriteFile(dir string, b *Builder) (name string, size int64, err error) {
	return WriteFileFS(faultfs.OS(), dir, b)
}

// WriteFileFS is WriteFile over an explicit filesystem, the chaos-test
// seam (see internal/faultfs).
func WriteFileFS(fsys faultfs.FS, dir string, b *Builder) (name string, size int64, err error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	tmp, err := fsys.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return "", 0, err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()
	size, err = b.WriteTo(tmp)
	if err != nil {
		return "", 0, err
	}
	if err = tmp.Sync(); err != nil {
		return "", 0, err
	}
	if err = tmp.Close(); err != nil {
		return "", 0, err
	}
	name = FileName(b.meta.EngineVersion, b.meta.CreatedUnixNano)
	if err = fsys.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmp.Name())
		return "", 0, err
	}
	return name, size, nil
}

// Mapped is an open snapshot file: a decoded File over a memory
// mapping (or a heap buffer where mapping is unavailable). The File's
// column views alias the mapping, so Close only after every structure
// reconstructed from it is unreachable.
type Mapped struct {
	file  *File
	unmap func() error
}

// Open maps and decodes a snapshot file. Decoding verifies every
// section checksum, so a torn or tampered file fails here, not during
// serving.
func Open(path string) (*Mapped, error) {
	data, unmap, ok, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	if !ok {
		data, err = readAligned(path)
		if err != nil {
			return nil, err
		}
		unmap = nil
	}
	f, err := Decode(data)
	if err != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, fmt.Errorf("snapshot: %s: %w", filepath.Base(path), err)
	}
	return &Mapped{file: f, unmap: unmap}, nil
}

// File returns the decoded snapshot.
func (m *Mapped) File() *File { return m.file }

// Close releases the mapping. The File and everything aliasing it
// become invalid.
func (m *Mapped) Close() error {
	if m.unmap == nil {
		return nil
	}
	un := m.unmap
	m.unmap = nil
	return un()
}

// readAligned reads a whole file into a buffer whose start is 8-byte
// aligned (backed by []int64), preserving the zero-copy casts of the
// mmap path.
func readAligned(path string) ([]byte, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := int(st.Size())
	if size == 0 {
		return nil, corrupt("empty file")
	}
	backing := make([]int64, (size+7)/8)
	buf := i64Bytes(backing)[:size]
	if _, err := fd.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}
