//go:build !unix

package snapshot

// mapFile on platforms without a wired mmap path always asks for the
// read fallback.
func mapFile(path string) (data []byte, un func() error, ok bool, err error) {
	return nil, nil, false, nil
}
