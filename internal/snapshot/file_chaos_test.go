package snapshot

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"rankedaccess/internal/faultfs"
)

// Checkpoint atomicity under injected faults: whatever step of
// write-temp → sync → close → rename fails, the directory must never
// contain a partial snapshot under a canonical name, and a retry (the
// fault is one-shot) must produce a complete, listable one.

func chaosBuilder() *Builder {
	b := NewBuilder(7, 123456789)
	b.AddRelation("R", 2, []int64{1, 10, 2, 20, 3, 30})
	b.AddRelation("S", 1, []int64{10, 20})
	return b
}

func TestChaosWriteFileAtomicUnderFaults(t *testing.T) {
	faults := []faultfs.Fault{
		{Op: faultfs.OpCreateTemp, Nth: 1, Mode: faultfs.ModeFail},
		{Op: faultfs.OpWrite, Nth: 1, Mode: faultfs.ModeFail},
		{Op: faultfs.OpWrite, Nth: 1, Mode: faultfs.ModeShortWrite},
		{Op: faultfs.OpSync, Nth: 1, Mode: faultfs.ModeFail},
		{Op: faultfs.OpRename, Nth: 1, Mode: faultfs.ModeFail},
	}
	for i, f := range faults {
		t.Run(fmt.Sprintf("%d-%s", i, f.Op), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS())
			inj.Inject(f)
			if _, _, err := WriteFileFS(inj, dir, chaosBuilder()); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("WriteFileFS under %v: err = %v, want injected", f, err)
			}
			// No canonical snapshot may exist — a reader listing the
			// directory must see nothing from the failed checkpoint.
			infos, err := List(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 0 {
				t.Fatalf("failed checkpoint left a listable snapshot: %v", infos)
			}
			// Retry on the same injector: the one-shot fault has fired,
			// so the checkpoint must complete and decode cleanly.
			name, size, err := WriteFileFS(inj, dir, chaosBuilder())
			if err != nil {
				t.Fatalf("retry after fault: %v", err)
			}
			if size <= 0 {
				t.Fatalf("retry wrote %d bytes", size)
			}
			m, err := Open(dir + "/" + name)
			if err != nil {
				t.Fatalf("retried snapshot does not decode: %v", err)
			}
			m.Close()
			// Stranded temp files are allowed only transiently; the
			// failed attempt must have cleaned up after itself (rename
			// failure included — WriteFileFS removes the temp).
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range ents {
				if strings.HasPrefix(ent.Name(), tmpPrefix) {
					t.Fatalf("stranded temp file %q after failed checkpoint", ent.Name())
				}
			}
		})
	}
}
