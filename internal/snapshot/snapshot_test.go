package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildSample assembles a representative snapshot: two relations, a
// dictionary, one layered-lex structure, one SUM structure, and a
// registration.
func buildSample() *Builder {
	b := NewBuilder(7, 123456789)
	b.AddRelation("R", 2, []int64{1, 10, 2, 20, 3, 30})
	b.AddRelation("S", 1, []int64{10, 20})
	b.SetDict([]string{"alpha", "beta", ""})
	sm := StructureMeta{
		Spec: SpecMeta{Query: "Q(x, y) :- R(x, y)", Order: "x"},
		Kind: KindLayeredLex, Tractable: true, Total: 3, NumVars: 2,
		Completed:  []OrderEntryMeta{{Var: 0}, {Var: 1}},
		AnswersCol: NoCol, WeightsCol: NoCol,
		Layers: []LayerMeta{
			{
				Var: 0, Parent: -1, Buckets: 1,
				ValsCol: b.I64Col([]int64{1, 2, 3}), WeightsCol: b.I64Col([]int64{1, 1, 1}),
				StartsCol: b.I64Col([]int64{0, 1, 2}), BucketStartCol: b.IntCol([]int{0}),
				BucketEndCol: b.IntCol([]int{3}), BucketWeightCol: b.I64Col([]int64{3}),
				BucketKeysCol: b.I64Col(nil), BucketTableCol: b.I32Col([]int32{1, 0, 0, 0, 0, 0, 0, 0}),
			},
			{
				Var: 1, Parent: 0, KeyVars: []int{0}, Buckets: 3,
				ValsCol: b.I64Col([]int64{10, 20, 30}), WeightsCol: b.I64Col([]int64{1, 1, 1}),
				StartsCol: b.I64Col([]int64{0, 0, 0}), BucketStartCol: b.IntCol([]int{0, 1, 2}),
				BucketEndCol: b.IntCol([]int{1, 2, 3}), BucketWeightCol: b.I64Col([]int64{1, 1, 1}),
				BucketKeysCol: b.I64Col([]int64{1, 2, 3}), BucketTableCol: b.I32Col(sampleTable()),
			},
		},
	}
	b.AddStructure(sm)
	b.AddStructure(StructureMeta{
		Spec: SpecMeta{Query: "Q(x, y) :- R(x, y)", SumBy: []string{"x", "y"}},
		Kind: KindSum, Tractable: true, Total: 3, NumVars: 2, Rows: 3,
		AnswersCol: b.I64Col([]int64{1, 10, 2, 20, 3, 30}),
		WeightsCol: b.F64Col([]float64{11, 22, 33}),
	})
	b.AddRegistration("by_x", SpecMeta{Query: "Q(x, y) :- R(x, y)", Order: "x"})
	return b
}

// sampleTable is a plausible 8-slot open-addressing table for ids
// 0..2; this package validates shapes only, not slot placement (that is
// tupleidx.FromParts's job at reconstruction).
func sampleTable() []int32 {
	return []int32{0, 1, 0, 2, 0, 3, 0, 0}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data, err := buildSample().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.EngineVersion != 7 || f.Meta.CreatedUnixNano != 123456789 {
		t.Fatalf("meta header %+v", f.Meta)
	}
	if f.Meta.Tuples != 5 || len(f.Meta.Relations) != 2 {
		t.Fatalf("instance meta %+v", f.Meta)
	}
	if got := f.DictNames(); !reflect.DeepEqual(got, []string{"alpha", "beta", ""}) {
		t.Fatalf("dict names %q", got)
	}
	col, err := f.ColI64(f.Meta.Relations[0].Col)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col, []int64{1, 10, 2, 20, 3, 30}) {
		t.Fatalf("relation column %v", col)
	}
	ws, err := f.ColF64(f.Meta.Structures[1].WeightsCol)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws, []float64{11, 22, 33}) {
		t.Fatalf("weights %v", ws)
	}

	// Re-encoding a decoded file is byte-identical.
	out, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("re-encode is not byte-identical")
	}

	// Encoding is deterministic across builder runs.
	again, err := buildSample().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("two identical builds differ")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := buildSample().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(d []byte) []byte { return nil }, ErrCorrupt},
		{"bad magic", func(d []byte) []byte { d[0] ^= 1; return d }, ErrBadMagic},
		{"future version", func(d []byte) []byte { d[8] = 99; return d }, ErrBadVersion},
		{"foreign order", func(d []byte) []byte { d[12] ^= flagLittleEndian; return d }, ErrForeignByteOrder},
		{"flipped payload byte", func(d []byte) []byte { d[len(d)/2] ^= 0xff; return d }, ErrCorrupt},
		{"flipped crc", func(d []byte) []byte { d[fileHeaderLen+4] ^= 1; return d }, ErrCorrupt},
		{"truncated", func(d []byte) []byte { return d[:len(d)-9] }, ErrCorrupt},
		{"trailing garbage", func(d []byte) []byte { return append(d, 0) }, ErrCorrupt},
		{"section count", func(d []byte) []byte { d[16]++; return d }, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), data...))
			f, err := Decode(mut)
			if err == nil {
				t.Fatalf("decode accepted %s (meta %+v)", tc.name, f.Meta)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsMetaInconsistencies(t *testing.T) {
	mutate := func(f func(*Builder)) error {
		b := buildSample()
		f(b)
		data, err := b.Bytes()
		if err != nil {
			return err
		}
		_, err = Decode(data)
		return err
	}
	cases := []struct {
		name string
		mut  func(*Builder)
	}{
		{"bad relation col", func(b *Builder) { b.meta.Relations[0].Col = 999 }},
		{"relation length lie", func(b *Builder) { b.meta.Relations[0].Rows = 17 }},
		{"tuple count lie", func(b *Builder) { b.meta.Tuples = 99 }},
		{"duplicate relation", func(b *Builder) { b.meta.Relations[1].Name = "R" }},
		{"dict count lie", func(b *Builder) { b.meta.Dict.Count = 50 }},
		{"wrong column kind", func(b *Builder) { b.meta.Structures[1].WeightsCol = b.meta.Structures[1].AnswersCol }},
		{"unknown structure kind", func(b *Builder) { b.meta.Structures[0].Kind = "btree" }},
		{"layer var out of range", func(b *Builder) { b.meta.Structures[0].Layers[0].Var = 63 }},
		{"layer parent cycle", func(b *Builder) { b.meta.Structures[0].Layers[1].Parent = 1 }},
		{"empty registration name", func(b *Builder) { b.meta.Registrations[0].Name = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := mutate(tc.mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestWriteFileAtomicAndListable(t *testing.T) {
	dir := t.TempDir()
	name, size, err := WriteFile(dir, buildSample())
	if err != nil {
		t.Fatal(err)
	}
	if !ValidName(name) {
		t.Fatalf("invalid snapshot name %q", name)
	}
	st, err := os.Stat(filepath.Join(dir, name))
	if err != nil || st.Size() != size {
		t.Fatalf("stat %v, size %d vs %d", err, st.Size(), size)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries in dir, want 1", len(entries))
	}
	m, err := Open(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.File().Meta.EngineVersion != 7 {
		t.Fatalf("mapped meta %+v", m.File().Meta)
	}
	// CleanTmp removes stranded temp files and nothing else.
	tmp := filepath.Join(dir, tmpPrefix+"stranded")
	if err := os.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	CleanTmp(dir)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stranded temp file survived CleanTmp")
	}
	if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
		t.Fatal("CleanTmp removed a real snapshot")
	}
}

func TestValidName(t *testing.T) {
	good := FileName(12, 34)
	if !ValidName(good) {
		t.Fatalf("%q should be valid", good)
	}
	for _, bad := range []string{
		"", "snapshot.rka", "x/" + good, "../" + good,
		"snapshot--1-v2.rka", "snapshot-00000000000000000034-v.rka",
	} {
		if ValidName(bad) {
			t.Fatalf("%q should be invalid", bad)
		}
	}
}
