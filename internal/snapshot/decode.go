package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// Sentinel decode errors; every decode failure wraps one of them.
var (
	// ErrBadMagic: the file does not start with the snapshot magic.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrBadVersion: the format version is not one this build reads.
	ErrBadVersion = errors.New("snapshot: unsupported format version")
	// ErrForeignByteOrder: the columns were written on a host of the
	// other endianness.
	ErrForeignByteOrder = errors.New("snapshot: foreign byte order")
	// ErrCorrupt: a structural or checksum violation.
	ErrCorrupt = errors.New("snapshot: corrupt file")
)

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// File is a decoded snapshot. Column accessors return views into the
// decoded byte slice (the mapped file), so a File must not outlive the
// mapping that backs it.
type File struct {
	// Meta is the parsed table of contents; Decode has already verified
	// every column reference in it (existence, kind, and length).
	Meta Meta

	flags     uint32
	sections  []section
	dictNames []string
}

// Decode parses and fully validates a snapshot image: magic, version,
// byte order, every section CRC, zero padding, no trailing bytes, and
// the meta document's internal consistency. The returned File aliases
// data; it never panics on hostile input — any violation is an error.
func Decode(data []byte) (*File, error) {
	if len(data) < fileHeaderLen {
		return nil, corrupt("%d bytes is shorter than the header", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrBadVersion, v, FormatVersion)
	}
	f := &File{flags: binary.LittleEndian.Uint32(data[12:16])}
	if (f.flags&flagLittleEndian != 0) != hostLittle() {
		return nil, ErrForeignByteOrder
	}
	// Every section costs at least a header, which bounds a plausible
	// count by the remaining bytes — a corrupt huge count fails here
	// instead of sizing an absurd allocation.
	count := binary.LittleEndian.Uint64(data[16:24])
	if count == 0 || count > uint64((len(data)-fileHeaderLen)/secHeaderLen) {
		return nil, corrupt("section count %d out of range", count)
	}
	f.sections = make([]section, 0, count)
	off := fileHeaderLen
	for i := uint64(0); i < count; i++ {
		if len(data)-off < secHeaderLen {
			return nil, corrupt("truncated header of section %d", i)
		}
		kind := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		plen := binary.LittleEndian.Uint64(data[off+8 : off+16])
		off += secHeaderLen
		if plen > uint64(len(data)-off) {
			return nil, corrupt("truncated payload of section %d", i)
		}
		payload := data[off : off+int(plen)]
		off += int(plen)
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			return nil, corrupt("section %d checksum mismatch", i)
		}
		switch kind {
		case kindI64, kindF64:
			if plen%8 != 0 {
				return nil, corrupt("section %d: %d bytes is not 8-element-aligned", i, plen)
			}
		case kindI32:
			if plen%4 != 0 {
				return nil, corrupt("section %d: %d bytes is not 4-element-aligned", i, plen)
			}
		case kindBytes:
		case kindMeta:
			if i != count-1 {
				return nil, corrupt("meta section %d is not last", i)
			}
		default:
			return nil, corrupt("section %d has unknown kind %d", i, kind)
		}
		for pad := (8 - int(plen)%8) % 8; pad > 0; pad-- {
			if off >= len(data) {
				return nil, corrupt("truncated padding of section %d", i)
			}
			if data[off] != 0 {
				return nil, corrupt("non-zero padding after section %d", i)
			}
			off++
		}
		f.sections = append(f.sections, section{kind: kind, payload: payload})
	}
	if off != len(data) {
		return nil, corrupt("%d trailing bytes", len(data)-off)
	}
	last := f.sections[len(f.sections)-1]
	if last.kind != kindMeta {
		return nil, corrupt("last section is not meta")
	}
	if err := json.Unmarshal(last.payload, &f.Meta); err != nil {
		return nil, corrupt("meta: %v", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode re-emits the decoded file. For any successfully decoded input
// this reproduces the original bytes exactly (decoding is strict and
// the encoding canonical).
func (f *File) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := writeSections(&buf, f.flags, f.sections); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// col resolves a column reference, checking index, kind, and (when
// wantLen >= 0) element count.
func (f *File) col(idx int, kind uint32, wantLen int, what string) ([]byte, error) {
	if idx < 0 || idx >= len(f.sections) || f.sections[idx].kind != kind {
		return nil, corrupt("%s: bad column reference %d", what, idx)
	}
	p := f.sections[idx].payload
	size := 8
	if kind == kindI32 {
		size = 4
	}
	if wantLen >= 0 && len(p)/size != wantLen {
		return nil, corrupt("%s: column %d has %d elements, want %d", what, idx, len(p)/size, wantLen)
	}
	return p, nil
}

// ColI64 returns a validated []int64 column as a zero-copy view.
func (f *File) ColI64(idx int) ([]int64, error) {
	p, err := f.col(idx, kindI64, -1, "i64 column")
	if err != nil {
		return nil, err
	}
	return bytesI64(p), nil
}

// ColI32 returns a validated []int32 column as a zero-copy view.
func (f *File) ColI32(idx int) ([]int32, error) {
	p, err := f.col(idx, kindI32, -1, "i32 column")
	if err != nil {
		return nil, err
	}
	return bytesI32(p), nil
}

// ColF64 returns a validated []float64 column as a zero-copy view.
func (f *File) ColF64(idx int) ([]float64, error) {
	p, err := f.col(idx, kindF64, -1, "f64 column")
	if err != nil {
		return nil, err
	}
	return bytesF64(p), nil
}

// ColInt returns an []int64 column viewed as []int (zero-copy on
// 64-bit hosts).
func (f *File) ColInt(idx int) ([]int, error) {
	xs, err := f.ColI64(idx)
	if err != nil {
		return nil, err
	}
	return i64AsInt(xs), nil
}

// DictNames returns the decoded dictionary names in code order (nil
// when the snapshot has no dictionary).
func (f *File) DictNames() []string { return f.dictNames }

// Sections reports the section count (for inspection tools).
func (f *File) Sections() int { return len(f.sections) }

// SectionInfo describes one section for inspection tools.
type SectionInfo struct {
	Kind  string `json:"kind"`
	Bytes int    `json:"bytes"`
}

// SectionInfos lists every section's kind and payload size.
func (f *File) SectionInfos() []SectionInfo {
	kinds := map[uint32]string{
		kindI64: "i64", kindI32: "i32", kindF64: "f64",
		kindBytes: "bytes", kindMeta: "meta",
	}
	out := make([]SectionInfo, len(f.sections))
	for i, s := range f.sections {
		out[i] = SectionInfo{Kind: kinds[s.kind], Bytes: len(s.payload)}
	}
	return out
}

// validate checks the meta document against the sections: every column
// reference must exist with the right kind and length, so later
// accessors cannot fail and consumers can index within declared shapes
// without panicking.
func (f *File) validate() error {
	m := &f.Meta
	tuples := 0
	seen := make(map[string]bool, len(m.Relations))
	for i, rm := range m.Relations {
		if rm.Name == "" || seen[rm.Name] {
			return corrupt("relation %d: empty or duplicate name %q", i, rm.Name)
		}
		seen[rm.Name] = true
		if rm.Arity < 0 || rm.Rows < 0 {
			return corrupt("relation %q: negative shape", rm.Name)
		}
		want := rm.Rows * rm.Arity
		if rm.Arity == 0 {
			want = rm.Rows // nullary relations store one sentinel per tuple
		}
		if _, err := f.col(rm.Col, kindI64, want, "relation "+rm.Name); err != nil {
			return err
		}
		tuples += rm.Rows
	}
	if m.Tuples != tuples {
		return corrupt("meta claims %d tuples, relations hold %d", m.Tuples, tuples)
	}
	if m.Dict != nil {
		if err := f.decodeDict(); err != nil {
			return err
		}
	}
	for i := range m.Structures {
		if err := f.validateStructure(&m.Structures[i]); err != nil {
			return fmt.Errorf("structure %d: %w", i, err)
		}
	}
	for i, rm := range m.Registrations {
		if rm.Name == "" {
			return corrupt("registration %d: empty name", i)
		}
	}
	return nil
}

func (f *File) decodeDict() error {
	d := f.Meta.Dict
	if d.Count < 0 {
		return corrupt("dict: negative count")
	}
	blob, err := f.col(d.Blob, kindBytes, -1, "dict blob")
	if err != nil {
		return err
	}
	names := make([]string, 0, min(d.Count, len(blob)/4+1))
	for i := 0; i < d.Count; i++ {
		if len(blob) < 4 {
			return corrupt("dict: truncated at name %d", i)
		}
		n := binary.LittleEndian.Uint32(blob[:4])
		blob = blob[4:]
		if uint64(n) > uint64(len(blob)) {
			return corrupt("dict: name %d overruns blob", i)
		}
		names = append(names, string(blob[:n]))
		blob = blob[n:]
	}
	if len(blob) != 0 {
		return corrupt("dict: %d trailing blob bytes", len(blob))
	}
	f.dictNames = names
	return nil
}

func (f *File) validateStructure(sm *StructureMeta) error {
	if sm.NumVars < 0 || sm.NumVars > 64 {
		return corrupt("%d variables out of range", sm.NumVars)
	}
	switch sm.Kind {
	case KindLayeredLex:
		return f.validateLex(sm)
	case KindSum, KindMaterialized:
		if sm.Rows < 0 {
			return corrupt("negative row count")
		}
		if _, err := f.col(sm.AnswersCol, kindI64, sm.Rows*sm.NumVars, "answers"); err != nil {
			return err
		}
		if sm.Kind == KindSum || sm.WeightsCol != NoCol {
			if _, err := f.col(sm.WeightsCol, kindF64, sm.Rows, "weights"); err != nil {
				return err
			}
		}
		return nil
	default:
		return corrupt("unknown structure kind %q", sm.Kind)
	}
}

func (f *File) validateLex(sm *StructureMeta) error {
	if sm.Boolean {
		if len(sm.Layers) != 0 || len(sm.Completed) != 0 {
			return corrupt("boolean structure with layers")
		}
		return nil
	}
	if len(sm.Layers) != len(sm.Completed) {
		return corrupt("%d layers vs %d completed-order entries", len(sm.Layers), len(sm.Completed))
	}
	for i, e := range sm.Completed {
		if e.Var < 0 || e.Var >= sm.NumVars {
			return corrupt("completed-order entry %d: variable %d out of range", i, e.Var)
		}
	}
	for i := range sm.Layers {
		lm := &sm.Layers[i]
		what := fmt.Sprintf("layer %d", i)
		if lm.Var < 0 || lm.Var >= sm.NumVars {
			return corrupt("%s: variable %d out of range", what, lm.Var)
		}
		if (i == 0) != (lm.Parent == -1) || lm.Parent >= i || lm.Parent < -1 {
			return corrupt("%s: bad parent %d", what, lm.Parent)
		}
		for _, u := range lm.KeyVars {
			if u < 0 || u >= sm.NumVars {
				return corrupt("%s: key variable %d out of range", what, u)
			}
		}
		if lm.Buckets < 0 {
			return corrupt("%s: negative bucket count", what)
		}
		vals, err := f.col(lm.ValsCol, kindI64, -1, what+" vals")
		if err != nil {
			return err
		}
		n := len(vals) / 8
		if _, err := f.col(lm.WeightsCol, kindI64, n, what+" weights"); err != nil {
			return err
		}
		if _, err := f.col(lm.StartsCol, kindI64, n, what+" starts"); err != nil {
			return err
		}
		if _, err := f.col(lm.BucketStartCol, kindI64, lm.Buckets, what+" bucket starts"); err != nil {
			return err
		}
		if _, err := f.col(lm.BucketEndCol, kindI64, lm.Buckets, what+" bucket ends"); err != nil {
			return err
		}
		if _, err := f.col(lm.BucketWeightCol, kindI64, lm.Buckets, what+" bucket weights"); err != nil {
			return err
		}
		if _, err := f.col(lm.BucketKeysCol, kindI64, lm.Buckets*len(lm.KeyVars), what+" bucket keys"); err != nil {
			return err
		}
		if _, err := f.col(lm.BucketTableCol, kindI32, -1, what+" bucket table"); err != nil {
			return err
		}
	}
	return nil
}
