//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. ok is false when the platform or the
// file (e.g. empty) cannot be mapped and the caller should fall back to
// a plain read.
func mapFile(path string) (data []byte, un func() error, ok bool, err error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, nil, false, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, false, nil
	}
	data, err = syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Mapping can fail on exotic filesystems; fall back to reading.
		return nil, nil, false, nil
	}
	return data, func() error { return syscall.Munmap(data) }, true, nil
}
