package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// castagnoli is the CRC polynomial every section checksum uses
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// section is one kind-tagged payload; payloads alias caller or file
// memory and are never mutated.
type section struct {
	kind    uint32
	payload []byte
}

// Builder assembles a snapshot: callers add column sections and fill
// the Meta that references them by index, then WriteTo emits the file.
// Add relations, structures, and registrations in a deterministic
// order — the encoding is canonical, so equal inputs yield equal bytes.
type Builder struct {
	meta     Meta
	sections []section
}

// NewBuilder starts a snapshot for the given engine version and wall
// time (passed in so tests can pin it).
func NewBuilder(engineVersion uint64, createdUnixNano int64) *Builder {
	return &Builder{meta: Meta{EngineVersion: engineVersion, CreatedUnixNano: createdUnixNano}}
}

func (b *Builder) addSection(kind uint32, payload []byte) int {
	b.sections = append(b.sections, section{kind: kind, payload: payload})
	return len(b.sections) - 1
}

// I64Col adds an []int64 column and returns its section index. The
// slice is aliased, not copied; it must stay unchanged until WriteTo.
func (b *Builder) I64Col(xs []int64) int { return b.addSection(kindI64, i64Bytes(xs)) }

// I32Col adds an []int32 column.
func (b *Builder) I32Col(xs []int32) int { return b.addSection(kindI32, i32Bytes(xs)) }

// F64Col adds a []float64 column (raw IEEE bits).
func (b *Builder) F64Col(xs []float64) int { return b.addSection(kindF64, f64Bytes(xs)) }

// IntCol adds an []int column, stored as int64 elements.
func (b *Builder) IntCol(xs []int) int { return b.I64Col(intAsI64(xs)) }

// AddRelation records one relation over its flat tuple storage
// (stride arity; one sentinel value per tuple for arity 0).
func (b *Builder) AddRelation(name string, arity int, data []int64) {
	rows := len(data)
	if arity > 0 {
		rows = len(data) / arity
	}
	b.meta.Relations = append(b.meta.Relations, RelationMeta{
		Name: name, Arity: arity, Rows: rows, Col: b.I64Col(data),
	})
	b.meta.Tuples += rows
}

// SetDict records the value dictionary's names in code order.
func (b *Builder) SetDict(names []string) {
	var blob []byte
	for _, n := range names {
		blob = binary.LittleEndian.AppendUint32(blob, uint32(len(n)))
		blob = append(blob, n...)
	}
	b.meta.Dict = &DictMeta{Count: len(names), Blob: b.addSection(kindBytes, blob)}
}

// AddStructure records one built structure; its column references must
// have been created on this builder.
func (b *Builder) AddStructure(sm StructureMeta) {
	b.meta.Structures = append(b.meta.Structures, sm)
}

// AddRegistration records one prepared-query registration.
func (b *Builder) AddRegistration(name string, spec SpecMeta) {
	b.meta.Registrations = append(b.meta.Registrations, RegistrationMeta{Name: name, Spec: spec})
}

// WriteTo emits the snapshot: header, column sections, and the Meta
// JSON as the final section.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	metaJSON, err := json.Marshal(&b.meta)
	if err != nil {
		return 0, fmt.Errorf("snapshot: encoding meta: %w", err)
	}
	secs := make([]section, 0, len(b.sections)+1)
	secs = append(secs, b.sections...)
	secs = append(secs, section{kind: kindMeta, payload: metaJSON})
	return writeSections(w, hostFlags(), secs)
}

// Bytes is WriteTo into memory, for tests and fuzzing.
func (b *Builder) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func hostFlags() uint32 {
	if hostLittle() {
		return flagLittleEndian
	}
	return 0
}

var pad8 [8]byte

// writeSections writes the canonical encoding: the one Decode accepts
// and reproduces byte-for-byte.
func writeSections(w io.Writer, flags uint32, secs []section) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [fileHeaderLen]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(secs)))
	total := int64(0)
	if _, err := bw.Write(hdr[:]); err != nil {
		return total, err
	}
	total += fileHeaderLen
	var sh [secHeaderLen]byte
	for _, s := range secs {
		binary.LittleEndian.PutUint32(sh[0:4], s.kind)
		binary.LittleEndian.PutUint32(sh[4:8], crc32.Checksum(s.payload, castagnoli))
		binary.LittleEndian.PutUint64(sh[8:16], uint64(len(s.payload)))
		if _, err := bw.Write(sh[:]); err != nil {
			return total, err
		}
		total += secHeaderLen
		if _, err := bw.Write(s.payload); err != nil {
			return total, err
		}
		total += int64(len(s.payload))
		if pad := (8 - len(s.payload)%8) % 8; pad > 0 {
			if _, err := bw.Write(pad8[:pad]); err != nil {
				return total, err
			}
			total += int64(pad)
		}
	}
	return total, bw.Flush()
}
