package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotRoundTrip throws arbitrary bytes at the strict decoder.
// The invariants:
//
//  1. Decode never panics — truncated files, flipped bytes, wrong
//     versions, and hostile metas all fail with an error.
//  2. Any input Decode accepts re-encodes byte-identically (the
//     encoding is canonical and decoding strict, so accept ⇒ exact
//     round trip), and decoding the re-encoding accepts again.
func FuzzSnapshotRoundTrip(f *testing.F) {
	seed, err := buildSample().Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	empty, err := NewBuilder(0, 0).Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	// A few deterministic mutants of the valid seed steer the fuzzer at
	// interesting offsets (header, section headers, meta JSON).
	for _, off := range []int{0, 9, 13, 17, fileHeaderLen, fileHeaderLen + 5, len(seed) - 10} {
		mut := append([]byte(nil), seed...)
		mut[off] ^= 0x40
		f.Add(mut)
	}
	f.Add(seed[:fileHeaderLen])
	f.Add([]byte("RKASNAP1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		out, err := dec.Encode()
		if err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted input did not round-trip byte-identically (%d vs %d bytes)", len(out), len(data))
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-encoded output no longer decodes: %v", err)
		}
	})
}
