package classify

import (
	"strings"
	"testing"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
)

func lex(t *testing.T, q *cq.Query, s string) order.Lex {
	t.Helper()
	l, err := order.ParseLex(q, s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// Example 1.1, bullets 1–4 and 9–11: the 2-path query under various
// orders and projections.
func TestExample11Bullets(t *testing.T) {
	qFull := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")

	// LEX ⟨x,y,z⟩: direct access tractable.
	if v := DirectAccessLex(qFull, lex(t, qFull, "x, y, z")); !v.Tractable {
		t.Fatalf("⟨x,y,z⟩ must be tractable: %v", v)
	}
	// LEX ⟨x,z,y⟩: DA intractable (disruptive trio); selection tractable.
	v := DirectAccessLex(qFull, lex(t, qFull, "x, z, y"))
	if v.Tractable {
		t.Fatalf("⟨x,z,y⟩ must be intractable: %v", v)
	}
	if len(v.Trio) != 3 {
		t.Fatalf("expected a trio certificate, got %+v", v)
	}
	if s := SelectionLex(qFull, lex(t, qFull, "x, z, y")); !s.Tractable {
		t.Fatalf("selection by ⟨x,z,y⟩ must be tractable: %v", s)
	}
	// LEX ⟨x,z⟩ partial: DA intractable (not L-connex); selection tractable.
	v = DirectAccessLex(qFull, lex(t, qFull, "x, z"))
	if v.Tractable {
		t.Fatalf("⟨x,z⟩ must be intractable: %v", v)
	}
	if len(v.SPath) == 0 || !strings.Contains(v.Reason, "L-connex") {
		t.Fatalf("expected an L-path certificate, got %+v", v)
	}
	if s := SelectionLex(qFull, lex(t, qFull, "x, z")); !s.Tractable {
		t.Fatalf("selection by partial ⟨x,z⟩ must be tractable: %v", s)
	}

	// y projected away: selection intractable (not free-connex).
	qProj := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	if s := SelectionLex(qProj, lex(t, qProj, "x, z")); s.Tractable {
		t.Fatalf("selection for non-free-connex query must be intractable: %v", s)
	}

	// SUM x+y+z: DA intractable, selection tractable.
	if v := DirectAccessSum(qFull); v.Tractable {
		t.Fatalf("DA by SUM on the 2-path must be intractable: %v", v)
	}
	if s := SelectionSum(qFull); !s.Tractable {
		t.Fatalf("selection by SUM on the 2-path must be tractable: %v", s)
	}
	// SUM x+y with z projected: DA tractable (free vars inside R).
	qXY := cq.MustParse("Q(x, y) :- R(x, y), S(y, z)")
	if v := DirectAccessSum(qXY); !v.Tractable {
		t.Fatalf("DA by SUM with free vars in one atom must be tractable: %v", v)
	}
	// SUM x+z with y projected: selection intractable (not free-connex).
	if s := SelectionSum(qProj); s.Tractable {
		t.Fatalf("selection by SUM for non-free-connex query must be intractable: %v", s)
	}
}

// Example 1.1 FD bullets (and Example 8.14's spirit): the 2-path with
// LEX ⟨x,z,y⟩ under different FDs.
func TestExample11FDBullets(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	l := lex(t, q, "x, z, y")

	// FD R: y → x makes it tractable.
	if v, _ := DirectAccessLexFD(q, l, fd.MustParse(q, "R: y -> x")); !v.Tractable {
		t.Fatalf("FD R: y->x must make ⟨x,z,y⟩ tractable: %v", v)
	}
	// FD S: y → z makes it tractable.
	if v, _ := DirectAccessLexFD(q, l, fd.MustParse(q, "S: y -> z")); !v.Tractable {
		t.Fatalf("FD S: y->z must make ⟨x,z,y⟩ tractable: %v", v)
	}
	// FD R: x → y makes it tractable (order reorders to ⟨x,y,z⟩).
	v, w := DirectAccessLexFD(q, l, fd.MustParse(q, "R: x -> y"))
	if !v.Tractable {
		t.Fatalf("FD R: x->y must make ⟨x,z,y⟩ tractable: %v", v)
	}
	got := make([]string, len(w.LPlus.Entries))
	for i, e := range w.LPlus.Entries {
		got[i] = q.VarName(e.Var)
	}
	if strings.Join(got, ",") != "x,y,z" {
		t.Fatalf("L+ = %v, want x,y,z", got)
	}
	// FD S: z → y does not help.
	if v, _ := DirectAccessLexFD(q, l, fd.MustParse(q, "S: z -> y")); v.Tractable {
		t.Fatalf("FD S: z->y must not help: %v", v)
	}
	// No FDs at all: intractable.
	if v, _ := DirectAccessLexFD(q, l, nil); v.Tractable {
		t.Fatal("without FDs the trio must remain")
	}
}

// The introduction's epidemic example: Visits(person, age, city) ⋈
// Cases(city, date, cases).
func TestIntroVisitsCases(t *testing.T) {
	q := cq.MustParse("Q(person, age, city, date, cases) :- Visits(person, age, city), Cases(city, date, cases)")

	// (cases, age, city, date, person): disruptive trio cases/age/city.
	v := DirectAccessLex(q, lex(t, q, "cases, age, city, date, person"))
	if v.Tractable || len(v.Trio) != 3 {
		t.Fatalf("intro order must be intractable with a trio: %+v", v)
	}
	// Partial (cases, age): not L-connex.
	v = DirectAccessLex(q, lex(t, q, "cases, age"))
	if v.Tractable || !strings.Contains(v.Reason, "L-connex") {
		t.Fatalf("(cases, age) must fail L-connexity: %+v", v)
	}
	// (cases, city, age): tractable.
	if v := DirectAccessLex(q, lex(t, q, "cases, city, age")); !v.Tractable {
		t.Fatalf("(cases, city, age) must be tractable: %v", v)
	}
	// Descending directions do not change the classification.
	if v := DirectAccessLex(q, lex(t, q, "cases desc, city, age")); !v.Tractable {
		t.Fatalf("descending component must stay tractable: %v", v)
	}
	// SUM over all five attributes: intractable.
	if v := DirectAccessSum(q); v.Tractable {
		t.Fatalf("SUM on the join must be intractable: %v", v)
	}
	// The Cartesian-product variant from §5 is intractable by SUM even
	// though every full lexicographic order is tractable.
	qp := cq.MustParse("Q(c1, d, x, p, a, c2) :- Visits(p, a, c1), Cases(c2, d, x)")
	if v := DirectAccessSum(qp); v.Tractable {
		t.Fatalf("cross product by SUM must be intractable: %v", v)
	}
	if v := DirectAccessLex(qp, lex(t, qp, "c1, d, x, p, a, c2")); !v.Tractable {
		t.Fatalf("lexicographic order on the product must be tractable: %v", v)
	}
}

// Example 4.2: partial orders on the 2-path.
func TestExample42(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	if v := DirectAccessLex(q, lex(t, q, "x, y, z")); !v.Tractable {
		t.Fatal("⟨x,y,z⟩ tractable")
	}
	if v := DirectAccessLex(q, lex(t, q, "z, y")); !v.Tractable {
		t.Fatal("⟨z,y⟩ tractable")
	}
	if v := DirectAccessLex(q, lex(t, q, "x, z")); v.Tractable {
		t.Fatal("⟨x,z⟩ intractable")
	}
	if v := DirectAccessLex(q, lex(t, q, "x, z, y")); v.Tractable {
		t.Fatal("⟨x,z,y⟩ intractable")
	}
}

// §2.5 catalog: queries and orders unsupported by earlier structures but
// covered by the paper's algorithm.
func TestSection25Queries(t *testing.T) {
	cases := []struct {
		src, order string
	}{
		{"Q3(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)", "v1, v2, v3, v4"},
		{"Q4(v1, v2, v3) :- R1(v1, v2), R2(v2, v3)", "v1, v2, v3"},
		{"Q5(v1, v2, v3, v4, v5) :- R1(v1, v3), R2(v3, v4), R3(v2, v5)", "v1, v2, v3, v4, v5"},
		{"Q6(v1, v2, v3, v4, v5) :- R1(v1, v2, v4), R2(v2, v3, v5)", "v1, v2, v3, v4, v5"},
		{"Q1(x, y) :- R1(x), R2(x, y), R3(y)", "x, y"},
		{"Q2(x) :- R1(x, y), R2(y)", "x"},
	}
	for _, c := range cases {
		q := cq.MustParse(c.src)
		if v := DirectAccessLex(q, lex(t, q, c.order)); !v.Tractable {
			t.Errorf("%s with ⟨%s⟩ must be tractable: %v", c.src, c.order, v)
		}
	}
}

// Example 3.1 / Theorem 3.3 hard side: the layered order with the join
// variable last.
func TestExample31(t *testing.T) {
	q := cq.MustParse("Q(v1, v2, v3) :- R(v1, v3), S(v3, v2)")
	v := DirectAccessLex(q, lex(t, q, "v1, v2, v3"))
	if v.Tractable || len(v.Trio) != 3 {
		t.Fatalf("Example 3.1 order must be intractable with a trio: %+v", v)
	}
}

// Example 7.4: fmh-based SUM selection classification.
func TestExample74(t *testing.T) {
	q2 := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	if v := SelectionSum(q2); !v.Tractable {
		t.Fatalf("2-path selection by SUM tractable: %v", v)
	}
	q3proj := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, u)")
	if v := SelectionSum(q3proj); !v.Tractable {
		t.Fatalf("3-path with u projected must be tractable (fmh = 2): %v", v)
	}
	q3 := cq.MustParse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)")
	if v := SelectionSum(q3); v.Tractable {
		t.Fatalf("full 3-path selection by SUM must be intractable: %v", v)
	}
	// Certificate: chordless 4-path.
	if v := SelectionSum(q3); len(v.SPath) != 4 {
		t.Fatalf("expected chordless 4-path certificate: %+v", v)
	}
}

// SUM direct access classification and α_free-dependent refuted bounds
// (Figure 8 rows).
func TestFig8Rows(t *testing.T) {
	// α_free = 1: tractable.
	q1 := cq.MustParse("Q(x, y) :- R(x, y), S(y, z)")
	if v := DirectAccessSum(q1); !v.Tractable {
		t.Fatalf("α=1 row: %v", v)
	}
	// α_free = 2 row: ⟨n^(2-ε), n^(1-ε)⟩ refuted.
	q2 := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, u)")
	v := DirectAccessSum(q2)
	if v.Tractable || !strings.Contains(v.Bound, "n^(1-ε)") {
		t.Fatalf("α=2 row: %+v", v)
	}
	// α_free = 3 row: ⟨n^(2-ε), n^(2-ε)⟩ refuted.
	q3 := cq.MustParse("Q(x, y, z) :- R(x), S(y), T(z)")
	v = DirectAccessSum(q3)
	if v.Tractable || !strings.Contains(v.Bound, "n^(2-ε)") {
		t.Fatalf("α=3 row: %+v", v)
	}
	// Cyclic row.
	qc := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	v = DirectAccessSum(qc)
	if v.Tractable || v.Hypotheses[0] != "HYPERCLIQUE" {
		t.Fatalf("cyclic row: %+v", v)
	}
}

// Example 8.3: FDs can turn non-free-connex and even cyclic queries
// tractable.
func TestExample83Classify(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	fds := fd.MustParse(q, "S: y -> z")
	// Without FDs: selection intractable.
	if v := SelectionLex(q, lex(t, q, "x, z")); v.Tractable {
		t.Fatal("without FDs Q2P must be intractable")
	}
	// With the FD: everything becomes tractable.
	if v, _ := SelectionLexFD(q, lex(t, q, "x, z"), fds); !v.Tractable {
		t.Fatalf("selection with FD: %v", v)
	}
	if v, _ := DirectAccessLexFD(q, lex(t, q, "x, z"), fds); !v.Tractable {
		t.Fatalf("DA with FD: %v", v)
	}
	if v, _ := DirectAccessSumFD(q, fds); !v.Tractable {
		t.Fatalf("DA by SUM with FD: %v", v)
	}
	if v, _ := SelectionSumFD(q, fds); !v.Tractable {
		t.Fatalf("selection by SUM with FD: %v", v)
	}

	// Triangle with FD S: y → z: acyclic extension, R⁺ covers everything.
	qt := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	fdt := fd.MustParse(qt, "S: y -> z")
	if v := DirectAccessSum(qt); v.Tractable {
		t.Fatal("triangle without FDs is cyclic")
	}
	if v, _ := DirectAccessSumFD(qt, fdt); !v.Tractable {
		t.Fatalf("triangle with FD must be tractable: %v", v)
	}
}

// Example 8.19: Q(v1,v2) :- R(v1,v3), S(v3,v2) with S: v2 → v3 and
// L = ⟨v1,v2⟩. The reordered extension has the trio v1, v2, v3, and the
// paper proves this case is intractable (Lemma 8.20).
func TestExample819Classify(t *testing.T) {
	q := cq.MustParse("Q(v1, v2) :- R(v1, v3), S(v3, v2)")
	fds := fd.MustParse(q, "S: v2 -> v3")
	v, w := DirectAccessLexFD(q, lex(t, q, "v1, v2"), fds)
	if v.Tractable {
		t.Fatalf("Example 8.19 must be intractable: %v", v)
	}
	if len(v.Trio) != 3 {
		t.Fatalf("expected trio certificate on the reordered extension: %+v", v)
	}
	names := make([]string, len(w.LPlus.Entries))
	for i, e := range w.LPlus.Entries {
		names[i] = q.VarName(e.Var)
	}
	if strings.Join(names, ",") != "v1,v2,v3" {
		t.Fatalf("L+ = %v", names)
	}
	// Selection, by contrast, becomes tractable: Q⁺ is free-connex.
	if s, _ := SelectionLexFD(q, lex(t, q, "v1, v2"), fds); !s.Tractable {
		t.Fatalf("selection for Example 8.19 must be tractable: %v", s)
	}
}

// Self-join caveat: hardness verdicts on queries with self-joins carry
// the caveat flag.
func TestSelfJoinCaveat(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), R(y, z)")
	v := DirectAccessLex(q, lex(t, q, "x, z, y"))
	if v.Tractable || !v.SelfJoinCaveat {
		t.Fatalf("self-join hard verdict must carry caveat: %+v", v)
	}
	// Tractable verdicts don't need the caveat.
	v = DirectAccessLex(q, lex(t, q, "x, y, z"))
	if !v.Tractable || v.SelfJoinCaveat {
		t.Fatalf("tractable self-join verdict: %+v", v)
	}
}

func TestVerdictString(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	v := DirectAccessLex(q, lex(t, q, "x, z, y"))
	s := v.String()
	if !strings.Contains(s, "INTRACTABLE") || !strings.Contains(s, "sparseBMM") {
		t.Fatalf("verdict string = %q", s)
	}
	v = DirectAccessLex(q, lex(t, q, "x, y, z"))
	if !strings.Contains(v.String(), "TRACTABLE") {
		t.Fatalf("verdict string = %q", v.String())
	}
}

// Boolean queries: trivially tractable everywhere when acyclic.
func TestBooleanQueries(t *testing.T) {
	q := cq.MustParse("Q() :- R(x, y), S(y, z)")
	if v := DirectAccessLex(q, order.Lex{}); !v.Tractable {
		t.Fatalf("Boolean acyclic DA: %v", v)
	}
	if v := DirectAccessSum(q); !v.Tractable {
		t.Fatalf("Boolean acyclic DA-SUM: %v", v)
	}
	if v := SelectionSum(q); !v.Tractable {
		t.Fatalf("Boolean acyclic selection-SUM: %v", v)
	}
	qc := cq.MustParse("Q() :- R(x, y), S(y, z), T(z, x)")
	if v := DirectAccessLex(qc, order.Lex{}); v.Tractable {
		t.Fatalf("Boolean cyclic DA must be intractable: %v", v)
	}
}

func TestInvalidOrderVerdicts(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	y, _ := q.VarByName("y")
	bad := order.NewLex(y)
	if v := DirectAccessLex(q, bad); v.Tractable || !strings.Contains(v.Reason, "invalid order") {
		t.Fatalf("invalid order verdict: %+v", v)
	}
	if v := SelectionLex(q, bad); v.Tractable || !strings.Contains(v.Reason, "invalid order") {
		t.Fatalf("invalid order verdict: %+v", v)
	}
}
