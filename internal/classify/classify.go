// Package classify implements the paper's decidable dichotomies. Given a
// CQ, an order (LEX or SUM), and optionally a set of unary FDs, it
// decides whether ranked direct access / selection meets the paper's
// tractability yardstick, and produces the certificate the corresponding
// hardness proof is built from when it does not.
//
//   - Theorem 3.3 / 4.1: direct access by (partial) LEX is tractable in
//     ⟨n log n, log n⟩ iff the CQ is free-connex, L-connex, and has no
//     disruptive trio w.r.t. L.
//   - Theorem 6.1: selection by LEX is tractable in ⟨1, n⟩ iff the CQ is
//     free-connex.
//   - Theorem 5.1: direct access by SUM is tractable in ⟨n log n, 1⟩ iff
//     the CQ is acyclic and one atom contains all free variables.
//   - Theorem 7.3: selection by SUM is tractable in ⟨1, n log n⟩ iff the
//     CQ is free-connex and fmh(Q) ≤ 2.
//   - Theorems 8.9/8.10/8.21/8.22: with unary FDs, the same criteria
//     applied to the FD-extension Q⁺ and the FD-reordered order L⁺.
//
// Intractability statements assume the paper's fine-grained hypotheses
// and, for the hard side, self-join-freeness; verdicts carry both caveats.
package classify

import (
	"fmt"
	"strings"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/hypergraph"
	"rankedaccess/internal/order"
)

// Verdict is the outcome of one classification.
type Verdict struct {
	// Tractable reports the side of the dichotomy.
	Tractable bool
	// Bound is the complexity guarantee ⟨preprocessing, access⟩ on the
	// tractable side, or the refuted bound on the intractable side.
	Bound string
	// Reason explains the verdict in terms of the paper's criteria.
	Reason string
	// Hypotheses lists the fine-grained hypotheses the hard side relies on.
	Hypotheses []string
	// SelfJoinCaveat is set when the query has self-joins and the verdict
	// is "intractable": the paper's hardness proofs require
	// self-join-freeness, so hardness is conjectured, not proven.
	SelfJoinCaveat bool

	// Optional certificates (nil/empty when not applicable):
	// Trio is a disruptive trio (variable names).
	Trio []string
	// SPath is a free-path or L-path witnessing non-connexity.
	SPath []string
}

func (v Verdict) String() string {
	side := "TRACTABLE"
	if !v.Tractable {
		side = "INTRACTABLE"
	}
	s := fmt.Sprintf("%s %s: %s", side, v.Bound, v.Reason)
	if len(v.Hypotheses) > 0 {
		s += " [assuming " + strings.Join(v.Hypotheses, ", ") + "]"
	}
	if v.SelfJoinCaveat {
		s += " (query has self-joins: hardness side not proven by the paper)"
	}
	return s
}

// structure bundles the hypergraph views used by all criteria.
type structure struct {
	h    hypergraph.Hypergraph
	free hypergraph.VSet
}

func structOf(q *cq.Query) structure {
	return structure{h: hypergraph.New(q.EdgeSets()), free: q.Free()}
}

func (s structure) acyclic() bool    { return s.h.Acyclic() }
func (s structure) freeConnex() bool { return s.h.SConnex(s.free) }

func names(q *cq.Query, ids []int) []string {
	out := make([]string, len(ids))
	for i, v := range ids {
		out[i] = q.VarName(cq.VarID(v))
	}
	return out
}

func lexIDs(l order.Lex) []int {
	out := make([]int, len(l.Entries))
	for i, e := range l.Entries {
		out[i] = int(e.Var)
	}
	return out
}

func caveat(q *cq.Query) bool { return !q.IsSelfJoinFree() }

// DirectAccessLex classifies direct access by a (possibly partial)
// lexicographic order (Theorems 3.3 and 4.1).
func DirectAccessLex(q *cq.Query, l order.Lex) Verdict {
	if err := l.Validate(q); err != nil {
		return Verdict{Bound: "-", Reason: "invalid order: " + err.Error()}
	}
	s := structOf(q)
	if !s.acyclic() {
		return Verdict{
			Bound:      "⟨n polylog n, polylog n⟩",
			Reason:     "the query is cyclic; even Boolean evaluation is super-quasilinear",
			Hypotheses: []string{"HYPERCLIQUE"}, SelfJoinCaveat: caveat(q),
		}
	}
	if !s.freeConnex() {
		path := s.h.FindSPath(s.free)
		return Verdict{
			Bound:      "⟨n polylog n, polylog n⟩",
			Reason:     "the query is acyclic but not free-connex; enumeration is already hard",
			Hypotheses: []string{"sparseBMM"}, SelfJoinCaveat: caveat(q),
			SPath: names(q, path),
		}
	}
	lset := hypergraph.VSet(l.VarSet())
	if !s.h.SConnex(lset) {
		path := s.h.FindSPath(lset)
		return Verdict{
			Bound:      "⟨n polylog n, polylog n⟩",
			Reason:     "the query is not L-connex for the partial order L",
			Hypotheses: []string{"sparseBMM"}, SelfJoinCaveat: caveat(q),
			SPath: names(q, path),
		}
	}
	if trio, found := s.h.FindDisruptiveTrio(lexIDs(l)); found {
		return Verdict{
			Bound:      "⟨n polylog n, polylog n⟩",
			Reason:     "disruptive trio with respect to L",
			Hypotheses: []string{"sparseBMM"}, SelfJoinCaveat: caveat(q),
			Trio: names(q, []int{trio.V1, trio.V2, trio.V3}),
		}
	}
	return Verdict{
		Tractable: true,
		Bound:     "⟨n log n, log n⟩",
		Reason:    "free-connex, L-connex, and no disruptive trio w.r.t. L",
	}
}

// SelectionLex classifies selection by a lexicographic order
// (Theorem 6.1): the order itself is irrelevant; only free-connexity
// matters.
func SelectionLex(q *cq.Query, l order.Lex) Verdict {
	if err := l.Validate(q); err != nil {
		return Verdict{Bound: "-", Reason: "invalid order: " + err.Error()}
	}
	s := structOf(q)
	if !s.acyclic() {
		return Verdict{
			Bound:      "⟨1, n polylog n⟩",
			Reason:     "the query is cyclic",
			Hypotheses: []string{"HYPERCLIQUE"}, SelfJoinCaveat: caveat(q),
		}
	}
	if !s.freeConnex() {
		path := s.h.FindSPath(s.free)
		return Verdict{
			Bound:      "⟨1, n polylog n⟩",
			Reason:     "the query is acyclic but not free-connex; counting is already hard",
			Hypotheses: []string{"SETH"}, SelfJoinCaveat: caveat(q),
			SPath: names(q, path),
		}
	}
	return Verdict{
		Tractable: true,
		Bound:     "⟨1, n⟩",
		Reason:    "free-connex (selection by LEX is tractable for every lexicographic order)",
	}
}

// DirectAccessSum classifies direct access by SUM (Theorem 5.1).
func DirectAccessSum(q *cq.Query) Verdict {
	s := structOf(q)
	if !s.acyclic() {
		return Verdict{
			Bound:      "⟨n polylog n, polylog n⟩",
			Reason:     "the query is cyclic",
			Hypotheses: []string{"HYPERCLIQUE"}, SelfJoinCaveat: caveat(q),
		}
	}
	for _, e := range s.h.Edges {
		if hypergraph.Subset(s.free, e) {
			return Verdict{
				Tractable: true,
				Bound:     "⟨n log n, 1⟩",
				Reason:    "acyclic and one atom contains all free variables (α_free ≤ 1)",
			}
		}
	}
	alpha := hypergraph.Card(s.h.MaxIndependent(s.free))
	bound := "⟨n^(2-ε), n^(1-ε)⟩"
	if alpha >= 3 {
		bound = "⟨n^(2-ε), n^(2-ε)⟩"
	}
	return Verdict{
		Bound: bound,
		Reason: fmt.Sprintf("no atom contains all free variables (α_free = %d ≥ 2); "+
			"direct access would solve 3SUM subquadratically", alpha),
		Hypotheses: []string{"3SUM"}, SelfJoinCaveat: caveat(q),
	}
}

// SelectionSum classifies selection by SUM (Theorem 7.3).
func SelectionSum(q *cq.Query) Verdict {
	s := structOf(q)
	if !s.acyclic() {
		return Verdict{
			Bound:      "⟨1, n polylog n⟩",
			Reason:     "the query is cyclic",
			Hypotheses: []string{"HYPERCLIQUE"}, SelfJoinCaveat: caveat(q),
		}
	}
	if !s.freeConnex() {
		path := s.h.FindSPath(s.free)
		return Verdict{
			Bound:      "⟨1, n polylog n⟩",
			Reason:     "the query is acyclic but not free-connex",
			Hypotheses: []string{"SETH"}, SelfJoinCaveat: caveat(q),
			SPath: names(q, path),
		}
	}
	fmh := s.h.Restrict(s.free).MH()
	if fmh <= 2 {
		return Verdict{
			Tractable: true,
			Bound:     "⟨1, n log n⟩",
			Reason:    fmt.Sprintf("free-connex with fmh = %d ≤ 2 (sorted-matrix selection applies)", fmh),
		}
	}
	v := Verdict{
		Bound:      "⟨1, n polylog n⟩",
		Reason:     fmt.Sprintf("fmh = %d > 2 free-maximal hyperedges", fmh),
		Hypotheses: []string{"3SUM", "HYPERCLIQUE"}, SelfJoinCaveat: caveat(q),
	}
	// Certificate per Lemma 7.12: α_free ≥ 3, or a chordless 4-path in
	// the contraction of the free-restricted hypergraph.
	alpha := hypergraph.Card(s.h.MaxIndependent(s.free))
	if alpha >= 3 {
		v.Reason += fmt.Sprintf("; α_free = %d ≥ 3", alpha)
	} else if p := s.h.Restrict(s.free).FindChordlessPath4(); p != nil {
		v.SPath = names(q, p)
		v.Reason += "; chordless 4-path " + strings.Join(v.SPath, "–")
	}
	return v
}

// WithFDs bundles the FD-extension artifacts used by the §8 dichotomies.
type WithFDs struct {
	Ext *fd.Extension
	// LPlus is the FD-reordered order (only for LEX problems).
	LPlus order.Lex
}

// DirectAccessLexFD classifies direct access by LEX under unary FDs
// (Theorem 8.21): the criteria of Theorem 4.1 applied to Q⁺ and L⁺.
func DirectAccessLexFD(q *cq.Query, l order.Lex, fds fd.Set) (Verdict, WithFDs) {
	ext := fd.Extend(q, fds)
	lp := ext.ReorderLex(l)
	v := DirectAccessLex(ext.Query, lp)
	v.Reason = "on the FD-extension Q⁺ with reordered order L⁺: " + v.Reason
	return v, WithFDs{Ext: ext, LPlus: lp}
}

// SelectionLexFD classifies selection by LEX under unary FDs
// (Theorem 8.22): free-connexity of Q⁺.
func SelectionLexFD(q *cq.Query, l order.Lex, fds fd.Set) (Verdict, WithFDs) {
	ext := fd.Extend(q, fds)
	lp := ext.ReorderLex(l)
	v := SelectionLex(ext.Query, lp)
	v.Reason = "on the FD-extension Q⁺: " + v.Reason
	return v, WithFDs{Ext: ext, LPlus: lp}
}

// DirectAccessSumFD classifies direct access by SUM under unary FDs
// (Theorem 8.9): the criterion of Theorem 5.1 applied to Q⁺.
func DirectAccessSumFD(q *cq.Query, fds fd.Set) (Verdict, WithFDs) {
	ext := fd.Extend(q, fds)
	v := DirectAccessSum(ext.Query)
	v.Reason = "on the FD-extension Q⁺: " + v.Reason
	return v, WithFDs{Ext: ext}
}

// SelectionSumFD classifies selection by SUM under unary FDs
// (Theorem 8.10): the criterion of Theorem 7.3 applied to Q⁺.
func SelectionSumFD(q *cq.Query, fds fd.Set) (Verdict, WithFDs) {
	ext := fd.Extend(q, fds)
	v := SelectionSum(ext.Query)
	v.Reason = "on the FD-extension Q⁺: " + v.Reason
	return v, WithFDs{Ext: ext}
}
