package workload

import (
	"math/rand"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/order"
	"rankedaccess/internal/selection"
)

func TestTwoPathShape(t *testing.T) {
	q, in := TwoPath(rand.New(rand.NewSource(1)), 100, 20, 0)
	if in.Relation("R").Len() != 100 || in.Relation("S").Len() != 100 {
		t.Fatalf("relation sizes: %d, %d", in.Relation("R").Len(), in.Relation("S").Len())
	}
	l, _ := order.ParseLex(q, "x, y, z")
	la, err := access.BuildLex(q, in, l)
	if err != nil {
		t.Fatal(err)
	}
	if la.Total() == 0 {
		t.Fatal("2-path workload produced no answers (join domain too sparse?)")
	}
}

func TestKPath(t *testing.T) {
	q, in := KPath(rand.New(rand.NewSource(2)), 3, 50, 8, 0.5)
	if len(q.Atoms) != 3 || len(q.Head) != 4 {
		t.Fatalf("query shape: %s", q.String())
	}
	if in.Size() != 150 {
		t.Fatalf("size = %d", in.Size())
	}
	l, _ := order.ParseLex(q, "x0, x1, x2, x3")
	if v := classify.DirectAccessLex(q, l); !v.Tractable {
		t.Fatalf("path order must be tractable: %v", v)
	}
}

func TestEpidemic(t *testing.T) {
	q, in := Epidemic(rand.New(rand.NewSource(3)), 200, 100, 50, 10, 500)
	if in.Relation("Visits").Len() != 200 || in.Relation("Cases").Len() != 100 {
		t.Fatal("epidemic sizes")
	}
	// Each person has a single age (sanity of the generator).
	ages := map[int64]int64{}
	v := in.Relation("Visits")
	for i := 0; i < v.Len(); i++ {
		tu := v.Tuple(i)
		if prev, ok := ages[tu[0]]; ok && prev != tu[1] {
			t.Fatal("person with two ages")
		}
		ages[tu[0]] = tu[1]
	}
	l, _ := order.ParseLex(q, "cases, city, age")
	if _, err := access.BuildLex(q, in, l); err != nil {
		t.Fatal(err)
	}
}

func TestEpidemicUniqueCity(t *testing.T) {
	_, in := EpidemicUniqueCity(rand.New(rand.NewSource(4)), 100, 30, 12, 300)
	seen := map[int64]bool{}
	c := in.Relation("Cases")
	for i := 0; i < c.Len(); i++ {
		city := c.Tuple(i)[0]
		if seen[city] {
			t.Fatal("city repeats in Cases")
		}
		seen[city] = true
	}
}

func TestProductSelection(t *testing.T) {
	q, in, w := Product(rand.New(rand.NewSource(5)), 30)
	// 30×30 product: selection by SUM must work (fmh = 2).
	a, err := selection.SelectSum(q, in, w, 450) // median-ish
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("nil answer")
	}
}

func TestThreeSumInstance(t *testing.T) {
	a, b, c := RandomThreeSum(rand.New(rand.NewSource(6)), 20, true)
	q, in, w := ThreeSumInstance(a, b, c)
	if v := classify.DirectAccessSum(q); v.Tractable {
		t.Fatal("triple product must be DA-SUM intractable")
	}
	// Selection by SUM is also intractable (fmh = 3); verified by the
	// classifier.
	if v := classify.SelectionSum(q); v.Tractable {
		t.Fatal("triple product must be selection-SUM intractable")
	}
	_ = in
	_ = w
}

func TestExample53Instance(t *testing.T) {
	q, in, w := Example53Instance(5)
	// 25 answers with all (x, z) weight combinations.
	got := map[float64]bool{}
	for x := 1; x <= 5; x++ {
		for z := 1; z <= 5; z++ {
			got[float64(x+z)] = true
		}
	}
	// Selection by SUM is tractable here (fmh = 2 after projection of u).
	cnt := 0
	for k := int64(0); k < 25; k++ {
		a, err := selection.SelectSum(q, in, w, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !got[w.AnswerWeight(q, a)] {
			t.Fatalf("unexpected weight %v", w.AnswerWeight(q, a))
		}
		cnt++
	}
	if cnt != 25 {
		t.Fatalf("selected %d answers", cnt)
	}
}

func TestStar(t *testing.T) {
	q, in := Star(rand.New(rand.NewSource(7)), 3, 40, 10)
	l, _ := order.ParseLex(q, "c, l1, l2, l3")
	if v := classify.DirectAccessLex(q, l); !v.Tractable {
		t.Fatalf("star with center-first order: %v", v)
	}
	// Leaf-first orders have a disruptive trio (l1, l2 via c).
	l2, _ := order.ParseLex(q, "l1, l2, c, l3")
	if v := classify.DirectAccessLex(q, l2); v.Tractable {
		t.Fatal("leaf-first star order must be intractable")
	}
	if v := classify.DirectAccessSum(q); v.Tractable {
		t.Fatal("star by SUM must be intractable")
	}
	_ = in
}

func TestSingleAtomCover(t *testing.T) {
	q, in, w := SingleAtomCover(rand.New(rand.NewSource(8)), 60, 10)
	sa, err := access.BuildSum(q, in, w)
	if err != nil {
		t.Fatal(err)
	}
	// Weights must be non-decreasing.
	var prev float64
	for k := int64(0); k < sa.Total(); k++ {
		wk, _ := sa.WeightAt(k)
		if k > 0 && wk < prev {
			t.Fatal("weights not sorted")
		}
		prev = wk
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	z := NewZipf(rng, 100, 2.0)
	counts := map[int64]int{}
	for i := 0; i < 5000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] < counts[50] {
		t.Fatal("zipf skew absent: rank 0 should dominate rank 50")
	}
	u := NewZipf(rng, 100, 0)
	seen := map[int64]bool{}
	for i := 0; i < 5000; i++ {
		seen[u.Draw()] = true
	}
	if len(seen) < 80 {
		t.Fatalf("uniform sampler covered only %d values", len(seen))
	}
}
