// Package workload generates the synthetic queries and databases used by
// the benchmark harness and the examples: path queries with controllable
// join fan-out and skew, the introduction's epidemic join, the
// Cartesian-product queries of §2.5/§5, and the 3SUM-style constructions
// of Lemmas 5.7/5.8 that witness the hardness side of Figure 8.
package workload

import (
	"math/rand"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// Zipf draws values in [0, n) with the given skew (s = 0 degenerates to
// uniform). A thin wrapper over math/rand's bounded Zipf generator.
type Zipf struct {
	z   *rand.Zipf
	rng *rand.Rand
	n   int64
}

// NewZipf builds a sampler over [0, n) with exponent s ≥ 0.
func NewZipf(rng *rand.Rand, n int64, s float64) *Zipf {
	if s <= 0 {
		return &Zipf{rng: rng, n: n}
	}
	// rand.NewZipf requires s > 1; squash (0, 1] into a mild skew.
	if s <= 1 {
		s = 1.0001 + s/4
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1)), rng: rng, n: n}
}

// Draw samples one value.
func (z *Zipf) Draw() values.Value {
	if z.z == nil {
		return values.Value(z.rng.Int63n(z.n))
	}
	return values.Value(z.z.Uint64())
}

// TwoPath generates the 2-path query Q(x, y, z) :- R(x, y), S(y, z) with
// n tuples per relation over a join domain of size dom for y and value
// domains of size dom for x and z, with Zipf skew on the join attribute.
func TwoPath(rng *rand.Rand, n, dom int, skew float64) (*cq.Query, *database.Instance) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	in := database.NewInstance()
	zy := NewZipf(rng, int64(dom), skew)
	for i := 0; i < n; i++ {
		in.AddRow("R", values.Value(rng.Int63n(int64(dom))), zy.Draw())
		in.AddRow("S", zy.Draw(), values.Value(rng.Int63n(int64(dom))))
	}
	return q, in
}

// KPath generates the k-path query
// Q(x0, ..., xk) :- R1(x0, x1), ..., Rk(x(k-1), xk), full head, with n
// tuples per relation.
func KPath(rng *rand.Rand, k, n, dom int, skew float64) (*cq.Query, *database.Instance) {
	q := cq.NewQuery("Q")
	varName := func(i int) string { return "x" + itoa(i) }
	head := make([]string, k+1)
	for i := 0; i <= k; i++ {
		head[i] = varName(i)
	}
	for i := 1; i <= k; i++ {
		q.AddAtom("R"+itoa(i), varName(i-1), varName(i))
	}
	q.SetHead(head...)
	in := database.NewInstance()
	z := NewZipf(rng, int64(dom), skew)
	for i := 1; i <= k; i++ {
		for t := 0; t < n; t++ {
			in.AddRow("R"+itoa(i), z.Draw(), z.Draw())
		}
	}
	return q, in
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// Epidemic generates the introduction's Visits ⋈ Cases scenario:
//
//	Q(person, age, city, date, cases) :-
//	    Visits(person, age, city), Cases(city, date, cases)
//
// with nVisits visit rows over nPeople people and nCities cities, and
// nCases case reports. Ages are 1..100, case counts 0..maxCases.
func Epidemic(rng *rand.Rand, nVisits, nCases, nPeople, nCities, maxCases int) (*cq.Query, *database.Instance) {
	q := cq.MustParse("Q(person, age, city, date, cases) :- Visits(person, age, city), Cases(city, date, cases)")
	in := database.NewInstance()
	age := make(map[values.Value]values.Value, nPeople)
	for i := 0; i < nVisits; i++ {
		p := values.Value(rng.Int63n(int64(nPeople)))
		if _, ok := age[p]; !ok {
			age[p] = values.Value(1 + rng.Int63n(100))
		}
		in.AddRow("Visits", p, age[p], values.Value(rng.Int63n(int64(nCities))))
	}
	for i := 0; i < nCases; i++ {
		in.AddRow("Cases",
			values.Value(rng.Int63n(int64(nCities))),
			values.Value(20200101+rng.Int63n(365)),
			values.Value(rng.Int63n(int64(maxCases+1))))
	}
	return q, in
}

// EpidemicUniqueCity is the Epidemic workload restricted so that each
// city occurs at most once in Cases — the integrity constraint under
// which the introduction's order (#cases, age, ...) becomes tractable
// (the FD Cases: city → date, cases).
func EpidemicUniqueCity(rng *rand.Rand, nVisits, nPeople, nCities, maxCases int) (*cq.Query, *database.Instance) {
	q, in := Epidemic(rng, nVisits, 0, nPeople, nCities, maxCases)
	for c := 0; c < nCities; c++ {
		in.AddRow("Cases",
			values.Value(c),
			values.Value(20200101+rng.Int63n(365)),
			values.Value(rng.Int63n(int64(maxCases+1))))
	}
	return q, in
}

// Product generates the Cartesian-product query Q(x, y) :- R(x), S(y)
// ("X + Y") with n tuples per side and weights equal to the values.
func Product(rng *rand.Rand, n int) (*cq.Query, *database.Instance, order.Sum) {
	q := cq.MustParse("Q(x, y) :- R(x), S(y)")
	in := database.NewInstance()
	seenR := map[values.Value]bool{}
	seenS := map[values.Value]bool{}
	for len(seenR) < n {
		v := values.Value(rng.Int63n(int64(n) * 10))
		if !seenR[v] {
			seenR[v] = true
			in.AddRow("R", v)
		}
	}
	for len(seenS) < n {
		v := values.Value(rng.Int63n(int64(n) * 10))
		if !seenS[v] {
			seenS[v] = true
			in.AddRow("S", v)
		}
	}
	return q, in, order.IdentitySum(q.Head...)
}

// ThreeSumInstance encodes a 3SUM instance (A, B, C) into a query and
// database per the reduction of Lemma 5.7. The paper's construction
// applies to any query with three independent free variables; the
// simplest carrier is the triple product Q(x, y, z) :- R(x), S(y), T(z).
// Values are indices 0..n-1; the weight of index i under x/y/z is
// A[i]/B[i]/C[i]. A zero-weight answer exists iff the 3SUM instance has a
// solution.
func ThreeSumInstance(a, b, c []float64) (*cq.Query, *database.Instance, order.Sum) {
	q := cq.MustParse("Q(x, y, z) :- R(x), S(y), T(z)")
	in := database.NewInstance()
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	z, _ := q.VarByName("z")
	tx := map[values.Value]float64{}
	ty := map[values.Value]float64{}
	tz := map[values.Value]float64{}
	for i, v := range a {
		in.AddRow("R", values.Value(i))
		tx[values.Value(i)] = v
	}
	for i, v := range b {
		in.AddRow("S", values.Value(i))
		ty[values.Value(i)] = v
	}
	for i, v := range c {
		in.AddRow("T", values.Value(i))
		tz[values.Value(i)] = v
	}
	w := order.TableSum(map[cq.VarID]map[values.Value]float64{x: tx, y: ty, z: tz})
	return q, in, w
}

// Example53Instance builds the database of Example 5.3 for the 3-path
// query with projections: R = [1,n]×{0}, S = {0}×[1,n], T = [1,n]×{0},
// giving exactly the n² (x, z) weight combinations.
func Example53Instance(n int) (*cq.Query, *database.Instance, order.Sum) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, u)")
	in := database.NewInstance()
	for i := 1; i <= n; i++ {
		in.AddRow("R", values.Value(i), 0)
		in.AddRow("S", 0, values.Value(i))
		in.AddRow("T", values.Value(i), 0)
	}
	x, _ := q.VarByName("x")
	z, _ := q.VarByName("z")
	return q, in, order.IdentitySum(x, z)
}

// Star generates a star query Q(c, l1, ..., lk) :- R1(c, l1), ...,
// Rk(c, lk) with n tuples per relation: every lexicographic order
// starting with c is tractable; SUM direct access is not (for k ≥ 2).
func Star(rng *rand.Rand, k, n, dom int) (*cq.Query, *database.Instance) {
	q := cq.NewQuery("Q")
	head := []string{"c"}
	for i := 1; i <= k; i++ {
		leaf := "l" + itoa(i)
		q.AddAtom("R"+itoa(i), "c", leaf)
		head = append(head, leaf)
	}
	q.SetHead(head...)
	in := database.NewInstance()
	for i := 1; i <= k; i++ {
		for t := 0; t < n; t++ {
			in.AddRow("R"+itoa(i), values.Value(rng.Int63n(int64(dom))), values.Value(rng.Int63n(int64(dom))))
		}
	}
	return q, in
}

// SingleAtomCover generates Q(x, y) :- R(x, y, u), S(y), full weights on
// x and y: the tractable class of Theorem 5.1 (one atom covers the free
// variables).
func SingleAtomCover(rng *rand.Rand, n, dom int) (*cq.Query, *database.Instance, order.Sum) {
	q := cq.MustParse("Q(x, y) :- R(x, y, u), S(y)")
	in := database.NewInstance()
	for i := 0; i < n; i++ {
		in.AddRow("R",
			values.Value(rng.Int63n(int64(dom))),
			values.Value(rng.Int63n(int64(dom))),
			values.Value(rng.Int63n(int64(dom))))
	}
	for d := 0; d < dom; d++ {
		if rng.Intn(2) == 0 {
			in.AddRow("S", values.Value(d))
		}
	}
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	return q, in, order.IdentitySum(x, y)
}

// RandomThreeSum draws a 3SUM instance of size n with values spread over
// a large range (hard regime); plant a solution when plant is true.
func RandomThreeSum(rng *rand.Rand, n int, plant bool) (a, b, c []float64) {
	lim := int64(n) * int64(n) * 8
	a = make([]float64, n)
	b = make([]float64, n)
	c = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(rng.Int63n(2*lim) - lim)
		b[i] = float64(rng.Int63n(2*lim) - lim)
		c[i] = float64(rng.Int63n(2*lim) - lim)
	}
	if plant && n > 0 {
		i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		c[k] = -(a[i] + b[j])
	}
	return a, b, c
}
