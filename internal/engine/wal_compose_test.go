package engine

import (
	"os"
	"path/filepath"
	"testing"

	"rankedaccess/internal/values"
)

// TestOpenReplaysWALWithoutSnapshot: acknowledged writes are durable
// from the moment ApplyBatch returns — a reopen with no checkpoint at
// all reconstructs the instance purely from WAL replay.
func TestOpenReplaysWALWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	e, warm, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("fresh dir reported warm")
	}
	if err := e.AddRows("R", [][]values.Value{{1, 5}, {1, 2}, {6, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("S", [][]values.Value{{5, 3}, {2, 5}}); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteRows("R", [][]values.Value{{6, 2}}); err != nil {
		t.Fatal(err)
	}
	version := e.Version()
	h, err := e.Prepare(Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	want := drainAll(t, h)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, warm2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if warm2 {
		t.Fatal("no snapshot was written, reopen reported warm")
	}
	if e2.Version() != version {
		t.Fatalf("replayed version = %d, want %d", e2.Version(), version)
	}
	h2, err := e2.Prepare(Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, h2); !eqValues(got, want) {
		t.Fatalf("replayed answers diverged:\n got %v\nwant %v", got, want)
	}
}

// TestCheckpointTruncatesWALThenReplays: checkpoint = snapshot + WAL
// truncation; a reopen warm-starts from the snapshot and replays only
// the batches written after it.
func TestCheckpointTruncatesWALThenReplays(t *testing.T) {
	dir := t.TempDir()
	e, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("R", [][]values.Value{{1, 5}, {1, 2}, {6, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("S", [][]values.Value{{5, 3}, {5, 4}, {2, 5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("q", Spec{Query: twoPath, Order: "x, y, z"}); err != nil {
		t.Fatal(err)
	}
	info, err := e.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != e.Version() {
		t.Fatalf("checkpoint at version %d, engine at %d", info.Version, e.Version())
	}
	// The checkpoint absorbed every logged batch: the WAL is back to its
	// 8-byte magic header.
	if fi, err := os.Stat(filepath.Join(dir, WALFileName)); err != nil || fi.Size() != 8 {
		t.Fatalf("WAL after checkpoint: size %d, err %v; want 8-byte header", fi.Size(), err)
	}

	// Post-checkpoint writes live only in the WAL.
	if err := e.AddRows("S", [][]values.Value{{2, 9}}); err != nil {
		t.Fatal(err)
	}
	version := e.Version()
	h, err := e.Prepare(Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	want := drainAll(t, h)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, warm, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !warm {
		t.Fatal("reopen after checkpoint was not warm")
	}
	if e2.Version() != version {
		t.Fatalf("reopened version = %d, want %d (snapshot %d + replay)", e2.Version(), version, info.Version)
	}
	// The rehydrated registration answers over snapshot + replayed rows.
	pq, err := e2.Prepared("q")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, h2); !eqValues(got, want) {
		t.Fatalf("warm start + replay diverged:\n got %v\nwant %v", got, want)
	}
}

// TestCrashRecoveryWithoutClose: a process that never got to Close
// (simulated by abandoning the engine with its WAL still open) loses
// nothing — every acknowledged batch was fsynced on append.
func TestCrashRecoveryWithoutClose(t *testing.T) {
	dir := t.TempDir()
	e, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("R", [][]values.Value{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("S", [][]values.Value{{2, 3}}); err != nil {
		t.Fatal(err)
	}
	version := e.Version()
	// No Close: the "crash".

	e2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Version() != version {
		t.Fatalf("recovered version = %d, want %d", e2.Version(), version)
	}
	h, err := e2.Prepare(Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1 {
		t.Fatalf("recovered |Q(I)| = %d, want 1", h.Total())
	}
}
