package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rankedaccess/internal/classify"
	"rankedaccess/internal/values"
)

// MaxNameLen bounds registered query names (they travel in URL paths).
const MaxNameLen = 128

// MaxRegistered bounds the named-query registry. Every registration
// pins an O(n) built structure for its lifetime (unlike the LRU-bounded
// accessor cache), so an unbounded registry would let a client loop of
// unique names grow server memory without limit. Registration of a NEW
// name fails once the bound is hit; re-registration and eviction always
// work.
const MaxRegistered = 1024

// PreparedID identifies one registration of a name. Re-registering a
// name yields a new Gen, so stale IDs are distinguishable from the
// current registration of the same name.
type PreparedID struct {
	Name string
	Gen  uint64
}

// preparedHandle pairs a built handle with the instance version it was
// resolved against; swapped atomically on re-prepare.
type preparedHandle struct {
	h       *Handle
	version uint64
}

// PreparedQuery is a registered named query: a Spec parsed and built
// once, probed many times by name. Its fast path — Acquire with an
// unchanged instance version — touches no lock, no map, and no spec
// text: one atomic pointer load and one atomic version load. When the
// instance version changed, the next Acquire transparently re-prepares
// (through the engine's structure cache and single-flight table)
// instead of failing or silently serving stale answers.
//
// A PreparedQuery is safe for concurrent use by any number of
// goroutines.
type PreparedQuery struct {
	e    *Engine
	id   PreparedID
	spec Spec
	// p is the spec parsed once at registration; by-name Select and
	// Classify reuse it instead of re-parsing per request. Immutable.
	p *parsed

	// prepMu serializes slow-path re-preparation; the built result is
	// published through cur so fast-path readers never block on it.
	prepMu sync.Mutex
	cur    atomic.Pointer[preparedHandle]

	// evicted flips once when the registration is removed; live holders
	// keep working (handles are immutable) but stop re-preparing.
	evicted atomic.Bool
}

// ID returns the registration identity.
func (pq *PreparedQuery) ID() PreparedID { return pq.id }

// Spec returns a copy of the registered spec.
func (pq *PreparedQuery) Spec() Spec { return pq.spec }

// Acquire returns a Handle answering for the current instance version,
// re-preparing if a mutation happened since the last build. The
// returned handle is an immutable snapshot: it stays valid (answering
// for its own version) even if the instance mutates afterwards.
func (pq *PreparedQuery) Acquire() (*Handle, error) {
	h, _, err := pq.acquireVersioned()
	return h, err
}

// AcquireCtx is Acquire with cancellation: the fast path is unchanged
// (one atomic load, no context check), but a slow-path re-prepare obeys
// the request's deadline like PrepareCtx does.
func (pq *PreparedQuery) AcquireCtx(ctx context.Context) (*Handle, error) {
	h, _, err := pq.acquireVersionedCtx(ctx)
	return h, err
}

// Current returns the registration's last published handle without
// re-preparing, plus whether its epoch is the engine's current version.
// A stale-but-present handle is the graceful-degradation read path:
// under overload the serve layer answers from the last published epoch
// (every handle is an immutable, internally consistent snapshot) rather
// than paying a catch-up it has no budget for.
func (pq *PreparedQuery) Current() (h *Handle, fresh bool) {
	cur := pq.cur.Load()
	if cur == nil {
		return nil, false
	}
	return cur.h, cur.version == pq.e.versionNow()
}

// acquireVersioned is Acquire returning also the instance version the
// handle was built for — the version cursors must pin to (reading the
// engine's current version separately would race with mutations and
// could pin an old handle to a new version).
func (pq *PreparedQuery) acquireVersioned() (*Handle, uint64, error) {
	return pq.acquireVersionedCtx(context.Background())
}

func (pq *PreparedQuery) acquireVersionedCtx(ctx context.Context) (*Handle, uint64, error) {
	if cur := pq.cur.Load(); cur != nil && cur.version == pq.e.versionNow() {
		pq.e.regHits.Add(1)
		return cur.h, cur.version, nil
	}
	return pq.reprepare(ctx)
}

// reprepare rebuilds the handle for the current version; concurrent
// callers for one PreparedQuery serialize here but share the build
// itself through the engine's single-flight table.
func (pq *PreparedQuery) reprepare(ctx context.Context) (*Handle, uint64, error) {
	pq.prepMu.Lock()
	defer pq.prepMu.Unlock()
	if cur := pq.cur.Load(); cur != nil && cur.version == pq.e.versionNow() {
		pq.e.regHits.Add(1)
		return cur.h, cur.version, nil
	}
	h, version, err := pq.e.prepareVersionedCtx(ctx, pq.spec)
	if err != nil {
		return nil, 0, err
	}
	if !pq.evicted.Load() {
		pq.cur.Store(&preparedHandle{h: h, version: version})
	}
	pq.e.reprepares.Add(1)
	return h, version, nil
}

// Select answers the one-shot selection problem for the registered
// spec (O(n) lex / O(n log n) SUM, no structure built), reusing the
// registration-time parse.
func (pq *PreparedQuery) Select(k int64) ([]values.Value, error) {
	if pq.e.remote != nil {
		return pq.e.selectRemote(pq.spec, k)
	}
	return pq.e.selectParsed(pq.p, k)
}

// Classify runs the named dichotomy problem on the registered spec,
// reusing the registration-time parse.
func (pq *PreparedQuery) Classify(problem string) (classify.Verdict, error) {
	return classifyParsed(problem, pq.p)
}

// validName reports whether a registration name is acceptable: 1 to
// MaxNameLen characters from [A-Za-z0-9_.-] (safe in URL path segments
// unescaped, and never empty or a path traversal).
func validName(name string) bool {
	if name == "" || len(name) > MaxNameLen || name == "." || name == ".." {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '_' || c == '-' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Register parses, plans, and builds the spec once, then publishes it
// under the given name. Registering an already-used name atomically
// replaces the previous registration (its holders keep their immutable
// handles). Registration fails — and registers nothing — when the name
// is invalid or the spec does not parse/build.
func (e *Engine) Register(name string, s Spec) (*PreparedQuery, error) {
	if !validName(name) {
		return nil, fmt.Errorf("engine: invalid prepared-query name %q (want 1-%d chars of [A-Za-z0-9_.-])", name, MaxNameLen)
	}
	h, version, err := e.prepareVersioned(s)
	if err != nil {
		return nil, err
	}
	p, err := s.parse() // cannot fail: prepareVersioned parsed the same spec
	if err != nil {
		return nil, err
	}
	pq := &PreparedQuery{e: e, spec: s, p: p}
	pq.cur.Store(&preparedHandle{h: h, version: version})
	e.rmu.Lock()
	old := e.registry[name]
	if old == nil && len(e.registry) >= MaxRegistered {
		e.rmu.Unlock()
		return nil, fmt.Errorf("engine: registry full (%d prepared queries); evict one before registering %q", MaxRegistered, name)
	}
	e.regGen++
	pq.id = PreparedID{Name: name, Gen: e.regGen}
	if old != nil {
		old.evicted.Store(true)
	}
	e.registry[name] = pq
	e.rmu.Unlock()
	return pq, nil
}

// Prepared returns the registered query of the given name, or an error
// wrapping ErrNotPrepared.
func (e *Engine) Prepared(name string) (*PreparedQuery, error) {
	e.rmu.Lock()
	pq := e.registry[name]
	e.rmu.Unlock()
	if pq == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotPrepared, name)
	}
	return pq, nil
}

// Evict removes the named registration, reporting whether it existed.
// Holders of the PreparedQuery or of handles acquired from it are
// unaffected beyond losing automatic re-preparation.
func (e *Engine) Evict(name string) bool {
	e.rmu.Lock()
	pq := e.registry[name]
	delete(e.registry, name)
	e.rmu.Unlock()
	if pq == nil {
		return false
	}
	pq.evicted.Store(true)
	return true
}

// EvictID removes the registration only if it is still the one the
// caller registered (same name AND generation), so undoing one's own
// registration cannot delete a concurrent re-registration of the name.
func (e *Engine) EvictID(id PreparedID) bool {
	e.rmu.Lock()
	pq := e.registry[id.Name]
	if pq == nil || pq.id != id {
		e.rmu.Unlock()
		return false
	}
	delete(e.registry, id.Name)
	e.rmu.Unlock()
	pq.evicted.Store(true)
	return true
}

// PreparedInfo describes one registered query for listings.
type PreparedInfo struct {
	ID   PreparedID
	Spec Spec
	// Plan and Total describe the registration's current handle (the
	// one the next same-version Acquire returns).
	Plan Plan
	// Total is |Q(I)| as of the current handle's build.
	Total int64
	// Version is the instance version the current handle answers for.
	Version uint64
}

// ListPrepared snapshots all registrations, sorted by name.
func (e *Engine) ListPrepared() []PreparedInfo {
	e.rmu.Lock()
	pqs := make([]*PreparedQuery, 0, len(e.registry))
	for _, pq := range e.registry {
		pqs = append(pqs, pq)
	}
	e.rmu.Unlock()
	sort.Slice(pqs, func(i, j int) bool { return pqs[i].id.Name < pqs[j].id.Name })
	out := make([]PreparedInfo, len(pqs))
	for i, pq := range pqs {
		out[i] = PreparedInfo{ID: pq.id, Spec: pq.spec}
		if cur := pq.cur.Load(); cur != nil {
			out[i].Plan = cur.h.Plan
			out[i].Total = cur.h.Total()
			out[i].Version = cur.version
		}
	}
	return out
}
