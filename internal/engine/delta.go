package engine

import (
	"context"
	"log/slog"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/delta"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// This file is the engine's catch-up path: advancing a structure built
// at an old instance version to the current one without (usually)
// rebuilding it. The caller holds mu.RLock, so the instance and version
// are stable throughout.

// advance tries to bring a stale handle to the given version, returning
// nil when only a full rebuild can (truncated log tail, opaque reset of
// a referenced relation, an overlay-ineligible structure, or a delta
// past the hard limit).
func (e *Engine) advance(s Spec, key string, stale *Handle, version uint64) *Handle {
	batches, ok := e.wlog.Since(stale.version)
	if !ok || stale.rels == nil {
		e.deltaRebuilds.Add(1)
		return nil
	}
	touched := false
	for i := range batches {
		if batches[i].Touches(stale.rels) {
			touched = true
			break
		}
	}
	if !touched {
		// The writes cannot have changed this query's answers: republish
		// the same structure (overlay and all) as the new epoch. This is
		// what keeps mutations of relation A from invalidating prepared
		// queries over relation B.
		nh := *stale
		nh.version = version
		e.deltaSkips.Add(1)
		return &nh
	}
	base := stale.ovBase
	if base == nil {
		base = mergeBase(stale)
	}
	if base == nil {
		e.deltaRebuilds.Add(1)
		return nil
	}
	sp, ok := delta.CollectSpan(batches, stale.rels)
	if !ok {
		e.deltaRebuilds.Add(1)
		return nil
	}
	member := func(a order.Answer) bool {
		if stale.ov != nil {
			_, m := stale.ov.Rank(a)
			return m
		}
		_, m := base.Rank(a)
		return m
	}
	adds, dels := delta.Diff(stale.Query, e.in, sp, member)
	newAdds, newDels := mergeEdits(stale, adds, dels)
	if len(newAdds)+len(newDels) > e.deltaHard {
		e.deltaRebuilds.Add(1)
		return nil
	}
	ov, err := access.NewOverlay(base, newAdds, newDels)
	if err != nil {
		// Construction errors mean the delta disagrees with the base
		// (should not happen); a rebuild restores a known-good state.
		e.deltaRebuilds.Add(1)
		return nil
	}
	nh := *stale
	nh.version = version
	nh.ov, nh.ovBase = ov, base
	nh.ovAdds, nh.ovDels = newAdds, newDels
	e.deltaEpochs.Add(1)
	if ov.Edits() > e.deltaSoft {
		e.spawnRebuild(s, key)
	}
	return &nh
}

// mergeBase adapts a handle's structure for overlay merging, or nil
// when the handle is ineligible: sharded and FD-extended handles carry
// per-shard state or extended answer spaces the answer-level delta
// cannot edit, Boolean queries have no answer tuples, and SUM-ordered
// handles qualify only when every summed variable is a head variable
// (delta answers zero the existential slots, which would corrupt
// weights otherwise).
func mergeBase(h *Handle) *access.MergeBase {
	if h.sh != nil || len(h.spec.FDs) > 0 || len(h.Query.Head) == 0 {
		return nil
	}
	switch {
	case h.lex != nil:
		b, ok := access.BaseOfLex(h.lex)
		if !ok {
			return nil
		}
		return b
	case h.sum != nil:
		if !sumByInHead(h) {
			return nil
		}
		return access.BaseOfSum(h.sum)
	case h.mat != nil && h.matIsLex:
		return access.BaseOfMatLex(h.mat, h.matLex)
	case h.mat != nil:
		if !sumByInHead(h) {
			return nil
		}
		return access.BaseOfMatSum(h.mat, h.sumW)
	}
	return nil
}

// sumByInHead reports whether every summed variable of the handle's
// spec is a head variable of its query.
func sumByInHead(h *Handle) bool {
	for _, name := range h.spec.SumBy {
		id, ok := h.Query.VarByName(name)
		if !ok {
			return false
		}
		inHead := false
		for _, v := range h.Query.Head {
			if v == id {
				inHead = true
				break
			}
		}
		if !inHead {
			return false
		}
	}
	return true
}

// mergeEdits folds a fresh answer-level diff into the handle's existing
// edit sets, flattening cancellations: an answer that reappears erases
// its pending delete, one that disappears erases its pending add. The
// returned sets are always relative to the handle's BASE structure, so
// the overlay never chains.
func mergeEdits(h *Handle, adds, dels []order.Answer) (newAdds, newDels []order.Answer) {
	addm := make(map[string]order.Answer, len(h.ovAdds)+len(adds))
	delm := make(map[string]order.Answer, len(h.ovDels)+len(dels))
	for _, a := range h.ovAdds {
		addm[headKey(h, a)] = a
	}
	for _, d := range h.ovDels {
		delm[headKey(h, d)] = d
	}
	for _, a := range adds {
		k := headKey(h, a)
		if _, ok := delm[k]; ok {
			delete(delm, k) // deleted base answer came back
		} else {
			addm[k] = a
		}
	}
	for _, d := range dels {
		k := headKey(h, d)
		if _, ok := addm[k]; ok {
			delete(addm, k) // previously added answer is gone again
		} else {
			delm[k] = d
		}
	}
	newAdds = make([]order.Answer, 0, len(addm))
	for _, a := range addm {
		newAdds = append(newAdds, a)
	}
	newDels = make([]order.Answer, 0, len(delm))
	for _, d := range delm {
		newDels = append(newDels, d)
	}
	return newAdds, newDels
}

// headKey encodes an answer's head projection as a map key.
func headKey(h *Handle, a order.Answer) string {
	buf := make([]byte, 0, len(h.Query.Head)*8)
	for _, v := range h.Query.Head {
		u := uint64(values.Value(a[v]))
		buf = append(buf,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return string(buf)
}

// spawnRebuild schedules a background re-preprocess for the spec,
// deduplicating concurrent requests per cache key. The goroutine builds
// against whatever version it observes (≥ the caller's) and swaps the
// fresh structure into the cache unless a newer epoch got there first;
// readers keep probing the published overlay epoch until the swap.
func (e *Engine) spawnRebuild(s Spec, key string) {
	e.cmu.Lock()
	if e.bgRebuilding[key] {
		e.cmu.Unlock()
		return
	}
	e.bgRebuilding[key] = true
	e.cmu.Unlock()
	e.bg.Add(1)
	go func() {
		defer e.bg.Done()
		start := time.Now()
		e.mu.RLock()
		v := e.version
		// Build under the engine's lifetime context: Close abandons the
		// rebuild at the next wave boundary instead of waiting it out.
		h, err := e.build(e.life, s)
		e.mu.RUnlock()
		swapped := false
		e.cmu.Lock()
		delete(e.bgRebuilding, key)
		if err == nil {
			h.version = v
			if cur := e.cache.get(key); cur == nil || cur.version <= v {
				e.cache.add(key, h)
				e.bgRebuilds.Add(1)
				swapped = true
			}
		}
		e.cmu.Unlock()
		if e.log != nil {
			level, attrs := slog.LevelInfo, []slog.Attr{
				slog.String("query", s.Query),
				slog.Uint64("version", v),
				slog.Bool("swapped", swapped),
				slog.Duration("duration", time.Since(start)),
			}
			if err != nil {
				level = slog.LevelWarn
				attrs = append(attrs, slog.String("error", err.Error()))
			}
			e.log.LogAttrs(context.Background(), level, "engine: background rebuild", attrs...)
		}
	}()
}
