package engine

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/delta"
	"rankedaccess/internal/order"
	"rankedaccess/internal/snapshot"
	"rankedaccess/internal/values"
)

// WALFileName is the durable write-ahead log's file name within a
// snapshot directory (alongside the snapshot files themselves).
const WALFileName = "wal.log"

// This file is the engine's durability layer: Checkpoint serializes the
// instance, the built access structures, and the prepared-query
// registry into an internal/snapshot file; Open and Restore rebuild an
// engine from one, reconstructing every structure zero-copy over the
// mapped file instead of re-running the O(n log n) preprocessing.
//
// What is persisted: the instance (all relations plus the value
// dictionary), every cached or registered unsharded structure built
// without FDs (their flat columns map back verbatim), and the registry
// names and specs. Sharded and FD-extended structures carry closures
// and per-shard state that do not serialize; they are skipped and
// simply rebuild on first use after a warm start, exactly as on a cold
// cache miss. The registry itself always survives: registrations are
// rehydrated lazily, so the first by-name probe after a warm start hits
// the preloaded structure cache instead of re-preparing.

// CheckpointInfo reports what a Checkpoint wrote.
type CheckpointInfo struct {
	// Name is the snapshot file name within the checkpoint directory.
	Name string
	// Bytes is the file size.
	Bytes int64
	// Version is the instance version the snapshot captured.
	Version uint64
	// Structures counts persisted access structures; Skipped counts
	// cached structures that cannot be persisted (sharded or
	// FD-extended) and will rebuild on demand after a warm start.
	Structures, Skipped int
	// Registrations counts persisted prepared-query registrations.
	Registrations int
}

// RestoreInfo reports what an Open or Restore loaded.
type RestoreInfo struct {
	// Name is the snapshot file name loaded.
	Name string
	// Version is the instance version after the load (the persisted
	// version for a fresh Open; strictly newer than both the persisted
	// and the pre-restore version for a live Restore).
	Version uint64
	// Tuples is the restored instance size.
	Tuples int
	// Structures counts access structures rehydrated into the cache;
	// Registrations counts rehydrated prepared queries.
	Structures, Registrations int
}

// Checkpoint atomically persists the engine's current state into dir
// (write to a temporary file, fsync, rename). It holds the instance
// read lock for the duration, so it runs concurrently with queries but
// delays mutations.
func (e *Engine) Checkpoint(dir string) (CheckpointInfo, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.checkpointLocked(dir)
}

// checkpointLocked is Checkpoint's body; the caller holds e.mu (shared
// suffices, the restore path holds it exclusively).
func (e *Engine) checkpointLocked(dir string) (CheckpointInfo, error) {
	info := CheckpointInfo{Version: e.version}
	b := snapshot.NewBuilder(e.version, time.Now().UnixNano())
	for _, name := range e.in.Names() {
		r := e.in.Relation(name)
		b.AddRelation(name, r.Arity(), r.Data())
	}
	if d := e.in.Dict; d != nil {
		b.SetDict(d.Names())
	}

	// Candidate structures: everything cached (all current-version by
	// construction) plus the registrations' current handles, deduped by
	// spec identity and persisted in deterministic order.
	e.cmu.Lock()
	handles := e.cache.handles()
	e.cmu.Unlock()
	e.rmu.Lock()
	regs := make([]*PreparedQuery, 0, len(e.registry))
	for _, pq := range e.registry {
		regs = append(regs, pq)
	}
	e.rmu.Unlock()
	sort.Slice(regs, func(i, j int) bool { return regs[i].id.Name < regs[j].id.Name })
	for _, pq := range regs {
		if cur := pq.cur.Load(); cur != nil && cur.version == e.version {
			handles = append(handles, cur.h)
		}
	}
	byKey := make(map[string]*Handle, len(handles))
	keys := make([]string, 0, len(handles))
	for _, h := range handles {
		// Only structures answering for the checkpointed version persist;
		// a stale handle or an overlay epoch (whose edits have no flat
		// encoding) simply rebuilds on demand after a warm start.
		if h.version != e.version || h.ov != nil {
			info.Skipped++
			continue
		}
		key := h.spec.key()
		if _, ok := byKey[key]; ok {
			continue
		}
		byKey[key] = h
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sm, ok := structureMeta(b, byKey[key])
		if !ok {
			info.Skipped++
			continue
		}
		b.AddStructure(sm)
		info.Structures++
	}
	for _, pq := range regs {
		b.AddRegistration(pq.id.Name, specMeta(pq.spec))
		info.Registrations++
	}

	name, size, err := snapshot.WriteFileFS(e.fs, dir, b)
	if err != nil {
		return info, fmt.Errorf("engine: checkpoint: %w", err)
	}
	// Every logged batch with Seq ≤ e.version is now inside the durable
	// snapshot, and the read lock held here excludes concurrent appends,
	// so the WAL can be emptied. Replay is version-guarded anyway
	// (batches with Seq ≤ the snapshot version are skipped), so a crash
	// between the rename above and this truncation loses nothing.
	if e.wal != nil {
		if err := e.wal.TruncateAll(); err != nil {
			return info, fmt.Errorf("engine: checkpoint: truncating WAL: %w", err)
		}
	}
	info.Name, info.Bytes = name, size
	e.checkpoints.Add(1)
	return info, nil
}

// Open warm-starts an engine from the newest snapshot in dir: the
// instance is restored, every persisted structure is reconstructed
// zero-copy over the mapped file into the accessor cache, the
// prepared-query registry is rehydrated (handles resolve lazily, on
// first probe, against that cache), and the durable WAL in dir is
// replayed — batches newer than the snapshot are re-applied to the
// instance and re-enter the in-memory log, so acknowledged writes
// survive a crash between checkpoints. The opened engine keeps the WAL
// attached: every later write appends to it. warm is false when dir
// holds no snapshot (the WAL may still have replayed writes into the
// otherwise-fresh engine).
func Open(dir string, opts Options) (*Engine, bool, error) {
	name, ok, err := snapshot.Latest(dir)
	if err != nil {
		return nil, false, fmt.Errorf("engine: open %s: %w", dir, err)
	}
	e := New(nil, opts)
	if ok {
		if _, err := e.loadSnapshot(filepath.Join(dir, name), true); err != nil {
			return nil, false, err
		}
	}
	w, batches, err := delta.OpenWALFS(e.fs, filepath.Join(dir, WALFileName))
	if err != nil {
		e.Close()
		return nil, false, fmt.Errorf("engine: open %s: %w", dir, err)
	}
	e.mu.Lock()
	for i, b := range batches {
		if b.Seq <= e.version {
			continue // already inside the snapshot
		}
		if verr := validateArity(e.in, b.Muts); verr != nil {
			// A frame that passes its CRC but fails validation against
			// the state it replays onto cannot come from the engine's own
			// write path (ApplyBatch validates before appending); it is
			// corruption the framing layer cannot see. Salvage like a
			// torn tail — keep the good prefix, truncate the rest — so
			// one bad frame cannot turn every restart into a crash.
			if terr := w.DiscardFrom(i, e.version); terr != nil {
				e.mu.Unlock()
				w.Close()
				e.Close()
				return nil, false, fmt.Errorf("engine: open %s: WAL frame %d invalid (%v) and untruncatable: %w", dir, i, verr, terr)
			}
			break
		}
		applyMuts(e.in, b.Muts)
		e.wlog.Append(b)
		e.version = b.Seq
	}
	e.vnow.Store(e.version)
	e.wal = w
	e.snapDir = dir
	e.mu.Unlock()
	return e, ok, nil
}

// Restore replaces the engine's live state with a snapshot file's:
// instance, structure cache, and registry. The instance version moves
// strictly forward (never back to the persisted number), so handles and
// cursors acquired before the restore keep answering their own
// consistent pre-restore snapshot and prepared queries transparently
// re-resolve — the same semantics as any other mutation.
//
// On a WAL-attached engine (one from Open) the restore is made durable
// immediately: the restored state is checkpointed into the engine's
// snapshot directory and the WAL — whose frames describe the
// pre-restore lineage — is emptied with its sequence floor moved to the
// restored version, so a crash right after Restore reopens into the
// restored state, not into pre-restore frames replayed onto the wrong
// base.
func (e *Engine) Restore(path string) (RestoreInfo, error) {
	return e.loadSnapshot(path, false)
}

// Close waits for background rebuilds, closes the durable WAL, and
// releases the snapshot file mappings backing warm-started structures.
// Call it only when the engine and every handle or cursor obtained from
// it are no longer in use; mapped structures must not be probed
// afterwards.
func (e *Engine) Close() error {
	e.stop() // abandon in-flight background rebuilds at their next wave
	e.bg.Wait()
	var first error
	e.mu.Lock()
	if e.wal != nil {
		if err := e.wal.Close(); err != nil {
			first = err
		}
		e.wal = nil
	}
	e.mu.Unlock()
	e.smu.Lock()
	defer e.smu.Unlock()
	for _, m := range e.mappings {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.mappings = nil
	return first
}

// loadSnapshot maps a snapshot file and installs its contents. fresh
// distinguishes the boot-time warm start (adopt the persisted version)
// from a live restore (bump past both versions and count it).
func (e *Engine) loadSnapshot(path string, fresh bool) (RestoreInfo, error) {
	var info RestoreInfo
	m, err := snapshot.Open(path)
	if err != nil {
		return info, fmt.Errorf("engine: %w", err)
	}
	f := m.File()

	// Rebuild the instance on the heap: relations are mutable (sorted
	// and appended in place by later loads), so they must not alias the
	// read-only mapping. The structures below stay zero-copy — they are
	// immutable by construction.
	in := database.NewInstance()
	for _, rm := range f.Meta.Relations {
		col, err := f.ColI64(rm.Col)
		if err != nil {
			m.Close()
			return info, fmt.Errorf("engine: %w", err)
		}
		r, err := database.FromFlat(rm.Arity, append([]values.Value(nil), col...))
		if err != nil {
			m.Close()
			return info, fmt.Errorf("engine: %w", err)
		}
		in.SetRelation(rm.Name, r)
	}
	if f.Meta.Dict != nil {
		in.Dict = values.DictFromNames(f.DictNames())
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	version := f.Meta.EngineVersion
	if !fresh {
		if v := e.version; v >= version {
			version = v + 1
		} else {
			version++
		}
	}

	// Rehydrate structures before touching engine state, so a corrupt
	// snapshot leaves a live engine unchanged.
	type entry struct {
		key string
		h   *Handle
	}
	entries := make([]entry, 0, len(f.Meta.Structures))
	for i := range f.Meta.Structures {
		h, err := e.rehydrate(f, &f.Meta.Structures[i])
		if err != nil {
			m.Close()
			return info, fmt.Errorf("engine: snapshot structure %d: %w", i, err)
		}
		h.version = version
		entries = append(entries, entry{key: h.spec.key(), h: h})
	}
	type reg struct {
		name string
		pq   *PreparedQuery
	}
	regs := make([]reg, 0, len(f.Meta.Registrations))
	for _, rm := range f.Meta.Registrations {
		if !validName(rm.Name) {
			m.Close()
			return info, fmt.Errorf("engine: snapshot registration has invalid name %q", rm.Name)
		}
		s := specFromMeta(rm.Spec)
		p, err := s.parse()
		if err != nil {
			m.Close()
			return info, fmt.Errorf("engine: snapshot registration %q: %w", rm.Name, err)
		}
		regs = append(regs, reg{name: rm.Name, pq: &PreparedQuery{e: e, spec: s, p: p}})
	}

	e.in = in
	e.version = version
	e.vnow.Store(version)
	// The log tail cannot express the wholesale replacement that just
	// happened: declare the new version its floor, so every structure
	// from before the load reports "cannot catch up" and rebuilds.
	e.wlog.Reset(version)
	e.cmu.Lock()
	e.cache.purge()
	// Insert in reverse so the first persisted structure ends up most
	// recently used (checkpoint order is deterministic, not LRU).
	for i := len(entries) - 1; i >= 0; i-- {
		e.cache.add(entries[i].key, entries[i].h)
	}
	e.cmu.Unlock()
	e.rmu.Lock()
	for _, pq := range e.registry {
		pq.evicted.Store(true)
	}
	clear(e.registry)
	for _, r := range regs {
		e.regGen++
		r.pq.id = PreparedID{Name: r.name, Gen: e.regGen}
		e.registry[r.name] = r.pq
	}
	e.rmu.Unlock()
	e.smu.Lock()
	e.mappings = append(e.mappings, m)
	e.smu.Unlock()
	e.warmStructures.Store(uint64(len(entries)))
	if !fresh {
		if e.wal != nil {
			// The durable WAL holds pre-restore frames: replaying them
			// onto whatever snapshot the next Open loads would rebuild
			// the wrong lineage, and their seqs no longer mean anything
			// against the restored state. Persist the restored state as a
			// fresh checkpoint first (so the new lineage survives a
			// crash), then empty the WAL and align its sequence floor
			// with the restored version. The checkpoint happens before
			// the truncation: if it fails, the old frames stay and the
			// pre-restore lineage remains recoverable.
			if _, err := e.checkpointLocked(e.snapDir); err != nil {
				return info, fmt.Errorf("engine: restore: checkpointing restored state: %w", err)
			}
			if err := e.wal.Reset(version); err != nil {
				return info, fmt.Errorf("engine: restore: resetting WAL: %w", err)
			}
		}
		e.restores.Add(1)
	}
	info = RestoreInfo{
		Name: filepath.Base(path), Version: version, Tuples: in.Size(),
		Structures: len(entries), Registrations: len(regs),
	}
	return info, nil
}

// rehydrate reconstructs one persisted structure as a ready Handle. The
// spec is re-parsed and re-classified (query-level work, microseconds);
// only the data-level arrays come from the file, zero-copy.
func (e *Engine) rehydrate(f *snapshot.File, sm *snapshot.StructureMeta) (*Handle, error) {
	s := specFromMeta(sm.Spec)
	if len(s.FDs) > 0 || normShards(s.Shards) > 1 {
		return nil, fmt.Errorf("snapshot holds a structure for an unsupported spec (FDs or shards)")
	}
	p, err := s.parse()
	if err != nil {
		return nil, err
	}
	h := &Handle{Query: p.q, spec: s, rels: queryRels(p.q)}
	if p.sum {
		h.Plan.Verdict = classify.DirectAccessSum(p.q)
		h.sumW = p.w
	} else {
		h.Plan.Verdict = classify.DirectAccessLex(p.q, p.l)
	}
	h.Plan.Tractable = sm.Tractable
	switch sm.Kind {
	case snapshot.KindLayeredLex:
		if p.sum {
			return nil, fmt.Errorf("layered-lex structure for a SUM spec")
		}
		lp, err := lexPartsFromMeta(f, sm)
		if err != nil {
			return nil, err
		}
		la, err := access.LexFromParts(p.q, lp)
		if err != nil {
			return nil, err
		}
		if la.Total() != sm.Total {
			return nil, fmt.Errorf("structure total %d, meta claims %d", la.Total(), sm.Total)
		}
		h.Plan.Mode, h.lex = ModeLayeredLex, la
	case snapshot.KindSum:
		if !p.sum {
			return nil, fmt.Errorf("SUM structure for a lex spec")
		}
		sp, err := rowPartsFromMeta(f, sm, true)
		if err != nil {
			return nil, err
		}
		sa, err := access.SumFromParts(p.q, p.w, &access.SumParts{
			NumVars: sp.NumVars, Flat: sp.Flat, Weights: sp.Weights,
		})
		if err != nil {
			return nil, err
		}
		h.Plan.Mode, h.sum = ModeSum, sa
	case snapshot.KindMaterialized:
		if sm.MatIsLex == p.sum {
			return nil, fmt.Errorf("materialized order kind disagrees with the spec")
		}
		mp, err := rowPartsFromMeta(f, sm, p.sum)
		if err != nil {
			return nil, err
		}
		ma, err := access.MatFromParts(p.q, mp)
		if err != nil {
			return nil, err
		}
		h.Plan.Mode, h.mat = ModeMaterialized, ma
		if sm.MatIsLex {
			h.matIsLex, h.matLex = true, p.l
		}
	default:
		return nil, fmt.Errorf("unknown structure kind %q", sm.Kind)
	}
	if h.Total() != sm.Total {
		return nil, fmt.Errorf("structure total %d, meta claims %d", h.Total(), sm.Total)
	}
	return h, nil
}

// structureMeta serializes one handle's structure into the builder,
// reporting ok=false for handles that cannot be persisted (sharded
// execution, FD closures, or shapes the flat encoding cannot carry).
func structureMeta(b *snapshot.Builder, h *Handle) (snapshot.StructureMeta, bool) {
	sm := snapshot.StructureMeta{
		Spec:       specMeta(h.spec),
		Tractable:  h.Plan.Tractable,
		Total:      h.Total(),
		NumVars:    h.Query.NumVars(),
		AnswersCol: snapshot.NoCol,
		WeightsCol: snapshot.NoCol,
	}
	if h.sh != nil || len(h.spec.FDs) > 0 {
		return sm, false
	}
	switch {
	case h.lex != nil:
		lp, ok := h.lex.Parts()
		if !ok {
			return sm, false
		}
		sm.Kind = snapshot.KindLayeredLex
		sm.Boolean, sm.BoolTrue = lp.Boolean, lp.BoolTrue
		sm.NumVars = lp.NumVars
		for _, entry := range lp.Completed.Entries {
			sm.Completed = append(sm.Completed, snapshot.OrderEntryMeta{
				Var: int(entry.Var), Desc: entry.Dir == order.Desc,
			})
		}
		for i := range lp.Layers {
			l := &lp.Layers[i]
			lm := snapshot.LayerMeta{
				Var: int(l.Var), Desc: l.Desc, Parent: l.Parent, Buckets: l.Buckets,
				ValsCol: b.I64Col(l.Vals), WeightsCol: b.I64Col(l.Weights), StartsCol: b.I64Col(l.Starts),
				BucketStartCol: b.IntCol(l.BucketStart), BucketEndCol: b.IntCol(l.BucketEnd),
				BucketWeightCol: b.I64Col(l.BucketWeight),
				BucketKeysCol:   b.I64Col(l.BucketKeys), BucketTableCol: b.I32Col(l.BucketTable),
			}
			for _, u := range l.KeyVars {
				lm.KeyVars = append(lm.KeyVars, int(u))
			}
			sm.Layers = append(sm.Layers, lm)
		}
		return sm, true
	case h.sum != nil:
		sp, ok := h.sum.Parts()
		if !ok {
			return sm, false
		}
		if sp.NumVars == 0 && len(sp.Weights) > 0 {
			return sm, false // variable-free answers do not flat-encode
		}
		sm.Kind = snapshot.KindSum
		sm.NumVars = sp.NumVars
		sm.Rows = len(sp.Weights)
		sm.AnswersCol = b.I64Col(sp.Flat)
		sm.WeightsCol = b.F64Col(sp.Weights)
		return sm, true
	default:
		mp := h.mat.Parts()
		if mp.NumVars == 0 && h.mat.Total() > 0 {
			return sm, false // variable-free answers do not flat-encode
		}
		sm.Kind = snapshot.KindMaterialized
		sm.NumVars = mp.NumVars
		sm.MatIsLex = h.matIsLex
		if mp.NumVars > 0 {
			sm.Rows = len(mp.Flat) / mp.NumVars
		}
		sm.AnswersCol = b.I64Col(mp.Flat)
		if mp.Weights != nil {
			sm.WeightsCol = b.F64Col(mp.Weights)
		}
		return sm, true
	}
}

// lexPartsFromMeta resolves a layered-lex structure's columns into
// access parts, all zero-copy views of the mapped file.
func lexPartsFromMeta(f *snapshot.File, sm *snapshot.StructureMeta) (*access.LexParts, error) {
	lp := &access.LexParts{
		Total: sm.Total, NumVars: sm.NumVars,
		Boolean: sm.Boolean, BoolTrue: sm.BoolTrue,
	}
	for _, entry := range sm.Completed {
		dir := order.Asc
		if entry.Desc {
			dir = order.Desc
		}
		lp.Completed.Entries = append(lp.Completed.Entries, order.LexEntry{Var: cq.VarID(entry.Var), Dir: dir})
	}
	for i := range sm.Layers {
		lm := &sm.Layers[i]
		l := access.LexLayerParts{
			Var: cq.VarID(lm.Var), Desc: lm.Desc, Parent: lm.Parent, Buckets: lm.Buckets,
		}
		for _, u := range lm.KeyVars {
			l.KeyVars = append(l.KeyVars, cq.VarID(u))
		}
		var err error
		if l.Vals, err = f.ColI64(lm.ValsCol); err != nil {
			return nil, err
		}
		if l.Weights, err = f.ColI64(lm.WeightsCol); err != nil {
			return nil, err
		}
		if l.Starts, err = f.ColI64(lm.StartsCol); err != nil {
			return nil, err
		}
		if l.BucketStart, err = f.ColInt(lm.BucketStartCol); err != nil {
			return nil, err
		}
		if l.BucketEnd, err = f.ColInt(lm.BucketEndCol); err != nil {
			return nil, err
		}
		if l.BucketWeight, err = f.ColI64(lm.BucketWeightCol); err != nil {
			return nil, err
		}
		if l.BucketKeys, err = f.ColI64(lm.BucketKeysCol); err != nil {
			return nil, err
		}
		if l.BucketTable, err = f.ColI32(lm.BucketTableCol); err != nil {
			return nil, err
		}
		lp.Layers = append(lp.Layers, l)
	}
	return lp, nil
}

// rowPartsFromMeta resolves a SUM or materialized structure's columns
// (answers flat in rank order, optional weights).
func rowPartsFromMeta(f *snapshot.File, sm *snapshot.StructureMeta, wantWeights bool) (*access.MatParts, error) {
	flat, err := f.ColI64(sm.AnswersCol)
	if err != nil {
		return nil, err
	}
	p := &access.MatParts{NumVars: sm.NumVars, Flat: flat}
	if sm.WeightsCol != snapshot.NoCol {
		if p.Weights, err = f.ColF64(sm.WeightsCol); err != nil {
			return nil, err
		}
	} else if wantWeights {
		return nil, fmt.Errorf("weighted structure without a weights column")
	}
	return p, nil
}

func specMeta(s Spec) snapshot.SpecMeta {
	return snapshot.SpecMeta{
		Query: s.Query, Order: s.Order, SumBy: s.SumBy, FDs: s.FDs,
		Shards: s.Shards, ShardBy: s.ShardBy,
	}
}

func specFromMeta(sm snapshot.SpecMeta) Spec {
	return Spec{
		Query: sm.Query, Order: sm.Order, SumBy: sm.SumBy, FDs: sm.FDs,
		Shards: sm.Shards, ShardBy: sm.ShardBy,
	}
}
