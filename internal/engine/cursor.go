package engine

import (
	"errors"
	"fmt"
	"io"
	"iter"

	"rankedaccess/internal/access"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// ErrCursorInvalidated is retained for API compatibility with the
// pre-MVCC engine, whose prepared-query cursors failed once the
// instance mutated under them. Cursors no longer invalidate: every
// cursor is pinned to the immutable epoch of the handle it was opened
// on and streams its full result set regardless of concurrent writes.
// No current code path returns this error.
var ErrCursorInvalidated = errors.New("engine: cursor invalidated by instance mutation")

// cursorChunk is the batch width All uses for its internal AccessRange
// calls: big enough to amortize per-range setup (shard rank search,
// probe pool round-trips), small enough to keep one reusable buffer.
const cursorChunk = 256

// Cursor is a stateful scan position over one prepared Handle. It
// answers Next/NextN probes in O(log n) each via the handle's
// allocation-free access paths, reusing the caller's destination
// buffers, so a steady-state Next performs zero allocations.
//
// A Cursor is NOT safe for concurrent use — it is one scan's state;
// open one cursor per goroutine (the underlying Handle is shared and
// concurrency-safe). A cursor scans the immutable epoch of the handle
// it was opened on: concurrent writes publish new epochs but never
// invalidate an in-progress scan, so a cursor opened before a write (or
// a background structure swap) streams its full pre-write result set
// unchanged.
type Cursor struct {
	h   *Handle
	pos int64

	// buf is the cursor-owned probe scratch for single-step Next on an
	// unsharded layered structure (lazily created). A dedicated buffer
	// instead of the handle's pooled path keeps Next deterministically
	// allocation-free: sync.Pool may shed entries (GC, and randomly
	// under the race detector), a buffer owned by this single-consumer
	// cursor cannot.
	buf *access.LexBuf
}

// Cursor opens a cursor over the handle's immutable epoch, starting at
// position 0.
func (h *Handle) Cursor() *Cursor { return &Cursor{h: h} }

// Cursor opens a cursor over the registered query's current handle,
// starting at position 0. The cursor drains that handle's epoch: it
// keeps streaming the same consistent result set even if mutations
// publish newer epochs mid-scan. Open a fresh cursor to scan the new
// data.
func (pq *PreparedQuery) Cursor() (*Cursor, error) {
	h, err := pq.Acquire()
	if err != nil {
		return nil, err
	}
	return &Cursor{h: h}, nil
}

// Handle returns the handle the cursor scans.
func (c *Cursor) Handle() *Handle { return c.h }

// Total returns |Q(I)| of the scanned epoch.
func (c *Cursor) Total() int64 { return c.h.Total() }

// Width returns the number of head columns per emitted tuple.
func (c *Cursor) Width() int { return c.h.Width() }

// Pos returns the current position: the global rank the next Next
// emits.
func (c *Cursor) Pos() int64 { return c.pos }

// Seek moves the cursor position in answer ranks, with io.Seeker
// semantics: offset is relative to the start (io.SeekStart), the
// current position (io.SeekCurrent), or the end (io.SeekEnd) of the
// answer list, and the new absolute rank is returned. Seeking exactly
// to Total() parks the cursor at the end (Next then reports
// exhaustion); seeking outside [0, Total()] fails with
// access.ErrOutOfBound and leaves the position unchanged.
func (c *Cursor) Seek(offset int64, whence int) (int64, error) {
	k := offset
	switch whence {
	case io.SeekStart:
	case io.SeekCurrent:
		k += c.pos
	case io.SeekEnd:
		k += c.h.Total()
	default:
		return c.pos, fmt.Errorf("engine: seek whence %d", whence)
	}
	if k < 0 || k > c.h.Total() {
		return c.pos, fmt.Errorf("engine: seek to %d of %d answers: %w", k, c.h.Total(), access.ErrOutOfBound)
	}
	c.pos = k
	return k, nil
}

// Next appends the head tuple at the current position to dst, advances,
// and returns the extended slice and true. At the end of the answer
// list it returns (dst, false, nil). Steady-state calls with a reused
// dst perform zero allocations on the layered structure.
func (c *Cursor) Next(dst []values.Value) ([]values.Value, bool, error) {
	if c.pos >= c.h.Total() {
		return dst, false, nil
	}
	var err error
	// The direct layered fast path applies only without an overlay: a
	// merged epoch routes every probe through the overlay's two binary
	// searches.
	if lex := c.h.lex; lex != nil && c.h.ov == nil {
		if c.buf == nil {
			c.buf = lex.NewBuf()
		}
		var a order.Answer
		a, err = lex.AccessInto(c.buf, c.pos)
		if err != nil {
			return dst, false, err
		}
		dst = c.h.AppendHeadTuple(dst, a)
	} else {
		dst, err = c.h.AppendTuple(dst, c.pos)
		if err != nil {
			return dst, false, err
		}
	}
	c.pos++
	return dst, true, nil
}

// NextN appends up to n head tuples (Width values each, concatenated)
// to dst through one batched AccessRange, advances past them, and
// returns the extended slice and the number of tuples emitted — fewer
// than n only at the end of the answer list.
func (c *Cursor) NextN(dst []values.Value, n int) ([]values.Value, int, error) {
	if n <= 0 {
		return dst, 0, nil
	}
	k1 := c.pos + int64(n)
	if t := c.h.Total(); k1 > t {
		k1 = t
	}
	if k1 <= c.pos {
		return dst, 0, nil
	}
	dst, err := c.h.AccessRange(dst, c.pos, k1)
	if err != nil {
		return dst, 0, err
	}
	emitted := int(k1 - c.pos)
	c.pos = k1
	return dst, emitted, nil
}

// All returns a range-over-func iterator over the head tuples of global
// ranks k0 ≤ k < k1 (k1 clamped to Total). The yielded slice aliases an
// internal buffer reused across iterations: copy it to retain it past
// the iteration step. All does not move the cursor's position; it is an
// independent window scan batching cursorChunk answers per underlying
// AccessRange. A non-nil error is yielded (with a nil tuple) at most
// once, terminating the sequence.
func (c *Cursor) All(k0, k1 int64) iter.Seq2[[]values.Value, error] {
	return func(yield func([]values.Value, error) bool) {
		if t := c.h.Total(); k1 > t {
			k1 = t
		}
		if k0 < 0 {
			yield(nil, fmt.Errorf("engine: range start %d: %w", k0, access.ErrOutOfBound))
			return
		}
		width := c.h.Width()
		var buf []values.Value
		for k := k0; k < k1; {
			end := k + cursorChunk
			if end > k1 {
				end = k1
			}
			var err error
			buf, err = c.h.AccessRange(buf[:0], k, end)
			if err != nil {
				yield(nil, err)
				return
			}
			for i := 0; i < int(end-k); i++ {
				if !yield(buf[i*width:(i+1)*width:(i+1)*width], nil) {
					return
				}
			}
			k = end
		}
	}
}
