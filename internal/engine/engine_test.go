package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/database"
	"rankedaccess/internal/values"
)

const twoPath = "Q(x, y, z) :- R(x, y), S(y, z)"

// smallInstance is the paper's Figure 2 running example.
func smallInstance() *database.Instance {
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)
	return in
}

// randomInstance generates a denser two-path instance for hammering.
func randomInstance(n int, dom int64, seed int64) *database.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := database.NewInstance()
	for i := 0; i < n; i++ {
		in.AddRow("R", rng.Int63n(dom), rng.Int63n(dom))
		in.AddRow("S", rng.Int63n(dom), rng.Int63n(dom))
	}
	return in
}

func TestPrepareCachesAndPlans(t *testing.T) {
	e := New(smallInstance(), Options{})
	spec := Spec{Query: twoPath, Order: "x, y, z"}

	h1, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Plan.Mode != ModeLayeredLex || !h1.Plan.Tractable {
		t.Fatalf("plan = %+v, want tractable layered-lex", h1.Plan)
	}
	if h1.Total() != 5 {
		t.Fatalf("total = %d, want 5", h1.Total())
	}
	h2, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("second Prepare did not hit the cache")
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestPlanFallsBackToMaterialized(t *testing.T) {
	e := New(smallInstance(), Options{})
	// ⟨x, z, y⟩ is the paper's canonical intractable order for the
	// two-path query.
	h, err := e.Prepare(Spec{Query: twoPath, Order: "x, z, y"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Plan.Mode != ModeMaterialized || h.Plan.Tractable {
		t.Fatalf("plan = %+v, want intractable materialized", h.Plan)
	}
	if h.Plan.Verdict.Tractable {
		t.Fatal("verdict should be intractable")
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d, want 5", h.Total())
	}
	// Inverted access works on the materialized fallback too.
	a, err := h.Access(2)
	if err != nil {
		t.Fatal(err)
	}
	k, err := h.Inverted(a)
	if err != nil || k != 2 {
		t.Fatalf("Inverted = (%d, %v), want (2, nil)", k, err)
	}
}

func TestPlanSumModes(t *testing.T) {
	e := New(smallInstance(), Options{})
	h, err := e.Prepare(Spec{Query: "Q(x, y) :- R(x, y)", SumBy: []string{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if h.Plan.Mode != ModeSum || !h.Plan.Tractable {
		t.Fatalf("plan = %+v, want tractable sum", h.Plan)
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d, want 3", h.Total())
	}
	// Sums: 1+5=6, 1+2=3, 6+2=8 → sorted 3, 6, 8.
	first, err := h.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.HeadTuple(first); got[0]+got[1] != 3 {
		t.Fatalf("first by sum = %v, want weight 3", got)
	}
	if _, err := h.Inverted(first); !errors.Is(err, ErrNoInverted) {
		t.Fatalf("sum inverted err = %v, want ErrNoInverted", err)
	}

	// A SUM-intractable query (two-path with projection) falls back.
	h2, err := e.Prepare(Spec{Query: twoPath, SumBy: []string{"x", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Plan.Mode != ModeMaterialized {
		t.Fatalf("plan = %+v, want materialized fallback", h2.Plan)
	}
	if h2.Total() != 5 {
		t.Fatalf("total = %d, want 5", h2.Total())
	}
	// A SUM-sorted materialization has no inverse either.
	a2, err := h2.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Inverted(a2); !errors.Is(err, ErrNoInverted) {
		t.Fatalf("materialized-sum inverted err = %v, want ErrNoInverted", err)
	}

	// Order is ignored (and not part of the cache key) when SumBy is set.
	h3, err := e.Prepare(Spec{Query: twoPath, SumBy: []string{"x", "z"}, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h2 {
		t.Fatal("same SumBy spec with a stray Order rebuilt instead of hitting the cache")
	}
}

// TestConcurrentHammer drives one cached Accessor from many goroutines
// with mixed Access / Total / Inverted probes; run with -race.
func TestConcurrentHammer(t *testing.T) {
	e := New(randomInstance(2000, 64, 42), Options{})
	spec := Spec{Query: twoPath, Order: "x, y desc, z"}
	h0, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	total := h0.Total()
	if total == 0 {
		t.Fatal("empty join; pick a different seed")
	}
	// Golden answers computed serially up front.
	golden := make([][]values.Value, total)
	for k := int64(0); k < total; k++ {
		a, err := h0.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		golden[k] = h0.HeadTuple(a)
	}

	const goroutines = 16
	const iters = 400
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				h, err := e.Prepare(spec)
				if err != nil {
					errs <- err
					return
				}
				if h.Total() != total {
					errs <- errors.New("total changed under a read-only workload")
					return
				}
				k := rng.Int63n(total)
				a, err := h.Access(k)
				if err != nil {
					errs <- err
					return
				}
				for p, v := range h.HeadTuple(a) {
					if golden[k][p] != v {
						errs <- errors.New("answer mismatch under concurrency")
						return
					}
				}
				if i%3 == 0 {
					back, err := h.Inverted(a)
					if err != nil {
						errs <- err
						return
					}
					if back != k {
						errs <- errors.New("inverted access disagreed with access")
						return
					}
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 build for the hammered spec", st.Misses)
	}
}

// TestSingleFlight checks that concurrent cold requests for one spec
// share a single build.
func TestSingleFlight(t *testing.T) {
	e := New(randomInstance(500, 32, 7), Options{})
	spec := Spec{Query: twoPath, Order: "x, y, z"}
	const goroutines = 12
	var wg sync.WaitGroup
	handles := make([]*Handle, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h, err := e.Prepare(spec)
			if err == nil {
				handles[g] = h
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if handles[g] == nil || handles[g] != handles[0] {
			t.Fatal("concurrent cold Prepares returned distinct handles")
		}
	}
	if st := e.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", st.Misses)
	}
}

// TestMutationInvalidates checks that instance mutation is visible to the
// next Prepare instead of serving stale cached answers.
func TestMutationInvalidates(t *testing.T) {
	e := New(smallInstance(), Options{})
	spec := Spec{Query: twoPath, Order: "x, y, z"}
	h1, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Total() != 5 {
		t.Fatalf("total = %d, want 5", h1.Total())
	}

	// R(7, 5) joins with the three S(5, ·) rows: three new answers.
	if err := e.AddRows("R", [][]values.Value{{7, 5}}); err != nil {
		t.Fatal(err)
	}
	// A bad batch is rejected before mutating anything.
	if err := e.AddRows("R", [][]values.Value{{1, 2}, {1, 2, 3}}); err == nil {
		t.Fatal("arity-mismatched batch accepted")
	}

	h2, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h1 {
		t.Fatal("mutation did not invalidate the cached handle")
	}
	if h2.Total() != 8 {
		t.Fatalf("total after mutation = %d, want 8", h2.Total())
	}
	// The old handle still answers from its consistent snapshot.
	if h1.Total() != 5 {
		t.Fatalf("old handle total = %d, want 5", h1.Total())
	}
	if st := e.Stats(); st.Version != 1 {
		t.Fatalf("version = %d, want 1", st.Version)
	}
}

// TestConcurrentMutateAndPrepare interleaves mutations with prepares and
// probes; correctness here is "no race, no crash, monotone totals".
func TestConcurrentMutateAndPrepare(t *testing.T) {
	e := New(smallInstance(), Options{})
	spec := Spec{Query: twoPath, Order: "x, y, z"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := e.AddRows("R", [][]values.Value{{int64(100 + i), 5}}); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := e.Prepare(spec)
				if err != nil {
					t.Error(err)
					return
				}
				if n := h.Total(); n > 0 {
					if _, err := h.Access(rng.Int63n(n)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	h, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 5 original answers + 50 new R(·, 5) rows × 3 S(5, ·) rows.
	if h.Total() != 5+150 {
		t.Fatalf("final total = %d, want 155", h.Total())
	}
}

func TestAccessBatchSelectCount(t *testing.T) {
	e := New(smallInstance(), Options{})
	spec := Spec{Query: twoPath, Order: "x, y, z"}
	h, tuples, errs, err := e.Access(spec, []int64{0, 3, 99})
	if err != nil || h == nil {
		t.Fatalf("Access failed to plan: %v", err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("in-bound errors: %v %v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], access.ErrOutOfBound) {
		t.Fatalf("errs[2] = %v, want out of bound", errs[2])
	}
	if tuples[0][0] != 1 || tuples[2] != nil {
		t.Fatalf("tuples = %v", tuples)
	}

	sel, err := e.Select(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := h.Access(2)
	if err != nil {
		t.Fatal(err)
	}
	want := h.HeadTuple(direct)
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("Select = %v, Access = %v", sel, want)
		}
	}

	n, err := e.Count(twoPath)
	if err != nil || n != 5 {
		t.Fatalf("Count = (%d, %v), want (5, nil)", n, err)
	}
}

func TestClassifyProblems(t *testing.T) {
	e := New(smallInstance(), Options{})
	spec := Spec{Query: twoPath, Order: "x, z, y"}
	v, err := e.Classify(ProblemDirectAccessLex, spec)
	if err != nil || v.Tractable {
		t.Fatalf("DA-lex on ⟨x,z,y⟩ = (%v, %v), want intractable", v.Tractable, err)
	}
	v, err = e.Classify(ProblemSelectionLex, spec)
	if err != nil || !v.Tractable {
		t.Fatalf("selection-lex on ⟨x,z,y⟩ = (%v, %v), want tractable", v.Tractable, err)
	}
	if _, err := e.Classify("nonsense", spec); err == nil {
		t.Fatal("unknown problem accepted")
	}
	// FDs flip the two-path DA-lex verdict for ⟨x,z,y⟩ when y → z.
	vFD, err := e.Classify(ProblemDirectAccessLex, Spec{
		Query: twoPath, Order: "x, z, y", FDs: []string{"S: y -> z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vFD.Tractable {
		t.Fatalf("FD-refined verdict = %+v, want tractable", vFD)
	}
}

func TestLRUEviction(t *testing.T) {
	e := New(smallInstance(), Options{CacheSize: 2})
	specs := []Spec{
		{Query: twoPath, Order: "x, y, z"},
		{Query: twoPath, Order: "y, x, z"},
		{Query: twoPath, Order: "y, z, x"},
	}
	for _, s := range specs {
		if _, err := e.Prepare(s); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want cache bounded at 2", st.Entries)
	}
	// The least-recently-used spec rebuilds.
	before := e.Stats().Misses
	if _, err := e.Prepare(specs[0]); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Misses != before+1 {
		t.Fatal("evicted entry was served from cache")
	}
}

// TestAccessRangeMatchesAccess checks the batched range path against
// per-index access on all three structure modes.
func TestAccessRangeMatchesAccess(t *testing.T) {
	in := randomInstance(512, 64, 31)
	e := New(in, Options{})
	specs := []Spec{
		{Query: twoPath, Order: "x, y, z"},                       // layered-lex
		{Query: twoPath, Order: "x, z, y"},                       // materialized (intractable order)
		{Query: "Q(x, y) :- R(x, y)", SumBy: []string{"x", "y"}}, // sum
	}
	for _, s := range specs {
		h, err := e.Prepare(s)
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		total := h.Total()
		if total < 4 {
			t.Fatalf("%+v: too few answers (%d)", s, total)
		}
		k0, k1 := total/4, total/4+3
		_, flat, err := e.AccessRange(s, nil, k0, k1)
		if err != nil {
			t.Fatalf("%+v: AccessRange: %v", s, err)
		}
		w := h.Width()
		if len(flat) != int(k1-k0)*w {
			t.Fatalf("%+v: flat len %d, want %d", s, len(flat), int(k1-k0)*w)
		}
		for k := k0; k < k1; k++ {
			a, err := h.Access(k)
			if err != nil {
				t.Fatal(err)
			}
			want := h.HeadTuple(a)
			got := flat[(k-k0)*int64(w) : (k-k0+1)*int64(w)]
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%+v k=%d: got %v, want %v", s, k, got, want)
				}
			}
			// AppendTuple agrees and respects dst.
			dst := []values.Value{-99}
			dst, err = h.AppendTuple(dst, k)
			if err != nil || dst[0] != -99 || len(dst) != 1+w {
				t.Fatalf("AppendTuple: dst=%v err=%v", dst, err)
			}
		}
		// Bad ranges fail cleanly.
		if _, err := h.AccessRange(nil, -1, 2); err == nil {
			t.Fatal("negative k0 accepted")
		}
		if _, err := h.AccessRange(nil, total, total+1); err == nil {
			t.Fatal("out-of-bound range accepted")
		}
	}
}
