package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"rankedaccess/internal/database"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

// drainAll reads a handle's full answer list through AccessRange.
func drainAll(t testing.TB, h *Handle) []values.Value {
	t.Helper()
	out, err := h.AccessRange(nil, 0, h.Total())
	if err != nil {
		t.Fatalf("drain %d answers: %v", h.Total(), err)
	}
	return out
}

// shadow is the test's reference model of the instance: every relation
// as a plain slice of rows, mutated in lockstep with the engine.
type shadow map[string][][]values.Value

func (s shadow) instance() *database.Instance {
	in := database.NewInstance()
	for rel, rows := range s {
		for _, row := range rows {
			in.AddRow(rel, row...)
		}
	}
	return in
}

func (s shadow) insert(rel string, row []values.Value) {
	s[rel] = append(s[rel], append([]values.Value(nil), row...))
}

func (s shadow) delete(rel string, row []values.Value) {
	kept := s[rel][:0]
	for _, r := range s[rel] {
		same := len(r) == len(row)
		for i := range r {
			if !same || r[i] != row[i] {
				same = false
				break
			}
		}
		if !same {
			kept = append(kept, r)
		}
	}
	s[rel] = kept
}

// TestInterleavedReadWriteEquivalence is the MVCC correctness oracle:
// random insert/delete batches interleave with reads, and after every
// batch the delta-merged answer stream of each registered query must be
// byte-identical to a from-scratch preprocess over the same data. Run
// with -race it also hammers the concurrent advance/publish paths.
func TestInterleavedReadWriteEquivalence(t *testing.T) {
	specs := []Spec{
		{Query: twoPath, Order: "x, y, z"},                                // layered-lex
		{Query: twoPath, SumBy: []string{"x", "y", "z"}},                  // sum
		{Query: "Q(x, z) :- R(x, y), S(y, z)", Order: "z, x"},             // materialized lex
		{Query: "Q(x, z) :- R(x, y), S(y, z)", SumBy: []string{"x", "z"}}, // materialized sum
	}
	const dom = 12
	rng := rand.New(rand.NewSource(99))
	sh := shadow{}
	for i := 0; i < 40; i++ {
		sh.insert("R", []values.Value{rng.Int63n(dom), rng.Int63n(dom)})
		sh.insert("S", []values.Value{rng.Int63n(dom), rng.Int63n(dom)})
	}
	e := New(sh.instance(), Options{})
	pqs := make([]*PreparedQuery, len(specs))
	for i, s := range specs {
		pq, err := e.Register(fmt.Sprintf("q%d", i), s)
		if err != nil {
			t.Fatal(err)
		}
		pqs[i] = pq
	}

	for step := 0; step < 60; step++ {
		rel := "R"
		if rng.Intn(2) == 0 {
			rel = "S"
		}
		if rng.Intn(3) > 0 || len(sh[rel]) == 0 {
			n := 1 + rng.Intn(3)
			rows := make([][]values.Value, n)
			for i := range rows {
				rows[i] = []values.Value{rng.Int63n(dom), rng.Int63n(dom)}
				sh.insert(rel, rows[i])
			}
			if err := e.AddRows(rel, rows); err != nil {
				t.Fatal(err)
			}
		} else {
			row := sh[rel][rng.Intn(len(sh[rel]))]
			row = append([]values.Value(nil), row...)
			sh.delete(rel, row)
			if err := e.DeleteRows(rel, [][]values.Value{row}); err != nil {
				t.Fatal(err)
			}
		}

		// From-scratch oracle over a fresh copy of the data.
		ref := New(sh.instance(), Options{})
		for i, s := range specs {
			rh, err := ref.Prepare(s)
			if err != nil {
				t.Fatal(err)
			}
			want := drainAll(t, rh)
			lh, err := pqs[i].Acquire()
			if err != nil {
				t.Fatal(err)
			}
			if lh.Version() != e.Version() {
				t.Fatalf("step %d spec %d: handle at version %d, engine at %d", step, i, lh.Version(), e.Version())
			}
			got := drainAll(t, lh)
			if !eqValues(got, want) {
				t.Fatalf("step %d spec %d (%d edits): delta-merged stream diverged\n got %v\nwant %v",
					step, i, lh.DeltaEdits(), got, want)
			}
		}
	}
	st := e.Stats()
	if st.DeltaEpochs == 0 {
		t.Fatalf("no overlay epoch was ever published: %+v", st)
	}
	e.Quiesce()
}

// TestSingleInsertPublishesEpochWithoutRebuild is the acceptance bound:
// one row into n=65536 publishes a readable new epoch as a delta
// overlay — no full re-preprocess, no cache miss.
func TestSingleInsertPublishesEpochWithoutRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, in := workload.TwoPath(rng, 65536, 8192, 0.3)
	e := New(in, Options{})
	pq, err := e.Register("big", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	h0, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	if before.Misses != 1 {
		t.Fatalf("stats before write = %+v, want exactly the initial build", before)
	}

	if err := e.AddRows("R", [][]values.Value{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	h1, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if h1.Version() != e.Version() {
		t.Fatalf("post-write handle at version %d, engine at %d", h1.Version(), e.Version())
	}
	after := e.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("single insert forced a full rebuild: %+v", after)
	}
	if after.DeltaEpochs != 1 || after.DeltaRebuilds != 0 {
		t.Fatalf("single insert did not publish an overlay epoch: %+v", after)
	}
	if h1.Total() < h0.Total() {
		t.Fatalf("total shrank: %d -> %d", h0.Total(), h1.Total())
	}
	// The new epoch is readable end to end.
	if _, err := h1.AccessRange(nil, 0, min64(h1.Total(), 64)); err != nil {
		t.Fatal(err)
	}
	e.Quiesce()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestCursorDrainsAcrossBackgroundSwap pins the drain guarantee around
// the background re-preprocessor: a cursor opened on an overlay epoch
// keeps streaming that epoch's exact result set even after the rebuilt
// structure swaps into the cache.
func TestCursorDrainsAcrossBackgroundSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	_, in := workload.TwoPath(rng, 2048, 256, 0.3)
	// DeltaSoft 1: any overlay with more than one edit schedules a
	// background rebuild immediately.
	e := New(in, Options{DeltaSoft: 1})
	pq, err := e.Register("swap", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Acquire(); err != nil {
		t.Fatal(err)
	}
	// A write that joins into several new answers -> overlay epoch past
	// the soft limit -> rebuild scheduled.
	if err := e.AddRows("R", [][]values.Value{{70001, 1}, {70002, 1}, {70003, 1}}); err != nil {
		t.Fatal(err)
	}
	h, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if h.DeltaEdits() == 0 {
		t.Fatalf("expected an overlay epoch, handle has no edits (stats %+v)", e.Stats())
	}
	want := drainAll(t, h) // the overlay epoch's full stream

	cur, err := pq.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	var got []values.Value
	var ok bool
	got, ok, err = cur.Next(got) // start the scan pre-swap
	if !ok || err != nil {
		t.Fatalf("first Next = (%v, %v)", ok, err)
	}
	e.Quiesce() // background rebuild has swapped in (or was a no-op)
	for {
		got, ok, err = cur.Next(got)
		if err != nil {
			t.Fatalf("Next after swap: %v", err)
		}
		if !ok {
			break
		}
	}
	if !eqValues(got, want) {
		t.Fatalf("cursor stream changed across background swap:\n got %v\nwant %v", got, want)
	}
	// After the swap, the cache serves the rebuilt structure — same
	// answers, no overlay. (The registry keeps handing out its pinned
	// overlay epoch until the next version bump, which is also correct.)
	st := e.Stats()
	if st.BGRebuilds == 0 {
		t.Fatalf("background rebuild never swapped in: %+v", st)
	}
	h2, err := e.Prepare(Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	if h2.DeltaEdits() != 0 {
		t.Fatalf("post-swap handle still carries %d overlay edits", h2.DeltaEdits())
	}
	if post := drainAll(t, h2); !eqValues(post, want) {
		t.Fatalf("rebuilt structure diverged from overlay epoch:\n got %v\nwant %v", post, want)
	}
}

// TestUntouchedRelationsSkipInvalidation pins the satellite fix: a
// write to relation T must not invalidate (or rebuild, or even overlay)
// prepared queries that never mention T — and an opaque Mutate that
// only changes T must not either.
func TestUntouchedRelationsSkipInvalidation(t *testing.T) {
	in := smallInstance()
	in.AddRow("T", 1, 2)
	in.AddRow("T", 3, 4)
	e := New(in, Options{})
	pq, err := e.Register("rs", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	h0, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	base := e.Stats()

	if err := e.AddRows("T", [][]values.Value{{5, 6}}); err != nil {
		t.Fatal(err)
	}
	h1, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Misses != base.Misses || st.DeltaRebuilds != base.DeltaRebuilds {
		t.Fatalf("write to unreferenced T rebuilt the query: %+v", st)
	}
	if st.DeltaSkips != base.DeltaSkips+1 {
		t.Fatalf("expected a republish skip, stats = %+v", st)
	}
	if h1.DeltaEdits() != 0 {
		t.Fatalf("skip republish grew an overlay: %d edits", h1.DeltaEdits())
	}
	if h1.Version() != e.Version() || h1.Total() != h0.Total() {
		t.Fatalf("republished handle = version %d total %d, want version %d total %d",
			h1.Version(), h1.Total(), e.Version(), h0.Total())
	}

	// Opaque mutation that only touches T: the reset names T alone, so
	// the R,S query still republishes without rebuilding.
	e.Mutate(func(in *database.Instance) { in.AddRow("T", 7, 8) })
	if _, err := pq.Acquire(); err != nil {
		t.Fatal(err)
	}
	st2 := e.Stats()
	if st2.Misses != base.Misses || st2.DeltaRebuilds != base.DeltaRebuilds {
		t.Fatalf("opaque mutation of T rebuilt the R,S query: %+v", st2)
	}

	// Contrast: an opaque mutation of R forces the rebuild path.
	e.Mutate(func(in *database.Instance) { in.AddRow("R", 100, 100) })
	if _, err := pq.Acquire(); err != nil {
		t.Fatal(err)
	}
	st3 := e.Stats()
	if st3.DeltaRebuilds != st2.DeltaRebuilds+1 && st3.Misses == st2.Misses {
		t.Fatalf("opaque mutation of R did not rebuild: %+v", st3)
	}
}
