package engine

import (
	"path/filepath"
	"testing"

	"rankedaccess/internal/delta"
	"rankedaccess/internal/values"
)

// TestApplyBatchIntraBatchArityConflict: a batch whose mutations create
// the same new relation at two different arities must be rejected up
// front — before it reaches the durable WAL — not panic halfway through
// apply and poison every later replay.
func TestApplyBatchIntraBatchArityConflict(t *testing.T) {
	dir := t.TempDir()
	e, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []delta.Mutation{
		{Op: delta.OpInsert, Rel: "Z", Arity: 2, Rows: []values.Value{1, 2}},
		{Op: delta.OpInsert, Rel: "Z", Arity: 3, Rows: []values.Value{1, 2, 3}},
	}
	if _, err := e.ApplyBatch(bad); err == nil {
		t.Fatal("conflicting-arity batch was accepted")
	}
	if v := e.Version(); v != 0 {
		t.Fatalf("rejected batch moved the version to %d", v)
	}
	// A delete and an insert disagreeing about a relation the batch
	// itself introduces is the same inconsistency.
	mixed := []delta.Mutation{
		{Op: delta.OpDelete, Rel: "W", Arity: 3, Rows: []values.Value{1, 2, 3}},
		{Op: delta.OpInsert, Rel: "W", Arity: 2, Rows: []values.Value{1, 2}},
	}
	if _, err := e.ApplyBatch(mixed); err == nil {
		t.Fatal("batch disagreeing with itself about a new relation's arity was accepted")
	}
	// The write path still works, and nothing poisonous hit the WAL: a
	// reopen replays cleanly to the same state.
	if err := e.AddRows("R", [][]values.Value{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	version := e.Version()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after rejected batches: %v", err)
	}
	defer e2.Close()
	if e2.Version() != version {
		t.Fatalf("reopened version = %d, want %d", e2.Version(), version)
	}
}

// TestOpenSalvagesPoisonedWALFrame: a WAL frame that passes its CRC but
// cannot validate against the state it replays onto (possible only via
// external corruption — the engine's own write path validates before
// appending) must not crash-loop Open. The good prefix is kept, the
// poisoned tail is truncated, and the write path works after recovery.
func TestOpenSalvagesPoisonedWALFrame(t *testing.T) {
	dir := t.TempDir()
	e, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("R", [][]values.Value{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-poison the log: an arity-3 insert into the arity-2 relation
	// R, framed and checksummed correctly, followed by one more frame
	// that is unreachable behind the poison.
	w, _, err := delta.OpenWAL(filepath.Join(dir, WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	poison := delta.Batch{Seq: 2, Muts: []delta.Mutation{
		{Op: delta.OpInsert, Rel: "R", Arity: 3, Rows: []values.Value{7, 8, 9}},
	}}
	after := delta.Batch{Seq: 3, Muts: []delta.Mutation{
		{Op: delta.OpInsert, Rel: "R", Arity: 2, Rows: []values.Value{5, 6}},
	}}
	if err := w.Append(poison); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(after); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	e2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over a poisoned WAL: %v", err)
	}
	if e2.Version() != 1 {
		t.Fatalf("salvaged version = %d, want 1 (good prefix only)", e2.Version())
	}
	h, err := e2.Prepare(Spec{Query: "Q(x, y) :- R(x, y)", Order: "x, y"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1 {
		t.Fatalf("salvaged |R| = %d, want 1", h.Total())
	}
	// The truncation is durable and the log appendable: write, reopen,
	// and the state is exactly prefix + new write.
	if err := e2.AddRows("R", [][]values.Value{{5, 6}}); err != nil {
		t.Fatalf("write after salvage: %v", err)
	}
	version := e2.Version()
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if e3.Version() != version {
		t.Fatalf("re-reopened version = %d, want %d", e3.Version(), version)
	}
	h3, err := e3.Prepare(Spec{Query: "Q(x, y) :- R(x, y)", Order: "x, y"})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, h3); !eqValues(got, []values.Value{1, 2, 5, 6}) {
		t.Fatalf("salvaged state = %v, want [1 2 5 6]", got)
	}
}

// TestRestoreResetsWALLineage: a live Restore on a WAL-attached engine
// must not leave pre-restore frames in the durable log — they belong to
// the discarded lineage, and replaying them onto the next Open's
// snapshot would rebuild state the user explicitly restored away. The
// restore checkpoints the new lineage and empties the WAL, so reopening
// lands on restored state + post-restore writes exactly.
func TestRestoreResetsWALLineage(t *testing.T) {
	dir := t.TempDir()
	e, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("R", [][]values.Value{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	info, err := e.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	// This write exists only in the WAL — it is the pre-restore lineage
	// the restore below must discard durably, not just in memory.
	if err := e.AddRows("R", [][]values.Value{{3, 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Restore(filepath.Join(dir, info.Name)); err != nil {
		t.Fatal(err)
	}
	// The write path works after the restore (seq floor follows the
	// restored version), and the write is durable.
	if err := e.AddRows("R", [][]values.Value{{5, 6}}); err != nil {
		t.Fatalf("write after restore: %v", err)
	}
	spec := Spec{Query: "Q(x, y) :- R(x, y)", Order: "x, y"}
	h, err := e.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := drainAll(t, h)
	if !eqValues(want, []values.Value{1, 2, 5, 6}) {
		t.Fatalf("post-restore live state = %v, want [1 2 5 6]", want)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, warm, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !warm {
		t.Fatal("reopen after restore was not warm")
	}
	h2, err := e2.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, h2); !eqValues(got, want) {
		t.Fatalf("reopened state diverged from the restored lineage:\n got %v\nwant %v", got, want)
	}
}

// TestPrepareKeepsNewerCachedHandle: a slow catch-up finishing after a
// concurrent request already cached a newer-version handle must not
// overwrite it (the same guard spawnRebuild has always had).
func TestPrepareKeepsNewerCachedHandle(t *testing.T) {
	sh := shadow{}
	sh.insert("R", []values.Value{1, 2})
	sh.insert("S", []values.Value{2, 3})
	e := New(sh.instance(), Options{})
	s := Spec{Query: twoPath, Order: "x, y, z"}
	h, err := e.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the race's end state: a newer-version handle is already
	// cached when this request's (older) flight completes.
	key := s.key()
	newer := *h
	newer.version = h.version + 5
	e.cmu.Lock()
	e.cache.add(key, &newer)
	e.cmu.Unlock()
	if _, err := e.Prepare(s); err != nil {
		t.Fatal(err)
	}
	e.cmu.Lock()
	cur := e.cache.get(key)
	e.cmu.Unlock()
	if cur.version != newer.version {
		t.Fatalf("cached handle version = %d, want %d (older flight overwrote the newer epoch)", cur.version, newer.version)
	}
}
