package engine

import (
	"errors"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/values"
)

// shardCases cover every structure mode the sharded planner serves:
// layered-lex, sum, materialized (intractable order), and the
// FD-extended layered path (extend globally, shard the extension). The
// FD case gets its own engine whose S relation actually satisfies
// y → z.
func shardCases() []struct {
	spec Spec
	eng  *Engine
} {
	e := New(randomInstance(600, 48, 17), Options{})
	fdIn := randomInstance(600, 48, 19)
	fdIn.SetRelation("S", fdIn.Relation("S").Clone())
	s := fdIn.Relation("S")
	for i := 0; i < s.Len(); i++ {
		t := s.Tuple(i)
		t[1] = (t[0]*7 + 3) % 48 // z is a function of y
	}
	eFD := New(fdIn, Options{})
	return []struct {
		spec Spec
		eng  *Engine
	}{
		{Spec{Query: twoPath, Order: "x, y, z"}, e},
		{Spec{Query: twoPath, Order: "y desc, x"}, e},
		{Spec{Query: "Q(x, y) :- R(x, y)", SumBy: []string{"x", "y"}}, e},
		{Spec{Query: twoPath, Order: "x, z, y"}, e},
		{Spec{Query: twoPath, Order: "x, z, y", FDs: []string{"S: y -> z"}}, eFD},
	}
}

// TestShardedMatchesSingle cross-checks the sharded engine against the
// single-shard engine on randomized instances: identical answers for
// ranked access, ranges, totals, and inverted access, for P ∈ {2, 3, 8}.
func TestShardedMatchesSingle(t *testing.T) {
	for _, tc := range shardCases() {
		base, e := tc.spec, tc.eng
		ref, err := e.Prepare(base)
		if err != nil {
			t.Fatalf("%+v: %v", base, err)
		}
		total := ref.Total()
		if total < 8 {
			t.Fatalf("%+v: too few answers (%d)", base, total)
		}
		for _, p := range []int{2, 3, 8} {
			s := base
			s.Shards = p
			h, err := e.Prepare(s)
			if err != nil {
				t.Fatalf("%+v: %v", s, err)
			}
			if h.Plan.Shards != p || h.Plan.ShardBy == "" {
				t.Fatalf("%+v: plan %+v, want %d shards with a partition variable", s, h.Plan, p)
			}
			if h.Plan.Mode != ref.Plan.Mode {
				t.Fatalf("%+v: sharded mode %s, single mode %s", s, h.Plan.Mode, ref.Plan.Mode)
			}
			if h.Total() != total {
				t.Fatalf("%+v: total %d, want %d", s, h.Total(), total)
			}
			var want, got []values.Value
			for k := int64(0); k < total; k++ {
				want, err = ref.AppendTuple(want[:0], k)
				if err != nil {
					t.Fatal(err)
				}
				got, err = h.AppendTuple(got[:0], k)
				if err != nil {
					t.Fatalf("%+v: AppendTuple(%d): %v", s, k, err)
				}
				if len(want) != len(got) {
					t.Fatalf("%+v k=%d: widths differ", s, k)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%+v k=%d: %v vs %v", s, k, got, want)
					}
				}
				wa, err1 := ref.Access(k)
				ga, err2 := h.Access(k)
				if err1 != nil || err2 != nil {
					t.Fatalf("%+v k=%d: %v, %v", s, k, err1, err2)
				}
				if len(wa) != len(ga) {
					t.Fatalf("%+v k=%d: answer shapes differ (%d vs %d)", s, k, len(wa), len(ga))
				}
				for i := range wa {
					if wa[i] != ga[i] {
						t.Fatalf("%+v k=%d: answers %v vs %v", s, k, ga, wa)
					}
				}
				wantInv, errW := ref.Inverted(wa)
				gotInv, errG := h.Inverted(ga)
				if errors.Is(errW, ErrNoInverted) {
					if !errors.Is(errG, ErrNoInverted) {
						t.Fatalf("%+v: single has no inverse but sharded does (%v)", s, errG)
					}
				} else if errW != nil || errG != nil || wantInv != gotInv {
					t.Fatalf("%+v k=%d: inverted (%d,%v) vs (%d,%v)", s, k, gotInv, errG, wantInv, errW)
				}
			}
			// Full range scans agree.
			_, wantFlat, err := e.AccessRange(base, nil, 0, total)
			if err != nil {
				t.Fatal(err)
			}
			_, gotFlat, err := e.AccessRange(s, nil, 0, total)
			if err != nil {
				t.Fatalf("%+v: AccessRange: %v", s, err)
			}
			if len(wantFlat) != len(gotFlat) {
				t.Fatalf("%+v: range lengths %d vs %d", s, len(gotFlat), len(wantFlat))
			}
			for i := range wantFlat {
				if wantFlat[i] != gotFlat[i] {
					t.Fatalf("%+v: range mismatch at %d", s, i)
				}
			}
			// Out-of-bound probes fail identically.
			if _, err := h.Access(total); !errors.Is(err, access.ErrOutOfBound) {
				t.Fatalf("%+v: Access(total) = %v, want ErrOutOfBound", s, err)
			}
			if _, err := h.Access(-1); !errors.Is(err, access.ErrOutOfBound) {
				t.Fatalf("%+v: Access(-1) = %v, want ErrOutOfBound", s, err)
			}
		}
	}
}

// TestShardedFallback: queries that cannot be partitioned still answer
// correctly through the single structure, and the plan says why.
func TestShardedFallback(t *testing.T) {
	in := smallInstance()
	in.AddRow("R", 5, 3) // join R with itself through the second column
	e := New(in, Options{})
	selfjoin := "Q(x, y, z) :- R(x, y), R(y, z)"
	single, err := e.Prepare(Spec{Query: selfjoin, Order: ""})
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Prepare(Spec{Query: selfjoin, Order: "", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.Plan.Shards != 0 || h.Plan.ShardNote == "" {
		t.Fatalf("plan = %+v, want unsharded with a fallback note", h.Plan)
	}
	if h.Total() != single.Total() {
		t.Fatalf("fallback total %d, want %d", h.Total(), single.Total())
	}
	for k := int64(0); k < single.Total(); k++ {
		want, _ := single.Access(k)
		got, err := h.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("k=%d: %v vs %v", k, got, want)
			}
		}
	}
}

// TestShardSpecIdentity: the shard count and partition variable are
// part of the accessor's cache identity.
func TestShardSpecIdentity(t *testing.T) {
	e := New(randomInstance(200, 32, 5), Options{})
	base := Spec{Query: twoPath, Order: "x, y, z"}
	h1, err := e.Prepare(base)
	if err != nil {
		t.Fatal(err)
	}
	s2 := base
	s2.Shards = 2
	h2, err := e.Prepare(s2)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("sharded and unsharded specs shared a cache entry")
	}
	s2b := base
	s2b.Shards = 2
	h2b, err := e.Prepare(s2b)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h2b {
		t.Fatal("identical sharded specs did not share a cache entry")
	}
	sBy := s2
	sBy.ShardBy = "x"
	hBy, err := e.Prepare(sBy)
	if err != nil {
		t.Fatal(err)
	}
	if hBy == h2 {
		t.Fatal("different partition variables shared a cache entry")
	}
	// Shards 0 and 1 are the same (unsharded) identity.
	s1 := base
	s1.Shards = 1
	h1b, err := e.Prepare(s1)
	if err != nil {
		t.Fatal(err)
	}
	if h1b != h1 {
		t.Fatal("Shards: 1 must share the unsharded cache entry")
	}
}

func TestShardByValidation(t *testing.T) {
	e := New(smallInstance(), Options{})
	if _, err := e.Prepare(Spec{Query: twoPath, Order: "x, y, z", Shards: 2, ShardBy: "w"}); err == nil {
		t.Fatal("unknown shard_by accepted")
	}
	// Existential variables cannot partition answers.
	if _, err := e.Prepare(Spec{Query: "Q(x, z) :- R(x, y), S(y, z)", Order: "", Shards: 2, ShardBy: "y"}); err == nil {
		t.Fatal("existential shard_by accepted")
	}
	// ShardBy without Shards is inert, not an error.
	if _, err := e.Prepare(Spec{Query: twoPath, Order: "x, y, z", ShardBy: "w"}); err != nil {
		t.Fatalf("inert shard_by rejected: %v", err)
	}
}

func TestCountSharded(t *testing.T) {
	e := New(randomInstance(500, 40, 23), Options{})
	want, err := e.Count(twoPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 8} {
		got, info, err := e.CountSharded(twoPath, p, "")
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got != want {
			t.Fatalf("P=%d: count %d, want %d", p, got, want)
		}
		if info.Shards != p || info.ShardBy == "" || info.ShardNote != "" {
			t.Fatalf("P=%d: info = %+v", p, info)
		}
	}
	if _, _, err := e.CountSharded(twoPath, 2, "nope"); err == nil {
		t.Fatal("bad shard_by accepted by CountSharded")
	}
	// Unshardable queries fall back to the global count and say so.
	got, info, err := e.CountSharded("Q() :- R(x, y)", 4, "")
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("boolean count = %d, want 1", got)
	}
	if info.Shards != 0 || info.ShardNote == "" {
		t.Fatalf("fallback info = %+v, want unsharded with a note", info)
	}
}

// TestShardedConcurrentAccess hammers one sharded handle from many
// goroutines (run under -race in CI).
func TestShardedConcurrentAccess(t *testing.T) {
	e := New(randomInstance(400, 40, 29), Options{})
	s := Spec{Query: twoPath, Order: "x, y, z", Shards: 4}
	h, err := e.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Prepare(Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	total := h.Total()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var dst, want []values.Value
			for k := int64(g); k < total; k += 8 {
				var err error
				dst, err = h.AppendTuple(dst[:0], k)
				if err != nil {
					done <- err
					return
				}
				want, _ = ref.AppendTuple(want[:0], k)
				for i := range want {
					if dst[i] != want[i] {
						done <- errors.New("concurrent sharded access mismatch")
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
