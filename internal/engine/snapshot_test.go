package engine

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"rankedaccess/internal/database"
	"rankedaccess/internal/snapshot"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

// snapInstance builds a deterministic two-path instance.
func snapInstance(t testing.TB, n int) *database.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	_, in := workload.TwoPath(rng, n, n/8, 0.3)
	return in
}

// snapSpecs covers every persistable structure kind plus the skip
// paths (sharded, FDs).
var snapSpecs = []Spec{
	{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "x, y, z"},            // layered-lex
	{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "y desc, x"},          // layered-lex, partial+desc
	{Query: "Q(x, y) :- R(x, y)", SumBy: []string{"x", "y"}},               // sum
	{Query: "Q(x, z) :- R(x, y), S(y, z)", Order: "x, z"},                  // materialized (projection)
	{Query: "Q(x, z) :- R(x, y), S(y, z)", SumBy: []string{"x", "z"}},      // materialized sum
	{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "x, y, z", Shards: 4}, // sharded: skipped
}

// probeAll reads the first and last few answers of a handle.
func probeAll(t *testing.T, h *Handle) [][]values.Value {
	t.Helper()
	total := h.Total()
	ks := []int64{0, 1, total / 3, total / 2, total - 2, total - 1}
	var out [][]values.Value
	for _, k := range ks {
		if k < 0 || k >= total {
			continue
		}
		tu, err := h.AppendTuple(nil, k)
		if err != nil {
			t.Fatalf("access %d of %d: %v", k, total, err)
		}
		out = append(out, tu)
	}
	return out
}

func TestCheckpointOpenRoundTrip(t *testing.T) {
	in := snapInstance(t, 4096)
	e := New(in, Options{})
	want := make(map[int][][]values.Value)
	totals := make(map[int]int64)
	for i, s := range snapSpecs {
		h, err := e.Prepare(s)
		if err != nil {
			t.Fatalf("prepare %d: %v", i, err)
		}
		want[i] = probeAll(t, h)
		totals[i] = h.Total()
	}
	if _, err := e.Register("roundtrip", snapSpecs[0]); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	info, err := e.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Structures != 5 || info.Skipped != 1 {
		t.Fatalf("persisted %d structures, skipped %d; want 5/1", info.Structures, info.Skipped)
	}
	if info.Registrations != 1 {
		t.Fatalf("persisted %d registrations, want 1", info.Registrations)
	}

	e2, warm, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !warm {
		t.Fatal("Open found no snapshot")
	}
	st := e2.Stats()
	if st.WarmStructures != 5 {
		t.Fatalf("warm structures = %d, want 5", st.WarmStructures)
	}
	if st.Version != e.Version() {
		t.Fatalf("version %d, want %d", st.Version, e.Version())
	}
	if st.Tuples != in.Size() {
		t.Fatalf("tuples %d, want %d", st.Tuples, in.Size())
	}
	misses := st.Misses
	for i, s := range snapSpecs[:5] {
		h, err := e2.Prepare(s)
		if err != nil {
			t.Fatalf("warm prepare %d: %v", i, err)
		}
		if h.Total() != totals[i] {
			t.Fatalf("spec %d: warm total %d, want %d", i, h.Total(), totals[i])
		}
		if got := probeAll(t, h); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("spec %d: warm answers %v, want %v", i, got, want[i])
		}
	}
	if st2 := e2.Stats(); st2.Misses != misses {
		t.Fatalf("warm prepares built %d structures; want pure cache hits", st2.Misses-misses)
	}
	// The skipped sharded spec rebuilds on demand and still answers
	// identically.
	for i, s := range snapSpecs[5:] {
		h, err := e2.Prepare(s)
		if err != nil {
			t.Fatalf("rebuild prepare %d: %v", i, err)
		}
		if got := probeAll(t, h); !reflect.DeepEqual(got, want[i+5]) {
			t.Fatalf("spec %d: rebuilt answers differ", i+5)
		}
	}
	// The registry rehydrated lazily: the first by-name acquire resolves
	// against the preloaded cache.
	pq, err := e2.Prepared("roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	h, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if got := probeAll(t, h); !reflect.DeepEqual(got, want[0]) {
		t.Fatal("registry handle answers differ after warm start")
	}
}

// TestWarmStartFullScanByteIdentical compares the complete answer
// stream of a warm-started structure against the cold build, probed
// concurrently (run with -race).
func TestWarmStartFullScanByteIdentical(t *testing.T) {
	in := snapInstance(t, 2048)
	e := New(in, Options{})
	s := snapSpecs[0]
	h, err := e.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := h.AccessRange(nil, 0, h.Total())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := e.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	e2, warm, err := Open(dir, Options{})
	if err != nil || !warm {
		t.Fatalf("open: warm=%v err=%v", warm, err)
	}
	defer e2.Close()
	h2, err := e2.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			total := h2.Total()
			chunk := (total + 7) / 8
			k0, k1 := int64(g)*chunk, min(int64(g+1)*chunk, total)
			got, err := h2.AccessRange(nil, k0, k1)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			w := h2.Width()
			if !reflect.DeepEqual(got, want[k0*int64(w):k1*int64(w)]) {
				t.Errorf("goroutine %d: warm answers differ in [%d, %d)", g, k0, k1)
			}
		}(g)
	}
	wg.Wait()
	// Inverted access works against the mapped structure too.
	a, err := h2.Access(17)
	if err != nil {
		t.Fatal(err)
	}
	k, err := h2.Inverted(a)
	if err != nil || k != 17 {
		t.Fatalf("inverted = %d, %v; want 17", k, err)
	}
}

// TestCheckpointSkipsFDStructures: FD-extended structures carry
// closures that do not persist; checkpoints skip them and warm starts
// rebuild them on demand.
func TestCheckpointSkipsFDStructures(t *testing.T) {
	e := New(nil, Options{})
	rows := make([][]values.Value, 64)
	for i := range rows {
		rows[i] = []values.Value{values.Value(i), values.Value(i % 8)}
	}
	if err := e.AddRows("R", rows); err != nil {
		t.Fatal(err)
	}
	s := Spec{Query: "Q(x, y) :- R(x, y)", Order: "y", FDs: []string{"R: x -> y"}}
	h, err := e.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	want := probeAll(t, h)
	dir := t.TempDir()
	info, err := e.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Skipped != 1 {
		t.Fatalf("skipped %d structures, want 1 (the FD-extended one)", info.Skipped)
	}
	e2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	h2, err := e2.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := probeAll(t, h2); !reflect.DeepEqual(got, want) {
		t.Fatal("FD structure rebuilt after warm start answers differently")
	}
}

func TestOpenEmptyDir(t *testing.T) {
	e, warm, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("warm start from an empty directory")
	}
	if err := e.AddRows("R", [][]values.Value{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if n, err := e.Count("Q(x, y) :- R(x, y)"); err != nil || n != 1 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

// TestMutationAfterWarmStart: a warm-started engine is a normal engine;
// mutations invalidate mapped structures and rebuilds see the new data.
func TestMutationAfterWarmStart(t *testing.T) {
	in := snapInstance(t, 512)
	e := New(in, Options{})
	s := snapSpecs[0]
	h, err := e.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	before := h.Total()
	dir := t.TempDir()
	if _, err := e.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	e2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// A y value present on both sides guarantees new answers.
	if err := e2.AddRows("R", [][]values.Value{{1 << 40, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := e2.AddRows("S", [][]values.Value{{3, 1 << 41}}); err != nil {
		t.Fatal(err)
	}
	h2, err := e2.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Total() <= before {
		t.Fatalf("total %d after mutation, was %d before", h2.Total(), before)
	}
}

func TestRestoreIntoLiveEngine(t *testing.T) {
	in := snapInstance(t, 512)
	e := New(in, Options{})
	s := snapSpecs[0]
	h, err := e.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	want := probeAll(t, h)
	dir := t.TempDir()
	ck, err := e.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A different live engine, with other data and its own registration.
	e2 := New(nil, Options{})
	if err := e2.AddRows("R", [][]values.Value{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Register("other", Spec{Query: "Q(x, y) :- R(x, y)"}); err != nil {
		t.Fatal(err)
	}
	vBefore := e2.Version()
	info, err := e2.Restore(filepath.Join(dir, ck.Name))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if info.Version <= vBefore || info.Version <= ck.Version {
		t.Fatalf("restore version %d does not move forward past %d/%d", info.Version, vBefore, ck.Version)
	}
	if _, err := e2.Prepared("other"); err == nil {
		t.Fatal("pre-restore registration survived the restore")
	}
	h2, err := e2.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := probeAll(t, h2); !reflect.DeepEqual(got, want) {
		t.Fatal("restored answers differ")
	}
	if st := e2.Stats(); st.Restores != 1 {
		t.Fatalf("restores = %d, want 1", st.Restores)
	}
}

func TestRestoreCorruptFileFailsCleanly(t *testing.T) {
	e := New(snapInstance(t, 256), Options{})
	if _, err := e.Prepare(snapSpecs[0]); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ck, err := e.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ck.Name)
	corruptFile(t, path, 100)
	vBefore := e.Version()
	if _, err := e.Restore(path); err == nil {
		t.Fatal("restore of a corrupt snapshot succeeded")
	}
	if e.Version() != vBefore {
		t.Fatal("failed restore mutated the engine")
	}
	if n, err := e.Count(snapSpecs[0].Query); err != nil || n == 0 {
		t.Fatalf("engine unusable after failed restore: %d, %v", n, err)
	}
}

func corruptFile(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointList checks the directory listing and latest-selection
// helpers through multiple checkpoints.
func TestCheckpointList(t *testing.T) {
	e := New(snapInstance(t, 256), Options{})
	dir := t.TempDir()
	if _, err := e.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("R", [][]values.Value{{9, 9}}); err != nil {
		t.Fatal(err)
	}
	ck2, err := e.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := snapshot.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("listed %d snapshots, want 2", len(infos))
	}
	latest, ok, err := snapshot.Latest(dir)
	if err != nil || !ok {
		t.Fatalf("latest: %v %v", ok, err)
	}
	if latest != ck2.Name {
		t.Fatalf("latest = %q, want %q", latest, ck2.Name)
	}
	if infos[0].EngineVersion != ck2.Version {
		t.Fatalf("listed version %d, want %d", infos[0].EngineVersion, ck2.Version)
	}
}

func BenchmarkColdBuild(b *testing.B) {
	in := snapInstance(b, 1<<16)
	s := Spec{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "x, y, z"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(in, Options{})
		h, err := e.Prepare(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Access(h.Total() / 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmStart(b *testing.B) {
	in := snapInstance(b, 1<<16)
	s := Spec{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "x, y, z"}
	e := New(in, Options{})
	if _, err := e.Prepare(s); err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if _, err := e.Checkpoint(dir); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		we, warm, err := Open(dir, Options{})
		if err != nil || !warm {
			b.Fatalf("warm=%v err=%v", warm, err)
		}
		h, err := we.Prepare(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Access(h.Total() / 2); err != nil {
			b.Fatal(err)
		}
		we.Close()
	}
}

func TestCheckpointTinyEngine(t *testing.T) {
	e := New(nil, Options{})
	if err := e.AddRows("R", [][]values.Value{{1, 10}, {2, 20}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prepare(Spec{Query: "Q(x, y) :- R(x, y)", Order: "x"}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	info, err := e.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Structures != 1 {
		t.Fatalf("persisted %d structures, want 1", info.Structures)
	}
	warm, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	h, err := warm.Prepare(Spec{Query: "Q(x, y) :- R(x, y)", Order: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 2 {
		t.Fatalf("total = %d, want 2", h.Total())
	}
}
