// Package engine serves repeated ranked-access workloads over one
// mutable database instance.
//
// The paper's structures pay O(n log n) preprocessing per (query, order)
// pair and then answer each access in O(log n); a service answering many
// probes of the same pair must therefore build once and probe many
// times. The Engine does exactly that:
//
//   - it plans each request by running the paper's classification first
//     and picking the best structure — the layered lexicographic
//     structure (Theorem 4.1), the SUM structure (Theorem 5.1), or the
//     materialize-and-sort fallback on the intractable side
//     (generalizing the facade's NewDirectAccessAny);
//   - it caches built structures in an LRU keyed by (query text, order,
//     FD set, SUM variables, instance version), so repeated requests
//     skip preprocessing entirely;
//   - concurrent requests for the same missing key share one build
//     (single-flight), and all structures are immutable after
//     construction, so any number of goroutines may probe one cached
//     Handle;
//   - instance mutation bumps the version and purges the cache, so the
//     Engine never serves answers computed on stale data (handles
//     already held by callers keep answering from their consistent
//     pre-mutation snapshot).
package engine

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rankedaccess/internal/access"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/selection"
	"rankedaccess/internal/shard"
	"rankedaccess/internal/values"
)

// ErrNoInverted reports that the planned structure cannot answer
// inverted access (the SUM structures have no inverse).
var ErrNoInverted = errors.New("engine: inverted access unsupported for this structure")

// ErrNotPrepared reports that no prepared query with the requested name
// is registered (see Engine.Register / Engine.Prepared).
var ErrNotPrepared = errors.New("engine: query not prepared")

// DefaultCacheSize bounds the accessor cache when Options.CacheSize is
// unset.
const DefaultCacheSize = 64

// Options configures an Engine.
type Options struct {
	// CacheSize bounds the number of cached access structures;
	// DefaultCacheSize when <= 0.
	CacheSize int
}

// Spec identifies a ranked-access request against the engine's instance.
// Exactly the textual inputs a remote caller can send; the engine parses
// and validates them.
type Spec struct {
	// Query is the conjunctive query text, e.g. "Q(x, z) :- R(x, y), S(y, z)".
	Query string
	// Order is a lexicographic order such as "x, z desc" (possibly
	// partial, possibly empty). Ignored when SumBy is set.
	Order string
	// SumBy, when non-empty, requests ranking by the sum of the named
	// variables' values (the identity-weight SUM order).
	SumBy []string
	// FDs are unary functional dependencies "R: x -> y" to refine the
	// classification (§8).
	FDs []string
	// Shards, when ≥ 2, requests hash-partitioned execution: the
	// instance is split on a partition variable, per-shard structures
	// are built in parallel, and accesses merge per-shard answer counts
	// (internal/shard). Queries that cannot be partitioned fall back to
	// a single structure; Plan.ShardNote records why. Values above
	// shard.MaxShards are clamped.
	Shards int
	// ShardBy optionally names the partition variable, which must be a
	// free variable of the query; empty picks the free variable
	// appearing in the most atoms. Ignored unless Shards ≥ 2.
	ShardBy string
}

// normShards canonicalizes a requested shard count: anything below 2 is
// unsharded, anything above the shard package's bound is clamped.
func normShards(p int) int {
	if p < 2 {
		return 1
	}
	if p > shard.MaxShards {
		return shard.MaxShards
	}
	return p
}

// Mode names the structure a plan selected.
type Mode string

const (
	// ModeLayeredLex is the ⟨n log n, log n⟩ layered structure.
	ModeLayeredLex Mode = "layered-lex"
	// ModeSum is the ⟨n log n, 1⟩ SUM structure.
	ModeSum Mode = "sum"
	// ModeMaterialized is the Θ(|Q(I)|) materialize-and-sort fallback
	// used on the intractable side of the dichotomies.
	ModeMaterialized Mode = "materialized"
)

// Plan records the planning outcome for a Spec.
type Plan struct {
	// Mode is the structure chosen.
	Mode Mode
	// Tractable reports the side of the paper's dichotomy the request
	// fell on.
	Tractable bool
	// Verdict is the classification with its certificate.
	Verdict classify.Verdict
	// Shards is the shard count actually used (0 when unsharded).
	Shards int
	// ShardBy is the partition variable actually used (empty when
	// unsharded).
	ShardBy string
	// ShardNote records why a sharding request fell back to a single
	// structure (empty when sharding succeeded or was not requested).
	ShardNote string
}

// Handle is a prepared, immutable, concurrency-safe access structure.
// Any number of goroutines may call its methods.
type Handle struct {
	// Query is the parsed query (answers index its variables).
	Query *cq.Query
	// Plan records how the request was served.
	Plan Plan

	// spec is the request this handle was built from; checkpoints
	// persist it so a warm start can re-key the structure.
	spec Spec

	lex      *access.Lex
	sum      *access.Sum
	mat      *access.Materialized
	matIsLex bool      // the materialization is lex-sorted (not SUM-sorted)
	matLex   order.Lex // realized order of a materialized-lex handle

	// Sharded serving: sh merges per-shard structures; shProject maps a
	// merged (possibly FD-extended) answer to the original query's
	// shape, shExtend maps a caller answer into the merged shape for
	// inverted access, and shNoInvert marks SUM groups (no inverse).
	sh         *shard.Handle
	shProject  func(order.Answer) order.Answer
	shExtend   func(order.Answer) (order.Answer, bool)
	shNoInvert bool
}

// Total returns |Q(I)| as of the handle's build.
func (h *Handle) Total() int64 {
	switch {
	case h.sh != nil:
		return h.sh.Total()
	case h.lex != nil:
		return h.lex.Total()
	case h.sum != nil:
		return h.sum.Total()
	default:
		return h.mat.Total()
	}
}

// Access returns the k-th answer in the handle's order.
func (h *Handle) Access(k int64) (order.Answer, error) {
	switch {
	case h.sh != nil:
		a, err := h.sh.Access(k)
		if err != nil {
			return nil, err
		}
		if h.shProject != nil {
			a = h.shProject(a)
		}
		return a, nil
	case h.lex != nil:
		return h.lex.Access(k)
	case h.sum != nil:
		return h.sum.Access(k)
	default:
		return h.mat.Access(k)
	}
}

// Inverted returns the index of an answer, when the underlying structure
// supports it (layered and materialized lex structures do; SUM-sorted
// structures do not).
func (h *Handle) Inverted(a order.Answer) (int64, error) {
	switch {
	case h.sh != nil:
		if h.shNoInvert {
			return 0, ErrNoInverted
		}
		if h.shExtend != nil {
			ext, ok := h.shExtend(a)
			if !ok {
				return 0, access.ErrNotAnAnswer
			}
			a = ext
		}
		return h.sh.Inverted(a)
	case h.lex != nil:
		return h.lex.Inverted(a)
	case h.matIsLex:
		return h.mat.Inverted(a, h.matLex)
	default:
		return 0, ErrNoInverted
	}
}

// HeadTuple projects an answer onto the query head, in head order.
func (h *Handle) HeadTuple(a order.Answer) []values.Value {
	return h.AppendHeadTuple(make([]values.Value, 0, len(h.Query.Head)), a)
}

// AppendHeadTuple appends the head projection of a to dst and returns
// the extended slice, allocating only when dst lacks capacity.
func (h *Handle) AppendHeadTuple(dst []values.Value, a order.Answer) []values.Value {
	for _, v := range h.Query.Head {
		dst = append(dst, a[v])
	}
	return dst
}

// Width returns the number of head columns of each answer tuple.
func (h *Handle) Width() int { return len(h.Query.Head) }

// ShardBuildNanos returns the per-shard build wall times of a sharded
// handle (nil when unsharded), for benchmarking and diagnostics.
func (h *Handle) ShardBuildNanos() []int64 {
	if h.sh == nil {
		return nil
	}
	return append([]int64(nil), h.sh.BuildNanos...)
}

// ShardTotals returns the per-shard answer counts of a sharded handle
// (nil when unsharded).
func (h *Handle) ShardTotals() []int64 {
	if h.sh == nil {
		return nil
	}
	return h.sh.PartTotals()
}

// AppendTuple appends the head tuple of the k-th answer to dst and
// returns the extended slice. On the layered structure this is the
// zero-allocation access path (probe scratch comes from a pool, output
// goes into dst); the other structures only pay dst growth.
func (h *Handle) AppendTuple(dst []values.Value, k int64) ([]values.Value, error) {
	switch {
	case h.sh != nil:
		return h.sh.AppendTuple(dst, h.Query.Head, k)
	case h.lex != nil:
		return h.lex.AppendTuple(dst, k)
	case h.sum != nil:
		a, err := h.sum.Access(k)
		if err != nil {
			return dst, err
		}
		return h.AppendHeadTuple(dst, a), nil
	default:
		a, err := h.mat.Access(k)
		if err != nil {
			return dst, err
		}
		return h.AppendHeadTuple(dst, a), nil
	}
}

// AccessRange appends the head tuples of answers k0 ≤ k < k1 to dst
// (Width values each, concatenated) and returns the extended slice. The
// per-call planning and buffer overhead is paid once for the whole
// range, so batched scans of a built structure run allocation-free
// modulo dst growth.
func (h *Handle) AccessRange(dst []values.Value, k0, k1 int64) ([]values.Value, error) {
	if k0 < 0 || k1 < k0 {
		return dst, fmt.Errorf("engine: bad access range [%d, %d)", k0, k1)
	}
	if h.sh != nil {
		return h.sh.AppendRange(dst, h.Query.Head, k0, k1)
	}
	if h.lex != nil {
		return h.lex.AppendRange(dst, k0, k1)
	}
	for k := k0; k < k1; k++ {
		var err error
		dst, err = h.AppendTuple(dst, k)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Hits and Misses count cache lookups by Prepare.
	Hits, Misses uint64
	// Entries is the current number of cached structures.
	Entries int
	// Version is the instance version (bumped by every mutation).
	Version uint64
	// Tuples is the instance size n.
	Tuples int
	// Prepared is the number of registered named queries.
	Prepared int
	// RegistryHits counts by-name probes served from a registered
	// query's current handle with zero spec re-parsing (not even a
	// cache-key construction).
	RegistryHits uint64
	// Reprepares counts automatic rebuilds of registered queries after
	// an instance-version change.
	Reprepares uint64
	// Checkpoints and Restores count snapshot writes and loads over the
	// engine's lifetime.
	Checkpoints, Restores uint64
	// WarmStructures is the number of access structures rehydrated from
	// the snapshot by the most recent Open/Restore (0 for a cold
	// engine).
	WarmStructures uint64
}

// flight is one in-progress build, shared by concurrent requesters.
type flight struct {
	done chan struct{}
	h    *Handle
	err  error
}

// Engine is a concurrency-safe planner/cache over one database instance.
type Engine struct {
	// mu guards the instance and version: builds and one-shot reads hold
	// it shared for their full duration, mutations hold it exclusively,
	// so a mutation never interleaves with a build.
	mu      sync.RWMutex
	in      *database.Instance
	version uint64

	// vnow mirrors version for lock-free staleness checks by registered
	// queries and cursors; it is written only under mu exclusive.
	vnow atomic.Uint64

	// cmu guards the cache and the in-flight build table.
	cmu     sync.Mutex
	cache   *lru
	flights map[string]*flight

	// rmu guards the named-query registry.
	rmu      sync.Mutex
	registry map[string]*PreparedQuery
	regGen   uint64

	hits, misses        atomic.Uint64
	regHits, reprepares atomic.Uint64

	// Snapshot state: counters plus the open file mappings warm
	// structures alias (released by Close, never before).
	checkpoints, restores, warmStructures atomic.Uint64
	smu                                   sync.Mutex
	mappings                              []io.Closer
}

// New returns an Engine over the given instance. The Engine owns the
// instance from here on: mutate it only through Mutate/AddRows.
func New(in *database.Instance, opts Options) *Engine {
	if in == nil {
		in = database.NewInstance()
	}
	size := opts.CacheSize
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &Engine{
		in:       in,
		cache:    newLRU(size),
		flights:  make(map[string]*flight),
		registry: make(map[string]*PreparedQuery),
	}
}

// invalidateLocked bumps the version and purges the cache; the caller
// holds mu exclusively.
func (e *Engine) invalidateLocked() {
	e.version++
	e.vnow.Store(e.version)
	e.cmu.Lock()
	e.cache.purge()
	e.cmu.Unlock()
}

// versionNow reads the instance version without locking; registered
// queries and cursors use it for staleness checks on their hot paths.
func (e *Engine) versionNow() uint64 { return e.vnow.Load() }

// Mutate applies f to the instance under the exclusive lock, bumps the
// instance version, and purges the accessor cache, so later requests are
// planned against the new data. Invalidation happens even when f panics:
// a partial mutation must not be served from stale cached structures.
func (e *Engine) Mutate(f func(*database.Instance)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.invalidateLocked()
	f(e.in)
}

// AddRows appends rows to the named relation (creating it on first use)
// and invalidates the cache. The rows are validated against the
// relation's arity (or each other, for a new relation) before anything
// is appended, so a bad batch leaves the instance untouched.
func (e *Engine) AddRows(rel string, rows [][]values.Value) error {
	if len(rows) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	arity := len(rows[0])
	if r := e.in.Relation(rel); r != nil {
		arity = r.Arity()
	}
	for _, row := range rows {
		if len(row) != arity {
			return fmt.Errorf("engine: relation %s has arity %d, row has %d", rel, arity, len(row))
		}
	}
	for _, row := range rows {
		e.in.AddRow(rel, row...)
	}
	e.invalidateLocked()
	return nil
}

// Version returns the current instance version.
func (e *Engine) Version() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	version, tuples := e.version, e.in.Size()
	e.mu.RUnlock()
	e.cmu.Lock()
	entries := e.cache.len()
	e.cmu.Unlock()
	e.rmu.Lock()
	prepared := len(e.registry)
	e.rmu.Unlock()
	return Stats{
		Hits:           e.hits.Load(),
		Misses:         e.misses.Load(),
		Entries:        entries,
		Version:        version,
		Tuples:         tuples,
		Prepared:       prepared,
		RegistryHits:   e.regHits.Load(),
		Reprepares:     e.reprepares.Load(),
		Checkpoints:    e.checkpoints.Load(),
		Restores:       e.restores.Load(),
		WarmStructures: e.warmStructures.Load(),
	}
}

// key canonicalizes a Spec into a cache key for one instance version.
// FD and SumBy lists are order-insensitive, and Order is dropped when
// SumBy is set (parse ignores it, so the built structure is identical).
// The shard count and partition variable are part of the accessor
// identity: the same query sharded differently is a different
// structure. ShardBy is dropped when the request is unsharded.
func (s Spec) key(version uint64) string {
	fds := append([]string(nil), s.FDs...)
	sort.Strings(fds)
	sumBy := append([]string(nil), s.SumBy...)
	sort.Strings(sumBy)
	lexOrder := s.Order
	if len(sumBy) > 0 {
		lexOrder = ""
	}
	shards := normShards(s.Shards)
	shardBy := s.ShardBy
	if shards == 1 {
		shardBy = ""
	}
	return fmt.Sprintf("%d\x00%s\x00%s\x00%s\x00%s\x00%d\x00%s",
		version, s.Query, lexOrder, strings.Join(sumBy, ","), strings.Join(fds, ";"),
		shards, shardBy)
}

// parsed is a Spec after parsing against its own query.
type parsed struct {
	q   *cq.Query
	l   order.Lex
	w   order.Sum
	fds fd.Set
	sum bool
}

func (s Spec) parse() (*parsed, error) {
	q, err := cq.Parse(s.Query)
	if err != nil {
		return nil, err
	}
	p := &parsed{q: q}
	for _, src := range s.FDs {
		set, err := fd.Parse(q, src)
		if err != nil {
			return nil, err
		}
		p.fds = append(p.fds, set...)
	}
	if len(s.SumBy) > 0 {
		p.sum = true
		vars := make([]cq.VarID, len(s.SumBy))
		for i, name := range s.SumBy {
			id, ok := q.VarByName(name)
			if !ok {
				return nil, fmt.Errorf("engine: sum variable %q not in query", name)
			}
			vars[i] = id
		}
		p.w = order.IdentitySum(vars...)
		return p, nil
	}
	l, err := order.ParseLex(q, s.Order)
	if err != nil {
		return nil, err
	}
	p.l = l
	return p, nil
}

// Prepare plans the request and returns a ready Handle, serving it from
// the cache when the same Spec was already built against the current
// instance version. Concurrent calls for the same missing key perform a
// single build.
func (e *Engine) Prepare(s Spec) (*Handle, error) {
	h, _, err := e.prepareVersioned(s)
	return h, err
}

// prepareVersioned is Prepare returning also the instance version the
// handle was resolved against, so registered queries can record which
// snapshot their current handle answers for.
func (e *Engine) prepareVersioned(s Spec) (*Handle, uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	version := e.version
	key := s.key(version)

	e.cmu.Lock()
	if h := e.cache.get(key); h != nil {
		e.cmu.Unlock()
		e.hits.Add(1)
		return h, version, nil
	}
	if fl, ok := e.flights[key]; ok {
		e.cmu.Unlock()
		e.hits.Add(1)
		// The builder also holds mu.RLock, so waiting here cannot
		// deadlock with a writer: both readers run to completion first.
		<-fl.done
		return fl.h, version, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	e.flights[key] = fl
	e.cmu.Unlock()
	e.misses.Add(1)

	fl.h, fl.err = e.build(s)
	close(fl.done)

	e.cmu.Lock()
	if fl.err == nil {
		e.cache.add(key, fl.h)
	}
	delete(e.flights, key)
	e.cmu.Unlock()
	return fl.h, version, fl.err
}

// build plans and constructs a structure; the caller holds mu.RLock, so
// the instance is stable throughout.
func (e *Engine) build(s Spec) (*Handle, error) {
	p, err := s.parse()
	if err != nil {
		return nil, err
	}
	shards := normShards(s.Shards)
	if shards > 1 && s.ShardBy != "" {
		// Reject a bad explicit partition variable instead of silently
		// falling back: the caller asked for something specific, and
		// some fallback paths never reach shard.Choose.
		if err := shard.ValidateBy(p.q, s.ShardBy); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	h := &Handle{Query: p.q, spec: s}
	var wfd classify.WithFDs // FD witness, reused by the sharded builders
	if p.sum {
		if len(p.fds) == 0 {
			h.Plan.Verdict = classify.DirectAccessSum(p.q)
		} else {
			h.Plan.Verdict, wfd = classify.DirectAccessSumFD(p.q, p.fds)
		}
		if h.Plan.Verdict.Tractable {
			if shards > 1 && e.shardSum(h, p, wfd, s.ShardBy, shards) {
				return h, nil
			}
			var sa *access.Sum
			if len(p.fds) == 0 {
				sa, err = access.BuildSum(p.q, e.in, p.w)
			} else {
				sa, err = access.BuildSumFD(p.q, e.in, p.w, p.fds)
			}
			if err == nil {
				h.Plan.Mode, h.Plan.Tractable, h.sum = ModeSum, true, sa
				return h, nil
			}
			var ie *access.IntractableError
			if !errors.As(err, &ie) {
				return nil, err
			}
		}
		h.Plan.Mode = ModeMaterialized
		if shards > 1 && e.shardMaterialized(h, p, s.ShardBy, shards) {
			return h, nil
		}
		h.mat = access.BuildMaterializedSum(p.q, e.in, p.w)
		return h, nil
	}

	if len(p.fds) == 0 {
		h.Plan.Verdict = classify.DirectAccessLex(p.q, p.l)
	} else {
		h.Plan.Verdict, wfd = classify.DirectAccessLexFD(p.q, p.l, p.fds)
	}
	if h.Plan.Verdict.Tractable {
		if shards > 1 && e.shardLex(h, p, wfd, s.ShardBy, shards) {
			return h, nil
		}
		var la *access.Lex
		if len(p.fds) == 0 {
			la, err = access.BuildLex(p.q, e.in, p.l)
		} else {
			la, err = access.BuildLexFD(p.q, e.in, p.l, p.fds)
		}
		if err == nil {
			h.Plan.Mode, h.Plan.Tractable, h.lex = ModeLayeredLex, true, la
			return h, nil
		}
		var ie *access.IntractableError
		if !errors.As(err, &ie) {
			return nil, err
		}
	}
	h.Plan.Mode = ModeMaterialized
	if shards > 1 && e.shardMaterialized(h, p, s.ShardBy, shards) {
		return h, nil
	}
	h.mat = access.BuildMaterializedLex(p.q, e.in, p.l)
	h.matIsLex = true
	h.matLex = p.l
	return h, nil
}

// shardFallback records why a sharded build fell back and clears any
// partial sharded state from the handle.
func (h *Handle) shardFallback(note string) bool {
	h.Plan.ShardNote = note
	h.sh, h.shProject, h.shExtend, h.shNoInvert = nil, nil, nil, false
	return false
}

// shardLex attempts a sharded layered build for a tractable lex spec;
// w is the FD witness build() already computed (zero without FDs). FD
// specs are extended globally first — the extension shares variable
// ids with the original query and the reordered order L⁺ sorts Q⁺(I⁺)
// exactly as L sorts Q(I) (Lemma 8.16) — and the plain extension is
// then partitioned, so every shard prices foreign candidates against
// complete FD-implied values. Returns true when h now serves sharded;
// false records a fallback note and leaves h untouched.
func (e *Engine) shardLex(h *Handle, p *parsed, w classify.WithFDs, by string, shards int) bool {
	q, in, l := p.q, e.in, p.l
	if len(p.fds) > 0 {
		if w.Ext == nil {
			return h.shardFallback("no FD extension available")
		}
		if err := p.fds.Check(p.q, e.in); err != nil {
			return h.shardFallback(err.Error())
		}
		iplus, err := w.Ext.ExtendInstance(p.q, e.in)
		if err != nil {
			return h.shardFallback(err.Error())
		}
		extender, err := w.Ext.AnswerExtender(p.q, e.in)
		if err != nil {
			return h.shardFallback(err.Error())
		}
		orig := p.q
		h.shProject = func(a order.Answer) order.Answer { return fd.ProjectAnswer(orig, a) }
		h.shExtend = extender
		q, in, l = w.Ext.Query, iplus, w.LPlus
	}
	pt, err := shard.Choose(q, by, shards)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	sh, err := shard.BuildLex(q, in, l, pt)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	h.sh = sh
	h.Plan.Mode, h.Plan.Tractable = ModeLayeredLex, true
	h.Plan.Shards, h.Plan.ShardBy = pt.P, pt.VarName
	return true
}

// shardSum is shardLex for tractable SUM specs. SUM groups have no
// inverse (as in the single-structure case). Promoted FD variables
// weigh zero (Lemma 8.5), so sharding the extension preserves weights.
func (e *Engine) shardSum(h *Handle, p *parsed, w classify.WithFDs, by string, shards int) bool {
	q, in := p.q, e.in
	if len(p.fds) > 0 {
		if w.Ext == nil {
			return h.shardFallback("no FD extension available")
		}
		if err := p.fds.Check(p.q, e.in); err != nil {
			return h.shardFallback(err.Error())
		}
		iplus, err := w.Ext.ExtendInstance(p.q, e.in)
		if err != nil {
			return h.shardFallback(err.Error())
		}
		orig := p.q
		h.shProject = func(a order.Answer) order.Answer { return fd.ProjectAnswer(orig, a) }
		q, in = w.Ext.Query, iplus
	}
	pt, err := shard.Choose(q, by, shards)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	sh, err := shard.BuildSum(q, in, p.w, pt)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	h.sh = sh
	h.shNoInvert = true
	h.Plan.Mode, h.Plan.Tractable = ModeSum, true
	h.Plan.Shards, h.Plan.ShardBy = pt.P, pt.VarName
	return true
}

// shardMaterialized attempts a sharded materialize-and-sort fallback:
// each shard materializes only its slice of the answer space, so even
// the intractable side parallelizes P ways. FDs do not change the
// answer set or the realized order here (the single-shard fallback
// ignores them too), so the original query is partitioned directly.
func (e *Engine) shardMaterialized(h *Handle, p *parsed, by string, shards int) bool {
	pt, err := shard.Choose(p.q, by, shards)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	var sh *shard.Handle
	if p.sum {
		sh, err = shard.BuildMaterializedSum(p.q, e.in, p.w, pt)
		h.shNoInvert = true
	} else {
		sh, err = shard.BuildMaterializedLex(p.q, e.in, p.l, pt)
	}
	if err != nil {
		return h.shardFallback(err.Error())
	}
	h.sh = sh
	h.Plan.Mode = ModeMaterialized
	h.Plan.Shards, h.Plan.ShardBy = pt.P, pt.VarName
	return true
}

// Access is Prepare plus a batch of probes in one call: it returns the
// handle (for Total and further probes) and one head tuple or error per
// requested index. The final error reports a planning failure (bad
// query, bad order); per-index failures such as out-of-bound indices
// land in errs without failing the batch.
func (e *Engine) Access(s Spec, ks []int64) (*Handle, [][]values.Value, []error, error) {
	h, err := e.Prepare(s)
	if err != nil {
		return nil, nil, nil, err
	}
	tuples := make([][]values.Value, len(ks))
	errs := make([]error, len(ks))
	// One flat backing array serves the whole batch; each answer is a
	// capped sub-slice of it.
	flat := make([]values.Value, 0, len(ks)*h.Width())
	for i, k := range ks {
		start := len(flat)
		flat, err = h.AppendTuple(flat, k)
		if err != nil {
			errs[i] = err
			flat = flat[:start]
			continue
		}
		tuples[i] = flat[start:len(flat):len(flat)]
	}
	return h, tuples, errs, nil
}

// AccessRange is Prepare plus a contiguous probe batch: it returns the
// handle and the head tuples of answers k0 ≤ k < k1 appended to dst
// (h.Width values per answer), amortizing planning, cache lookup, and
// probe-buffer setup over the whole range.
func (e *Engine) AccessRange(s Spec, dst []values.Value, k0, k1 int64) (*Handle, []values.Value, error) {
	h, err := e.Prepare(s)
	if err != nil {
		return nil, dst, err
	}
	dst, err = h.AccessRange(dst, k0, k1)
	return h, dst, err
}

// Select answers the one-shot selection problem — O(n) for lex orders,
// O(n log n) for SUM — without building or caching any structure.
func (e *Engine) Select(s Spec, k int64) ([]values.Value, error) {
	p, err := s.parse()
	if err != nil {
		return nil, err
	}
	return e.selectParsed(p, k)
}

// selectParsed is Select after parsing; registered queries call it with
// their cached parse, skipping per-request spec processing.
func (e *Engine) selectParsed(p *parsed, k int64) ([]values.Value, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var err error
	var a order.Answer
	switch {
	case p.sum && len(p.fds) == 0:
		a, err = selection.SelectSum(p.q, e.in, p.w, k)
	case p.sum:
		a, err = selection.SelectSumFD(p.q, e.in, p.w, p.fds, k)
	case len(p.fds) == 0:
		a, err = selection.SelectLex(p.q, e.in, p.l, k)
	default:
		a, err = selection.SelectLexFD(p.q, e.in, p.l, p.fds, k)
	}
	if err != nil {
		return nil, err
	}
	out := make([]values.Value, len(p.q.Head))
	for i, v := range p.q.Head {
		out[i] = a[v]
	}
	return out, nil
}

// Count returns |Q(I)| in linear time for free-connex queries.
func (e *Engine) Count(query string) (int64, error) {
	n, _, err := e.CountSharded(query, 0, "")
	return n, err
}

// CountInfo reports how a CountSharded request was executed: the shard
// count and partition variable actually used (zero/empty when the
// count ran unsharded), and the fallback reason if sharding was
// requested but impossible.
type CountInfo struct {
	Shards    int
	ShardBy   string
	ShardNote string
}

// CountSharded is Count with scatter-gather: for shards ≥ 2 the
// instance is partitioned, every shard is counted in parallel, and the
// counts sum (shard answer sets partition Q(I)). Queries that cannot
// be partitioned fall back to the single-instance count, recorded in
// the returned CountInfo; an explicit partition variable that is not a
// free variable of the query is an error.
func (e *Engine) CountSharded(query string, shards int, by string) (int64, CountInfo, error) {
	var info CountInfo
	q, err := cq.Parse(query)
	if err != nil {
		return 0, info, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if p := normShards(shards); p > 1 {
		pt, err := shard.Choose(q, by, p)
		var ue *shard.UnshardableError
		switch {
		case err == nil:
			if n, err := shard.Count(q, e.in, pt); err == nil {
				info.Shards, info.ShardBy = pt.P, pt.VarName
				return n, info, nil
			}
			// Per-shard counting failures are query-level (not
			// free-connex); the single-instance path reproduces the
			// error exactly.
			info.ShardNote = "per-shard count failed; recounted unsharded"
		case errors.As(err, &ue):
			info.ShardNote = err.Error()
		default:
			return 0, info, err
		}
	}
	n, err := selection.CountAnswers(q, e.in)
	return n, info, err
}

// Problem names for Classify.
const (
	ProblemDirectAccessLex = "direct-access-lex"
	ProblemSelectionLex    = "selection-lex"
	ProblemDirectAccessSum = "direct-access-sum"
	ProblemSelectionSum    = "selection-sum"
)

// Classify runs the paper's dichotomy for the named problem on a Spec.
func (e *Engine) Classify(problem string, s Spec) (classify.Verdict, error) {
	p, err := s.parse()
	if err != nil {
		return classify.Verdict{}, err
	}
	return classifyParsed(problem, p)
}

// classifyParsed is Classify after parsing (the dichotomies depend only
// on the query, order, and FDs — never on data).
func classifyParsed(problem string, p *parsed) (classify.Verdict, error) {
	hasFDs := len(p.fds) > 0
	switch problem {
	case ProblemDirectAccessLex:
		if hasFDs {
			v, _ := classify.DirectAccessLexFD(p.q, p.l, p.fds)
			return v, nil
		}
		return classify.DirectAccessLex(p.q, p.l), nil
	case ProblemSelectionLex:
		if hasFDs {
			v, _ := classify.SelectionLexFD(p.q, p.l, p.fds)
			return v, nil
		}
		return classify.SelectionLex(p.q, p.l), nil
	case ProblemDirectAccessSum:
		if hasFDs {
			v, _ := classify.DirectAccessSumFD(p.q, p.fds)
			return v, nil
		}
		return classify.DirectAccessSum(p.q), nil
	case ProblemSelectionSum:
		if hasFDs {
			v, _ := classify.SelectionSumFD(p.q, p.fds)
			return v, nil
		}
		return classify.SelectionSum(p.q), nil
	default:
		return classify.Verdict{}, fmt.Errorf("engine: unknown problem %q", problem)
	}
}
