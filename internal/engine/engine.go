// Package engine serves repeated ranked-access workloads over one
// mutable database instance.
//
// The paper's structures pay O(n log n) preprocessing per (query, order)
// pair and then answer each access in O(log n); a service answering many
// probes of the same pair must therefore build once and probe many
// times. The Engine does exactly that:
//
//   - it plans each request by running the paper's classification first
//     and picking the best structure — the layered lexicographic
//     structure (Theorem 4.1), the SUM structure (Theorem 5.1), or the
//     materialize-and-sort fallback on the intractable side
//     (generalizing the facade's NewDirectAccessAny);
//   - it caches built structures in an LRU keyed by (query text, order,
//     FD set, SUM variables, instance version), so repeated requests
//     skip preprocessing entirely;
//   - concurrent requests for the same missing key share one build
//     (single-flight), and all structures are immutable after
//     construction, so any number of goroutines may probe one cached
//     Handle;
//   - mutations are MVCC: every write appends a batch to a write-ahead
//     log (internal/delta) and bumps the version, but never purges the
//     cache. A later Prepare of a stale structure catches up by
//     replaying the logged batches — republishing the structure
//     unchanged when no batch touches its relations, merging the
//     answer-level delta in as a small sorted overlay
//     (internal/access.Overlay) when one does, and falling back to a
//     full rebuild only when the delta is opaque (Engine.Mutate), the
//     log tail no longer reaches back, or the overlay grew past the
//     hard limit. Once an overlay crosses the soft threshold a
//     background re-preprocess rebuilds the structure and atomically
//     swaps it into the cache while readers keep probing the published
//     epoch. Handles and cursors always answer from the immutable epoch
//     they were acquired on, so writes never invalidate an in-progress
//     scan.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/delta"
	"rankedaccess/internal/faultfs"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/reqid"
	"rankedaccess/internal/selection"
	"rankedaccess/internal/shard"
	"rankedaccess/internal/trace"
	"rankedaccess/internal/values"
)

// ErrNoInverted reports that the planned structure cannot answer
// inverted access (the SUM structures have no inverse).
var ErrNoInverted = errors.New("engine: inverted access unsupported for this structure")

// ErrNotPrepared reports that no prepared query with the requested name
// is registered (see Engine.Register / Engine.Prepared).
var ErrNotPrepared = errors.New("engine: query not prepared")

// DefaultCacheSize bounds the accessor cache when Options.CacheSize is
// unset.
const DefaultCacheSize = 64

// DefaultDeltaSoft is the overlay edit count past which a background
// re-preprocess is scheduled (the overlay keeps serving meanwhile).
const DefaultDeltaSoft = 512

// DefaultDeltaHard is the overlay edit count past which a catch-up
// gives up on merging and rebuilds synchronously: beyond it the
// O(log d) overlay search and the delta evaluation stop being cheaper
// than preprocessing.
const DefaultDeltaHard = 4096

// Options configures an Engine.
type Options struct {
	// CacheSize bounds the number of cached access structures;
	// DefaultCacheSize when <= 0.
	CacheSize int
	// DeltaSoft is the overlay size that triggers a background rebuild;
	// DefaultDeltaSoft when <= 0.
	DeltaSoft int
	// DeltaHard is the overlay size that forces a synchronous rebuild;
	// DefaultDeltaHard when <= 0.
	DeltaHard int
	// FS is the filesystem the durability layer (WAL, checkpoints) runs
	// on; faultfs.OS() when nil. Chaos tests substitute a
	// faultfs.Injector here.
	FS faultfs.FS
	// Logger, when non-nil, receives structured events from the
	// engine's slow paths — synchronous structure builds, background
	// rebuilds, WAL append failures. Build events carry the request id
	// of the triggering request (internal/reqid) when the context has
	// one, so operators can join an expensive build to the request that
	// paid for it. Nil disables engine logging; the hot probe paths
	// never log either way.
	Logger *slog.Logger
	// Remote, when non-nil, turns the engine into a distributed
	// coordinator: Prepare delegates planning and building to the
	// RemoteBuilder, Count scatters to the cluster, and the write path
	// returns ErrReadOnly (the coordinator owns no data). All caching,
	// single-flight, registry, and cursor machinery still applies —
	// remote handles are cached and shared like local ones.
	Remote RemoteBuilder
}

// Spec identifies a ranked-access request against the engine's instance.
// Exactly the textual inputs a remote caller can send; the engine parses
// and validates them.
type Spec struct {
	// Query is the conjunctive query text, e.g. "Q(x, z) :- R(x, y), S(y, z)".
	Query string
	// Order is a lexicographic order such as "x, z desc" (possibly
	// partial, possibly empty). Ignored when SumBy is set.
	Order string
	// SumBy, when non-empty, requests ranking by the sum of the named
	// variables' values (the identity-weight SUM order).
	SumBy []string
	// FDs are unary functional dependencies "R: x -> y" to refine the
	// classification (§8).
	FDs []string
	// Shards, when ≥ 2, requests hash-partitioned execution: the
	// instance is split on a partition variable, per-shard structures
	// are built in parallel, and accesses merge per-shard answer counts
	// (internal/shard). Queries that cannot be partitioned fall back to
	// a single structure; Plan.ShardNote records why. Values above
	// shard.MaxShards are clamped.
	Shards int
	// ShardBy optionally names the partition variable, which must be a
	// free variable of the query; empty picks the free variable
	// appearing in the most atoms. Ignored unless Shards ≥ 2.
	ShardBy string
}

// normShards canonicalizes a requested shard count: anything below 2 is
// unsharded, anything above the shard package's bound is clamped.
func normShards(p int) int {
	if p < 2 {
		return 1
	}
	if p > shard.MaxShards {
		return shard.MaxShards
	}
	return p
}

// Mode names the structure a plan selected.
type Mode string

const (
	// ModeLayeredLex is the ⟨n log n, log n⟩ layered structure.
	ModeLayeredLex Mode = "layered-lex"
	// ModeSum is the ⟨n log n, 1⟩ SUM structure.
	ModeSum Mode = "sum"
	// ModeMaterialized is the Θ(|Q(I)|) materialize-and-sort fallback
	// used on the intractable side of the dichotomies.
	ModeMaterialized Mode = "materialized"
)

// Plan records the planning outcome for a Spec.
type Plan struct {
	// Mode is the structure chosen.
	Mode Mode
	// Tractable reports the side of the paper's dichotomy the request
	// fell on.
	Tractable bool
	// Verdict is the classification with its certificate.
	Verdict classify.Verdict
	// Shards is the shard count actually used (0 when unsharded).
	Shards int
	// ShardBy is the partition variable actually used (empty when
	// unsharded).
	ShardBy string
	// ShardNote records why a sharding request fell back to a single
	// structure (empty when sharding succeeded or was not requested).
	ShardNote string
}

// Handle is a prepared, immutable, concurrency-safe access structure.
// Any number of goroutines may call its methods.
type Handle struct {
	// Query is the parsed query (answers index its variables).
	Query *cq.Query
	// Plan records how the request was served.
	Plan Plan

	// spec is the request this handle was built from; checkpoints
	// persist it so a warm start can re-key the structure.
	spec Spec

	// version is the instance version (WAL sequence) this handle's
	// answers reflect: the epoch it was built or caught up to.
	version uint64
	// rels is the set of relation symbols the query references; batches
	// touching none of them republish the handle unchanged.
	rels map[string]bool

	lex      *access.Lex
	sum      *access.Sum
	mat      *access.Materialized
	matIsLex bool      // the materialization is lex-sorted (not SUM-sorted)
	matLex   order.Lex // realized order of a materialized-lex handle
	sumW     order.Sum // weights of a SUM-ordered handle (sum or mat-sum)

	// Delta overlay: when ov is non-nil every probe goes through the
	// merged view of ovBase (an adapter over lex/sum/mat) plus the
	// answer-level edits ovAdds/ovDels accumulated since the base was
	// built. Immutable, like everything else on a Handle: a catch-up
	// publishes a new Handle with a new overlay.
	ov     *access.Overlay
	ovBase *access.MergeBase
	ovAdds []order.Answer
	ovDels []order.Answer

	// Sharded serving: sh merges per-shard structures; shProject maps a
	// merged (possibly FD-extended) answer to the original query's
	// shape, shExtend maps a caller answer into the merged shape for
	// inverted access, and shNoInvert marks SUM groups (no inverse).
	sh         *shard.Handle
	shProject  func(order.Answer) order.Answer
	shExtend   func(order.Answer) (order.Answer, bool)
	shNoInvert bool
}

// Version returns the instance version (epoch) the handle answers for.
func (h *Handle) Version() uint64 { return h.version }

// DeltaEdits returns the number of answer-level edits the handle's
// overlay carries (0 for a handle serving its base structure directly).
func (h *Handle) DeltaEdits() int {
	if h.ov == nil {
		return 0
	}
	return h.ov.Edits()
}

// Total returns |Q(I)| as of the handle's build.
func (h *Handle) Total() int64 {
	switch {
	case h.ov != nil:
		return h.ov.Total()
	case h.sh != nil:
		return h.sh.Total()
	case h.lex != nil:
		return h.lex.Total()
	case h.sum != nil:
		return h.sum.Total()
	default:
		return h.mat.Total()
	}
}

// Access returns the k-th answer in the handle's order.
func (h *Handle) Access(k int64) (order.Answer, error) {
	return h.AccessCtx(context.Background(), k)
}

// AccessCtx is Access with a caller context: on a coordinator handle
// the context rides the network scatter (trace propagation, deadline);
// in-process structures ignore it.
func (h *Handle) AccessCtx(ctx context.Context, k int64) (order.Answer, error) {
	switch {
	case h.ov != nil:
		return h.ov.Access(k)
	case h.sh != nil:
		a, err := h.sh.AccessCtx(ctx, k)
		if err != nil {
			return nil, err
		}
		if h.shProject != nil {
			a = h.shProject(a)
		}
		return a, nil
	case h.lex != nil:
		return h.lex.Access(k)
	case h.sum != nil:
		return h.sum.Access(k)
	default:
		return h.mat.Access(k)
	}
}

// Inverted returns the index of an answer, when the underlying structure
// supports it (layered and materialized lex structures do; SUM-sorted
// structures do not).
func (h *Handle) Inverted(a order.Answer) (int64, error) {
	switch {
	case h.ov != nil:
		if h.sum != nil || (h.mat != nil && !h.matIsLex) {
			return 0, ErrNoInverted
		}
		return h.ov.Inverted(a)
	case h.sh != nil:
		if h.shNoInvert {
			return 0, ErrNoInverted
		}
		if h.shExtend != nil {
			ext, ok := h.shExtend(a)
			if !ok {
				return 0, access.ErrNotAnAnswer
			}
			a = ext
		}
		return h.sh.Inverted(a)
	case h.lex != nil:
		return h.lex.Inverted(a)
	case h.matIsLex:
		return h.mat.Inverted(a, h.matLex)
	default:
		return 0, ErrNoInverted
	}
}

// HeadTuple projects an answer onto the query head, in head order.
func (h *Handle) HeadTuple(a order.Answer) []values.Value {
	return h.AppendHeadTuple(make([]values.Value, 0, len(h.Query.Head)), a)
}

// AppendHeadTuple appends the head projection of a to dst and returns
// the extended slice, allocating only when dst lacks capacity.
func (h *Handle) AppendHeadTuple(dst []values.Value, a order.Answer) []values.Value {
	for _, v := range h.Query.Head {
		dst = append(dst, a[v])
	}
	return dst
}

// Width returns the number of head columns of each answer tuple.
func (h *Handle) Width() int { return len(h.Query.Head) }

// ShardBuildNanos returns the per-shard build wall times of a sharded
// handle (nil when unsharded), for benchmarking and diagnostics.
func (h *Handle) ShardBuildNanos() []int64 {
	if h.sh == nil {
		return nil
	}
	return append([]int64(nil), h.sh.BuildNanos...)
}

// ShardTotals returns the per-shard answer counts of a sharded handle
// (nil when unsharded).
func (h *Handle) ShardTotals() []int64 {
	if h.sh == nil {
		return nil
	}
	return h.sh.PartTotals()
}

// AppendTuple appends the head tuple of the k-th answer to dst and
// returns the extended slice. On the layered structure this is the
// zero-allocation access path (probe scratch comes from a pool, output
// goes into dst); the other structures only pay dst growth.
func (h *Handle) AppendTuple(dst []values.Value, k int64) ([]values.Value, error) {
	return h.AppendTupleCtx(context.Background(), dst, k)
}

// AppendTupleCtx is AppendTuple with a caller context (see AccessCtx).
func (h *Handle) AppendTupleCtx(ctx context.Context, dst []values.Value, k int64) ([]values.Value, error) {
	switch {
	case h.ov != nil:
		return h.ov.AppendTuple(dst, k)
	case h.sh != nil:
		return h.sh.AppendTupleCtx(ctx, dst, h.Query.Head, k)
	case h.lex != nil:
		return h.lex.AppendTuple(dst, k)
	case h.sum != nil:
		a, err := h.sum.Access(k)
		if err != nil {
			return dst, err
		}
		return h.AppendHeadTuple(dst, a), nil
	default:
		a, err := h.mat.Access(k)
		if err != nil {
			return dst, err
		}
		return h.AppendHeadTuple(dst, a), nil
	}
}

// AccessRange appends the head tuples of answers k0 ≤ k < k1 to dst
// (Width values each, concatenated) and returns the extended slice. The
// per-call planning and buffer overhead is paid once for the whole
// range, so batched scans of a built structure run allocation-free
// modulo dst growth.
func (h *Handle) AccessRange(dst []values.Value, k0, k1 int64) ([]values.Value, error) {
	return h.AccessRangeCtx(context.Background(), dst, k0, k1)
}

// AccessRangeCtx is AccessRange with a caller context (see AccessCtx).
func (h *Handle) AccessRangeCtx(ctx context.Context, dst []values.Value, k0, k1 int64) ([]values.Value, error) {
	if k0 < 0 || k1 < k0 {
		return dst, fmt.Errorf("engine: bad access range [%d, %d)", k0, k1)
	}
	if h.ov != nil {
		return h.ov.AppendRange(dst, k0, k1)
	}
	if h.sh != nil {
		return h.sh.AppendRangeCtx(ctx, dst, h.Query.Head, k0, k1)
	}
	if h.lex != nil {
		return h.lex.AppendRange(dst, k0, k1)
	}
	for k := k0; k < k1; k++ {
		var err error
		dst, err = h.AppendTupleCtx(ctx, dst, k)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Hits and Misses count cache lookups by Prepare.
	Hits, Misses uint64
	// Entries is the current number of cached structures.
	Entries int
	// Version is the instance version (bumped by every mutation).
	Version uint64
	// Tuples is the instance size n.
	Tuples int
	// Prepared is the number of registered named queries.
	Prepared int
	// RegistryHits counts by-name probes served from a registered
	// query's current handle with zero spec re-parsing (not even a
	// cache-key construction).
	RegistryHits uint64
	// Reprepares counts automatic rebuilds of registered queries after
	// an instance-version change.
	Reprepares uint64
	// Checkpoints and Restores count snapshot writes and loads over the
	// engine's lifetime.
	Checkpoints, Restores uint64
	// WarmStructures is the number of access structures rehydrated from
	// the snapshot by the most recent Open/Restore (0 for a cold
	// engine).
	WarmStructures uint64
	// WALBatches counts mutation batches applied through the write path.
	WALBatches uint64
	// DeltaSkips counts stale structures republished unchanged because
	// no logged batch touched their relations.
	DeltaSkips uint64
	// DeltaEpochs counts overlay epochs published: stale structures that
	// absorbed writes by merging the answer-level delta instead of
	// rebuilding.
	DeltaEpochs uint64
	// DeltaRebuilds counts stale structures that had to rebuild
	// synchronously (opaque reset, truncated log tail, ineligible
	// structure, or an overlay past the hard limit).
	DeltaRebuilds uint64
	// BGRebuilds counts background re-preprocesses that completed and
	// swapped a fresh structure into the cache.
	BGRebuilds uint64
	// WALErrors counts durable-WAL append failures that were absorbed
	// rather than returned (Mutate's reset marker, whose replay is a
	// no-op anyway). Nonzero means the disk under the WAL is unhealthy.
	WALErrors uint64
}

// flight is one in-progress build, shared by concurrent requesters.
type flight struct {
	done chan struct{}
	h    *Handle
	err  error
}

// Engine is a concurrency-safe planner/cache over one database instance.
type Engine struct {
	// mu guards the instance and version: builds and one-shot reads hold
	// it shared for their full duration, mutations hold it exclusively,
	// so a mutation never interleaves with a build.
	mu      sync.RWMutex
	in      *database.Instance
	version uint64

	// vnow mirrors version for lock-free staleness checks by registered
	// queries and cursors; it is written only under mu exclusive.
	vnow atomic.Uint64

	// snapDir is the snapshot directory a WAL-attached engine was opened
	// from; a live Restore checkpoints into it so the restored lineage
	// is durable before the pre-restore WAL frames are discarded.
	snapDir string

	// wlog is the in-memory WAL tail stale structures catch up from;
	// wal, when non-nil (snapshot-dir engines), is the durable on-disk
	// log. Both are appended under mu exclusive.
	wlog *delta.Log
	wal  *delta.WAL

	// deltaSoft/deltaHard are the overlay thresholds (see Options).
	deltaSoft, deltaHard int

	// fs is the filesystem under the WAL and checkpoint files (see
	// Options.FS).
	fs faultfs.FS

	// cmu guards the cache, the in-flight build table, and the
	// background-rebuild dedup set.
	cmu          sync.Mutex
	cache        *lru
	flights      map[string]*flight
	bgRebuilding map[string]bool

	// bg tracks background re-preprocess goroutines (Quiesce waits).
	bg sync.WaitGroup

	// life is the engine's lifetime context: background rebuilds build
	// under it, so Close abandons them at the next wave boundary instead
	// of waiting out a full O(n log n) preprocess.
	life context.Context
	stop context.CancelFunc

	// log receives slow-path events (see Options.Logger); nil means
	// logging is off.
	log *slog.Logger

	// remote, when non-nil, makes this a coordinator engine (see
	// Options.Remote).
	remote RemoteBuilder

	// rmu guards the named-query registry.
	rmu      sync.Mutex
	registry map[string]*PreparedQuery
	regGen   uint64

	hits, misses        atomic.Uint64
	regHits, reprepares atomic.Uint64

	walBatches, deltaSkips, deltaEpochs atomic.Uint64
	deltaRebuilds, bgRebuilds           atomic.Uint64
	walErrors                           atomic.Uint64

	// Snapshot state: counters plus the open file mappings warm
	// structures alias (released by Close, never before).
	checkpoints, restores, warmStructures atomic.Uint64
	smu                                   sync.Mutex
	mappings                              []io.Closer
}

// New returns an Engine over the given instance. The Engine owns the
// instance from here on: mutate it only through the write path
// (ApplyBatch/AddRows/DeleteRows/Mutate).
func New(in *database.Instance, opts Options) *Engine {
	if in == nil {
		in = database.NewInstance()
	}
	size := opts.CacheSize
	if size <= 0 {
		size = DefaultCacheSize
	}
	soft := opts.DeltaSoft
	if soft <= 0 {
		soft = DefaultDeltaSoft
	}
	hard := opts.DeltaHard
	if hard <= 0 {
		hard = DefaultDeltaHard
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS()
	}
	life, stop := context.WithCancel(context.Background())
	return &Engine{
		in:           in,
		wlog:         delta.NewLog(0),
		deltaSoft:    soft,
		deltaHard:    hard,
		fs:           fsys,
		life:         life,
		stop:         stop,
		log:          opts.Logger,
		remote:       opts.Remote,
		cache:        newLRU(size),
		flights:      make(map[string]*flight),
		bgRebuilding: make(map[string]bool),
		registry:     make(map[string]*PreparedQuery),
	}
}

// versionNow reads the instance version without locking; registered
// queries use it for staleness checks on their hot paths.
func (e *Engine) versionNow() uint64 { return e.vnow.Load() }

// ApplyBatch atomically applies one batch of relational mutations: the
// batch is validated in full, appended to the durable WAL (when one is
// attached) and the in-memory log, applied to the instance, and
// published as the new instance version, which it returns. Cached
// structures are NOT purged: the next request for one catches up from
// the log — see the package comment.
func (e *Engine) ApplyBatch(muts []delta.Mutation) (uint64, error) {
	return e.ApplyBatchCtx(context.Background(), muts)
}

// ApplyBatchCtx is ApplyBatch with a caller context, used only for
// trace attribution: the WAL append and in-memory apply are recorded
// as span events on the request's span when one is active.
func (e *Engine) ApplyBatchCtx(ctx context.Context, muts []delta.Mutation) (uint64, error) {
	if e.remote != nil {
		return 0, ErrReadOnly
	}
	for i := range muts {
		if err := muts[i].Validate(); err != nil {
			return 0, fmt.Errorf("engine: %w", err)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := validateArity(e.in, muts); err != nil {
		return 0, err
	}
	b := delta.Batch{Seq: e.version + 1, Muts: muts}
	if e.wal != nil {
		walStart := time.Now()
		if err := e.wal.Append(b); err != nil {
			if e.log != nil {
				e.log.LogAttrs(context.Background(), slog.LevelError, "engine: wal append failed",
					slog.Uint64("seq", b.Seq), slog.String("error", err.Error()))
			}
			return 0, fmt.Errorf("engine: %w", err)
		}
		trace.FromContext(ctx).AddEvent("wal.append",
			trace.Int("seq", int64(b.Seq)),
			trace.Int("mutations", int64(len(muts))),
			trace.Int("duration_us", time.Since(walStart).Microseconds()))
	}
	applyMuts(e.in, muts)
	e.wlog.Append(b)
	e.version = b.Seq
	e.vnow.Store(b.Seq)
	e.walBatches.Add(1)
	return b.Seq, nil
}

// validateArity checks every mutation's arity against the instance AND
// against earlier mutations in the same batch, so a batch that creates
// a relation cannot disagree with itself about its arity. This must
// catch everything applyMuts would choke on BEFORE the batch reaches
// the durable WAL: a poisoned frame would otherwise fail again on every
// replay, turning one bad request into a crash loop across restarts.
func validateArity(in *database.Instance, muts []delta.Mutation) error {
	var created map[string]int
	for i := range muts {
		m := &muts[i]
		if m.Op == delta.OpReset {
			continue
		}
		if r := in.Relation(m.Rel); r != nil {
			if r.Arity() != m.Arity {
				return fmt.Errorf("engine: relation %s has arity %d, %s has %d", m.Rel, r.Arity(), m.Op, m.Arity)
			}
			continue
		}
		if a, ok := created[m.Rel]; ok {
			if a != m.Arity {
				return fmt.Errorf("engine: relation %s has arity %d earlier in the batch, %s has %d", m.Rel, a, m.Op, m.Arity)
			}
			continue
		}
		if created == nil {
			created = make(map[string]int)
		}
		created[m.Rel] = m.Arity
	}
	return nil
}

// applyMuts applies validated mutations to the instance. OpReset
// applies nothing: it is a marker for an opaque change that already
// happened (live) or that only the next checkpoint carries (replay).
func applyMuts(in *database.Instance, muts []delta.Mutation) {
	for i := range muts {
		m := &muts[i]
		switch m.Op {
		case delta.OpInsert:
			for r := 0; r < m.NumRows(); r++ {
				in.AddRow(m.Rel, m.Row(r)...)
			}
		case delta.OpDelete:
			for r := 0; r < m.NumRows(); r++ {
				in.DeleteRow(m.Rel, m.Row(r)...)
			}
		}
	}
}

// AddRows appends rows to the named relation (creating it on first
// use) through the write path. The rows are validated against the
// relation's arity (or each other, for a new relation) before anything
// is appended, so a bad batch leaves the instance untouched.
func (e *Engine) AddRows(rel string, rows [][]values.Value) error {
	m, err := rowsMutation(delta.OpInsert, rel, rows)
	if err != nil || m == nil {
		return err
	}
	_, err = e.ApplyBatch([]delta.Mutation{*m})
	return err
}

// DeleteRows removes every occurrence of each given row from the named
// relation through the write path. Rows absent from the relation are
// ignored (deletion is idempotent, which also makes WAL replay safe).
func (e *Engine) DeleteRows(rel string, rows [][]values.Value) error {
	m, err := rowsMutation(delta.OpDelete, rel, rows)
	if err != nil || m == nil {
		return err
	}
	_, err = e.ApplyBatch([]delta.Mutation{*m})
	return err
}

// rowsMutation flattens row slices into one mutation record, checking
// the rows agree on one arity (nil for an empty batch).
func rowsMutation(op delta.Op, rel string, rows [][]values.Value) (*delta.Mutation, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	arity := len(rows[0])
	flat := make([]values.Value, 0, len(rows)*arity)
	for _, row := range rows {
		if len(row) != arity {
			return nil, fmt.Errorf("engine: relation %s has arity %d, row has %d", rel, arity, len(row))
		}
		flat = append(flat, row...)
	}
	return &delta.Mutation{Op: op, Rel: rel, Arity: arity, Rows: flat}, nil
}

// Mutate applies an opaque mutation f to the instance under the
// exclusive lock. The engine fingerprints every relation before and
// after f and logs one OpReset batch naming exactly the relations that
// changed, so structures over untouched relations republish cheaply
// while structures over reset relations rebuild (a row-level delta is
// unknowable for an opaque f). The version moves only when something
// actually changed. The reset is logged even when f panics: a partial
// mutation must not be served from stale structures.
func (e *Engine) Mutate(f func(*database.Instance)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	before := fingerprints(e.in)
	defer func() {
		after := fingerprints(e.in)
		var muts []delta.Mutation
		for name, fp := range after {
			if b, ok := before[name]; !ok || b != fp {
				muts = append(muts, delta.Mutation{Op: delta.OpReset, Rel: name})
			}
		}
		for name := range before {
			if _, ok := after[name]; !ok {
				muts = append(muts, delta.Mutation{Op: delta.OpReset, Rel: name})
			}
		}
		if len(muts) == 0 {
			return
		}
		sort.Slice(muts, func(i, j int) bool { return muts[i].Rel < muts[j].Rel })
		b := delta.Batch{Seq: e.version + 1, Muts: muts}
		if e.wal != nil {
			// A reset replays as a no-op either way (opaque changes are
			// durable only through the next checkpoint), so a failed
			// append loses nothing but the seq advance marker — but it
			// is still an I/O error on the durability path, so count it
			// (Stats.WALErrors) instead of dropping it on the floor.
			if err := e.wal.Append(b); err != nil {
				e.walErrors.Add(1)
				if e.log != nil {
					e.log.LogAttrs(context.Background(), slog.LevelWarn, "engine: wal append failed (absorbed)",
						slog.Uint64("seq", b.Seq), slog.String("error", err.Error()))
				}
			}
		}
		e.wlog.Append(b)
		e.version = b.Seq
		e.vnow.Store(b.Seq)
		e.walBatches.Add(1)
	}()
	f(e.in)
}

// relFP fingerprints one relation for Mutate's touched-set detection:
// arity and length compared exactly, contents compared by a 64-bit
// FNV-1a hash. Equal fingerprints are treated as "unchanged", which is
// a deliberate tradeoff: a same-length hash collision would skip the
// OpReset and leave stale structures published. With random data that
// is a ~2^-64 event per relation per Mutate; callers that cannot
// accept it (adversarial tuple values chosen to collide) should use the
// explicit write path (ApplyBatch/AddRows/DeleteRows), which needs no
// fingerprinting at all.
type relFP struct {
	arity, n int
	hash     uint64
}

// fingerprints hashes every relation's contents, keyed by name, so
// Mutate can detect which relations an opaque mutation touched.
func fingerprints(in *database.Instance) map[string]relFP {
	out := make(map[string]relFP)
	for _, name := range in.Names() {
		r := in.Relation(name)
		h := uint64(14695981039346656037)
		data := r.Data()
		for _, v := range data {
			h ^= uint64(v)
			h *= 1099511628211
		}
		out[name] = relFP{arity: r.Arity(), n: len(data), hash: h}
	}
	return out
}

// Quiesce blocks until every in-flight background re-preprocess has
// finished (tests and shutdown paths use it; serving code never needs
// to).
func (e *Engine) Quiesce() { e.bg.Wait() }

// Version returns the current instance version.
func (e *Engine) Version() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	version, tuples := e.version, e.in.Size()
	e.mu.RUnlock()
	e.cmu.Lock()
	entries := e.cache.len()
	e.cmu.Unlock()
	e.rmu.Lock()
	prepared := len(e.registry)
	e.rmu.Unlock()
	return Stats{
		Hits:           e.hits.Load(),
		Misses:         e.misses.Load(),
		Entries:        entries,
		Version:        version,
		Tuples:         tuples,
		Prepared:       prepared,
		RegistryHits:   e.regHits.Load(),
		Reprepares:     e.reprepares.Load(),
		Checkpoints:    e.checkpoints.Load(),
		Restores:       e.restores.Load(),
		WarmStructures: e.warmStructures.Load(),
		WALBatches:     e.walBatches.Load(),
		DeltaSkips:     e.deltaSkips.Load(),
		DeltaEpochs:    e.deltaEpochs.Load(),
		DeltaRebuilds:  e.deltaRebuilds.Load(),
		BGRebuilds:     e.bgRebuilds.Load(),
		WALErrors:      e.walErrors.Load(),
	}
}

// Health is a point-in-time degradation snapshot: the readiness signal
// behind serve's /readyz and its write shedding.
type Health struct {
	// WALBroken reports an unrecoverable WAL append failure; writes fail
	// fast with ErrWALBroken until a restart replays the good prefix.
	WALBroken bool
	// WALErrors is the count of absorbed durable-append failures
	// (Stats.WALErrors); nonzero means the disk under the WAL is
	// unhealthy even if the log itself is still usable.
	WALErrors uint64
	// MaxOverlayEdits is the largest delta overlay any cached structure
	// carries. At or past DeltaHard the next probe of that structure
	// pays a synchronous O(n log n) rebuild — the rebuild backlog is
	// behind, and accepting more writes only digs the hole deeper.
	MaxOverlayEdits int
	// BGRebuilding is the number of background re-preprocesses in
	// flight.
	BGRebuilding int
	// DeltaHard echoes the engine's hard overlay limit so callers can
	// compare MaxOverlayEdits against it without config plumbing.
	DeltaHard int
}

// Degraded reports whether the engine should shed writes: the WAL can
// no longer durably accept them, or the rebuild backlog has fallen past
// the hard overlay limit (reads still serve, from published epochs).
func (h Health) Degraded() bool {
	return h.WALBroken || h.MaxOverlayEdits >= h.DeltaHard
}

// Health samples the engine's degradation state. It takes the read
// lock briefly (WAL state is written under the write lock) but never
// blocks on builds.
func (e *Engine) Health() Health {
	h := Health{WALErrors: e.walErrors.Load(), DeltaHard: e.deltaHard}
	e.mu.RLock()
	if e.wal != nil {
		h.WALBroken = e.wal.Broken()
	}
	e.mu.RUnlock()
	e.cmu.Lock()
	for _, ch := range e.cache.handles() {
		if d := ch.DeltaEdits(); d > h.MaxOverlayEdits {
			h.MaxOverlayEdits = d
		}
	}
	h.BGRebuilding = len(e.bgRebuilding)
	e.cmu.Unlock()
	return h
}

// key canonicalizes a Spec into a cache key. The key is versionless —
// one cache slot per spec, holding the handle for whatever epoch it
// last built or caught up to (Handle.version records which). FD and
// SumBy lists are order-insensitive, and Order is dropped when SumBy is
// set (parse ignores it, so the built structure is identical). The
// shard count and partition variable are part of the accessor identity:
// the same query sharded differently is a different structure. ShardBy
// is dropped when the request is unsharded.
func (s Spec) key() string {
	fds := append([]string(nil), s.FDs...)
	sort.Strings(fds)
	sumBy := append([]string(nil), s.SumBy...)
	sort.Strings(sumBy)
	lexOrder := s.Order
	if len(sumBy) > 0 {
		lexOrder = ""
	}
	shards := normShards(s.Shards)
	shardBy := s.ShardBy
	if shards == 1 {
		shardBy = ""
	}
	return fmt.Sprintf("%s\x00%s\x00%s\x00%s\x00%d\x00%s",
		s.Query, lexOrder, strings.Join(sumBy, ","), strings.Join(fds, ";"),
		shards, shardBy)
}

// flightKey scopes a single-flight build to one instance version, so a
// build against an old epoch is never handed to a requester of a new
// one.
func flightKey(key string, version uint64) string {
	return fmt.Sprintf("%s\x00%d", key, version)
}

// parsed is a Spec after parsing against its own query.
type parsed struct {
	q   *cq.Query
	l   order.Lex
	w   order.Sum
	fds fd.Set
	sum bool
}

func (s Spec) parse() (*parsed, error) {
	q, err := cq.Parse(s.Query)
	if err != nil {
		return nil, err
	}
	p := &parsed{q: q}
	for _, src := range s.FDs {
		set, err := fd.Parse(q, src)
		if err != nil {
			return nil, err
		}
		p.fds = append(p.fds, set...)
	}
	if len(s.SumBy) > 0 {
		p.sum = true
		vars := make([]cq.VarID, len(s.SumBy))
		for i, name := range s.SumBy {
			id, ok := q.VarByName(name)
			if !ok {
				return nil, fmt.Errorf("engine: sum variable %q not in query", name)
			}
			vars[i] = id
		}
		p.w = order.IdentitySum(vars...)
		return p, nil
	}
	l, err := order.ParseLex(q, s.Order)
	if err != nil {
		return nil, err
	}
	p.l = l
	return p, nil
}

// Prepare plans the request and returns a ready Handle, serving it from
// the cache when the same Spec was already built against the current
// instance version. Concurrent calls for the same missing key perform a
// single build.
func (e *Engine) Prepare(s Spec) (*Handle, error) {
	h, _, err := e.prepareVersioned(s)
	return h, err
}

// PrepareCtx is Prepare with cancellation: a request whose deadline
// expires stops waiting on a shared in-flight build immediately, and a
// build it runs itself is abandoned at the next preprocessing wave
// boundary. The error then wraps ctx.Err().
func (e *Engine) PrepareCtx(ctx context.Context, s Spec) (*Handle, error) {
	h, _, err := e.prepareVersionedCtx(ctx, s)
	return h, err
}

// prepareVersioned is Prepare returning also the instance version the
// handle was resolved against, so registered queries can record which
// snapshot their current handle answers for.
func (e *Engine) prepareVersioned(s Spec) (*Handle, uint64, error) {
	return e.prepareVersionedCtx(context.Background(), s)
}

// ctxErr reports whether an error is (or wraps) a context cancellation
// or deadline expiry.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// prepareVersionedCtx resolves a spec against the current version.
//
// A cached handle at the current version is a plain hit. A cached
// handle at an older version is advanced instead of discarded:
// republished unchanged when no logged batch touched its relations,
// extended with a delta overlay when one did, rebuilt from scratch only
// when neither works (see advance). Concurrent requesters for the same
// spec at the same version share one catch-up/build through the flight
// table.
//
// A shared flight builds under its FIRST requester's context. When that
// requester gives up mid-build, waiters whose own deadlines are still
// live retry with a fresh flight rather than inheriting the stranger's
// cancellation.
func (e *Engine) prepareVersionedCtx(ctx context.Context, s Spec) (*Handle, uint64, error) {
	key := s.key()
	for {
		h, version, retry, err := e.prepareOnce(ctx, s, key)
		if retry && ctx.Err() == nil {
			continue
		}
		return h, version, err
	}
}

// prepareOnce is one attempt of prepareVersionedCtx; retry=true means
// the flight it joined died of its builder's cancellation, not ours.
func (e *Engine) prepareOnce(ctx context.Context, s Spec, key string) (*Handle, uint64, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	version := e.version
	fk := flightKey(key, version)

	e.cmu.Lock()
	var stale *Handle
	if h := e.cache.get(key); h != nil {
		if h.version == version {
			e.cmu.Unlock()
			e.hits.Add(1)
			return h, version, false, nil
		}
		stale = h
	}
	if fl, ok := e.flights[fk]; ok {
		e.cmu.Unlock()
		// The builder also holds mu.RLock, so waiting here cannot
		// deadlock with a writer: both readers run to completion first.
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, 0, false, ctx.Err()
		}
		if fl.err != nil && ctxErr(fl.err) {
			return nil, 0, true, fl.err
		}
		e.hits.Add(1)
		return fl.h, version, false, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	e.flights[fk] = fl
	e.cmu.Unlock()

	if stale != nil {
		fl.h = e.advance(s, key, stale, version)
	}
	if fl.h != nil {
		e.hits.Add(1)
	} else {
		e.misses.Add(1)
		start := time.Now()
		fl.h, fl.err = e.build(ctx, s)
		if fl.err == nil {
			fl.h.version = version
		}
		e.logBuild(ctx, s, version, stale != nil, time.Since(start), fl.err)
		trace.FromContext(ctx).AddEvent("engine.build",
			trace.Str("query", s.Query),
			trace.Int("version", int64(version)),
			trace.Int("duration_us", time.Since(start).Microseconds()))
	}

	e.cmu.Lock()
	if fl.err == nil {
		// Same guard as spawnRebuild: a slow catch-up for an older
		// version must not overwrite a newer handle a concurrent request
		// already cached.
		if cur := e.cache.get(key); cur == nil || cur.version <= fl.h.version {
			e.cache.add(key, fl.h)
		}
	}
	// Deregister before waking waiters: a waiter retrying after a
	// canceled build must find either the cached result or no flight at
	// all, never the dead flight again (which would spin).
	delete(e.flights, fk)
	e.cmu.Unlock()
	close(fl.done)
	return fl.h, version, false, fl.err
}

// logBuild emits one structured event for a synchronous structure
// build (a cache miss, or a stale handle that could not catch up via
// the delta overlay), tagged with the request id of the triggering
// request when its context carries one — that join is what lets an
// operator attribute a latency spike to the build that caused it.
func (e *Engine) logBuild(ctx context.Context, s Spec, version uint64, rebuild bool, d time.Duration, err error) {
	if e.log == nil {
		return
	}
	level := slog.LevelInfo
	attrs := make([]slog.Attr, 0, 6)
	attrs = append(attrs,
		slog.String("query", s.Query),
		slog.Uint64("version", version),
		slog.Bool("rebuild", rebuild),
		slog.Duration("duration", d),
	)
	if id := reqid.From(ctx); id != "" {
		attrs = append(attrs, slog.String("request_id", id))
	}
	if err != nil {
		level = slog.LevelWarn
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	e.log.LogAttrs(ctx, level, "engine: structure build", attrs...)
}

// build plans and constructs a structure; the caller holds mu.RLock, so
// the instance is stable throughout. Layered-lex builds check ctx at
// every preprocessing wave boundary; the other structure kinds check it
// once before their (uninterruptible) construction.
func (e *Engine) build(ctx context.Context, s Spec) (*Handle, error) {
	if e.remote != nil {
		return e.buildRemote(ctx, s)
	}
	p, err := s.parse()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	shards := normShards(s.Shards)
	if shards > 1 && s.ShardBy != "" {
		// Reject a bad explicit partition variable instead of silently
		// falling back: the caller asked for something specific, and
		// some fallback paths never reach shard.Choose.
		if err := shard.ValidateBy(p.q, s.ShardBy); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	h := &Handle{Query: p.q, spec: s, rels: queryRels(p.q)}
	var wfd classify.WithFDs // FD witness, reused by the sharded builders
	if p.sum {
		h.sumW = p.w
		if len(p.fds) == 0 {
			h.Plan.Verdict = classify.DirectAccessSum(p.q)
		} else {
			h.Plan.Verdict, wfd = classify.DirectAccessSumFD(p.q, p.fds)
		}
		if h.Plan.Verdict.Tractable {
			if shards > 1 && e.shardSum(h, p, wfd, s.ShardBy, shards) {
				return h, nil
			}
			var sa *access.Sum
			if len(p.fds) == 0 {
				sa, err = access.BuildSum(p.q, e.in, p.w)
			} else {
				sa, err = access.BuildSumFD(p.q, e.in, p.w, p.fds)
			}
			if err == nil {
				h.Plan.Mode, h.Plan.Tractable, h.sum = ModeSum, true, sa
				return h, nil
			}
			var ie *access.IntractableError
			if !errors.As(err, &ie) {
				return nil, err
			}
		}
		h.Plan.Mode = ModeMaterialized
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if shards > 1 && e.shardMaterialized(h, p, s.ShardBy, shards) {
			return h, nil
		}
		h.mat = access.BuildMaterializedSum(p.q, e.in, p.w)
		return h, nil
	}

	if len(p.fds) == 0 {
		h.Plan.Verdict = classify.DirectAccessLex(p.q, p.l)
	} else {
		h.Plan.Verdict, wfd = classify.DirectAccessLexFD(p.q, p.l, p.fds)
	}
	if h.Plan.Verdict.Tractable {
		if shards > 1 && e.shardLex(h, p, wfd, s.ShardBy, shards) {
			return h, nil
		}
		var la *access.Lex
		if len(p.fds) == 0 {
			la, err = access.BuildLexCtx(ctx, p.q, e.in, p.l)
		} else {
			la, err = access.BuildLexFDCtx(ctx, p.q, e.in, p.l, p.fds)
		}
		if ctxErr(err) {
			return nil, err
		}
		if err == nil {
			h.Plan.Mode, h.Plan.Tractable, h.lex = ModeLayeredLex, true, la
			return h, nil
		}
		var ie *access.IntractableError
		if !errors.As(err, &ie) {
			return nil, err
		}
	}
	h.Plan.Mode = ModeMaterialized
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if shards > 1 && e.shardMaterialized(h, p, s.ShardBy, shards) {
		return h, nil
	}
	h.mat = access.BuildMaterializedLex(p.q, e.in, p.l)
	h.matIsLex = true
	h.matLex = p.l
	return h, nil
}

// queryRels collects the relation symbols a query references.
func queryRels(q *cq.Query) map[string]bool {
	rels := make(map[string]bool, len(q.Atoms))
	for i := range q.Atoms {
		rels[q.Atoms[i].Rel] = true
	}
	return rels
}

// shardFallback records why a sharded build fell back and clears any
// partial sharded state from the handle.
func (h *Handle) shardFallback(note string) bool {
	h.Plan.ShardNote = note
	h.sh, h.shProject, h.shExtend, h.shNoInvert = nil, nil, nil, false
	return false
}

// shardLex attempts a sharded layered build for a tractable lex spec;
// w is the FD witness build() already computed (zero without FDs). FD
// specs are extended globally first — the extension shares variable
// ids with the original query and the reordered order L⁺ sorts Q⁺(I⁺)
// exactly as L sorts Q(I) (Lemma 8.16) — and the plain extension is
// then partitioned, so every shard prices foreign candidates against
// complete FD-implied values. Returns true when h now serves sharded;
// false records a fallback note and leaves h untouched.
func (e *Engine) shardLex(h *Handle, p *parsed, w classify.WithFDs, by string, shards int) bool {
	q, in, l := p.q, e.in, p.l
	if len(p.fds) > 0 {
		if w.Ext == nil {
			return h.shardFallback("no FD extension available")
		}
		if err := p.fds.Check(p.q, e.in); err != nil {
			return h.shardFallback(err.Error())
		}
		iplus, err := w.Ext.ExtendInstance(p.q, e.in)
		if err != nil {
			return h.shardFallback(err.Error())
		}
		extender, err := w.Ext.AnswerExtender(p.q, e.in)
		if err != nil {
			return h.shardFallback(err.Error())
		}
		orig := p.q
		h.shProject = func(a order.Answer) order.Answer { return fd.ProjectAnswer(orig, a) }
		h.shExtend = extender
		q, in, l = w.Ext.Query, iplus, w.LPlus
	}
	pt, err := shard.Choose(q, by, shards)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	sh, err := shard.BuildLex(q, in, l, pt)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	h.sh = sh
	h.Plan.Mode, h.Plan.Tractable = ModeLayeredLex, true
	h.Plan.Shards, h.Plan.ShardBy = pt.P, pt.VarName
	return true
}

// shardSum is shardLex for tractable SUM specs. SUM groups have no
// inverse (as in the single-structure case). Promoted FD variables
// weigh zero (Lemma 8.5), so sharding the extension preserves weights.
func (e *Engine) shardSum(h *Handle, p *parsed, w classify.WithFDs, by string, shards int) bool {
	q, in := p.q, e.in
	if len(p.fds) > 0 {
		if w.Ext == nil {
			return h.shardFallback("no FD extension available")
		}
		if err := p.fds.Check(p.q, e.in); err != nil {
			return h.shardFallback(err.Error())
		}
		iplus, err := w.Ext.ExtendInstance(p.q, e.in)
		if err != nil {
			return h.shardFallback(err.Error())
		}
		orig := p.q
		h.shProject = func(a order.Answer) order.Answer { return fd.ProjectAnswer(orig, a) }
		q, in = w.Ext.Query, iplus
	}
	pt, err := shard.Choose(q, by, shards)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	sh, err := shard.BuildSum(q, in, p.w, pt)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	h.sh = sh
	h.shNoInvert = true
	h.Plan.Mode, h.Plan.Tractable = ModeSum, true
	h.Plan.Shards, h.Plan.ShardBy = pt.P, pt.VarName
	return true
}

// shardMaterialized attempts a sharded materialize-and-sort fallback:
// each shard materializes only its slice of the answer space, so even
// the intractable side parallelizes P ways. FDs do not change the
// answer set or the realized order here (the single-shard fallback
// ignores them too), so the original query is partitioned directly.
func (e *Engine) shardMaterialized(h *Handle, p *parsed, by string, shards int) bool {
	pt, err := shard.Choose(p.q, by, shards)
	if err != nil {
		return h.shardFallback(err.Error())
	}
	var sh *shard.Handle
	if p.sum {
		sh, err = shard.BuildMaterializedSum(p.q, e.in, p.w, pt)
		h.shNoInvert = true
	} else {
		sh, err = shard.BuildMaterializedLex(p.q, e.in, p.l, pt)
	}
	if err != nil {
		return h.shardFallback(err.Error())
	}
	h.sh = sh
	h.Plan.Mode = ModeMaterialized
	h.Plan.Shards, h.Plan.ShardBy = pt.P, pt.VarName
	return true
}

// Access is Prepare plus a batch of probes in one call: it returns the
// handle (for Total and further probes) and one head tuple or error per
// requested index. The final error reports a planning failure (bad
// query, bad order); per-index failures such as out-of-bound indices
// land in errs without failing the batch.
func (e *Engine) Access(s Spec, ks []int64) (*Handle, [][]values.Value, []error, error) {
	h, err := e.Prepare(s)
	if err != nil {
		return nil, nil, nil, err
	}
	tuples := make([][]values.Value, len(ks))
	errs := make([]error, len(ks))
	// One flat backing array serves the whole batch; each answer is a
	// capped sub-slice of it.
	flat := make([]values.Value, 0, len(ks)*h.Width())
	for i, k := range ks {
		start := len(flat)
		flat, err = h.AppendTuple(flat, k)
		if err != nil {
			errs[i] = err
			flat = flat[:start]
			continue
		}
		tuples[i] = flat[start:len(flat):len(flat)]
	}
	return h, tuples, errs, nil
}

// AccessRange is Prepare plus a contiguous probe batch: it returns the
// handle and the head tuples of answers k0 ≤ k < k1 appended to dst
// (h.Width values per answer), amortizing planning, cache lookup, and
// probe-buffer setup over the whole range.
func (e *Engine) AccessRange(s Spec, dst []values.Value, k0, k1 int64) (*Handle, []values.Value, error) {
	h, err := e.Prepare(s)
	if err != nil {
		return nil, dst, err
	}
	dst, err = h.AccessRange(dst, k0, k1)
	return h, dst, err
}

// Select answers the one-shot selection problem — O(n) for lex orders,
// O(n log n) for SUM — without building or caching any structure.
func (e *Engine) Select(s Spec, k int64) ([]values.Value, error) {
	if e.remote != nil {
		return e.selectRemote(s, k)
	}
	p, err := s.parse()
	if err != nil {
		return nil, err
	}
	return e.selectParsed(p, k)
}

// selectParsed is Select after parsing; registered queries call it with
// their cached parse, skipping per-request spec processing.
func (e *Engine) selectParsed(p *parsed, k int64) ([]values.Value, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var err error
	var a order.Answer
	switch {
	case p.sum && len(p.fds) == 0:
		a, err = selection.SelectSum(p.q, e.in, p.w, k)
	case p.sum:
		a, err = selection.SelectSumFD(p.q, e.in, p.w, p.fds, k)
	case len(p.fds) == 0:
		a, err = selection.SelectLex(p.q, e.in, p.l, k)
	default:
		a, err = selection.SelectLexFD(p.q, e.in, p.l, p.fds, k)
	}
	if err != nil {
		return nil, err
	}
	out := make([]values.Value, len(p.q.Head))
	for i, v := range p.q.Head {
		out[i] = a[v]
	}
	return out, nil
}

// Count returns |Q(I)| in linear time for free-connex queries.
func (e *Engine) Count(query string) (int64, error) {
	n, _, err := e.CountSharded(query, 0, "")
	return n, err
}

// CountInfo reports how a CountSharded request was executed: the shard
// count and partition variable actually used (zero/empty when the
// count ran unsharded), and the fallback reason if sharding was
// requested but impossible.
type CountInfo struct {
	Shards    int
	ShardBy   string
	ShardNote string
}

// CountSharded is Count with scatter-gather: for shards ≥ 2 the
// instance is partitioned, every shard is counted in parallel, and the
// counts sum (shard answer sets partition Q(I)). Queries that cannot
// be partitioned fall back to the single-instance count, recorded in
// the returned CountInfo; an explicit partition variable that is not a
// free variable of the query is an error.
func (e *Engine) CountSharded(query string, shards int, by string) (int64, CountInfo, error) {
	if e.remote != nil {
		// A coordinator counts by scatter-gather over its cluster; the
		// cluster's own shard count applies, not the request's.
		return e.remote.CountRemote(context.Background(), query, by)
	}
	var info CountInfo
	q, err := cq.Parse(query)
	if err != nil {
		return 0, info, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if p := normShards(shards); p > 1 {
		pt, err := shard.Choose(q, by, p)
		var ue *shard.UnshardableError
		switch {
		case err == nil:
			if n, err := shard.Count(q, e.in, pt); err == nil {
				info.Shards, info.ShardBy = pt.P, pt.VarName
				return n, info, nil
			}
			// Per-shard counting failures are query-level (not
			// free-connex); the single-instance path reproduces the
			// error exactly.
			info.ShardNote = "per-shard count failed; recounted unsharded"
		case errors.As(err, &ue):
			info.ShardNote = err.Error()
		default:
			return 0, info, err
		}
	}
	n, err := selection.CountAnswers(q, e.in)
	return n, info, err
}

// Problem names for Classify.
const (
	ProblemDirectAccessLex = "direct-access-lex"
	ProblemSelectionLex    = "selection-lex"
	ProblemDirectAccessSum = "direct-access-sum"
	ProblemSelectionSum    = "selection-sum"
)

// Classify runs the paper's dichotomy for the named problem on a Spec.
func (e *Engine) Classify(problem string, s Spec) (classify.Verdict, error) {
	p, err := s.parse()
	if err != nil {
		return classify.Verdict{}, err
	}
	return classifyParsed(problem, p)
}

// classifyParsed is Classify after parsing (the dichotomies depend only
// on the query, order, and FDs — never on data).
func classifyParsed(problem string, p *parsed) (classify.Verdict, error) {
	hasFDs := len(p.fds) > 0
	switch problem {
	case ProblemDirectAccessLex:
		if hasFDs {
			v, _ := classify.DirectAccessLexFD(p.q, p.l, p.fds)
			return v, nil
		}
		return classify.DirectAccessLex(p.q, p.l), nil
	case ProblemSelectionLex:
		if hasFDs {
			v, _ := classify.SelectionLexFD(p.q, p.l, p.fds)
			return v, nil
		}
		return classify.SelectionLex(p.q, p.l), nil
	case ProblemDirectAccessSum:
		if hasFDs {
			v, _ := classify.DirectAccessSumFD(p.q, p.fds)
			return v, nil
		}
		return classify.DirectAccessSum(p.q), nil
	case ProblemSelectionSum:
		if hasFDs {
			v, _ := classify.SelectionSumFD(p.q, p.fds)
			return v, nil
		}
		return classify.SelectionSum(p.q), nil
	default:
		return classify.Verdict{}, fmt.Errorf("engine: unknown problem %q", problem)
	}
}
