package engine

import "container/list"

// lru is a plain LRU map from cache key to *Handle, bounded by cap.
// It is not goroutine-safe; the Engine guards it.
type lru struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	h   *Handle
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *lru) get(key string) *Handle {
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).h
}

func (c *lru) add(key string, h *Handle) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).h = h
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, h: h})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		delete(c.byKey, back.Value.(*lruEntry).key)
		c.order.Remove(back)
	}
}

// handles snapshots the cached handles, most recently used first.
func (c *lru) handles() []*Handle {
	out := make([]*Handle, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).h)
	}
	return out
}

func (c *lru) purge() {
	c.order.Init()
	clear(c.byKey)
}

func (c *lru) len() int { return c.order.Len() }
