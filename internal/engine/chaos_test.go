package engine

import (
	"errors"
	"os"
	"strings"
	"testing"

	"rankedaccess/internal/delta"
	"rankedaccess/internal/faultfs"
	"rankedaccess/internal/values"
)

// Engine-level chaos: the durability layer runs over an injected
// filesystem (Options.FS), faults fire at chosen operations, and the
// assertions are end-to-end — acknowledged writes survive restart,
// failed writes leave no trace, answers always match a fresh-build
// oracle, and a broken WAL degrades writes without taking down reads.

// openChaosEngine opens a WAL-attached engine over a fresh injector.
func openChaosEngine(t *testing.T, dir string) (*faultfs.Injector, *Engine) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS())
	e, _, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	return inj, e
}

// seedChaos loads the two-path instance every assertion probes.
func seedChaos(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.AddRows("R", [][]values.Value{{1, 5}, {1, 2}, {6, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("S", [][]values.Value{{5, 3}, {2, 5}}); err != nil {
		t.Fatal(err)
	}
}

// chaosAnswers drains the two-path query on a fresh handle.
func chaosAnswers(t *testing.T, e *Engine) []values.Value {
	t.Helper()
	h, err := e.Prepare(Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	return drainAll(t, h)
}

func TestChaosFailedWriteLeavesNoTraceAndRetries(t *testing.T) {
	dir := t.TempDir()
	inj, e := openChaosEngine(t, dir)
	seedChaos(t, e)
	version := e.Version()
	want := chaosAnswers(t, e)

	// The WAL append's fsync fails: the batch must be rejected whole —
	// version unchanged, instance unchanged, answers unchanged.
	inj.Inject(faultfs.Fault{Op: faultfs.OpSync, Nth: 1, Mode: faultfs.ModeFail})
	err := e.AddRows("S", [][]values.Value{{2, 9}})
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("write under sync fault: err = %v, want injected", err)
	}
	if e.Version() != version {
		t.Fatalf("failed write moved version %d → %d", version, e.Version())
	}
	if got := chaosAnswers(t, e); !eqValues(got, want) {
		t.Fatalf("failed write changed answers:\n got %v\nwant %v", got, want)
	}
	if h := e.Health(); h.WALBroken {
		t.Fatal("rolled-back append reported the WAL broken")
	}

	// The fault was one-shot: the same write retried must succeed and
	// change answers (2 now also reaches 9).
	if err := e.AddRows("S", [][]values.Value{{2, 9}}); err != nil {
		t.Fatalf("retry after fault: %v", err)
	}
	if e.Version() != version+1 {
		t.Fatalf("retried write: version = %d, want %d", e.Version(), version+1)
	}
	after := chaosAnswers(t, e)
	if eqValues(after, want) {
		t.Fatal("retried write changed nothing")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on a clean filesystem: exactly the acknowledged state.
	e2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Version() != version+1 {
		t.Fatalf("restart version = %d, want %d", e2.Version(), version+1)
	}
	if got := chaosAnswers(t, e2); !eqValues(got, after) {
		t.Fatalf("restart diverged from acknowledged state:\n got %v\nwant %v", got, after)
	}
}

func TestChaosBrokenWALDegradesWritesNotReads(t *testing.T) {
	dir := t.TempDir()
	inj, e := openChaosEngine(t, dir)
	seedChaos(t, e)
	want := chaosAnswers(t, e)
	version := e.Version()

	// Fail the append AND its rollback: the WAL cannot restore its
	// tail, so it must flip broken.
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Nth: 2, Mode: faultfs.ModeShortWrite})
	inj.Inject(faultfs.Fault{Op: faultfs.OpTruncate, Nth: 1, Mode: faultfs.ModeFail})
	if err := e.AddRows("S", [][]values.Value{{2, 9}}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("write under double fault: err = %v, want injected", err)
	}
	h := e.Health()
	if !h.WALBroken || !h.Degraded() {
		t.Fatalf("health after failed rollback = %+v, want broken/degraded", h)
	}
	// Writes fail fast now; reads keep answering the last good epoch.
	if err := e.AddRows("S", [][]values.Value{{2, 9}}); !errors.Is(err, delta.ErrWALBroken) {
		t.Fatalf("write on broken WAL: err = %v, want ErrWALBroken", err)
	}
	if got := chaosAnswers(t, e); !eqValues(got, want) {
		t.Fatalf("reads diverged on a broken WAL:\n got %v\nwant %v", got, want)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart salvages the torn tail: same answers, writes work again.
	e2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Version() != version {
		t.Fatalf("restart version = %d, want %d", e2.Version(), version)
	}
	if got := chaosAnswers(t, e2); !eqValues(got, want) {
		t.Fatalf("restart diverged:\n got %v\nwant %v", got, want)
	}
	if h := e2.Health(); h.Degraded() {
		t.Fatalf("restarted engine still degraded: %+v", h)
	}
	if err := e2.AddRows("S", [][]values.Value{{2, 9}}); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}

func TestChaosCheckpointAtomicUnderFaults(t *testing.T) {
	dir := t.TempDir()
	inj, e := openChaosEngine(t, dir)
	defer e.Close()
	seedChaos(t, e)
	want := chaosAnswers(t, e)

	// Fail the rename that publishes the snapshot: the checkpoint must
	// report the error and leave no canonical snapshot behind.
	inj.Inject(faultfs.Fault{Op: faultfs.OpRename, Nth: 1, Mode: faultfs.ModeFail})
	if _, err := e.Checkpoint(dir); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("checkpoint under rename fault: err = %v, want injected", err)
	}
	if n := countSnapshots(t, dir); n != 0 {
		t.Fatalf("failed checkpoint left %d snapshot files", n)
	}

	// Retry succeeds; a warm restart must serve the same answers.
	info, err := e.Checkpoint(dir)
	if err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	if info.Version != e.Version() {
		t.Fatalf("checkpoint version = %d, want %d", info.Version, e.Version())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, warm, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !warm {
		t.Fatal("reopen after checkpoint not warm")
	}
	if got := chaosAnswers(t, e2); !eqValues(got, want) {
		t.Fatalf("warm restart diverged:\n got %v\nwant %v", got, want)
	}
}

// countSnapshots counts canonical snapshot files in dir.
func countSnapshots(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".rka") && !strings.HasPrefix(ent.Name(), ".tmp-") {
			n++
		}
	}
	return n
}
