// Remote seam: the hooks that turn an Engine into either half of a
// distributed deployment.
//
// Coordinator side: Options.Remote installs a RemoteBuilder; every
// Prepare then delegates planning and structure building to it, and the
// returned handle merges network-served shard parts through the exact
// rank-merge machinery the in-process sharded path uses — distributed
// answers are byte-identical to single-node answers by construction.
// The write path is disabled (ErrReadOnly): the coordinator owns no
// data, so mutations go to the nodes' own ingestion paths.
//
// Node side: BuildOwned builds only the shard subset a cluster node
// owns, mirroring build()'s classify → tractable → intractable-fallback
// → materialized ladder over the shard package's owned builders.
package engine

import (
	"context"
	"errors"
	"fmt"

	"rankedaccess/internal/access"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
	"rankedaccess/internal/shard"
	"rankedaccess/internal/values"
)

// ErrReadOnly reports a mutation against a coordinator engine, which
// owns no data of its own.
var ErrReadOnly = errors.New("engine: coordinator is read-only; mutate the shard nodes")

// RemoteBuilder plans and builds access structures somewhere other than
// this process — the coordinator's window onto its cluster. Both
// methods are called with the engine's locks NOT held; implementations
// synchronize internally.
type RemoteBuilder interface {
	// BuildRemote plans s and assembles a handle over remote shard
	// parts. It is called once per (spec, version) by the engine's
	// single-flight machinery; the implementation should still be safe
	// for concurrent calls with distinct specs.
	BuildRemote(ctx context.Context, s Spec) (*RemoteHandle, error)
	// CountRemote answers Count by scatter-gather. The cluster's own
	// shard count applies; by optionally names the partition variable.
	CountRemote(ctx context.Context, query, by string) (int64, CountInfo, error)
}

// RemoteHandle is what a RemoteBuilder returns: the pieces the engine
// wraps into an ordinary Handle, so every downstream consumer (batch
// access, ranges, cursors, NDJSON streaming) works unchanged.
type RemoteHandle struct {
	// Query is the parsed query (answers index its variables).
	Query *cq.Query
	// Plan records the planning outcome agreed with the nodes.
	Plan Plan
	// Sh merges the remote shard parts (see shard.NewRemote).
	Sh *shard.Handle
	// NoInvert marks orders with no inverse (SUM groups).
	NoInvert bool
}

// buildRemote is build() for a coordinator engine: delegate to the
// RemoteBuilder and wrap its parts into a Handle.
func (e *Engine) buildRemote(ctx context.Context, s Spec) (*Handle, error) {
	rh, err := e.remote.BuildRemote(ctx, s)
	if err != nil {
		return nil, err
	}
	return &Handle{
		Query:      rh.Query,
		Plan:       rh.Plan,
		spec:       s,
		rels:       queryRels(rh.Query),
		sh:         rh.Sh,
		shNoInvert: rh.NoInvert,
	}, nil
}

// selectRemote serves Select on a coordinator: with no local data there
// is no one-shot selection, so the prepared (cached) structure answers
// instead. The answer is identical; only the cost model differs.
func (e *Engine) selectRemote(s Spec, k int64) ([]values.Value, error) {
	h, err := e.Prepare(s)
	if err != nil {
		return nil, err
	}
	return h.AppendTuple(make([]values.Value, 0, h.Width()), k)
}

// ParsedSpec is a Spec validated and parsed against its own query —
// exported for the cluster coordinator, which plans from the same
// parse the engine itself would use.
type ParsedSpec struct {
	// Q is the parsed query.
	Q *cq.Query
	// Lex is the requested lexicographic order (zero when IsSum).
	Lex order.Lex
	// Sum is the requested SUM weighting (zero unless IsSum).
	Sum order.Sum
	// IsSum reports a SUM-ordered spec.
	IsSum bool
	// HasFDs reports functional dependencies on the spec; the
	// distributed path rejects them (FD extension is global, not
	// per-shard — a follow-up).
	HasFDs bool
}

// ParseSpec parses and validates a Spec exactly as Prepare would.
func ParseSpec(s Spec) (*ParsedSpec, error) {
	p, err := s.parse()
	if err != nil {
		return nil, err
	}
	return &ParsedSpec{Q: p.q, Lex: p.l, Sum: p.w, IsSum: p.sum, HasFDs: len(p.fds) > 0}, nil
}

// NodeBuild is the node-side result of building the owned slice of a
// distributed spec.
type NodeBuild struct {
	// Owned holds the per-shard structures for the owned indices.
	Owned *shard.Owned
	// Mode is the structure mode every owned shard was built with.
	Mode Mode
	// Completed is the realized total lex order of layered builds
	// (zero for SUM and materialized modes).
	Completed order.Lex
	// Version is the instance version (epoch) the structures reflect.
	Version uint64
}

// BuildOwned builds the owned shards of a distributed spec against the
// node's current instance, mirroring build()'s mode ladder: classify,
// build the tractable structure, fall back to materialize-and-sort on
// an intractability certificate. FD specs are rejected — the
// distributed path serves the plain dichotomies only.
func (e *Engine) BuildOwned(ctx context.Context, s Spec, p int, shardVar string, owned []int) (*NodeBuild, error) {
	ps, err := s.parse()
	if err != nil {
		return nil, err
	}
	if len(ps.fds) > 0 {
		return nil, fmt.Errorf("engine: distributed serving does not support FD specs")
	}
	if shardVar == "" {
		return nil, fmt.Errorf("engine: distributed build requires an explicit partition variable")
	}
	pt, err := shard.Choose(ps.q, shardVar, p)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	e.mu.RLock()
	defer e.mu.RUnlock()
	nb := &NodeBuild{Version: e.version}

	if ps.sum {
		if classify.DirectAccessSum(ps.q).Tractable {
			o, err := shard.BuildOwnedSum(ps.q, e.in, ps.w, pt, owned)
			if err == nil {
				nb.Owned, nb.Mode = o, ModeSum
				return nb, nil
			}
			var ie *access.IntractableError
			if !errors.As(err, &ie) {
				return nil, err
			}
		}
		o, err := shard.BuildOwnedMaterializedSum(ps.q, e.in, ps.w, pt, owned)
		if err != nil {
			return nil, err
		}
		nb.Owned, nb.Mode = o, ModeMaterialized
		return nb, nil
	}

	if classify.DirectAccessLex(ps.q, ps.l).Tractable {
		o, err := shard.BuildOwnedLex(ps.q, e.in, ps.l, pt, owned)
		if err == nil {
			nb.Owned, nb.Mode, nb.Completed = o, ModeLayeredLex, o.Completed()
			return nb, nil
		}
		if ctxErr(err) {
			return nil, err
		}
		var ie *access.IntractableError
		if !errors.As(err, &ie) {
			return nil, err
		}
	}
	o, err := shard.BuildOwnedMaterializedLex(ps.q, e.in, ps.l, pt, owned)
	if err != nil {
		return nil, err
	}
	nb.Owned, nb.Mode = o, ModeMaterialized
	return nb, nil
}

// CountOwned counts the owned shards' contribution to a distributed
// count against the node's current instance, returning the count and
// the version it was taken at.
func (e *Engine) CountOwned(query string, p int, shardVar string, owned []int) (int64, uint64, error) {
	q, err := cq.Parse(query)
	if err != nil {
		return 0, 0, err
	}
	pt, err := shard.Choose(q, shardVar, p)
	if err != nil {
		return 0, 0, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	n, err := shard.CountOwned(q, e.in, pt, owned)
	return n, e.version, err
}
