package engine

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/values"
)

// collectAll drains a cursor through NextN batches of the given size
// and returns the flattened head values.
func collectAll(t *testing.T, c *Cursor, batch int) []values.Value {
	t.Helper()
	var out []values.Value
	for {
		var n int
		var err error
		out, n, err = c.NextN(out, batch)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
	}
}

// referenceScan reads every answer through the handle's one-at-a-time
// Access path.
func referenceScan(t *testing.T, h *Handle) []values.Value {
	t.Helper()
	var out []values.Value
	for k := int64(0); k < h.Total(); k++ {
		var err error
		out, err = h.AppendTuple(out, k)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func eqValues(a, b []values.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCursorScanMatchesAccess(t *testing.T) {
	e := New(randomInstance(500, 40, 7), Options{})
	pq, err := e.Register("scan", Spec{Query: twoPath, Order: "x, y desc, z"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	want := referenceScan(t, h)
	for _, batch := range []int{1, 3, 64, 100000} {
		cur, err := pq.Cursor()
		if err != nil {
			t.Fatal(err)
		}
		if got := collectAll(t, cur, batch); !eqValues(got, want) {
			t.Fatalf("NextN(batch=%d) scan diverges from Access scan", batch)
		}
	}

	// Next single-steps the same sequence.
	cur, err := pq.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	var got []values.Value
	for {
		var ok bool
		got, ok, err = cur.Next(got)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if !eqValues(got, want) {
		t.Fatal("Next scan diverges from Access scan")
	}
	// Exhausted cursor keeps reporting exhaustion, not an error.
	if _, ok, err := cur.Next(nil); ok || err != nil {
		t.Fatalf("Next past end = (%v, %v), want (false, nil)", ok, err)
	}

	// All range-over-func iteration agrees too, on a sub-window.
	width := int64(cur.Width())
	k0, k1 := h.Total()/3, 2*h.Total()/3
	var ranged []values.Value
	for row, err := range cur.All(k0, k1) {
		if err != nil {
			t.Fatal(err)
		}
		ranged = append(ranged, row...)
	}
	if !eqValues(ranged, want[k0*width:k1*width]) {
		t.Fatal("All(k0, k1) diverges from Access scan")
	}
}

func TestCursorSeek(t *testing.T) {
	e := New(smallInstance(), Options{})
	pq, err := e.Register("seek", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := pq.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	total := cur.Total() // 5
	if pos, err := cur.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("Seek(2, start) = (%d, %v)", pos, err)
	}
	if pos, err := cur.Seek(1, io.SeekCurrent); err != nil || pos != 3 {
		t.Fatalf("Seek(1, current) = (%d, %v)", pos, err)
	}
	if pos, err := cur.Seek(-1, io.SeekEnd); err != nil || pos != total-1 {
		t.Fatalf("Seek(-1, end) = (%d, %v)", pos, err)
	}
	if _, err := cur.Seek(total+1, io.SeekStart); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatalf("Seek past end = %v, want ErrOutOfBound", err)
	}
	if got := cur.Pos(); got != total-1 {
		t.Fatalf("failed seek moved position to %d", got)
	}
	// Parking exactly at the end is allowed and reads as exhausted.
	if _, err := cur.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cur.Next(nil); ok || err != nil {
		t.Fatalf("Next at end = (%v, %v), want (false, nil)", ok, err)
	}
}

// TestConcurrentCursors scans one prepared query from many goroutines,
// each with its own cursor and interleaved batch sizes; run with -race
// this is the cursor-concurrency guard.
func TestConcurrentCursors(t *testing.T) {
	e := New(randomInstance(400, 30, 11), Options{})
	pq, err := e.Register("conc", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	want := referenceScan(t, h)

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cur, err := pq.Cursor()
			if err != nil {
				errc <- err
				return
			}
			var out []values.Value
			batch := 1 + g*7%13
			for {
				var n int
				out, n, err = cur.NextN(out, batch)
				if err != nil {
					errc <- err
					return
				}
				if n == 0 {
					break
				}
			}
			if !eqValues(out, want) {
				errc <- fmt.Errorf("goroutine %d scan diverged", g)
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestCursorDrainsEpochAcrossMutation(t *testing.T) {
	e := New(smallInstance(), Options{})
	pq, err := e.Register("mut", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	// Reference stream of the pre-mutation epoch.
	ref, err := pq.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	want := collectAll(t, ref, 3)

	cur, err := pq.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	out, ok, err := cur.Next(nil)
	if !ok || err != nil {
		t.Fatalf("fresh cursor Next = (%v, %v)", ok, err)
	}

	// Mutations that join into new answers land mid-scan; the cursor is
	// pinned to its epoch and must stream the pre-mutation result set to
	// the end regardless.
	if err := e.AddRows("R", [][]values.Value{{9, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("S", [][]values.Value{{9, 9}}); err != nil {
		t.Fatal(err)
	}

	for {
		var alive bool
		out, alive, err = cur.Next(out)
		if err != nil {
			t.Fatalf("Next after mutation: %v", err)
		}
		if !alive {
			break
		}
	}
	if !eqValues(out, want) {
		t.Fatalf("drained scan diverged from the pre-mutation stream:\n got %v\nwant %v", out, want)
	}
	if _, err := cur.Seek(0, io.SeekStart); err != nil {
		t.Fatalf("Seek after mutation: %v", err)
	}
	reread := collectAll(t, cur, 4)
	if !eqValues(reread, want) {
		t.Fatalf("re-scan after mutation diverged:\n got %v\nwant %v", reread, want)
	}
	var allOut []values.Value
	for tuple, err := range cur.All(0, cur.Total()) {
		if err != nil {
			t.Fatalf("All after mutation: %v", err)
		}
		allOut = append(allOut, tuple...)
	}
	if !eqValues(allOut, want) {
		t.Fatalf("All after mutation diverged:\n got %v\nwant %v", allOut, want)
	}

	// A fresh cursor from the registration re-prepares and scans the new
	// epoch, which the joined row (9,9)-(9,9) grew by one answer.
	cur2, err := pq.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	if cur2.Total() != cur.Total()+1 {
		t.Fatalf("new-epoch cursor Total = %d, want %d", cur2.Total(), cur.Total()+1)
	}
	if _, ok, err := cur2.Next(nil); !ok || err != nil {
		t.Fatalf("fresh cursor after mutation = (%v, %v)", ok, err)
	}
}

// TestShardedCursorEquivalence checks that cursors over sharded
// executions (P ∈ {1, 4}) emit exactly the unsharded stream.
func TestShardedCursorEquivalence(t *testing.T) {
	e := New(randomInstance(600, 25, 3), Options{})
	base, err := e.Register("unsharded", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	bh, err := base.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	want := referenceScan(t, bh)

	for _, p := range []int{1, 4} {
		pq, err := e.Register(fmt.Sprintf("sharded%d", p),
			Spec{Query: twoPath, Order: "x, y, z", Shards: p})
		if err != nil {
			t.Fatal(err)
		}
		h, err := pq.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if p >= 2 && h.Plan.Shards != p {
			t.Fatalf("P=%d: plan = %+v, want sharded", p, h.Plan)
		}
		cur, err := pq.Cursor()
		if err != nil {
			t.Fatal(err)
		}
		if got := collectAll(t, cur, 37); !eqValues(got, want) {
			t.Fatalf("P=%d cursor stream diverges from unsharded", p)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	e := New(smallInstance(), Options{})

	if _, err := e.Register("bad name!", Spec{Query: twoPath}); err == nil {
		t.Fatal("invalid name registered")
	}
	if _, err := e.Register("bad", Spec{Query: "not a query"}); err == nil {
		t.Fatal("unparseable spec registered")
	}
	if _, err := e.Prepared("nope"); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("Prepared(unknown) = %v, want ErrNotPrepared", err)
	}

	pq, err := e.Register("q1", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	if pq.ID().Name != "q1" {
		t.Fatalf("ID = %+v", pq.ID())
	}
	got, err := e.Prepared("q1")
	if err != nil || got != pq {
		t.Fatalf("Prepared(q1) = (%p, %v), want %p", got, err, pq)
	}

	// Same-version probes are registry hits with no re-parsing.
	before := e.Stats()
	h1, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("same-version Acquire returned different handles")
	}
	after := e.Stats()
	if after.RegistryHits != before.RegistryHits+2 {
		t.Fatalf("registry hits %d -> %d, want +2", before.RegistryHits, after.RegistryHits)
	}
	if after.Prepared != 1 {
		t.Fatalf("prepared = %d, want 1", after.Prepared)
	}

	// Mutation triggers exactly one automatic re-prepare.
	if err := e.AddRows("R", [][]values.Value{{6, 5}}); err != nil {
		t.Fatal(err)
	}
	h3, err := pq.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("Acquire after mutation returned the stale handle")
	}
	if h3.Total() != h1.Total()+3 { // R(6,5) joins S(5,3), S(5,4), S(5,6)
		t.Fatalf("re-prepared total = %d, want %d", h3.Total(), h1.Total()+3)
	}
	if st := e.Stats(); st.Reprepares != after.Reprepares+1 {
		t.Fatalf("reprepares = %d, want %d", st.Reprepares, after.Reprepares+1)
	}

	// Listing reflects the current handle; re-registering bumps Gen.
	infos := e.ListPrepared()
	if len(infos) != 1 || infos[0].ID.Name != "q1" || infos[0].Total != h3.Total() {
		t.Fatalf("ListPrepared = %+v", infos)
	}
	pq2, err := e.Register("q1", Spec{Query: twoPath, Order: "z, y, x"})
	if err != nil {
		t.Fatal(err)
	}
	if pq2.ID().Gen <= pq.ID().Gen {
		t.Fatalf("re-registration gen %d not above %d", pq2.ID().Gen, pq.ID().Gen)
	}

	if !e.Evict("q1") {
		t.Fatal("Evict(q1) = false")
	}
	if e.Evict("q1") {
		t.Fatal("double Evict(q1) = true")
	}
	if _, err := e.Prepared("q1"); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("Prepared after evict = %v, want ErrNotPrepared", err)
	}
	if st := e.Stats(); st.Prepared != 0 {
		t.Fatalf("prepared after evict = %d, want 0", st.Prepared)
	}
}

// TestRegistryBound checks the registration cap: new names fail once
// MaxRegistered is reached, while re-registration, ID-checked
// eviction, and freeing a slot keep working.
func TestRegistryBound(t *testing.T) {
	e := New(smallInstance(), Options{})
	spec := Spec{Query: twoPath, Order: "x, y, z"}
	for i := 0; i < MaxRegistered; i++ {
		if _, err := e.Register(fmt.Sprintf("q%d", i), spec); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	if _, err := e.Register("overflow", spec); err == nil {
		t.Fatal("registration above MaxRegistered succeeded")
	}
	// Replacing an existing name is not growth and must still work.
	pq, err := e.Register("q0", Spec{Query: twoPath, Order: "y, x, z"})
	if err != nil {
		t.Fatalf("re-register at cap: %v", err)
	}
	// EvictID with a stale generation must not remove the current one.
	if e.EvictID(PreparedID{Name: "q0", Gen: pq.ID().Gen - 1}) {
		t.Fatal("EvictID removed a newer registration")
	}
	if !e.EvictID(pq.ID()) {
		t.Fatal("EvictID refused the current registration")
	}
	if _, err := e.Register("overflow", spec); err != nil {
		t.Fatalf("register after evict: %v", err)
	}
}

// TestRegistryConcurrentAcquireAndMutate hammers Acquire against
// mutations; every returned handle must answer consistently for some
// version (run with -race).
func TestRegistryConcurrentAcquireAndMutate(t *testing.T) {
	e := New(randomInstance(200, 20, 5), Options{})
	pq, err := e.Register("hammer", Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := pq.Acquire()
				if err != nil {
					t.Error(err)
					return
				}
				if h.Total() > 0 {
					if _, err := h.Access(0); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if err := e.AddRows("R", [][]values.Value{{int64(i), int64(i)}}); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
