package rpc

import (
	"context"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"rankedaccess/internal/order"
	"rankedaccess/internal/trace"
)

// TestV1ClientStillServed pins backward compatibility of the v2
// handshake: a v1 client (no trace field in its requests) negotiates
// version 1 and gets answers.
func TestV1ClientStillServed(t *testing.T) {
	b := &fakeBackend{total: 10}
	_, lis := startServer(t, b, nil)

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeHandshake(conn, 1); err != nil {
		t.Fatal(err)
	}
	ver, err := readHandshake(conn)
	if err != nil {
		t.Fatalf("handshake reply: %v", err)
	}
	if ver != 1 {
		t.Fatalf("server negotiated version %d for a v1 client, want 1", ver)
	}
	// A v1 Health request: reqID | kind | deadlineMillis, no trace field.
	e := &enc{}
	e.u64(7)
	e.u8(uint8(KindHealth))
	e.u32(1000)
	if err := writeFrame(conn, e.b); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("v1 response: %v", err)
	}
	d := &dec{b: payload}
	if id, kind := d.u64(), Kind(d.u8()); id != 7 || kind != KindHealth {
		t.Fatalf("response header id=%d kind=%d", id, kind)
	}
	if status := d.u8(); status != statusOK {
		t.Fatalf("v1 call status %d", status)
	}
}

// TestTooOldClientRefused pins that a below-floor version gets no
// handshake reply.
func TestTooOldClientRefused(t *testing.T) {
	b := &fakeBackend{total: 10}
	_, lis := startServer(t, b, nil)
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeHandshake(conn, 0); err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	if _, err := io.ReadFull(conn, buf[:]); err == nil {
		t.Fatalf("version-0 client got a handshake reply %v", buf)
	}
}

// TestFutureClientNegotiatedDown pins that a client offering a newer
// version than the server speaks is answered with the server's own.
func TestFutureClientNegotiatedDown(t *testing.T) {
	b := &fakeBackend{total: 10}
	_, lis := startServer(t, b, nil)
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeHandshake(conn, ProtoVersion+5); err != nil {
		t.Fatal(err)
	}
	ver, err := readHandshake(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ver != ProtoVersion {
		t.Fatalf("negotiated %d, want %d", ver, ProtoVersion)
	}
}

// TestTraceStitchesAcrossRPC runs a traced client call against a
// traced server and asserts both processes' stores hold the same trace
// id, with the server's root span parented on the client span.
func TestTraceStitchesAcrossRPC(t *testing.T) {
	b := &fakeBackend{total: 10}
	srv, lis := startServer(t, b, nil)
	srvTracer := trace.New(trace.Options{Rate: 0, Buffer: 16}) // only kept via the wire's sampled flag
	srv.SetTracer(srvTracer)

	c := NewClient(lis.Addr().String(), Options{})
	defer c.Close()
	cliTracer := trace.New(trace.Options{Rate: 1, Buffer: 16})
	c.SetTracer(cliTracer)

	if _, _, err := c.Rank(context.Background(), testSpec(), 7, order.Answer{2}); err != nil {
		t.Fatalf("Rank: %v", err)
	}

	cliTraces := cliTracer.Store().Snapshot()
	if len(cliTraces) != 1 {
		t.Fatalf("client stored %d traces, want 1", len(cliTraces))
	}
	cli := cliTraces[0]
	if cli.Root().Name != "rarc.client.rank" || cli.Root().Kind != trace.KindClient {
		t.Fatalf("client root: %+v", cli.Root())
	}

	// The server commits its trace after writing the response; poll.
	var srvTraces []*trace.Trace
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srvTraces = srvTracer.Store().Snapshot(); len(srvTraces) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(srvTraces) != 1 {
		t.Fatalf("server stored %d traces, want 1", len(srvTraces))
	}
	sv := srvTraces[0]
	if sv.ID != cli.ID {
		t.Fatalf("trace ids differ: client %s, server %s", cli.ID, sv.ID)
	}
	if sv.Root().Name != "rarc.server.rank" || sv.Root().Kind != trace.KindServer {
		t.Fatalf("server root: %+v", sv.Root())
	}
	if sv.Root().Parent != cli.Root().ID {
		t.Fatalf("server root parent %s, want client span %s", sv.Root().Parent, cli.Root().ID)
	}
	if sv.Reason != "head" {
		t.Fatalf("server keep reason %q, want head (propagated sampled flag)", sv.Reason)
	}
}

// TestUntracedCallCarriesZeroField pins the v2 wire shape: with no
// tracer, the client still sends the 25-byte field, all zero.
func TestUntracedCallCarriesZeroField(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	got := make(chan []byte, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := readHandshake(conn); err != nil {
			return
		}
		if err := writeHandshake(conn, ProtoVersion); err != nil {
			return
		}
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		got <- req
		// Minimal OK response so the client call completes.
		d := &dec{b: req}
		id := d.u64()
		e := &enc{}
		e.u64(id)
		e.u8(uint8(KindHealth))
		e.u8(statusOK)
		e.u8(1)
		e.u32(0)
		_ = writeFrame(conn, e.b)
	}()

	c := NewClient(lis.Addr().String(), Options{})
	defer c.Close()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	req := <-got
	// reqID(8) | kind(1) | deadline(4) | trace(25) for a bodyless call.
	if len(req) != 8+1+4+traceContextLen {
		t.Fatalf("v2 bodyless request is %d bytes, want %d", len(req), 8+1+4+traceContextLen)
	}
	tf := req[13:]
	for i, v := range tf {
		if v != 0 {
			t.Fatalf("untraced trace field byte %d = %#x (deadline=%d)", i, v, binary.LittleEndian.Uint32(req[9:13]))
		}
	}
}
