package rpc

import (
	"net"
	"sync"
	"sync/atomic"
)

// FaultMode selects a FaultListener's behavior.
type FaultMode int32

const (
	// FaultNone passes connections through untouched.
	FaultNone FaultMode = iota
	// FaultDrop accepts and immediately closes every connection, the
	// shape of a crashed or restarting node (clients see connection
	// reset / EOF at handshake).
	FaultDrop
	// FaultHang accepts connections and never answers them, the shape
	// of a wedged node (clients see their deadline expire).
	FaultHang
)

// FaultListener wraps a net.Listener with switchable failure
// injection, the chaos seam cluster tests use to exercise the
// coordinator's retry-once-then-503 path without real process death.
type FaultListener struct {
	inner net.Listener
	mode  atomic.Int32

	mu   sync.Mutex
	held []net.Conn
}

// NewFaultListener wraps l; the initial mode is FaultNone.
func NewFaultListener(l net.Listener) *FaultListener {
	return &FaultListener{inner: l}
}

// SetMode switches the failure mode for subsequently accepted
// connections. Leaving FaultHang releases (closes) the held ones.
func (f *FaultListener) SetMode(m FaultMode) {
	f.mode.Store(int32(m))
	if m != FaultHang {
		f.mu.Lock()
		held := f.held
		f.held = nil
		f.mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}
}

// Accept implements net.Listener, applying the current fault mode.
func (f *FaultListener) Accept() (net.Conn, error) {
	for {
		c, err := f.inner.Accept()
		if err != nil {
			return nil, err
		}
		switch FaultMode(f.mode.Load()) {
		case FaultDrop:
			c.Close()
		case FaultHang:
			f.mu.Lock()
			f.held = append(f.held, c)
			f.mu.Unlock()
		default:
			return c, nil
		}
	}
}

// Close closes the wrapped listener and any held connections.
func (f *FaultListener) Close() error {
	err := f.inner.Close()
	f.mu.Lock()
	held := f.held
	f.held = nil
	f.mu.Unlock()
	for _, c := range held {
		c.Close()
	}
	return err
}

// Addr implements net.Listener.
func (f *FaultListener) Addr() net.Addr { return f.inner.Addr() }
