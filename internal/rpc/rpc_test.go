package rpc

import (
	"context"
	"errors"
	"hash/crc32"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/metrics"
	"rankedaccess/internal/order"
)

// fakeBackend is a deterministic Backend for protocol tests: shard s
// holds answers [s*100, s*100+total) as single-column tuples.
type fakeBackend struct {
	total    int64
	failWith error         // when set, every data call returns it
	block    chan struct{} // when set, data calls block until closed
}

func (f *fakeBackend) wait(ctx context.Context) error {
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return f.failWith
}

func (f *fakeBackend) Prepare(ctx context.Context, spec Spec) (*PrepareInfo, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	info := &PrepareInfo{
		Version:   7,
		Mode:      "layered-lex",
		Completed: []order.LexEntry{{Var: 0, Dir: order.Asc}, {Var: 1, Dir: order.Desc}},
		Totals:    make([]int64, len(spec.Owned)),
	}
	for i := range spec.Owned {
		info.Totals[i] = f.total
	}
	return info, nil
}

func (f *fakeBackend) Count(ctx context.Context, spec CountSpec) (int64, error) {
	if err := f.wait(ctx); err != nil {
		return 0, err
	}
	return f.total * int64(len(spec.Owned)), nil
}

func (f *fakeBackend) Rank(ctx context.Context, spec Spec, version uint64, a order.Answer) ([]int64, bool, error) {
	if err := f.wait(ctx); err != nil {
		return nil, false, err
	}
	if version != 7 {
		return nil, false, ErrStaleVersion
	}
	ranks := make([]int64, len(spec.Owned))
	for i := range ranks {
		ranks[i] = a[0] % f.total
	}
	return ranks, a[0]%2 == 0, nil
}

func (f *fakeBackend) Access(ctx context.Context, spec Spec, version uint64, shard int, k int64) (order.Answer, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	if k < 0 || k >= f.total {
		return nil, access.ErrOutOfBound
	}
	return order.Answer{int64(shard)*100 + k, -k}, nil
}

func (f *fakeBackend) Range(ctx context.Context, spec Spec, version uint64, shard int, k0, k1 int64) ([]order.Answer, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	if k0 < 0 || k1 < k0 || k1 > f.total {
		return nil, access.ErrOutOfBound
	}
	out := make([]order.Answer, 0, k1-k0)
	for k := k0; k < k1; k++ {
		out = append(out, order.Answer{int64(shard)*100 + k, -k})
	}
	return out, nil
}

func (f *fakeBackend) Stats(ctx context.Context) (*PeerStats, error) {
	return &PeerStats{Version: 7, Tuples: 1234, Builds: 3}, nil
}

func (f *fakeBackend) Health(ctx context.Context) (*HealthInfo, error) {
	return &HealthInfo{Ready: true, Reasons: []string{"warming"}}, nil
}

// startServer serves the backend on a loopback listener, optionally
// wrapped, and tears everything down with the test.
func startServer(t *testing.T, b Backend, wrap func(net.Listener) net.Listener) (*Server, net.Listener) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if wrap != nil {
		lis = wrap(lis)
	}
	srv := NewServer(b)
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, lis
}

func testSpec() Spec {
	return Spec{
		Query:    "Q(x, y) :- R(x, y)",
		Order:    "x, y desc",
		P:        4,
		ShardVar: "x",
		Owned:    []int{1, 3},
	}
}

func TestRoundTrip(t *testing.T) {
	b := &fakeBackend{total: 10}
	_, lis := startServer(t, b, nil)
	c := NewClient(lis.Addr().String(), Options{})
	defer c.Close()
	ctx := context.Background()

	info, err := c.Prepare(ctx, testSpec())
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if info.Version != 7 || info.Mode != "layered-lex" || len(info.Totals) != 2 || info.Totals[0] != 10 {
		t.Fatalf("Prepare info = %+v", info)
	}
	if len(info.Completed) != 2 || info.Completed[1] != (order.LexEntry{Var: 1, Dir: order.Desc}) {
		t.Fatalf("Completed = %v", info.Completed)
	}

	n, err := c.Count(ctx, CountSpec{Query: "Q(x) :- R(x)", P: 4, ShardVar: "x", Owned: []int{0, 2}})
	if err != nil || n != 20 {
		t.Fatalf("Count = %d, %v", n, err)
	}

	ranks, exact, err := c.Rank(ctx, testSpec(), 7, order.Answer{6, 0})
	if err != nil || !exact || len(ranks) != 2 || ranks[0] != 6 {
		t.Fatalf("Rank = %v, %v, %v", ranks, exact, err)
	}

	a, err := c.Access(ctx, testSpec(), 7, 3, 4)
	if err != nil || a[0] != 304 || a[1] != -4 {
		t.Fatalf("Access = %v, %v", a, err)
	}

	rows, err := c.Range(ctx, testSpec(), 7, 1, 2, 5)
	if err != nil || len(rows) != 3 || rows[0][0] != 102 || rows[2][1] != -4 {
		t.Fatalf("Range = %v, %v", rows, err)
	}

	st, err := c.StatsCall(ctx)
	if err != nil || st.Tuples != 1234 || st.Builds != 3 {
		t.Fatalf("Stats = %+v, %v", st, err)
	}

	h, err := c.Health(ctx)
	if err != nil || !h.Ready || len(h.Reasons) != 1 || h.Reasons[0] != "warming" {
		t.Fatalf("Health = %+v, %v", h, err)
	}
}

// TestSentinelStatuses pins that app-level errors cross the wire as the
// EXACT engine sentinels — that equivalence is what makes distributed
// error responses byte-identical to single-node ones.
func TestSentinelStatuses(t *testing.T) {
	b := &fakeBackend{total: 10}
	_, lis := startServer(t, b, nil)
	c := NewClient(lis.Addr().String(), Options{})
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Access(ctx, testSpec(), 7, 1, 99); !errors.Is(err, access.ErrOutOfBound) {
		t.Fatalf("out-of-range Access = %v, want ErrOutOfBound", err)
	}
	if _, _, err := c.Rank(ctx, testSpec(), 8, order.Answer{0, 0}); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale Rank = %v, want ErrStaleVersion", err)
	}

	b.failWith = access.ErrNotAnAnswer
	if _, _, err := c.Rank(ctx, testSpec(), 7, order.Answer{0, 0}); !errors.Is(err, access.ErrNotAnAnswer) {
		t.Fatalf("Rank = %v, want ErrNotAnAnswer", err)
	}

	b.failWith = &BadRequestError{Msg: "no such variable"}
	var bre *BadRequestError
	if _, err := c.Prepare(ctx, testSpec()); !errors.As(err, &bre) || bre.Msg != "no such variable" {
		t.Fatalf("Prepare = %v, want BadRequestError", err)
	}

	b.failWith = errors.New("disk exploded")
	var re *RemoteError
	if _, err := c.Prepare(ctx, testSpec()); !errors.As(err, &re) {
		t.Fatalf("Prepare = %v, want RemoteError", err)
	}
	// App-status errors must NOT be retried: two Prepare calls so far
	// with failWith set => exactly that many reached the backend.
	if got := c.Stats().Calls[KindPrepare]; got != 2 {
		t.Fatalf("Prepare client calls = %d, want 2 (no transport retries)", got)
	}
}

// TestPoolReuse pins that sequential calls share one connection.
func TestPoolReuse(t *testing.T) {
	var accepts atomic.Int64
	b := &fakeBackend{total: 10}
	_, lis := startServer(t, b, func(l net.Listener) net.Listener {
		return &countingListener{Listener: l, n: &accepts}
	})
	c := NewClient(lis.Addr().String(), Options{})
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.Health(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := accepts.Load(); n != 1 {
		t.Fatalf("5 sequential calls used %d connections, want 1", n)
	}
}

type countingListener struct {
	net.Listener
	n *atomic.Int64
}

func (c *countingListener) Accept() (net.Conn, error) {
	conn, err := c.Listener.Accept()
	if err == nil {
		c.n.Add(1)
	}
	return conn, err
}

// killFirstListener closes its first accepted connection immediately,
// simulating a peer that dies mid-handshake exactly once.
type killFirstListener struct {
	net.Listener
	killed atomic.Bool
}

func (k *killFirstListener) Accept() (net.Conn, error) {
	conn, err := k.Listener.Accept()
	if err == nil && k.killed.CompareAndSwap(false, true) {
		conn.Close()
		return k.Listener.Accept()
	}
	return conn, err
}

// TestRetryOnce pins the transport-retry contract: one transparent
// retry on a fresh connection, so a single connection-level failure
// never surfaces.
func TestRetryOnce(t *testing.T) {
	b := &fakeBackend{total: 10}
	_, lis := startServer(t, b, func(l net.Listener) net.Listener {
		return &killFirstListener{Listener: l}
	})
	c := NewClient(lis.Addr().String(), Options{})
	defer c.Close()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("call across one dead connection = %v, want transparent retry", err)
	}
}

// TestFaultModes drives the fault-injection seam end to end: a dropping
// listener yields ErrUnavailable after the retry, a hanging listener
// yields a deadline error, and clearing the fault restores service.
func TestFaultModes(t *testing.T) {
	b := &fakeBackend{total: 10}
	var fl *FaultListener
	_, lis := startServer(t, b, func(l net.Listener) net.Listener {
		fl = NewFaultListener(l)
		return fl
	})
	c := NewClient(lis.Addr().String(), Options{DialTimeout: 200 * time.Millisecond, CallTimeout: 500 * time.Millisecond})
	defer c.Close()

	fl.SetMode(FaultDrop)
	if _, err := c.Health(context.Background()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Health through dropping listener = %v, want ErrUnavailable", err)
	}

	fl.SetMode(FaultHang)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	err := func() error { _, err := c.Health(ctx); return err }()
	cancel()
	if err == nil {
		t.Fatal("Health through hanging listener succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Health through hanging listener = %v", err)
	}

	fl.SetMode(FaultNone)
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after clearing fault = %v", err)
	}
}

// TestDeadlinePropagation pins that a caller deadline bounds the call
// even when the backend never answers.
func TestDeadlinePropagation(t *testing.T) {
	b := &fakeBackend{total: 10, block: make(chan struct{})}
	defer close(b.block)
	_, lis := startServer(t, b, nil)
	c := NewClient(lis.Addr().String(), Options{})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Prepare(ctx, testSpec())
	if err == nil {
		t.Fatal("Prepare with blocked backend succeeded")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Prepare took %v despite a 250ms deadline", d)
	}
}

// TestCorruptFrame pins CRC verification: flipping one payload bit is
// detected, never decoded.
func TestCorruptFrame(t *testing.T) {
	srvConn, cliConn := net.Pipe()
	defer srvConn.Close()
	defer cliConn.Close()

	go func() {
		e := &enc{}
		e.str("hello")
		var buf []byte
		buf = append(buf, e.b...)
		_ = writeFrameCorrupted(srvConn, buf)
	}()
	_, err := readFrame(cliConn)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt frame read = %v, want ErrBadFrame", err)
	}
}

// writeFrameCorrupted writes a well-formed frame, then flips one bit of
// the payload so the CRC no longer matches.
func writeFrameCorrupted(w net.Conn, payload []byte) error {
	e := &enc{}
	e.u32(uint32(len(payload)))
	e.u32(crc32.Checksum(payload, castagnoli))
	flipped := append([]byte(nil), payload...)
	flipped[0] ^= 0x01
	e.b = append(e.b, flipped...)
	_, err := w.Write(e.b)
	return err
}

// TestHostileLengths pins the decoder against absurd length prefixes: a
// claimed billion-element slice in a tiny payload must fail cleanly,
// not allocate.
func TestHostileLengths(t *testing.T) {
	e := &enc{}
	e.u32(1 << 30) // a billion strings, in an 8-byte payload
	e.u32(0)
	d := &dec{b: e.b}
	_ = d.strs()
	if !d.bad {
		t.Fatal("decoder accepted a hostile length prefix")
	}

	e2 := &enc{}
	e2.u32(1 << 30)
	d2 := &dec{b: e2.b}
	_ = d2.i64s()
	if !d2.bad {
		t.Fatal("decoder accepted a hostile i64 count")
	}
}

// TestClientMetrics pins the per-peer series names on a live registry.
func TestClientMetrics(t *testing.T) {
	b := &fakeBackend{total: 10}
	_, lis := startServer(t, b, nil)
	c := NewClient(lis.Addr().String(), Options{})
	defer c.Close()
	reg := metrics.NewRegistry()
	c.SetMetrics(NewClientMetrics(reg, "peer-a"))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	want := map[string]bool{
		"ra_rpc_client_requests_total":  false,
		"ra_rpc_client_errors_total":    false,
		"ra_rpc_client_latency_seconds": false,
		"ra_rpc_client_in_flight":       false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("metric %s not registered (have %v)", n, names)
		}
	}
}

// TestServerInstrument pins the server-side series.
func TestServerInstrument(t *testing.T) {
	b := &fakeBackend{total: 10}
	srv, lis := startServer(t, b, nil)
	reg := metrics.NewRegistry()
	srv.Instrument(reg)
	c := NewClient(lis.Addr().String(), Options{})
	defer c.Close()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range reg.Names() {
		if n == "ra_rpc_server_requests_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("ra_rpc_server_requests_total not registered")
	}
}

// TestVersionMismatchHandshake pins that a peer speaking a different
// protocol version is refused at connect, not mid-call.
func TestVersionMismatchHandshake(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// A "future" server: right magic, wrong version.
		bad := append([]byte{}, magic[:]...)
		bad = append(bad, 0xFF, 0xFF, 0, 0)
		_, _ = conn.Write(bad)
	}()
	c := NewClient(lis.Addr().String(), Options{CallTimeout: time.Second})
	defer c.Close()
	if _, err := c.Health(context.Background()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Health against wrong-version peer = %v, want ErrUnavailable", err)
	}
}
