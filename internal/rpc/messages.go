package rpc

import (
	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
)

// Spec is the wire form of a distributed ranked-access request: the
// textual spec the coordinator planned plus the partitioning it fixed
// (total shard count, partition variable) and the shard indices the
// receiving node must build and own. Probes repeat the full Spec so
// every call is stateless — a node that evicted (or never saw) the
// build reconstructs it from the message alone instead of failing on
// a dangling token.
type Spec struct {
	// Query, Order, SumBy, FDs mirror engine.Spec.
	Query string
	Order string
	SumBy []string
	FDs   []string
	// P is the cluster-wide shard count.
	P int
	// ShardVar names the partition variable (always explicit on the
	// wire; the coordinator resolves defaulting before fan-out so all
	// nodes agree).
	ShardVar string
	// Owned lists the shard indices in [0, P) this node builds.
	Owned []int
}

func (s *Spec) encode(e *enc) {
	e.str(s.Query)
	e.str(s.Order)
	e.strs(s.SumBy)
	e.strs(s.FDs)
	e.u32(uint32(s.P))
	e.str(s.ShardVar)
	e.ints(s.Owned)
}

func decodeSpec(d *dec) Spec {
	return Spec{
		Query:    d.str(),
		Order:    d.str(),
		SumBy:    d.strs(),
		FDs:      d.strs(),
		P:        int(d.u32()),
		ShardVar: d.str(),
		Owned:    d.ints(),
	}
}

// Key returns a canonical identity string for the spec, used by nodes
// to cache builds across stateless probes.
func (s *Spec) Key() string {
	var e enc
	s.encode(&e)
	return string(e.b)
}

// PrepareInfo is a node's answer to Prepare: the identity of the data
// the build reflects plus everything the coordinator needs to merge
// this node's shards into the global order.
type PrepareInfo struct {
	// Version is the node's instance version the build reflects;
	// subsequent probes echo it and get ErrStaleVersion if the node
	// moved on.
	Version uint64
	// Mode is the structure mode every owned shard was built in
	// (engine.Mode's string form); the coordinator requires unanimity
	// across nodes.
	Mode string
	// Completed is the realized total lex order of layered builds
	// (empty for SUM and materialized-SUM), encoded as (var, dir)
	// pairs. All shards of all nodes must realize the same order.
	Completed []order.LexEntry
	// Totals are the per-shard answer counts, aligned with the
	// request's Owned slice.
	Totals []int64
}

func (p *PrepareInfo) encode(e *enc) {
	e.u64(p.Version)
	e.str(p.Mode)
	e.u32(uint32(len(p.Completed)))
	for _, le := range p.Completed {
		e.i64(int64(le.Var))
		e.u8(uint8(le.Dir))
	}
	e.i64s(p.Totals)
}

func decodePrepareInfo(d *dec) *PrepareInfo {
	p := &PrepareInfo{Version: d.u64(), Mode: d.str()}
	n := d.count(9)
	for i := 0; i < n && !d.bad; i++ {
		v := d.i64()
		dir := d.u8()
		p.Completed = append(p.Completed, order.LexEntry{Var: cq.VarID(v), Dir: order.Direction(dir)})
	}
	p.Totals = d.i64s()
	return p
}

// CountSpec asks a node to count its owned shards' answers for a
// query under the given partitioning (no order needed — counting is
// order-free).
type CountSpec struct {
	Query    string
	P        int
	ShardVar string
	Owned    []int
}

func (c *CountSpec) encode(e *enc) {
	e.str(c.Query)
	e.u32(uint32(c.P))
	e.str(c.ShardVar)
	e.ints(c.Owned)
}

func decodeCountSpec(d *dec) CountSpec {
	return CountSpec{Query: d.str(), P: int(d.u32()), ShardVar: d.str(), Owned: d.ints()}
}

// PeerStats is a node's Stats answer.
type PeerStats struct {
	// Version is the node's current instance version.
	Version uint64
	// Tuples is the node's instance size.
	Tuples int64
	// Builds is the number of owned-shard builds the node is caching.
	Builds int64
}

// HealthInfo is a node's Health answer.
type HealthInfo struct {
	Ready   bool
	Reasons []string
}
