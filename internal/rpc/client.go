package rpc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/metrics"
	"rankedaccess/internal/order"
	"rankedaccess/internal/trace"
)

// Options tunes a Client. The zero value picks the defaults below.
type Options struct {
	// DialTimeout bounds connection establishment (handshake
	// included); 2s when 0.
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline applied when the caller's
	// context has none; 10s when 0. Probes issued from the shard merge
	// layer carry no context, so this is their effective deadline.
	CallTimeout time.Duration
	// MaxIdle bounds the pooled idle connections per peer; 4 when 0.
	MaxIdle int
	// IdleTimeout is how long an idle pooled connection survives
	// before the reaper closes it; 60s when 0.
	IdleTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.MaxIdle <= 0 {
		o.MaxIdle = 4
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 60 * time.Second
	}
	return o
}

// pconn is one pooled connection with its buffered reader and the
// protocol version the handshake negotiated for it.
type pconn struct {
	c    net.Conn
	br   *bufio.Reader
	ver  uint16
	last time.Time
}

// CallStats counts a client's calls and failures per kind, always on
// (atomic counters), for tests and diagnostics independent of any
// metrics registry.
type CallStats struct {
	Calls  [8]uint64 // indexed by Kind
	Errors [8]uint64
}

// Client issues typed calls to one peer over pooled connections. It is
// safe for concurrent use; concurrent calls use separate connections.
// Transport-level failures are retried once on a fresh connection
// (every call is an idempotent read), then surfaced as ErrUnavailable.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	idle   []*pconn
	closed bool

	seq   atomic.Uint64
	calls [8]atomic.Uint64
	errs  [8]atomic.Uint64

	m      atomic.Pointer[ClientMetrics]
	tracer atomic.Pointer[trace.Tracer]

	reapStop chan struct{}
	reapOnce sync.Once
}

// NewClient returns a client for the peer at addr. Connections are
// dialed lazily; the idle reaper starts with the first call.
func NewClient(addr string, opts Options) *Client {
	return &Client{addr: addr, opts: opts.withDefaults(), reapStop: make(chan struct{})}
}

// Addr returns the peer address the client dials.
func (c *Client) Addr() string { return c.addr }

// SetMetrics attaches per-peer instruments (see NewClientMetrics);
// nil detaches. Safe to call at any time.
func (c *Client) SetMetrics(m *ClientMetrics) { c.m.Store(m) }

// SetTracer makes every call emit a client span (one per attempt
// sequence, carrying peer and method) and propagate the caller's trace
// context in the v2 wire field. nil disables. Safe to call at any time.
func (c *Client) SetTracer(t *trace.Tracer) { c.tracer.Store(t) }

// Stats snapshots the per-kind call counters.
func (c *Client) Stats() CallStats {
	var s CallStats
	for i := range s.Calls {
		s.Calls[i] = c.calls[i].Load()
		s.Errors[i] = c.errs[i].Load()
	}
	return s
}

// Close releases every pooled connection and stops the reaper. In-
// flight calls finish on their own connections.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	close(c.reapStop)
	for _, pc := range idle {
		pc.c.Close()
	}
}

// get returns a pooled connection or dials a new one. fresh reports
// that the connection was just dialed (so a transport failure on it is
// not a stale-pool artifact).
func (c *Client) get(deadline time.Time) (*pconn, bool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, fmt.Errorf("%w: client closed", ErrUnavailable)
	}
	if n := len(c.idle); n > 0 {
		pc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return pc, false, nil
	}
	c.mu.Unlock()
	return c.dial(deadline)
}

// dial opens and handshakes a fresh connection.
func (c *Client) dial(deadline time.Time) (*pconn, bool, error) {
	dialDeadline := time.Now().Add(c.opts.DialTimeout)
	if deadline.Before(dialDeadline) {
		dialDeadline = deadline
	}
	conn, err := net.DialTimeout("tcp", c.addr, time.Until(dialDeadline))
	if err != nil {
		return nil, true, err
	}
	conn.SetDeadline(dialDeadline)
	if err := writeHandshake(conn, ProtoVersion); err != nil {
		conn.Close()
		return nil, true, err
	}
	br := bufio.NewReader(conn)
	// The server replies min(our version, its version); anything above
	// what we offered or below our floor is a protocol violation.
	ver, err := readHandshake(br)
	if err != nil {
		conn.Close()
		return nil, true, err
	}
	if ver < minProtoVersion || ver > ProtoVersion {
		conn.Close()
		return nil, true, fmt.Errorf("%w: server negotiated version %d, want %d..%d",
			ErrBadFrame, ver, minProtoVersion, ProtoVersion)
	}
	conn.SetDeadline(time.Time{})
	return &pconn{c: conn, br: br, ver: ver}, true, nil
}

// put returns a healthy connection to the pool (closing it when the
// pool is full or the client closed) and lazily starts the reaper.
func (c *Client) put(pc *pconn) {
	c.reapOnce.Do(func() { go c.reap() })
	pc.last = time.Now()
	c.mu.Lock()
	if c.closed || len(c.idle) >= c.opts.MaxIdle {
		c.mu.Unlock()
		pc.c.Close()
		return
	}
	c.idle = append(c.idle, pc)
	c.mu.Unlock()
}

// reap closes pooled connections idle past IdleTimeout.
func (c *Client) reap() {
	t := time.NewTicker(c.opts.IdleTimeout / 2)
	defer t.Stop()
	for {
		select {
		case <-c.reapStop:
			return
		case now := <-t.C:
			var dead []*pconn
			c.mu.Lock()
			keep := c.idle[:0]
			for _, pc := range c.idle {
				if now.Sub(pc.last) > c.opts.IdleTimeout {
					dead = append(dead, pc)
				} else {
					keep = append(keep, pc)
				}
			}
			c.idle = keep
			c.mu.Unlock()
			for _, pc := range dead {
				pc.c.Close()
			}
		}
	}
}

// call performs one request/response exchange: encode, send, decode
// status. Transport errors are retried once on a freshly dialed
// connection; the retry never reuses the pool, so a stale pooled
// connection cannot fail a call twice.
func (c *Client) call(ctx context.Context, kind Kind, body func(*enc)) (*dec, error) {
	c.calls[kind].Add(1)
	m := c.m.Load()
	var span *trace.Span
	if t := c.tracer.Load(); t != nil {
		ctx, span = t.Start(ctx, "rarc.client."+KindName(kind), trace.KindClient)
		span.SetAttr(trace.Str("peer", c.addr))
	}
	start := time.Now()
	if m != nil {
		m.inflight.Inc()
	}
	d, err := c.callInner(ctx, kind, body)
	if m != nil {
		m.inflight.Dec()
		m.latency.ObserveExemplar(time.Since(start).Seconds(), span.TraceIDString())
		m.requests[kind].Inc()
		if err != nil {
			m.errors[kind].Inc()
		}
	}
	if err != nil {
		c.errs[kind].Add(1)
		span.SetError(err)
	}
	span.End()
	return d, err
}

func (c *Client) callInner(ctx context.Context, kind Kind, body func(*enc)) (*dec, error) {
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(c.opts.CallTimeout)
	}
	reqID := c.seq.Add(1)
	be := &enc{b: make([]byte, 0, 224)}
	body(be)
	millis := time.Until(deadline).Milliseconds()
	if millis < 1 {
		millis = 1
	}
	if millis > 1<<31-1 {
		millis = 1<<31 - 1
	}
	sc, _ := trace.SpanContextOf(ctx)

	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var pc *pconn
		var err error
		if attempt == 0 {
			pc, _, err = c.get(deadline)
		} else {
			pc, _, err = c.dial(deadline)
		}
		if err != nil {
			lastErr = err
			continue
		}
		// The request header depends on the connection's negotiated
		// version (v2 carries the trace field), so assemble it per
		// attempt around the version-independent body.
		e := &enc{b: make([]byte, 0, len(be.b)+8+1+4+traceContextLen)}
		e.u64(reqID)
		e.u8(uint8(kind))
		e.u32(uint32(millis))
		if pc.ver >= 2 {
			encTraceContext(e, sc)
		}
		e.b = append(e.b, be.b...)
		payload, err := c.roundTrip(pc, e.b, reqID, kind, deadline)
		if err != nil {
			pc.c.Close()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		c.put(pc)
		return decodeStatus(payload)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, c.addr, lastErr)
}

// roundTrip writes the request frame and reads the matching response
// payload (sans the echoed id/kind header).
func (c *Client) roundTrip(pc *pconn, req []byte, reqID uint64, kind Kind, deadline time.Time) ([]byte, error) {
	pc.c.SetDeadline(deadline)
	defer pc.c.SetDeadline(time.Time{})
	if err := writeFrame(pc.c, req); err != nil {
		return nil, err
	}
	payload, err := readFrame(pc.br)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	gotID, gotKind := d.u64(), Kind(d.u8())
	if d.bad || gotID != reqID || gotKind != kind {
		return nil, fmt.Errorf("%w: response for request %d kind %d, want %d kind %d",
			ErrBadFrame, gotID, gotKind, reqID, kind)
	}
	return payload[d.off:], nil
}

// decodeStatus maps a response status byte back to the caller-visible
// error; well-known statuses decode to the exact engine sentinels so
// distributed error behavior matches single-node behavior.
func decodeStatus(payload []byte) (*dec, error) {
	d := &dec{b: payload}
	status := d.u8()
	if d.bad {
		return nil, fmt.Errorf("%w: empty response payload", ErrBadFrame)
	}
	if status == statusOK {
		return d, nil
	}
	msg := d.str()
	switch status {
	case statusOutOfBound:
		return nil, access.ErrOutOfBound
	case statusNotAnAnswer:
		return nil, access.ErrNotAnAnswer
	case statusStale:
		return nil, ErrStaleVersion
	case statusBadRequest:
		return nil, &BadRequestError{Msg: msg}
	default:
		return nil, &RemoteError{Msg: msg}
	}
}

// finish validates that a decoded response consumed cleanly.
func finish(d *dec) error {
	if err := d.err(); err != nil {
		return err
	}
	return nil
}

// Prepare asks the peer to build (or reuse) the owned shard structures
// for the spec.
func (c *Client) Prepare(ctx context.Context, spec Spec) (*PrepareInfo, error) {
	d, err := c.call(ctx, KindPrepare, spec.encode)
	if err != nil {
		return nil, err
	}
	p := decodePrepareInfo(d)
	if err := finish(d); err != nil {
		return nil, err
	}
	if len(p.Totals) != len(spec.Owned) {
		return nil, fmt.Errorf("%w: %d totals for %d owned shards", ErrBadFrame, len(p.Totals), len(spec.Owned))
	}
	return p, nil
}

// Count returns the total answer count over the peer's owned shards.
func (c *Client) Count(ctx context.Context, spec CountSpec) (int64, error) {
	d, err := c.call(ctx, KindCount, spec.encode)
	if err != nil {
		return 0, err
	}
	n := d.i64()
	return n, finish(d)
}

// Rank prices the answer on every owned shard: ranks is aligned with
// the spec's Owned slice, exact reports whether some owned shard holds
// the answer.
func (c *Client) Rank(ctx context.Context, spec Spec, version uint64, a order.Answer) (ranks []int64, exact bool, err error) {
	d, err := c.call(ctx, KindRank, func(e *enc) {
		spec.encode(e)
		e.u64(version)
		e.answer(a)
	})
	if err != nil {
		return nil, false, err
	}
	ranks = d.i64s()
	exact = d.u8() != 0
	if err := finish(d); err != nil {
		return nil, false, err
	}
	if len(ranks) != len(spec.Owned) {
		return nil, false, fmt.Errorf("%w: %d ranks for %d owned shards", ErrBadFrame, len(ranks), len(spec.Owned))
	}
	return ranks, exact, nil
}

// Access returns one shard's k-th local answer (full answer width,
// all query variables).
func (c *Client) Access(ctx context.Context, spec Spec, version uint64, shard int, k int64) (order.Answer, error) {
	d, err := c.call(ctx, KindAccess, func(e *enc) {
		spec.encode(e)
		e.u64(version)
		e.u32(uint32(shard))
		e.i64(k)
	})
	if err != nil {
		return nil, err
	}
	a := d.answer()
	return a, finish(d)
}

// Range returns one shard's local answers k0 ≤ k < k1 in order.
func (c *Client) Range(ctx context.Context, spec Spec, version uint64, shard int, k0, k1 int64) ([]order.Answer, error) {
	d, err := c.call(ctx, KindRange, func(e *enc) {
		spec.encode(e)
		e.u64(version)
		e.u32(uint32(shard))
		e.i64(k0)
		e.i64(k1)
	})
	if err != nil {
		return nil, err
	}
	width := int(d.u32())
	count := d.count(8 * max(width, 1))
	if d.bad {
		return nil, finish(d)
	}
	out := make([]order.Answer, count)
	flat := make([]int64, count*width)
	for i := range out {
		row := flat[i*width : (i+1)*width]
		for j := range row {
			row[j] = d.i64()
		}
		out[i] = row
	}
	return out, finish(d)
}

// StatsCall returns the peer's node-level counters.
func (c *Client) StatsCall(ctx context.Context) (*PeerStats, error) {
	d, err := c.call(ctx, KindStats, func(*enc) {})
	if err != nil {
		return nil, err
	}
	st := &PeerStats{Version: d.u64(), Tuples: d.i64(), Builds: d.i64()}
	return st, finish(d)
}

// Health returns the peer's readiness.
func (c *Client) Health(ctx context.Context) (*HealthInfo, error) {
	d, err := c.call(ctx, KindHealth, func(*enc) {})
	if err != nil {
		return nil, err
	}
	h := &HealthInfo{Ready: d.u8() != 0, Reasons: d.strs()}
	return h, finish(d)
}

// ClientMetrics are the per-peer instruments a coordinator exports on
// /metrics for every shard node it talks to.
type ClientMetrics struct {
	requests map[Kind]*metrics.Counter
	errors   map[Kind]*metrics.Counter
	latency  *metrics.Histogram
	inflight *metrics.Gauge
}

// rpcLatencyBounds bracket intra-cluster round-trips: 10µs to 2.5s.
// The sub-millisecond decades matter here — same-rack rank RPCs sit
// well under 1ms, and HTTP-scale buckets would flatten them all into
// one bin.
var rpcLatencyBounds = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
	0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// NewClientMetrics registers the per-peer RPC series (request and
// error counters per method, one latency histogram, one in-flight
// gauge) labeled with the peer address, and returns the bundle to
// attach via Client.SetMetrics.
func NewClientMetrics(reg *metrics.Registry, peer string) *ClientMetrics {
	m := &ClientMetrics{
		requests: make(map[Kind]*metrics.Counter, len(kindNames)),
		errors:   make(map[Kind]*metrics.Counter, len(kindNames)),
		latency: reg.Histogram("ra_rpc_client_latency_seconds",
			"RPC round-trip latency to this peer.", rpcLatencyBounds, "peer", peer),
		inflight: reg.Gauge("ra_rpc_client_in_flight",
			"RPCs currently outstanding to this peer.", "peer", peer),
	}
	for kind, name := range kindNames {
		m.requests[kind] = reg.Counter("ra_rpc_client_requests_total",
			"RPCs issued to this peer by method.", "peer", peer, "method", name)
		m.errors[kind] = reg.Counter("ra_rpc_client_errors_total",
			"Failed RPCs to this peer by method.", "peer", peer, "method", name)
	}
	return m
}
