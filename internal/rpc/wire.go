// Package rpc is the cluster's wire protocol: a stdlib-only framed
// binary protocol over TCP carrying the typed calls a coordinator
// issues against shard nodes (Prepare/Count/Rank/Access/Range/Stats/
// Health — see Client and Backend).
//
// Connection layout. A connection opens with an 8-byte handshake in
// each direction (magic, protocol version); every subsequent exchange
// is one request frame followed by one response frame. A frame is
//
//	uint32 length | uint32 crc32c(payload) | payload
//
// little-endian, with the CRC (Castagnoli) covering the payload only.
// A request payload is
//
//	uint64 reqID | uint8 kind | uint32 deadlineMillis | body
//
// and a response payload echoes the request id and kind followed by a
// status byte and the body (an error message for non-OK statuses). The
// deadline is relative (milliseconds left until the caller gives up),
// so no clock synchronization between peers is assumed; 0 means no
// deadline. Connections carry one request at a time — pipelining would
// complicate failure attribution for no win at the coordinator's
// concurrency (it opens more connections instead, see Client's pool).
//
// Versioning. ProtoVersion is bumped on any incompatible change to the
// framing or message bodies. Since version 2 the handshake negotiates:
// the client leads with its own version, the server replies with
// min(client, server) and the connection speaks that version — so an
// old coordinator keeps working against upgraded shard nodes, while a
// new coordinator against an old node fails fast at connect time (the
// v1 server's strict equality check refuses the newer preamble). See
// CONTRIBUTING.md for the bump policy (it mirrors the snapshot/WAL
// format rules).
//
// Version history:
//
//	1 — initial framed protocol (PR 9).
//	2 — request payloads gain a fixed 25-byte trace-context field
//	    (flags, trace id, span id; all-zero = untraced) between
//	    deadlineMillis and the body, so distributed traces stitch
//	    across the coordinator/shard boundary.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"rankedaccess/internal/order"
	"rankedaccess/internal/trace"
	"rankedaccess/internal/values"
)

// ProtoVersion is the newest wire-protocol version this build speaks.
// Bump it on ANY incompatible framing or message change.
const ProtoVersion = 2

// minProtoVersion is the oldest version this build still serves; the
// negotiated connection version always lands in [minProtoVersion,
// ProtoVersion].
const minProtoVersion = 1

// magic opens every handshake; "RARC" = RankedAccess RPC.
var magic = [4]byte{'R', 'A', 'R', 'C'}

// maxFrame bounds a frame payload; anything larger is a protocol
// error (it would let one bad peer make us allocate without bound).
const maxFrame = 64 << 20

// castagnoli is the CRC-32C table shared by all frame writers/readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind identifies a typed call.
type Kind uint8

const (
	// KindPrepare builds (or reuses) the owned per-shard structures
	// for a spec and returns their totals and realized order.
	KindPrepare Kind = 1
	// KindCount counts the owned shards' answers for a query.
	KindCount Kind = 2
	// KindRank prices an answer on every owned shard (answers
	// strictly below it, the paper's Rank query).
	KindRank Kind = 3
	// KindAccess returns one shard's k-th local answer.
	KindAccess Kind = 4
	// KindRange returns one shard's local answers k0 ≤ k < k1.
	KindRange Kind = 5
	// KindStats returns node-level counters.
	KindStats Kind = 6
	// KindHealth reports node readiness (the prober's call).
	KindHealth Kind = 7
)

// kindNames maps kinds to the method label used in metrics.
var kindNames = map[Kind]string{
	KindPrepare: "prepare",
	KindCount:   "count",
	KindRank:    "rank",
	KindAccess:  "access",
	KindRange:   "range",
	KindStats:   "stats",
	KindHealth:  "health",
}

// KindName returns the metrics label of a kind ("?" when unknown).
func KindName(k Kind) string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "?"
}

// Response status bytes. Statuses carrying a well-known engine
// sentinel decode back to that exact sentinel on the client, so the
// coordinator's error handling (and its HTTP error bodies) match the
// single-node path byte for byte.
const (
	statusOK          = 0
	statusOutOfBound  = 1 // access.ErrOutOfBound
	statusNotAnAnswer = 2 // access.ErrNotAnAnswer
	statusBadRequest  = 3 // request-level failure, message attached
	statusInternal    = 4 // node-side failure, message attached
	statusStale       = 5 // ErrStaleVersion
)

// ErrUnavailable reports that a peer could not be reached (dial,
// write, or read failed) even after the client's single retry. The
// serving layer maps it to 503 + Retry-After.
var ErrUnavailable = errors.New("rpc: peer unavailable")

// ErrStaleVersion reports that the shard node's instance changed
// between Prepare and a probe, so the coordinator's cached totals no
// longer describe the node's data. Re-registering the query recovers.
var ErrStaleVersion = errors.New("rpc: shard node instance version changed since prepare; re-register the query")

// ErrBadFrame reports a framing-level protocol violation (bad magic,
// version mismatch, CRC failure, oversized frame). The connection
// carrying it is poisoned and must be closed.
var ErrBadFrame = errors.New("rpc: protocol error")

// BadRequestError is a request-level failure a node reports back to
// the coordinator (malformed spec, unknown shard index, FD specs).
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return e.Msg }

// RemoteError wraps a node-side internal failure: the call reached
// the node and failed there, so retrying another connection is
// pointless.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// writeHandshake sends the 8-byte magic+version preamble carrying the
// given version (the client's own, or the server's negotiated reply).
func writeHandshake(w io.Writer, version uint16) error {
	var b [8]byte
	copy(b[:4], magic[:])
	binary.LittleEndian.PutUint16(b[4:6], version)
	_, err := w.Write(b[:])
	return err
}

// readHandshake consumes the peer's preamble and returns the version
// it carries; callers validate the version against their role's rules
// (server: clamp to min(peer, own); client: accept what the server
// negotiated down to).
func readHandshake(r io.Reader) (uint16, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	if [4]byte(b[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadFrame, b[:4])
	}
	return binary.LittleEndian.Uint16(b[4:6]), nil
}

// traceContextLen is the fixed length of the v2 trace field.
const traceContextLen = 1 + 16 + 8

// encTraceContext appends the fixed v2 trace field: flags, trace id,
// parent span id. A zero SpanContext encodes as 25 zero bytes, which
// decodes back to "no trace".
func encTraceContext(e *enc, sc trace.SpanContext) {
	e.u8(sc.Flags)
	e.b = append(e.b, sc.TraceID[:]...)
	e.b = append(e.b, sc.SpanID[:]...)
}

// decTraceContext consumes the fixed v2 trace field; ok is false for
// the all-zero (untraced) field.
func decTraceContext(d *dec) (trace.SpanContext, bool) {
	var sc trace.SpanContext
	sc.Flags = d.u8()
	if d.bad || d.off+16+8 > len(d.b) {
		d.fail()
		return trace.SpanContext{}, false
	}
	copy(sc.TraceID[:], d.b[d.off:])
	d.off += 16
	copy(sc.SpanID[:], d.b[d.off:])
	d.off += 8
	return sc, sc.Valid()
}

// writeFrame writes one length+CRC framed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds %d", ErrBadFrame, len(payload), maxFrame)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, verifying length bound and CRC.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds %d", ErrBadFrame, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("%w: payload CRC %08x, want %08x", ErrBadFrame, got, want)
	}
	return payload, nil
}

// enc builds a little-endian message body.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) strs(ss []string) {
	e.u32(uint32(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (e *enc) ints(vs []int) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.i64(int64(v))
	}
}

func (e *enc) i64s(vs []int64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.i64(v)
	}
}

func (e *enc) answer(a order.Answer) {
	e.u32(uint32(len(a)))
	for _, v := range a {
		e.i64(int64(v))
	}
}

// dec consumes a little-endian message body with sticky error state:
// any out-of-bounds or over-limit read marks the decoder bad and every
// subsequent read returns zero values, so codecs can decode straight
// through and check err() once.
type dec struct {
	b   []byte
	off int
	bad bool
}

func (d *dec) fail() { d.bad = true }

func (d *dec) err() error {
	if d.bad {
		return fmt.Errorf("%w: truncated or malformed message", ErrBadFrame)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(d.b)-d.off)
	}
	return nil
}

func (d *dec) u8() uint8 {
	if d.bad || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.bad || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.bad || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

// count reads a length prefix for elements of at least elemSize bytes,
// bounding it by the remaining payload so hostile lengths cannot force
// huge allocations.
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	if d.bad {
		return 0
	}
	if n < 0 || n*elemSize > len(d.b)-d.off {
		d.fail()
		return 0
	}
	return n
}

func (d *dec) str() string {
	n := d.count(1)
	if d.bad {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) strs() []string {
	n := d.count(4)
	if d.bad || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *dec) ints() []int {
	n := d.count(8)
	if d.bad || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		v := d.i64()
		if v < math.MinInt32 || v > math.MaxInt32 {
			d.fail()
			return nil
		}
		out[i] = int(v)
	}
	return out
}

func (d *dec) i64s() []int64 {
	n := d.count(8)
	if d.bad || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.i64()
	}
	return out
}

func (d *dec) answer() order.Answer {
	n := d.count(8)
	if d.bad || n == 0 {
		return nil
	}
	out := make(order.Answer, n)
	for i := range out {
		out[i] = values.Value(d.i64())
	}
	return out
}
