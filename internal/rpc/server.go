package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/metrics"
	"rankedaccess/internal/order"
	"rankedaccess/internal/trace"
)

// Backend is what a shard node implements to answer the typed calls
// (see internal/cluster.Node). Every method may be called from many
// connections concurrently.
type Backend interface {
	Prepare(ctx context.Context, spec Spec) (*PrepareInfo, error)
	Count(ctx context.Context, spec CountSpec) (int64, error)
	Rank(ctx context.Context, spec Spec, version uint64, a order.Answer) (ranks []int64, exact bool, err error)
	Access(ctx context.Context, spec Spec, version uint64, shard int, k int64) (order.Answer, error)
	Range(ctx context.Context, spec Spec, version uint64, shard int, k0, k1 int64) ([]order.Answer, error)
	Stats(ctx context.Context) (*PeerStats, error)
	Health(ctx context.Context) (*HealthInfo, error)
}

// serverIdleTimeout reaps connections with no request for this long,
// so half-dead peers cannot pin goroutines forever.
const serverIdleTimeout = 5 * time.Minute

// handshakeTimeout bounds the connect preamble in both directions.
const handshakeTimeout = 10 * time.Second

// Server accepts framed-protocol connections and dispatches their
// requests to a Backend, one request at a time per connection.
type Server struct {
	b Backend

	mu     sync.Mutex
	lis    []net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	im       sync.Mutex
	requests map[Kind]*metrics.Counter
	inflight *metrics.Gauge
	duration *metrics.Histogram

	tracer atomic.Pointer[trace.Tracer]
}

// NewServer returns a server dispatching to b.
func NewServer(b Backend) *Server {
	return &Server{b: b, conns: make(map[net.Conn]struct{})}
}

// SetTracer makes every dispatched request run under a server span
// that continues the trace carried in the v2 wire field (or roots a
// fresh one for untraced v1 peers). nil disables.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer.Store(t) }

// Instrument registers the server-side RPC series (requests served by
// method, in-flight gauge, handling-duration histogram with
// sub-millisecond buckets) on reg; call before Serve.
func (s *Server) Instrument(reg *metrics.Registry) {
	s.im.Lock()
	defer s.im.Unlock()
	s.requests = make(map[Kind]*metrics.Counter, len(kindNames))
	for kind, name := range kindNames {
		s.requests[kind] = reg.Counter("ra_rpc_server_requests_total",
			"RPC requests served by method.", "method", name)
	}
	s.inflight = reg.Gauge("ra_rpc_server_in_flight", "RPC requests currently executing.")
	s.duration = reg.Histogram("ra_rpc_server_duration_seconds",
		"RPC request handling time (decode to encode).", rpcLatencyBounds)
}

// Serve accepts connections on l until Close (which returns nil) or an
// accept error.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("rpc: server closed")
	}
	s.lis = append(s.lis, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed && errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops the listeners, closes every live connection, and waits
// for their handlers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range lis {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	ver, err := readHandshake(conn)
	if err != nil {
		return
	}
	// Negotiate down to the client's version when it is older; refuse
	// clients older than our floor (close without replying, matching
	// the v1 server's refusal of any mismatch).
	if ver < minProtoVersion {
		return
	}
	if ver > ProtoVersion {
		ver = ProtoVersion
	}
	if err := writeHandshake(conn, ver); err != nil {
		return
	}
	for {
		conn.SetDeadline(time.Now().Add(serverIdleTimeout))
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		d := &dec{b: req}
		reqID := d.u64()
		kind := Kind(d.u8())
		deadlineMillis := d.u32()
		ctx := context.Background()
		if ver >= 2 {
			if rsc, ok := decTraceContext(d); ok {
				ctx = trace.ContextWithRemote(ctx, rsc)
			}
		}
		if d.bad {
			return
		}
		var cancel context.CancelFunc = func() {}
		if deadlineMillis > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMillis)*time.Millisecond)
		}
		resp := s.dispatch(ctx, kind, d, reqID)
		cancel()
		conn.SetDeadline(time.Now().Add(serverIdleTimeout))
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// dispatch decodes the body for the kind, runs the backend call, and
// encodes the response payload (id, kind, status, body).
func (s *Server) dispatch(ctx context.Context, kind Kind, d *dec, reqID uint64) []byte {
	s.im.Lock()
	ctr, gauge, dur := s.requests[kind], s.inflight, s.duration
	s.im.Unlock()
	if ctr != nil {
		ctr.Inc()
	}
	if gauge != nil {
		gauge.Inc()
		defer gauge.Dec()
	}
	// The server span is this node's local root: it continues the
	// coordinator's trace when the wire field carried one, and its End
	// decides whether this node stores its slice of the trace.
	var span *trace.Span
	if t := s.tracer.Load(); t != nil {
		ctx, span = t.Start(ctx, "rarc.server."+KindName(kind), trace.KindServer)
	}
	start := time.Now()

	e := &enc{b: make([]byte, 0, 256)}
	e.u64(reqID)
	e.u8(uint8(kind))
	body, err := s.run(ctx, kind, d)
	if dur != nil {
		dur.ObserveExemplar(time.Since(start).Seconds(), span.TraceIDString())
	}
	if err != nil {
		span.SetError(err)
		span.End()
		e.u8(statusFor(err))
		e.str(err.Error())
		return e.b
	}
	span.End()
	e.u8(statusOK)
	e.b = append(e.b, body...)
	return e.b
}

// run executes one decoded call and returns the encoded OK body.
func (s *Server) run(ctx context.Context, kind Kind, d *dec) ([]byte, error) {
	e := &enc{}
	switch kind {
	case KindPrepare:
		spec := decodeSpec(d)
		if err := d.err(); err != nil {
			return nil, &BadRequestError{Msg: err.Error()}
		}
		info, err := s.b.Prepare(ctx, spec)
		if err != nil {
			return nil, err
		}
		info.encode(e)
	case KindCount:
		spec := decodeCountSpec(d)
		if err := d.err(); err != nil {
			return nil, &BadRequestError{Msg: err.Error()}
		}
		n, err := s.b.Count(ctx, spec)
		if err != nil {
			return nil, err
		}
		e.i64(n)
	case KindRank:
		spec := decodeSpec(d)
		version := d.u64()
		a := d.answer()
		if err := d.err(); err != nil {
			return nil, &BadRequestError{Msg: err.Error()}
		}
		ranks, exact, err := s.b.Rank(ctx, spec, version, a)
		if err != nil {
			return nil, err
		}
		e.i64s(ranks)
		if exact {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case KindAccess:
		spec := decodeSpec(d)
		version := d.u64()
		shard := int(d.u32())
		k := d.i64()
		if err := d.err(); err != nil {
			return nil, &BadRequestError{Msg: err.Error()}
		}
		a, err := s.b.Access(ctx, spec, version, shard, k)
		if err != nil {
			return nil, err
		}
		e.answer(a)
	case KindRange:
		spec := decodeSpec(d)
		version := d.u64()
		shard := int(d.u32())
		k0, k1 := d.i64(), d.i64()
		if err := d.err(); err != nil {
			return nil, &BadRequestError{Msg: err.Error()}
		}
		rows, err := s.b.Range(ctx, spec, version, shard, k0, k1)
		if err != nil {
			return nil, err
		}
		width := 0
		if len(rows) > 0 {
			width = len(rows[0])
		}
		e.u32(uint32(width))
		e.u32(uint32(len(rows)))
		for _, row := range rows {
			for _, v := range row {
				e.i64(int64(v))
			}
		}
	case KindStats:
		if err := d.err(); err != nil {
			return nil, &BadRequestError{Msg: err.Error()}
		}
		st, err := s.b.Stats(ctx)
		if err != nil {
			return nil, err
		}
		e.u64(st.Version)
		e.i64(st.Tuples)
		e.i64(st.Builds)
	case KindHealth:
		if err := d.err(); err != nil {
			return nil, &BadRequestError{Msg: err.Error()}
		}
		h, err := s.b.Health(ctx)
		if err != nil {
			return nil, err
		}
		if h.Ready {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.strs(h.Reasons)
	default:
		return nil, &BadRequestError{Msg: fmt.Sprintf("rpc: unknown call kind %d", kind)}
	}
	return e.b, nil
}

// statusFor maps a backend error to its wire status; well-known
// sentinels get dedicated statuses so they decode back exactly.
func statusFor(err error) uint8 {
	var bad *BadRequestError
	switch {
	case errors.Is(err, access.ErrOutOfBound):
		return statusOutOfBound
	case errors.Is(err, access.ErrNotAnAnswer):
		return statusNotAnAnswer
	case errors.Is(err, ErrStaleVersion):
		return statusStale
	case errors.As(err, &bad):
		return statusBadRequest
	default:
		return statusInternal
	}
}
