package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rankedaccess/internal/metrics"
	"rankedaccess/internal/serve"
	"rankedaccess/internal/trace"
)

// TestTraceStitchesAcrossCluster is the end-to-end tracing contract:
// one client request through an HTTP coordinator over two shard nodes
// produces ONE trace — rooted at the coordinator's HTTP server span,
// with at least one rank-round span per peer, continued on every shard
// node (server + per-shard engine spans under the same trace id),
// visible in each process's /debug/traces, and linked from a /metrics
// latency exemplar on the coordinator.
func TestTraceStitchesAcrossCluster(t *testing.T) {
	const p = 4
	tc := startCluster(t, 2, p, nil)

	// Coordinator samples everything; the nodes sample nothing on
	// their own — they may only keep traces via the propagated
	// sampled flag, which is exactly what the stitch must carry.
	coordTracer := trace.New(trace.Options{Rate: 1, Buffer: 64})
	tc.coord.SetTracer(coordTracer)
	nodeTracers := make([]*trace.Tracer, len(tc.nodes))
	for i := range tc.nodes {
		nodeTracers[i] = trace.New(trace.Options{Rate: 0, Buffer: 64})
		tc.nodes[i].SetTracer(nodeTracers[i])
		tc.servers[i].SetTracer(nodeTracers[i])
	}

	api := serve.NewHandlerWith(tc.ce, serve.Config{Tracer: coordTracer})
	ts := httptest.NewServer(api)
	defer ts.Close()

	body := strings.NewReader(`{"query": "` + twoPath + `", "order": "x, y, z", "ks": [0, 17, 100]}`)
	resp, err := http.Post(ts.URL+"/v1/instance/access", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("access: %d", resp.StatusCode)
	}

	// --- coordinator side: the request's trace is the one rooted at
	// the HTTP server span (background peer health probes are traced
	// too — they root their own, separate traces). ---
	var co *trace.Trace
	for _, tr := range coordTracer.Store().Snapshot() {
		if tr.Root().Name == "http.instance_access" {
			if co != nil {
				t.Fatalf("two traces rooted at http.instance_access: %s and %s", co.ID, tr.ID)
			}
			co = tr
		}
	}
	if co == nil {
		t.Fatalf("no trace rooted at http.instance_access among %d stored", coordTracer.Store().Len())
	}
	if root := co.Root(); root.Kind != trace.KindServer {
		t.Fatalf("coordinator root span: %q kind %v", root.Name, root.Kind)
	}
	// ≥1 rank-round span per peer, parented inside this trace.
	roundsByPeer := map[string]int{}
	for _, sp := range co.Spans {
		if sp.Name != "cluster.rank_round" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "peer" {
				roundsByPeer[a.Str]++
			}
		}
	}
	for _, addr := range tc.addrs {
		if roundsByPeer[addr] == 0 {
			t.Fatalf("no cluster.rank_round span for peer %s (got %v)", addr, roundsByPeer)
		}
	}

	// --- shard-node side: same trace id on every node, with server
	// and engine spans; nodes commit after responding, so poll. ---
	for i, nt := range nodeTracers {
		var nodeTrace *trace.Trace
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if nodeTrace = nt.Store().Get(co.ID); nodeTrace != nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if nodeTrace == nil {
			t.Fatalf("node %d never stored trace %s", i, co.ID)
		}
		var hasServer, hasEngine bool
		for _, sp := range nodeTrace.Spans {
			if strings.HasPrefix(sp.Name, "rarc.server.") && sp.Kind == trace.KindServer {
				hasServer = true
			}
			if strings.HasPrefix(sp.Name, "node.") {
				hasEngine = true
			}
		}
		if !hasServer || !hasEngine {
			t.Fatalf("node %d trace lacks spans (server=%v engine=%v): %+v", i, hasServer, hasEngine, nodeTrace.Spans)
		}
	}

	// --- explorer surfaces: list + waterfall on every store. ---
	for i, st := range append([]*trace.Store{coordTracer.Store()}, nodeTracers[0].Store(), nodeTracers[1].Store()) {
		h := st.Handler()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?id="+co.ID.String(), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("store %d waterfall for %s: %d %s", i, co.ID, rec.Code, rec.Body)
		}
		var wf struct {
			Spans []json.RawMessage `json:"spans"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &wf); err != nil || len(wf.Spans) == 0 {
			t.Fatalf("store %d waterfall unusable (err=%v): %s", i, err, rec.Body)
		}
	}

	// --- exemplar closes the loop: the /metrics latency bucket names
	// a trace id that the coordinator's store actually holds. ---
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := metrics.ParseText(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	found := false
	for _, sm := range samples {
		if sm.Name != "ra_http_request_duration_seconds_bucket" || sm.Exemplar == nil {
			continue
		}
		if sm.Label("endpoint") != "instance_access" {
			continue
		}
		id, ok := trace.ParseTraceID(sm.Exemplar.TraceID())
		if !ok {
			t.Fatalf("exemplar carries malformed trace id %q", sm.Exemplar.TraceID())
		}
		if coordTracer.Store().Get(id) == nil {
			t.Fatalf("exemplar trace %s not in the coordinator store", id)
		}
		found = true
	}
	if !found {
		t.Fatal("no latency exemplar on the instance_access endpoint")
	}
}
