package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/database"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/rpc"
	"rankedaccess/internal/serve"
	"rankedaccess/internal/workload"
)

const twoPath = "Q(x, y, z) :- R(x, y), S(y, z)"

// testInstance returns THE test instance: every call produces
// identical data, which is how every node of a test cluster ends up
// holding the full dataset (the deployment model: load the same data
// to every node; ownership decides which shards each one builds).
func testInstance() *database.Instance {
	_, in := workload.TwoPath(rand.New(rand.NewSource(33)), 200, 32, 0.4)
	return in
}

// testCluster is one in-process cluster: real TCP listeners, real RPC
// servers, a real prober — only the machines are missing.
type testCluster struct {
	coord   *Coordinator
	ce      *engine.Engine // coordinator-mode engine
	engines []*engine.Engine
	nodes   []*Node
	servers []*rpc.Server
	addrs   []string
}

// startCluster boots nNodes shard nodes with explicit round-robin
// placement of p shards, plus a coordinator engine over them. wrap, if
// non-nil, wraps each node's listener (fault injection).
func startCluster(t *testing.T, nNodes, p int, wrap func(net.Listener) net.Listener) *testCluster {
	t.Helper()
	tc := &testCluster{}
	nodes := make([]NodeConfig, nNodes)
	for i := 0; i < nNodes; i++ {
		e := engine.New(testInstance(), engine.Options{})
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if wrap != nil {
			lis = wrap(lis)
		}
		node := NewNode(e)
		srv := rpc.NewServer(node)
		go func() { _ = srv.Serve(lis) }()
		t.Cleanup(func() { _ = srv.Close() })
		tc.engines = append(tc.engines, e)
		tc.nodes = append(tc.nodes, node)
		tc.servers = append(tc.servers, srv)
		tc.addrs = append(tc.addrs, lis.Addr().String())
		nodes[i] = NodeConfig{Addr: tc.addrs[i]}
	}
	for s := 0; s < p; s++ {
		nodes[s%nNodes].Shards = append(nodes[s%nNodes].Shards, s)
	}
	raw, err := json.Marshal(Config{Shards: p, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse(%s): %v", raw, err)
	}
	tc.coord = NewCoordinator(cfg, rpc.Options{})
	t.Cleanup(tc.coord.Close)
	tc.ce = engine.New(nil, engine.Options{Remote: tc.coord})
	return tc
}

func oracleSpecs() []engine.Spec {
	return []engine.Spec{
		{Query: twoPath, Order: "x, y, z"},                       // layered-lex
		{Query: twoPath, Order: "y desc, x"},                     // layered-lex, mixed dirs
		{Query: "Q(x, y) :- R(x, y)", SumBy: []string{"x", "y"}}, // sum
		{Query: twoPath, Order: "x, z, y"},                       // intractable → materialized
	}
}

// sampleKs picks boundary and interior ranks, deterministically.
func sampleKs(total int64) []int64 {
	ks := []int64{0, total - 1}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 48; i++ {
		ks = append(ks, rng.Int63n(total))
	}
	return ks
}

// TestDistributedOracle is the byte-identity oracle: a coordinator
// over {2, 4} nodes must answer every probe exactly as a single-node
// engine over the same data — same tuples, same answers, same inverses,
// same counts, same errors.
func TestDistributedOracle(t *testing.T) {
	local := engine.New(testInstance(), engine.Options{})
	for _, topo := range []struct{ nodes, p int }{{2, 5}, {4, 8}} {
		tc := startCluster(t, topo.nodes, topo.p, nil)
		for _, spec := range oracleSpecs() {
			ref, err := local.Prepare(spec)
			if err != nil {
				t.Fatalf("%+v: local prepare: %v", spec, err)
			}
			h, err := tc.ce.Prepare(spec)
			if err != nil {
				t.Fatalf("%+v: distributed prepare: %v", spec, err)
			}
			if h.Total() != ref.Total() {
				t.Fatalf("%+v: distributed total %d, local %d", spec, h.Total(), ref.Total())
			}
			if h.Plan.Mode != ref.Plan.Mode {
				t.Fatalf("%+v: distributed mode %s, local %s", spec, h.Plan.Mode, ref.Plan.Mode)
			}
			if h.Plan.Shards != topo.p || h.Plan.ShardBy == "" {
				t.Fatalf("%+v: distributed plan %+v, want %d shards", spec, h.Plan, topo.p)
			}
			for _, k := range sampleKs(ref.Total()) {
				want, err1 := ref.AppendTuple(nil, k)
				got, err2 := h.AppendTuple(nil, k)
				if err1 != nil || err2 != nil {
					t.Fatalf("%+v k=%d: local %v, distributed %v", spec, k, err1, err2)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%+v k=%d: tuple %v, want %v", spec, k, got, want)
				}
				wa, err1 := ref.Access(k)
				ga, err2 := h.Access(k)
				if err1 != nil || err2 != nil || fmt.Sprint(ga) != fmt.Sprint(wa) {
					t.Fatalf("%+v k=%d: answer %v (%v), want %v (%v)", spec, k, ga, err2, wa, err1)
				}
				wi, errW := ref.Inverted(wa)
				gi, errG := h.Inverted(ga)
				if errors.Is(errW, engine.ErrNoInverted) != errors.Is(errG, engine.ErrNoInverted) {
					t.Fatalf("%+v: inverse support diverges (local %v, distributed %v)", spec, errW, errG)
				}
				if errW == nil && (errG != nil || gi != wi) {
					t.Fatalf("%+v k=%d: inverse %d (%v), want %d", spec, k, gi, errG, wi)
				}
			}
			// Out-of-bound ranks fail with the same sentinel.
			if _, err := h.Access(ref.Total()); !errors.Is(err, access.ErrOutOfBound) {
				t.Fatalf("%+v: Access(total) = %v, want ErrOutOfBound", spec, err)
			}
			if _, err := h.Access(-1); !errors.Is(err, access.ErrOutOfBound) {
				t.Fatalf("%+v: Access(-1) = %v, want ErrOutOfBound", spec, err)
			}
			// Full range scan: the P-way network merge must flatten to
			// the identical value stream.
			_, want, err := local.AccessRange(spec, nil, 0, ref.Total())
			if err != nil {
				t.Fatal(err)
			}
			_, got, err := tc.ce.AccessRange(spec, nil, 0, ref.Total())
			if err != nil {
				t.Fatalf("%+v: distributed AccessRange: %v", spec, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%+v: range streams diverge (%d vs %d values)", spec, len(got), len(want))
			}
		}
		// Counts scatter-sum to the single-node answer.
		wantN, err := local.Count(twoPath)
		if err != nil {
			t.Fatal(err)
		}
		gotN, info, err := tc.ce.CountSharded(twoPath, 0, "")
		if err != nil || gotN != wantN {
			t.Fatalf("distributed count = %d (%v), want %d", gotN, err, wantN)
		}
		if info.Shards != topo.p {
			t.Fatalf("count info %+v, want %d shards", info, topo.p)
		}
		// Select delegates to the distributed access path.
		sspec := engine.Spec{Query: twoPath, Order: "x, y, z"}
		want, err1 := local.Select(sspec, 3)
		got, err2 := tc.ce.Select(sspec, 3)
		if err1 != nil || err2 != nil || fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("Select: %v (%v), want %v (%v)", got, err2, want, err1)
		}
		// The coordinator owns no data: mutations are refused.
		if err := tc.ce.AddRows("R", [][]int64{{1, 2}}); !errors.Is(err, engine.ErrReadOnly) {
			t.Fatalf("coordinator AddRows = %v, want ErrReadOnly", err)
		}
	}
}

// postBody POSTs JSON and returns (status, raw body).
func postBody(t *testing.T, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// TestDistributedHTTPByteIdentity pins the strongest form of the
// contract: the HTTP response BYTES from a coordinator are identical
// to a single-node sharded server's, for the one-shot endpoints and a
// full NDJSON cursor drain.
func TestDistributedHTTPByteIdentity(t *testing.T) {
	const p = 3
	tc := startCluster(t, 2, p, nil)
	dist := httptest.NewServer(serve.NewHandler(tc.ce))
	defer dist.Close()
	local := httptest.NewServer(serve.NewHandler(engine.New(testInstance(), engine.Options{})))
	defer local.Close()

	// Identical request bodies: the coordinator ignores the client's
	// shard count (the cluster config fixes P), the local server
	// honors it — posting shards=P to both makes the echoes line up.
	reqs := []struct {
		path string
		body map[string]any
	}{
		{"/v1/instance/access", map[string]any{
			"query": twoPath, "order": "x, y, z", "shards": p,
			"ks": []int64{0, 1, 17, 100, 1 << 40, -3},
		}},
		{"/v1/instance/access", map[string]any{
			"query": "Q(x, y) :- R(x, y)", "sum_by": []string{"x", "y"}, "shards": p,
			"ks": []int64{0, 5, 9},
		}},
		{"/v1/instance/range", map[string]any{
			"query": twoPath, "order": "y desc, x", "shards": p, "k0": 3, "k1": 60,
		}},
		{"/v1/instance/count", map[string]any{"query": twoPath, "shards": p}},
	}
	for _, r := range reqs {
		ds, db, _ := postBody(t, dist.URL+r.path, r.body)
		ls, lb, _ := postBody(t, local.URL+r.path, r.body)
		if ds != ls {
			t.Fatalf("%s: distributed %d, local %d (%s vs %s)", r.path, ds, ls, db, lb)
		}
		if !bytes.Equal(db, lb) {
			t.Fatalf("%s: bodies diverge:\ndistributed: %s\nlocal:       %s", r.path, db, lb)
		}
	}

	// NDJSON stream: register the same query on both servers, drain the
	// cursor in one read, diff the streams byte for byte.
	drain := func(srv *httptest.Server) []byte {
		reg := map[string]any{"name": "stream", "query": twoPath, "order": "x, y, z", "shards": p}
		if st, body, _ := postBody(t, srv.URL+"/v1/queries", reg); st != http.StatusOK && st != http.StatusCreated {
			t.Fatalf("register: %d %s", st, body)
		}
		var cr struct {
			Cursor string `json:"cursor"`
		}
		st, body, _ := postBody(t, srv.URL+"/v1/queries/stream/cursor", map[string]any{})
		if st != http.StatusOK && st != http.StatusCreated {
			t.Fatalf("cursor create: %d %s", st, body)
		}
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/cursors/"+cr.Cursor+"/next?n=1000000", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept", "application/x-ndjson")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		stream, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cursor next: %d %s", resp.StatusCode, stream)
		}
		return stream
	}
	dStream, lStream := drain(dist), drain(local)
	if len(dStream) == 0 {
		t.Fatal("empty NDJSON stream")
	}
	if !bytes.Equal(dStream, lStream) {
		t.Fatalf("NDJSON streams diverge: %d vs %d bytes", len(dStream), len(lStream))
	}
}

// TestDistributedRPCBudget pins the paper's complexity promise at the
// network layer: one Access(k) costs at most ⌈log2(n)⌉+P scatter
// ROUNDS (each round = one batched rank RPC per node), plus at most
// rounds+1 single-shard access RPCs in total. If someone replaces the
// rank-merge binary search with a gather-everything approach, this
// fails loudly.
func TestDistributedRPCBudget(t *testing.T) {
	const p = 4
	tc := startCluster(t, 2, p, nil)
	spec := engine.Spec{Query: twoPath, Order: "x, y, z"}
	h, err := tc.ce.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	total := h.Total()
	bound := int64(math.Ceil(math.Log2(float64(total)))) + p

	snap := func() (rank, acc []uint64) {
		for _, peer := range tc.coord.Table().Peers {
			st := peer.Client.Stats()
			rank = append(rank, st.Calls[rpc.KindRank])
			acc = append(acc, st.Calls[rpc.KindAccess])
		}
		return rank, acc
	}
	for _, k := range []int64{0, total / 3, total - 1} {
		rank0, acc0 := snap()
		if _, err := h.Access(k); err != nil {
			t.Fatalf("Access(%d): %v", k, err)
		}
		rank1, acc1 := snap()
		var rounds, accesses uint64
		for i := range rank0 {
			d := rank1[i] - rank0[i]
			if d > rounds {
				rounds = d
			}
			accesses += acc1[i] - acc0[i]
		}
		if rounds > uint64(bound) {
			t.Fatalf("Access(%d) took %d scatter rounds over n=%d, bound %d", k, rounds, total, bound)
		}
		if accesses > rounds+1 {
			t.Fatalf("Access(%d) issued %d access RPCs for %d rounds", k, accesses, rounds)
		}
	}
}

// TestDeadNodeDegradation kills one node of a live cluster and pins
// the failure contract: queries fail fast with ErrUnavailable (HTTP
// 503 + Retry-After), and the prober flips the coordinator's readiness.
func TestDeadNodeDegradation(t *testing.T) {
	tc := startCluster(t, 2, 2, nil)
	spec := engine.Spec{Query: twoPath, Order: "x, y, z"}
	h, err := tc.ce.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Access(0); err != nil {
		t.Fatal(err)
	}

	// Wait for readiness first so the flip below is provably caused by
	// the kill, not by the prober never having run.
	waitFor(t, "cluster ready", func() bool { return len(tc.coord.ReadyReasons()) == 0 })

	// Kill node 1: its pooled connections die with the server, so even
	// warm paths hit the retry-once-then-fail contract.
	_ = tc.servers[1].Close()

	if _, err := h.Access(0); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("Access over dead node = %v, want ErrUnavailable", err)
	}
	// A fresh spec cannot even prepare.
	if _, err := tc.ce.Prepare(engine.Spec{Query: twoPath, Order: "z, x, y"}); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("Prepare over dead node = %v, want ErrUnavailable", err)
	}

	// HTTP surface: 503 with Retry-After, and /readyz flips once the
	// prober notices.
	srv := httptest.NewServer(serve.NewHandlerWith(tc.ce, serve.Config{ReadyCheck: tc.coord.ReadyReasons}))
	defer srv.Close()
	st, _, hdr := postBody(t, srv.URL+"/v1/instance/access", map[string]any{
		"query": twoPath, "order": "x, y, z", "ks": []int64{0},
	})
	if st != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("access over dead node: status %d, Retry-After %q", st, hdr.Get("Retry-After"))
	}
	waitFor(t, "prober flips readiness", func() bool { return len(tc.coord.ReadyReasons()) > 0 })
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with a dead node = %d, want 503", resp.StatusCode)
	}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFaultInjectedBoot boots a cluster behind a dropping listener:
// nothing works, then clearing the fault restores service with no
// intervention — the client pools and prober recover on their own.
func TestFaultInjectedBoot(t *testing.T) {
	var faults []*rpc.FaultListener
	tc := startCluster(t, 2, 2, func(l net.Listener) net.Listener {
		fl := rpc.NewFaultListener(l)
		fl.SetMode(rpc.FaultDrop)
		faults = append(faults, fl)
		return fl
	})
	spec := engine.Spec{Query: twoPath, Order: "x, y, z"}
	if _, err := tc.ce.Prepare(spec); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("Prepare through dropping listeners = %v, want ErrUnavailable", err)
	}
	for _, fl := range faults {
		fl.SetMode(rpc.FaultNone)
	}
	h, err := tc.ce.Prepare(spec)
	if err != nil {
		t.Fatalf("Prepare after clearing faults: %v", err)
	}
	if _, err := h.Access(0); err != nil {
		t.Fatalf("Access after clearing faults: %v", err)
	}
	waitFor(t, "prober sees recovery", func() bool { return len(tc.coord.ReadyReasons()) == 0 })
}

// TestStaleVersionAfterNodeMutation pins the documented limitation:
// mutating a shard node under a live coordinator invalidates the
// coordinator's cached handles permanently — honest ErrStaleVersion
// (HTTP 410 Gone), never silently mixed-version answers.
func TestStaleVersionAfterNodeMutation(t *testing.T) {
	tc := startCluster(t, 2, 2, nil)
	srv := httptest.NewServer(serve.NewHandler(tc.ce))
	defer srv.Close()
	reg := map[string]any{"name": "q", "query": twoPath, "order": "x, y, z"}
	if st, body, _ := postBody(t, srv.URL+"/v1/queries", reg); st != http.StatusOK && st != http.StatusCreated {
		t.Fatalf("register: %d %s", st, body)
	}
	h, err := tc.ce.Prepare(engine.Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Access(0); err != nil {
		t.Fatal(err)
	}

	// Mutate node 0 out from under the coordinator.
	if err := tc.engines[0].AddRows("R", [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}

	if _, err := h.Access(0); !errors.Is(err, rpc.ErrStaleVersion) {
		t.Fatalf("Access after node mutation = %v, want ErrStaleVersion", err)
	}
	st, body, _ := postBody(t, srv.URL+"/v1/queries/q/access", map[string]any{"ks": []int64{0}})
	if st != http.StatusGone {
		t.Fatalf("v1 access after node mutation = %d %s, want 410", st, body)
	}
}

// TestConfigPlacement covers the config layer: explicit placement must
// partition exactly, defaults are rendezvous-stable, and malformed
// layouts are rejected with reasons.
func TestConfigPlacement(t *testing.T) {
	// Rendezvous default: deterministic, covers every shard.
	c1, err := Parse([]byte(`{"shards": 8, "nodes": [{"addr": "a:1"}, {"addr": "b:1"}, {"addr": "c:1"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse([]byte(`{"shards": 8, "nodes": [{"addr": "a:1"}, {"addr": "b:1"}, {"addr": "c:1"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	for i := range c1.Nodes {
		owned += len(c1.Nodes[i].Shards)
		if fmt.Sprint(c1.Nodes[i].Shards) != fmt.Sprint(c2.Nodes[i].Shards) {
			t.Fatalf("rendezvous placement not deterministic: %v vs %v", c1.Nodes[i].Shards, c2.Nodes[i].Shards)
		}
	}
	if owned != 8 {
		t.Fatalf("rendezvous placed %d of 8 shards", owned)
	}
	for s := 0; s < 8; s++ {
		ni := c1.Owner(s)
		found := false
		for _, o := range c1.Nodes[ni].Shards {
			found = found || o == s
		}
		if !found {
			t.Fatalf("Owner(%d) = node %d, which does not list it", s, ni)
		}
	}

	for _, bad := range []string{
		`{"shards": 0, "nodes": [{"addr": "a:1"}]}`,
		`{"shards": 2, "nodes": []}`,
		`{"shards": 2, "nodes": [{"addr": "a:1"}, {"addr": "a:1"}]}`,
		`{"shards": 2, "nodes": [{"addr": "a:1", "shards": [0]}, {"addr": "b:1"}]}`,
		`{"shards": 2, "nodes": [{"addr": "a:1", "shards": [0, 1]}, {"addr": "b:1", "shards": [1]}]}`,
		`{"shards": 3, "nodes": [{"addr": "a:1", "shards": [0, 1]}, {"addr": "b:1", "shards": [1]}]}`,
		`{"shards": 2, "nodes": [{"addr": "a:1", "shards": [0, 7]}, {"addr": "b:1", "shards": [1]}]}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Fatalf("Parse accepted %s", bad)
		}
	}
}
