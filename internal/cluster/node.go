package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/order"
	"rankedaccess/internal/rpc"
	"rankedaccess/internal/shard"
	"rankedaccess/internal/trace"
)

// maxNodeBuilds bounds the node's build cache; above it, builds for
// stale versions are evicted first, then arbitrary entries.
const maxNodeBuilds = 64

// Node serves the shard-node side of the RPC protocol over a local
// engine: it builds and caches the owned slice of each distributed
// spec and answers stateless probes against it. Every probe carries
// the full spec, so a node that lost a build (restart, eviction)
// silently reconstructs it; probes also carry the instance version the
// coordinator prepared against, and a node whose data moved on answers
// rpc.ErrStaleVersion instead of mixing epochs.
type Node struct {
	e *engine.Engine

	mu     sync.Mutex
	builds map[string]*buildEntry

	tracer atomic.Pointer[trace.Tracer]
}

// buildEntry is one cached owned-shard build, single-flighted so
// concurrent probes for a missing spec build once.
type buildEntry struct {
	once sync.Once
	nb   *engine.NodeBuild
	err  error
}

// NewNode wraps an engine as an RPC backend.
func NewNode(e *engine.Engine) *Node {
	return &Node{e: e, builds: make(map[string]*buildEntry)}
}

// SetTracer makes probes emit per-shard engine spans under the RPC
// server span carried in their contexts. nil disables.
func (n *Node) SetTracer(t *trace.Tracer) { n.tracer.Store(t) }

// span starts a node-level engine span when a tracer is attached.
func (n *Node) span(ctx context.Context, name string, attrs ...trace.Attr) (context.Context, *trace.Span) {
	t := n.tracer.Load()
	if t == nil {
		return ctx, nil
	}
	sctx, sp := t.Start(ctx, name, trace.KindInternal)
	sp.SetAttr(attrs...)
	return sctx, sp
}

var _ rpc.Backend = (*Node)(nil)

// validate pre-checks the parts of a spec whose failure is the
// caller's fault, so they surface as bad-request, not internal.
func validate(es engine.Spec, p int, shardVar string) error {
	ps, err := engine.ParseSpec(es)
	if err != nil {
		return &rpc.BadRequestError{Msg: err.Error()}
	}
	if ps.HasFDs {
		return &rpc.BadRequestError{Msg: "distributed serving does not support FD specs"}
	}
	if _, err := shard.Choose(ps.Q, shardVar, p); err != nil {
		return &rpc.BadRequestError{Msg: err.Error()}
	}
	return nil
}

// getBuild returns the cached build for the spec, building it if the
// node has never seen it (or evicted it) — the stateless-probe
// guarantee. A cached build for an older instance version is replaced.
func (n *Node) getBuild(ctx context.Context, spec rpc.Spec) (*engine.NodeBuild, error) {
	es := engine.Spec{Query: spec.Query, Order: spec.Order, SumBy: spec.SumBy, FDs: spec.FDs}
	key := spec.Key()
	cur := n.e.Version()

	n.mu.Lock()
	ent, ok := n.builds[key]
	if ok && ent.nb != nil && ent.nb.Version != cur {
		ok = false // stale build: rebuild against the current epoch
	}
	if !ok {
		ent = &buildEntry{}
		n.builds[key] = ent
		n.evictLocked(key, cur)
	}
	n.mu.Unlock()

	ent.once.Do(func() {
		if err := validate(es, spec.P, spec.ShardVar); err != nil {
			ent.err = err
			return
		}
		ent.nb, ent.err = n.e.BuildOwned(ctx, es, spec.P, spec.ShardVar, spec.Owned)
	})
	if ent.err != nil {
		// Failed entries are not cached: the next probe retries.
		n.mu.Lock()
		if n.builds[key] == ent {
			delete(n.builds, key)
		}
		n.mu.Unlock()
		return nil, ent.err
	}
	return ent.nb, nil
}

// evictLocked keeps the build cache bounded. Called with n.mu held,
// keep names the entry that must survive.
func (n *Node) evictLocked(keep string, cur uint64) {
	if len(n.builds) <= maxNodeBuilds {
		return
	}
	for k, ent := range n.builds {
		if k != keep && ent.nb != nil && ent.nb.Version != cur {
			delete(n.builds, k)
			if len(n.builds) <= maxNodeBuilds {
				return
			}
		}
	}
	for k := range n.builds {
		if k != keep {
			delete(n.builds, k)
			if len(n.builds) <= maxNodeBuilds {
				return
			}
		}
	}
}

// getVersioned is getBuild plus the version check every probe makes.
func (n *Node) getVersioned(ctx context.Context, spec rpc.Spec, version uint64) (*engine.NodeBuild, error) {
	nb, err := n.getBuild(ctx, spec)
	if err != nil {
		return nil, err
	}
	if nb.Version != version {
		return nil, rpc.ErrStaleVersion
	}
	return nb, nil
}

// Prepare builds (or reuses) the owned shards and reports the build's
// identity and per-shard totals.
func (n *Node) Prepare(ctx context.Context, spec rpc.Spec) (*rpc.PrepareInfo, error) {
	nb, err := n.getBuild(ctx, spec)
	if err != nil {
		return nil, err
	}
	info := &rpc.PrepareInfo{
		Version:   nb.Version,
		Mode:      string(nb.Mode),
		Completed: nb.Completed.Entries,
		Totals:    make([]int64, len(spec.Owned)),
	}
	for i, s := range spec.Owned {
		t, err := nb.Owned.Total(s)
		if err != nil {
			return nil, err
		}
		info.Totals[i] = t
	}
	return info, nil
}

// Count counts the owned shards' answers at the node's current
// version (counts are scatter-time consistent per node, not globally
// transactional — the cluster has no cross-node snapshot).
func (n *Node) Count(ctx context.Context, spec rpc.CountSpec) (int64, error) {
	if err := validate(engine.Spec{Query: spec.Query}, spec.P, spec.ShardVar); err != nil {
		return 0, err
	}
	nres, _, err := n.e.CountOwned(spec.Query, spec.P, spec.ShardVar, spec.Owned)
	return nres, err
}

// Rank prices a on every owned shard in one call — the node-local half
// of the coordinator's one-scatter-round rank pricing.
func (n *Node) Rank(ctx context.Context, spec rpc.Spec, version uint64, a order.Answer) ([]int64, bool, error) {
	ctx, sp := n.span(ctx, "node.rank", trace.Int("owned_shards", int64(len(spec.Owned))))
	defer sp.End()
	nb, err := n.getVersioned(ctx, spec, version)
	if err != nil {
		sp.SetError(err)
		return nil, false, err
	}
	ranks := make([]int64, len(spec.Owned))
	exact, err := nb.Owned.RankAll(a, spec.Owned, ranks)
	if err != nil {
		sp.SetError(err)
		return nil, false, err
	}
	return ranks, exact, nil
}

// Access returns one owned shard's k-th local answer.
func (n *Node) Access(ctx context.Context, spec rpc.Spec, version uint64, s int, k int64) (order.Answer, error) {
	ctx, sp := n.span(ctx, "node.access", trace.Int("shard", int64(s)), trace.Int("k", k))
	defer sp.End()
	nb, err := n.getVersioned(ctx, spec, version)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	a, err := nb.Owned.Access(s, k)
	if err != nil {
		sp.SetError(err)
	}
	return a, err
}

// Range returns one owned shard's local answers k0 ≤ k < k1.
func (n *Node) Range(ctx context.Context, spec rpc.Spec, version uint64, s int, k0, k1 int64) ([]order.Answer, error) {
	ctx, sp := n.span(ctx, "node.range", trace.Int("shard", int64(s)), trace.Int("k0", k0), trace.Int("k1", k1))
	defer sp.End()
	nb, err := n.getVersioned(ctx, spec, version)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	rows, err := nb.Owned.Range(s, k0, k1)
	if err != nil {
		sp.SetError(err)
	}
	return rows, err
}

// Stats reports the node's identity counters.
func (n *Node) Stats(ctx context.Context) (*rpc.PeerStats, error) {
	st := n.e.Stats()
	n.mu.Lock()
	builds := len(n.builds)
	n.mu.Unlock()
	return &rpc.PeerStats{Version: st.Version, Tuples: int64(st.Tuples), Builds: int64(builds)}, nil
}

// Health reports the node's readiness. A node that can answer the RPC
// is serving; engine-level degradation (WAL errors) is reported as a
// reason without flipping readiness — degraded reads beat no reads.
func (n *Node) Health(ctx context.Context) (*rpc.HealthInfo, error) {
	h := n.e.Health()
	info := &rpc.HealthInfo{Ready: true}
	if h.WALBroken {
		info.Reasons = append(info.Reasons, "WAL broken; writes shedding")
	}
	if h.MaxOverlayEdits >= h.DeltaHard {
		info.Reasons = append(info.Reasons, fmt.Sprintf("rebuild backlog: overlay at %d edits (hard limit %d)", h.MaxOverlayEdits, h.DeltaHard))
	}
	return info, nil
}
