package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rankedaccess/internal/access"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/metrics"
	"rankedaccess/internal/order"
	"rankedaccess/internal/rpc"
	"rankedaccess/internal/shard"
	"rankedaccess/internal/trace"
)

// Coordinator implements engine.RemoteBuilder over a cluster: it plans
// each spec locally (the paper's dichotomies are data-free), scatters
// Prepare to every node owning shards, verifies the nodes agree on the
// structure mode and realized order, and assembles a shard.Handle whose
// parts probe the nodes over RPC. The handle's rank-merge is the exact
// machinery the in-process sharded path uses, so distributed answers
// are byte-identical to single-node answers by construction.
//
// A global Access(k) costs O(log n) scatter ROUNDS: each binary-search
// iteration prices one candidate answer on every shard via one
// parallel batched-rank RPC per node (the clusterRanker), plus the one
// access that fetched the candidate. See the distributed oracle test
// for the empirical pin.
type Coordinator struct {
	table  *Table
	prober *Prober
	tracer *trace.Tracer
}

// NewCoordinator builds a coordinator over the cluster layout and
// starts its health prober.
func NewCoordinator(cfg *Config, opts rpc.Options) *Coordinator {
	t := NewTable(cfg, opts)
	return &Coordinator{table: t, prober: t.StartProber()}
}

var _ engine.RemoteBuilder = (*Coordinator)(nil)

// Table exposes the routing table (for readiness and metrics).
func (c *Coordinator) Table() *Table { return c.table }

// SetTracer makes scatter-gather emit one span per peer per rank
// round (and attaches the tracer to every peer RPC client so outbound
// calls propagate trace context on the wire). Call before BuildRemote.
func (c *Coordinator) SetTracer(t *trace.Tracer) {
	c.tracer = t
	for _, p := range c.table.Peers {
		p.Client.SetTracer(t)
	}
}

// ReadyReasons reports why the coordinator is not ready (one reason
// per unreachable node); empty means ready.
func (c *Coordinator) ReadyReasons() []string { return c.table.ReadyReasons() }

// Close stops the prober and closes every peer client.
func (c *Coordinator) Close() {
	c.prober.Close()
	c.table.Close()
}

// RegisterMetrics attaches per-peer RPC client metrics and peer-up
// gauges to the registry.
func (c *Coordinator) RegisterMetrics(reg *metrics.Registry) {
	for _, p := range c.table.Peers {
		p.Client.SetMetrics(rpc.NewClientMetrics(reg, p.Addr))
		peer := p
		reg.GaugeFunc("ra_cluster_peer_up", "Shard node health as probed by the coordinator (1 = up).",
			func() float64 {
				if peer.Up() {
					return 1
				}
				return 0
			}, "peer", peer.Addr)
	}
}

// plan is the locally computed planning state of one distributed spec.
type plan struct {
	ps   *engine.ParsedSpec
	pt   shard.Partitioning
	spec rpc.Spec // wire spec without Owned (filled per peer)
}

// planSpec plans a spec locally: parse, reject what the distributed
// path cannot serve, and fix the partitioning every node must agree
// on.
func (c *Coordinator) planSpec(s engine.Spec) (*plan, error) {
	ps, err := engine.ParseSpec(s)
	if err != nil {
		return nil, err
	}
	if ps.HasFDs {
		return nil, errors.New("cluster: distributed serving does not support FD specs")
	}
	pt, err := shard.Choose(ps.Q, s.ShardBy, c.table.Config.Shards)
	if err != nil {
		// Unshardable queries (boolean, self-joins) cannot run on a
		// cluster at all — there is no local fallback, unlike the
		// single-node sharded path.
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return &plan{
		ps: ps,
		pt: pt,
		spec: rpc.Spec{
			Query:    s.Query,
			Order:    s.Order,
			SumBy:    s.SumBy,
			P:        pt.P,
			ShardVar: pt.VarName,
		},
	}, nil
}

// activePeers returns the peers owning at least one shard (a node that
// wins no shards under rendezvous placement is never contacted).
func (c *Coordinator) activePeers() []*Peer {
	var out []*Peer
	for _, p := range c.table.Peers {
		if len(p.Shards) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// BuildRemote scatters Prepare to every shard-owning node and wires
// the responses into a handle over remote parts.
func (c *Coordinator) BuildRemote(ctx context.Context, s engine.Spec) (*engine.RemoteHandle, error) {
	pl, err := c.planSpec(s)
	if err != nil {
		return nil, err
	}
	peers := c.activePeers()

	// Scatter Prepare: every node builds its owned shards in parallel.
	infos := make([]*rpc.PrepareInfo, len(peers))
	specs := make([]rpc.Spec, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		sp := pl.spec
		sp.Owned = p.Shards
		specs[i] = sp
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			infos[i], errs[i] = p.Client.Prepare(ctx, sp)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: prepare on %s: %w", peers[i].Addr, err)
		}
	}

	// Unanimity: all nodes must have chosen the same structure mode and
	// (for layered builds) realized the same total order — otherwise
	// merging their local ranks would silently interleave different
	// orders.
	mode := engine.Mode(infos[0].Mode)
	completed := order.Lex{Entries: infos[0].Completed}
	for i := 1; i < len(infos); i++ {
		if engine.Mode(infos[i].Mode) != mode {
			return nil, fmt.Errorf("cluster: node %s built mode %s, node %s built %s",
				peers[i].Addr, infos[i].Mode, peers[0].Addr, infos[0].Mode)
		}
		if !sameEntries(infos[i].Completed, infos[0].Completed) {
			return nil, fmt.Errorf("cluster: node %s realized order %v, node %s realized %v",
				peers[i].Addr, infos[i].Completed, peers[0].Addr, infos[0].Completed)
		}
	}

	// One remote part per global shard, probing its owner with the
	// exact spec (including Owned) the owner cached its build under.
	parts := make([]shard.RemotePart, pl.pt.P)
	rankPeers := make([]rankPeer, len(peers))
	for i, p := range peers {
		rankPeers[i] = rankPeer{c: p.Client, spec: specs[i], version: infos[i].Version, owned: p.Shards}
		for _, sIdx := range p.Shards {
			parts[sIdx] = &clusterPart{c: p.Client, spec: specs[i], version: infos[i].Version, shard: sIdx}
		}
	}
	// Seed part totals from the Prepare responses so constructing the
	// handle performs no extra RPCs.
	for i, p := range peers {
		for j, sIdx := range p.Shards {
			parts[sIdx].(*clusterPart).total = infos[i].Totals[j]
		}
	}

	cmp, verdict, err := c.comparator(pl, mode, completed)
	if err != nil {
		return nil, err
	}
	sh := shard.NewRemote(pl.ps.Q, pl.pt, parts, cmp, &clusterRanker{peers: rankPeers, p: pl.pt.P, tracer: c.tracer}, completed)
	return &engine.RemoteHandle{
		Query: pl.ps.Q,
		Plan: engine.Plan{
			Mode:      mode,
			Tractable: mode != engine.ModeMaterialized,
			Verdict:   verdict,
			Shards:    pl.pt.P,
			ShardBy:   pl.pt.VarName,
		},
		Sh:       sh,
		NoInvert: pl.ps.IsSum,
	}, nil
}

// comparator returns the merge comparator for the agreed mode — the
// same comparator the in-process sharded builders install, which is
// what makes distributed answers byte-identical — plus the local
// classification verdict for the plan.
func (c *Coordinator) comparator(pl *plan, mode engine.Mode, completed order.Lex) (func(a, b order.Answer) int, classify.Verdict, error) {
	q := pl.ps.Q
	if pl.ps.IsSum {
		w := pl.ps.Sum
		v := classify.DirectAccessSum(q)
		switch mode {
		case engine.ModeSum, engine.ModeMaterialized:
			return func(a, b order.Answer) int { return access.CompareSumTotal(q, w, a, b) }, v, nil
		}
		return nil, v, fmt.Errorf("cluster: nodes built unexpected mode %q for a SUM spec", mode)
	}
	v := classify.DirectAccessLex(q, pl.ps.Lex)
	switch mode {
	case engine.ModeLayeredLex:
		return completed.Compare, v, nil
	case engine.ModeMaterialized:
		l := pl.ps.Lex
		return func(a, b order.Answer) int { return access.CompareLexTotal(q, l, a, b) }, v, nil
	}
	return nil, v, fmt.Errorf("cluster: nodes built unexpected mode %q for a lex spec", mode)
}

func sameEntries(a, b []order.LexEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CountRemote scatters the count to every shard-owning node and sums
// (shard answer sets partition Q(I)).
func (c *Coordinator) CountRemote(ctx context.Context, query, by string) (int64, engine.CountInfo, error) {
	var info engine.CountInfo
	pl, err := c.planSpec(engine.Spec{Query: query, ShardBy: by})
	if err != nil {
		return 0, info, err
	}
	info.Shards, info.ShardBy = pl.pt.P, pl.pt.VarName
	peers := c.activePeers()
	counts := make([]int64, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			counts[i], errs[i] = p.Client.Count(ctx, rpc.CountSpec{
				Query: query, P: pl.pt.P, ShardVar: pl.pt.VarName, Owned: p.Shards,
			})
		}(i, p)
	}
	wg.Wait()
	var total int64
	for i := range peers {
		if errs[i] != nil {
			return 0, info, fmt.Errorf("cluster: count on %s: %w", peers[i].Addr, errs[i])
		}
		total += counts[i]
	}
	return total, info, nil
}

// clusterPart is one global shard probed over RPC at its owner.
type clusterPart struct {
	c       *rpc.Client
	spec    rpc.Spec
	version uint64
	shard   int
	total   int64
}

var _ shard.RemotePart = (*clusterPart)(nil)

func (p *clusterPart) Total() int64 { return p.total }

func (p *clusterPart) Rank(ctx context.Context, a order.Answer) (int64, bool, error) {
	// Single-shard rank: reuse the batched call with this part's owner;
	// it ranks all the node's shards, we pick ours. This path only runs
	// when no BatchRanker is installed (not the cluster default).
	ranks, exact, err := p.c.Rank(ctx, p.spec, p.version, a)
	if err != nil {
		return 0, false, err
	}
	for i, s := range p.spec.Owned {
		if s == p.shard {
			return ranks[i], exact, nil
		}
	}
	return 0, false, fmt.Errorf("cluster: shard %d missing from rank response", p.shard)
}

func (p *clusterPart) Access(ctx context.Context, k int64) (order.Answer, error) {
	return p.c.Access(ctx, p.spec, p.version, p.shard, k)
}

func (p *clusterPart) FetchRange(ctx context.Context, k0, k1 int64) ([]order.Answer, error) {
	return p.c.Range(ctx, p.spec, p.version, p.shard, k0, k1)
}

// rankPeer is one node's batched-rank target.
type rankPeer struct {
	c       *rpc.Client
	spec    rpc.Spec
	version uint64
	owned   []int
}

// clusterRanker prices an answer on all P shards in ONE scatter round:
// one parallel RPC per node, each ranking all its owned shards
// locally. This is what keeps a global Access(k) at O(log n) rounds
// instead of O(P log n) sequential calls.
type clusterRanker struct {
	peers  []rankPeer
	p      int
	tracer *trace.Tracer
	rounds atomic.Uint64
}

var _ shard.BatchRanker = (*clusterRanker)(nil)

func (r *clusterRanker) RankAll(ctx context.Context, a order.Answer, ranks []int64) (bool, error) {
	if len(ranks) != r.p {
		return false, fmt.Errorf("cluster: %d rank slots for %d shards", len(ranks), r.p)
	}
	// One rank round = one RankAll = one locate iteration; number them
	// so a trace waterfall shows the binary search converging.
	round := int64(r.rounds.Add(1))
	exacts := make([]bool, len(r.peers))
	errs := make([]error, len(r.peers))
	var wg sync.WaitGroup
	for i := range r.peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pr := &r.peers[i]
			// The per-peer rank-round span: the unit of scatter-gather
			// attribution (which peer, which round ate the budget).
			sctx, span := r.tracer.Start(ctx, "cluster.rank_round", trace.KindInternal)
			span.SetAttr(
				trace.Str("peer", pr.c.Addr()),
				trace.Int("round_seq", round),
				trace.Int("owned_shards", int64(len(pr.owned))),
			)
			got, ex, err := pr.c.Rank(sctx, pr.spec, pr.version, a)
			if err != nil {
				span.SetError(err)
				span.End()
				errs[i] = err
				return
			}
			span.End()
			for j, s := range pr.owned {
				ranks[s] = got[j]
			}
			exacts[i] = ex
		}(i)
	}
	wg.Wait()
	exact := false
	for i := range r.peers {
		if errs[i] != nil {
			return false, fmt.Errorf("cluster: rank on %s: %w", r.peers[i].c.Addr(), errs[i])
		}
		exact = exact || exacts[i]
	}
	return exact, nil
}
