// Package cluster is the multi-node distributed serving layer: a
// static shard placement (config.go), a routing table with health
// probing (table.go), the node-side RPC backend over a local engine
// (node.go), and the coordinator that plans specs and scatter-gathers
// ranked access over the nodes (coordinator.go).
//
// The placement is static: a JSON config fixes the cluster-wide shard
// count P and which node owns which shard indices. Every answer of a
// distributed query lives in exactly one shard (internal/shard's
// partitioning invariant), so the coordinator can merge per-shard
// ranked structures into the global order without any cross-node
// answer movement. Replication and rebalancing are out of scope;
// within-request failover is retry-once at the RPC layer, after which
// the request fails fast and the health prober flips the coordinator's
// readiness.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"rankedaccess/internal/shard"
)

// NodeConfig is one node's entry in the cluster config.
type NodeConfig struct {
	// Addr is the node's RPC address (host:port).
	Addr string `json:"addr"`
	// Shards lists the shard indices in [0, Shards) the node owns.
	// Either every node lists its shards (and together they must
	// partition [0, Shards) exactly), or no node does and placement
	// defaults to rendezvous hashing over (addr, shard).
	Shards []int `json:"shards,omitempty"`
}

// Config is a parsed, validated cluster layout. After Parse, every
// node's Shards list is populated (defaults resolved) and sorted.
type Config struct {
	// Shards is the cluster-wide shard count P.
	Shards int `json:"shards"`
	// Nodes are the shard nodes.
	Nodes []NodeConfig `json:"nodes"`

	// owner maps shard index to index into Nodes.
	owner []int
}

// Owner returns the index into Nodes of the node owning the shard.
func (c *Config) Owner(s int) int { return c.owner[s] }

// Load reads and parses a cluster config file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: config %s: %w", path, err)
	}
	return c, nil
}

// Parse parses and validates a cluster config: shard count within the
// shard package's bound, at least one node, unique non-empty
// addresses, and a placement that is either fully explicit (the nodes'
// shard lists partition [0, Shards) exactly) or fully defaulted
// (rendezvous hashing, so adding a node moves only the shards it
// wins).
func Parse(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	if c.Shards < 1 || c.Shards > shard.MaxShards {
		return nil, fmt.Errorf("shard count %d outside [1, %d]", c.Shards, shard.MaxShards)
	}
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("no nodes")
	}
	seen := make(map[string]bool, len(c.Nodes))
	explicit := 0
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Addr == "" {
			return nil, fmt.Errorf("node %d has no addr", i)
		}
		if seen[n.Addr] {
			return nil, fmt.Errorf("duplicate node addr %q", n.Addr)
		}
		seen[n.Addr] = true
		if len(n.Shards) > 0 {
			explicit++
		}
	}
	switch explicit {
	case 0:
		c.placeByRendezvous()
	case len(c.Nodes):
		if err := c.checkExplicit(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("either every node must list its shards or none may")
	}
	for i := range c.Nodes {
		sort.Ints(c.Nodes[i].Shards)
	}
	return &c, nil
}

// checkExplicit validates an explicit placement: together the nodes'
// shard lists must cover every index in [0, Shards) exactly once.
func (c *Config) checkExplicit() error {
	c.owner = make([]int, c.Shards)
	for i := range c.owner {
		c.owner[i] = -1
	}
	for ni := range c.Nodes {
		for _, s := range c.Nodes[ni].Shards {
			if s < 0 || s >= c.Shards {
				return fmt.Errorf("node %s: shard %d outside [0, %d)", c.Nodes[ni].Addr, s, c.Shards)
			}
			if c.owner[s] >= 0 {
				return fmt.Errorf("shard %d owned by both %s and %s", s, c.Nodes[c.owner[s]].Addr, c.Nodes[ni].Addr)
			}
			c.owner[s] = ni
		}
	}
	for s, ni := range c.owner {
		if ni < 0 {
			return fmt.Errorf("shard %d owned by no node", s)
		}
	}
	return nil
}

// placeByRendezvous assigns every shard to the node with the highest
// hash of (addr, shard) — the standard rendezvous (highest-random-
// weight) placement, chosen because it is deterministic from the
// config alone and minimizes movement when the node set changes.
func (c *Config) placeByRendezvous() {
	c.owner = make([]int, c.Shards)
	for s := 0; s < c.Shards; s++ {
		best, bestScore := 0, uint64(0)
		for ni := range c.Nodes {
			score := rendezvousScore(c.Nodes[ni].Addr, s)
			if ni == 0 || score > bestScore {
				best, bestScore = ni, score
			}
		}
		c.owner[s] = best
		c.Nodes[best].Shards = append(c.Nodes[best].Shards, s)
	}
}

func rendezvousScore(addr string, s int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	h.Write([]byte{0, byte(s), byte(s >> 8), byte(s >> 16), byte(s >> 24)})
	return h.Sum64()
}
