package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rankedaccess/internal/rpc"
)

// Peer is one shard node as seen from the coordinator: its RPC client,
// the shards it owns, and its probed health.
type Peer struct {
	// Addr is the node's RPC address.
	Addr string
	// Shards are the shard indices the node owns (sorted).
	Shards []int
	// Client is the pooled RPC client for the node.
	Client *rpc.Client

	mu     sync.Mutex
	up     bool
	reason string
}

// Up reports the peer's last probed health. Peers start down and flip
// up on their first successful probe, so readiness is earned, never
// assumed.
func (p *Peer) Up() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up
}

func (p *Peer) setHealth(up bool, reason string) {
	p.mu.Lock()
	p.up, p.reason = up, reason
	p.mu.Unlock()
}

// Table is the coordinator's routing table: one peer per configured
// node, plus the shard→peer mapping.
type Table struct {
	// Config is the validated cluster layout the table was built from.
	Config *Config
	// Peers are the nodes, aligned with Config.Nodes.
	Peers []*Peer
}

// NewTable builds the routing table and its RPC clients (lazily
// dialed — constructing the table performs no I/O).
func NewTable(cfg *Config, opts rpc.Options) *Table {
	t := &Table{Config: cfg, Peers: make([]*Peer, len(cfg.Nodes))}
	for i, n := range cfg.Nodes {
		t.Peers[i] = &Peer{
			Addr:   n.Addr,
			Shards: n.Shards,
			Client: rpc.NewClient(n.Addr, opts),
		}
	}
	return t
}

// Owner returns the peer owning the given shard.
func (t *Table) Owner(s int) *Peer { return t.Peers[t.Config.Owner(s)] }

// ReadyReasons returns one reason per down peer (empty when the whole
// cluster is reachable) — the coordinator's readiness contribution.
func (t *Table) ReadyReasons() []string {
	var out []string
	for _, p := range t.Peers {
		p.mu.Lock()
		if !p.up {
			r := p.reason
			if r == "" {
				r = "not yet probed"
			}
			out = append(out, fmt.Sprintf("shard node %s: %s", p.Addr, r))
		}
		p.mu.Unlock()
	}
	return out
}

// Close closes every peer's client (and their pooled connections).
func (t *Table) Close() {
	for _, p := range t.Peers {
		p.Client.Close()
	}
}

// Prober periodically health-checks every peer and maintains the
// peers' up/down state. Probing is per-peer with capped exponential
// backoff: a healthy peer is re-checked at the steady interval, an
// unhealthy one is retried quickly at first and then at the cap, so a
// restarted node is noticed in seconds without hammering a dead one.
type Prober struct {
	t      *Table
	stop   chan struct{}
	wg     sync.WaitGroup
	steady time.Duration
	min    time.Duration
	max    time.Duration
}

// StartProber begins probing all peers immediately. Close stops it.
func (t *Table) StartProber() *Prober {
	p := &Prober{
		t:      t,
		stop:   make(chan struct{}),
		steady: 2 * time.Second,
		min:    250 * time.Millisecond,
		max:    5 * time.Second,
	}
	for _, peer := range t.Peers {
		p.wg.Add(1)
		go p.run(peer)
	}
	return p
}

func (p *Prober) run(peer *Peer) {
	defer p.wg.Done()
	backoff := p.min
	timer := time.NewTimer(0) // first probe fires immediately
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-timer.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		h, err := peer.Client.Health(ctx)
		cancel()
		switch {
		case err != nil:
			peer.setHealth(false, fmt.Sprintf("health probe failed: %v", err))
			backoff = min(backoff*2, p.max)
			timer.Reset(backoff)
		case !h.Ready:
			peer.setHealth(false, "node not ready: "+joinReasons(h.Reasons))
			backoff = min(backoff*2, p.max)
			timer.Reset(backoff)
		default:
			peer.setHealth(true, "")
			backoff = p.min
			timer.Reset(p.steady)
		}
	}
}

func joinReasons(rs []string) string {
	if len(rs) == 0 {
		return "unspecified"
	}
	out := rs[0]
	for _, r := range rs[1:] {
		out += "; " + r
	}
	return out
}

// Close stops the prober and waits for in-flight probes to finish.
func (p *Prober) Close() {
	close(p.stop)
	p.wg.Wait()
}
