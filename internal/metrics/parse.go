// parse.go is the inverse of WritePrometheus: a strict parser for the
// Prometheus text exposition format, used by cmd/dash to consume a
// live /metrics endpoint and by tests to verify every emitted line is
// well formed (names, labels, values, histogram bucket monotonicity).
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the metric name (for histograms, the _bucket/_sum/_count
	// suffixed series name, exactly as emitted).
	Name string
	// Labels holds the label set; nil when the line carried none.
	Labels map[string]string
	// Value is the sample value (+Inf/-Inf/NaN parse like Prometheus).
	Value float64
	// Exemplar is the OpenMetrics exemplar attached to the line, nil
	// when the line carried none.
	Exemplar *Exemplar
}

// Exemplar is a parsed OpenMetrics exemplar: `# {labels} value [ts]`
// appended to a bucket line, linking it to one concrete observation
// (for this repo, always a trace_id label).
type Exemplar struct {
	// Labels holds the exemplar label set (trace_id for our emitter).
	Labels map[string]string
	// Value is the exemplar's observed value.
	Value float64
	// Ts is the exemplar timestamp in unix seconds; 0 when omitted.
	Ts float64
}

// TraceID returns the trace_id exemplar label ("" when absent).
func (e *Exemplar) TraceID() string {
	if e == nil {
		return ""
	}
	return e.Labels["trace_id"]
}

// Label returns one label's value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Key renders the sample's identity (name plus sorted labels) for
// map-keyed lookups in consumers.
func (s Sample) Key() string {
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range sortedKeys(s.Labels) {
		fmt.Fprintf(&b, "|%s=%s", k, s.Labels[k])
	}
	return b.String()
}

// ParseText parses an exposition document, returning every sample and
// an error naming the first malformed line. # HELP/# TYPE comment
// lines are validated for basic shape and skipped; blank lines are
// skipped.
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: read: %w", err)
	}
	return out, nil
}

// checkComment validates a # line is a well-formed HELP or TYPE record.
func checkComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if !validName(fields[2]) {
			return fmt.Errorf("HELP for invalid name %q", fields[2])
		}
	case "TYPE":
		if !validName(fields[2]) {
			return fmt.Errorf("TYPE for invalid name %q", fields[2])
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE without a kind: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q", fields[3])
		}
	default:
		return fmt.Errorf("unknown comment record %q", fields[1])
	}
	return nil
}

// parseSample parses one `name[{labels}] value` line.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	val, exPart, hasEx := strings.Cut(rest, " # ")
	if val == "" || strings.ContainsAny(val, " \t") {
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := parseValue(val)
	if err != nil {
		return s, err
	}
	s.Value = v
	if hasEx {
		ex, err := parseExemplar(exPart)
		if err != nil {
			return s, fmt.Errorf("exemplar in %q: %w", line, err)
		}
		s.Exemplar = ex
	}
	return s, nil
}

// parseExemplar parses the OpenMetrics exemplar tail after "# ":
// `{k="v",...} value [unix-seconds]`.
func parseExemplar(part string) (*Exemplar, error) {
	if !strings.HasPrefix(part, "{") {
		return nil, fmt.Errorf("exemplar without label set: %q", part)
	}
	end, labels, err := parseLabels(part)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(part[end:])
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("exemplar needs `value [timestamp]`, got %q", part[end:])
	}
	ex := &Exemplar{Labels: labels}
	if ex.Value, err = parseValue(fields[0]); err != nil {
		return nil, err
	}
	if len(fields) == 2 {
		ts, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
		ex.Ts = ts
	}
	return ex, nil
}

// parseLabels parses `{k="v",...}` returning the index just past the
// closing brace.
func parseLabels(rest string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		if i >= len(rest) {
			return 0, nil, fmt.Errorf("unterminated label set")
		}
		if rest[i] == '}' {
			return i + 1, labels, nil
		}
		j := i
		for j < len(rest) && rest[j] != '=' {
			j++
		}
		name := rest[i:j]
		if !validLabelName(name) && name != "le" {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		if j+1 >= len(rest) || rest[j+1] != '"' {
			return 0, nil, fmt.Errorf("label %q without quoted value", name)
		}
		val, next, err := parseQuoted(rest, j+1)
		if err != nil {
			return 0, nil, err
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val
		i = next
		if i < len(rest) && rest[i] == ',' {
			i++
		}
	}
}

// parseQuoted parses a double-quoted, backslash-escaped label value
// starting at the opening quote, returning the value and the index
// just past the closing quote.
func parseQuoted(s string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c in label value", s[i+1])
			}
			i += 2
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// parseValue parses a sample value, accepting the exposition format's
// special floats.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}
