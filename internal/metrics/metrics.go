// Package metrics is a dependency-free metrics core for the serving
// tier: atomic counters, gauges, and fixed-bucket histograms collected
// in a Registry and rendered in the Prometheus text exposition format
// (version 0.0.4) for a scrape endpoint.
//
// The design constraints, in order:
//
//   - The hot path is Observe/Inc/Add on pre-registered metrics: pure
//     atomic operations, zero allocations, no locks. Registration (the
//     only locking, validating, allocating step) happens once, at mux
//     construction time, never per request.
//   - Label sets are fixed per series at registration, so cardinality
//     is bounded by construction — there is deliberately no
//     "WithLabelValues" that can mint series at request time.
//   - Engine-owned counters that already exist elsewhere are exported
//     by sampling functions (CounterFunc/GaugeFunc) evaluated at scrape
//     time, instead of being mirrored into duplicate state.
//
// Rendering groups series of the same name into one family with a
// single # HELP/# TYPE header, as the exposition format requires, in
// first-registration order.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bounds in seconds:
// 100µs to 10s, roughly logarithmic. The serving tier's probes are
// O(log n) index lookups, so the floor sits well below a millisecond;
// the ceiling covers cold preprocessing builds.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable up/down value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Observe is lock-free and
// allocation-free: one atomic add on the bucket plus a CAS loop on the
// float sum. Bucket bounds are upper bounds in ascending order; an
// implicit +Inf bucket catches the tail.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64   // math.Float64bits of the running sum

	// exemplars holds the last exemplar seen per bucket (len(bounds)+1,
	// +Inf last), published with one atomic pointer store and rendered
	// in OpenMetrics exemplar syntax so a histogram bucket links back
	// to a concrete stored trace.
	exemplars []atomic.Pointer[bucketExemplar]
}

// bucketExemplar is one stored per-bucket exemplar.
type bucketExemplar struct {
	traceID string
	value   float64
	unixMS  int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.observe(v)
}

// observe records one value and returns the bucket index it landed in.
func (h *Histogram) observe(v float64) int {
	i := 0
	// Linear scan: bucket counts are small (~16) and the loop is
	// branch-predictable; a binary search buys nothing at this size.
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return i
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty,
// replaces the landing bucket's exemplar with (traceID, v, now). The
// empty-traceID path is exactly Observe — untraced requests pay no
// exemplar cost.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := h.observe(v)
	if traceID != "" {
		h.exemplars[i].Store(&bucketExemplar{traceID: traceID, value: v, unixMS: time.Now().UnixMilli()})
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// LastExemplarTrace returns the trace id of the exemplar stored for
// the bucket that v falls into ("" when none) — the scrape-free join
// tests and tooling use to follow a latency back to its trace.
func (h *Histogram) LastExemplarTrace(v float64) string {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if ex := h.exemplars[i].Load(); ex != nil {
		return ex.traceID
	}
	return ""
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// counts by linear interpolation inside the bucket that holds the
// target rank — the same estimate Prometheus's histogram_quantile
// computes. It returns the highest finite bound when the rank lands in
// the +Inf bucket, and 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if c == 0 {
				return b
			}
			return lo + (b-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// metric kinds, as rendered in # TYPE lines.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one rendered time series (or histogram series group).
type series struct {
	labels string // pre-rendered `{k="v",...}` or ""

	c  *Counter
	g  *Gauge
	fn func() float64
	h  *Histogram

	// Pre-rendered histogram bucket label suffixes, one per bound plus
	// +Inf, so a scrape does no float formatting for le labels.
	bucketLabels []string
}

// family is every series sharing one metric name.
type family struct {
	name, help, kind string
	series           []*series
	seen             map[string]bool // label-set dedup
}

// Registry collects metrics for one exposition endpoint.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or panics on misuse — registration is programmer
// territory) a counter series. Labels are alternating key, value pairs
// fixed for the series' lifetime.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{c: c}, labels)
	return c
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{g: g}, labels)
	return g
}

// CounterFunc registers a counter whose value is sampled by fn at
// scrape time — for exporting counters owned elsewhere (engine stats)
// without mirroring them.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindCounter, &series{fn: fn}, labels)
}

// GaugeFunc registers a gauge sampled by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGauge, &series{fn: fn}, labels)
}

// Histogram registers a histogram series with the given upper bounds
// (ascending; nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[bucketExemplar], len(bounds)+1),
	}
	s := &series{h: h}
	// Pre-render the per-bucket label suffixes: the fixed labels plus
	// le="bound", and le="+Inf" last.
	for _, b := range bounds {
		s.bucketLabels = append(s.bucketLabels, appendLabelSet(labels, "le", formatFloat(b)))
	}
	s.bucketLabels = append(s.bucketLabels, appendLabelSet(labels, "le", "+Inf"))
	r.register(name, help, kindHistogram, s, labels)
	return h
}

// register validates and files one series under its family.
func (r *Registry) register(name, help, kind string, s *series, labels []string) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label list %q", name, labels))
	}
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) || labels[i] == "le" {
			panic(fmt.Sprintf("metrics: %s: invalid label name %q", name, labels[i]))
		}
	}
	s.labels = renderLabelSet(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, seen: make(map[string]bool)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, kind))
	}
	if f.seen[s.labels] {
		panic(fmt.Sprintf("metrics: duplicate series %s%s", name, s.labels))
	}
	f.seen[s.labels] = true
	f.series = append(f.series, s)
}

// WritePrometheus renders every family in the text exposition format.
// Scrapes race concurrent Observes benignly: each atomic is read once,
// so a histogram's sum and counts may straddle an observation — the
// next scrape converges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := make([]byte, 0, 4096)
	for _, name := range r.order {
		f := r.families[name]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(f.help)...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind...)
		buf = append(buf, '\n')
		for _, s := range f.series {
			buf = s.render(buf, f.name)
		}
	}
	_, err := w.Write(buf)
	return err
}

// render appends one series' sample lines.
func (s *series) render(buf []byte, name string) []byte {
	switch {
	case s.h != nil:
		var cum uint64
		for i := range s.h.counts {
			cum += s.h.counts[i].Load()
			buf = append(buf, name...)
			buf = append(buf, "_bucket"...)
			buf = append(buf, s.bucketLabels[i]...)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, cum, 10)
			// OpenMetrics exemplar suffix: # {trace_id="…"} value ts.
			// Prometheus's text parser (0.0.4) ignores everything after
			// #; OpenMetrics scrapers and our own ParseText read it.
			if ex := s.h.exemplars[i].Load(); ex != nil {
				buf = append(buf, " # {trace_id=\""...)
				buf = append(buf, ex.traceID...)
				buf = append(buf, "\"} "...)
				buf = append(buf, formatFloat(ex.value)...)
				buf = append(buf, ' ')
				buf = strconv.AppendFloat(buf, float64(ex.unixMS)/1000, 'f', 3, 64)
			}
			buf = append(buf, '\n')
		}
		buf = append(buf, name...)
		buf = append(buf, "_sum"...)
		buf = append(buf, s.labels...)
		buf = append(buf, ' ')
		buf = append(buf, formatFloat(s.h.Sum())...)
		buf = append(buf, '\n')
		buf = append(buf, name...)
		buf = append(buf, "_count"...)
		buf = append(buf, s.labels...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, cum, 10)
		return append(buf, '\n')
	case s.c != nil:
		buf = append(buf, name...)
		buf = append(buf, s.labels...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, s.c.Value(), 10)
		return append(buf, '\n')
	case s.g != nil:
		buf = append(buf, name...)
		buf = append(buf, s.labels...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, s.g.Value(), 10)
		return append(buf, '\n')
	default:
		buf = append(buf, name...)
		buf = append(buf, s.labels...)
		buf = append(buf, ' ')
		buf = append(buf, formatFloat(s.fn())...)
		return append(buf, '\n')
	}
}

// renderLabelSet renders alternating pairs as `{k="v",...}`; empty for
// no labels.
func renderLabelSet(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return appendLabelSet(labels[:len(labels)-2], labels[len(labels)-2], labels[len(labels)-1])
}

// appendLabelSet renders fixed pairs plus one extra pair (the
// histogram le label, or the final pair of a plain set).
func appendLabelSet(pairs []string, key, val string) string {
	b := make([]byte, 0, 32)
	b = append(b, '{')
	for i := 0; i < len(pairs); i += 2 {
		b = append(b, pairs[i]...)
		b = append(b, '=', '"')
		b = appendEscaped(b, pairs[i+1])
		b = append(b, '"', ',')
	}
	b = append(b, key...)
	b = append(b, '=', '"')
	b = appendEscaped(b, val)
	b = append(b, '"', '}')
	return string(b)
}

// appendEscaped escapes a label value per the exposition format.
func appendEscaped(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, v[i])
		}
	}
	return b
}

// escapeHelp escapes a help string (backslash and newline only).
func escapeHelp(h string) string {
	out := make([]byte, 0, len(h))
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, h[i])
		}
	}
	return string(out)
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// validName reports whether s is a legal metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Names returns the registered family names in registration order
// (tests and tooling).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	return out
}

// sortedKeys is a tiny helper for deterministic map iteration in the
// parser's consumers.
func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
