package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_requests_total", "requests")
	g := r.Gauge("t_in_flight", "in flight")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Dec()
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}
}

func TestRenderAndParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_reqs_total", "requests", "endpoint", "access", "code", "2xx")
	c.Add(12)
	r.Counter("t_reqs_total", "requests", "endpoint", "range", "code", "4xx").Add(3)
	g := r.Gauge("t_depth", "queue depth")
	g.Set(-2)
	r.GaugeFunc("t_version", "instance version", func() float64 { return 42 })
	r.CounterFunc("t_hits_total", "hits", func() float64 { return 9 })
	h := r.Histogram("t_latency_seconds", "latency", []float64{0.001, 0.01, 0.1}, "endpoint", "access")
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // +Inf bucket
	// A label value with every escapable character.
	r.Counter("t_esc_total", "escape check", "who", "a\\b\"c\nd").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse of own rendering failed: %v\n%s", err, text)
	}

	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if v := byKey["t_reqs_total|code=2xx|endpoint=access"]; v != 12 {
		t.Fatalf("labeled counter = %v, want 12", v)
	}
	if v := byKey["t_depth"]; v != -2 {
		t.Fatalf("gauge = %v, want -2", v)
	}
	if v := byKey["t_version"]; v != 42 {
		t.Fatalf("gauge func = %v, want 42", v)
	}
	if v := byKey["t_latency_seconds_count|endpoint=access"]; v != 3 {
		t.Fatalf("histogram count = %v, want 3", v)
	}
	if v := byKey["t_latency_seconds_sum|endpoint=access"]; math.Abs(v-5.0505) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 5.0505", v)
	}
	if v := byKey["t_esc_total|who=a\\b\"c\nd"]; v != 1 {
		t.Fatalf("escaped label round trip = %v, want 1", v)
	}
}

func TestHistogramBucketsCumulativeAndMonotonic(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0001, 0.002, 0.02, 0.2, 0.0002} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var buckets []float64
	var count float64
	sawInf := false
	for _, s := range samples {
		switch s.Name {
		case "t_lat_seconds_bucket":
			buckets = append(buckets, s.Value)
			if s.Label("le") == "+Inf" {
				sawInf = true
			}
		case "t_lat_seconds_count":
			count = s.Value
		}
	}
	if len(buckets) != 4 || !sawInf {
		t.Fatalf("want 4 buckets ending at +Inf, got %v (inf=%v)", buckets, sawInf)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("buckets not monotone: %v", buckets)
		}
	}
	if got := buckets[len(buckets)-1]; got != count {
		t.Fatalf("+Inf bucket %v != count %v", got, count)
	}
	if want := []float64{2, 3, 4, 5}; buckets[0] != want[0] || buckets[3] != want[3] {
		t.Fatalf("cumulative buckets = %v, want %v", buckets, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_q_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	// 100 observations spread evenly through (0.001, 0.01].
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.001 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want inside (0.001, 0.01]", p50)
	}
	if got := h.Quantile(0); got < 0 || got > 0.01 {
		t.Fatalf("q0 = %v", got)
	}
	r2 := NewRegistry()
	if got := r2.Histogram("t_q2_seconds", "latency", nil).Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_alloc_seconds", "latency", nil)
	c := r.Counter("t_alloc_total", "count")
	g := r.Gauge("t_alloc_gauge", "gauge")
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(0.004)
		h.ObserveDuration(3 * time.Millisecond)
		c.Inc()
		g.Add(1)
	}); n != 0 {
		t.Fatalf("hot-path metric ops allocate: %v allocs/op", n)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_conc_seconds", "latency", nil)
	c := r.Counter("t_conc_total", "count")
	const workers, perWorker = 8, 2000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	// Scrape concurrently with observations; every intermediate
	// rendering must stay parseable and bucket-monotone.
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			if _, err := ParseText(&buf); err != nil {
				t.Errorf("mid-flight scrape unparseable: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(seed * float64(i) * 1e-6)
				c.Inc()
			}
		}(float64(w + 1))
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistrationValidation(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("bad name", func() { r.Counter("9bad", "x") })
	mustPanic("odd labels", func() { r.Counter("t_ok_total", "x", "k") })
	mustPanic("bad label", func() { r.Counter("t_ok2_total", "x", "0k", "v") })
	mustPanic("reserved le", func() { r.Histogram("t_h_seconds", "x", nil, "le", "v") })
	r.Counter("t_dup_total", "x", "a", "1")
	mustPanic("dup series", func() { r.Counter("t_dup_total", "x", "a", "1") })
	mustPanic("kind conflict", func() { r.Gauge("t_dup_total", "x", "a", "2") })
	mustPanic("descending buckets", func() { r.Histogram("t_h2_seconds", "x", []float64{1, 0.5}) })
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"9bad 1",
		"name{k=v} 1",
		`name{k="v} 1`,
		`name{k="v"} x`,
		`name{k="v"}`,
		"# TYPE name nonsense",
		`name{k="a",k="b"} 1`,
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q): no error", bad)
		}
	}
	good := "t_x_total{k=\"v\"} 1\nt_inf +Inf\nt_neg -Inf\nt_nan NaN\n"
	samples, err := ParseText(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 || !math.IsInf(samples[1].Value, 1) || !math.IsNaN(samples[3].Value) {
		t.Fatalf("samples = %+v", samples)
	}
}
