package metrics

import (
	"strings"
	"testing"
)

// TestExemplarRoundTrip drives an exemplar through ObserveExemplar →
// WritePrometheus → ParseText and checks it lands on the right bucket
// line with the right trace id, value, and a sane timestamp.
func TestExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "request latency.", []float64{0.01, 0.1, 1}, "endpoint", "access")
	h.Observe(0.005) // untraced: no exemplar on the 0.01 bucket yet
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveExemplar(0.5, "") // empty trace id: plain observe

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText rejected our own output: %v\n%s", err, text)
	}
	var withEx, withoutEx int
	for _, s := range samples {
		if s.Exemplar == nil {
			withoutEx++
			continue
		}
		withEx++
		if s.Name != "req_seconds_bucket" || s.Label("le") != "0.1" {
			t.Errorf("exemplar on wrong line: %s le=%s", s.Name, s.Label("le"))
		}
		if s.Label("endpoint") != "access" {
			t.Errorf("fixed labels lost: %+v", s.Labels)
		}
		if got := s.Exemplar.TraceID(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("exemplar trace id %q", got)
		}
		if s.Exemplar.Value != 0.05 {
			t.Errorf("exemplar value %v, want 0.05", s.Exemplar.Value)
		}
		if s.Exemplar.Ts <= 0 {
			t.Errorf("exemplar timestamp %v, want > 0", s.Exemplar.Ts)
		}
	}
	if withEx != 1 {
		t.Fatalf("%d exemplar lines, want exactly 1\n%s", withEx, text)
	}
	if withoutEx == 0 {
		t.Fatal("no plain lines parsed")
	}
	if got := h.LastExemplarTrace(0.05); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("LastExemplarTrace = %q", got)
	}
	if got := h.LastExemplarTrace(0.005); got != "" {
		t.Errorf("untraced bucket has exemplar %q", got)
	}
}

// TestExemplarReplacement keeps only the last exemplar per bucket.
func TestExemplarReplacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "x.", []float64{1})
	h.ObserveExemplar(0.5, "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	h.ObserveExemplar(0.7, "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
	if got := h.LastExemplarTrace(0.9); got != "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb" {
		t.Fatalf("exemplar not replaced: %q", got)
	}
}

func TestParseExemplarForms(t *testing.T) {
	good := `x_bucket{le="1"} 3 # {trace_id="ab"} 0.5 1700000000.123
x_bucket{le="+Inf"} 4 # {trace_id="cd"} 2
x_count 4
`
	samples, err := ParseText(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good exemplars rejected: %v", err)
	}
	if samples[0].Exemplar.Ts != 1700000000.123 {
		t.Errorf("ts: %v", samples[0].Exemplar.Ts)
	}
	if samples[1].Exemplar.Ts != 0 || samples[1].Exemplar.Value != 2 {
		t.Errorf("optional-ts exemplar: %+v", samples[1].Exemplar)
	}
	if samples[2].Exemplar != nil {
		t.Error("plain line grew an exemplar")
	}

	bad := []string{
		`x_bucket{le="1"} 3 # 0.5`,                       // no label set
		`x_bucket{le="1"} 3 # {trace_id="ab"}`,           // no value
		`x_bucket{le="1"} 3 # {trace_id="ab"} 0.5 1 2`,   // trailing junk
		`x_bucket{le="1"} 3 # {trace_id="ab"} 0.5 what`,  // bad ts
		`x_bucket{le="1"} 3 # {trace_id="ab} 0.5`,        // unterminated label
		`x_bucket{le="1"} 3 # {trace_id="ab"} notafloat`, // bad value
	}
	for _, line := range bad {
		if _, err := ParseText(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("malformed exemplar accepted: %q", line)
		}
	}
}
