package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"
)

// e builds an edge from vertex ids.
func e(vs ...int) VSet {
	var s VSet
	for _, v := range vs {
		s |= Bit(v)
	}
	return s
}

func TestVSetBasics(t *testing.T) {
	s := e(0, 3, 5)
	if Card(s) != 3 || !Has(s, 3) || Has(s, 1) {
		t.Fatal("vset ops broken")
	}
	if !reflect.DeepEqual(Members(s), []int{0, 3, 5}) {
		t.Fatalf("Members = %v", Members(s))
	}
	if !Subset(e(0, 5), s) || Subset(e(0, 1), s) {
		t.Fatal("Subset broken")
	}
}

func TestAcyclicPath(t *testing.T) {
	// R(x0,x1), S(x1,x2), T(x2,x3): acyclic chain.
	h := New([]VSet{e(0, 1), e(1, 2), e(2, 3)})
	if !h.Acyclic() {
		t.Fatal("path query must be acyclic")
	}
	tree, ok := h.GYO()
	if !ok {
		t.Fatal("GYO must succeed")
	}
	if !tree.RunningIntersection() {
		t.Fatal("GYO tree violates running intersection")
	}
}

func TestCyclicTriangle(t *testing.T) {
	h := New([]VSet{e(0, 1), e(1, 2), e(2, 0)})
	if h.Acyclic() {
		t.Fatal("triangle must be cyclic")
	}
}

func TestTriangleWithCoveringEdgeIsAcyclic(t *testing.T) {
	h := New([]VSet{e(0, 1), e(1, 2), e(2, 0), e(0, 1, 2)})
	if !h.Acyclic() {
		t.Fatal("covered triangle is acyclic")
	}
}

func TestDisconnectedComponents(t *testing.T) {
	h := New([]VSet{e(0, 1), e(2, 3)})
	tree, ok := h.GYO()
	if !ok {
		t.Fatal("cartesian product must be acyclic")
	}
	if !tree.RunningIntersection() {
		t.Fatal("running intersection on components")
	}
	if tree.Root() == -1 {
		t.Fatal("tree must have a root")
	}
}

func TestCyclicPlusSeparateComponent(t *testing.T) {
	h := New([]VSet{e(0, 1), e(1, 2), e(2, 0), e(4, 5)})
	if h.Acyclic() {
		t.Fatal("triangle plus extra component must still be cyclic")
	}
}

func TestSConnexTwoPath(t *testing.T) {
	// Q(x,z) :- R(x,y), S(y,z): classic non-free-connex query.
	h := New([]VSet{e(0, 1), e(1, 2)})
	if h.SConnex(e(0, 2)) {
		t.Fatal("{x,z} must not be connex for the 2-path")
	}
	if !h.SConnex(e(0, 1, 2)) {
		t.Fatal("full variable set must be connex")
	}
	if !h.SConnex(e(0, 1)) {
		t.Fatal("{x,y} is an atom and must be connex")
	}
	if !h.SConnex(e(2, 1)) {
		t.Fatal("{y,z} is an atom and must be connex")
	}
	if !h.SConnex(0) {
		t.Fatal("empty set must be connex for acyclic hypergraphs")
	}
}

func TestSPathCertificate(t *testing.T) {
	h := New([]VSet{e(0, 1), e(1, 2)})
	p := h.FindSPath(e(0, 2))
	if p == nil {
		t.Fatal("expected S-path for non-connex set")
	}
	if len(p) < 3 || p[0] == p[len(p)-1] {
		t.Fatalf("malformed S-path %v", p)
	}
	if !Has(e(0, 2), p[0]) || !Has(e(0, 2), p[len(p)-1]) {
		t.Fatalf("endpoints must be in S: %v", p)
	}
	for _, z := range p[1 : len(p)-1] {
		if Has(e(0, 2), z) {
			t.Fatalf("middle vertices must avoid S: %v", p)
		}
	}
	if q := h.FindSPath(e(0, 1, 2)); q != nil {
		t.Fatalf("connex set must have no S-path, got %v", q)
	}
}

// SConnexity via GYO must agree with absence of S-paths on random
// acyclic hypergraphs (the paper's two characterizations, §2.1).
func TestSConnexAgreesWithSPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		nv := 2 + rng.Intn(5)
		ne := 1 + rng.Intn(4)
		edges := make([]VSet, ne)
		for i := range edges {
			for edges[i] == 0 {
				edges[i] = VSet(rng.Int63()) & (Bit(nv) - 1)
			}
		}
		h := New(edges)
		if !h.Acyclic() {
			continue
		}
		s := VSet(rng.Int63()) & h.Vertices()
		connex := h.SConnex(s)
		path := h.FindSPath(s)
		if connex && path != nil {
			t.Fatalf("edges=%v S=%b: connex but found S-path %v", edges, s, path)
		}
		if !connex && path == nil {
			t.Fatalf("edges=%v S=%b: not connex but no S-path found", edges, s)
		}
	}
}

// Whenever GYO succeeds, the resulting tree must satisfy the running
// intersection property and contain every original edge.
func TestGYOTreeIsJoinTree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	succeeded := 0
	for trial := 0; trial < 5000; trial++ {
		nv := 2 + rng.Intn(6)
		ne := 1 + rng.Intn(5)
		edges := make([]VSet, ne)
		for i := range edges {
			for edges[i] == 0 {
				edges[i] = VSet(rng.Int63()) & (Bit(nv) - 1)
			}
		}
		h := New(edges)
		tree, ok := h.GYO()
		if !ok {
			continue
		}
		succeeded++
		if !tree.RunningIntersection() {
			t.Fatalf("edges=%v: GYO tree violates running intersection (parents %v)", edges, tree.Parent)
		}
		roots := 0
		for _, p := range tree.Parent {
			if p == -1 {
				roots++
			}
		}
		if roots != 1 {
			t.Fatalf("edges=%v: tree has %d roots", edges, roots)
		}
	}
	if succeeded < 500 {
		t.Fatalf("too few acyclic samples (%d) for the property to be meaningful", succeeded)
	}
}

func TestMaximalEdges(t *testing.T) {
	// Example 7.2: Q(x,z,w) :- R(x,y), S(y,z), T(z,w), U(x).
	// mh = 3 (U ⊆ R); restricted to free {x,z,w}: fmh = 2.
	x, y, z, w := 0, 1, 2, 3
	h := New([]VSet{e(x, y), e(y, z), e(z, w), e(x)})
	if got := h.MH(); got != 3 {
		t.Fatalf("mh = %d, want 3", got)
	}
	free := e(x, z, w)
	if got := h.Restrict(free).MH(); got != 2 {
		t.Fatalf("fmh = %d, want 2", got)
	}
}

func TestMHDuplicateEdges(t *testing.T) {
	h := New([]VSet{e(0, 1), e(0, 1)})
	if got := h.MH(); got != 1 {
		t.Fatalf("duplicate edges must count once, mh = %d", got)
	}
}

func TestMaxIndependent(t *testing.T) {
	// 3-path R(x,y), S(y,z), T(z,u): α over all = 2 ({x,z} or {y,u} or {x,u}).
	h := New([]VSet{e(0, 1), e(1, 2), e(2, 3)})
	got := h.MaxIndependent(e(0, 1, 2, 3))
	if Card(got) != 2 {
		t.Fatalf("α = %d, want 2", Card(got))
	}
	// Example 5.3: Q(x,y,z) :- R(x,y), S(y,z), T(z,u); free {x,y,z}: α_free = 2.
	if got := h.MaxIndependent(e(0, 1, 2)); Card(got) != 2 {
		t.Fatalf("α_free = %d, want 2", Card(got))
	}
	// Cartesian product of three unary atoms: α = 3.
	h3 := New([]VSet{e(0), e(1), e(2)})
	if got := h3.MaxIndependent(e(0, 1, 2)); Card(got) != 3 {
		t.Fatalf("α = %d, want 3", Card(got))
	}
}

func TestDisruptiveTrioExample31(t *testing.T) {
	// Q(v1,v2,v3) :- R(v1,v3), S(v3,v2) with L = ⟨v1,v2,v3⟩:
	// v1,v2 non-neighbors, v3 neighbors both and comes last → trio.
	v1, v2, v3 := 0, 1, 2
	h := New([]VSet{e(v1, v3), e(v3, v2)})
	trio, found := h.FindDisruptiveTrio([]int{v1, v2, v3})
	if !found {
		t.Fatal("expected disruptive trio")
	}
	if trio.V3 != v3 {
		t.Fatalf("trio = %+v, want v3 last", trio)
	}
	// Order ⟨v1,v3,v2⟩ has no trio.
	if _, found := h.FindDisruptiveTrio([]int{v1, v3, v2}); found {
		t.Fatal("⟨v1,v3,v2⟩ must be trio-free")
	}
	// Partial order ⟨v1,v2⟩ has no trio (v3 has no position).
	if _, found := h.FindDisruptiveTrio([]int{v1, v2}); found {
		t.Fatal("partial order without v3 must be trio-free")
	}
}

func TestChordlessPath4(t *testing.T) {
	// 3-path has a chordless 4-path x-y-z-u.
	h := New([]VSet{e(0, 1), e(1, 2), e(2, 3)})
	p := h.FindChordlessPath4()
	if p == nil {
		t.Fatal("expected chordless 4-path in the 3-path query")
	}
	// 2-path has none.
	h2 := New([]VSet{e(0, 1), e(1, 2)})
	if p := h2.FindChordlessPath4(); p != nil {
		t.Fatalf("2-path must have no chordless 4-path, got %v", p)
	}
	// One covering atom: none.
	h1 := New([]VSet{e(0, 1, 2, 3)})
	if p := h1.FindChordlessPath4(); p != nil {
		t.Fatalf("single atom must have no chordless 4-path, got %v", p)
	}
}

func TestCompleteOrderBasic(t *testing.T) {
	// 2-path, prefix ⟨z,y⟩ (Example 4.2 tractable case): must complete.
	x, y, z := 0, 1, 2
	h := New([]VSet{e(x, y), e(y, z)})
	order, ok := h.CompleteOrder([]int{z, y}, e(x, y, z))
	if !ok {
		t.Fatal("⟨z,y⟩ must be completable")
	}
	if len(order) != 3 || order[0] != z || order[1] != y {
		t.Fatalf("completion must preserve prefix, got %v", order)
	}
	if _, found := h.FindDisruptiveTrio(order); found {
		t.Fatalf("completed order %v has a trio", order)
	}
}

func TestCompleteOrderRejectsTrioPrefix(t *testing.T) {
	// ⟨x,z,y⟩ on the 2-path has a trio already; not completable.
	x, y, z := 0, 1, 2
	h := New([]VSet{e(x, y), e(y, z)})
	if _, ok := h.CompleteOrder([]int{x, z, y}, e(x, y, z)); ok {
		t.Fatal("prefix with trio must not complete")
	}
}

func TestCompleteOrderNonConnexPrefixFails(t *testing.T) {
	// ⟨x,z⟩ on the 2-path: any completion must place y last, creating a
	// trio; Lemma 4.4's converse says no completion exists.
	x, y, z := 0, 1, 2
	h := New([]VSet{e(x, y), e(y, z)})
	if order, ok := h.CompleteOrder([]int{x, z}, e(x, y, z)); ok {
		t.Fatalf("⟨x,z⟩ must not be completable, got %v", order)
	}
}

// Any order returned by CompleteOrder must be trio-free; exhaustive
// cross-check on random hypergraphs against brute-force search.
func TestCompleteOrderAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var perm func(vs []int, cur []int, emit func([]int) bool) bool
	perm = func(vs, cur []int, emit func([]int) bool) bool {
		if len(vs) == 0 {
			return emit(cur)
		}
		for i := range vs {
			rest := make([]int, 0, len(vs)-1)
			rest = append(rest, vs[:i]...)
			rest = append(rest, vs[i+1:]...)
			if perm(rest, append(cur, vs[i]), emit) {
				return true
			}
		}
		return false
	}
	for trial := 0; trial < 1500; trial++ {
		nv := 2 + rng.Intn(4)
		ne := 1 + rng.Intn(4)
		edges := make([]VSet, ne)
		for i := range edges {
			for edges[i] == 0 {
				edges[i] = VSet(rng.Int63()) & (Bit(nv) - 1)
			}
		}
		h := New(edges)
		all := h.Vertices()
		vars := Members(all)
		if len(vars) == 0 {
			continue
		}
		prefix := []int{vars[rng.Intn(len(vars))]}
		got, ok := h.CompleteOrder(prefix, all)
		// Brute force: does any total order starting with prefix avoid trios?
		want := perm(Members(all&^Bit(prefix[0])), prefix, func(order []int) bool {
			_, found := h.FindDisruptiveTrio(order)
			return !found
		})
		if ok != want {
			t.Fatalf("edges=%v prefix=%v: CompleteOrder=%v bruteforce=%v", edges, prefix, ok, want)
		}
		if ok {
			if _, found := h.FindDisruptiveTrio(got); found {
				t.Fatalf("edges=%v: completion %v has a trio", edges, got)
			}
		}
	}
}
