// Package hypergraph implements the hypergraph machinery the paper's
// classifications are built on: GYO reduction, join trees with explicit
// running-intersection verification, acyclicity, S-connexity, S-path
// certificates, disruptive trios, maximal hyperedges, independent free
// variables, and lexicographic-order completion.
//
// Vertices are small integers (bit positions); vertex sets are single
// uint64 bitsets, matching cq.MaxVars.
package hypergraph

import "math/bits"

// VSet is a set of vertices as a bitset over positions 0..63.
type VSet = uint64

// Bit returns the singleton set {v}.
func Bit(v int) VSet { return 1 << uint(v) }

// Has reports whether v is in s.
func Has(s VSet, v int) bool { return s&Bit(v) != 0 }

// Card returns |s|.
func Card(s VSet) int { return bits.OnesCount64(s) }

// Subset reports whether a is a subset of b.
func Subset(a, b VSet) bool { return a&^b == 0 }

// Members returns the vertices of s in increasing order.
func Members(s VSet) []int {
	out := make([]int, 0, Card(s))
	for s != 0 {
		v := bits.TrailingZeros64(s)
		out = append(out, v)
		s &^= Bit(v)
	}
	return out
}

// UnionAll returns the union of the given sets.
func UnionAll(sets []VSet) VSet {
	var u VSet
	for _, s := range sets {
		u |= s
	}
	return u
}
