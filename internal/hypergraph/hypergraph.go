package hypergraph

// Hypergraph is a multiset of hyperedges over vertices 0..63. The i-th
// edge typically corresponds to the i-th atom of a query.
type Hypergraph struct {
	Edges []VSet
}

// New returns a hypergraph with the given edges (the slice is copied).
func New(edges []VSet) Hypergraph {
	return Hypergraph{Edges: append([]VSet(nil), edges...)}
}

// Vertices returns the set of all vertices.
func (h Hypergraph) Vertices() VSet { return UnionAll(h.Edges) }

// WithEdge returns a copy of h with one extra edge appended.
func (h Hypergraph) WithEdge(e VSet) Hypergraph {
	out := New(h.Edges)
	out.Edges = append(out.Edges, e)
	return out
}

// Restrict returns the hypergraph {e ∩ s : e ∈ h} (empty intersections
// kept, so edge indices still line up with h's).
func (h Hypergraph) Restrict(s VSet) Hypergraph {
	out := Hypergraph{Edges: make([]VSet, len(h.Edges))}
	for i, e := range h.Edges {
		out.Edges[i] = e & s
	}
	return out
}

// Neighbors returns for each vertex the set of its neighbors (vertices
// co-occurring in some edge), excluding the vertex itself.
func (h Hypergraph) Neighbors() [64]VSet {
	var nb [64]VSet
	for _, e := range h.Edges {
		for _, v := range Members(e) {
			nb[v] |= e &^ Bit(v)
		}
	}
	return nb
}

// AreNeighbors reports whether u and v share an edge (or u == v).
func (h Hypergraph) AreNeighbors(u, v int) bool {
	if u == v {
		return true
	}
	uv := Bit(u) | Bit(v)
	for _, e := range h.Edges {
		if Subset(uv, e) {
			return true
		}
	}
	return false
}

// MaximalEdges returns the indices of the ⊆-maximal distinct edge sets.
// Duplicate edge sets count once (the first index is reported), matching
// the paper's definition of mh over hyperedge *sets*.
func (h Hypergraph) MaximalEdges() []int {
	var out []int
	for i, e := range h.Edges {
		if e == 0 {
			continue
		}
		maximal := true
		for j, f := range h.Edges {
			if i == j {
				continue
			}
			if e != f && Subset(e, f) {
				maximal = false
				break
			}
			if e == f && j < i {
				maximal = false // duplicate set; keep only first
				break
			}
		}
		if maximal {
			out = append(out, i)
		}
	}
	return out
}

// MH returns mh(h): the number of maximal distinct hyperedges. An
// all-empty hypergraph has mh 0.
func (h Hypergraph) MH() int { return len(h.MaximalEdges()) }

// MaxIndependent returns a maximum independent subset of candidates: a
// largest set of vertices no two of which share an edge. Exponential in
// the candidate count in the worst case, which is fine for constant-size
// queries (this computes α_free from Definition 5.2).
func (h Hypergraph) MaxIndependent(candidates VSet) VSet {
	nb := h.Neighbors()
	var best VSet
	var rec func(rest, chosen VSet)
	rec = func(rest, chosen VSet) {
		if Card(chosen)+Card(rest) <= Card(best) {
			return
		}
		if rest == 0 {
			if Card(chosen) > Card(best) {
				best = chosen
			}
			return
		}
		v := Members(rest)[0]
		rest &^= Bit(v)
		// Branch 1: take v, removing its neighbors from consideration.
		rec(rest&^nb[v], chosen|Bit(v))
		// Branch 2: skip v.
		rec(rest, chosen)
	}
	rec(candidates, 0)
	return best
}
