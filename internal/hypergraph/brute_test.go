package hypergraph

import (
	"math/rand"
	"testing"
)

// MaxIndependent must agree with exhaustive subset enumeration.
func TestMaxIndependentBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		nv := 1 + rng.Intn(6)
		ne := 1 + rng.Intn(5)
		edges := make([]VSet, ne)
		for i := range edges {
			for edges[i] == 0 {
				edges[i] = VSet(rng.Int63()) & (Bit(nv) - 1)
			}
		}
		h := New(edges)
		candidates := VSet(rng.Int63()) & h.Vertices()
		got := Card(h.MaxIndependent(candidates))
		// Brute force over all subsets of candidates.
		best := 0
		members := Members(candidates)
		for mask := 0; mask < 1<<uint(len(members)); mask++ {
			var set VSet
			for i, v := range members {
				if mask&(1<<uint(i)) != 0 {
					set |= Bit(v)
				}
			}
			ok := true
			for _, e := range edges {
				if Card(e&set) > 1 {
					ok = false
					break
				}
			}
			if ok && Card(set) > best {
				best = Card(set)
			}
		}
		if got != best {
			t.Fatalf("edges=%v cand=%b: MaxIndependent=%d brute=%d", edges, candidates, got, best)
		}
	}
}

// MH must agree with a direct definition-based computation.
func TestMHBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 2000; trial++ {
		nv := 1 + rng.Intn(6)
		ne := 1 + rng.Intn(6)
		edges := make([]VSet, ne)
		for i := range edges {
			edges[i] = VSet(rng.Int63()) & (Bit(nv) - 1) // empty edges allowed
		}
		h := New(edges)
		got := h.MH()
		// Definition: count distinct non-empty edges not strictly
		// contained in another edge.
		distinct := map[VSet]bool{}
		for _, e := range edges {
			if e != 0 {
				distinct[e] = true
			}
		}
		want := 0
		for e := range distinct {
			maximal := true
			for f := range distinct {
				if e != f && Subset(e, f) {
					maximal = false
					break
				}
			}
			if maximal {
				want++
			}
		}
		if got != want {
			t.Fatalf("edges=%v: MH=%d brute=%d", edges, got, want)
		}
	}
}

// The disruptive-trio finder must agree with the cubic definition scan.
func TestDisruptiveTrioBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		nv := 2 + rng.Intn(5)
		ne := 1 + rng.Intn(4)
		edges := make([]VSet, ne)
		for i := range edges {
			for edges[i] == 0 {
				edges[i] = VSet(rng.Int63()) & (Bit(nv) - 1)
			}
		}
		h := New(edges)
		verts := Members(h.Vertices())
		if len(verts) < 3 {
			continue
		}
		// Random order over a random subset.
		order := append([]int(nil), verts...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		order = order[:1+rng.Intn(len(order))]
		_, found := h.FindDisruptiveTrio(order)
		// Brute force per Definition 3.2.
		want := false
		for k := 0; k < len(order); k++ {
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					if i == j {
						continue
					}
					v1, v2, v3 := order[i], order[j], order[k]
					if !h.AreNeighbors(v1, v2) && h.AreNeighbors(v1, v3) && h.AreNeighbors(v2, v3) {
						want = true
					}
				}
			}
		}
		if found != want {
			t.Fatalf("edges=%v order=%v: found=%v brute=%v", edges, order, found, want)
		}
	}
}
