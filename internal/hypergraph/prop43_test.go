package hypergraph

import "testing"

// Proposition 4.3 / Figure 6: the CQ
// Q(x, y, z) :- R1(x, y, a), R2(y, z, b), R3(b, c), R4(y, z, d)
// is both L1-connex for L1 = {x, y, z} (the free variables) and
// L2-connex for L2 = {y}, so nested connex subtrees exist — the
// structural fact behind completing partial orders.
func TestProp43Example(t *testing.T) {
	x, y, z, a, b, c, d := 0, 1, 2, 3, 4, 5, 6
	h := New([]VSet{
		e(x, y, a), e(y, z, b), e(b, c), e(y, z, d),
	})
	if !h.Acyclic() {
		t.Fatal("the Figure 6 query is acyclic")
	}
	L1 := e(x, y, z)
	L2 := e(y)
	if !h.SConnex(L1) {
		t.Fatal("must be {x,y,z}-connex")
	}
	if !h.SConnex(L2) {
		t.Fatal("must be {y}-connex")
	}
	// Nesting: both sets connex and L2 ⊆ L1; sanity-check a partial
	// order ⟨y⟩ completes to a full trio-free order starting with y.
	order, ok := h.CompleteOrder([]int{y}, L1|e(a, b, c, d))
	if !ok {
		t.Fatal("⟨y⟩ must complete over all variables")
	}
	if order[0] != y {
		t.Fatalf("completion must start with y: %v", order)
	}
	if _, found := h.FindDisruptiveTrio(order); found {
		t.Fatalf("completion %v has a trio", order)
	}
	// A set that is NOT connex for contrast: {x, z} has the path x–y–z
	// with y outside... x and z: is (x, y, z) an {x,z}-path? x,z ∈ S,
	// y ∉ S, x–y neighbors, y–z neighbors, x–z non-neighbors: yes.
	if h.SConnex(e(x, z)) {
		t.Fatal("{x,z} must not be connex")
	}
	if p := h.FindSPath(e(x, z)); p == nil {
		t.Fatal("expected an {x,z}-path certificate")
	}
}
