package hypergraph

// DisruptiveTrio is a certificate of lexicographic intractability
// (Definition 3.2): V1 and V2 are non-neighbors, V3 neighbors both and
// appears after both in the order.
type DisruptiveTrio struct {
	V1, V2, V3 int
}

// FindDisruptiveTrio searches for a disruptive trio of h with respect to
// the (possibly partial) lexicographic order L, given as vertex ids in
// order. All three trio members must occur in L (variables outside a
// partial order have no position). The second return value reports
// whether a trio was found.
func (h Hypergraph) FindDisruptiveTrio(L []int) (DisruptiveTrio, bool) {
	nb := h.Neighbors()
	for k := 2; k < len(L); k++ {
		v3 := L[k]
		for i := 0; i < k; i++ {
			v1 := L[i]
			if !Has(nb[v3], v1) {
				continue
			}
			for j := i + 1; j < k; j++ {
				v2 := L[j]
				if !Has(nb[v3], v2) {
					continue
				}
				if !Has(nb[v1], v2) && v1 != v2 {
					return DisruptiveTrio{V1: v1, V2: v2, V3: v3}, true
				}
			}
		}
	}
	return DisruptiveTrio{}, false
}

// FindSPath searches for an S-path: a chordless path (x, z1, ..., zk, y)
// with k ≥ 1, x, y ∈ S, and all zi ∉ S. A hypergraph is S-connex iff it
// has no S-path (for acyclic hypergraphs); the path is the certificate
// used by the hardness proofs. Returns the vertex sequence, or nil.
func (h Hypergraph) FindSPath(s VSet) []int {
	nb := h.Neighbors()
	verts := Members(h.Vertices())
	// Depth-first search over chordless paths starting at a vertex of S,
	// passing through non-S vertices, ending at a vertex of S. Chordless:
	// no two non-consecutive path vertices are neighbors. Queries are
	// constant-size, so the exponential worst case is irrelevant.
	var path []int
	var rec func(last int) []int
	rec = func(last int) []int {
		for _, next := range Members(nb[last]) {
			// Chordless extension: next must not neighbor any path vertex
			// except last (and must not repeat a vertex).
			ok := true
			for i, p := range path {
				if p == next {
					ok = false
					break
				}
				if i < len(path)-1 && Has(nb[next], p) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if Has(s, next) {
				if len(path) >= 2 { // at least one middle vertex
					return append(append([]int(nil), path...), next)
				}
				continue
			}
			path = append(path, next)
			if res := rec(next); res != nil {
				return res
			}
			path = path[:len(path)-1]
		}
		return nil
	}
	for _, x := range verts {
		if !Has(s, x) {
			continue
		}
		path = []int{x}
		if res := rec(x); res != nil {
			return res
		}
	}
	return nil
}

// FindChordlessPath4 searches for a chordless path of four distinct
// vertices (the certificate of Lemma 7.12 used by the SUM-selection
// hardness proof). Returns the vertex sequence, or nil.
func (h Hypergraph) FindChordlessPath4() []int {
	nb := h.Neighbors()
	verts := Members(h.Vertices())
	for _, a := range verts {
		for _, b := range Members(nb[a]) {
			for _, c := range Members(nb[b]) {
				if c == a || Has(nb[a], c) {
					continue
				}
				for _, d := range Members(nb[c]) {
					if d == a || d == b || Has(nb[a], d) || Has(nb[b], d) {
						continue
					}
					return []int{a, b, c, d}
				}
			}
		}
	}
	return nil
}

// CompleteOrder extends the prefix L to a total order over the vertex set
// `all` such that the completed order has no disruptive trio in h
// (Lemma 4.4). It returns the completed order and whether one exists.
//
// It uses the equivalent per-vertex criterion: an order is trio-free iff
// for every vertex v, the neighbors of v that precede v are pairwise
// neighbors (otherwise two non-neighboring earlier neighbors of v form a
// trio with v). This depends only on the *set* of earlier vertices, so a
// memoized search over prefix sets decides completability exactly.
func (h Hypergraph) CompleteOrder(L []int, all VSet) ([]int, bool) {
	nb := h.Neighbors()
	cliqueOK := func(v int, before VSet) bool {
		prev := nb[v] & before
		for _, a := range Members(prev) {
			rest := prev &^ Bit(a)
			if rest&^nb[a] != 0 {
				return false
			}
			prev = rest // pairs checked once
		}
		return true
	}

	// The fixed prefix must itself be trio-free under the criterion.
	var placed VSet
	for _, v := range L {
		if !cliqueOK(v, placed) {
			return nil, false
		}
		placed |= Bit(v)
	}
	if !Subset(placed, all) {
		// L mentions vertices outside the completion target; treat the
		// target as including them.
		all |= placed
	}

	order := append([]int(nil), L...)
	dead := make(map[VSet]bool)
	var rec func(cur VSet) bool
	rec = func(cur VSet) bool {
		if cur == all {
			return true
		}
		if dead[cur] {
			return false
		}
		for _, v := range Members(all &^ cur) {
			if !cliqueOK(v, cur) {
				continue
			}
			order = append(order, v)
			if rec(cur | Bit(v)) {
				return true
			}
			order = order[:len(order)-1]
		}
		dead[cur] = true
		return false
	}
	if !rec(placed) {
		return nil, false
	}
	return order, true
}
