package hypergraph

// JoinTree is a join tree over the original edge indices of a hypergraph.
// Parent[i] is the parent edge index of edge i, or -1 for the root.
// Exactly one root exists for a connected result; for hypergraphs whose
// GYO reduction leaves several components the construction links the
// components' roots (any two acyclic components can be joined by an edge
// because they share no vertices, so the running intersection property is
// unaffected).
type JoinTree struct {
	Parent []int
	Edges  []VSet // edge sets, aligned with Parent
}

// Root returns the root index.
func (t JoinTree) Root() int {
	for i, p := range t.Parent {
		if p == -1 {
			return i
		}
	}
	return -1
}

// Children returns, per node, the list of its children.
func (t JoinTree) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// RunningIntersection verifies the defining property of a join tree: for
// every vertex, the nodes containing it form a connected subtree.
func (t JoinTree) RunningIntersection() bool {
	n := len(t.Edges)
	if n == 0 {
		return true
	}
	// For each vertex, walk each containing node toward the root and stop
	// at the first node already known to contain the vertex. Connectivity
	// holds iff every containing node reaches the topmost containing node
	// through containing nodes only.
	for _, v := range Members(UnionAll(t.Edges)) {
		// Topmost node containing v: the one none of whose proper
		// ancestors contains v.
		top := -1
		for i, e := range t.Edges {
			if !Has(e, v) {
				continue
			}
			isTop := true
			for p := t.Parent[i]; p != -1; p = t.Parent[p] {
				if Has(t.Edges[p], v) {
					isTop = false
					break
				}
			}
			if isTop {
				if top != -1 {
					return false // two disjoint maximal subtrees contain v
				}
				top = i
			}
		}
		// Every containing node's parent chain must stay inside
		// containing nodes until top is reached.
		for i, e := range t.Edges {
			if !Has(e, v) || i == top {
				continue
			}
			p := t.Parent[i]
			if p == -1 || !Has(t.Edges[p], v) {
				return false
			}
		}
	}
	return true
}

// Acyclic reports whether the hypergraph is acyclic (has a join tree),
// via GYO reduction.
func (h Hypergraph) Acyclic() bool {
	_, ok := h.GYO()
	return ok
}

// GYO runs the Graham/Yu–Ozsoyoglu reduction. On success it returns a
// join tree over h's original edge indices. The reduction repeatedly
// (a) absorbs an edge into another edge containing it, and (b) deletes a
// vertex that occurs in exactly one edge ("ear" vertex). The hypergraph
// is acyclic iff the reduction ends with a single edge per connected
// component.
func (h Hypergraph) GYO() (JoinTree, bool) {
	n := len(h.Edges)
	cur := append([]VSet(nil), h.Edges...)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	alive := make([]bool, n)
	aliveCount := n
	for i := range alive {
		alive[i] = true
	}

	changed := true
	for changed && aliveCount > 1 {
		changed = false
		// (a) absorb contained edges.
		for i := 0; i < n && aliveCount > 1; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || !alive[j] {
					continue
				}
				if Subset(cur[i], cur[j]) {
					parent[i] = j
					alive[i] = false
					aliveCount--
					changed = true
					break
				}
			}
		}
		// (b) remove vertices occurring in exactly one edge.
		var count [64]int
		var lastEdge [64]int
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for _, v := range Members(cur[i]) {
				count[v]++
				lastEdge[v] = i
			}
		}
		for v := 0; v < 64; v++ {
			if count[v] == 1 {
				cur[lastEdge[v]] &^= Bit(v)
				changed = true
			}
		}
	}

	// Success iff every remaining alive edge is vertex-disjoint from every
	// other (each is the sole survivor of its connected component and has
	// been stripped of shared vertices... which for a connected acyclic
	// hypergraph means exactly one survivor). Multiple survivors sharing a
	// vertex, or survivors that still overlap, mean a cycle.
	roots := make([]int, 0, 2)
	for i := 0; i < n; i++ {
		if alive[i] {
			roots = append(roots, i)
		}
	}
	for a := 0; a < len(roots); a++ {
		for b := a + 1; b < len(roots); b++ {
			if cur[roots[a]]&cur[roots[b]] != 0 {
				return JoinTree{}, false
			}
		}
	}
	// After full reduction, survivors of a *connected* cyclic component
	// cannot be reduced to one edge; such components leave ≥2 survivors
	// that, after ear-vertex removal, may have become disjoint only if
	// they were genuinely separate components. Distinguish: a cyclic core
	// ends with ≥2 alive edges that still share vertices pairwise (the
	// loop above catches it) OR edges whose vertices were all shared
	// (cannot happen: shared vertices are never removed). A vertex in ≥2
	// alive edges is never deleted, so survivors from one component still
	// share vertices; the check above is therefore complete.
	for i := 1; i < len(roots); i++ {
		parent[roots[i]] = roots[0] // chain disjoint components under one root
	}
	tree := JoinTree{Parent: parent, Edges: append([]VSet(nil), h.Edges...)}
	return tree, true
}

// SConnex reports whether h is S-connex: acyclic and still acyclic after
// adding a hyperedge containing exactly S (Brault-Baron's
// characterization, §2.1 of the paper).
func (h Hypergraph) SConnex(s VSet) bool {
	return h.Acyclic() && h.WithEdge(s).Acyclic()
}

// FreeConnex reports whether a hypergraph with free vertices `free` is
// free-connex.
func (h Hypergraph) FreeConnex(free VSet) bool { return h.SConnex(free) }
