package decompose

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

func triangleInstance(rng *rand.Rand, n, dom int) *database.Instance {
	in := database.NewInstance()
	for i := 0; i < n; i++ {
		in.AddRow("R", values.Value(rng.Intn(dom)), values.Value(rng.Intn(dom)))
		in.AddRow("S", values.Value(rng.Intn(dom)), values.Value(rng.Intn(dom)))
		in.AddRow("T", values.Value(rng.Intn(dom)), values.Value(rng.Intn(dom)))
	}
	return in
}

func canonical(q *cq.Query, answers []order.Answer) []string {
	out := make([]string, 0, len(answers))
	for _, a := range answers {
		s := ""
		for _, v := range q.Head {
			s += "|"
			s += string(rune(a[v] + 1000))
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestTriangleDecomposition(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	rng := rand.New(rand.NewSource(1))
	in := triangleInstance(rng, 60, 8)
	res, err := MakeAcyclic(q, in, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The rewrite must be answer-equivalent.
	got := canonical(q, baseline.AllAnswers(res.Query, res.Instance))
	want := canonical(q, baseline.AllAnswers(q, in))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decomposed answers differ:\n got %v\nwant %v", got, want)
	}
	if len(want) == 0 {
		t.Fatal("workload produced no triangles; raise density")
	}
}

// End to end: direct access BY LEX on a cyclic query after decomposition.
func TestTriangleDirectAccess(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	rng := rand.New(rand.NewSource(2))
	in := triangleInstance(rng, 80, 6)
	res, err := MakeAcyclic(q, in, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := order.ParseLex(res.Query, "x, y, z")
	if err != nil {
		t.Fatal(err)
	}
	la, err := access.BuildLex(res.Query, res.Instance, l)
	if err != nil {
		t.Fatalf("decomposed triangle must admit direct access: %v", err)
	}
	oracle := baseline.SortedByLex(q, in, la.Completed)
	if la.Total() != int64(len(oracle)) {
		t.Fatalf("total = %d, oracle %d", la.Total(), len(oracle))
	}
	for k := int64(0); k < la.Total(); k++ {
		a, err := la.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range q.Head {
			rv, _ := res.Query.VarByName(q.VarName(v))
			if a[rv] != oracle[k][v] {
				t.Fatalf("answer #%d differs at %s", k, q.VarName(v))
			}
		}
	}
}

func TestFourCycle(t *testing.T) {
	q := cq.MustParse("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d), U(d, a)")
	rng := rand.New(rand.NewSource(3))
	in := database.NewInstance()
	for i := 0; i < 50; i++ {
		for _, rel := range []string{"R", "S", "T", "U"} {
			in.AddRow(rel, values.Value(rng.Intn(5)), values.Value(rng.Intn(5)))
		}
	}
	res, err := MakeAcyclic(q, in, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := canonical(q, baseline.AllAnswers(res.Query, res.Instance))
	want := canonical(q, baseline.AllAnswers(q, in))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("4-cycle decomposition changed the answers")
	}
}

func TestAcyclicPassthrough(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("S", 2, 3)
	res, err := MakeAcyclic(q, in, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Prefer the cheapest grouping: singletons.
	if len(res.Groups) != 2 {
		t.Fatalf("acyclic query should keep singleton bags, got %v", res.Groups)
	}
	got := canonical(q, baseline.AllAnswers(res.Query, res.Instance))
	want := canonical(q, baseline.AllAnswers(q, in))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("passthrough changed the answers")
	}
}

func TestProjectionOfLocalExistentials(t *testing.T) {
	// u is local to the bag {T}: the bag relation must not carry it.
	q := cq.MustParse("Q(x, y) :- R(x, y), T(y, u)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("T", 2, 7)
	in.AddRow("T", 2, 8)
	res, err := MakeAcyclic(q, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, atom := range res.Query.Atoms {
		for _, v := range atom.Vars {
			if res.Query.VarName(v) == "u" {
				t.Fatal("local existential variable survived decomposition")
			}
		}
	}
	if got := baseline.Count(res.Query, res.Instance); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestWidthTooSmall(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("S", 2, 3)
	in.AddRow("T", 3, 1)
	if _, err := MakeAcyclic(q, in, 1); err == nil {
		t.Fatal("width-1 grouping of the triangle must fail")
	}
	if _, err := MakeAcyclic(q, in, 0); err == nil {
		t.Fatal("maxGroup 0 must fail")
	}
}

func TestMissingRelation(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	if _, err := MakeAcyclic(q, in, 2); err == nil {
		t.Fatal("missing relations must be reported")
	}
}

// Random property test: decomposition preserves answers for a catalog of
// cyclic queries.
func TestDecomposePreservesAnswersRandom(t *testing.T) {
	catalog := []string{
		"Q(x, y, z) :- R(x, y), S(y, z), T(z, x)",
		"Q(x, z) :- R(x, y), S(y, z), T(z, x)",
		"Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d), U(d, a)",
		"Q(a, c) :- R(a, b), S(b, c), T(c, a), W(b)",
	}
	rng := rand.New(rand.NewSource(4))
	for _, src := range catalog {
		q := cq.MustParse(src)
		for trial := 0; trial < 15; trial++ {
			in := database.NewInstance()
			for _, atom := range q.Atoms {
				if in.Relation(atom.Rel) != nil {
					continue
				}
				in.SetRelation(atom.Rel, database.NewRelation(len(atom.Vars)))
				rows := rng.Intn(10)
				for r := 0; r < rows; r++ {
					row := make([]values.Value, len(atom.Vars))
					for c := range row {
						row[c] = values.Value(rng.Intn(4))
					}
					in.AddRow(atom.Rel, row...)
				}
			}
			res, err := MakeAcyclic(q, in, 2)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			got := canonical(q, baseline.AllAnswers(res.Query, res.Instance))
			want := canonical(q, baseline.AllAnswers(q, in))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d: answers differ", src, trial)
			}
		}
	}
}
