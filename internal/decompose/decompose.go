// Package decompose implements the paper's "Applicability" note (§1):
// cyclic CQs can be reduced to acyclic ones by a hypertree-style
// decomposition, paying a non-linear (here: up to n^w for group size w)
// overhead during preprocessing, after which every direct-access and
// selection algorithm in this repository applies.
//
// The decomposition groups the atoms into bags of bounded size,
// materializes the join of each bag (projected onto the variables that
// matter outside the bag), and rewrites the query over the bag relations.
// Bags are chosen by exhaustive search over atom partitions (queries are
// constant-size), preferring rewrites that are free-connex, then acyclic.
package decompose

import (
	"fmt"

	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/hypergraph"
	"rankedaccess/internal/values"
)

// Result is a decomposed query: an acyclic rewrite over materialized bag
// relations, answer-equivalent to the original query.
type Result struct {
	// Query is the rewritten CQ. It shares variable ids with the input
	// query, so answers are interchangeable.
	Query *cq.Query
	// Instance holds the materialized bag relations.
	Instance *database.Instance
	// Groups records which original atom indices each bag contains.
	Groups [][]int
}

// MakeAcyclic rewrites (q, in) into an acyclic equivalent by grouping at
// most maxGroup atoms per bag. It returns an error when no grouping of
// that width yields an acyclic query. Already-acyclic queries come back
// with singleton bags (and no materialization beyond projections).
//
// Materializing a bag of g atoms costs up to O(n^g) time and space — the
// non-linear overhead the paper refers to.
func MakeAcyclic(q *cq.Query, in *database.Instance, maxGroup int) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if maxGroup < 1 {
		return nil, fmt.Errorf("decompose: maxGroup must be ≥ 1")
	}
	free := q.Free()
	m := len(q.Atoms)

	// Enumerate partitions of {0..m-1} into groups of size ≤ maxGroup and
	// score the induced hypergraph. Score 2: free-connex; 1: acyclic;
	// 0: unusable. Prefer higher score, then fewer materialized bags.
	var best [][]int
	bestScore := 0
	var partition [][]int
	var rec func(next int)
	evaluate := func() {
		edges := make([]hypergraph.VSet, len(partition))
		for gi, group := range partition {
			var vars hypergraph.VSet
			for _, ai := range group {
				vars |= q.AtomVars(ai)
			}
			edges[gi] = projectedVars(q, partition, gi, vars, free)
		}
		h := hypergraph.New(edges)
		score := 0
		if h.Acyclic() {
			score = 1
			if h.SConnex(free) {
				score = 2
			}
		}
		if score > bestScore || (score == bestScore && score > 0 && len(partition) > len(best)) {
			// More groups = smaller bags = cheaper materialization.
			best = clonePartition(partition)
			bestScore = score
		}
	}
	rec = func(next int) {
		if next == m {
			evaluate()
			return
		}
		// Put atom `next` into an existing group or a new one.
		for gi := range partition {
			if len(partition[gi]) < maxGroup {
				partition[gi] = append(partition[gi], next)
				rec(next + 1)
				partition[gi] = partition[gi][:len(partition[gi])-1]
			}
		}
		partition = append(partition, []int{next})
		rec(next + 1)
		partition = partition[:len(partition)-1]
	}
	rec(0)

	if bestScore == 0 {
		return nil, fmt.Errorf("decompose: no acyclic grouping of width ≤ %d exists for %s", maxGroup, q.Name)
	}

	// Materialize the chosen bags.
	out := &Result{Groups: best, Instance: database.NewInstance()}
	rq := q.Clone()
	rq.Atoms = nil
	for gi, group := range best {
		var vars hypergraph.VSet
		for _, ai := range group {
			vars |= q.AtomVars(ai)
		}
		keep := projectedVars(q, best, gi, vars, free)
		rel, keptVars, err := materializeBag(q, in, group, keep)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("bag_%d", gi)
		names := make([]string, len(keptVars))
		for i, v := range keptVars {
			names[i] = q.VarName(v)
		}
		rq.AddAtom(name, names...)
		out.Instance.SetRelation(name, rel)
	}
	out.Query = rq
	if err := rq.Validate(); err != nil {
		return nil, fmt.Errorf("decompose: internal: %w", err)
	}
	return out, nil
}

func clonePartition(p [][]int) [][]int {
	out := make([][]int, len(p))
	for i, g := range p {
		out[i] = append([]int(nil), g...)
	}
	return out
}

// projectedVars returns the bag's variables that matter outside the bag:
// free variables and variables shared with other bags. Purely local
// existential variables are projected away during materialization.
func projectedVars(q *cq.Query, partition [][]int, gi int, vars hypergraph.VSet, free uint64) hypergraph.VSet {
	var outside hypergraph.VSet
	for gj, group := range partition {
		if gj == gi {
			continue
		}
		for _, ai := range group {
			outside |= q.AtomVars(ai)
		}
	}
	return vars & (hypergraph.VSet(free) | outside)
}

// materializeBag joins the bag's atoms and projects onto keep.
func materializeBag(q *cq.Query, in *database.Instance, group []int, keep hypergraph.VSet) (*database.Relation, []cq.VarID, error) {
	sub := cq.NewQuery("bag")
	for _, ai := range group {
		atom := q.Atoms[ai]
		names := make([]string, len(atom.Vars))
		for i, v := range atom.Vars {
			names[i] = q.VarName(v)
		}
		sub.AddAtom(atom.Rel, names...)
	}
	var keptNames []string
	var keptVars []cq.VarID
	for _, v := range hypergraph.Members(keep) {
		keptNames = append(keptNames, q.VarName(cq.VarID(v)))
		keptVars = append(keptVars, cq.VarID(v))
	}
	sub.SetHead(keptNames...)
	if err := sub.Validate(); err != nil {
		return nil, nil, fmt.Errorf("decompose: bag: %w", err)
	}
	// Check the bag's relations exist (AllAnswers treats missing ones as
	// empty, which would silently produce an empty bag).
	for _, atom := range sub.Atoms {
		if in.Relation(atom.Rel) == nil {
			return nil, nil, fmt.Errorf("decompose: instance lacks relation %s", atom.Rel)
		}
	}
	answers := baseline.AllAnswers(sub, in)
	rel := database.NewRelation(len(keptVars))
	row := make([]values.Value, len(keptVars))
	for _, a := range answers {
		for i := range keptVars {
			// sub shares variable names with q but has its own ids.
			id, _ := sub.VarByName(q.VarName(keptVars[i]))
			row[i] = a[id]
		}
		rel.Append(row...)
	}
	return rel, keptVars, nil
}
