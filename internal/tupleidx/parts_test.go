package tupleidx

import (
	"testing"

	"rankedaccess/internal/values"
)

func TestFromPartsRoundTrip(t *testing.T) {
	x := New(2, 8)
	keys := [][]values.Value{{1, 2}, {3, 4}, {5, 6}, {1, 7}}
	for _, k := range keys {
		x.Insert(k)
	}
	y, err := FromParts(x.Arity(), x.Len(), x.FlatKeys(), x.Table())
	if err != nil {
		t.Fatal(err)
	}
	for want, k := range keys {
		got, ok := y.Lookup(k)
		if !ok || got != want {
			t.Fatalf("lookup %v = %d, %v; want %d", k, got, ok, want)
		}
	}
	if _, ok := y.Lookup([]values.Value{9, 9}); ok {
		t.Fatal("reconstructed index invented a key")
	}
}

func TestFromPartsRejectsBadShapes(t *testing.T) {
	x := New(1, 4)
	x.Insert([]values.Value{7})
	x.Insert([]values.Value{8})
	keys, table := x.FlatKeys(), x.Table()
	cases := []struct {
		name  string
		arity int
		n     int
		keys  []values.Value
		table []int32
	}{
		{"negative arity", -1, 2, keys, table},
		{"key count mismatch", 1, 3, keys, table},
		{"nullary with two keys", 0, 2, nil, table},
		{"non power-of-two table", 1, 2, keys, table[:7]},
		{"overfull table", 1, 6, []values.Value{1, 2, 3, 4, 5, 6}, []int32{1, 2, 3, 4, 5, 6, 0, 0}},
		{"entry out of range", 1, 2, keys, []int32{1, 9, 0, 0, 0, 0, 0, 0}},
		{"occupancy mismatch", 1, 2, keys, []int32{1, 0, 0, 0, 0, 0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromParts(tc.arity, tc.n, tc.keys, tc.table); err == nil {
				t.Fatal("bad parts accepted")
			}
		})
	}
}
