package tupleidx

import (
	"math/rand"
	"sort"
	"testing"

	"rankedaccess/internal/values"
)

func TestInsertLookupRoundTrip(t *testing.T) {
	x := New(2, 0)
	keys := [][]values.Value{
		{1, 2}, {2, 1}, {-1, 0}, {0, -1}, {1 << 40, -(1 << 40)}, {0, 0},
	}
	for i, k := range keys {
		id, added := x.Insert(k)
		if !added || id != i {
			t.Fatalf("insert %v: got (%d, %v), want (%d, true)", k, id, added, i)
		}
	}
	for i, k := range keys {
		if id, added := x.Insert(k); added || id != i {
			t.Fatalf("re-insert %v: got (%d, %v), want (%d, false)", k, id, added, i)
		}
		if id, ok := x.Lookup(k); !ok || id != i {
			t.Fatalf("lookup %v: got (%d, %v), want (%d, true)", k, id, ok, i)
		}
		if got := x.Key(i); got[0] != k[0] || got[1] != k[1] {
			t.Fatalf("Key(%d) = %v, want %v", i, got, k)
		}
	}
	if _, ok := x.Lookup([]values.Value{9, 9}); ok {
		t.Fatal("lookup of absent key succeeded")
	}
	if x.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", x.Len(), len(keys))
	}
}

func TestInsertColsMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols := []int{2, 0}
	a := New(2, 0)
	b := New(2, 0)
	for i := 0; i < 2000; i++ {
		tu := []values.Value{rng.Int63n(20) - 10, rng.Int63(), rng.Int63n(20) - 10}
		key := []values.Value{tu[2], tu[0]}
		idA, addA := a.InsertCols(tu, cols)
		idB, addB := b.Insert(key)
		if idA != idB || addA != addB {
			t.Fatalf("InsertCols (%d,%v) != Insert (%d,%v)", idA, addA, idB, addB)
		}
		if id, ok := a.LookupCols(tu, cols); !ok || id != idA {
			t.Fatalf("LookupCols after insert: (%d, %v)", id, ok)
		}
	}
}

func TestGrowthKeepsIds(t *testing.T) {
	x := New(1, 0) // tiny initial table forces many growths
	n := 10000
	for i := 0; i < n; i++ {
		id, added := x.Insert([]values.Value{values.Value(i * 3)})
		if !added || id != i {
			t.Fatalf("insert %d: got (%d, %v)", i, id, added)
		}
	}
	for i := 0; i < n; i++ {
		if id, ok := x.Lookup([]values.Value{values.Value(i * 3)}); !ok || id != i {
			t.Fatalf("lookup %d after growth: got (%d, %v)", i, id, ok)
		}
	}
}

func TestZeroArity(t *testing.T) {
	x := New(0, 0)
	if _, ok := x.Lookup(nil); ok {
		t.Fatal("empty index claims the empty key")
	}
	id, added := x.Insert(nil)
	if !added || id != 0 {
		t.Fatalf("first nullary insert: (%d, %v)", id, added)
	}
	if id, added := x.Insert([]values.Value{}); added || id != 0 {
		t.Fatalf("second nullary insert: (%d, %v)", id, added)
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d, want 1", x.Len())
	}
}

func TestFlatKeysOrder(t *testing.T) {
	x := New(2, 0)
	x.Insert([]values.Value{5, 6})
	x.Insert([]values.Value{-7, 8})
	want := []values.Value{5, 6, -7, 8}
	got := x.FlatKeys()
	if len(got) != len(want) {
		t.Fatalf("FlatKeys len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FlatKeys[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSortValues(t *testing.T) {
	for _, n := range []int{0, 1, 7, radixThreshold - 1, radixThreshold, 5000} {
		rng := rand.New(rand.NewSource(int64(n)))
		vals := make([]values.Value, n)
		for i := range vals {
			vals[i] = rng.Int63() - (1 << 62) // mixed signs
		}
		want := append([]values.Value(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		SortValues(vals)
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("n=%d: SortValues[%d] = %d, want %d", n, i, vals[i], want[i])
			}
		}
	}
}

func TestSortLexFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const arity, rows = 3, 1500
	data := make([]values.Value, arity*rows)
	for i := range data {
		data[i] = rng.Int63n(10) - 5
	}
	rowsOf := func(d []values.Value) [][]values.Value {
		out := make([][]values.Value, rows)
		for i := range out {
			out[i] = append([]values.Value(nil), d[i*arity:(i+1)*arity]...)
		}
		return out
	}
	want := rowsOf(data)
	sort.Slice(want, func(i, j int) bool {
		for c := 0; c < arity; c++ {
			if want[i][c] != want[j][c] {
				return want[i][c] < want[j][c]
			}
		}
		return false
	})
	SortLexFlat(data, arity)
	got := rowsOf(data)
	for i := range want {
		for c := 0; c < arity; c++ {
			if got[i][c] != want[i][c] {
				t.Fatalf("row %d col %d: got %d, want %d", i, c, got[i][c], want[i][c])
			}
		}
	}
}

func TestLookupZeroAlloc(t *testing.T) {
	x := New(2, 0)
	rng := rand.New(rand.NewSource(4))
	tuples := make([][]values.Value, 4096)
	for i := range tuples {
		tuples[i] = []values.Value{rng.Int63n(1 << 20), rng.Int63n(1 << 20)}
		x.Insert(tuples[i])
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		x.Lookup(tuples[i%len(tuples)])
		i++
	}); n != 0 {
		t.Fatalf("Lookup allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		x.Insert(tuples[i%len(tuples)]) // present: steady state
		i++
	}); n != 0 {
		t.Fatalf("steady-state Insert allocates %v times per run, want 0", n)
	}
}
