// Package tupleidx provides allocation-free indexing and sorting of
// fixed-arity tuples of dictionary-encoded values stored flat in one
// []values.Value backing array.
//
// The Index replaces the map[string]-of-encoded-tuples idiom used by the
// first versions of dedup, semijoin, bucket lookup, and group-by: those
// pay one string allocation (plus an 8-bytes-per-column encode) per
// probed tuple, which dominates both the O(n log n) preprocessing and
// the O(log n) access paths of the paper's structures. The Index stores
// keys at a fixed stride in a single flat array and resolves probes by
// open addressing with wyhash-style multiply-xor mixing over the int64
// columns, so steady-state Insert/Lookup perform no allocation at all.
//
// Keys are assigned dense ids in insertion order (0, 1, 2, ...), which
// callers use to address parallel arrays (bucket offsets, weight tables,
// sorted tuple lists).
package tupleidx

import (
	"math"
	"math/bits"

	"rankedaccess/internal/values"
)

// Index maps fixed-arity tuples to dense insertion-order ids.
// The zero value is not usable; use New. Not safe for concurrent
// mutation; concurrent Lookups of a finished index are safe.
type Index struct {
	arity int
	keys  []values.Value // flat key storage, stride = arity
	table []int32        // open-addressing slots: id+1, 0 = empty
	mask  uint64
	n     int
}

// Mixing constants (wyhash v3 secrets).
const (
	m1 = 0xa0761d6478bd642f
	m2 = 0xe7037ed1a0b428db
	m3 = 0x8ebc6af09c88c6e3
)

func mix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// Hash returns the mixed hash of a key. Exposed so callers can pre-probe
// or shard by hash.
func Hash(key []values.Value) uint64 {
	h := uint64(len(key))*m3 ^ m2
	for _, v := range key {
		h = mix(uint64(v)^m1, h^m2)
	}
	return mix(h, m3)
}

// hashCols hashes the projection of tuple t onto cols, producing the
// same value as Hash of the gathered key.
func hashCols(t []values.Value, cols []int) uint64 {
	h := uint64(len(cols))*m3 ^ m2
	for _, c := range cols {
		h = mix(uint64(t[c])^m1, h^m2)
	}
	return mix(h, m3)
}

// New returns an empty index for keys of the given arity, pre-sized for
// about capHint keys.
func New(arity, capHint int) *Index {
	if arity < 0 {
		panic("tupleidx: negative arity")
	}
	size := 8
	for size < capHint*2 {
		size <<= 1
	}
	return &Index{
		arity: arity,
		table: make([]int32, size),
		mask:  uint64(size - 1),
		keys:  make([]values.Value, 0, capHint*arity),
	}
}

// Len returns the number of distinct keys inserted.
func (x *Index) Len() int { return x.n }

// Arity returns the key arity.
func (x *Index) Arity() int { return x.arity }

// Key returns a read-only view of the key with the given id (do not
// mutate; valid until the index is garbage).
func (x *Index) Key(id int) []values.Value {
	return x.keys[id*x.arity : (id+1)*x.arity : (id+1)*x.arity]
}

// FlatKeys returns the flat backing array of all inserted keys in id
// order (stride Arity). The caller may keep the slice; it must not
// mutate it while the index is still probed.
func (x *Index) FlatKeys() []values.Value { return x.keys }

func (x *Index) eq(id int, key []values.Value) bool {
	off := id * x.arity
	for j, v := range key {
		if x.keys[off+j] != v {
			return false
		}
	}
	return true
}

func (x *Index) eqCols(id int, t []values.Value, cols []int) bool {
	off := id * x.arity
	for j, c := range cols {
		if x.keys[off+j] != t[c] {
			return false
		}
	}
	return true
}

// grow doubles the table and rehashes from the flat key storage.
func (x *Index) grow() {
	size := len(x.table) * 2
	x.table = make([]int32, size)
	x.mask = uint64(size - 1)
	for id := 0; id < x.n; id++ {
		h := Hash(x.Key(id))
		slot := h & x.mask
		for x.table[slot] != 0 {
			slot = (slot + 1) & x.mask
		}
		x.table[slot] = int32(id) + 1
	}
}

func (x *Index) maybeGrow() {
	// Keep load factor below 3/4.
	if (x.n+1)*4 >= len(x.table)*3 {
		x.grow()
	}
}

// Insert returns the id of key, adding it (copying the values into the
// flat storage) if absent. added reports whether the key was new.
// Steady-state inserts of present keys perform no allocation.
func (x *Index) Insert(key []values.Value) (id int, added bool) {
	if len(key) != x.arity {
		panic("tupleidx: insert key arity mismatch")
	}
	x.maybeGrow()
	slot := Hash(key) & x.mask
	for {
		e := x.table[slot]
		if e == 0 {
			return x.add(slot, key), true
		}
		if x.eq(int(e-1), key) {
			return int(e - 1), false
		}
		slot = (slot + 1) & x.mask
	}
}

// InsertCols is Insert keyed on the projection of tuple t onto cols,
// without gathering the key into a temporary.
func (x *Index) InsertCols(t []values.Value, cols []int) (id int, added bool) {
	if len(cols) != x.arity {
		panic("tupleidx: insert cols arity mismatch")
	}
	x.maybeGrow()
	slot := hashCols(t, cols) & x.mask
	for {
		e := x.table[slot]
		if e == 0 {
			id = x.n
			if id == math.MaxInt32 {
				panic("tupleidx: key count overflows int32")
			}
			x.table[slot] = int32(id) + 1
			for _, c := range cols {
				x.keys = append(x.keys, t[c])
			}
			x.n++
			return id, true
		}
		if x.eqCols(int(e-1), t, cols) {
			return int(e - 1), false
		}
		slot = (slot + 1) & x.mask
	}
}

func (x *Index) add(slot uint64, key []values.Value) int {
	id := x.n
	if id == math.MaxInt32 {
		panic("tupleidx: key count overflows int32")
	}
	x.table[slot] = int32(id) + 1
	x.keys = append(x.keys, key...)
	x.n++
	return id
}

// Lookup returns the id of key and whether it is present. Performs no
// allocation.
func (x *Index) Lookup(key []values.Value) (id int, ok bool) {
	if len(key) != x.arity {
		panic("tupleidx: lookup key arity mismatch")
	}
	slot := Hash(key) & x.mask
	for {
		e := x.table[slot]
		if e == 0 {
			return 0, false
		}
		if x.eq(int(e-1), key) {
			return int(e - 1), true
		}
		slot = (slot + 1) & x.mask
	}
}

// LookupCols is Lookup keyed on the projection of tuple t onto cols,
// without gathering the key into a temporary.
func (x *Index) LookupCols(t []values.Value, cols []int) (id int, ok bool) {
	if len(cols) != x.arity {
		panic("tupleidx: lookup cols arity mismatch")
	}
	slot := hashCols(t, cols) & x.mask
	for {
		e := x.table[slot]
		if e == 0 {
			return 0, false
		}
		if x.eqCols(int(e-1), t, cols) {
			return int(e - 1), true
		}
		slot = (slot + 1) & x.mask
	}
}
