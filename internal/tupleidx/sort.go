package tupleidx

import (
	"sort"

	"rankedaccess/internal/values"
)

// flatSorter sorts fixed-stride rows of a flat array in place: Less
// compares row views, Swap exchanges the rows column by column. No
// per-row allocation happens during sorting (only the one interface
// header for sort.Sort, which runs the stdlib pattern-defeating
// quicksort).
type flatSorter struct {
	data  []values.Value
	arity int
	less  func(a, b []values.Value) bool
}

func (s *flatSorter) Len() int { return len(s.data) / s.arity }

func (s *flatSorter) Less(i, j int) bool {
	return s.less(s.data[i*s.arity:(i+1)*s.arity], s.data[j*s.arity:(j+1)*s.arity])
}

func (s *flatSorter) Swap(i, j int) {
	a := s.data[i*s.arity : (i+1)*s.arity]
	b := s.data[j*s.arity : (j+1)*s.arity]
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// SortFlat sorts the rows of a flat fixed-stride array in place under a
// comparator over row views. The sort is not stable; callers that need
// stability must make the comparator total.
func SortFlat(data []values.Value, arity int, less func(a, b []values.Value) bool) {
	if arity <= 0 || len(data) <= arity {
		return
	}
	sort.Sort(&flatSorter{data: data, arity: arity, less: less})
}

// SortLexFlat sorts the rows of a flat fixed-stride array in place by
// columnwise ascending value order.
func SortLexFlat(data []values.Value, arity int) {
	if arity == 1 {
		SortValues(data)
		return
	}
	SortFlat(data, arity, func(a, b []values.Value) bool {
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	})
}

// radixThreshold is the input size below which comparison sorting beats
// the 8-pass LSD radix with its scratch allocation.
const radixThreshold = 512

// SortValues sorts a value slice ascending: LSD radix sort (8-bit
// digits, sign-corrected) for large inputs, stdlib pdqsort otherwise.
func SortValues(vals []values.Value) {
	if len(vals) < radixThreshold {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return
	}
	radixSortValues(vals, make([]values.Value, len(vals)))
}

// radixSortValues sorts vals ascending using scratch (same length) as
// the ping-pong buffer. int64 order is obtained by flipping the sign bit
// of the top digit's counting key.
func radixSortValues(vals, scratch []values.Value) {
	src, dst := vals, scratch
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		signFlip := uint64(0)
		if shift == 56 {
			signFlip = 0x80 // order the top digit as signed
		}
		for _, v := range src {
			counts[(uint64(v)>>shift)&0xff^signFlip]++
		}
		// Skip passes where every key shares the digit.
		if counts[(uint64(src[0])>>shift)&0xff^signFlip] == len(src) {
			continue
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, v := range src {
			d := (uint64(v)>>shift)&0xff ^ signFlip
			dst[counts[d]] = v
			counts[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &vals[0] {
		copy(vals, src)
	}
}
