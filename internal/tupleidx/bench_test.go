package tupleidx

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"rankedaccess/internal/values"
)

// The contrast benchmark: flat index vs the string-key map it replaced.
// Run with -benchmem; the string side pays one key allocation per probe.

func randTuples(n, arity int, dom int64) [][]values.Value {
	rng := rand.New(rand.NewSource(7))
	out := make([][]values.Value, n)
	for i := range out {
		tu := make([]values.Value, arity)
		for j := range tu {
			tu[j] = rng.Int63n(dom)
		}
		out[i] = tu
	}
	return out
}

func BenchmarkBucketLookup_FlatIndex(b *testing.B) {
	for _, arity := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("arity=%d", arity), func(b *testing.B) {
			tuples := randTuples(1<<16, arity, 1<<18)
			x := New(arity, len(tuples))
			for _, tu := range tuples {
				x.Insert(tu)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Lookup(tuples[i%len(tuples)])
			}
		})
	}
}

func BenchmarkBucketLookup_StringMap(b *testing.B) {
	for _, arity := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("arity=%d", arity), func(b *testing.B) {
			tuples := randTuples(1<<16, arity, 1<<18)
			m := make(map[string]int, len(tuples))
			var buf []byte
			encode := func(tu []values.Value) []byte {
				buf = buf[:0]
				for _, v := range tu {
					var w [8]byte
					binary.BigEndian.PutUint64(w[:], uint64(v))
					buf = append(buf, w[:]...)
				}
				return buf
			}
			for i, tu := range tuples {
				m[string(encode(tu))] = i
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m[string(encode(tuples[i%len(tuples)]))]
			}
		})
	}
}

func BenchmarkInsert_FlatIndex(b *testing.B) {
	tuples := randTuples(1<<16, 2, 1<<18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := New(2, len(tuples))
		for _, tu := range tuples {
			x.Insert(tu)
		}
	}
}

func BenchmarkSortValues_Radix(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	src := make([]values.Value, 1<<16)
	for i := range src {
		src[i] = rng.Int63() - (1 << 62)
	}
	work := make([]values.Value, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		SortValues(work)
	}
}
