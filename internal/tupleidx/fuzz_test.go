package tupleidx

import (
	"encoding/binary"
	"testing"

	"rankedaccess/internal/values"
)

// refMap is the old string-key idiom the Index replaces: fixed-width
// big-endian encoding of every column, interned in a Go map. The fuzz
// target checks that Index agrees with it on insert ids, membership,
// and dedup counts for arbitrary data, including negative values and
// mixed arities.
type refMap struct {
	ids map[string]int
	buf []byte
}

func newRefMap() *refMap { return &refMap{ids: make(map[string]int)} }

func (m *refMap) key(t []values.Value) string {
	m.buf = m.buf[:0]
	for _, v := range t {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v))
		m.buf = append(m.buf, b[:]...)
	}
	return string(m.buf)
}

func (m *refMap) insert(t []values.Value) (int, bool) {
	k := m.key(t)
	if id, ok := m.ids[k]; ok {
		return id, false
	}
	id := len(m.ids)
	m.ids[k] = id
	return id, true
}

func (m *refMap) lookup(t []values.Value) (int, bool) {
	id, ok := m.ids[m.key(t)]
	return id, ok
}

func FuzzIndexVsStringMap(f *testing.F) {
	f.Add(uint8(1), []byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(uint8(2), []byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(3), make([]byte, 8*9))
	f.Add(uint8(4), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, arity8 uint8, data []byte) {
		arity := int(arity8%4) + 1 // mixed arities 1..4
		width := 8 * arity
		n := len(data) / width
		if n == 0 {
			return
		}
		tuples := make([][]values.Value, n)
		for i := 0; i < n; i++ {
			tu := make([]values.Value, arity)
			for j := 0; j < arity; j++ {
				tu[j] = values.Value(binary.BigEndian.Uint64(data[i*width+j*8:])) // signed reinterpret: negatives included
			}
			tuples[i] = tu
		}

		x := New(arity, 0)
		ref := newRefMap()
		for _, tu := range tuples {
			gotID, gotAdded := x.Insert(tu)
			wantID, wantAdded := ref.insert(tu)
			if gotID != wantID || gotAdded != wantAdded {
				t.Fatalf("Insert(%v): index (%d, %v), string map (%d, %v)",
					tu, gotID, gotAdded, wantID, wantAdded)
			}
		}
		// Dedup semantics: same number of distinct keys.
		if x.Len() != len(ref.ids) {
			t.Fatalf("dedup count: index %d, string map %d", x.Len(), len(ref.ids))
		}
		// Lookup of every inserted tuple and of mutated (likely absent)
		// probes must agree.
		for _, tu := range tuples {
			gotID, gotOK := x.Lookup(tu)
			wantID, wantOK := ref.lookup(tu)
			if gotID != wantID || gotOK != wantOK {
				t.Fatalf("Lookup(%v): index (%d, %v), string map (%d, %v)",
					tu, gotID, gotOK, wantID, wantOK)
			}
			probe := append([]values.Value(nil), tu...)
			probe[0] = ^probe[0]
			gotID, gotOK = x.Lookup(probe)
			wantID, wantOK = ref.lookup(probe)
			if gotOK != wantOK || (gotOK && gotID != wantID) {
				t.Fatalf("Lookup(flipped %v): index (%d, %v), string map (%d, %v)",
					probe, gotID, gotOK, wantID, wantOK)
			}
		}
		// Stored keys must round-trip exactly.
		for _, tu := range tuples {
			id, _ := x.Lookup(tu)
			k := x.Key(id)
			for j := range tu {
				if k[j] != tu[j] {
					t.Fatalf("Key(%d) = %v, want %v", id, k, tu)
				}
			}
		}
	})
}
