package tupleidx

import (
	"fmt"
	"math/bits"

	"rankedaccess/internal/values"
)

// This file exports the Index's flat buffers for snapshot persistence
// and reconstructs an Index from persisted (possibly memory-mapped)
// buffers without rehashing: the open-addressing table is part of the
// snapshot, so a warm start points the Index at the mapped arrays and
// is immediately probe-ready.

// Table returns the open-addressing slot array (entries are id+1, 0 =
// empty). The caller may persist it; it must not mutate it.
func (x *Index) Table() []int32 { return x.table }

// FromParts reconstructs an Index from its flat buffers: n keys of the
// given arity stored flat in keys (stride arity, id order), and the
// open-addressing table as returned by Table. The slices are aliased,
// not copied, so they may point into a mapped file; the Index must then
// be used read-only (Lookup/Key only — an Insert would write through).
//
// The buffers are validated structurally (shapes, bounds, occupancy and
// load factor — the invariants that keep probes terminating and
// in-bounds); they are trusted to be content-correct, which snapshot
// checksums guarantee.
func FromParts(arity, n int, keys []values.Value, table []int32) (*Index, error) {
	if arity < 0 || n < 0 {
		return nil, fmt.Errorf("tupleidx: negative shape (arity %d, n %d)", arity, n)
	}
	if arity == 0 && n > 1 {
		return nil, fmt.Errorf("tupleidx: %d distinct nullary keys", n)
	}
	if len(keys) != n*arity {
		return nil, fmt.Errorf("tupleidx: %d key values, want %d", len(keys), n*arity)
	}
	if len(table) < 8 || bits.OnesCount(uint(len(table))) != 1 {
		return nil, fmt.Errorf("tupleidx: table size %d is not a power of two >= 8", len(table))
	}
	// The builder keeps the load factor below 3/4, which is also what
	// guarantees probe loops hit an empty slot; reject denser tables.
	if n*4 >= len(table)*3 {
		return nil, fmt.Errorf("tupleidx: %d keys overfill a table of %d slots", n, len(table))
	}
	occupied := 0
	for _, e := range table {
		if e == 0 {
			continue
		}
		if e < 0 || int(e) > n {
			return nil, fmt.Errorf("tupleidx: table entry %d out of range [0, %d]", e, n)
		}
		occupied++
	}
	if occupied != n {
		return nil, fmt.Errorf("tupleidx: table holds %d entries for %d keys", occupied, n)
	}
	return &Index{
		arity: arity,
		keys:  keys,
		table: table,
		mask:  uint64(len(table) - 1),
		n:     n,
	}, nil
}
