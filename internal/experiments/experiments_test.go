package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment tables must be well-formed and internally consistent at
// small scales (the bench harness runs them at large scales).

func checkTable(t *testing.T, tb Table, wantRows int) {
	t.Helper()
	if len(tb.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", tb.Title, len(tb.Rows), wantRows)
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Header) {
			t.Fatalf("%s: ragged row %v", tb.Title, r)
		}
	}
	out := tb.Render()
	if !strings.Contains(out, tb.Header[0]) {
		t.Fatalf("render missing header: %s", out)
	}
}

func TestTheorem33(t *testing.T) {
	tb := Theorem33([]int{200, 400}, 50, 7)
	checkTable(t, tb, 2)
	// The answer count must be positive for this workload.
	if n, _ := strconv.Atoi(tb.Rows[0][1]); n <= 0 {
		t.Fatalf("no answers: %v", tb.Rows[0])
	}
}

func TestTheorem41(t *testing.T) {
	checkTable(t, Theorem41([]int{100, 200}, 50, 7), 2)
}

func TestTheorem51(t *testing.T) {
	checkTable(t, Theorem51([]int{200, 400}, 50, 7), 2)
}

func TestTheorem61(t *testing.T) {
	checkTable(t, Theorem61([]int{200, 400}, 7), 2)
}

func TestTheorem73(t *testing.T) {
	checkTable(t, Theorem73([]int{150, 300}, 7), 2)
}

func TestFig8Hardness(t *testing.T) {
	tb := Fig8Hardness([]int{50, 100}, 7)
	checkTable(t, tb, 2)
	// Example 5.3 instances have exactly n² answers.
	if got := tb.Rows[0][3]; got != "2500" {
		t.Fatalf("alpha2 answers = %s, want 2500", got)
	}
	if got := tb.Rows[1][3]; got != "10000" {
		t.Fatalf("alpha2 answers = %s, want 10000", got)
	}
}

func TestRankedEnumContrast(t *testing.T) {
	checkTable(t, RankedEnumContrast([]int{150, 300}, 10, 7), 2)
}

func TestFDRescue(t *testing.T) {
	tb := FDRescue([]int{200, 400}, 50, 7)
	checkTable(t, tb, 2)
	if n, _ := strconv.Atoi(tb.Rows[0][1]); n <= 0 {
		t.Fatalf("FD rescue produced no answers: %v", tb.Rows[0])
	}
}

func TestEpidemic(t *testing.T) {
	checkTable(t, Epidemic([]int{300}, 7), 1)
}

func TestTriangleDecomposition(t *testing.T) {
	checkTable(t, TriangleDecomposition([]int{100, 200}, 7), 2)
}

func TestUnionAccess(t *testing.T) {
	tb := UnionAccess([]int{200, 400}, 7)
	checkTable(t, tb, 2)
	if n, _ := strconv.Atoi(tb.Rows[0][1]); n <= 0 {
		t.Fatalf("union produced no answers: %v", tb.Rows[0])
	}
}
