// Package experiments implements the reproduction harness: for each
// complexity claim of the paper (and each figure/table with an empirical
// counterpart) it runs a parameter sweep and reports measured times, so
// the *shape* of every tractability statement can be checked against the
// implementation (quasilinear preprocessing, logarithmic access, linear
// selection, and the widening gap to the materialize-everything baseline
// on the intractable side).
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/decompose"
	"rankedaccess/internal/enum"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/selection"
	"rankedaccess/internal/ucq"
	"rankedaccess/internal/workload"
)

// Table is a rendered experiment: a header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }
func us(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1000) }

// timeAccesses measures the mean per-access time over m random indices.
func timeAccesses(la *access.Lex, rng *rand.Rand, m int) time.Duration {
	if la.Total() == 0 {
		return 0
	}
	start := time.Now()
	for i := 0; i < m; i++ {
		if _, err := la.Access(rng.Int63n(la.Total())); err != nil {
			panic(err)
		}
	}
	return time.Since(start) / time.Duration(m)
}

// Theorem33 sweeps n for direct access by a full lexicographic order on
// the 2-path query: preprocessing should grow quasilinearly, per-access
// time should stay near-constant (logarithmic), while the baseline
// (materialize + sort) grows with the answer count.
func Theorem33(ns []int, accesses int, seed int64) Table {
	t := Table{
		Title:  "Theorem 3.3 — direct access by LEX ⟨x,y,z⟩ on the 2-path (⟨n log n, log n⟩ claim)",
		Header: []string{"n", "answers", "preprocess_ms", "access_us", "baseline_materialize_ms"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		q, in := workload.TwoPath(rng, n, max(n/8, 2), 0.3)
		l, _ := order.ParseLex(q, "x, y, z")
		start := time.Now()
		la, err := access.BuildLex(q, in, l)
		if err != nil {
			panic(err)
		}
		prep := time.Since(start)
		acc := timeAccesses(la, rng, accesses)

		start = time.Now()
		answers := baseline.SortedByLex(q, in, la.Completed)
		base := time.Since(start)
		if int64(len(answers)) != la.Total() {
			panic("baseline disagrees with structure count")
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(la.Total()), ms(prep), us(acc), ms(base),
		})
	}
	return t
}

// Theorem41 sweeps n for a *partial* order on the Cartesian-product
// query Q3 (the Section 2.5 example no earlier structure supports).
func Theorem41(ns []int, accesses int, seed int64) Table {
	t := Table{
		Title:  "Theorem 4.1 — direct access by partial LEX ⟨v1,v2⟩ on Q3(v1..v4) :- R(v1,v3), S(v2,v4)",
		Header: []string{"n", "answers", "preprocess_ms", "access_us"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		q := cq.MustParse("Q3(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)")
		in := database.NewInstance()
		for i := 0; i < n; i++ {
			in.AddRow("R", rng.Int63n(int64(max(n/8, 2))), rng.Int63n(int64(max(n/8, 2))))
			in.AddRow("S", rng.Int63n(int64(max(n/8, 2))), rng.Int63n(int64(max(n/8, 2))))
		}
		l, _ := order.ParseLex(q, "v1, v2")
		start := time.Now()
		la, err := access.BuildLex(q, in, l)
		if err != nil {
			panic(err)
		}
		prep := time.Since(start)
		acc := timeAccesses(la, rng, accesses)
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(la.Total()), ms(prep), us(acc)})
	}
	return t
}

// Theorem51 sweeps n for direct access by SUM in the tractable class
// (one atom covers the free variables): ⟨n log n, 1⟩.
func Theorem51(ns []int, accesses int, seed int64) Table {
	t := Table{
		Title:  "Theorem 5.1 — direct access by SUM, free variables inside one atom (⟨n log n, 1⟩ claim)",
		Header: []string{"n", "answers", "preprocess_ms", "access_us"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		q, in, w := workload.SingleAtomCover(rng, n, max(n/4, 2))
		start := time.Now()
		sa, err := access.BuildSum(q, in, w)
		if err != nil {
			panic(err)
		}
		prep := time.Since(start)
		var acc time.Duration
		if sa.Total() > 0 {
			start = time.Now()
			for i := 0; i < accesses; i++ {
				if _, err := sa.Access(rng.Int63n(sa.Total())); err != nil {
					panic(err)
				}
			}
			acc = time.Since(start) / time.Duration(accesses)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(sa.Total()), ms(prep), us(acc)})
	}
	return t
}

// Theorem61 sweeps n for selection by the trio order ⟨x,z,y⟩ on the
// 2-path — the case where direct access is impossible but a single
// access costs O(n).
func Theorem61(ns []int, seed int64) Table {
	t := Table{
		Title:  "Theorem 6.1 — selection by LEX ⟨x,z,y⟩ on the 2-path (⟨1, n⟩ claim; DA is intractable here)",
		Header: []string{"n", "answers", "selection_ms (median)"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		q, in := workload.TwoPath(rng, n, max(n/8, 2), 0.3)
		l, _ := order.ParseLex(q, "x, z, y")
		count, err := selection.CountAnswers(q, in)
		if err != nil {
			panic(err)
		}
		var sel time.Duration
		if count > 0 {
			start := time.Now()
			if _, err := selection.SelectLex(q, in, l, count/2); err != nil {
				panic(err)
			}
			sel = time.Since(start)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(count), ms(sel)})
	}
	return t
}

// Theorem73 sweeps n for selection by SUM on the 2-path (fmh = 2,
// tractable) and contrasts the full 3-path (fmh = 3), where only the
// baseline is available and its cost tracks the answer count.
func Theorem73(ns []int, seed int64) Table {
	t := Table{
		Title:  "Theorem 7.3 — selection by SUM: 2-path (fmh=2, ⟨1, n log n⟩) vs full 3-path (fmh=3, baseline only)",
		Header: []string{"n", "2path_answers", "2path_select_ms", "3path_answers", "3path_baseline_ms"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		q, in := workload.TwoPath(rng, n, max(n/8, 2), 0.3)
		w := order.IdentitySum(q.Head...)
		count, err := selection.CountAnswers(q, in)
		if err != nil {
			panic(err)
		}
		var sel time.Duration
		if count > 0 {
			start := time.Now()
			if _, err := selection.SelectSum(q, in, w, count/2); err != nil {
				panic(err)
			}
			sel = time.Since(start)
		}
		// Full 3-path baseline at matched input size.
		q3, in3 := workload.KPath(rng, 3, n, max(n/8, 2), 0.3)
		w3 := order.IdentitySum(q3.Head...)
		start := time.Now()
		answers3 := baseline.SortedBySum(q3, in3, w3)
		base := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(count), ms(sel),
			fmt.Sprint(len(answers3)), ms(base),
		})
	}
	return t
}

// Fig8Hardness contrasts the two sides of Figure 8 empirically: the
// tractable α_free = 1 class (structure access) against the α_free = 2
// class of Example 5.3, where only materialization is available and the
// answer count is n², so the baseline scales quadratically.
func Fig8Hardness(ns []int, seed int64) Table {
	t := Table{
		Title:  "Figure 8 — DA by SUM: α_free=1 structure vs α_free=2 baseline (Example 5.3 instances)",
		Header: []string{"n", "alpha1_preprocess_ms", "alpha1_access_us", "alpha2_answers", "alpha2_baseline_ms"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		q1, in1, w1 := workload.SingleAtomCover(rng, n, max(n/4, 2))
		start := time.Now()
		sa, err := access.BuildSum(q1, in1, w1)
		if err != nil {
			panic(err)
		}
		prep := time.Since(start)
		var acc time.Duration
		if sa.Total() > 0 {
			start = time.Now()
			for i := 0; i < 1000; i++ {
				_, _ = sa.Access(rng.Int63n(sa.Total()))
			}
			acc = time.Since(start) / 1000
		}
		q2, in2, w2 := workload.Example53Instance(n)
		start = time.Now()
		answers := baseline.SortedBySum(q2, in2, w2)
		base := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(prep), us(acc), fmt.Sprint(len(answers)), ms(base),
		})
	}
	return t
}

// RankedEnumContrast shows the §5 contrast: ranked enumeration by SUM on
// the 2-path reaches the top-k answers in time ~k log n after quasilinear
// preprocessing, while direct access by SUM is impossible; the baseline
// must materialize and sort everything even for small k.
func RankedEnumContrast(ns []int, k int64, seed int64) Table {
	t := Table{
		Title:  fmt.Sprintf("§5 contrast — top-%d by SUM on the 2-path: any-k enumeration vs full materialize+sort", k),
		Header: []string{"n", "answers", "anyk_prep_ms", fmt.Sprintf("anyk_top%d_ms", k), "baseline_full_ms"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		q, in := workload.TwoPath(rng, n, max(n/8, 2), 0.3)
		w := order.IdentitySum(q.Head...)
		start := time.Now()
		e, err := enum.NewSumEnumerator(q, in, w)
		if err != nil {
			panic(err)
		}
		prep := time.Since(start)
		start = time.Now()
		answers, _ := e.Drain(k)
		topk := time.Since(start)
		start = time.Now()
		all := baseline.SortedBySum(q, in, w)
		base := time.Since(start)
		_ = answers
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(all)), ms(prep), ms(topk), ms(base),
		})
	}
	return t
}

// FDRescue measures Example 8.3 end to end: the non-free-connex 2-path
// projection becomes directly accessible under the FD S: y → z.
func FDRescue(ns []int, accesses int, seed int64) Table {
	t := Table{
		Title:  "§8 — Example 8.3: Q(x,z) :- R(x,y), S(y,z) with FD S: y→z (direct access on Q⁺)",
		Header: []string{"n", "answers", "preprocess_ms", "access_us"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
		fds := fd.MustParse(q, "S: y -> z")
		in := database.NewInstance()
		dom := int64(max(n/8, 2))
		for i := 0; i < n; i++ {
			in.AddRow("R", rng.Int63n(dom), rng.Int63n(dom))
		}
		for y := int64(0); y < dom; y++ {
			in.AddRow("S", y, rng.Int63n(dom)) // one z per y: satisfies the FD
		}
		l, _ := order.ParseLex(q, "x, z")
		start := time.Now()
		la, err := access.BuildLexFD(q, in, l, fds)
		if err != nil {
			panic(err)
		}
		prep := time.Since(start)
		acc := timeAccesses(la, rng, accesses)
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(la.Total()), ms(prep), us(acc)})
	}
	return t
}

// Epidemic runs the introduction's scenario end to end: quantile queries
// on Visits ⋈ Cases under the tractable order (cases, city, age).
func Epidemic(ns []int, seed int64) Table {
	t := Table{
		Title:  "Introduction — Visits ⋈ Cases by (cases desc, city, age): build + quantiles",
		Header: []string{"n_visits", "answers", "preprocess_ms", "median_access_us", "p99_access_us"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		q, in := workload.Epidemic(rng, n, n/2, max(n/20, 2), max(n/100, 2), 1000)
		l, _ := order.ParseLex(q, "cases desc, city, age")
		start := time.Now()
		la, err := access.BuildLex(q, in, l)
		if err != nil {
			panic(err)
		}
		prep := time.Since(start)
		var med, p99 time.Duration
		if la.Total() > 0 {
			start = time.Now()
			_, _ = la.Access(la.Total() / 2)
			med = time.Since(start)
			start = time.Now()
			_, _ = la.Access(la.Total() * 99 / 100)
			p99 = time.Since(start)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(la.Total()), ms(prep), us(med), us(p99),
		})
	}
	return t
}

// TriangleDecomposition measures the Applicability route for cyclic
// queries: bag materialization plus layered-structure build for the
// triangle query, against the plain materialize+sort baseline.
func TriangleDecomposition(ns []int, seed int64) Table {
	t := Table{
		Title:  "Applicability — cyclic triangle via width-2 decomposition vs materialize+sort",
		Header: []string{"n", "answers", "decompose+build_ms", "access_us", "baseline_ms"},
	}
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		in := database.NewInstance()
		dom := int64(max(n/8, 2))
		for i := 0; i < n; i++ {
			in.AddRow("R", rng.Int63n(dom), rng.Int63n(dom))
			in.AddRow("S", rng.Int63n(dom), rng.Int63n(dom))
			in.AddRow("T", rng.Int63n(dom), rng.Int63n(dom))
		}
		start := time.Now()
		res, err := decompose.MakeAcyclic(q, in, 2)
		if err != nil {
			panic(err)
		}
		l, _ := order.ParseLex(res.Query, "x, y, z")
		la, err := access.BuildLex(res.Query, res.Instance, l)
		if err != nil {
			panic(err)
		}
		prep := time.Since(start)
		var acc time.Duration
		if la.Total() > 0 {
			acc = timeAccesses(la, rng, 200)
		}
		start = time.Now()
		answers := baseline.SortedByLex(q, in, la.Completed)
		base := time.Since(start)
		if int64(len(answers)) != la.Total() {
			panic("decomposition disagrees with baseline count")
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(la.Total()), ms(prep), us(acc), ms(base),
		})
	}
	return t
}

// UnionAccess measures the UCQ extension: direct access into the
// deduplicated union of two join queries.
func UnionAccess(ns []int, seed int64) Table {
	t := Table{
		Title:  "UCQ extension — union of two join queries, deduplicated direct access",
		Header: []string{"n", "union_answers", "preprocess_ms", "access_us"},
	}
	q1 := cq.MustParse("Q1(p, via, q) :- Desk(p, via), Meets(via, q)")
	q2 := cq.MustParse("Q2(p, via, q) :- Slot(p, via), SlotOf(via, q)")
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		in := database.NewInstance()
		people, hubs := int64(max(n/8, 2)), int64(max(n/32, 2))
		for i := 0; i < n; i++ {
			in.AddRow("Desk", rng.Int63n(people), rng.Int63n(hubs))
			in.AddRow("Meets", rng.Int63n(hubs), rng.Int63n(people))
			in.AddRow("Slot", rng.Int63n(people), rng.Int63n(hubs))
			in.AddRow("SlotOf", rng.Int63n(hubs), rng.Int63n(people))
		}
		l, _ := order.ParseLex(q1, "p, via, q")
		start := time.Now()
		u, err := ucq.BuildUnion([]*cq.Query{q1, q2}, in, l)
		if err != nil {
			panic(err)
		}
		prep := time.Since(start)
		var acc time.Duration
		if u.Total() > 0 {
			start = time.Now()
			const probes = 200
			for i := 0; i < probes; i++ {
				if _, err := u.Access(rng.Int63n(u.Total())); err != nil {
					panic(err)
				}
			}
			acc = time.Since(start) / probes
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(u.Total()), ms(prep), us(acc),
		})
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
