package access

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

func lex(t *testing.T, q *cq.Query, s string) order.Lex {
	t.Helper()
	l, err := order.ParseLex(q, s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func fig2() *database.Instance {
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)
	return in
}

func proj(q *cq.Query, a order.Answer) []values.Value {
	out := make([]values.Value, len(q.Head))
	for i, v := range q.Head {
		out[i] = a[v]
	}
	return out
}

// enumerate drains the structure through Access.
func enumerate(t *testing.T, la *Lex) []order.Answer {
	t.Helper()
	out := make([]order.Answer, 0, la.Total())
	for k := int64(0); k < la.Total(); k++ {
		a, err := la.Access(k)
		if err != nil {
			t.Fatalf("Access(%d): %v", k, err)
		}
		out = append(out, a)
	}
	if _, err := la.Access(la.Total()); !errors.Is(err, ErrOutOfBound) {
		t.Fatalf("Access(total) must be out of bound, got %v", err)
	}
	if _, err := la.Access(-1); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("Access(-1) must be out of bound")
	}
	return out
}

// Figure 2(b): enumeration of the 2-path answers by ⟨x,y,z⟩.
func TestFig2bAccess(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	la, err := BuildLex(q, fig2(), lex(t, q, "x, y, z"))
	if err != nil {
		t.Fatal(err)
	}
	if la.Total() != 5 {
		t.Fatalf("total = %d", la.Total())
	}
	want := [][]values.Value{
		{1, 2, 5}, {1, 5, 3}, {1, 5, 4}, {1, 5, 6}, {6, 2, 5},
	}
	for k, a := range enumerate(t, la) {
		if !reflect.DeepEqual(proj(q, a), want[k]) {
			t.Fatalf("answer #%d = %v, want %v", k+1, proj(q, a), want[k])
		}
	}
}

// Example 3.5–3.7 (Figures 3–5): the Cartesian-product query Q3 with the
// interleaved order, its preprocessing weights, and the access trace.
func q3Instance() (*cq.Query, *database.Instance) {
	q := cq.MustParse("Q3(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)")
	in := database.NewInstance()
	// a1=1, a2=2; c1=1, c2=2, c3=3; b1=1, b2=2; d1=1..d4=4.
	in.AddRow("R", 1, 1) // (a1, c1)
	in.AddRow("R", 1, 2) // (a1, c2)
	in.AddRow("R", 2, 2) // (a2, c2)
	in.AddRow("R", 2, 3) // (a2, c3)
	in.AddRow("S", 1, 1) // (b1, d1)
	in.AddRow("S", 1, 2) // (b1, d2)
	in.AddRow("S", 1, 3) // (b1, d3)
	in.AddRow("S", 2, 4) // (b2, d4)
	return q, in
}

func TestExample35LayeredTree(t *testing.T) {
	q, in := q3Instance()
	la, err := BuildLex(q, in, lex(t, q, "v1, v2, v3, v4"))
	if err != nil {
		t.Fatal(err)
	}
	if la.LayerCount() != 4 {
		t.Fatalf("layers = %d", la.LayerCount())
	}
	// Tree shape of Figure 3b: v2's and v3's layers hang off v1's; v4's
	// hangs off v2's.
	if la.LayerParent(0) != -1 || la.LayerParent(1) != 0 || la.LayerParent(2) != 0 || la.LayerParent(3) != 1 {
		t.Fatalf("parents = %d %d %d %d", la.LayerParent(0), la.LayerParent(1), la.LayerParent(2), la.LayerParent(3))
	}
}

func TestExample36Weights(t *testing.T) {
	q, in := q3Instance()
	la, err := BuildLex(q, in, lex(t, q, "v1, v2, v3, v4"))
	if err != nil {
		t.Fatal(err)
	}
	if la.Total() != 16 {
		t.Fatalf("total = %d, want 16", la.Total())
	}
	// Figure 4: R' tuples a1, a2 have weight 8 and starts 0, 8.
	rp := la.DumpLayer(0)
	if len(rp) != 2 {
		t.Fatalf("R' has %d tuples", len(rp))
	}
	for i, want := range []BucketDump{{Value: 1, Weight: 8, Start: 0}, {Value: 2, Weight: 8, Start: 8}} {
		if rp[i].Value != want.Value || rp[i].Weight != want.Weight || rp[i].Start != want.Start {
			t.Fatalf("R'[%d] = %+v, want %+v", i, rp[i], want)
		}
	}
	// S': b1 weight 3 start 0; b2 weight 1 start 3.
	sp := la.DumpLayer(1)
	if len(sp) != 2 || sp[0].Weight != 3 || sp[0].Start != 0 || sp[1].Weight != 1 || sp[1].Start != 3 {
		t.Fatalf("S' dump = %+v", sp)
	}
	// R: four tuples of weight 1; starts 0,1 within each bucket.
	rd := la.DumpLayer(2)
	if len(rd) != 4 {
		t.Fatalf("R has %d tuples", len(rd))
	}
	for _, d := range rd {
		if d.Weight != 1 {
			t.Fatalf("R tuple weight = %+v", d)
		}
	}
	// S: starts 0,1,2 in bucket b1 and 0 in bucket b2.
	sd := la.DumpLayer(3)
	var b1starts []int64
	for _, d := range sd {
		if d.Key[0] == 1 {
			b1starts = append(b1starts, d.Start)
		}
	}
	if !reflect.DeepEqual(b1starts, []int64{0, 1, 2}) {
		t.Fatalf("S bucket b1 starts = %v", b1starts)
	}
}

// Example 3.7: answer number 12 (0-based) is (a2, b1, c3, d2).
func TestExample37AccessTrace(t *testing.T) {
	q, in := q3Instance()
	la, err := BuildLex(q, in, lex(t, q, "v1, v2, v3, v4"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := la.Access(12)
	if err != nil {
		t.Fatal(err)
	}
	if got := proj(q, a); !reflect.DeepEqual(got, []values.Value{2, 1, 3, 2}) {
		t.Fatalf("answer #12 = %v, want (a2, b1, c3, d2) = [2 1 3 2]", got)
	}
}

// Inverted access must invert Access on every index (Remark 3 /
// Algorithm 2), and reject non-answers.
func TestInvertedAccess(t *testing.T) {
	q, in := q3Instance()
	la, err := BuildLex(q, in, lex(t, q, "v1, v2, v3, v4"))
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < la.Total(); k++ {
		a, _ := la.Access(k)
		got, err := la.Inverted(a)
		if err != nil || got != k {
			t.Fatalf("Inverted(Access(%d)) = %d, %v", k, got, err)
		}
	}
	// (a1, b1, c3, d1) is not an answer: R lacks (a1, c3).
	bad := make(order.Answer, q.NumVars())
	ids := func(n string) cq.VarID { v, _ := q.VarByName(n); return v }
	bad[ids("v1")], bad[ids("v2")], bad[ids("v3")], bad[ids("v4")] = 1, 1, 3, 1
	if _, err := la.Inverted(bad); !errors.Is(err, ErrNotAnAnswer) {
		t.Fatalf("expected ErrNotAnAnswer, got %v", err)
	}
	// NextGE of that tuple: the 6 answers (a1, b1, c1|c2, d*) precede it,
	// so the next answer is (a1, b2, c1, d4) at index 6.
	k, err := la.NextGE(bad)
	if err != nil || k != 6 {
		t.Fatalf("NextGE = %d, %v (want 6)", k, err)
	}
	// NextGE past the last answer is out of bound.
	past := make(order.Answer, q.NumVars())
	past[ids("v1")], past[ids("v2")], past[ids("v3")], past[ids("v4")] = 99, 1, 1, 1
	if _, err := la.NextGE(past); !errors.Is(err, ErrOutOfBound) {
		t.Fatalf("NextGE past end: %v", err)
	}
}

func TestIntractableOrderRejected(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	_, err := BuildLex(q, fig2(), lex(t, q, "x, z, y"))
	var ie *IntractableError
	if !errors.As(err, &ie) {
		t.Fatalf("expected IntractableError, got %v", err)
	}
	if len(ie.Verdict.Trio) != 3 {
		t.Fatalf("expected trio certificate: %+v", ie.Verdict)
	}
}

func TestPartialOrderCompletion(t *testing.T) {
	// ⟨z,y⟩ on the 2-path (Example 4.2 tractable): completion appends x.
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	la, err := BuildLex(q, fig2(), lex(t, q, "z, y"))
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Completed.Entries) != 3 {
		t.Fatalf("completed order has %d entries", len(la.Completed.Entries))
	}
	if la.Completed.Entries[0].Var != la.Completed.Entries[0].Var {
		t.Fatal("unreachable")
	}
	want := baseline.SortedByLex(q, fig2(), la.Completed)
	for k, a := range enumerate(t, la) {
		if !reflect.DeepEqual(proj(q, a), proj(q, want[k])) {
			t.Fatalf("answer #%d = %v, want %v", k, proj(q, a), proj(q, want[k]))
		}
	}
}

func TestDescendingDirection(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	la, err := BuildLex(q, fig2(), lex(t, q, "x desc, y, z desc"))
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.SortedByLex(q, fig2(), la.Completed)
	for k, a := range enumerate(t, la) {
		if !reflect.DeepEqual(proj(q, a), proj(q, want[k])) {
			t.Fatalf("answer #%d = %v, want %v", k, proj(q, a), proj(q, want[k]))
		}
	}
	// First answer must have the maximal x.
	first, _ := la.Access(0)
	x, _ := q.VarByName("x")
	if first[x] != 6 {
		t.Fatalf("desc first x = %d", first[x])
	}
}

func TestProjectionQueryAccess(t *testing.T) {
	q := cq.MustParse("Q(x, y) :- R(x, y), S(y, z)")
	la, err := BuildLex(q, fig2(), lex(t, q, "y, x"))
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.SortedByLex(q, fig2(), la.Completed)
	if la.Total() != int64(len(want)) {
		t.Fatalf("total = %d, want %d", la.Total(), len(want))
	}
	for k, a := range enumerate(t, la) {
		if !reflect.DeepEqual(proj(q, a), proj(q, want[k])) {
			t.Fatalf("answer #%d = %v, want %v", k, proj(q, a), proj(q, want[k]))
		}
	}
}

func TestBooleanAccess(t *testing.T) {
	q := cq.MustParse("Q() :- R(x, y), S(y, z)")
	la, err := BuildLex(q, fig2(), order.Lex{})
	if err != nil {
		t.Fatal(err)
	}
	if la.Total() != 1 {
		t.Fatalf("Boolean true total = %d", la.Total())
	}
	if _, err := la.Access(0); err != nil {
		t.Fatal(err)
	}
	if _, err := la.Access(1); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("Boolean Access(1) must be out of bound")
	}
	// Empty join: total 0.
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.SetRelation("S", database.NewRelation(2))
	la2, err := BuildLex(q, in, order.Lex{})
	if err != nil {
		t.Fatal(err)
	}
	if la2.Total() != 0 {
		t.Fatalf("Boolean false total = %d", la2.Total())
	}
}

func TestEmptyResultAccess(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.SetRelation("S", database.NewRelation(2))
	la, err := BuildLex(q, in, lex(t, q, "x, y, z"))
	if err != nil {
		t.Fatal(err)
	}
	if la.Total() != 0 {
		t.Fatalf("total = %d", la.Total())
	}
	if _, err := la.Access(0); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("access on empty result must be out of bound")
	}
}

// randomInstance fills the query's relations with random small tuples.
func randomInstance(q *cq.Query, rng *rand.Rand, maxRows, domain int) *database.Instance {
	in := database.NewInstance()
	for _, a := range q.Atoms {
		if in.Relation(a.Rel) != nil {
			continue
		}
		in.SetRelation(a.Rel, database.NewRelation(len(a.Vars)))
		rows := rng.Intn(maxRows + 1)
		for r := 0; r < rows; r++ {
			row := make([]values.Value, len(a.Vars))
			for c := range row {
				row[c] = values.Value(rng.Intn(domain))
			}
			in.AddRow(a.Rel, row...)
		}
	}
	return in
}

// The cornerstone property test: on a catalog of tractable (query, order)
// pairs and random instances, Access enumerates exactly the oracle's
// sorted answers, Inverted inverts it, and Total matches.
func TestAccessMatchesOracleRandom(t *testing.T) {
	catalog := []struct{ src, order string }{
		{"Q(x, y, z) :- R(x, y), S(y, z)", "x, y, z"},
		{"Q(x, y, z) :- R(x, y), S(y, z)", "y, x, z"},
		{"Q(x, y, z) :- R(x, y), S(y, z)", "y desc, z, x desc"},
		{"Q(x, y, z) :- R(x, y), S(y, z)", "z, y"},
		{"Q(x, y) :- R(x, y), S(y, z)", "x, y"},
		{"Q(y) :- R(x, y), S(y, z)", "y"},
		{"Q3(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)", "v1, v2, v3, v4"},
		{"Q3(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)", "v1, v2"},
		{"Q5(v1, v2, v3, v4, v5) :- R1(v1, v3), R2(v3, v4), R3(v2, v5)", "v1, v2, v3, v4, v5"},
		{"Q6(v1, v2, v3, v4, v5) :- R1(v1, v2, v4), R2(v2, v3, v5)", "v1, v2, v3, v4, v5"},
		{"Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)", "x, y, z, u"},
		{"Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)", "y, z, x, u"},
		{"Q(a, b) :- R(a, b), S(b), T(b, c), U(c, d)", "b, a"},
		{"Q(x, y) :- R(x), S(y)", "x, y"},
		{"Q1(x, y) :- R1(x), R2(x, y), R3(y)", "x, y"},
		{"Q2(x) :- R1(x, y), R2(y)", "x"},
		{"Q(x, y, z) :- R(x, y), R2(y, z), R3(y)", "y, z, x"},
	}
	rng := rand.New(rand.NewSource(11))
	for _, c := range catalog {
		q := cq.MustParse(c.src)
		l := lex(t, q, c.order)
		for trial := 0; trial < 25; trial++ {
			in := randomInstance(q, rng, 7, 4)
			la, err := BuildLex(q, in, l)
			if err != nil {
				t.Fatalf("%s ⟨%s⟩: %v", c.src, c.order, err)
			}
			want := baseline.SortedByLex(q, in, la.Completed)
			if la.Total() != int64(len(want)) {
				t.Fatalf("%s ⟨%s⟩: total %d, oracle %d", c.src, c.order, la.Total(), len(want))
			}
			for k := int64(0); k < la.Total(); k++ {
				a, err := la.Access(k)
				if err != nil {
					t.Fatalf("%s Access(%d): %v", c.src, k, err)
				}
				if !reflect.DeepEqual(proj(q, a), proj(q, want[k])) {
					t.Fatalf("%s ⟨%s⟩ trial %d: answer #%d = %v, oracle %v",
						c.src, c.order, trial, k, proj(q, a), proj(q, want[k]))
				}
				if inv, err := la.Inverted(a); err != nil || inv != k {
					t.Fatalf("%s: Inverted(Access(%d)) = %d, %v", c.src, k, inv, err)
				}
			}
		}
	}
}

// Rank must agree with the oracle on arbitrary probe tuples (including
// non-answers): it counts answers strictly before the probe.
func TestRankAgainstOracleRandom(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	l := lex(t, q, "x, y, z")
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(q, rng, 6, 3)
		la, err := BuildLex(q, in, l)
		if err != nil {
			t.Fatal(err)
		}
		sorted := baseline.SortedByLex(q, in, la.Completed)
		for probe := 0; probe < 30; probe++ {
			a := make(order.Answer, q.NumVars())
			for _, v := range q.Head {
				a[v] = values.Value(rng.Intn(4))
			}
			wantRank := 0
			exactWant := false
			for _, s := range sorted {
				c := la.Completed.Compare(s, a)
				if c < 0 {
					wantRank++
				} else if c == 0 {
					exactWant = true
				}
			}
			gotRank, gotExact := la.Rank(a)
			if int64(wantRank) != gotRank || exactWant != gotExact {
				t.Fatalf("trial %d: Rank(%v) = (%d, %v), oracle (%d, %v)",
					trial, proj(q, a), gotRank, gotExact, wantRank, exactWant)
			}
		}
	}
}

// FD-extended direct access (Theorem 8.21): Example 1.1's bullet with FD
// R: x → y making ⟨x,z,y⟩ tractable.
func TestFDLexAccess(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	fds := fd.MustParse(q, "R: x -> y")
	// Build an instance satisfying x → y.
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 6, 2)
	in.AddRow("R", 7, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 2, 5)
	in.AddRow("S", 2, 1)
	l := lex(t, q, "x, z, y")
	la, err := BuildLexFD(q, in, l, fds)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.SortedByLex(q, in, l) // full order: x, z, y (deterministic: y is implied)
	if la.Total() != int64(len(want)) {
		t.Fatalf("total = %d, oracle %d", la.Total(), len(want))
	}
	for k := int64(0); k < la.Total(); k++ {
		a, err := la.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(proj(q, a), proj(q, want[k])) {
			t.Fatalf("answer #%d = %v, oracle %v", k, proj(q, a), proj(q, want[k]))
		}
		if inv, err := la.Inverted(a); err != nil || inv != k {
			t.Fatalf("Inverted(Access(%d)) = %d, %v", k, inv, err)
		}
	}
	// A violating instance must be rejected.
	in.AddRow("R", 1, 9)
	if _, err := BuildLexFD(q, in, l, fds); err == nil {
		t.Fatal("violating instance must be rejected")
	}
}

// FD access for Example 8.3: the non-free-connex Q2P becomes accessible.
func TestFDLexAccessExample83(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	fds := fd.MustParse(q, "S: y -> z")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 2, 5)
	in.AddRow("R", 2, 7)
	in.AddRow("R", 3, 8) // dangling (no S tuple with y=8)
	in.AddRow("S", 5, 30)
	in.AddRow("S", 7, 10)
	l := lex(t, q, "x, z")
	la, err := BuildLexFD(q, in, l, fds)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.SortedByLex(q, in, l)
	if la.Total() != int64(len(want)) {
		t.Fatalf("total = %d, oracle %d", la.Total(), len(want))
	}
	for k := int64(0); k < la.Total(); k++ {
		a, _ := la.Access(k)
		if !reflect.DeepEqual(proj(q, a), proj(q, want[k])) {
			t.Fatalf("answer #%d = %v, oracle %v", k, proj(q, a), proj(q, want[k]))
		}
	}
	// Inverted access through the FD extender.
	for k := int64(0); k < la.Total(); k++ {
		a, _ := la.Access(k)
		if inv, err := la.Inverted(a); err != nil || inv != k {
			t.Fatalf("Inverted(%v) = %d, %v", proj(q, a), inv, err)
		}
	}
}

// SUM direct access (Lemma 5.9) against the oracle.
func TestSumAccess(t *testing.T) {
	q := cq.MustParse("Q(x, y) :- R(x, y), S(y, z)")
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	w := order.IdentitySum(x, y)
	sa, err := BuildSum(q, fig2(), w)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.SortedBySum(q, fig2(), w)
	if sa.Total() != int64(len(want)) {
		t.Fatalf("total = %d, oracle %d", sa.Total(), len(want))
	}
	for k := int64(0); k < sa.Total(); k++ {
		a, err := sa.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		gw, _ := sa.WeightAt(k)
		if ww := w.AnswerWeight(q, want[k]); gw != ww {
			t.Fatalf("weight #%d = %v, oracle %v", k, gw, ww)
		}
		_ = a
	}
	if _, err := sa.Access(sa.Total()); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("out of bound expected")
	}
	// Weight lookup: first index of an existing weight; -1 for missing.
	w0, _ := sa.WeightAt(0)
	if idx := sa.WeightLookup(w0); idx != 0 {
		t.Fatalf("WeightLookup(first) = %d", idx)
	}
	if idx := sa.WeightLookup(-999); idx != -1 {
		t.Fatalf("WeightLookup(missing) = %d", idx)
	}
}

func TestSumAccessIntractableRejected(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	_, err := BuildSum(q, fig2(), order.NewSum())
	var ie *IntractableError
	if !errors.As(err, &ie) {
		t.Fatalf("expected IntractableError, got %v", err)
	}
}

// SUM access with FDs (Theorem 8.9): Example 8.3's query becomes
// tractable by SUM.
func TestSumAccessFD(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	fds := fd.MustParse(q, "S: y -> z")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 2, 5)
	in.AddRow("R", 2, 7)
	in.AddRow("S", 5, 30)
	in.AddRow("S", 7, 10)
	x, _ := q.VarByName("x")
	z, _ := q.VarByName("z")
	w := order.IdentitySum(x, z)
	// Without the FD: rejected.
	if _, err := BuildSum(q, in, w); err == nil {
		t.Fatal("must be rejected without FDs")
	}
	sa, err := BuildSumFD(q, in, w, fds)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.SortedBySum(q, in, w)
	if sa.Total() != int64(len(want)) {
		t.Fatalf("total = %d, oracle %d", sa.Total(), len(want))
	}
	for k := int64(0); k < sa.Total(); k++ {
		gw, _ := sa.WeightAt(k)
		if ww := w.AnswerWeight(q, want[k]); gw != ww {
			t.Fatalf("weight #%d = %v, oracle %v", k, gw, ww)
		}
		a, _ := sa.Access(k)
		if got := w.AnswerWeight(q, a); got != gw {
			t.Fatalf("answer weight mismatch at %d: %v vs %v", k, got, gw)
		}
	}
}
