package access

import (
	"math/rand"
	"testing"

	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// Rank with mixed ascending/descending components, against the oracle —
// including probes that are not answers (the NextGE path).
func TestRankDescendingAgainstOracle(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	orders := []string{"x desc, y, z", "y desc, z desc, x", "z, y desc"}
	rng := rand.New(rand.NewSource(91))
	for _, ord := range orders {
		l, err := order.ParseLex(q, ord)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			in := randomInstance(q, rng, 6, 3)
			la, err := BuildLex(q, in, l)
			if err != nil {
				t.Fatal(err)
			}
			sorted := baseline.SortedByLex(q, in, la.Completed)
			for probe := 0; probe < 25; probe++ {
				a := make(order.Answer, q.NumVars())
				for _, v := range q.Head {
					a[v] = values.Value(rng.Intn(4))
				}
				wantRank := 0
				exactWant := false
				for _, s := range sorted {
					c := la.Completed.Compare(s, a)
					if c < 0 {
						wantRank++
					} else if c == 0 {
						exactWant = true
					}
				}
				gotRank, gotExact := la.Rank(a)
				if int64(wantRank) != gotRank || exactWant != gotExact {
					t.Fatalf("⟨%s⟩ trial %d: Rank = (%d, %v), oracle (%d, %v)",
						ord, trial, gotRank, gotExact, wantRank, exactWant)
				}
			}
		}
	}
}
