package access

import (
	"fmt"
	"sort"

	"rankedaccess/internal/checked"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/par"
	"rankedaccess/internal/values"
)

// semijoinReduce removes dangling tuples across the layered tree: a
// bottom-up pass filtering parents by children, then a top-down pass
// filtering children by parents (Yannakakis). Shared variables of a
// child and its parent are exactly the child's key variables.
func (la *Lex) semijoinReduce() {
	f := len(la.layers)
	// Bottom-up: layers in decreasing index order have children after
	// parents, so iterating i from f-1 down to 0 and filtering parent by
	// child visits children first.
	for i := f - 1; i >= 1; i-- {
		p := la.layers[i].parent
		pCols, cCols := la.sharedCols(p, i)
		la.rels[p] = la.rels[p].Semijoin(pCols, la.rels[i], cCols)
	}
	// Top-down.
	for i := 1; i < f; i++ {
		p := la.layers[i].parent
		pCols, cCols := la.sharedCols(p, i)
		la.rels[i] = la.rels[i].Semijoin(cCols, la.rels[p], pCols)
	}
}

// sharedCols returns aligned column indices of the child's key variables
// in the parent layer relation and in the child layer relation.
func (la *Lex) sharedCols(parent, child int) (pCols, cCols []int) {
	pVars := la.layerVars(parent)
	pos := make(map[cq.VarID]int, len(pVars))
	for c, u := range pVars {
		pos[u] = c
	}
	for c, u := range la.layers[child].keyVars {
		pCols = append(pCols, pos[u])
		cCols = append(cCols, c)
	}
	return
}

// computeWeights bucketizes every layer and runs the subtree-count
// dynamic program of §3.1: the weight of a tuple is the product over the
// layer's children of the weight of the child bucket selected by the
// tuple; starts are prefix sums inside each bucket. The total count is
// the weight of the root bucket.
func (la *Lex) computeWeights() error {
	f := len(la.layers)
	if f == 0 {
		return nil
	}
	// bucketize(i) writes only layer i and reads its children's finished
	// buckets, so layers at the same height from the leaves are
	// independent: schedule them as parallel waves, leaves first. Parents
	// always precede children in index order, so a single descending pass
	// computes heights.
	height := make([]int, f)
	maxH := 0
	for i := f - 1; i >= 0; i-- {
		h := 0
		for _, c := range la.layers[i].children {
			if height[c]+1 > h {
				h = height[c] + 1
			}
		}
		height[i] = h
		if h > maxH {
			maxH = h
		}
	}
	waves := make([][]int, maxH+1)
	for i, h := range height {
		waves[h] = append(waves[h], i)
	}
	for _, wave := range waves {
		wave := wave
		if err := par.DoErr(len(wave), func(j int) error {
			return la.bucketize(wave[j])
		}); err != nil {
			return err
		}
	}
	root := &la.layers[0]
	switch len(root.bucketWeight) {
	case 0:
		la.total = 0
	case 1:
		la.total = root.bucketWeight[0]
	default:
		return fmt.Errorf("access: internal: root layer has %d buckets", len(root.bucketWeight))
	}
	return nil
}

// bucketize groups layer i's tuples into buckets by key value, sorts each
// bucket by the layer variable under the layer direction, and computes
// weights and starts (children of i are already bucketized).
func (la *Lex) bucketize(i int) error {
	ly := &la.layers[i]
	rel := la.rels[i]
	nk := len(ly.keyVars)
	n := rel.Len()

	// Group rows by key.
	type row struct {
		key []values.Value
		val values.Value
	}
	rows := make([]row, n)
	keyCols := make([]int, nk)
	for c := range keyCols {
		keyCols[c] = c
	}
	groups := make(map[string][]int, n)
	var keyBuf []byte
	orderKeys := make([]string, 0)
	for t := 0; t < n; t++ {
		tu := rel.Tuple(t)
		rows[t] = row{key: append([]values.Value(nil), tu[:nk]...), val: tu[nk]}
		keyBuf = database.EncodeKey(keyBuf, tu, keyCols)
		k := string(keyBuf)
		if _, ok := groups[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], t)
	}

	ly.bucketOf = make(map[string]int, len(groups))
	for _, k := range orderKeys {
		idxs := groups[k]
		// Sort bucket members by value under the layer direction.
		sort.Slice(idxs, func(a, b int) bool {
			av, bv := rows[idxs[a]].val, rows[idxs[b]].val
			if ly.dir == order.Desc {
				return av > bv
			}
			return av < bv
		})
		b := len(ly.bucketStart)
		ly.bucketOf[k] = b
		ly.bucketStart = append(ly.bucketStart, len(ly.vals))
		ly.bucketKeys = append(ly.bucketKeys, rows[idxs[0]].key)
		bucketSum := checked.NewCounter(0)
		for _, t := range idxs {
			w, err := la.tupleWeight(i, rows[t].key, rows[t].val)
			if err != nil {
				return err
			}
			ly.starts = append(ly.starts, bucketSum.Value())
			ly.vals = append(ly.vals, rows[t].val)
			ly.weights = append(ly.weights, w)
			bucketSum.Add(w)
		}
		if err := bucketSum.Err(); err != nil {
			return fmt.Errorf("access: counting answers: %w", err)
		}
		ly.bucketEnd = append(ly.bucketEnd, len(ly.vals))
		ly.bucketWeight = append(ly.bucketWeight, bucketSum.Value())
	}
	return nil
}

// tupleWeight multiplies the weights of the child buckets selected by a
// tuple of layer i (key values plus the layer-variable value).
func (la *Lex) tupleWeight(i int, key []values.Value, val values.Value) (int64, error) {
	ly := &la.layers[i]
	w := checked.NewCounter(1)
	for _, c := range ly.children {
		child := &la.layers[c]
		b, ok := la.childBucket(ly, child, key, val)
		if !ok {
			return 0, fmt.Errorf("access: internal: missing child bucket after reduction (layer %d -> %d)", i, c)
		}
		w.Mul(child.bucketWeight[b])
	}
	if err := w.Err(); err != nil {
		return 0, fmt.Errorf("access: counting answers: %w", err)
	}
	return w.Value(), nil
}

// childBucket resolves the bucket of a child layer selected by a parent
// tuple: each child key variable is either the parent's layer variable or
// one of the parent's key variables.
func (la *Lex) childBucket(parent, child *layer, key []values.Value, val values.Value) (int, bool) {
	var buf []byte
	for _, u := range child.keyVars {
		var v values.Value
		if u == parent.v {
			v = val
		} else {
			found := false
			for c, pu := range parent.keyVars {
				if pu == u {
					v = key[c]
					found = true
					break
				}
			}
			if !found {
				return 0, false
			}
		}
		buf = appendVal(buf, v)
	}
	b, ok := child.bucketOf[string(buf)]
	return b, ok
}

func appendVal(buf []byte, v values.Value) []byte {
	u := uint64(v)
	return append(buf,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
