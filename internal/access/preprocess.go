package access

import (
	"context"
	"fmt"

	"rankedaccess/internal/checked"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
	"rankedaccess/internal/par"
	"rankedaccess/internal/tupleidx"
	"rankedaccess/internal/values"
)

// semijoinReduce removes dangling tuples across the layered tree: a
// bottom-up pass filtering parents by children, then a top-down pass
// filtering children by parents (Yannakakis). Shared variables of a
// child and its parent are exactly the child's key variables.
func (la *Lex) semijoinReduce() {
	f := len(la.layers)
	// Bottom-up: layers in decreasing index order have children after
	// parents, so iterating i from f-1 down to 0 and filtering parent by
	// child visits children first.
	for i := f - 1; i >= 1; i-- {
		p := la.layers[i].parent
		pCols, cCols := la.sharedCols(p, i)
		la.rels[p] = la.rels[p].Semijoin(pCols, la.rels[i], cCols)
	}
	// Top-down.
	for i := 1; i < f; i++ {
		p := la.layers[i].parent
		pCols, cCols := la.sharedCols(p, i)
		la.rels[i] = la.rels[i].Semijoin(cCols, la.rels[p], pCols)
	}
}

// sharedCols returns aligned column indices of the child's key variables
// in the parent layer relation and in the child layer relation.
func (la *Lex) sharedCols(parent, child int) (pCols, cCols []int) {
	pVars := la.layerVars(parent)
	pos := make(map[cq.VarID]int, len(pVars))
	for c, u := range pVars {
		pos[u] = c
	}
	for c, u := range la.layers[child].keyVars {
		pCols = append(pCols, pos[u])
		cCols = append(cCols, c)
	}
	return
}

// computeWeights bucketizes every layer and runs the subtree-count
// dynamic program of §3.1: the weight of a tuple is the product over the
// layer's children of the weight of the child bucket selected by the
// tuple; starts are prefix sums inside each bucket. The total count is
// the weight of the root bucket.
func (la *Lex) computeWeights(ctx context.Context) error {
	f := len(la.layers)
	if f == 0 {
		return nil
	}
	// bucketize(i) writes only layer i and reads its children's finished
	// buckets, so layers at the same height from the leaves are
	// independent: schedule them as parallel waves, leaves first. Parents
	// always precede children in index order, so a single descending pass
	// computes heights.
	height := make([]int, f)
	maxH := 0
	for i := f - 1; i >= 0; i-- {
		h := 0
		for _, c := range la.layers[i].children {
			if height[c]+1 > h {
				h = height[c] + 1
			}
		}
		height[i] = h
		if h > maxH {
			maxH = h
		}
	}
	waves := make([][]int, maxH+1)
	for i, h := range height {
		waves[h] = append(waves[h], i)
	}
	for _, wave := range waves {
		wave := wave
		// The wave boundary is the cancellation point: a deadline-hit
		// build stops between layer waves, never mid-bucketize.
		if err := par.DoErrCtx(ctx, len(wave), func(j int) error {
			return la.bucketize(wave[j])
		}); err != nil {
			return err
		}
	}
	root := &la.layers[0]
	switch len(root.bucketWeight) {
	case 0:
		la.total = 0
	case 1:
		la.total = root.bucketWeight[0]
	default:
		return fmt.Errorf("access: internal: root layer has %d buckets", len(root.bucketWeight))
	}
	return nil
}

// bucketize groups layer i's tuples into buckets by key value, sorts each
// bucket by the layer variable under the layer direction, and computes
// weights and starts (children of i are already bucketized).
//
// Grouping is columnar: the layer relation's flat storage is sorted in
// place by (key columns ascending, layer value under the direction), and
// buckets are the equal-key runs. No per-row key is materialized; the
// only per-layer allocations are the output arrays themselves.
func (la *Lex) bucketize(i int) error {
	ly := &la.layers[i]
	rel := la.rels[i]
	nk := len(ly.keyVars)
	n := rel.Len()
	arity := nk + 1

	if nk == 0 {
		// Root-shaped layer: one bucket, plain value sort (radix for
		// large inputs), reversed for descending order.
		data := rel.Data()
		tupleidx.SortValues(data)
		if ly.dir == order.Desc {
			for a, b := 0, len(data)-1; a < b; a, b = a+1, b-1 {
				data[a], data[b] = data[b], data[a]
			}
		}
	} else {
		desc := ly.dir == order.Desc
		tupleidx.SortFlat(rel.Data(), arity, func(a, b []values.Value) bool {
			for c := 0; c < nk; c++ {
				if a[c] != b[c] {
					return a[c] < b[c]
				}
			}
			if desc {
				return a[nk] > b[nk]
			}
			return a[nk] < b[nk]
		})
	}

	ly.bucketOf = tupleidx.New(nk, n)
	ly.vals = make([]values.Value, 0, n)
	ly.weights = make([]int64, 0, n)
	ly.starts = make([]int64, 0, n)
	scratch := make([]values.Value, la.maxKey)

	for t := 0; t < n; {
		key := rel.Tuple(t)[:nk]
		end := t + 1
	run:
		for ; end < n; end++ {
			next := rel.Tuple(end)
			for c := 0; c < nk; c++ {
				if next[c] != key[c] {
					break run
				}
			}
		}
		b, added := ly.bucketOf.Insert(key)
		if !added || b != len(ly.bucketStart) {
			return fmt.Errorf("access: internal: duplicate bucket key in sorted layer %d", i)
		}
		ly.bucketStart = append(ly.bucketStart, len(ly.vals))
		bucketSum := checked.NewCounter(0)
		for ; t < end; t++ {
			tu := rel.Tuple(t)
			w, err := la.tupleWeight(i, tu[:nk], tu[nk], scratch)
			if err != nil {
				return err
			}
			ly.starts = append(ly.starts, bucketSum.Value())
			ly.vals = append(ly.vals, tu[nk])
			ly.weights = append(ly.weights, w)
			bucketSum.Add(w)
		}
		if err := bucketSum.Err(); err != nil {
			return fmt.Errorf("access: counting answers: %w", err)
		}
		ly.bucketEnd = append(ly.bucketEnd, len(ly.vals))
		ly.bucketWeight = append(ly.bucketWeight, bucketSum.Value())
	}
	return nil
}

// tupleWeight multiplies the weights of the child buckets selected by a
// tuple of layer i (key values plus the layer-variable value). scratch
// must have capacity for the widest key of any child layer.
func (la *Lex) tupleWeight(i int, key []values.Value, val values.Value, scratch []values.Value) (int64, error) {
	ly := &la.layers[i]
	w := checked.NewCounter(1)
	for _, c := range ly.children {
		child := &la.layers[c]
		b, ok := la.childBucket(child, key, val, scratch)
		if !ok {
			return 0, fmt.Errorf("access: internal: missing child bucket after reduction (layer %d -> %d)", i, c)
		}
		w.Mul(child.bucketWeight[b])
	}
	if err := w.Err(); err != nil {
		return 0, fmt.Errorf("access: counting answers: %w", err)
	}
	return w.Value(), nil
}

// childBucket resolves the bucket of a child layer selected by its
// parent's tuple (key values plus the layer-variable value), gathering
// the child key into scratch via the precomputed keyFrom plan. Performs
// no allocation.
func (la *Lex) childBucket(child *layer, key []values.Value, val values.Value, scratch []values.Value) (int, bool) {
	probe := scratch[:len(child.keyFrom)]
	for j, src := range child.keyFrom {
		if src < 0 {
			probe[j] = val
		} else {
			probe[j] = key[src]
		}
	}
	return child.bucketOf.Lookup(probe)
}
