package access

import (
	"errors"
	"reflect"
	"testing"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// The materialized fallback must agree with the layered structure on
// tractable inputs (where both are available).
func TestMaterializedAgreesWithLayered(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	l := lex(t, q, "x, y, z")
	la, err := BuildLex(q, fig2(), l)
	if err != nil {
		t.Fatal(err)
	}
	m := BuildMaterializedLex(q, fig2(), la.Completed)
	if m.Total() != la.Total() {
		t.Fatalf("totals differ: %d vs %d", m.Total(), la.Total())
	}
	for k := int64(0); k < m.Total(); k++ {
		ma, _ := m.Access(k)
		laA, _ := la.Access(k)
		if !reflect.DeepEqual(proj(q, ma), proj(q, laA)) {
			t.Fatalf("k=%d: %v vs %v", k, proj(q, ma), proj(q, laA))
		}
		inv, err := m.Inverted(ma, la.Completed)
		if err != nil || inv != k {
			t.Fatalf("materialized inverted(%d) = %d, %v", k, inv, err)
		}
	}
	if _, err := m.Access(m.Total()); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("out of bound expected")
	}
}

// On an intractable order (the disruptive-trio case), the fallback is
// the only option and must produce the order the user asked for.
func TestMaterializedTrioOrder(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	l := lex(t, q, "x, z, y")
	if _, err := BuildLex(q, fig2(), l); err == nil {
		t.Fatal("layered build should fail for the trio order")
	}
	m := BuildMaterializedLex(q, fig2(), l)
	// Figure 2(c) ordering.
	want := [][]values.Value{
		{1, 5, 3}, {1, 5, 4}, {1, 2, 5}, {1, 5, 6}, {6, 2, 5},
	}
	for k := range want {
		a, err := m.Access(int64(k))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(proj(q, a), want[k]) {
			t.Fatalf("k=%d: %v, want %v", k, proj(q, a), want[k])
		}
	}
	// Inverted on a non-answer.
	bad := make(order.Answer, q.NumVars())
	if _, err := m.Inverted(bad, l); !errors.Is(err, ErrNotAnAnswer) {
		t.Fatalf("expected ErrNotAnAnswer, got %v", err)
	}
}

func TestMaterializedSum(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	w := order.IdentitySum(q.Head...)
	m := BuildMaterializedSum(q, fig2(), w)
	want := []float64{8, 9, 10, 12, 13}
	for k, expected := range want {
		got, err := m.WeightAt(int64(k))
		if err != nil || got != expected {
			t.Fatalf("weight #%d = %v, %v", k, got, err)
		}
	}
	if _, err := m.WeightAt(5); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("out of bound expected")
	}
}
