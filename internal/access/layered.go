// Package access implements the paper's ranked direct-access structures:
//
//   - the layered join tree (Definition 3.4) constructed per Lemma 3.9,
//   - the ⟨n log n, log n⟩ preprocessing of §3.1 (buckets, subtree counts,
//     start offsets),
//   - Algorithm 1 (direct access by lexicographic order),
//   - Algorithm 2 (inverted access) and the next-answer variant (Remark 3),
//   - partial-order completion (Lemma 4.4),
//   - the FD-extension wrappers of §8.2, and
//   - the ⟨n log n, 1⟩ direct access by SUM of Lemma 5.9.
package access

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/hypergraph"
	"rankedaccess/internal/order"
	"rankedaccess/internal/par"
	"rankedaccess/internal/reduce"
	"rankedaccess/internal/tupleidx"
	"rankedaccess/internal/values"
)

// ErrOutOfBound is returned when the requested index is ≥ the number of
// answers (or negative), matching the paper's "out-of-bound" answer.
var ErrOutOfBound = errors.New("access: index out of bound")

// ErrNotAnAnswer is returned by inverted access when the given tuple is
// not an answer.
var ErrNotAnAnswer = errors.New("access: not an answer")

// ErrIntractable is the sentinel all *IntractableError values unwrap
// to, so callers can test the dichotomy side with errors.Is across
// every layer (engine, shard, serve) without knowing the concrete type.
var ErrIntractable = errors.New("access: intractable under the paper's dichotomy")

// IntractableError reports that the requested (query, order) pair is on
// the intractable side of the paper's dichotomy; it carries the verdict
// with the hardness certificate. It wraps ErrIntractable.
type IntractableError struct {
	Verdict classify.Verdict
}

func (e *IntractableError) Error() string {
	return "access: " + e.Verdict.String()
}

// Unwrap makes errors.Is(err, ErrIntractable) hold for every
// IntractableError.
func (e *IntractableError) Unwrap() error { return ErrIntractable }

// layer is one layer of the layered join tree: a node whose variables are
// keyVars ∪ {v}, with v the layer's lexicographic variable. Its relation
// is partitioned into buckets by keyVars values; inside a bucket, tuples
// are distinct v-values sorted by the layer's direction, each carrying
// the number of answers it contributes in its subtree (weight) and the
// running sum of preceding weights (start).
type layer struct {
	v        cq.VarID
	dir      order.Direction
	keyVars  []cq.VarID
	parent   int
	children []int

	srcNode int // index of the reduce.Full node this layer projects

	vals    []values.Value
	weights []int64
	starts  []int64

	// bucketOf maps a key-variable tuple to its bucket id; bucket ids are
	// dense and aligned with bucketStart/bucketEnd/bucketWeight, and the
	// index's flat key storage holds the per-bucket key values (the old
	// bucketKeys array).
	bucketOf     *tupleidx.Index
	bucketStart  []int
	bucketEnd    []int
	bucketWeight []int64

	// keyFrom gathers this layer's key tuple from the parent's (key, v)
	// pair without searching: keyFrom[j] is the parent key column holding
	// the j-th key value, or -1 when it is the parent's layer variable.
	// nil for the root.
	keyFrom []int
}

// Lex is the direct-access structure for a lexicographic order.
type Lex struct {
	// Query is the query whose answers are accessed (the original one,
	// before any FD extension).
	Query *cq.Query
	// Completed is the full lexicographic order actually realized: the
	// requested order extended per Lemma 4.4 (and, with FDs, reordered
	// per Definition 8.13). Answers are totally ordered by it.
	Completed order.Lex

	layers  []layer
	rels    []*database.Relation // per-layer relations (columns: keyVars..., v)
	total   int64
	numVars int
	maxKey  int // widest key arity across layers (sizes probe scratch)

	bufs sync.Pool // *LexBuf, feeds the allocating convenience APIs

	// boolean handling for queries with no free variables.
	boolean  bool
	boolTrue bool

	// FD-extension plumbing (identity when no FDs are involved).
	project func(order.Answer) order.Answer
	extend  func(order.Answer) (order.Answer, bool)
}

// Total returns |Q(I)|.
func (la *Lex) Total() int64 { return la.total }

// BuildLex constructs the direct-access structure for q over in, ordered
// by the (possibly partial) lexicographic order l. It fails with
// *IntractableError when (q, l) is on the intractable side of
// Theorem 4.1. Preprocessing runs in O(n log n).
func BuildLex(q *cq.Query, in *database.Instance, l order.Lex) (*Lex, error) {
	return BuildLexCtx(context.Background(), q, in, l)
}

// BuildLexCtx is BuildLex with cancellation: the O(n log n)
// preprocessing checks ctx at every bucketize wave boundary and returns
// ctx.Err() instead of finishing a build whose requester already gave
// up. Cancellation granularity is one wave unit (a layer's bucketize),
// never mid-layer.
func BuildLexCtx(ctx context.Context, q *cq.Query, in *database.Instance, l order.Lex) (*Lex, error) {
	if v := classify.DirectAccessLex(q, l); !v.Tractable {
		return nil, &IntractableError{Verdict: v}
	}
	return buildLayered(ctx, q, in, l)
}

// buildLayered builds the structure assuming tractability was already
// established (on q itself or on an FD-extension).
func buildLayered(ctx context.Context, q *cq.Query, in *database.Instance, l order.Lex) (*Lex, error) {
	full, err := reduce.FreeReduce(q, in)
	if err != nil {
		return nil, err
	}
	la := &Lex{Query: q, numVars: q.NumVars()}

	if q.IsBoolean() {
		la.boolean = true
		la.boolTrue = booleanTrue(full)
		if la.boolTrue {
			la.total = 1
		}
		la.Completed = order.Lex{}
		return la, nil
	}

	completed, err := completeOrder(full, l)
	if err != nil {
		return nil, err
	}
	la.Completed = completed

	if err := la.buildTree(full, completed); err != nil {
		return nil, err
	}
	la.semijoinReduce()
	if err := la.computeWeights(ctx); err != nil {
		return nil, err
	}
	return la, nil
}

// booleanTrue evaluates a Boolean full query: true iff the join of the
// (already consistent-by-construction?) nodes is non-empty. The nodes of
// a Boolean reduction have no variables, so the join is non-empty iff
// every node relation is non-empty.
func booleanTrue(full *reduce.Full) bool {
	for _, n := range full.Nodes {
		if n.Rel.Len() == 0 {
			return false
		}
	}
	return true
}

// completeOrder extends a partial order to all free variables with no
// disruptive trio (Lemma 4.4), preserving requested directions and
// defaulting appended variables to ascending.
func completeOrder(full *reduce.Full, l order.Lex) (order.Lex, error) {
	h := full.Hypergraph()
	prefix := make([]int, len(l.Entries))
	dirs := make(map[cq.VarID]order.Direction, len(l.Entries))
	for i, e := range l.Entries {
		prefix[i] = int(e.Var)
		dirs[e.Var] = e.Dir
	}
	var all hypergraph.VSet
	for _, v := range full.FreeVars() {
		all |= hypergraph.Bit(int(v))
	}
	ids, ok := h.CompleteOrder(prefix, all)
	if !ok {
		return order.Lex{}, fmt.Errorf("access: internal: no trio-free completion exists despite tractable classification")
	}
	out := order.Lex{Entries: make([]order.LexEntry, len(ids))}
	for i, id := range ids {
		v := cq.VarID(id)
		out.Entries[i] = order.LexEntry{Var: v, Dir: dirs[v]}
	}
	return out, nil
}

// buildTree realizes Lemma 3.9: one layer per completed-order position,
// each layer's node being the maximal prefix-restricted hyperedge
// containing the layer variable, attached to an earlier layer containing
// its key variables.
func (la *Lex) buildTree(full *reduce.Full, completed order.Lex) error {
	f := len(completed.Entries)
	nodeSets := make([]hypergraph.VSet, len(full.Nodes))
	for i, n := range full.Nodes {
		nodeSets[i] = n.VarSet()
	}
	lexPos := make(map[cq.VarID]int, f)
	for i, e := range completed.Entries {
		lexPos[e.Var] = i
	}

	var prefix hypergraph.VSet
	layerSets := make([]hypergraph.VSet, 0, f)
	for i := 0; i < f; i++ {
		entry := completed.Entries[i]
		vi := int(entry.Var)
		prefix |= hypergraph.Bit(vi)

		// Candidate prefix-restricted hyperedges containing v_i, and the
		// maximal one among them (exists by the absence of trios).
		best := hypergraph.VSet(0)
		bestNode := -1
		for idx, s := range nodeSets {
			if !hypergraph.Has(s, vi) {
				continue
			}
			cand := s & prefix
			if hypergraph.Subset(best, cand) {
				best = cand
				bestNode = idx
			}
		}
		if bestNode < 0 {
			return fmt.Errorf("access: internal: free variable %s in no node", la.Query.VarName(entry.Var))
		}
		// Verify maximality (the Helly argument of Lemma 3.9 guarantees
		// it; check defensively).
		for _, s := range nodeSets {
			if hypergraph.Has(s, vi) && !hypergraph.Subset(s&prefix, best) {
				return fmt.Errorf("access: internal: no maximal layer hyperedge at %s (trio slipped through?)",
					la.Query.VarName(entry.Var))
			}
		}

		// Parent: earliest previous layer containing best \ {v_i}.
		parent := -1
		need := best &^ hypergraph.Bit(vi)
		for j := 0; j < i; j++ {
			if hypergraph.Subset(need, layerSets[j]) {
				parent = j
				break
			}
		}
		if i > 0 && parent < 0 {
			return fmt.Errorf("access: internal: no parent layer for %s", la.Query.VarName(entry.Var))
		}

		// Key variables: best minus v_i, ordered by lexicographic position.
		var keyVars []cq.VarID
		for _, u := range hypergraph.Members(need) {
			keyVars = append(keyVars, cq.VarID(u))
		}
		sort.Slice(keyVars, func(a, b int) bool { return lexPos[keyVars[a]] < lexPos[keyVars[b]] })

		la.layers = append(la.layers, layer{
			v: entry.Var, dir: entry.Dir, keyVars: keyVars,
			parent: parent, srcNode: bestNode,
		})
		layerSets = append(layerSets, best)
		if parent >= 0 {
			la.layers[parent].children = append(la.layers[parent].children, i)
		}
	}

	// Inclusion equivalence: every full node must fit inside some layer.
	for idx, s := range nodeSets {
		found := false
		for _, ls := range layerSets {
			if hypergraph.Subset(s, ls) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("access: internal: node %d not covered by any layer", idx)
		}
	}

	// Materialize layer relations: project the source node, then enforce
	// every full node's constraint on some covering layer.
	la.rels = make([]*database.Relation, f)
	// Each layer projects its own source node into a fresh relation —
	// independent units, fanned out over bounded workers.
	par.Do(f, func(i int) {
		ly := &la.layers[i]
		src := full.Nodes[ly.srcNode]
		cols := make([]int, 0, len(ly.keyVars)+1)
		for _, u := range ly.keyVars {
			cols = append(cols, src.Col(u))
		}
		cols = append(cols, src.Col(ly.v))
		la.rels[i] = src.Rel.Project(cols).Dedup()
	})
	for idx, n := range full.Nodes {
		// Pick the first covering layer and semijoin it with the node.
		for i := range la.layers {
			if hypergraph.Subset(nodeSets[idx], layerSets[i]) {
				lCols, nCols := la.layerCols(i, n)
				la.rels[i] = la.rels[i].Semijoin(lCols, n.Rel, nCols)
				break
			}
		}
	}

	// Precompute the key gather plan of every non-root layer: each child
	// key variable is either the parent's layer variable (-1) or sits at
	// a fixed parent key column. Resolving this once keeps the per-access
	// child-bucket probes search-free.
	for i := 1; i < f; i++ {
		ly := &la.layers[i]
		parent := &la.layers[ly.parent]
		ly.keyFrom = make([]int, len(ly.keyVars))
		for j, u := range ly.keyVars {
			ly.keyFrom[j] = -1
			if u == parent.v {
				continue
			}
			found := false
			for c, pu := range parent.keyVars {
				if pu == u {
					ly.keyFrom[j] = c
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("access: internal: child key variable %s not available from parent layer",
					la.Query.VarName(u))
			}
		}
	}
	for i := range la.layers {
		if nk := len(la.layers[i].keyVars); nk > la.maxKey {
			la.maxKey = nk
		}
	}
	return nil
}

// layerVars returns the column variables of layer i's relation:
// keyVars..., v.
func (la *Lex) layerVars(i int) []cq.VarID {
	ly := &la.layers[i]
	out := make([]cq.VarID, 0, len(ly.keyVars)+1)
	out = append(out, ly.keyVars...)
	out = append(out, ly.v)
	return out
}

// layerCols aligns the columns of layer i with the columns of node n for
// n's variables (n's vars must all be inside the layer).
func (la *Lex) layerCols(i int, n *reduce.Node) (layerCols, nodeCols []int) {
	vars := la.layerVars(i)
	pos := make(map[cq.VarID]int, len(vars))
	for c, u := range vars {
		pos[u] = c
	}
	for c, u := range n.Vars {
		layerCols = append(layerCols, pos[u])
		nodeCols = append(nodeCols, c)
	}
	return
}
