package access

import (
	"fmt"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
	"rankedaccess/internal/tupleidx"
	"rankedaccess/internal/values"
)

// This file exports the built structures' flat arrays for snapshot
// persistence and reconstructs structures from persisted (possibly
// memory-mapped) arrays without re-running preprocessing: a warm start
// points every layer's vals/weights/starts/bucket columns — and the
// bucket index's key and table buffers — at the mapped file and is
// immediately probe-ready.
//
// The FromParts constructors validate the structural invariants the
// probe algorithms rely on for memory safety and termination (shapes,
// index bounds, zero start offsets, strictly positive weights); value-
// level correctness is the snapshot checksums' job.

// LexLayerParts is the flat state of one layer of a built Lex. Children
// and the child key-gather plans are not part of it: they are
// recomputed from Parent and KeyVars, exactly as the builder derived
// them.
type LexLayerParts struct {
	Var     cq.VarID
	Desc    bool
	Parent  int
	KeyVars []cq.VarID

	Vals    []values.Value
	Weights []int64
	Starts  []int64

	Buckets      int
	BucketStart  []int
	BucketEnd    []int
	BucketWeight []int64
	BucketKeys   []values.Value
	BucketTable  []int32
}

// LexParts is the flat state of a built Lex structure.
type LexParts struct {
	Completed order.Lex
	Total     int64
	NumVars   int
	Boolean   bool
	BoolTrue  bool
	Layers    []LexLayerParts
}

// Parts exports the structure's flat arrays (views, not copies; the
// caller must not mutate them). ok is false when the structure carries
// FD-extension closures, which cannot be persisted — callers should
// rebuild such structures from their spec instead.
func (la *Lex) Parts() (*LexParts, bool) {
	if la.project != nil || la.extend != nil {
		return nil, false
	}
	p := &LexParts{
		Completed: la.Completed,
		Total:     la.total,
		NumVars:   la.numVars,
		Boolean:   la.boolean,
		BoolTrue:  la.boolTrue,
		Layers:    make([]LexLayerParts, len(la.layers)),
	}
	for i := range la.layers {
		ly := &la.layers[i]
		p.Layers[i] = LexLayerParts{
			Var: ly.v, Desc: ly.dir == order.Desc, Parent: ly.parent, KeyVars: ly.keyVars,
			Vals: ly.vals, Weights: ly.weights, Starts: ly.starts,
			Buckets: ly.bucketOf.Len(), BucketStart: ly.bucketStart, BucketEnd: ly.bucketEnd,
			BucketWeight: ly.bucketWeight, BucketKeys: ly.bucketOf.FlatKeys(), BucketTable: ly.bucketOf.Table(),
		}
	}
	return p, true
}

// LexFromParts reconstructs a Lex for q from exported parts. The part
// slices are aliased, so they may point into a mapped snapshot; the
// returned structure is immutable, as all built structures are.
func LexFromParts(q *cq.Query, p *LexParts) (*Lex, error) {
	if p.NumVars != q.NumVars() {
		return nil, fmt.Errorf("access: parts carry %d variables, query has %d", p.NumVars, q.NumVars())
	}
	la := &Lex{
		Query: q, Completed: p.Completed, total: p.Total, numVars: p.NumVars,
		boolean: p.Boolean, boolTrue: p.BoolTrue,
	}
	if p.Boolean {
		if len(p.Layers) != 0 {
			return nil, fmt.Errorf("access: boolean structure with %d layers", len(p.Layers))
		}
		want := int64(0)
		if p.BoolTrue {
			want = 1
		}
		if p.Total != want {
			return nil, fmt.Errorf("access: boolean structure with total %d", p.Total)
		}
		return la, nil
	}
	f := len(p.Layers)
	if len(p.Completed.Entries) != f {
		return nil, fmt.Errorf("access: %d layers vs %d completed-order entries", f, len(p.Completed.Entries))
	}
	la.layers = make([]layer, f)
	for i := range p.Layers {
		if err := layerFromParts(&la.layers[i], i, &p.Layers[i], p.NumVars); err != nil {
			return nil, err
		}
		if nk := len(la.layers[i].keyVars); nk > la.maxKey {
			la.maxKey = nk
		}
	}
	// Recompute children and the child key-gather plans from the parent
	// pointers, as the builder does.
	for i := 1; i < f; i++ {
		ly := &la.layers[i]
		parent := &la.layers[ly.parent]
		parent.children = append(parent.children, i)
		ly.keyFrom = make([]int, len(ly.keyVars))
		for j, u := range ly.keyVars {
			ly.keyFrom[j] = -1
			if u == parent.v {
				continue
			}
			found := false
			for c, pu := range parent.keyVars {
				if pu == u {
					ly.keyFrom[j] = c
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("access: layer %d key variable not available from parent layer", i)
			}
		}
	}
	// The root must hold the whole count in a single bucket (or be empty
	// along with the answer set).
	root := &la.layers[0]
	switch len(root.bucketWeight) {
	case 0:
		if p.Total != 0 {
			return nil, fmt.Errorf("access: empty root layer with total %d", p.Total)
		}
	case 1:
		if root.bucketWeight[0] != p.Total {
			return nil, fmt.Errorf("access: root weight %d vs total %d", root.bucketWeight[0], p.Total)
		}
	default:
		return nil, fmt.Errorf("access: root layer has %d buckets", len(root.bucketWeight))
	}
	return la, nil
}

// layerFromParts validates and installs one layer. The checks mirror
// what bucketize guarantees: per-bucket ranges tile [0, n), starts
// begin at 0 and advance by strictly positive weights, and the bucket
// weight closes the sum — which is exactly what keeps the access
// descent's binary searches and divisions safe.
func layerFromParts(ly *layer, i int, lp *LexLayerParts, numVars int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("access: layer %d: %s", i, fmt.Sprintf(format, args...))
	}
	if int(lp.Var) < 0 || int(lp.Var) >= numVars {
		return fail("variable %d out of range", lp.Var)
	}
	for _, u := range lp.KeyVars {
		if int(u) < 0 || int(u) >= numVars {
			return fail("key variable %d out of range", u)
		}
	}
	if (i == 0) != (lp.Parent == -1) || lp.Parent >= i || lp.Parent < -1 {
		return fail("bad parent %d", lp.Parent)
	}
	n := len(lp.Vals)
	if len(lp.Weights) != n || len(lp.Starts) != n {
		return fail("column lengths %d/%d/%d disagree", n, len(lp.Weights), len(lp.Starts))
	}
	b := lp.Buckets
	if len(lp.BucketStart) != b || len(lp.BucketEnd) != b || len(lp.BucketWeight) != b {
		return fail("bucket column lengths disagree")
	}
	idx, err := tupleidx.FromParts(len(lp.KeyVars), b, lp.BucketKeys, lp.BucketTable)
	if err != nil {
		return fail("%v", err)
	}
	prevEnd := 0
	for j := 0; j < b; j++ {
		lo, hi := lp.BucketStart[j], lp.BucketEnd[j]
		if lo != prevEnd || hi < lo || hi > n {
			return fail("bucket %d spans [%d, %d) outside the expected run", j, lo, hi)
		}
		prevEnd = hi
		if hi == lo {
			return fail("bucket %d is empty", j)
		}
		sum := int64(0)
		for t := lo; t < hi; t++ {
			if lp.Starts[t] != sum {
				return fail("start offset %d of tuple %d breaks the prefix sum", lp.Starts[t], t)
			}
			if lp.Weights[t] <= 0 {
				return fail("non-positive weight %d of tuple %d", lp.Weights[t], t)
			}
			sum += lp.Weights[t]
			if sum < 0 {
				return fail("weight overflow in bucket %d", j)
			}
		}
		if lp.BucketWeight[j] != sum {
			return fail("bucket %d weight %d, tuples sum to %d", j, lp.BucketWeight[j], sum)
		}
	}
	if prevEnd != n {
		return fail("buckets cover %d of %d tuples", prevEnd, n)
	}
	dir := order.Asc
	if lp.Desc {
		dir = order.Desc
	}
	*ly = layer{
		v: lp.Var, dir: dir, keyVars: lp.KeyVars, parent: lp.Parent,
		vals: lp.Vals, weights: lp.Weights, starts: lp.Starts,
		bucketOf: idx, bucketStart: lp.BucketStart, bucketEnd: lp.BucketEnd,
		bucketWeight: lp.BucketWeight,
	}
	return nil
}

// SumParts is the flat state of a built Sum structure: the answers in
// rank order, row-major at stride NumVars, plus the per-answer weights.
type SumParts struct {
	NumVars int
	Flat    []values.Value
	Weights []float64
}

// Parts exports the structure's answers as one flat array (copied: the
// built answers alias construction-order backing). ok is false when the
// structure carries an FD projection closure.
func (s *Sum) Parts() (*SumParts, bool) {
	if s.project != nil {
		return nil, false
	}
	nv := s.Query.NumVars()
	flat := make([]values.Value, 0, len(s.answers)*nv)
	for _, a := range s.answers {
		flat = append(flat, a...)
	}
	return &SumParts{NumVars: nv, Flat: flat, Weights: s.weights}, true
}

// SumFromParts reconstructs a Sum for q under the weight order w. The
// flat answer array is aliased and sliced per answer.
func SumFromParts(q *cq.Query, w order.Sum, p *SumParts) (*Sum, error) {
	answers, err := sliceAnswers(q, p.NumVars, p.Flat)
	if err != nil {
		return nil, err
	}
	if len(p.Weights) != len(answers) {
		return nil, fmt.Errorf("access: %d weights for %d answers", len(p.Weights), len(answers))
	}
	for i := 1; i < len(p.Weights); i++ {
		if p.Weights[i] < p.Weights[i-1] {
			return nil, fmt.Errorf("access: answer weights not sorted at rank %d", i)
		}
	}
	return &Sum{Query: q, Weights: w, answers: answers, weights: p.Weights}, nil
}

// MatParts is SumParts for materialized structures; Weights is nil for
// lex materializations.
type MatParts struct {
	NumVars int
	Flat    []values.Value
	Weights []float64
}

// Parts exports the materialized answers as one flat array (copied).
func (m *Materialized) Parts() *MatParts {
	nv := m.Query.NumVars()
	flat := make([]values.Value, 0, len(m.answers)*nv)
	for _, a := range m.answers {
		flat = append(flat, a...)
	}
	return &MatParts{NumVars: nv, Flat: flat, Weights: m.weights}
}

// MatFromParts reconstructs a Materialized for q.
func MatFromParts(q *cq.Query, p *MatParts) (*Materialized, error) {
	answers, err := sliceAnswers(q, p.NumVars, p.Flat)
	if err != nil {
		return nil, err
	}
	if p.Weights != nil && len(p.Weights) != len(answers) {
		return nil, fmt.Errorf("access: %d weights for %d answers", len(p.Weights), len(answers))
	}
	return &Materialized{Query: q, answers: answers, weights: p.Weights}, nil
}

// sliceAnswers carves a flat row-major answer array into per-answer
// views.
func sliceAnswers(q *cq.Query, numVars int, flat []values.Value) ([]order.Answer, error) {
	if numVars != q.NumVars() {
		return nil, fmt.Errorf("access: parts carry %d variables, query has %d", numVars, q.NumVars())
	}
	if numVars == 0 {
		if len(flat) != 0 {
			return nil, fmt.Errorf("access: %d flat values for a variable-free query", len(flat))
		}
		return nil, nil
	}
	if len(flat)%numVars != 0 {
		return nil, fmt.Errorf("access: %d flat values do not tile %d variables", len(flat), numVars)
	}
	n := len(flat) / numVars
	answers := make([]order.Answer, n)
	for i := 0; i < n; i++ {
		answers[i] = flat[i*numVars : (i+1)*numVars : (i+1)*numVars]
	}
	return answers, nil
}
