package access

import (
	"fmt"
	"sort"

	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// LexBuf holds the scratch state of one access probe, so steady-state
// probes allocate nothing. A LexBuf may be reused across any number of
// calls against the structure that created it, but not concurrently:
// use one LexBuf per goroutine (or the pooling convenience APIs).
type LexBuf struct {
	ans    []values.Value
	bucket []int
	key    []values.Value
}

// NewBuf returns a probe buffer sized for this structure.
func (la *Lex) NewBuf() *LexBuf {
	return &LexBuf{
		ans:    make([]values.Value, la.numVars),
		bucket: make([]int, len(la.layers)),
		key:    make([]values.Value, la.maxKey),
	}
}

// getBuf/putBuf feed the allocating convenience wrappers from a pool so
// even Access/Rank skip the scratch allocations in steady state.
func (la *Lex) getBuf() *LexBuf {
	if b, ok := la.bufs.Get().(*LexBuf); ok {
		return b
	}
	return la.NewBuf()
}

func (la *Lex) putBuf(b *LexBuf) { la.bufs.Put(b) }

// Access returns the k-th answer (0-based) in the completed
// lexicographic order, in O(log n) time (Algorithm 1). The returned
// answer is freshly allocated; use AccessInto to reuse a caller buffer.
func (la *Lex) Access(k int64) (order.Answer, error) {
	buf := la.getBuf()
	a, err := la.AccessInto(buf, k)
	if err != nil {
		la.putBuf(buf)
		return nil, err
	}
	out := append(order.Answer(nil), a...)
	la.putBuf(buf)
	return out, nil
}

// AccessInto is Access writing into buf: the returned answer aliases
// buf's storage and is valid until buf's next use. Steady-state calls
// perform zero allocations (FD-extended structures excepted: their
// answer projection still copies).
func (la *Lex) AccessInto(buf *LexBuf, k int64) (order.Answer, error) {
	if la.boolean {
		if la.boolTrue && k == 0 {
			ans := buf.ans[:la.numVars]
			clear(ans)
			return la.output(ans), nil
		}
		return nil, ErrOutOfBound
	}
	if k < 0 || k >= la.total {
		return nil, ErrOutOfBound
	}
	f := len(la.layers)
	bucket := buf.bucket[:f]
	bucket[0] = 0
	factor := la.total
	ans := buf.ans[:la.numVars]
	clear(ans) // existential positions must read as zero, as before
	for i := 0; i < f; i++ {
		ly := &la.layers[i]
		b := bucket[i]
		factor /= ly.bucketWeight[b]
		lo, hi := ly.bucketStart[b], ly.bucketEnd[b]
		// Largest tuple index t in [lo, hi) with starts[t]*factor ≤ k.
		t := lo + sort.Search(hi-lo, func(j int) bool {
			return ly.starts[lo+j]*factor > k
		}) - 1
		if t < lo {
			return nil, fmt.Errorf("access: internal: binary search fell off bucket")
		}
		k -= ly.starts[t] * factor
		ans[ly.v] = ly.vals[t]
		for _, c := range ly.children {
			child := &la.layers[c]
			cb, ok := la.childBucket(child, ly.bucketOf.Key(b), ly.vals[t], buf.key)
			if !ok {
				return nil, fmt.Errorf("access: internal: missing child bucket during access")
			}
			bucket[c] = cb
			factor *= child.bucketWeight[cb]
		}
	}
	if k != 0 {
		return nil, fmt.Errorf("access: internal: residual index %d after descent", k)
	}
	return la.output(ans), nil
}

// AppendTuple appends the head projection of the k-th answer to dst and
// returns the extended slice, allocating only when dst lacks capacity.
func (la *Lex) AppendTuple(dst []values.Value, k int64) ([]values.Value, error) {
	buf := la.getBuf()
	a, err := la.AccessInto(buf, k)
	if err != nil {
		la.putBuf(buf)
		return dst, err
	}
	for _, v := range la.Query.Head {
		dst = append(dst, a[v])
	}
	la.putBuf(buf)
	return dst, nil
}

// AppendRange appends the head projections of answers k0 ≤ k < k1 to
// dst, reusing one probe buffer for the whole range so the per-answer
// overhead is a single descent (no allocation beyond dst growth).
func (la *Lex) AppendRange(dst []values.Value, k0, k1 int64) ([]values.Value, error) {
	buf := la.getBuf()
	defer la.putBuf(buf)
	for k := k0; k < k1; k++ {
		a, err := la.AccessInto(buf, k)
		if err != nil {
			return dst, err
		}
		for _, v := range la.Query.Head {
			dst = append(dst, a[v])
		}
	}
	return dst, nil
}

// output applies the FD projection (identity when no FDs are in play).
func (la *Lex) output(a order.Answer) order.Answer {
	if la.project != nil {
		return la.project(a)
	}
	return a
}

// input applies the FD answer-extension (identity without FDs). The bool
// is false when the given tuple cannot be extended (hence is not an
// answer and no answer shares its projection).
func (la *Lex) input(a order.Answer) (order.Answer, bool) {
	if la.extend != nil {
		return la.extend(a)
	}
	return a, true
}

// Rank returns the number of answers strictly preceding the given tuple
// in the completed order, and whether the tuple is itself an answer. The
// tuple is VarID-indexed and must assign every free variable of Query.
// Runs in O(log n).
func (la *Lex) Rank(a order.Answer) (int64, bool) {
	if la.boolean {
		return 0, la.boolTrue
	}
	ext, ok := la.input(a)
	if !ok {
		// The tuple disagrees with the FDs, so it is not an answer, and
		// its rank cannot be resolved below a missing implied value; rank
		// counts answers preceding it on the original-order prefix only.
		ext = a
	}
	if la.total == 0 {
		return 0, false
	}
	f := len(la.layers)
	buf := la.getBuf()
	defer la.putBuf(buf)
	bucket := buf.bucket[:f]
	bucket[0] = 0
	factor := la.total
	var k int64
	exact := ok
	for i := 0; i < f; i++ {
		ly := &la.layers[i]
		b := bucket[i]
		factor /= ly.bucketWeight[b]
		lo, hi := ly.bucketStart[b], ly.bucketEnd[b]
		target := ext[ly.v]
		// Binary search for target under the layer direction.
		t := lo + sort.Search(hi-lo, func(j int) bool {
			if ly.dir == order.Desc {
				return ly.vals[lo+j] <= target
			}
			return ly.vals[lo+j] >= target
		})
		if t == hi || ly.vals[t] != target {
			// No tuple with this value: everything before position t
			// precedes the target; nothing deeper matches.
			if t == hi {
				k += ly.bucketWeight[b] * factor
			} else {
				k += ly.starts[t] * factor
			}
			return k, false
		}
		k += ly.starts[t] * factor
		for _, c := range ly.children {
			child := &la.layers[c]
			cb, okc := la.childBucket(child, ly.bucketOf.Key(b), ly.vals[t], buf.key)
			if !okc {
				return k, false
			}
			bucket[c] = cb
			factor *= child.bucketWeight[cb]
		}
	}
	return k, exact
}

// Inverted implements Algorithm 2: given an answer, return its index in
// the completed order; ErrNotAnAnswer if the tuple is not an answer.
func (la *Lex) Inverted(a order.Answer) (int64, error) {
	k, exact := la.Rank(a)
	if !exact {
		return 0, ErrNotAnAnswer
	}
	return k, nil
}

// NextGE returns the index of the first answer that is ≥ the given tuple
// in the completed order (Remark 3's "next answer" access); if every
// answer precedes the tuple, it returns ErrOutOfBound.
func (la *Lex) NextGE(a order.Answer) (int64, error) {
	k, _ := la.Rank(a)
	if k >= la.total {
		return 0, ErrOutOfBound
	}
	return k, nil
}

// LayerCount returns the number of layers (the number of free variables
// of the completed order); 0 for Boolean queries.
func (la *Lex) LayerCount() int { return len(la.layers) }

// BucketDump describes one tuple of one layer, for inspection and for
// reproducing Figure 4.
type BucketDump struct {
	Key    []values.Value
	Value  values.Value
	Weight int64
	Start  int64
}

// DumpLayer returns the per-tuple weight/start table of a layer in
// storage order, reproducing the annotations of Figure 4.
func (la *Lex) DumpLayer(i int) []BucketDump {
	ly := &la.layers[i]
	out := make([]BucketDump, 0, len(ly.vals))
	for b := range ly.bucketStart {
		for t := ly.bucketStart[b]; t < ly.bucketEnd[b]; t++ {
			out = append(out, BucketDump{
				Key:    ly.bucketOf.Key(b),
				Value:  ly.vals[t],
				Weight: ly.weights[t],
				Start:  ly.starts[t],
			})
		}
	}
	return out
}

// LayerVar returns the lexicographic variable of layer i.
func (la *Lex) LayerVar(i int) values.Value { return values.Value(la.layers[i].v) }

// LayerParent returns the parent layer of layer i (-1 for the root).
func (la *Lex) LayerParent(i int) int { return la.layers[i].parent }
