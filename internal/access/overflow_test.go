package access

import (
	"strings"
	"testing"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// A Cartesian product of four 2^16-value unary relations has 2^64
// answers: the counting DP must fail loudly instead of wrapping.
func TestCountOverflowDetected(t *testing.T) {
	q := cq.MustParse("Q(a, b, c, d) :- A(a), B(b), C(c), D(d)")
	in := database.NewInstance()
	for _, rel := range []string{"A", "B", "C", "D"} {
		r := database.NewRelation(1)
		for v := values.Value(0); v < 1<<16; v++ {
			r.Append(v)
		}
		in.SetRelation(rel, r)
	}
	l, err := order.ParseLex(q, "a, b, c, d")
	if err != nil {
		t.Fatal(err)
	}
	_, err = BuildLex(q, in, l)
	if err == nil {
		t.Fatal("2^64 answers must overflow the int64 counter")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("expected an overflow error, got: %v", err)
	}
}

// Just below the edge: 2^60 answers count fine and access works.
func TestCountNearOverflowOK(t *testing.T) {
	q := cq.MustParse("Q(a, b, c, d) :- A(a), B(b), C(c), D(d)")
	in := database.NewInstance()
	for _, rel := range []string{"A", "B", "C", "D"} {
		r := database.NewRelation(1)
		for v := values.Value(0); v < 1<<15; v++ {
			r.Append(v)
		}
		in.SetRelation(rel, r)
	}
	l, _ := order.ParseLex(q, "a, b, c, d")
	la, err := BuildLex(q, in, l)
	if err != nil {
		t.Fatal(err)
	}
	if la.Total() != 1<<60 {
		t.Fatalf("total = %d, want 2^60", la.Total())
	}
	// Access deep into the structure.
	k := int64(1)<<60 - 12345
	a, err := la.Access(k)
	if err != nil {
		t.Fatal(err)
	}
	if inv, err := la.Inverted(a); err != nil || inv != k {
		t.Fatalf("Inverted = %d, %v", inv, err)
	}
}

// Repeated variables inside an atom flow through the whole access stack.
func TestRepeatedVariableAccess(t *testing.T) {
	q := cq.MustParse("Q(x, y) :- R(x, x, y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 1, 7)
	in.AddRow("R", 1, 2, 8) // filtered: x positions disagree
	in.AddRow("R", 3, 3, 9)
	l, _ := order.ParseLex(q, "x, y")
	la, err := BuildLex(q, in, l)
	if err != nil {
		t.Fatal(err)
	}
	if la.Total() != 2 {
		t.Fatalf("total = %d, want 2", la.Total())
	}
	a, _ := la.Access(1)
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	if a[x] != 3 || a[y] != 9 {
		t.Fatalf("answer = (%d, %d)", a[x], a[y])
	}
}
