package access

import (
	"math/rand"
	"testing"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// twoPathInstance builds a random 2-path instance; the overlay tests
// edit its answer set and check every merged probe against a naive
// reference merge.
func twoPathInstance(rng *rand.Rand, n, dom int) (*cq.Query, *database.Instance) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	in := database.NewInstance()
	for i := 0; i < n; i++ {
		in.AddRow("R", values.Value(rng.Intn(dom)), values.Value(rng.Intn(dom)))
		in.AddRow("S", values.Value(rng.Intn(dom)), values.Value(rng.Intn(dom)))
	}
	return q, in
}

// refMerge applies adds/dels to the base answer list and re-sorts with
// the overlay's comparator.
func refMerge(base []order.Answer, adds, dels []order.Answer, cmp func(a, b order.Answer) int) []order.Answer {
	out := make([]order.Answer, 0, len(base)+len(adds))
	for _, a := range base {
		deleted := false
		for _, d := range dels {
			if cmp(a, d) == 0 {
				deleted = true
				break
			}
		}
		if !deleted {
			out = append(out, a)
		}
	}
	out = append(out, adds...)
	// Insertion sort suffices for test sizes and keeps the comparator
	// authoritative.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && cmp(out[j], out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// checkOverlay probes every merged position and rank against the
// reference.
func checkOverlay(t *testing.T, q *cq.Query, o *Overlay, want []order.Answer, cmp func(a, b order.Answer) int) {
	t.Helper()
	if o.Total() != int64(len(want)) {
		t.Fatalf("merged total %d, want %d", o.Total(), len(want))
	}
	var flat []values.Value
	for k := range want {
		got, err := o.Access(int64(k))
		if err != nil {
			t.Fatalf("Access(%d): %v", k, err)
		}
		if cmp(got, want[k]) != 0 {
			t.Fatalf("Access(%d) = %v, want %v", k, got, want[k])
		}
		r, member := o.Rank(want[k])
		if r != int64(k) || !member {
			t.Fatalf("Rank(answer %d) = (%d, %v)", k, r, member)
		}
		var one []values.Value
		one, err = o.AppendTuple(one, int64(k))
		if err != nil {
			t.Fatalf("AppendTuple(%d): %v", k, err)
		}
		for i, v := range q.Head {
			if one[i] != want[k][v] {
				t.Fatalf("AppendTuple(%d) col %d = %d, want %d", k, i, one[i], want[k][v])
			}
		}
	}
	var err error
	flat, err = o.AppendRange(flat[:0], 0, o.Total())
	if err != nil {
		t.Fatalf("AppendRange: %v", err)
	}
	w := len(q.Head)
	if len(flat) != len(want)*w {
		t.Fatalf("AppendRange length %d, want %d", len(flat), len(want)*w)
	}
	for k := range want {
		for i, v := range q.Head {
			if flat[k*w+i] != want[k][v] {
				t.Fatalf("AppendRange pos %d col %d = %d, want %d", k, i, flat[k*w+i], want[k][v])
			}
		}
	}
	if _, err := o.Access(o.Total()); err == nil {
		t.Fatalf("Access(Total) should be out of bound")
	}
}

// editSets draws a random set of deletions from the base answers and a
// random set of additions guaranteed absent from it.
func editSets(rng *rand.Rand, q *cq.Query, base []order.Answer, cmp func(a, b order.Answer) int) (adds, dels []order.Answer) {
	inBase := func(a order.Answer) bool {
		for _, b := range base {
			if cmp(a, b) == 0 {
				return true
			}
		}
		return false
	}
	for _, a := range base {
		if rng.Intn(4) == 0 {
			dels = append(dels, a)
		}
	}
	for len(adds) < 5 {
		a := make(order.Answer, q.NumVars())
		for _, v := range q.Head {
			a[v] = values.Value(100 + rng.Intn(40)) // outside the data domain half the time
		}
		dup := false
		for _, p := range adds {
			if cmp(a, p) == 0 {
				dup = true
				break
			}
		}
		if !dup && !inBase(a) {
			adds = append(adds, a)
		}
	}
	return adds, dels
}

func TestOverlayLex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		q, in := twoPathInstance(rng, 60, 12)
		l, err := order.ParseLex(q, "y, x desc")
		if err != nil {
			t.Fatal(err)
		}
		la, err := BuildLex(q, in, l)
		if err != nil {
			t.Fatal(err)
		}
		b, ok := BaseOfLex(la)
		if !ok {
			t.Fatal("lex base refused")
		}
		var base []order.Answer
		for k := int64(0); k < la.Total(); k++ {
			a, err := la.Access(k)
			if err != nil {
				t.Fatal(err)
			}
			base = append(base, a)
		}
		adds, dels := editSets(rng, q, base, b.cmp)
		o, err := NewOverlay(b, adds, dels)
		if err != nil {
			t.Fatal(err)
		}
		checkOverlay(t, q, o, refMerge(base, adds, dels, b.cmp), b.cmp)
	}
}

func TestOverlayMatLex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		_, in := twoPathInstance(rng, 40, 8)
		// Project to (x, z): existential join variable, materialized
		// fallback territory for many orders; force the fallback.
		qp := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
		l, err := order.ParseLex(qp, "z desc")
		if err != nil {
			t.Fatal(err)
		}
		m := BuildMaterializedLex(qp, in, l)
		b := BaseOfMatLex(m, l)
		var base []order.Answer
		for k := int64(0); k < m.Total(); k++ {
			a, err := m.Access(k)
			if err != nil {
				t.Fatal(err)
			}
			base = append(base, a)
		}
		adds, dels := editSets(rng, qp, base, b.cmp)
		o, err := NewOverlay(b, adds, dels)
		if err != nil {
			t.Fatal(err)
		}
		checkOverlay(t, qp, o, refMerge(base, adds, dels, b.cmp), b.cmp)
	}
}

func TestOverlaySum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := cq.MustParse("Q(x, y) :- R(x, y)")
	in := database.NewInstance()
	seen := map[[2]values.Value]bool{}
	for len(seen) < 50 {
		k := [2]values.Value{values.Value(rng.Intn(30)), values.Value(rng.Intn(30))}
		if !seen[k] {
			seen[k] = true
			in.AddRow("R", k[0], k[1])
		}
	}
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	w := order.IdentitySum(x, y)
	s, err := BuildSum(q, in, w)
	if err != nil {
		t.Fatal(err)
	}
	b := BaseOfSum(s)
	var base []order.Answer
	for k := int64(0); k < s.Total(); k++ {
		a, err := s.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		base = append(base, a)
	}
	adds, dels := editSets(rng, q, base, b.cmp)
	o, err := NewOverlay(b, adds, dels)
	if err != nil {
		t.Fatal(err)
	}
	checkOverlay(t, q, o, refMerge(base, adds, dels, b.cmp), b.cmp)
}

func TestOverlayRejectsBadEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q, in := twoPathInstance(rng, 30, 6)
	l, err := order.ParseLex(q, "x")
	if err != nil {
		t.Fatal(err)
	}
	la, err := BuildLex(q, in, l)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := BaseOfLex(la)
	if !ok {
		t.Fatal("lex base refused")
	}
	a0, err := la.Access(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOverlay(b, []order.Answer{a0}, nil); err == nil {
		t.Fatal("adding an existing answer should fail")
	}
	ghost := make(order.Answer, q.NumVars())
	for _, v := range q.Head {
		ghost[v] = 999
	}
	if _, err := NewOverlay(b, nil, []order.Answer{ghost}); err == nil {
		t.Fatal("deleting a missing answer should fail")
	}
}
