package access

import (
	"fmt"
	"sort"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// This file makes the built structures merge-aware: an Overlay combines
// one immutable base structure with a small sorted list of answer-level
// edits (answers that appeared since the base was built, answers that
// disappeared) and answers Access/Rank over the merged set in
// O(log d + log n) — one binary search over the d edits, one probe of
// the base — instead of forcing the O(n log n) re-preprocess the write
// path used to pay on every mutation.
//
// The core bookkeeping: for any tuple t, its merged rank is
//
//	mr(t) = baseRank(t) + adds<(t) − dels<(t)
//
// where baseRank comes from the base's own Rank and the two counts are
// prefix sums over the edit list sorted in the base's realized total
// order. Each edit event precomputes its own merged rank at
// construction, so Access(k) is: find the event run around k, emit the
// added answer occupying slot k if there is one (within a run of equal
// merged ranks the added answer is provably the last event), otherwise
// shift k by the run's cumulative offset and probe the base.

// MergeBase adapts one built structure to what an Overlay needs:
// ordered access, rank, and the realized total-order comparator. Build
// one with BaseOfLex/BaseOfSum/BaseOfMatLex/BaseOfMatSum.
type MergeBase struct {
	q           *cq.Query
	total       int64
	access      func(k int64) (order.Answer, error)
	appendRange func(dst []values.Value, k0, k1 int64) ([]values.Value, error)
	rank        func(a order.Answer) (int64, bool)
	cmp         func(a, b order.Answer) int
}

// BaseOfLex adapts a layered lex structure. ok is false for structures
// an overlay cannot merge over: Boolean queries (no answer tuples to
// edit) and FD-extended builds (their answers live in the extended
// space).
func BaseOfLex(la *Lex) (*MergeBase, bool) {
	if la.boolean || la.extend != nil || la.project != nil {
		return nil, false
	}
	return &MergeBase{
		q:           la.Query,
		total:       la.total,
		access:      la.Access,
		appendRange: la.AppendRange,
		rank:        la.Rank,
		cmp: func(a, b order.Answer) int {
			// Completed totally orders answers (Lemma 4.4); the head
			// tie-break is a safety net only.
			if c := la.Completed.Compare(a, b); c != 0 {
				return c
			}
			return compareHead(la.Query, a, b)
		},
	}, true
}

// BaseOfSum adapts a SUM structure (realized order: weight, then head).
func BaseOfSum(s *Sum) *MergeBase {
	b := &MergeBase{
		q:      s.Query,
		total:  s.Total(),
		access: s.Access,
		rank:   s.Rank,
		cmp: func(a, b order.Answer) int {
			return CompareSumTotal(s.Query, s.Weights, a, b)
		},
	}
	b.appendRange = b.genericRange(s.Query.Head)
	return b
}

// BaseOfMatLex adapts a lex-sorted materialization (realized order: l,
// then head).
func BaseOfMatLex(m *Materialized, l order.Lex) *MergeBase {
	b := &MergeBase{
		q:      m.Query,
		total:  m.Total(),
		access: m.Access,
		rank:   func(a order.Answer) (int64, bool) { return m.RankLex(a, l) },
		cmp:    func(a, b order.Answer) int { return compareFull(m.Query, l, a, b) },
	}
	b.appendRange = b.genericRange(m.Query.Head)
	return b
}

// BaseOfMatSum adapts a SUM-sorted materialization.
func BaseOfMatSum(m *Materialized, w order.Sum) *MergeBase {
	b := &MergeBase{
		q:      m.Query,
		total:  m.Total(),
		access: m.Access,
		rank:   func(a order.Answer) (int64, bool) { return m.RankSum(a, w) },
		cmp:    func(a, b order.Answer) int { return CompareSumTotal(m.Query, w, a, b) },
	}
	b.appendRange = b.genericRange(m.Query.Head)
	return b
}

// genericRange implements appendRange by per-position access, for bases
// without a batched range path.
func (b *MergeBase) genericRange(head []cq.VarID) func([]values.Value, int64, int64) ([]values.Value, error) {
	return func(dst []values.Value, k0, k1 int64) ([]values.Value, error) {
		for k := k0; k < k1; k++ {
			a, err := b.access(k)
			if err != nil {
				return dst, err
			}
			for _, v := range head {
				dst = append(dst, a[v])
			}
		}
		return dst, nil
	}
}

// ovEvent is one edit in the base's realized order: mr is the answer's
// merged rank, cum the adds-minus-dels offset over events up to and
// including this one.
type ovEvent struct {
	a   order.Answer
	add bool
	mr  int64
	cum int64
}

// Overlay is an immutable merged view: the base structure plus a sorted
// edit list. Like the base structures it is safe for concurrent use.
type Overlay struct {
	b      *MergeBase
	head   []cq.VarID // head variable ids, for tuple projection
	events []ovEvent
	total  int64
	adds   int
}

// NewOverlay builds the merged view for the given edits. Every add must
// be absent from the base and every del present in it, and no answer
// may appear twice across the two lists; violations are construction
// errors (they indicate a broken delta computation, not bad user
// input).
func NewOverlay(b *MergeBase, adds, dels []order.Answer) (*Overlay, error) {
	events := make([]ovEvent, 0, len(adds)+len(dels))
	for _, a := range adds {
		r, exact := b.rank(a)
		if exact {
			return nil, fmt.Errorf("access: overlay add already in base")
		}
		events = append(events, ovEvent{a: a, add: true, mr: r})
	}
	for _, d := range dels {
		r, exact := b.rank(d)
		if !exact {
			return nil, fmt.Errorf("access: overlay delete not in base")
		}
		events = append(events, ovEvent{a: d, mr: r})
	}
	sort.SliceStable(events, func(i, j int) bool {
		return b.cmp(events[i].a, events[j].a) < 0
	})
	// mr currently holds the base rank; fold in the running offset.
	var off int64
	for i := range events {
		if i > 0 && b.cmp(events[i-1].a, events[i].a) == 0 {
			return nil, fmt.Errorf("access: duplicate overlay edit")
		}
		events[i].mr += off
		if events[i].add {
			off++
		} else {
			off--
		}
		events[i].cum = off
	}
	total := b.total + off
	if total < 0 {
		return nil, fmt.Errorf("access: overlay deletes more answers than the base holds")
	}
	head := b.q.Head
	return &Overlay{b: b, head: head, events: events, total: total, adds: len(adds)}, nil
}

// Rank exposes the base's rank probe: the number of base answers
// strictly preceding a in the realized order, and whether a is itself a
// base answer. The engine's delta evaluator uses it as the
// epoch-membership oracle for structures that carry no overlay yet.
func (b *MergeBase) Rank(a order.Answer) (int64, bool) { return b.rank(a) }

// Total returns the merged answer count.
func (o *Overlay) Total() int64 { return o.total }

// Edits returns the number of edit events the overlay carries (its d).
func (o *Overlay) Edits() int { return len(o.events) }

// Adds returns how many of the edits are additions.
func (o *Overlay) Adds() int { return o.adds }

// locate returns the index of the first event with merged rank > k.
func (o *Overlay) locate(k int64) int {
	return sort.Search(len(o.events), func(i int) bool { return o.events[i].mr > k })
}

// Access returns the k-th merged answer: two binary searches — one over
// the edits, one descent/search of the base.
func (o *Overlay) Access(k int64) (order.Answer, error) {
	if k < 0 || k >= o.total {
		return nil, fmt.Errorf("access: overlay index %d of %d: %w", k, o.total, ErrOutOfBound)
	}
	j := o.locate(k)
	if j > 0 && o.events[j-1].mr == k && o.events[j-1].add {
		return o.events[j-1].a, nil
	}
	var off int64
	if j > 0 {
		off = o.events[j-1].cum
	}
	return o.b.access(k - off)
}

// AppendTuple appends the head projection of the k-th merged answer to
// dst.
func (o *Overlay) AppendTuple(dst []values.Value, k int64) ([]values.Value, error) {
	a, err := o.Access(k)
	if err != nil {
		return dst, err
	}
	for _, v := range o.head {
		dst = append(dst, a[v])
	}
	return dst, nil
}

// AppendRange appends the head projections of merged answers
// k0 ≤ k < k1 to dst, splitting the range into base segments (served by
// the base's batched path) and interleaved added answers.
func (o *Overlay) AppendRange(dst []values.Value, k0, k1 int64) ([]values.Value, error) {
	if k0 < 0 || k1 < k0 || k1 > o.total {
		return dst, fmt.Errorf("access: overlay range [%d, %d) of %d: %w", k0, k1, o.total, ErrOutOfBound)
	}
	k := k0
	j := o.locate(k)
	var err error
	for k < k1 {
		if j > 0 && o.events[j-1].mr == k && o.events[j-1].add {
			for _, v := range o.head {
				dst = append(dst, o.events[j-1].a[v])
			}
			k++
			for j < len(o.events) && o.events[j].mr <= k {
				j++
			}
			continue
		}
		var off int64
		if j > 0 {
			off = o.events[j-1].cum
		}
		end := k1
		if j < len(o.events) && o.events[j].mr < end {
			end = o.events[j].mr
		}
		if dst, err = o.b.appendRange(dst, k-off, end-off); err != nil {
			return dst, err
		}
		k = end
		for j < len(o.events) && o.events[j].mr <= k {
			j++
		}
	}
	return dst, nil
}

// Rank returns the number of merged answers strictly preceding the
// tuple in the realized order, and whether the tuple is itself a merged
// answer. The tuple must assign every head variable.
func (o *Overlay) Rank(a order.Answer) (int64, bool) {
	br, exact := o.b.rank(a)
	idx := sort.Search(len(o.events), func(i int) bool { return o.b.cmp(o.events[i].a, a) >= 0 })
	var off int64
	if idx > 0 {
		off = o.events[idx-1].cum
	}
	member := exact
	if idx < len(o.events) && o.b.cmp(o.events[idx].a, a) == 0 {
		member = o.events[idx].add
	}
	return br + off, member
}

// Inverted returns the merged rank of an answer, ErrNotAnAnswer when
// the tuple is not in the merged set.
func (o *Overlay) Inverted(a order.Answer) (int64, error) {
	k, exact := o.Rank(a)
	if !exact {
		return 0, ErrNotAnAnswer
	}
	return k, nil
}
