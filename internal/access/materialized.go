package access

import (
	"sort"

	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
)

// Materialized is the fallback direct-access structure for (query, order)
// pairs on the intractable side of the dichotomies: it materializes and
// sorts the full answer set. Construction costs Θ(|Q(I)|) time and space
// — which the paper proves cannot be avoided up to polylogarithmic
// factors for these inputs — and each access costs O(1).
//
// It exists so that applications can degrade gracefully: use
// BuildLex/BuildSum when the classification allows, and fall back to
// Materialized (accepting the blow-up) otherwise, as discussed in the
// paper's "Applicability" note (§1) for reductions from harder classes.
type Materialized struct {
	// Query is the query whose answers are accessed.
	Query *cq.Query

	answers []order.Answer
	weights []float64 // only for SUM materializations
}

// BuildMaterializedLex materializes Q(I) sorted by the given order
// (completed deterministically by ascending head components).
func BuildMaterializedLex(q *cq.Query, in *database.Instance, l order.Lex) *Materialized {
	return &Materialized{Query: q, answers: baseline.SortedByLex(q, in, l)}
}

// BuildMaterializedSum materializes Q(I) sorted by total weight.
func BuildMaterializedSum(q *cq.Query, in *database.Instance, w order.Sum) *Materialized {
	m := &Materialized{Query: q, answers: baseline.SortedBySum(q, in, w)}
	m.weights = make([]float64, len(m.answers))
	for i, a := range m.answers {
		m.weights[i] = w.AnswerWeight(q, a)
	}
	return m
}

// Total returns |Q(I)|.
func (m *Materialized) Total() int64 { return int64(len(m.answers)) }

// Access returns the k-th answer in O(1).
func (m *Materialized) Access(k int64) (order.Answer, error) {
	if k < 0 || k >= int64(len(m.answers)) {
		return nil, ErrOutOfBound
	}
	return m.answers[k], nil
}

// WeightAt returns the weight of the k-th answer for SUM
// materializations (0 for LEX ones).
func (m *Materialized) WeightAt(k int64) (float64, error) {
	if k < 0 || k >= int64(len(m.answers)) {
		return 0, ErrOutOfBound
	}
	if m.weights == nil {
		return 0, nil
	}
	return m.weights[k], nil
}

// Inverted returns the index of the given answer via binary search over
// the materialized array (O(log n)); LEX materializations only.
func (m *Materialized) Inverted(a order.Answer, l order.Lex) (int64, error) {
	lo := sort.Search(len(m.answers), func(i int) bool {
		return compareFull(m.Query, l, m.answers[i], a) >= 0
	})
	for i := lo; i < len(m.answers); i++ {
		if compareFull(m.Query, l, m.answers[i], a) != 0 {
			break
		}
		if sameOnHead(m.Query, m.answers[i], a) {
			return int64(i), nil
		}
	}
	return 0, ErrNotAnAnswer
}

func compareFull(q *cq.Query, l order.Lex, a, b order.Answer) int {
	if c := l.Compare(a, b); c != 0 {
		return c
	}
	for _, v := range q.Head {
		if a[v] != b[v] {
			if a[v] < b[v] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func sameOnHead(q *cq.Query, a, b order.Answer) bool {
	for _, v := range q.Head {
		if a[v] != b[v] {
			return false
		}
	}
	return true
}
