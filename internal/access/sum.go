package access

import (
	"sort"

	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/hypergraph"
	"rankedaccess/internal/order"
	"rankedaccess/internal/reduce"
	"rankedaccess/internal/values"
)

// Sum is the ⟨n log n, 1⟩ direct-access structure by a SUM order for the
// tractable class of Theorem 5.1 (acyclic queries with an atom containing
// all free variables, equivalently α_free ≤ 1): the answer set fits in a
// single reduced relation, so it is materialized, weighted, and sorted.
type Sum struct {
	// Query is the original query.
	Query *cq.Query
	// Weights is the SUM order used.
	Weights order.Sum

	answers []order.Answer
	weights []float64
	project func(order.Answer) order.Answer
}

// BuildSum constructs the structure, failing with *IntractableError when
// q is outside the tractable class of Theorem 5.1.
func BuildSum(q *cq.Query, in *database.Instance, w order.Sum) (*Sum, error) {
	if v := classify.DirectAccessSum(q); !v.Tractable {
		return nil, &IntractableError{Verdict: v}
	}
	return buildSum(q, in, w)
}

// BuildSumFD is the Theorem 8.9 variant: the criterion and the structure
// apply to the FD-extension over the extended instance; the promoted free
// variables weigh zero (Lemma 8.5), so answer weights are unchanged.
func BuildSumFD(q *cq.Query, in *database.Instance, w order.Sum, fds fd.Set) (*Sum, error) {
	verdict, wfd := classify.DirectAccessSumFD(q, fds)
	if !verdict.Tractable {
		return nil, &IntractableError{Verdict: verdict}
	}
	if err := fds.Check(q, in); err != nil {
		return nil, err
	}
	iplus, err := wfd.Ext.ExtendInstance(q, in)
	if err != nil {
		return nil, err
	}
	s, err := buildSum(wfd.Ext.Query, iplus, w)
	if err != nil {
		return nil, err
	}
	orig := q
	s.Query = orig
	s.project = func(a order.Answer) order.Answer { return fd.ProjectAnswer(orig, a) }
	return s, nil
}

func buildSum(q *cq.Query, in *database.Instance, w order.Sum) (*Sum, error) {
	full, err := reduce.FreeReduce(q, in)
	if err != nil {
		return nil, err
	}
	tree, err := reduce.BuildTree(full)
	if err != nil {
		return nil, err
	}
	tree.Yannakakis()

	s := &Sum{Query: q, Weights: w}
	if q.IsBoolean() {
		if booleanTrue(full) {
			s.answers = []order.Answer{make(order.Answer, q.NumVars())}
			s.weights = []float64{0}
		}
		return s, nil
	}

	// Find the node covering all free variables (guaranteed by the
	// tractability criterion).
	free := hypergraph.VSet(q.Free())
	var big *reduce.Node
	for _, n := range full.Nodes {
		if hypergraph.Subset(free, n.VarSet()) {
			big = n
			break
		}
	}
	if big == nil {
		// Unreachable given the classification; keep a defensive error.
		return nil, &IntractableError{Verdict: classify.DirectAccessSum(q)}
	}
	// After the full reduction every tuple of big participates in an
	// answer, and big's variables are exactly the free variables, so its
	// tuples are the answers. All answers share one flat backing array
	// (one allocation instead of one per answer).
	n := big.Rel.Len()
	nv := q.NumVars()
	backing := make([]values.Value, n*nv)
	s.answers = make([]order.Answer, 0, n)
	s.weights = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		t := big.Rel.Tuple(i)
		a := backing[i*nv : (i+1)*nv : (i+1)*nv]
		for c, v := range big.Vars {
			a[v] = t[c]
		}
		s.answers = append(s.answers, a)
		s.weights = append(s.weights, w.AnswerWeight(q, a))
	}
	// Sort by weight, ties by ascending head values (deterministic).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		wi, wj := s.weights[idx[i]], s.weights[idx[j]]
		if wi != wj {
			return wi < wj
		}
		ai, aj := s.answers[idx[i]], s.answers[idx[j]]
		for _, v := range q.Head {
			if ai[v] != aj[v] {
				return ai[v] < aj[v]
			}
		}
		return false
	})
	ans := make([]order.Answer, n)
	ws := make([]float64, n)
	for i, k := range idx {
		ans[i], ws[i] = s.answers[k], s.weights[k]
	}
	s.answers, s.weights = ans, ws
	return s, nil
}

// Total returns |Q(I)|.
func (s *Sum) Total() int64 { return int64(len(s.answers)) }

// Access returns the k-th answer by increasing weight in O(1).
func (s *Sum) Access(k int64) (order.Answer, error) {
	if k < 0 || k >= int64(len(s.answers)) {
		return nil, ErrOutOfBound
	}
	a := s.answers[k]
	if s.project != nil {
		return s.project(a), nil
	}
	return a, nil
}

// WeightAt returns the weight of the k-th answer.
func (s *Sum) WeightAt(k int64) (float64, error) {
	if k < 0 || k >= int64(len(s.weights)) {
		return 0, ErrOutOfBound
	}
	return s.weights[k], nil
}

// WeightLookup returns the first index whose answer has exactly weight
// λ, or -1 (Definition 5.5), via binary search in O(log n).
func (s *Sum) WeightLookup(lambda float64) int64 {
	i := sort.SearchFloat64s(s.weights, lambda)
	if i < len(s.weights) && s.weights[i] == lambda {
		return int64(i)
	}
	return -1
}
