package access

import (
	"math/rand"
	"testing"

	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// fdCase is one FD-rescued (query, order) configuration from the paper.
type fdCase struct {
	src   string
	order string
	fds   []string
	// gen produces a random instance satisfying the FDs.
	gen func(rng *rand.Rand) *database.Instance
}

// fdInstanceGen builds generators that enforce y = f(x) functions per FD.
func twoPathFD(fdOnR bool, rFn, sFn bool) func(rng *rand.Rand) *database.Instance {
	return func(rng *rand.Rand) *database.Instance {
		in := database.NewInstance()
		dom := int64(4)
		// Functional tables for the FDs.
		fR := make(map[values.Value]values.Value)
		fS := make(map[values.Value]values.Value)
		for d := int64(0); d < dom; d++ {
			fR[d] = rng.Int63n(dom)
			fS[d] = rng.Int63n(dom)
		}
		nr := rng.Intn(8)
		for i := 0; i < nr; i++ {
			x := rng.Int63n(dom)
			y := rng.Int63n(dom)
			if fdOnR && rFn {
				y = fR[x] // R: x -> y
			}
			if fdOnR && !rFn {
				x = fR[y] // R: y -> x
			}
			in.AddRow("R", x, y)
		}
		ns := rng.Intn(8)
		for i := 0; i < ns; i++ {
			y := rng.Int63n(dom)
			z := rng.Int63n(dom)
			if !fdOnR && sFn {
				z = fS[y] // S: y -> z
			}
			if !fdOnR && !sFn {
				y = fS[z] // S: z -> y
			}
			in.AddRow("S", y, z)
		}
		if in.Relation("R") == nil {
			in.SetRelation("R", database.NewRelation(2))
		}
		if in.Relation("S") == nil {
			in.SetRelation("S", database.NewRelation(2))
		}
		return in
	}
}

// Randomized end-to-end check of the §8 machinery: on FD-satisfying
// instances, the FD-extended structure must enumerate Q(I) sorted by the
// requested order L (with deterministic tie-breaks), and inverted access
// must invert.
func TestFDLexAccessRandom(t *testing.T) {
	cases := []fdCase{
		{
			src: "Q(x, y, z) :- R(x, y), S(y, z)", order: "x, z, y",
			fds: []string{"R: x -> y"},
			gen: twoPathFD(true, true, false),
		},
		{
			src: "Q(x, y, z) :- R(x, y), S(y, z)", order: "x, z, y",
			fds: []string{"R: y -> x"},
			gen: twoPathFD(true, false, false),
		},
		{
			src: "Q(x, y, z) :- R(x, y), S(y, z)", order: "x, z, y",
			fds: []string{"S: y -> z"},
			gen: twoPathFD(false, false, true),
		},
		{
			src: "Q(x, z) :- R(x, y), S(y, z)", order: "x, z",
			fds: []string{"S: y -> z"},
			gen: twoPathFD(false, false, true),
		},
		{
			src: "Q(x, z) :- R(x, y), S(y, z)", order: "z desc, x",
			fds: []string{"S: y -> z"},
			gen: twoPathFD(false, false, true),
		},
	}
	rng := rand.New(rand.NewSource(61))
	for _, c := range cases {
		q := cq.MustParse(c.src)
		var fds fd.Set
		for _, s := range c.fds {
			fds = append(fds, fd.MustParse(q, s)...)
		}
		l := lex(t, q, c.order)
		for trial := 0; trial < 40; trial++ {
			in := c.gen(rng)
			la, err := BuildLexFD(q, in, l, fds)
			if err != nil {
				t.Fatalf("%s %v trial %d: %v", c.src, c.fds, trial, err)
			}
			oracle := baseline.AllAnswers(q, in)
			if la.Total() != int64(len(oracle)) {
				t.Fatalf("%s %v: total %d, oracle %d", c.src, c.fds, la.Total(), len(oracle))
			}
			var prev order.Answer
			seen := map[string]bool{}
			for k := int64(0); k < la.Total(); k++ {
				a, err := la.Access(k)
				if err != nil {
					t.Fatalf("%s Access(%d): %v", c.src, k, err)
				}
				// Non-decreasing in the requested order.
				if prev != nil && l.Compare(prev, a) > 0 {
					t.Fatalf("%s %v: order violated at %d", c.src, c.fds, k)
				}
				prev = a
				// Genuine, and exactly once.
				key := ""
				for _, v := range q.Head {
					key += string(rune(a[v])) + "|"
				}
				if seen[key] {
					t.Fatalf("%s: duplicate answer at %d", c.src, k)
				}
				seen[key] = true
				found := false
				for _, o := range oracle {
					same := true
					for _, v := range q.Head {
						if o[v] != a[v] {
							same = false
							break
						}
					}
					if same {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: %v is not an answer", c.src, a)
				}
				if inv, err := la.Inverted(a); err != nil || inv != k {
					t.Fatalf("%s: Inverted(Access(%d)) = %d, %v", c.src, k, inv, err)
				}
			}
		}
	}
}
