package access

import (
	"sort"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/order"
)

// This file extends the SUM and materialized structures with rank
// queries ("how many answers strictly precede this tuple in the realized
// order"), mirroring Lex.Rank. Rank is what makes the structures
// horizontally mergeable: a sharded deployment answers global direct
// access by summing per-shard ranks (see internal/shard), so every
// structure that wants to participate in a shard group must price a
// tuple against its local answers in O(log n).

// compareHead compares two answers by ascending head values, the
// deterministic tie-break every materializing structure uses.
func compareHead(q *cq.Query, a, b order.Answer) int {
	for _, v := range q.Head {
		if a[v] != b[v] {
			if a[v] < b[v] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// CompareLexTotal compares two answers in the total order realized by a
// lex materialization: the (possibly partial) requested order, ties
// broken by ascending head values. Exported for shard-merge callers that
// need the same comparator the structure sorted by.
func CompareLexTotal(q *cq.Query, l order.Lex, a, b order.Answer) int {
	return compareFull(q, l, a, b)
}

// CompareSumTotal compares two answers in the total order realized by a
// SUM structure: ascending weight, ties broken by ascending head values.
func CompareSumTotal(q *cq.Query, w order.Sum, a, b order.Answer) int {
	wa, wb := w.AnswerWeight(q, a), w.AnswerWeight(q, b)
	switch {
	case wa < wb:
		return -1
	case wa > wb:
		return 1
	}
	return compareHead(q, a, b)
}

// Rank returns the number of answers strictly preceding the given tuple
// in the structure's (weight, head) order, and whether the tuple is
// itself an answer. The tuple must assign every head variable of Query;
// it need not be an answer. Runs in O(log n).
func (s *Sum) Rank(a order.Answer) (int64, bool) {
	w := s.Weights.AnswerWeight(s.Query, a)
	lo := sort.Search(len(s.answers), func(i int) bool {
		if s.weights[i] != w {
			return s.weights[i] > w
		}
		return compareHead(s.Query, s.answers[i], a) >= 0
	})
	exact := lo < len(s.answers) && s.weights[lo] == w &&
		compareHead(s.Query, s.answers[lo], a) == 0
	return int64(lo), exact
}

// RankLex returns the number of answers strictly preceding the given
// tuple in the lex materialization's total order (l, ties by head), and
// whether the tuple is itself an answer. Runs in O(log n).
func (m *Materialized) RankLex(a order.Answer, l order.Lex) (int64, bool) {
	lo := sort.Search(len(m.answers), func(i int) bool {
		return compareFull(m.Query, l, m.answers[i], a) >= 0
	})
	exact := lo < len(m.answers) && compareFull(m.Query, l, m.answers[lo], a) == 0
	return int64(lo), exact
}

// RankSum is RankLex for SUM materializations: rank in the (weight,
// head) order.
func (m *Materialized) RankSum(a order.Answer, w order.Sum) (int64, bool) {
	wa := w.AnswerWeight(m.Query, a)
	lo := sort.Search(len(m.answers), func(i int) bool {
		wi := wa
		if m.weights != nil {
			wi = m.weights[i]
		}
		if wi != wa {
			return wi > wa
		}
		return compareHead(m.Query, m.answers[i], a) >= 0
	})
	exact := lo < len(m.answers) && compareHead(m.Query, m.answers[lo], a) == 0
	if exact && m.weights != nil && m.weights[lo] != wa {
		exact = false
	}
	return int64(lo), exact
}
