package access

import (
	"context"

	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
)

// BuildLexFD constructs a direct-access structure for q under unary FDs
// (Theorem 8.21): the layered structure is built for the FD-extension Q⁺
// over the extended instance I⁺ with the reordered order L⁺, which by
// Lemma 8.16 sorts Q⁺(I⁺) exactly as L sorts Q(I); answers are projected
// back to q's free variables on the way out.
//
// The instance must satisfy the FDs (checked; a violation is an error).
func BuildLexFD(q *cq.Query, in *database.Instance, l order.Lex, fds fd.Set) (*Lex, error) {
	return BuildLexFDCtx(context.Background(), q, in, l, fds)
}

// BuildLexFDCtx is BuildLexFD with cancellation, with the same wave
// granularity as BuildLexCtx.
func BuildLexFDCtx(ctx context.Context, q *cq.Query, in *database.Instance, l order.Lex, fds fd.Set) (*Lex, error) {
	verdict, w := classify.DirectAccessLexFD(q, l, fds)
	if !verdict.Tractable {
		return nil, &IntractableError{Verdict: verdict}
	}
	if err := fds.Check(q, in); err != nil {
		return nil, err
	}
	iplus, err := w.Ext.ExtendInstance(q, in)
	if err != nil {
		return nil, err
	}
	la, err := buildLayered(ctx, w.Ext.Query, iplus, w.LPlus)
	if err != nil {
		return nil, err
	}
	extender, err := w.Ext.AnswerExtender(q, in)
	if err != nil {
		return nil, err
	}
	orig := q
	la.Query = orig
	la.project = func(a order.Answer) order.Answer { return fd.ProjectAnswer(orig, a) }
	la.extend = func(a order.Answer) (order.Answer, bool) { return extender(a) }
	return la, nil
}
