// metrics.go is the serve layer's observability surface: a
// metrics.Registry exporting every engine/admission/coalesce/cursor/
// durability counter, per-endpoint HTTP middleware (request counts by
// response class, latency histograms, in-flight gauges), and the
// GET /metrics Prometheus-text endpoint.
//
// Cardinality is bounded by construction: endpoint label values are
// the fixed route names below, response classes are "1xx".."5xx", and
// histogram buckets are metrics.DefBuckets. Nothing mints a new series
// at request time (see CONTRIBUTING.md for the naming and label
// rules).
//
// The engine's own counters are not mirrored: a scrape snapshots
// engine.Stats()/Health() once (refresh), and func-backed series read
// from that snapshot, so one scrape costs one pass over the engine's
// locks no matter how many series it exports.
package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/metrics"
	"rankedaccess/internal/reqid"
	"rankedaccess/internal/trace"
)

// serverMetrics owns the registry and the per-endpoint series.
type serverMetrics struct {
	reg *metrics.Registry

	mu     sync.Mutex
	routes map[string]*routeMetrics

	// deprecatedTotal sums deprecated-shim traffic across endpoints
	// (per-endpoint children live in routeMetrics.deprecated).
	deprecatedTotal atomic.Uint64

	// logsSampledOut counts request-log records dropped by load
	// sampling.
	logsSampledOut *metrics.Counter

	// Scrape-time snapshots of engine state (see refresh).
	stats  atomic.Pointer[engine.Stats]
	health atomic.Pointer[engine.Health]
}

// routeMetrics is one endpoint's series set.
type routeMetrics struct {
	classes    [5]*metrics.Counter // response class 1xx..5xx
	lat        *metrics.Histogram
	inflight   *metrics.Gauge
	deprecated *metrics.Counter // non-nil only for legacy shim routes
}

// observe records one finished request; a non-empty traceID becomes
// the latency bucket's exemplar, linking /metrics to /debug/traces.
func (rm *routeMetrics) observe(status int, d time.Duration, traceID string) {
	class := status / 100
	if class < 1 || class > 5 {
		class = 5
	}
	rm.classes[class-1].Inc()
	rm.lat.ObserveExemplar(d.Seconds(), traceID)
}

var classNames = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// route returns (registering on first use) the series for an endpoint.
// Legacy shims share their successor's endpoint label, so per-endpoint
// traffic is the union of both paths; the deprecated counter is what
// splits them.
func (m *serverMetrics) route(endpoint string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rm := m.routes[endpoint]; rm != nil {
		return rm
	}
	rm := &routeMetrics{
		lat: m.reg.Histogram("ra_http_request_duration_seconds",
			"request latency by endpoint", nil, "endpoint", endpoint),
		inflight: m.reg.Gauge("ra_http_in_flight",
			"requests currently being served by endpoint", "endpoint", endpoint),
	}
	for i, class := range classNames {
		rm.classes[i] = m.reg.Counter("ra_http_requests_total",
			"requests served by endpoint and response class",
			"endpoint", endpoint, "code", class)
	}
	m.routes[endpoint] = rm
	return rm
}

// deprecatedFor registers the deprecated-shim counter for an endpoint
// (idempotent: the legacy route table registers each shim once).
func (m *serverMetrics) deprecatedFor(endpoint string) *metrics.Counter {
	rm := m.route(endpoint)
	m.mu.Lock()
	defer m.mu.Unlock()
	if rm.deprecated == nil {
		rm.deprecated = m.reg.Counter("ra_http_deprecated_requests_total",
			"requests answered through a deprecated legacy route", "endpoint", endpoint)
	}
	return rm.deprecated
}

// refresh snapshots the engine state every func-backed series reads;
// called once per scrape, before rendering.
func (m *serverMetrics) refresh(s *server) {
	st := s.e.Stats()
	h := s.e.Health()
	m.stats.Store(&st)
	m.health.Store(&h)
}

// newServerMetrics builds the registry and registers every non-HTTP
// series: engine counters off the scrape snapshot, admission/coalesce/
// cursor state off the live server. Called after the server's gate,
// coalescer, and cursor store exist.
func newServerMetrics(s *server) *serverMetrics {
	m := &serverMetrics{reg: metrics.NewRegistry(), routes: make(map[string]*routeMetrics)}
	m.refresh(s) // seed the snapshots so a pre-scrape read never sees nil
	reg := m.reg
	st := func() *engine.Stats { return m.stats.Load() }
	hl := func() *engine.Health { return m.health.Load() }

	// Engine: structure cache and prepared-query registry.
	reg.CounterFunc("ra_engine_cache_hits_total",
		"structure cache hits (prepared probes answered without building)",
		func() float64 { return float64(st().Hits) })
	reg.CounterFunc("ra_engine_cache_misses_total",
		"structure cache misses (synchronous O(n log n) builds)",
		func() float64 { return float64(st().Misses) })
	reg.GaugeFunc("ra_engine_cache_entries",
		"access structures currently cached",
		func() float64 { return float64(st().Entries) })
	reg.GaugeFunc("ra_engine_instance_version",
		"current MVCC instance version (bumped by every write batch)",
		func() float64 { return float64(st().Version) })
	reg.GaugeFunc("ra_engine_tuples",
		"tuples in the database instance",
		func() float64 { return float64(st().Tuples) })
	reg.GaugeFunc("ra_engine_prepared_queries",
		"registered named queries",
		func() float64 { return float64(st().Prepared) })
	reg.CounterFunc("ra_engine_registry_hits_total",
		"by-name probes served from a registered query's current handle",
		func() float64 { return float64(st().RegistryHits) })
	reg.CounterFunc("ra_engine_reprepares_total",
		"automatic re-prepares of registered queries after instance mutation",
		func() float64 { return float64(st().Reprepares) })

	// Engine: durability (snapshots + WAL).
	reg.CounterFunc("ra_engine_snapshot_checkpoints_total",
		"snapshot checkpoints written",
		func() float64 { return float64(st().Checkpoints) })
	reg.CounterFunc("ra_engine_snapshot_restores_total",
		"snapshot restores applied",
		func() float64 { return float64(st().Restores) })
	reg.GaugeFunc("ra_engine_warm_structures",
		"structures the most recent warm start rehydrated from a mapped snapshot",
		func() float64 { return float64(st().WarmStructures) })
	reg.CounterFunc("ra_engine_wal_batches_total",
		"mutation batches applied through the write path",
		func() float64 { return float64(st().WALBatches) })
	reg.CounterFunc("ra_engine_wal_errors_total",
		"absorbed durable-WAL append failures (nonzero: the WAL disk is unhealthy)",
		func() float64 { return float64(st().WALErrors) })

	// Engine: MVCC catch-up traffic.
	reg.CounterFunc("ra_engine_delta_skips_total",
		"stale structures republished unchanged (writes missed their relations)",
		func() float64 { return float64(st().DeltaSkips) })
	reg.CounterFunc("ra_engine_delta_epochs_total",
		"overlay epochs published (writes absorbed without rebuilding)",
		func() float64 { return float64(st().DeltaEpochs) })
	reg.CounterFunc("ra_engine_delta_rebuilds_total",
		"stale structures forced into a synchronous rebuild",
		func() float64 { return float64(st().DeltaRebuilds) })
	reg.CounterFunc("ra_engine_bg_rebuilds_total",
		"background re-preprocesses that completed and swapped in",
		func() float64 { return float64(st().BGRebuilds) })

	// Engine: degradation state.
	reg.GaugeFunc("ra_engine_degraded",
		"1 while the engine sheds writes (broken WAL or overlay backlog at the hard limit)",
		func() float64 {
			if hl().Degraded() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("ra_engine_overlay_edits_max",
		"largest delta overlay any cached structure carries",
		func() float64 { return float64(hl().MaxOverlayEdits) })
	reg.GaugeFunc("ra_engine_bg_rebuilding",
		"background re-preprocesses in flight",
		func() float64 { return float64(hl().BGRebuilding) })

	// Serve: admission, coalescing, degradation, cursors.
	reg.CounterFunc("ra_serve_shed_rate_limited_total",
		"requests shed by the per-client rate limiter (429)",
		func() float64 { return float64(s.shed429.Load()) })
	reg.CounterFunc("ra_serve_shed_overload_total",
		"requests shed by the concurrency gate (503)",
		func() float64 { return float64(s.shed503.Load()) })
	reg.GaugeFunc("ra_serve_gate_in_flight",
		"requests holding a concurrency-gate slot",
		func() float64 {
			if s.gate == nil {
				return 0
			}
			return float64(s.gate.Active())
		})
	reg.GaugeFunc("ra_serve_gate_queue_depth",
		"requests waiting for a concurrency-gate slot",
		func() float64 {
			if s.gate == nil {
				return 0
			}
			return float64(s.gate.QueueDepth())
		})
	reg.CounterFunc("ra_serve_coalesce_hits_total",
		"probe windows served from the coalescer (shared flight or cached body)",
		func() float64 {
			if s.coal == nil {
				return 0
			}
			return float64(s.coal.hits.Load())
		})
	reg.CounterFunc("ra_serve_coalesce_misses_total",
		"probe windows that paid their own probe + encode",
		func() float64 {
			if s.coal == nil {
				return 0
			}
			return float64(s.coal.misses.Load())
		})
	reg.CounterFunc("ra_serve_degraded_reads_total",
		"reads answered from a stale epoch while the engine was degraded",
		func() float64 { return float64(s.degradedReads.Load()) })
	reg.CounterFunc("ra_serve_write_sheds_total",
		"writes refused while the engine was degraded",
		func() float64 { return float64(s.writeSheds.Load()) })
	reg.GaugeFunc("ra_serve_open_cursors",
		"server-side cursors currently open",
		func() float64 { return float64(s.st.open()) })
	reg.CounterFunc("ra_http_deprecated_requests_sum",
		"total requests answered through any deprecated legacy route",
		func() float64 { return float64(m.deprecatedTotal.Load()) })
	m.logsSampledOut = reg.Counter("ra_http_request_logs_sampled_out_total",
		"request-log records dropped by under-load sampling")
	if s.cfg.ExtraMetrics != nil {
		s.cfg.ExtraMetrics(reg)
	}
	return m
}

// recPool recycles status recorders so the middleware adds no
// steady-state allocations to instrumented handlers.
var recPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// statusRecorder captures the response status and body size on its way
// to the real ResponseWriter. Unwrap exposes the underlying writer so
// http.ResponseController (used by NDJSON streaming for flushes and
// per-chunk write deadlines) reaches the connection's controls through
// the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// instrument wraps a fully-composed handler chain (admission included,
// so shed 429/503 responses are counted like any other) with the
// per-endpoint middleware: in-flight gauge, latency histogram,
// response-class counter, and — when request logging is on — request
// id assignment and one structured log record per request.
//
// Counting happens in a defer, so no exit path can skip it: early
// fail() returns, NDJSON streams that never call WriteHeader (the
// recorder defaults to 200 on first Write), admission sheds, and even
// handler panics (counted as 5xx, then re-unwound to the server's
// recovery) all land in the same series.
func (s *server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	rm := s.mets.route(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		sr := recPool.Get().(*statusRecorder)
		sr.ResponseWriter, sr.status, sr.bytes = w, 0, 0
		var id string
		if s.reqLog != nil {
			id = incomingID(r)
			sr.Header().Set("X-Request-ID", id)
			r = r.WithContext(reqid.With(r.Context(), id))
		}
		// The HTTP server span: adopt the caller's trace when the
		// request carries a valid traceparent (this server is one hop
		// of a larger request), mint one otherwise. With no tracer
		// configured this whole block is two nil checks.
		var span *trace.Span
		if s.tracer != nil {
			ctx := r.Context()
			if sc, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
				ctx = trace.ContextWithRemote(ctx, sc)
			}
			ctx, span = s.tracer.Start(ctx, "http."+endpoint, trace.KindServer)
			span.SetAttr(
				trace.Str("endpoint", endpoint),
				trace.Str("method", r.Method),
			)
			r = r.WithContext(ctx)
		}
		rm.inflight.Inc()
		start := time.Now()
		panicked := true
		defer func() {
			d := time.Since(start)
			rm.inflight.Dec()
			status, bytes := sr.status, sr.bytes
			if status == 0 {
				if panicked {
					status = http.StatusInternalServerError
				} else {
					// A clean return with no writes is an implicit 200.
					status = http.StatusOK
				}
			}
			sr.ResponseWriter = nil
			recPool.Put(sr)
			var traceID string
			if span != nil {
				traceID = span.TraceIDString()
				span.SetAttr(trace.Int("status", int64(status)))
				if status >= 500 {
					span.SetErrorString(http.StatusText(status))
				}
				span.End()
			}
			rm.observe(status, d, traceID)
			if s.reqLog != nil {
				s.logRequest(r, endpoint, id, traceID, status, bytes, d)
			}
		}()
		h(sr, r)
		panicked = false
	}
}

// handleMetrics renders the registry in the Prometheus text exposition
// format. Monitoring surface: bypasses admission, like /stats.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mets.refresh(s)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.mets.reg.WritePrometheus(w)
}
