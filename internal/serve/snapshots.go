// snapshots.go implements the durability endpoints, mounted when the
// server is configured with a snapshot directory:
//
//	POST /v1/snapshots                create a checkpoint now
//	GET  /v1/snapshots                list snapshots, newest first
//	POST /v1/snapshots/{name}/restore replace live state from a snapshot
//
// A checkpoint persists the instance, every persistable built
// structure, and the prepared-query registry; a restore swaps them in
// with a strictly-forward version bump, so cursors and handles opened
// before the restore fail the same way they do on any other mutation
// (410 Gone) instead of silently mixing datasets.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/snapshot"
)

type snapshotCreateResponse struct {
	Name          string `json:"name"`
	Bytes         int64  `json:"bytes"`
	Version       uint64 `json:"version"`
	Structures    int    `json:"structures"`
	Skipped       int    `json:"skipped,omitempty"`
	Registrations int    `json:"registrations"`
}

func handleSnapshotCreate(e *engine.Engine, dir string, w http.ResponseWriter, _ *http.Request) {
	info, err := e.Checkpoint(dir)
	if err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, snapshotCreateResponse{
		Name: info.Name, Bytes: info.Bytes, Version: info.Version,
		Structures: info.Structures, Skipped: info.Skipped,
		Registrations: info.Registrations,
	})
}

type snapshotListResponse struct {
	Snapshots []snapshot.Info `json:"snapshots"`
}

func handleSnapshotList(dir string, w http.ResponseWriter, _ *http.Request) {
	infos, err := snapshot.List(dir)
	if err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	if infos == nil {
		infos = []snapshot.Info{}
	}
	reply(w, snapshotListResponse{Snapshots: infos})
}

type snapshotRestoreResponse struct {
	Name          string `json:"name"`
	Version       uint64 `json:"version"`
	Tuples        int    `json:"tuples"`
	Structures    int    `json:"structures"`
	Registrations int    `json:"registrations"`
}

func handleSnapshotRestore(e *engine.Engine, dir string, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !snapshot.ValidName(name) {
		fail(w, http.StatusBadRequest, fmt.Errorf("serve: %q is not a snapshot name", name))
		return
	}
	path := filepath.Join(dir, name)
	if _, err := os.Stat(path); err != nil {
		fail(w, http.StatusNotFound, fmt.Errorf("serve: no snapshot %q", name))
		return
	}
	info, err := e.Restore(path)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, snapshot.ErrCorrupt) || errors.Is(err, snapshot.ErrBadMagic) ||
			errors.Is(err, snapshot.ErrBadVersion) || errors.Is(err, snapshot.ErrForeignByteOrder) {
			status = http.StatusUnprocessableEntity
		}
		fail(w, status, err)
		return
	}
	reply(w, snapshotRestoreResponse{
		Name: info.Name, Version: info.Version, Tuples: info.Tuples,
		Structures: info.Structures, Registrations: info.Registrations,
	})
}
