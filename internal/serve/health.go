// health.go implements the probe endpoints:
//
//	GET /healthz   liveness — the process is up and serving HTTP
//	GET /readyz    readiness — the engine can do useful work right now
//
// Liveness is unconditional (if the handler runs, the process lives).
// Readiness is gated on the conditions under which sending this server
// traffic is a mistake: a broken WAL (writes will fail), a delta
// overlay backlog at the hard rebuild threshold (reads are about to
// convoy behind synchronous rebuilds), or an unwritable snapshot
// directory (checkpoints will fail). Both bypass admission control —
// an orchestrator must be able to probe an overloaded server, and
// readiness flipping false under overload is how load gets routed away.
package serve

import (
	"fmt"
	"net/http"
	"os"
	"time"
)

type healthzResponse struct {
	Status string `json:"status"`
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	reply(w, healthzResponse{Status: "ok"})
}

type readyzResponse struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	// Fresh sample, not the request-path cache: probes are low-QPS and
	// an orchestrator deserves the current answer.
	h := s.e.Health()
	var reasons []string
	if h.WALBroken {
		reasons = append(reasons, "wal broken: mutations cannot be made durable")
	}
	if h.MaxOverlayEdits >= h.DeltaHard {
		reasons = append(reasons, fmt.Sprintf(
			"rebuild backlog: overlay at %d edits (hard limit %d)", h.MaxOverlayEdits, h.DeltaHard))
	}
	if dir := s.cfg.SnapshotDir; dir != "" {
		if err := probeWritable(dir); err != nil {
			reasons = append(reasons, fmt.Sprintf("snapshot dir not writable: %v", err))
		}
	}
	if s.cfg.ReadyCheck != nil {
		reasons = append(reasons, s.cfg.ReadyCheck()...)
	}
	if len(reasons) > 0 {
		setRetryAfter(w, time.Second)
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Ready: false, Reasons: reasons})
		return
	}
	reply(w, readyzResponse{Ready: true})
}

// probeWritable verifies the directory accepts new files by creating
// and removing one — the same operations a checkpoint performs, so
// readiness reflects what a checkpoint would actually hit.
func probeWritable(dir string) error {
	f, err := os.CreateTemp(dir, ".readyz-*")
	if err != nil {
		return err
	}
	name := f.Name()
	_ = f.Close()
	return os.Remove(name)
}
